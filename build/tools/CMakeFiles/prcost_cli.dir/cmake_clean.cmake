file(REMOVE_RECURSE
  "CMakeFiles/prcost_cli.dir/prcost_cli.cpp.o"
  "CMakeFiles/prcost_cli.dir/prcost_cli.cpp.o.d"
  "prcost"
  "prcost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prcost_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
