# Empty dependencies file for prcost_cli.
# This may be replaced when dependencies are built.
