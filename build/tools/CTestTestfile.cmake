# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_devices "/root/repo/build/tools/prcost" "devices")
set_tests_properties(cli_devices PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_synth "/root/repo/build/tools/prcost" "synth" "fir" "--family" "v6")
set_tests_properties(cli_synth PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_plan "/root/repo/build/tools/prcost" "plan" "fir" "--device" "xc5vlx110t" "--shaped")
set_tests_properties(cli_plan PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_plan_bitstream_objective "/root/repo/build/tools/prcost" "plan" "mips" "--device" "xc6vlx75t" "--objective" "bitstream")
set_tests_properties(cli_plan_bitstream_objective PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bitstream "/root/repo/build/tools/prcost" "bitstream" "sdram" "--device" "xc5vlx110t")
set_tests_properties(cli_bitstream PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_explore "/root/repo/build/tools/prcost" "explore" "--device" "xc6vlx240t" "fir" "sdram" "uart")
set_tests_properties(cli_explore PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_netlist_roundtrip "/usr/bin/cmake" "-DCLI=/root/repo/build/tools/prcost" "-P" "/root/repo/tools/netlist_roundtrip_test.cmake")
set_tests_properties(cli_netlist_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rank "/root/repo/build/tools/prcost" "rank" "fir" "sdram")
set_tests_properties(cli_rank PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
