file(REMOVE_RECURSE
  "../bench/ablation_reconfig_controllers"
  "../bench/ablation_reconfig_controllers.pdb"
  "CMakeFiles/ablation_reconfig_controllers.dir/ablation_reconfig_controllers.cpp.o"
  "CMakeFiles/ablation_reconfig_controllers.dir/ablation_reconfig_controllers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reconfig_controllers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
