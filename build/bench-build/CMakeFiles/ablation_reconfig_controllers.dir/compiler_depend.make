# Empty compiler generated dependencies file for ablation_reconfig_controllers.
# This may be replaced when dependencies are built.
