# Empty dependencies file for ablation_model_accuracy.
# This may be replaced when dependencies are built.
