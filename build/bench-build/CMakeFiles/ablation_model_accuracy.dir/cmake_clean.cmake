file(REMOVE_RECURSE
  "../bench/ablation_model_accuracy"
  "../bench/ablation_model_accuracy.pdb"
  "CMakeFiles/ablation_model_accuracy.dir/ablation_model_accuracy.cpp.o"
  "CMakeFiles/ablation_model_accuracy.dir/ablation_model_accuracy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_model_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
