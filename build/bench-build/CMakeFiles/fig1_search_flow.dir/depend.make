# Empty dependencies file for fig1_search_flow.
# This may be replaced when dependencies are built.
