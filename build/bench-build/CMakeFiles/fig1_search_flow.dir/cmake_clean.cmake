file(REMOVE_RECURSE
  "../bench/fig1_search_flow"
  "../bench/fig1_search_flow.pdb"
  "CMakeFiles/fig1_search_flow.dir/fig1_search_flow.cpp.o"
  "CMakeFiles/fig1_search_flow.dir/fig1_search_flow.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_search_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
