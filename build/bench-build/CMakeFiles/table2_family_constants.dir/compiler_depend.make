# Empty compiler generated dependencies file for table2_family_constants.
# This may be replaced when dependencies are built.
