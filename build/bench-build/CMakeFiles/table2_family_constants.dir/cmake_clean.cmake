file(REMOVE_RECURSE
  "../bench/table2_family_constants"
  "../bench/table2_family_constants.pdb"
  "CMakeFiles/table2_family_constants.dir/table2_family_constants.cpp.o"
  "CMakeFiles/table2_family_constants.dir/table2_family_constants.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_family_constants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
