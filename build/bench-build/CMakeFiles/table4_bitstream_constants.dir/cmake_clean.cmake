file(REMOVE_RECURSE
  "../bench/table4_bitstream_constants"
  "../bench/table4_bitstream_constants.pdb"
  "CMakeFiles/table4_bitstream_constants.dir/table4_bitstream_constants.cpp.o"
  "CMakeFiles/table4_bitstream_constants.dir/table4_bitstream_constants.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_bitstream_constants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
