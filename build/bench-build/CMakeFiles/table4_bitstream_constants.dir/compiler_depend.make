# Empty compiler generated dependencies file for table4_bitstream_constants.
# This may be replaced when dependencies are built.
