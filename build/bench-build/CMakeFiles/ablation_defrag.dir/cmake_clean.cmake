file(REMOVE_RECURSE
  "../bench/ablation_defrag"
  "../bench/ablation_defrag.pdb"
  "CMakeFiles/ablation_defrag.dir/ablation_defrag.cpp.o"
  "CMakeFiles/ablation_defrag.dir/ablation_defrag.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_defrag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
