file(REMOVE_RECURSE
  "../bench/perf_substrates"
  "../bench/perf_substrates.pdb"
  "CMakeFiles/perf_substrates.dir/perf_substrates.cpp.o"
  "CMakeFiles/perf_substrates.dir/perf_substrates.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_substrates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
