file(REMOVE_RECURSE
  "../bench/ablation_shaped_prr"
  "../bench/ablation_shaped_prr.pdb"
  "CMakeFiles/ablation_shaped_prr.dir/ablation_shaped_prr.cpp.o"
  "CMakeFiles/ablation_shaped_prr.dir/ablation_shaped_prr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_shaped_prr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
