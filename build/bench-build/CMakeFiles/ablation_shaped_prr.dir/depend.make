# Empty dependencies file for ablation_shaped_prr.
# This may be replaced when dependencies are built.
