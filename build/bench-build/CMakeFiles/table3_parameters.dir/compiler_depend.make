# Empty compiler generated dependencies file for table3_parameters.
# This may be replaced when dependencies are built.
