# Empty compiler generated dependencies file for ablation_relocation.
# This may be replaced when dependencies are built.
