file(REMOVE_RECURSE
  "../bench/ablation_relocation"
  "../bench/ablation_relocation.pdb"
  "CMakeFiles/ablation_relocation.dir/ablation_relocation.cpp.o"
  "CMakeFiles/ablation_relocation.dir/ablation_relocation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_relocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
