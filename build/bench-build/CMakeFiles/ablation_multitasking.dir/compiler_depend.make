# Empty compiler generated dependencies file for ablation_multitasking.
# This may be replaced when dependencies are built.
