file(REMOVE_RECURSE
  "../bench/ablation_multitasking"
  "../bench/ablation_multitasking.pdb"
  "CMakeFiles/ablation_multitasking.dir/ablation_multitasking.cpp.o"
  "CMakeFiles/ablation_multitasking.dir/ablation_multitasking.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multitasking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
