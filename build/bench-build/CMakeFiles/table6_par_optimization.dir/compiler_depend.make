# Empty compiler generated dependencies file for table6_par_optimization.
# This may be replaced when dependencies are built.
