file(REMOVE_RECURSE
  "../bench/table6_par_optimization"
  "../bench/table6_par_optimization.pdb"
  "CMakeFiles/table6_par_optimization.dir/table6_par_optimization.cpp.o"
  "CMakeFiles/table6_par_optimization.dir/table6_par_optimization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_par_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
