file(REMOVE_RECURSE
  "../bench/ablation_routability"
  "../bench/ablation_routability.pdb"
  "CMakeFiles/ablation_routability.dir/ablation_routability.cpp.o"
  "CMakeFiles/ablation_routability.dir/ablation_routability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_routability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
