# Empty compiler generated dependencies file for ablation_routability.
# This may be replaced when dependencies are built.
