# Empty dependencies file for table5_prr_organization.
# This may be replaced when dependencies are built.
