file(REMOVE_RECURSE
  "../bench/table5_prr_organization"
  "../bench/table5_prr_organization.pdb"
  "CMakeFiles/table5_prr_organization.dir/table5_prr_organization.cpp.o"
  "CMakeFiles/table5_prr_organization.dir/table5_prr_organization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_prr_organization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
