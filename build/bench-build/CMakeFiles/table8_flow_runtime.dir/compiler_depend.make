# Empty compiler generated dependencies file for table8_flow_runtime.
# This may be replaced when dependencies are built.
