file(REMOVE_RECURSE
  "../bench/table8_flow_runtime"
  "../bench/table8_flow_runtime.pdb"
  "CMakeFiles/table8_flow_runtime.dir/table8_flow_runtime.cpp.o"
  "CMakeFiles/table8_flow_runtime.dir/table8_flow_runtime.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_flow_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
