# Empty compiler generated dependencies file for ablation_device_select.
# This may be replaced when dependencies are built.
