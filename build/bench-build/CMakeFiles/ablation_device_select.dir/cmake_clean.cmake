file(REMOVE_RECURSE
  "../bench/ablation_device_select"
  "../bench/ablation_device_select.pdb"
  "CMakeFiles/ablation_device_select.dir/ablation_device_select.cpp.o"
  "CMakeFiles/ablation_device_select.dir/ablation_device_select.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_device_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
