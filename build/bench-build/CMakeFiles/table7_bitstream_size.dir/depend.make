# Empty dependencies file for table7_bitstream_size.
# This may be replaced when dependencies are built.
