file(REMOVE_RECURSE
  "../bench/table7_bitstream_size"
  "../bench/table7_bitstream_size.pdb"
  "CMakeFiles/table7_bitstream_size.dir/table7_bitstream_size.cpp.o"
  "CMakeFiles/table7_bitstream_size.dir/table7_bitstream_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_bitstream_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
