file(REMOVE_RECURSE
  "../bench/fig2_bitstream_structure"
  "../bench/fig2_bitstream_structure.pdb"
  "CMakeFiles/fig2_bitstream_structure.dir/fig2_bitstream_structure.cpp.o"
  "CMakeFiles/fig2_bitstream_structure.dir/fig2_bitstream_structure.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_bitstream_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
