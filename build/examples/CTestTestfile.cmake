# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_quickstart_v6 "/root/repo/build/examples/quickstart" "xc6vlx75t")
set_tests_properties(example_quickstart_v6 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_video_pipeline "/root/repo/build/examples/video_pipeline")
set_tests_properties(example_video_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dse "/root/repo/build/examples/design_space_exploration")
set_tests_properties(example_dse PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bitstream_inspector "/root/repo/build/examples/bitstream_inspector" "mips" "xc6vlx75t")
set_tests_properties(example_bitstream_inspector PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_task_relocation "/root/repo/build/examples/task_relocation")
set_tests_properties(example_task_relocation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
