# Empty dependencies file for bitstream_inspector.
# This may be replaced when dependencies are built.
