file(REMOVE_RECURSE
  "CMakeFiles/bitstream_inspector.dir/bitstream_inspector.cpp.o"
  "CMakeFiles/bitstream_inspector.dir/bitstream_inspector.cpp.o.d"
  "bitstream_inspector"
  "bitstream_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitstream_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
