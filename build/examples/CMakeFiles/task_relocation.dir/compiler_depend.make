# Empty compiler generated dependencies file for task_relocation.
# This may be replaced when dependencies are built.
