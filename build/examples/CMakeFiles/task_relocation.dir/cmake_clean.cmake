file(REMOVE_RECURSE
  "CMakeFiles/task_relocation.dir/task_relocation.cpp.o"
  "CMakeFiles/task_relocation.dir/task_relocation.cpp.o.d"
  "task_relocation"
  "task_relocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_relocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
