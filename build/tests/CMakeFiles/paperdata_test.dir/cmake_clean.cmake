file(REMOVE_RECURSE
  "CMakeFiles/paperdata_test.dir/paperdata_test.cpp.o"
  "CMakeFiles/paperdata_test.dir/paperdata_test.cpp.o.d"
  "paperdata_test"
  "paperdata_test.pdb"
  "paperdata_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paperdata_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
