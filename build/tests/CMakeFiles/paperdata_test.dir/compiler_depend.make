# Empty compiler generated dependencies file for paperdata_test.
# This may be replaced when dependencies are built.
