file(REMOVE_RECURSE
  "CMakeFiles/crosscut_property_test.dir/crosscut_property_test.cpp.o"
  "CMakeFiles/crosscut_property_test.dir/crosscut_property_test.cpp.o.d"
  "crosscut_property_test"
  "crosscut_property_test.pdb"
  "crosscut_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crosscut_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
