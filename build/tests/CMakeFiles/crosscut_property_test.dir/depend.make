# Empty dependencies file for crosscut_property_test.
# This may be replaced when dependencies are built.
