file(REMOVE_RECURSE
  "CMakeFiles/multitask_test.dir/multitask_test.cpp.o"
  "CMakeFiles/multitask_test.dir/multitask_test.cpp.o.d"
  "multitask_test"
  "multitask_test.pdb"
  "multitask_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multitask_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
