file(REMOVE_RECURSE
  "CMakeFiles/config_memory_test.dir/config_memory_test.cpp.o"
  "CMakeFiles/config_memory_test.dir/config_memory_test.cpp.o.d"
  "config_memory_test"
  "config_memory_test.pdb"
  "config_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
