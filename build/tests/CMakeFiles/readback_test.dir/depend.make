# Empty dependencies file for readback_test.
# This may be replaced when dependencies are built.
