
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/preemptive_test.cpp" "tests/CMakeFiles/preemptive_test.dir/preemptive_test.cpp.o" "gcc" "tests/CMakeFiles/preemptive_test.dir/preemptive_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/par/CMakeFiles/prcost_par.dir/DependInfo.cmake"
  "/root/repo/build/src/dse/CMakeFiles/prcost_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/multitask/CMakeFiles/prcost_multitask.dir/DependInfo.cmake"
  "/root/repo/build/src/paperdata/CMakeFiles/prcost_paperdata.dir/DependInfo.cmake"
  "/root/repo/build/src/htr/CMakeFiles/prcost_htr.dir/DependInfo.cmake"
  "/root/repo/build/src/bitstream/CMakeFiles/prcost_bitstream.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/prcost_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/prcost_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/prcost_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/reconfig/CMakeFiles/prcost_reconfig.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/prcost_device.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/prcost_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
