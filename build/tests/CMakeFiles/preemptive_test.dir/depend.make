# Empty dependencies file for preemptive_test.
# This may be replaced when dependencies are built.
