file(REMOVE_RECURSE
  "CMakeFiles/preemptive_test.dir/preemptive_test.cpp.o"
  "CMakeFiles/preemptive_test.dir/preemptive_test.cpp.o.d"
  "preemptive_test"
  "preemptive_test.pdb"
  "preemptive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preemptive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
