# Empty dependencies file for shaped_prr_test.
# This may be replaced when dependencies are built.
