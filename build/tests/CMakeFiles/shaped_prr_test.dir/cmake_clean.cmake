file(REMOVE_RECURSE
  "CMakeFiles/shaped_prr_test.dir/shaped_prr_test.cpp.o"
  "CMakeFiles/shaped_prr_test.dir/shaped_prr_test.cpp.o.d"
  "shaped_prr_test"
  "shaped_prr_test.pdb"
  "shaped_prr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shaped_prr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
