file(REMOVE_RECURSE
  "CMakeFiles/prr_search_test.dir/prr_search_test.cpp.o"
  "CMakeFiles/prr_search_test.dir/prr_search_test.cpp.o.d"
  "prr_search_test"
  "prr_search_test.pdb"
  "prr_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prr_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
