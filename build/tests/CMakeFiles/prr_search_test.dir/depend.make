# Empty dependencies file for prr_search_test.
# This may be replaced when dependencies are built.
