# Empty dependencies file for passes_property_test.
# This may be replaced when dependencies are built.
