file(REMOVE_RECURSE
  "CMakeFiles/passes_property_test.dir/passes_property_test.cpp.o"
  "CMakeFiles/passes_property_test.dir/passes_property_test.cpp.o.d"
  "passes_property_test"
  "passes_property_test.pdb"
  "passes_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/passes_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
