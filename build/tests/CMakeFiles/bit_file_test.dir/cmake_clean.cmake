file(REMOVE_RECURSE
  "CMakeFiles/bit_file_test.dir/bit_file_test.cpp.o"
  "CMakeFiles/bit_file_test.dir/bit_file_test.cpp.o.d"
  "bit_file_test"
  "bit_file_test.pdb"
  "bit_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bit_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
