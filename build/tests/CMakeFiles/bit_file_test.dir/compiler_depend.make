# Empty compiler generated dependencies file for bit_file_test.
# This may be replaced when dependencies are built.
