file(REMOVE_RECURSE
  "CMakeFiles/htr_test.dir/htr_test.cpp.o"
  "CMakeFiles/htr_test.dir/htr_test.cpp.o.d"
  "htr_test"
  "htr_test.pdb"
  "htr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
