# Empty compiler generated dependencies file for htr_test.
# This may be replaced when dependencies are built.
