file(REMOVE_RECURSE
  "CMakeFiles/routability_test.dir/routability_test.cpp.o"
  "CMakeFiles/routability_test.dir/routability_test.cpp.o.d"
  "routability_test"
  "routability_test.pdb"
  "routability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
