# Empty compiler generated dependencies file for routability_test.
# This may be replaced when dependencies are built.
