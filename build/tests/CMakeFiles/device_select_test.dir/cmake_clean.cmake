file(REMOVE_RECURSE
  "CMakeFiles/device_select_test.dir/device_select_test.cpp.o"
  "CMakeFiles/device_select_test.dir/device_select_test.cpp.o.d"
  "device_select_test"
  "device_select_test.pdb"
  "device_select_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_select_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
