# Empty dependencies file for device_select_test.
# This may be replaced when dependencies are built.
