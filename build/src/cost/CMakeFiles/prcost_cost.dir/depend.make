# Empty dependencies file for prcost_cost.
# This may be replaced when dependencies are built.
