
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cost/bitstream_model.cpp" "src/cost/CMakeFiles/prcost_cost.dir/bitstream_model.cpp.o" "gcc" "src/cost/CMakeFiles/prcost_cost.dir/bitstream_model.cpp.o.d"
  "/root/repo/src/cost/floorplan.cpp" "src/cost/CMakeFiles/prcost_cost.dir/floorplan.cpp.o" "gcc" "src/cost/CMakeFiles/prcost_cost.dir/floorplan.cpp.o.d"
  "/root/repo/src/cost/prr_model.cpp" "src/cost/CMakeFiles/prcost_cost.dir/prr_model.cpp.o" "gcc" "src/cost/CMakeFiles/prcost_cost.dir/prr_model.cpp.o.d"
  "/root/repo/src/cost/prr_search.cpp" "src/cost/CMakeFiles/prcost_cost.dir/prr_search.cpp.o" "gcc" "src/cost/CMakeFiles/prcost_cost.dir/prr_search.cpp.o.d"
  "/root/repo/src/cost/shaped_prr.cpp" "src/cost/CMakeFiles/prcost_cost.dir/shaped_prr.cpp.o" "gcc" "src/cost/CMakeFiles/prcost_cost.dir/shaped_prr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/prcost_util.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/prcost_device.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/prcost_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/prcost_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
