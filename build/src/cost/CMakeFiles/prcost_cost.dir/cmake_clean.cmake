file(REMOVE_RECURSE
  "CMakeFiles/prcost_cost.dir/bitstream_model.cpp.o"
  "CMakeFiles/prcost_cost.dir/bitstream_model.cpp.o.d"
  "CMakeFiles/prcost_cost.dir/floorplan.cpp.o"
  "CMakeFiles/prcost_cost.dir/floorplan.cpp.o.d"
  "CMakeFiles/prcost_cost.dir/prr_model.cpp.o"
  "CMakeFiles/prcost_cost.dir/prr_model.cpp.o.d"
  "CMakeFiles/prcost_cost.dir/prr_search.cpp.o"
  "CMakeFiles/prcost_cost.dir/prr_search.cpp.o.d"
  "CMakeFiles/prcost_cost.dir/shaped_prr.cpp.o"
  "CMakeFiles/prcost_cost.dir/shaped_prr.cpp.o.d"
  "libprcost_cost.a"
  "libprcost_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prcost_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
