file(REMOVE_RECURSE
  "libprcost_cost.a"
)
