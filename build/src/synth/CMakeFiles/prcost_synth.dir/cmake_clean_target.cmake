file(REMOVE_RECURSE
  "libprcost_synth.a"
)
