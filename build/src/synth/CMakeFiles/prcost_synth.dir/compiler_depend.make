# Empty compiler generated dependencies file for prcost_synth.
# This may be replaced when dependencies are built.
