file(REMOVE_RECURSE
  "CMakeFiles/prcost_synth.dir/mapper.cpp.o"
  "CMakeFiles/prcost_synth.dir/mapper.cpp.o.d"
  "CMakeFiles/prcost_synth.dir/passes.cpp.o"
  "CMakeFiles/prcost_synth.dir/passes.cpp.o.d"
  "CMakeFiles/prcost_synth.dir/report.cpp.o"
  "CMakeFiles/prcost_synth.dir/report.cpp.o.d"
  "CMakeFiles/prcost_synth.dir/synthesizer.cpp.o"
  "CMakeFiles/prcost_synth.dir/synthesizer.cpp.o.d"
  "libprcost_synth.a"
  "libprcost_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prcost_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
