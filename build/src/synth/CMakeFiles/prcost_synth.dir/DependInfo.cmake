
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/mapper.cpp" "src/synth/CMakeFiles/prcost_synth.dir/mapper.cpp.o" "gcc" "src/synth/CMakeFiles/prcost_synth.dir/mapper.cpp.o.d"
  "/root/repo/src/synth/passes.cpp" "src/synth/CMakeFiles/prcost_synth.dir/passes.cpp.o" "gcc" "src/synth/CMakeFiles/prcost_synth.dir/passes.cpp.o.d"
  "/root/repo/src/synth/report.cpp" "src/synth/CMakeFiles/prcost_synth.dir/report.cpp.o" "gcc" "src/synth/CMakeFiles/prcost_synth.dir/report.cpp.o.d"
  "/root/repo/src/synth/synthesizer.cpp" "src/synth/CMakeFiles/prcost_synth.dir/synthesizer.cpp.o" "gcc" "src/synth/CMakeFiles/prcost_synth.dir/synthesizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/prcost_util.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/prcost_device.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/prcost_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
