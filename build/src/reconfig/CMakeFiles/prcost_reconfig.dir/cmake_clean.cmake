file(REMOVE_RECURSE
  "CMakeFiles/prcost_reconfig.dir/baselines.cpp.o"
  "CMakeFiles/prcost_reconfig.dir/baselines.cpp.o.d"
  "CMakeFiles/prcost_reconfig.dir/controllers.cpp.o"
  "CMakeFiles/prcost_reconfig.dir/controllers.cpp.o.d"
  "CMakeFiles/prcost_reconfig.dir/full_bitstream.cpp.o"
  "CMakeFiles/prcost_reconfig.dir/full_bitstream.cpp.o.d"
  "CMakeFiles/prcost_reconfig.dir/icap.cpp.o"
  "CMakeFiles/prcost_reconfig.dir/icap.cpp.o.d"
  "CMakeFiles/prcost_reconfig.dir/media.cpp.o"
  "CMakeFiles/prcost_reconfig.dir/media.cpp.o.d"
  "libprcost_reconfig.a"
  "libprcost_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prcost_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
