file(REMOVE_RECURSE
  "libprcost_reconfig.a"
)
