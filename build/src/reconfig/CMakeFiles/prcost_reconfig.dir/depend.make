# Empty dependencies file for prcost_reconfig.
# This may be replaced when dependencies are built.
