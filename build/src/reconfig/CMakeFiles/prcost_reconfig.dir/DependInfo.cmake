
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reconfig/baselines.cpp" "src/reconfig/CMakeFiles/prcost_reconfig.dir/baselines.cpp.o" "gcc" "src/reconfig/CMakeFiles/prcost_reconfig.dir/baselines.cpp.o.d"
  "/root/repo/src/reconfig/controllers.cpp" "src/reconfig/CMakeFiles/prcost_reconfig.dir/controllers.cpp.o" "gcc" "src/reconfig/CMakeFiles/prcost_reconfig.dir/controllers.cpp.o.d"
  "/root/repo/src/reconfig/full_bitstream.cpp" "src/reconfig/CMakeFiles/prcost_reconfig.dir/full_bitstream.cpp.o" "gcc" "src/reconfig/CMakeFiles/prcost_reconfig.dir/full_bitstream.cpp.o.d"
  "/root/repo/src/reconfig/icap.cpp" "src/reconfig/CMakeFiles/prcost_reconfig.dir/icap.cpp.o" "gcc" "src/reconfig/CMakeFiles/prcost_reconfig.dir/icap.cpp.o.d"
  "/root/repo/src/reconfig/media.cpp" "src/reconfig/CMakeFiles/prcost_reconfig.dir/media.cpp.o" "gcc" "src/reconfig/CMakeFiles/prcost_reconfig.dir/media.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/prcost_util.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/prcost_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
