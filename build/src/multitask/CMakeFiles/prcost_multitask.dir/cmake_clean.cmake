file(REMOVE_RECURSE
  "CMakeFiles/prcost_multitask.dir/preemptive.cpp.o"
  "CMakeFiles/prcost_multitask.dir/preemptive.cpp.o.d"
  "CMakeFiles/prcost_multitask.dir/simulator.cpp.o"
  "CMakeFiles/prcost_multitask.dir/simulator.cpp.o.d"
  "CMakeFiles/prcost_multitask.dir/workload.cpp.o"
  "CMakeFiles/prcost_multitask.dir/workload.cpp.o.d"
  "libprcost_multitask.a"
  "libprcost_multitask.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prcost_multitask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
