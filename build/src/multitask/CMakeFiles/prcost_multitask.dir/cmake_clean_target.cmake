file(REMOVE_RECURSE
  "libprcost_multitask.a"
)
