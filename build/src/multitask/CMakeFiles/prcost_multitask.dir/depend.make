# Empty dependencies file for prcost_multitask.
# This may be replaced when dependencies are built.
