file(REMOVE_RECURSE
  "CMakeFiles/prcost_bitstream.dir/bit_file.cpp.o"
  "CMakeFiles/prcost_bitstream.dir/bit_file.cpp.o.d"
  "CMakeFiles/prcost_bitstream.dir/compress.cpp.o"
  "CMakeFiles/prcost_bitstream.dir/compress.cpp.o.d"
  "CMakeFiles/prcost_bitstream.dir/config_memory.cpp.o"
  "CMakeFiles/prcost_bitstream.dir/config_memory.cpp.o.d"
  "CMakeFiles/prcost_bitstream.dir/crc.cpp.o"
  "CMakeFiles/prcost_bitstream.dir/crc.cpp.o.d"
  "CMakeFiles/prcost_bitstream.dir/frame_address.cpp.o"
  "CMakeFiles/prcost_bitstream.dir/frame_address.cpp.o.d"
  "CMakeFiles/prcost_bitstream.dir/generator.cpp.o"
  "CMakeFiles/prcost_bitstream.dir/generator.cpp.o.d"
  "CMakeFiles/prcost_bitstream.dir/lint.cpp.o"
  "CMakeFiles/prcost_bitstream.dir/lint.cpp.o.d"
  "CMakeFiles/prcost_bitstream.dir/parser.cpp.o"
  "CMakeFiles/prcost_bitstream.dir/parser.cpp.o.d"
  "CMakeFiles/prcost_bitstream.dir/readback.cpp.o"
  "CMakeFiles/prcost_bitstream.dir/readback.cpp.o.d"
  "CMakeFiles/prcost_bitstream.dir/words.cpp.o"
  "CMakeFiles/prcost_bitstream.dir/words.cpp.o.d"
  "libprcost_bitstream.a"
  "libprcost_bitstream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prcost_bitstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
