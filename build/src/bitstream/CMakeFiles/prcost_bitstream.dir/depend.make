# Empty dependencies file for prcost_bitstream.
# This may be replaced when dependencies are built.
