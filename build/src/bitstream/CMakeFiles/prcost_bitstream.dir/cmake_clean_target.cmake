file(REMOVE_RECURSE
  "libprcost_bitstream.a"
)
