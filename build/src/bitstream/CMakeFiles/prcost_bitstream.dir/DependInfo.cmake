
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bitstream/bit_file.cpp" "src/bitstream/CMakeFiles/prcost_bitstream.dir/bit_file.cpp.o" "gcc" "src/bitstream/CMakeFiles/prcost_bitstream.dir/bit_file.cpp.o.d"
  "/root/repo/src/bitstream/compress.cpp" "src/bitstream/CMakeFiles/prcost_bitstream.dir/compress.cpp.o" "gcc" "src/bitstream/CMakeFiles/prcost_bitstream.dir/compress.cpp.o.d"
  "/root/repo/src/bitstream/config_memory.cpp" "src/bitstream/CMakeFiles/prcost_bitstream.dir/config_memory.cpp.o" "gcc" "src/bitstream/CMakeFiles/prcost_bitstream.dir/config_memory.cpp.o.d"
  "/root/repo/src/bitstream/crc.cpp" "src/bitstream/CMakeFiles/prcost_bitstream.dir/crc.cpp.o" "gcc" "src/bitstream/CMakeFiles/prcost_bitstream.dir/crc.cpp.o.d"
  "/root/repo/src/bitstream/frame_address.cpp" "src/bitstream/CMakeFiles/prcost_bitstream.dir/frame_address.cpp.o" "gcc" "src/bitstream/CMakeFiles/prcost_bitstream.dir/frame_address.cpp.o.d"
  "/root/repo/src/bitstream/generator.cpp" "src/bitstream/CMakeFiles/prcost_bitstream.dir/generator.cpp.o" "gcc" "src/bitstream/CMakeFiles/prcost_bitstream.dir/generator.cpp.o.d"
  "/root/repo/src/bitstream/lint.cpp" "src/bitstream/CMakeFiles/prcost_bitstream.dir/lint.cpp.o" "gcc" "src/bitstream/CMakeFiles/prcost_bitstream.dir/lint.cpp.o.d"
  "/root/repo/src/bitstream/parser.cpp" "src/bitstream/CMakeFiles/prcost_bitstream.dir/parser.cpp.o" "gcc" "src/bitstream/CMakeFiles/prcost_bitstream.dir/parser.cpp.o.d"
  "/root/repo/src/bitstream/readback.cpp" "src/bitstream/CMakeFiles/prcost_bitstream.dir/readback.cpp.o" "gcc" "src/bitstream/CMakeFiles/prcost_bitstream.dir/readback.cpp.o.d"
  "/root/repo/src/bitstream/words.cpp" "src/bitstream/CMakeFiles/prcost_bitstream.dir/words.cpp.o" "gcc" "src/bitstream/CMakeFiles/prcost_bitstream.dir/words.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/prcost_util.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/prcost_device.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/prcost_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/prcost_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/prcost_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
