# Empty compiler generated dependencies file for prcost_dse.
# This may be replaced when dependencies are built.
