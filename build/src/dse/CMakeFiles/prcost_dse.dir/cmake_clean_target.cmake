file(REMOVE_RECURSE
  "libprcost_dse.a"
)
