file(REMOVE_RECURSE
  "CMakeFiles/prcost_dse.dir/device_select.cpp.o"
  "CMakeFiles/prcost_dse.dir/device_select.cpp.o.d"
  "CMakeFiles/prcost_dse.dir/explorer.cpp.o"
  "CMakeFiles/prcost_dse.dir/explorer.cpp.o.d"
  "CMakeFiles/prcost_dse.dir/partition.cpp.o"
  "CMakeFiles/prcost_dse.dir/partition.cpp.o.d"
  "libprcost_dse.a"
  "libprcost_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prcost_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
