file(REMOVE_RECURSE
  "CMakeFiles/prcost_device.dir/device_db.cpp.o"
  "CMakeFiles/prcost_device.dir/device_db.cpp.o.d"
  "CMakeFiles/prcost_device.dir/fabric.cpp.o"
  "CMakeFiles/prcost_device.dir/fabric.cpp.o.d"
  "CMakeFiles/prcost_device.dir/family_traits.cpp.o"
  "CMakeFiles/prcost_device.dir/family_traits.cpp.o.d"
  "libprcost_device.a"
  "libprcost_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prcost_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
