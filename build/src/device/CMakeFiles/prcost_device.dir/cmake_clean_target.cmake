file(REMOVE_RECURSE
  "libprcost_device.a"
)
