# Empty dependencies file for prcost_device.
# This may be replaced when dependencies are built.
