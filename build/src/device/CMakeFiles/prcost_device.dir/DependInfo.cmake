
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/device_db.cpp" "src/device/CMakeFiles/prcost_device.dir/device_db.cpp.o" "gcc" "src/device/CMakeFiles/prcost_device.dir/device_db.cpp.o.d"
  "/root/repo/src/device/fabric.cpp" "src/device/CMakeFiles/prcost_device.dir/fabric.cpp.o" "gcc" "src/device/CMakeFiles/prcost_device.dir/fabric.cpp.o.d"
  "/root/repo/src/device/family_traits.cpp" "src/device/CMakeFiles/prcost_device.dir/family_traits.cpp.o" "gcc" "src/device/CMakeFiles/prcost_device.dir/family_traits.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/prcost_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
