# Empty compiler generated dependencies file for prcost_util.
# This may be replaced when dependencies are built.
