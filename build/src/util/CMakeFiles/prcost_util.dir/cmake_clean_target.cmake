file(REMOVE_RECURSE
  "libprcost_util.a"
)
