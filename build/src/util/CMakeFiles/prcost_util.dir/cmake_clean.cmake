file(REMOVE_RECURSE
  "CMakeFiles/prcost_util.dir/csv.cpp.o"
  "CMakeFiles/prcost_util.dir/csv.cpp.o.d"
  "CMakeFiles/prcost_util.dir/log.cpp.o"
  "CMakeFiles/prcost_util.dir/log.cpp.o.d"
  "CMakeFiles/prcost_util.dir/parallel.cpp.o"
  "CMakeFiles/prcost_util.dir/parallel.cpp.o.d"
  "CMakeFiles/prcost_util.dir/stopwatch.cpp.o"
  "CMakeFiles/prcost_util.dir/stopwatch.cpp.o.d"
  "CMakeFiles/prcost_util.dir/strings.cpp.o"
  "CMakeFiles/prcost_util.dir/strings.cpp.o.d"
  "CMakeFiles/prcost_util.dir/table.cpp.o"
  "CMakeFiles/prcost_util.dir/table.cpp.o.d"
  "libprcost_util.a"
  "libprcost_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prcost_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
