file(REMOVE_RECURSE
  "libprcost_par.a"
)
