
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/par/packer.cpp" "src/par/CMakeFiles/prcost_par.dir/packer.cpp.o" "gcc" "src/par/CMakeFiles/prcost_par.dir/packer.cpp.o.d"
  "/root/repo/src/par/par.cpp" "src/par/CMakeFiles/prcost_par.dir/par.cpp.o" "gcc" "src/par/CMakeFiles/prcost_par.dir/par.cpp.o.d"
  "/root/repo/src/par/placer.cpp" "src/par/CMakeFiles/prcost_par.dir/placer.cpp.o" "gcc" "src/par/CMakeFiles/prcost_par.dir/placer.cpp.o.d"
  "/root/repo/src/par/routability.cpp" "src/par/CMakeFiles/prcost_par.dir/routability.cpp.o" "gcc" "src/par/CMakeFiles/prcost_par.dir/routability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/prcost_util.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/prcost_device.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/prcost_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/prcost_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/prcost_cost.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
