# Empty compiler generated dependencies file for prcost_par.
# This may be replaced when dependencies are built.
