file(REMOVE_RECURSE
  "CMakeFiles/prcost_par.dir/packer.cpp.o"
  "CMakeFiles/prcost_par.dir/packer.cpp.o.d"
  "CMakeFiles/prcost_par.dir/par.cpp.o"
  "CMakeFiles/prcost_par.dir/par.cpp.o.d"
  "CMakeFiles/prcost_par.dir/placer.cpp.o"
  "CMakeFiles/prcost_par.dir/placer.cpp.o.d"
  "CMakeFiles/prcost_par.dir/routability.cpp.o"
  "CMakeFiles/prcost_par.dir/routability.cpp.o.d"
  "libprcost_par.a"
  "libprcost_par.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prcost_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
