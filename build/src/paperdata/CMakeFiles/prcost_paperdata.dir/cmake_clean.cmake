file(REMOVE_RECURSE
  "CMakeFiles/prcost_paperdata.dir/paper_dataset.cpp.o"
  "CMakeFiles/prcost_paperdata.dir/paper_dataset.cpp.o.d"
  "libprcost_paperdata.a"
  "libprcost_paperdata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prcost_paperdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
