file(REMOVE_RECURSE
  "libprcost_paperdata.a"
)
