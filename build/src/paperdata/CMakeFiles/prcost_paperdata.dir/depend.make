# Empty dependencies file for prcost_paperdata.
# This may be replaced when dependencies are built.
