# Empty compiler generated dependencies file for prcost_netlist.
# This may be replaced when dependencies are built.
