
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/dot.cpp" "src/netlist/CMakeFiles/prcost_netlist.dir/dot.cpp.o" "gcc" "src/netlist/CMakeFiles/prcost_netlist.dir/dot.cpp.o.d"
  "/root/repo/src/netlist/generators.cpp" "src/netlist/CMakeFiles/prcost_netlist.dir/generators.cpp.o" "gcc" "src/netlist/CMakeFiles/prcost_netlist.dir/generators.cpp.o.d"
  "/root/repo/src/netlist/logic.cpp" "src/netlist/CMakeFiles/prcost_netlist.dir/logic.cpp.o" "gcc" "src/netlist/CMakeFiles/prcost_netlist.dir/logic.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/prcost_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/prcost_netlist.dir/netlist.cpp.o.d"
  "/root/repo/src/netlist/serialize.cpp" "src/netlist/CMakeFiles/prcost_netlist.dir/serialize.cpp.o" "gcc" "src/netlist/CMakeFiles/prcost_netlist.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/prcost_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
