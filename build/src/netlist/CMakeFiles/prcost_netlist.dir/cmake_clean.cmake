file(REMOVE_RECURSE
  "CMakeFiles/prcost_netlist.dir/dot.cpp.o"
  "CMakeFiles/prcost_netlist.dir/dot.cpp.o.d"
  "CMakeFiles/prcost_netlist.dir/generators.cpp.o"
  "CMakeFiles/prcost_netlist.dir/generators.cpp.o.d"
  "CMakeFiles/prcost_netlist.dir/logic.cpp.o"
  "CMakeFiles/prcost_netlist.dir/logic.cpp.o.d"
  "CMakeFiles/prcost_netlist.dir/netlist.cpp.o"
  "CMakeFiles/prcost_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/prcost_netlist.dir/serialize.cpp.o"
  "CMakeFiles/prcost_netlist.dir/serialize.cpp.o.d"
  "libprcost_netlist.a"
  "libprcost_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prcost_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
