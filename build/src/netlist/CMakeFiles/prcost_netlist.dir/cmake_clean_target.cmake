file(REMOVE_RECURSE
  "libprcost_netlist.a"
)
