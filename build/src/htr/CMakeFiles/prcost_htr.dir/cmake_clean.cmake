file(REMOVE_RECURSE
  "CMakeFiles/prcost_htr.dir/defrag.cpp.o"
  "CMakeFiles/prcost_htr.dir/defrag.cpp.o.d"
  "CMakeFiles/prcost_htr.dir/relocation.cpp.o"
  "CMakeFiles/prcost_htr.dir/relocation.cpp.o.d"
  "libprcost_htr.a"
  "libprcost_htr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prcost_htr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
