# Empty compiler generated dependencies file for prcost_htr.
# This may be replaced when dependencies are built.
