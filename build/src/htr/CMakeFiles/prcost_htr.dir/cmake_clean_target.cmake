file(REMOVE_RECURSE
  "libprcost_htr.a"
)
