// Snapshot container + persistent-cache round trips.
//
// Three layers under test: the framed container itself (magic / version /
// endianness / truncation / checksum rejection), the plan- and
// bitstream-cache save/load pairs (restored entries must be byte-identical
// and corrupt files must leave the caches unchanged), and the Engine
// warm-start contract (a snapshot-loaded Engine answers byte-identically
// to a cold one, and a corrupt snapshot degrades to a clean cold start).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "api/engine.hpp"
#include "bitstream/bitstream_cache.hpp"
#include "bitstream/crc.hpp"
#include "cost/plan_cache.hpp"
#include "device/device_db.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/snapshot.hpp"

namespace prcost {
namespace {

namespace fs = std::filesystem;

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test-case directory: ctest runs each case as its own process
    // in parallel, so a shared fixed path would let two cases remove
    // each other's files mid-test.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::path{::testing::TempDir()} /
           (std::string{"prcost_snapshot_test_"} + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    plan_cache_clear();
    bitstream_cache_clear();
  }
  void TearDown() override {
    fs::remove_all(dir_);
    plan_cache_clear();
    bitstream_cache_clear();
  }

  std::string path(const char* name) const { return (dir_ / name).string(); }

  static std::vector<unsigned char> read_file(const std::string& path) {
    std::ifstream in{path, std::ios::binary};
    return {std::istreambuf_iterator<char>{in},
            std::istreambuf_iterator<char>{}};
  }

  static void write_file(const std::string& path,
                         const std::vector<unsigned char>& bytes) {
    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  fs::path dir_;
};

TEST_F(SnapshotTest, RoundTripsEveryPrimitive) {
  SnapshotWriter writer;
  writer.put_u32(0xDEADBEEFu);
  writer.put_u64(0x0123456789ABCDEFull);
  writer.put_f64(-1234.5678);
  writer.put_string("partial region");
  writer.put_string("");  // empty strings survive
  const unsigned char raw[5] = {1, 2, 3, 4, 5};
  writer.put_bytes(raw, sizeof raw);
  writer.write(path("round.snap"), 7);

  SnapshotReader reader{path("round.snap"), 7};
  EXPECT_EQ(reader.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.get_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(reader.get_f64(), -1234.5678);
  EXPECT_EQ(reader.get_string(), "partial region");
  EXPECT_EQ(reader.get_string(), "");
  unsigned char back[5] = {};
  reader.get_bytes(back, sizeof back);
  EXPECT_EQ(std::vector<unsigned char>(back, back + 5),
            std::vector<unsigned char>(raw, raw + 5));
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST_F(SnapshotTest, ChecksumMatchesDispatchedCrc32c) {
  // The container's local CRC-32C must stay bit-identical to the
  // hardware-dispatched crc32c_bytes in bitstream/crc.
  const char* vector = "123456789";
  EXPECT_EQ(snapshot_checksum(vector, 9), 0xE3069283u);
  EXPECT_EQ(snapshot_checksum(vector, 9), crc32c_bytes(vector, 9));
  Rng rng{0xC5C5u};
  std::vector<unsigned char> bytes(4093);
  for (auto& b : bytes) b = static_cast<unsigned char>(rng());
  EXPECT_EQ(snapshot_checksum(bytes.data(), bytes.size()),
            crc32c_bytes(bytes.data(), bytes.size()));
}

TEST_F(SnapshotTest, ReadingPastThePayloadThrows) {
  SnapshotWriter writer;
  writer.put_u32(1);
  writer.write(path("short.snap"), 1);
  SnapshotReader reader{path("short.snap"), 1};
  EXPECT_EQ(reader.get_u32(), 1u);
  EXPECT_THROW(reader.get_u32(), ParseError);
}

TEST_F(SnapshotTest, MissingFileIsIoErrorNotParseError) {
  EXPECT_THROW(SnapshotReader(path("absent.snap"), 1), IoError);
}

TEST_F(SnapshotTest, RejectsBadMagic) {
  SnapshotWriter writer;
  writer.put_u64(42);
  writer.write(path("magic.snap"), 1);
  auto bytes = read_file(path("magic.snap"));
  bytes[0] ^= 0xFFu;
  write_file(path("magic.snap"), bytes);
  EXPECT_THROW(SnapshotReader(path("magic.snap"), 1), ParseError);
}

TEST_F(SnapshotTest, RejectsWrongVersion) {
  SnapshotWriter writer;
  writer.put_u64(42);
  writer.write(path("version.snap"), 3);
  EXPECT_NO_THROW(SnapshotReader(path("version.snap"), 3));
  EXPECT_THROW(SnapshotReader(path("version.snap"), 4), ParseError);
}

TEST_F(SnapshotTest, RejectsForeignEndianness) {
  SnapshotWriter writer;
  writer.put_u64(42);
  writer.write(path("endian.snap"), 1);
  auto bytes = read_file(path("endian.snap"));
  std::swap(bytes[8], bytes[11]);  // byte-swap the endianness marker
  std::swap(bytes[9], bytes[10]);
  write_file(path("endian.snap"), bytes);
  EXPECT_THROW(SnapshotReader(path("endian.snap"), 1), ParseError);
}

TEST_F(SnapshotTest, RejectsTruncationAtEveryBoundary) {
  SnapshotWriter writer;
  writer.put_u64(42);
  writer.put_string("payload");
  writer.write(path("trunc.snap"), 1);
  const auto bytes = read_file(path("trunc.snap"));
  // Chop at: inside the header, exactly the header, mid-payload, and
  // inside the CRC trailer.
  for (const std::size_t keep :
       {std::size_t{3}, std::size_t{20}, bytes.size() - 10, bytes.size() - 1}) {
    ASSERT_LT(keep, bytes.size());
    write_file(path("trunc.snap"),
               {bytes.begin(), bytes.begin() + static_cast<long>(keep)});
    EXPECT_THROW(SnapshotReader(path("trunc.snap"), 1), ParseError) << keep;
  }
}

TEST_F(SnapshotTest, RejectsPayloadCorruption) {
  SnapshotWriter writer;
  for (u64 i = 0; i < 64; ++i) writer.put_u64(i);
  writer.write(path("crc.snap"), 1);
  const auto pristine = read_file(path("crc.snap"));
  // Flip one bit in several payload positions: the checksum catches all.
  for (const std::size_t at : {std::size_t{20}, std::size_t{100},
                               pristine.size() - 5}) {
    auto bytes = pristine;
    bytes[at] ^= 0x10u;
    write_file(path("crc.snap"), bytes);
    EXPECT_THROW(SnapshotReader(path("crc.snap"), 1), ParseError) << at;
  }
}

TEST_F(SnapshotTest, PlanCacheRoundTrips) {
  const Device& device = DeviceDb::instance().get("xc5vlx110t");
  PrmRequirements req;
  req.lut_ff_pairs = 2000;
  req.luts = 1800;
  req.ffs = 1500;
  req.dsps = 4;
  req.brams = 2;
  const auto before = find_prr_cached(req, device.fabric, {});
  ASSERT_TRUE(before.has_value());
  const auto widened =
      widened_candidates(req, device.fabric, SearchObjective::kMinArea);
  ASSERT_FALSE(widened->empty());
  const u64 entries = plan_cache_stats().entries;
  ASSERT_GE(entries, 2u);

  EXPECT_EQ(plan_cache_save(path("plan.snap")), entries);
  plan_cache_clear();
  ASSERT_EQ(plan_cache_stats().entries, 0u);
  EXPECT_EQ(plan_cache_load(path("plan.snap")), entries);
  EXPECT_EQ(plan_cache_stats().entries, entries);

  // Restored entries are hits and byte-identical to the originals.
  const u64 hits_before = plan_cache_stats().hits;
  const auto after = find_prr_cached(req, device.fabric, {});
  EXPECT_EQ(plan_cache_stats().hits, hits_before + 1);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->organization.h, before->organization.h);
  EXPECT_EQ(after->window.first_col, before->window.first_col);
  EXPECT_EQ(after->first_row, before->first_row);
  EXPECT_EQ(after->available.luts, before->available.luts);
  EXPECT_EQ(after->ru.clb, before->ru.clb);
  EXPECT_EQ(after->bitstream.total_bytes, before->bitstream.total_bytes);
  const auto widened_after =
      widened_candidates(req, device.fabric, SearchObjective::kMinArea);
  ASSERT_EQ(widened_after->size(), widened->size());
  for (std::size_t i = 0; i < widened->size(); ++i) {
    EXPECT_EQ((*widened_after)[i].bitstream.total_words,
              (*widened)[i].bitstream.total_words);
    EXPECT_EQ((*widened_after)[i].window.first_col,
              (*widened)[i].window.first_col);
  }
}

TEST_F(SnapshotTest, PlanCacheLoadRejectsCorruptionAndStaysCold) {
  const Device& device = DeviceDb::instance().get("xc6vlx75t");
  PrmRequirements req;
  req.lut_ff_pairs = 900;
  req.luts = 800;
  req.ffs = 700;
  find_prr_cached(req, device.fabric, {});
  plan_cache_save(path("plan.snap"));
  plan_cache_clear();

  auto bytes = read_file(path("plan.snap"));
  bytes[bytes.size() / 2] ^= 0x01u;
  write_file(path("plan.snap"), bytes);
  EXPECT_THROW(plan_cache_load(path("plan.snap")), ParseError);
  EXPECT_EQ(plan_cache_stats().entries, 0u);  // unchanged: still cold
}

TEST_F(SnapshotTest, BitstreamCacheRoundTrips) {
  const Device& device = DeviceDb::instance().get("xc5vlx110t");
  PrmRequirements req;
  req.lut_ff_pairs = 1200;
  req.luts = 1000;
  req.ffs = 900;
  const auto plan = find_prr_cached(req, device.fabric, {});
  ASSERT_TRUE(plan.has_value());
  const auto before = generate_bitstream_cached(*plan, device.fabric.family());
  ASSERT_FALSE(before->empty());

  EXPECT_EQ(bitstream_cache_save(path("bits.snap")), 1u);
  bitstream_cache_clear();
  ASSERT_EQ(bitstream_cache_stats().entries, 0u);
  EXPECT_EQ(bitstream_cache_load(path("bits.snap")), 1u);
  EXPECT_EQ(bitstream_cache_stats().entries, 1u);
  EXPECT_EQ(bitstream_cache_stats().resident_words, before->size());

  const u64 hits_before = bitstream_cache_stats().hits;
  const auto after = generate_bitstream_cached(*plan, device.fabric.family());
  EXPECT_EQ(bitstream_cache_stats().hits, hits_before + 1);
  EXPECT_EQ(*after, *before);  // byte-identical words
}

TEST_F(SnapshotTest, EngineWarmStartIsByteIdentical) {
  api::Engine::Options options;
  options.cache_dir = (dir_ / "engine_cache").string();

  api::PlanRequest plan_request;
  plan_request.device = "xc5vlx110t";
  plan_request.source.prm = "fir";
  plan_request.cross_check = false;
  api::BitstreamRequest bits_request;
  bits_request.device = "xc5vlx110t";
  bits_request.source.prm = "uart";

  const api::Engine cold{options};
  const api::PlanResponse cold_plan = cold.plan(plan_request);
  const api::BitstreamResponse cold_bits = cold.bitstream(bits_request);
  cold.save_caches();
  ASSERT_TRUE(fs::exists(fs::path{options.cache_dir} / "plan_cache.snap"));
  ASSERT_TRUE(
      fs::exists(fs::path{options.cache_dir} / "bitstream_cache.snap"));

  plan_cache_clear();
  bitstream_cache_clear();

  api::Engine::Options warm_options = options;
  warm_options.collect_stats = true;
  const api::Engine warm{warm_options};
  api::PlanRequest stats_plan = plan_request;
  const api::PlanResponse warm_plan = warm.plan(stats_plan);
  const api::BitstreamResponse warm_bits = warm.bitstream(bits_request);

  // Warm answers are byte-identical to cold ones...
  EXPECT_EQ(warm_plan.plan.organization.h, cold_plan.plan.organization.h);
  EXPECT_EQ(warm_plan.plan.window.first_col, cold_plan.plan.window.first_col);
  EXPECT_EQ(warm_plan.plan.bitstream.total_bytes,
            cold_plan.plan.bitstream.total_bytes);
  ASSERT_TRUE(warm_bits.words != nullptr);
  EXPECT_EQ(*warm_bits.words, *cold_bits.words);
  EXPECT_EQ(warm_bits.total_bytes, cold_bits.total_bytes);
  // ...and the very first post-restart requests are cache hits.
  ASSERT_TRUE(warm_plan.stats.has_value());
  EXPECT_GE(warm_plan.stats->plan_cache_hits, 1u);
  EXPECT_EQ(warm_plan.stats->plan_cache_misses, 0u);
  ASSERT_TRUE(warm_bits.stats.has_value());
  EXPECT_GE(warm_bits.stats->bitstream_cache_hits, 1u);
}

TEST_F(SnapshotTest, EngineColdStartsCleanlyOnCorruptSnapshots) {
  api::Engine::Options options;
  options.cache_dir = (dir_ / "engine_cache").string();
  fs::create_directories(options.cache_dir);
  // Both snapshots are garbage: construction must not throw, and requests
  // must produce the same answers as a cache-less engine.
  write_file((fs::path{options.cache_dir} / "plan_cache.snap").string(),
             {'g', 'a', 'r', 'b', 'a', 'g', 'e'});
  write_file((fs::path{options.cache_dir} / "bitstream_cache.snap").string(),
             {'P', 'R', 'C', 'S', 0, 0, 0, 0});

  const api::Engine engine{options};
  api::BitstreamRequest request;
  request.device = "xc6vlx75t";
  request.source.prm = "mips";
  const api::BitstreamResponse from_corrupt = engine.bitstream(request);

  plan_cache_clear();
  bitstream_cache_clear();
  const api::Engine plain{};
  const api::BitstreamResponse from_plain = plain.bitstream(request);
  ASSERT_TRUE(from_corrupt.words != nullptr);
  EXPECT_EQ(*from_corrupt.words, *from_plain.words);
}

}  // namespace
}  // namespace prcost
