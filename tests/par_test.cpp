#include <gtest/gtest.h>

#include "cost/prr_search.hpp"
#include "device/device_db.hpp"
#include "netlist/generators.hpp"
#include "netlist/logic.hpp"
#include "par/par.hpp"
#include "synth/synthesizer.hpp"
#include "util/error.hpp"

namespace prcost {
namespace {

const Fabric& lx110t() {
  return DeviceDb::instance().get("xc5vlx110t").fabric;
}
const Fabric& lx75t() { return DeviceDb::instance().get("xc6vlx75t").fabric; }

// ---------------------------------------------------------------- packer ---

TEST(Packer, DirectPairsOnly) {
  Netlist nl{"t"};
  LogicBuilder lb{nl};
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  const NetId y = lb.land(a, b);
  nl.output("q", nl.ff(y));  // FF driven by a single-sink LUT
  PackOptions options;
  options.cross_pack_efficiency = 0.0;
  const PackResult packed = pack_slices(nl, options);
  EXPECT_EQ(packed.direct_pairs, 1u);
  EXPECT_EQ(packed.lut_ff_pairs, 1u);  // 1 LUT + 1 FF - 1 pair
}

TEST(Packer, FanoutBlocksDirectPairing) {
  Netlist nl{"t"};
  LogicBuilder lb{nl};
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  const NetId y = lb.land(a, b);
  nl.output("q", nl.ff(y));
  nl.output("y", y);  // second sink on the LUT output
  PackOptions options;
  options.cross_pack_efficiency = 0.0;
  const PackResult packed = pack_slices(nl, options);
  EXPECT_EQ(packed.direct_pairs, 0u);
  EXPECT_EQ(packed.lut_ff_pairs, 2u);
}

TEST(Packer, CrossPackingReducesPairs) {
  Netlist nl{"t"};
  LogicBuilder lb{nl};
  // 10 lone LUTs + 10 lone FFs (FF chain has no LUT drivers).
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  for (int i = 0; i < 10; ++i) nl.output("y" + std::to_string(i), lb.lxor(a, b));
  NetId q = nl.input("d");
  for (int i = 0; i < 10; ++i) q = nl.ff(q);
  nl.output("q", q);
  PackOptions options;
  options.cross_pack_efficiency = 0.8;
  const PackResult packed = pack_slices(nl, options);
  EXPECT_EQ(packed.direct_pairs, 0u);
  EXPECT_EQ(packed.cross_packed, 8u);  // floor(10 * 0.8)
  EXPECT_EQ(packed.lut_ff_pairs, 12u);
}

TEST(Packer, EfficiencyRangeChecked) {
  Netlist nl{"t"};
  PackOptions options;
  options.cross_pack_efficiency = 1.5;
  EXPECT_THROW(pack_slices(nl, options), ContractError);
}

// ---------------------------------------------------------------- placer ---

TEST(Placer, SdramFitsItsPaperPrr) {
  auto synth = synthesize(make_sdram_ctrl(), SynthOptions{Family::kVirtex5});
  const PrmRequirements req = PrmRequirements::from_report(synth.report);
  const auto plan = find_prr(req, lx110t());
  ASSERT_TRUE(plan.has_value());
  PlaceOptions options;
  options.anneal_moves = 2000;  // keep the test fast
  const PlaceResult placed =
      place_into_prr(synth.netlist, *plan, lx110t(), options);
  EXPECT_TRUE(placed.feasible) << placed.failure_reason;
  EXPECT_GT(placed.placed_cells, 0u);
  EXPECT_LE(placed.pairs_needed, placed.pair_sites);
}

TEST(Placer, AnnealNeverWorsensWirelength) {
  auto synth = synthesize(make_sdram_ctrl(), SynthOptions{Family::kVirtex5});
  const auto plan =
      find_prr(PrmRequirements::from_report(synth.report), lx110t());
  ASSERT_TRUE(plan.has_value());
  PlaceOptions options;
  options.anneal_moves = 5000;
  const PlaceResult placed =
      place_into_prr(synth.netlist, *plan, lx110t(), options);
  ASSERT_TRUE(placed.feasible);
  EXPECT_LE(placed.hpwl_final, placed.hpwl_initial);
  EXPECT_GT(placed.critical_path_ns, 0.0);
}

TEST(Placer, DeterministicForSeed) {
  auto synth = synthesize(make_uart(), SynthOptions{Family::kVirtex5});
  const auto plan =
      find_prr(PrmRequirements::from_report(synth.report), lx110t());
  ASSERT_TRUE(plan.has_value());
  PlaceOptions options;
  options.seed = 99;
  options.anneal_moves = 2000;
  const PlaceResult a = place_into_prr(synth.netlist, *plan, lx110t(), options);
  const PlaceResult b = place_into_prr(synth.netlist, *plan, lx110t(), options);
  EXPECT_EQ(a.hpwl_final, b.hpwl_final);
}

TEST(Placer, TooSmallPrrFailsWithReason) {
  auto synth = synthesize(make_mips5(), SynthOptions{Family::kVirtex5});
  // A 1x1 CLB-column PRR cannot seat MIPS.
  PrrPlan tiny;
  tiny.organization.h = 1;
  tiny.organization.columns = ColumnDemand{1, 0, 0};
  const auto window = lx110t().find_window(tiny.organization.columns);
  ASSERT_TRUE(window.has_value());
  tiny.window = *window;
  tiny.bitstream =
      estimate_bitstream(tiny.organization, lx110t().traits());
  const PlaceResult placed = place_into_prr(synth.netlist, tiny, lx110t(), {});
  EXPECT_FALSE(placed.feasible);
  EXPECT_FALSE(placed.failure_reason.empty());
}

// ------------------------------------------------------------------- par ---

TEST(Par, TableVIShapeLutsShrinkDspBramStay) {
  // The Table VI effect: post-PAR LUT_FF pairs and LUTs never exceed the
  // synthesis report; FF, DSP and BRAM counts stay put.
  for (int which = 0; which < 3; ++which) {
    const auto make = [&] {
      return which == 0 ? make_fir() : which == 1 ? make_mips5()
                                                  : make_sdram_ctrl();
    };
    auto synth = synthesize(make(), SynthOptions{Family::kVirtex5});
    const auto plan =
        find_prr(PrmRequirements::from_report(synth.report), lx110t());
    ASSERT_TRUE(plan.has_value()) << which;
    ParOptions options;
    options.place.anneal_moves = 500;
    const ParResult par =
        place_and_route(std::move(synth.netlist), *plan, lx110t(), options);
    ASSERT_TRUE(par.routed) << which << ": " << par.failure_reason;
    EXPECT_LE(par.post_par.lut_ff_pairs, synth.report.lut_ff_pairs) << which;
    EXPECT_LE(par.post_par.slice_luts, synth.report.slice_luts) << which;
    EXPECT_EQ(par.post_par.dsps, synth.report.dsps) << which;
    EXPECT_EQ(par.post_par.brams, synth.report.brams) << which;
    EXPECT_EQ(par.post_par.slice_ffs, synth.report.slice_ffs) << which;
  }
}

TEST(Par, CrossPackingDeliversMeaningfulSavings) {
  // The paper reports 16.6-18.8% pair savings for MIPS; our cross-packing
  // model must land in the tens of percent for the same kind of design.
  auto synth = synthesize(make_mips5(), SynthOptions{Family::kVirtex5});
  const auto plan =
      find_prr(PrmRequirements::from_report(synth.report), lx110t());
  ASSERT_TRUE(plan.has_value());
  ParOptions options;
  options.place.skip_anneal = true;
  const ParResult par =
      place_and_route(std::move(synth.netlist), *plan, lx110t(), options);
  ASSERT_TRUE(par.routed);
  const double saving =
      1.0 - static_cast<double>(par.post_par.lut_ff_pairs) /
                static_cast<double>(synth.report.lut_ff_pairs);
  EXPECT_GT(saving, 0.05);
  EXPECT_LT(saving, 0.6);
}

TEST(Par, MipsFailsOnPostParSizedVirtex6Prr) {
  // The paper: re-deriving the PRR from post-PAR requirements left no
  // slack and "MIPS failed place and route on the Virtex-6". Reproduce the
  // mechanism: size a PRR for substantially smaller requirements and watch
  // placement fail.
  auto synth = synthesize(make_mips5(), SynthOptions{Family::kVirtex6});
  PrmRequirements shrunk = PrmRequirements::from_report(synth.report);
  shrunk.lut_ff_pairs = shrunk.lut_ff_pairs / 2;  // over-optimistic resize
  const auto plan = find_prr(shrunk, lx75t());
  ASSERT_TRUE(plan.has_value());
  ParOptions options;
  options.place.skip_anneal = true;
  const ParResult par =
      place_and_route(std::move(synth.netlist), *plan, lx75t(), options);
  EXPECT_FALSE(par.routed);
  EXPECT_FALSE(par.failure_reason.empty());
}

}  // namespace
}  // namespace prcost
