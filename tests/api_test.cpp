// Engine request/response round-trips, the JSON layer, the structured
// error taxonomy, and the JSONL batch dispatch.
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "api/batch.hpp"
#include "api/engine.hpp"
#include "api/requests.hpp"
#include "cost/prr_search.hpp"
#include "device/device_db.hpp"
#include "obs/obs.hpp"
#include "synth/report.hpp"
#include "synth/synthesizer.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace prcost {
namespace {

using api::Engine;

// ----------------------------------------------------------------- Json --

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_EQ(Json::parse("42").as_i64(), 42);
  EXPECT_EQ(Json::parse("-7").as_i64(), -7);
  EXPECT_DOUBLE_EQ(Json::parse("2.5").as_double(), 2.5);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_double(), 1000.0);
  EXPECT_EQ(Json::parse("\"hi\\n\\\"there\\\"\"").as_string(),
            "hi\n\"there\"");
}

TEST(Json, IntegersStayExact) {
  const u64 big = 9007199254740993ull;  // 2^53 + 1: not double-representable
  Json j{big};
  EXPECT_EQ(Json::parse(j.dump()).as_u64(), big);
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json j = Json::object();
  j.set("zebra", 1).set("apple", 2).set("mango", 3);
  EXPECT_EQ(j.dump(), "{\"zebra\":1,\"apple\":2,\"mango\":3}");
  j.set("apple", 9);  // overwrite keeps position
  EXPECT_EQ(j.dump(), "{\"zebra\":1,\"apple\":9,\"mango\":3}");
}

TEST(Json, RoundTripsNestedDocuments) {
  const std::string text =
      "{\"a\":[1,2.5,\"x\",null,true],\"b\":{\"c\":[{\"d\":-1}]}}";
  EXPECT_EQ(Json::parse(text).dump(), text);
}

TEST(Json, FindAndTypedAccessErrors) {
  const Json j = Json::parse("{\"s\":\"v\",\"n\":1}");
  ASSERT_NE(j.find("s"), nullptr);
  EXPECT_EQ(j.find("s")->as_string(), "v");
  EXPECT_EQ(j.find("missing"), nullptr);
  EXPECT_THROW(j.find("s")->as_i64(), ParseError);
  EXPECT_THROW(j.find("n")->as_string(), ParseError);
  EXPECT_THROW(Json::parse("-1").as_u64(), ParseError);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), ParseError);
  EXPECT_THROW(Json::parse("{"), ParseError);
  EXPECT_THROW(Json::parse("{\"a\":}"), ParseError);
  EXPECT_THROW(Json::parse("[1,]"), ParseError);
  EXPECT_THROW(Json::parse("tru"), ParseError);
  EXPECT_THROW(Json::parse("\"unterminated"), ParseError);
  EXPECT_THROW(Json::parse("1 2"), ParseError);  // trailing garbage
}

TEST(Json, EscapesControlCharacters) {
  Json j = Json::object();
  j.set("k", std::string{"a\tb\x01"});
  EXPECT_EQ(j.dump(), "{\"k\":\"a\\tb\\u0001\"}");
}

// ------------------------------------------------------- error taxonomy --

TEST(ErrorTaxonomy, CodesAndWireNames) {
  EXPECT_EQ(UsageError{"x"}.code(), ErrorCode::kUsage);
  EXPECT_EQ(NotFoundError{"x"}.code(), ErrorCode::kNotFound);
  EXPECT_EQ(InfeasibleError{"x"}.code(), ErrorCode::kInfeasible);
  EXPECT_EQ(IoError{"x"}.code(), ErrorCode::kIo);
  EXPECT_EQ(ParseError{"x"}.code(), ErrorCode::kParse);
  EXPECT_EQ(ContractError{"x"}.code(), ErrorCode::kContract);
  EXPECT_EQ(error_code_name(ErrorCode::kUsage), "usage");
  EXPECT_EQ(error_code_name(ErrorCode::kNotFound), "not_found");
  EXPECT_EQ(error_code_name(ErrorCode::kInfeasible), "infeasible");
  EXPECT_EQ(error_code_name(ErrorCode::kIo), "io");
  EXPECT_EQ(error_code_name(ErrorCode::kParse), "parse");
  EXPECT_EQ(error_code_name(ErrorCode::kContract), "contract");
  EXPECT_EQ(error_code_name(ErrorCode::kInternal), "internal");
}

TEST(ErrorTaxonomy, NotFoundIsAContractError) {
  // Pre-taxonomy catch sites caught ContractError from lookups; the
  // refinement must not break them.
  EXPECT_THROW(DeviceDb::instance().get("xc2v1000"), ContractError);
  EXPECT_THROW(DeviceDb::instance().get("xc2v1000"), NotFoundError);
}

// --------------------------------------------------------------- Engine --

TEST(Engine, PlanMatchesDirectSearch) {
  const Engine engine;
  api::PlanRequest request;
  request.device = "xc5vlx110t";
  request.source.prm = "fir";
  const api::PlanResponse response = engine.plan(request);

  const Device& device = DeviceDb::instance().get("xc5vlx110t");
  const SynthesisResult synth =
      synthesize(api::make_builtin_prm("fir"), SynthOptions{Family::kVirtex5});
  const auto direct =
      find_prr(PrmRequirements::from_report(synth.report), device.fabric);
  ASSERT_TRUE(direct.has_value());

  EXPECT_EQ(response.device, "xc5vlx110t");
  EXPECT_EQ(response.plan.organization.h, direct->organization.h);
  EXPECT_EQ(response.plan.organization.size(), direct->organization.size());
  EXPECT_EQ(response.plan.bitstream.total_bytes,
            direct->bitstream.total_bytes);
  ASSERT_TRUE(response.generated_bytes.has_value());
  EXPECT_TRUE(response.generated_matches_model());
  ASSERT_TRUE(response.par.has_value());
  EXPECT_TRUE(response.par->routed);
}

TEST(Engine, PlanSkipsParForReportSource) {
  const Engine engine;
  // Render a report, consume it via the report path: no netlist => no PAR.
  const SynthesisResult synth =
      synthesize(api::make_builtin_prm("uart"), SynthOptions{Family::kVirtex5});
  const std::string path = testing::TempDir() + "/uart_api_test.srp";
  {
    std::ofstream out{path};
    out << report_to_text(synth.report);
  }
  api::PlanRequest request;
  request.device = "v5lx110t";
  request.source.report_path = path;
  const api::PlanResponse response = engine.plan(request);
  EXPECT_FALSE(response.par.has_value());
  EXPECT_TRUE(response.generated_matches_model());
}

TEST(Engine, ErrorCodeMapping) {
  const Engine engine;
  api::PlanRequest request;

  // Missing device: usage.
  request.source.prm = "fir";
  EXPECT_THROW(engine.plan(request), UsageError);

  // Unknown device: not_found.
  request.device = "bogus";
  EXPECT_THROW(engine.plan(request), NotFoundError);

  // Unknown PRM: not_found.
  request.device = "xc5vlx110t";
  request.source.prm = "zzz";
  EXPECT_THROW(engine.plan(request), NotFoundError);

  // Unreadable file: io.
  request.source = {};
  request.source.report_path = "/nonexistent/file.srp";
  EXPECT_THROW(engine.plan(request), IoError);

  // No source at all: usage.
  request.source = {};
  EXPECT_THROW(engine.plan(request), UsageError);

  // Two sources: usage.
  request.source.prm = "fir";
  request.source.report_path = "x.srp";
  EXPECT_THROW(engine.plan(request), UsageError);

  // Infeasible: the matmul DSP demand cannot fit the LX110T's single DSP
  // column.
  request.source = {};
  request.source.prm = "matmul";
  EXPECT_THROW(engine.plan(request), InfeasibleError);

  // explore/rank shape validation: usage.
  api::ExploreRequest explore_request;
  explore_request.device = "xc5vlx110t";
  explore_request.prms = {"fir"};
  EXPECT_THROW(engine.explore(explore_request), UsageError);
  EXPECT_THROW(engine.rank(api::RankRequest{}), UsageError);
}

TEST(Engine, SynthMatchesDirectCall) {
  const Engine engine;
  api::SynthRequest request;
  request.source.prm = "fir";
  request.family = Family::kVirtex6;
  const api::SynthResponse response = engine.synth(request);
  const SynthesisResult direct =
      synthesize(api::make_builtin_prm("fir"), SynthOptions{Family::kVirtex6});
  EXPECT_EQ(response.report.lut_ff_pairs, direct.report.lut_ff_pairs);
  EXPECT_EQ(response.report.dsps, direct.report.dsps);
  EXPECT_EQ(response.report.brams, direct.report.brams);
}

TEST(Engine, ExploreAndRankAreDeterministic) {
  const Engine engine;
  api::ExploreRequest request;
  request.device = "xc6vlx240t";
  request.prms = {"fir", "uart"};
  const api::ExploreResponse a = engine.explore(request);
  request.workers = 2;
  const api::ExploreResponse b = engine.explore(request);
  ASSERT_EQ(a.points.size(), b.points.size());
  EXPECT_EQ(a.pareto_count, b.pareto_count);
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].feasible, b.points[i].feasible);
    EXPECT_EQ(a.points[i].total_prr_area, b.points[i].total_prr_area);
    EXPECT_DOUBLE_EQ(a.points[i].makespan_s, b.points[i].makespan_s);
  }

  api::RankRequest rank_request;
  rank_request.prms = {"fir", "sdram"};
  const api::RankResponse ranked = engine.rank(rank_request);
  ASSERT_FALSE(ranked.choices.empty());
  // Feasible parts sort before infeasible ones.
  bool seen_infeasible = false;
  for (const DeviceChoice& choice : ranked.choices) {
    if (!choice.feasible) seen_infeasible = true;
    if (seen_infeasible) {
      EXPECT_FALSE(choice.feasible);
    }
  }
}

TEST(Engine, DevicesMatchesCatalog) {
  const Engine engine;
  const api::DevicesResponse response = engine.list_devices();
  const auto& all = DeviceDb::instance().all();
  ASSERT_EQ(response.devices.size(), all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(response.devices[i].name, all[i].name);
    EXPECT_EQ(response.devices[i].rows, all[i].fabric.rows());
  }
}

// ------------------------------------------------- request JSON round trip

TEST(Engine, CollectStatsMatchesRegistryDelta) {
  Engine::Options options;
  options.collect_stats = true;
  const Engine engine{options};
  api::PlanRequest request;
  request.device = "xc5vlx110t";
  request.source.prm = "mips";

  obs::set_metrics_enabled(true);
  const obs::Snapshot before = obs::Snapshot::capture();
  const api::PlanResponse response = engine.plan(request);
  const obs::Snapshot after = obs::Snapshot::capture();
  obs::set_metrics_enabled(false);

  ASSERT_TRUE(response.stats.has_value());
  EXPECT_GT(response.stats->wall_ns, 0u);
  EXPECT_FALSE(response.stats->phases.empty());

  // Per-request attribution agrees with the process-global registry: this
  // request was the only traffic between the snapshots, so its cache
  // lookups account for the whole interval delta.
  const obs::Snapshot delta = obs::snapshot_diff(before, after);
  EXPECT_EQ(
      response.stats->plan_cache_hits + response.stats->plan_cache_misses,
      delta.counter("plan_cache.hits") + delta.counter("plan_cache.misses"));
  EXPECT_EQ(response.stats->bitstream_cache_hits +
                response.stats->bitstream_cache_misses,
            delta.counter("bitstream_cache.hits") +
                delta.counter("bitstream_cache.misses"));
  EXPECT_GT(
      response.stats->plan_cache_hits + response.stats->plan_cache_misses, 0u);

  // The wire form carries the block (serialized last) with the documented
  // sub-objects.
  const Json j = Json::parse(api::to_json(response).dump());
  const Json* stats = j.find("stats");
  ASSERT_NE(stats, nullptr);
  ASSERT_NE(stats->find("cache"), nullptr);
  EXPECT_EQ(stats->find("cache")->find("plan_hits")->as_u64(),
            response.stats->plan_cache_hits);
  ASSERT_NE(stats->find("phases"), nullptr);
}

TEST(Engine, StatsOffOmitsBlockEntirely) {
  const Engine engine;  // collect_stats defaults to false
  api::PlanRequest request;
  request.device = "xc5vlx110t";
  request.source.prm = "fir";
  const api::PlanResponse response = engine.plan(request);
  EXPECT_FALSE(response.stats.has_value());
  // Byte-level contract: the serialized response has no "stats" member at
  // all, keeping stats-off output identical to pre-telemetry builds.
  EXPECT_EQ(api::to_json(response).dump().find("\"stats\""),
            std::string::npos);
}

TEST(RequestJson, PlanRoundTrip) {
  api::PlanRequest request;
  request.device = "xc6vlx75t";
  request.source.prm = "mips";
  request.objective = SearchObjective::kMinBitstream;
  request.shaped = true;
  request.cross_check = false;
  const Json wire = api::to_json(request);
  const api::PlanRequest parsed =
      api::plan_request_from_json(Json::parse(wire.dump()));
  EXPECT_EQ(parsed.device, request.device);
  EXPECT_EQ(parsed.source.prm, request.source.prm);
  EXPECT_EQ(parsed.objective, request.objective);
  EXPECT_EQ(parsed.shaped, request.shaped);
  EXPECT_EQ(parsed.cross_check, request.cross_check);
}

TEST(RequestJson, ExploreAndRankRoundTrip) {
  api::ExploreRequest explore_request;
  explore_request.device = "xc6vlx240t";
  explore_request.prms = {"fir", "uart", "crc32"};
  explore_request.workers = 4;
  explore_request.max_groups = 2;
  const api::ExploreRequest explore_parsed = api::explore_request_from_json(
      Json::parse(api::to_json(explore_request).dump()));
  EXPECT_EQ(explore_parsed.device, explore_request.device);
  EXPECT_EQ(explore_parsed.prms, explore_request.prms);
  EXPECT_EQ(explore_parsed.workers, explore_request.workers);
  EXPECT_EQ(explore_parsed.max_groups, explore_request.max_groups);

  api::RankRequest rank_request;
  rank_request.prms = {"fir"};
  rank_request.tasks = 7;
  const api::RankRequest rank_parsed = api::rank_request_from_json(
      Json::parse(api::to_json(rank_request).dump()));
  EXPECT_EQ(rank_parsed.prms, rank_request.prms);
  EXPECT_EQ(rank_parsed.tasks, rank_request.tasks);
}

TEST(RequestJson, DefaultsApply) {
  const api::PlanRequest request = api::plan_request_from_json(
      Json::parse("{\"device\":\"v5lx110t\",\"prm\":\"fir\"}"));
  EXPECT_EQ(request.objective, SearchObjective::kMinArea);
  EXPECT_FALSE(request.shaped);
  EXPECT_TRUE(request.cross_check);
}

TEST(ResponseJson, PlanResponseFields) {
  const Engine engine;
  api::PlanRequest request;
  request.device = "xc5vlx110t";
  request.source.prm = "fir";
  request.shaped = true;
  const Json j = api::to_json(engine.plan(request));
  const Json parsed = Json::parse(j.dump());
  EXPECT_EQ(parsed.find("device")->as_string(), "xc5vlx110t");
  const Json* plan = parsed.find("plan");
  ASSERT_NE(plan, nullptr);
  EXPECT_GT(plan->find("organization")->find("size")->as_u64(), 0u);
  EXPECT_GT(plan->find("bitstream")->find("total_bytes")->as_u64(), 0u);
  EXPECT_TRUE(parsed.find("model_match")->as_bool());
  ASSERT_NE(parsed.find("shaped"), nullptr);
}

// ---------------------------------------------------------------- batch --

TEST(Batch, DispatchEnvelopes) {
  const Engine engine;
  const Json ok = api::dispatch_line(
      engine, "{\"op\":\"plan\",\"device\":\"v5lx110t\",\"prm\":\"fir\","
              "\"id\":\"r1\"}");
  EXPECT_EQ(ok.find("id")->as_string(), "r1");
  EXPECT_EQ(ok.find("op")->as_string(), "plan");
  EXPECT_NE(ok.find("result"), nullptr);
  EXPECT_EQ(ok.find("error"), nullptr);

  const auto error_code = [&](std::string_view line) {
    const Json envelope = api::dispatch_line(engine, line);
    const Json* error = envelope.find("error");
    EXPECT_NE(error, nullptr) << line;
    return error == nullptr ? std::string{} : error->find("code")->as_string();
  };
  EXPECT_EQ(error_code("{\"op\":\"plan\",\"device\":\"nope\",\"prm\":\"fir\"}"),
            "not_found");
  EXPECT_EQ(error_code(
                "{\"op\":\"plan\",\"device\":\"v5lx110t\",\"prm\":\"matmul\"}"),
            "infeasible");
  EXPECT_EQ(error_code("{\"op\":\"plan\",\"prm\":\"fir\"}"), "usage");
  EXPECT_EQ(error_code("{\"op\":\"nope\"}"), "not_found");
  EXPECT_EQ(error_code("{\"device\":\"v5lx110t\"}"), "usage");
  EXPECT_EQ(error_code("this is not json"), "parse");
  EXPECT_EQ(error_code("[\"an\",\"array\"]"), "usage");
  EXPECT_EQ(error_code("{\"op\":\"plan\",\"device\":\"v5lx110t\","
                       "\"report\":\"/no/such/file\"}"),
            "io");
}

TEST(Batch, OneResponsePerLineInInputOrder) {
  const Engine engine;
  std::stringstream in;
  const int count = 40;
  for (int i = 0; i < count; ++i) {
    switch (i % 4) {
      case 0:
        in << "{\"op\":\"plan\",\"device\":\"v5lx110t\",\"prm\":\"fir\","
              "\"id\":" << i << "}\n";
        break;
      case 1:
        in << "{\"op\":\"plan\",\"device\":\"v5lx110t\",\"prm\":\"matmul\","
              "\"id\":" << i << "}\n";
        break;
      case 2:
        in << "malformed line " << i << "\n";
        break;
      case 3:
        in << "{\"op\":\"synth\",\"prm\":\"uart\",\"id\":" << i << "}\n";
        break;
    }
  }
  std::stringstream out;
  const api::BatchStats stats = api::run_batch(engine, in, out, {});
  EXPECT_EQ(stats.requests, static_cast<std::size_t>(count));
  EXPECT_EQ(stats.succeeded + stats.failed, stats.requests);
  EXPECT_EQ(stats.failed, static_cast<std::size_t>(count / 2));

  int lines = 0;
  for (std::string line; std::getline(out, line); ++lines) {
    ASSERT_LT(lines, count);
    const Json envelope = Json::parse(line);  // every line is valid JSON
    const bool is_error = envelope.find("error") != nullptr;
    switch (lines % 4) {
      case 0:
      case 3:
        EXPECT_FALSE(is_error) << line;
        EXPECT_EQ(envelope.find("id")->as_i64(), lines);  // input order
        break;
      case 1:
        EXPECT_EQ(envelope.find("error")->find("code")->as_string(),
                  "infeasible");
        EXPECT_EQ(envelope.find("id")->as_i64(), lines);
        break;
      case 2:
        EXPECT_EQ(envelope.find("error")->find("code")->as_string(), "parse");
        break;
    }
  }
  EXPECT_EQ(lines, count);
}

}  // namespace
}  // namespace prcost
