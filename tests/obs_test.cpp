// Tests for the observability subsystem (src/obs): concurrent counter
// exactness, histogram bucket boundaries, span nesting / Chrome-trace JSON
// well-formedness (parsed back with a minimal JSON parser), and the
// disabled no-op paths.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "util/parallel.hpp"

namespace prcost {
namespace {

// --- minimal JSON parser ---------------------------------------------------
// Validates syntax and collects every (key, string-value) pair so tests can
// assert which span names appear. Numbers/bools/null are validated but not
// retained.
class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  bool parse() {
    skip_ws();
    if (!parse_value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

  const std::vector<std::pair<std::string, std::string>>& string_members()
      const {
    return members_;
  }

 private:
  bool parse_value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        std::string s;
        return parse_string(s);
      }
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return parse_number();
    }
  }

  bool parse_object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (peek() == '"') {
        std::string value;
        if (!parse_string(value)) return false;
        members_.emplace_back(std::move(key), std::move(value));
      } else if (!parse_value()) {
        return false;
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool parse_array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!parse_value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool parse_string(std::string& out) {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      out += text_[pos_++];
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
  std::vector<std::pair<std::string, std::string>> members_;
};

std::vector<std::string> span_names(const JsonParser& parser) {
  std::vector<std::string> names;
  for (const auto& [key, value] : parser.string_members()) {
    if (key == "name") names.push_back(value);
  }
  return names;
}

u64 count_of(const std::vector<std::string>& names, std::string_view want) {
  u64 n = 0;
  for (const auto& name : names) {
    if (name == want) ++n;
  }
  return n;
}

// --- metrics ---------------------------------------------------------------

TEST(ObsMetrics, ConcurrentCounterSumsExactly) {
  obs::set_metrics_enabled(true);
  obs::Counter& counter = obs::registry().counter("test.concurrent");
  counter.reset();
  constexpr int kThreads = 8;
  constexpr u64 kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (u64 i = 0; i < kPerThread; ++i) counter.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  obs::set_metrics_enabled(false);
}

TEST(ObsMetrics, CounterMacroBatchesDeltas) {
  obs::set_metrics_enabled(true);
  obs::registry().counter("test.macro_batch").reset();
  PRCOST_COUNT_N("test.macro_batch", 5);
  PRCOST_COUNT("test.macro_batch");
  EXPECT_EQ(obs::registry().counter("test.macro_batch").value(), 6u);
  obs::set_metrics_enabled(false);
}

TEST(ObsMetrics, HistogramBucketBoundaries) {
  obs::set_metrics_enabled(true);
  obs::Histogram& hist =
      obs::registry().histogram("test.hist", {10.0, 100.0, 1000.0});
  hist.reset();
  // "le" buckets: upper bounds are inclusive.
  hist.record(5);     // -> le10
  hist.record(10);    // -> le10 (boundary inclusive)
  hist.record(10.5);  // -> le100
  hist.record(100);   // -> le100
  hist.record(1000);  // -> le1000
  hist.record(1001);  // -> overflow
  const auto buckets = hist.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 2u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(hist.count(), 6u);
  EXPECT_DOUBLE_EQ(hist.sum(), 5 + 10 + 10.5 + 100 + 1000 + 1001);
  obs::set_metrics_enabled(false);
}

TEST(ObsMetrics, GaugeSetAndAdd) {
  obs::set_metrics_enabled(true);
  obs::Gauge& gauge = obs::registry().gauge("test.gauge");
  gauge.set(2.5);
  gauge.add(1.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 4.0);
  obs::set_metrics_enabled(false);
}

TEST(ObsMetrics, DisabledRegistryIsNoOp) {
  obs::set_metrics_enabled(false);
  obs::Counter& counter = obs::registry().counter("test.disabled");
  counter.reset();
  counter.add(7);
  PRCOST_COUNT_N("test.disabled", 7);
  EXPECT_EQ(counter.value(), 0u);
  obs::Histogram& hist = obs::registry().histogram("test.disabled_hist", {1.0});
  hist.reset();
  hist.record(0.5);
  EXPECT_EQ(hist.count(), 0u);
}

TEST(ObsMetrics, JsonExportParses) {
  obs::set_metrics_enabled(true);
  obs::registry().counter("test.json_counter").reset();
  PRCOST_COUNT_N("test.json_counter", 3);
  PRCOST_HIST("test.json_hist", 42, 10.0, 100.0);
  obs::set_metrics_enabled(false);
  JsonParser parser{obs::registry().to_json()};
  EXPECT_TRUE(parser.parse());
}

// --- quantiles -------------------------------------------------------------

TEST(ObsQuantile, InterpolatesExactlyOnUniformData) {
  // 1..100 uniformly into {10, 50, 100}: the linear interpolation inside
  // each bucket reconstructs the underlying uniform distribution exactly.
  obs::Histogram hist{{10.0, 50.0, 100.0}};
  for (int v = 1; v <= 100; ++v) hist.record_unchecked(v);
  EXPECT_DOUBLE_EQ(hist.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(hist.quantile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(hist.quantile(1.0), 100.0);
}

TEST(ObsQuantile, FirstBucketLowerEdgeIsZero) {
  // 4 samples all in (..,10]: p50 ranks 2 of 4, interpolated from a lower
  // edge of min(0, bound) = 0, so the estimate is 10 * 2/4.
  EXPECT_DOUBLE_EQ(obs::histogram_quantile({10.0}, {4, 0}, 0.5), 5.0);
}

TEST(ObsQuantile, EmptyHistogramIsNaN) {
  obs::Histogram hist{{10.0}};
  EXPECT_TRUE(std::isnan(hist.quantile(0.5)));
  EXPECT_TRUE(std::isnan(obs::histogram_quantile({10.0}, {0, 0}, 0.99)));
}

TEST(ObsQuantile, OverflowBucketClampsToLastBound) {
  // Every sample in the +Inf bucket: the estimate can only say ">= last
  // finite bound", so it clamps there instead of inventing an upper edge.
  EXPECT_DOUBLE_EQ(obs::histogram_quantile({10.0, 100.0}, {0, 0, 7}, 0.99),
                   100.0);
}

// --- OpenMetrics exposition ------------------------------------------------

TEST(ObsOpenMetrics, EscapesLabelValues) {
  EXPECT_EQ(obs::openmetrics_escape_label("a\\b\"c\nd"),
            "a\\\\b\\\"c\\nd");
  EXPECT_EQ(obs::openmetrics_escape_label("plain"), "plain");
}

TEST(ObsOpenMetrics, SanitizesNames) {
  EXPECT_EQ(obs::openmetrics_name("plan_cache.hits"),
            "prcost_plan_cache_hits");
  EXPECT_EQ(obs::openmetrics_name("a-b c"), "prcost_a_b_c");
}

TEST(ObsOpenMetrics, ExpositionHasFamiliesSamplesAndEof) {
  obs::set_metrics_enabled(true);
  obs::registry().counter("test.om_counter").reset();
  PRCOST_COUNT_N("test.om_counter", 3);
  PRCOST_HIST("test.om_hist", 42, 10.0, 100.0);
  obs::set_metrics_enabled(false);
  const std::string text = obs::registry().to_openmetrics();
  EXPECT_NE(text.find("# TYPE prcost_test_om_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("prcost_test_om_counter_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE prcost_test_om_hist histogram"),
            std::string::npos);
  EXPECT_NE(text.find("prcost_test_om_hist_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("prcost_test_om_hist_count"), std::string::npos);
  EXPECT_TRUE(text.ends_with("# EOF\n")) << text;
}

// --- snapshots -------------------------------------------------------------

TEST(ObsSnapshot, DiffSubtractsCountsAndKeepsGaugeAfterValue) {
  obs::set_metrics_enabled(true);
  obs::registry().counter("test.diff_counter").reset();
  PRCOST_COUNT_N("test.diff_counter", 2);
  PRCOST_GAUGE_SET("test.diff_gauge", 1.0);
  PRCOST_HIST("test.diff_hist", 5, 10.0, 100.0);
  const obs::Snapshot before = obs::Snapshot::capture();
  PRCOST_COUNT_N("test.diff_counter", 5);
  PRCOST_GAUGE_SET("test.diff_gauge", 7.5);
  PRCOST_HIST("test.diff_hist", 50, 10.0, 100.0);
  PRCOST_HIST("test.diff_hist", 500, 10.0, 100.0);
  const obs::Snapshot after = obs::Snapshot::capture();
  obs::set_metrics_enabled(false);

  const obs::Snapshot diff = obs::snapshot_diff(before, after);
  EXPECT_EQ(diff.counter("test.diff_counter"), 5u);
  const obs::MetricSnapshot* gauge = diff.find("test.diff_gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->value, 7.5);  // gauges keep the `after` value
  const obs::MetricSnapshot* hist = diff.find("test.diff_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 2u);  // interval samples only
  ASSERT_EQ(hist->buckets.size(), 3u);
  EXPECT_EQ(hist->buckets[0], 0u);
  EXPECT_EQ(hist->buckets[1], 1u);  // the 50
  EXPECT_EQ(hist->buckets[2], 1u);  // the 500 (overflow)
  EXPECT_EQ(diff.counter("test.never_registered"), 0u);
}

// --- request-scoped stats --------------------------------------------------

TEST(ObsRequestStats, NestedScopeCapturesItsOwnEvents) {
  obs::RequestStats outer;
  ASSERT_EQ(obs::RequestStats::current(), &outer);
  PRCOST_REQUEST_EVENT(kPlanCacheHit);
  {
    obs::RequestStats inner;
    ASSERT_EQ(obs::RequestStats::current(), &inner);
    PRCOST_REQUEST_EVENT(kPlanCacheHit);
    PRCOST_REQUEST_EVENT(kRetry);
    const obs::RequestStatsSummary s = inner.summary();
    EXPECT_EQ(s.plan_cache_hits, 1u);
    EXPECT_EQ(s.retries, 1u);
  }
  // Inner destruction restored the outer scope; its events stayed inner.
  ASSERT_EQ(obs::RequestStats::current(), &outer);
  PRCOST_REQUEST_EVENT(kBitstreamCacheMiss);
  const obs::RequestStatsSummary s = outer.summary();
  EXPECT_EQ(s.plan_cache_hits, 1u);
  EXPECT_EQ(s.bitstream_cache_misses, 1u);
  EXPECT_EQ(s.retries, 0u);
}

TEST(ObsRequestStats, NoScopeMeansEventsVanish) {
  ASSERT_EQ(obs::RequestStats::current(), nullptr);
  PRCOST_REQUEST_EVENT(kPlanCacheHit);  // must be a safe no-op
  EXPECT_FALSE(obs::request_tracking_active());
}

TEST(ObsRequestStats, PropagatesThroughParallelForWorkers) {
  obs::RequestStats stats;
  std::atomic<u64> attributed{0};
  parallel_for(64, [&](std::size_t) {
    if (obs::RequestStats::current() == &stats) {
      attributed.fetch_add(1, std::memory_order_relaxed);
    }
    PRCOST_REQUEST_EVENT(kBitstreamCacheHit);
  });
  // Every worker (pool thread or submitter) saw the submitting scope.
  EXPECT_EQ(attributed.load(), 64u);
  EXPECT_EQ(stats.summary().bitstream_cache_hits, 64u);
  EXPECT_EQ(obs::RequestStats::current(), &stats);
}

TEST(ObsRequestStats, CapturesPhasesWithoutGlobalTracing) {
  obs::clear_trace();
  obs::set_tracing(false);
  obs::RequestStats stats;
  {
    PRCOST_TRACE_SPAN("request_only_phase");
    {
      PRCOST_TRACE_SPAN("request_only_child");
    }
  }
  const obs::RequestStatsSummary s = stats.summary();
  ASSERT_EQ(s.phases.size(), 2u);
  // Sorted by self time descending; both labels present exactly once.
  u64 seen = 0;
  for (const auto& phase : s.phases) {
    EXPECT_EQ(phase.count, 1u);
    EXPECT_LE(phase.self_ns, phase.total_ns);
    EXPECT_LE(phase.max_ns, phase.total_ns);
    if (phase.name == "request_only_phase" ||
        phase.name == "request_only_child") {
      ++seen;
    }
  }
  EXPECT_EQ(seen, 2u);
  // The global ring stayed untouched: spans fed the scope, not the trace.
  EXPECT_EQ(obs::trace_span_count(), 0u);
}

TEST(ObsRequestStats, WallClockAdvances) {
  obs::RequestStats stats;
  const u64 first = stats.summary().wall_ns;
  const u64 second = stats.summary().wall_ns;
  EXPECT_GE(second, first);
}

#if !defined(PRCOST_NO_ALLOC_HOOKS)
TEST(ObsRequestStats, CountsHeapAllocations) {
  obs::RequestStats stats;
  const u64 before = stats.summary().allocations;
  auto* leak_free = new std::vector<int>(1024);
  delete leak_free;
  EXPECT_GT(stats.summary().allocations, before);
}
#endif

// --- tracing ---------------------------------------------------------------

TEST(ObsTrace, SpanNestingProducesWellFormedChromeJson) {
  obs::clear_trace();
  obs::set_tracing(true);
  {
    PRCOST_TRACE_SPAN("outer");
    for (int i = 0; i < 2; ++i) {
      PRCOST_TRACE_SPAN("inner");
    }
  }
  obs::set_tracing(false);

  const std::string json = obs::chrome_trace_json();
  JsonParser parser{json};
  ASSERT_TRUE(parser.parse()) << json;
  const auto names = span_names(parser);
  EXPECT_EQ(count_of(names, "outer"), 1u);
  EXPECT_EQ(count_of(names, "inner"), 2u);

  // Nesting: outer's self time excludes the two inner spans.
  for (const auto& row : obs::trace_summary()) {
    if (row.name == "outer") {
      EXPECT_EQ(row.count, 1u);
      EXPECT_LE(row.self_ns, row.total_ns);
    }
  }
  const auto spans = obs::trace_spans();
  u64 inner_total = 0, outer_total = 0, outer_self = 0;
  for (const auto& span : spans) {
    if (std::string_view{span.name} == "inner") {
      inner_total += span.dur_ns;
      EXPECT_EQ(span.depth, 1u);
    }
    if (std::string_view{span.name} == "outer") {
      outer_total = span.dur_ns;
      outer_self = span.self_ns;
      EXPECT_EQ(span.depth, 0u);
    }
  }
  EXPECT_LE(outer_self + inner_total, outer_total + 1);  // +1: ns rounding
  obs::clear_trace();
}

TEST(ObsTrace, DisabledSpanRecordsNothing) {
  obs::clear_trace();
  obs::set_tracing(false);
  {
    PRCOST_TRACE_SPAN("never_recorded");
  }
  EXPECT_EQ(obs::trace_span_count(), 0u);
}

TEST(ObsTrace, MultiThreadSpansLandInDistinctTracks) {
  obs::clear_trace();
  obs::set_tracing(true);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      PRCOST_TRACE_SPAN("worker");
    });
  }
  for (auto& t : threads) t.join();
  obs::set_tracing(false);
  JsonParser parser{obs::chrome_trace_json()};
  ASSERT_TRUE(parser.parse());
  EXPECT_EQ(count_of(span_names(parser), "worker"), 4u);
  obs::clear_trace();
}

TEST(ObsTrace, FoldedStacksJoinAncestryWithSemicolons) {
  obs::clear_trace();
  obs::set_tracing(true);
  {
    PRCOST_TRACE_SPAN("fold_outer");
    {
      PRCOST_TRACE_SPAN("fold_inner");
    }
    {
      PRCOST_TRACE_SPAN("fold_inner");
    }
  }
  obs::set_tracing(false);
  const std::string folded = obs::folded_stacks();
  // One line per distinct stack, "frames... self_ns", root alone and the
  // two inner occurrences merged into one aggregated line.
  EXPECT_NE(folded.find("fold_outer "), std::string::npos) << folded;
  EXPECT_NE(folded.find("fold_outer;fold_inner "), std::string::npos)
      << folded;
  EXPECT_EQ(folded.find("fold_inner;"), std::string::npos) << folded;
  obs::clear_trace();
}

TEST(ObsTrace, SummaryTableRenders) {
  obs::clear_trace();
  obs::set_tracing(true);
  {
    PRCOST_TRACE_SPAN("summary_span");
  }
  obs::set_tracing(false);
  const TextTable table = obs::trace_summary_table();
  EXPECT_GE(table.row_count(), 1u);
  EXPECT_NE(table.to_ascii().find("summary_span"), std::string::npos);
  obs::clear_trace();
}

}  // namespace
}  // namespace prcost
