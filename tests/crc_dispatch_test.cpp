// Equivalence tests for the runtime-dispatched configuration CRC: every
// available implementation (bit-serial oracle, sliced tables, SSE4.2
// crc32, PCLMUL folding) must produce identical states over random spans,
// spans straddling every block boundary the hardware kernels care about
// (the 64-word lane block and the 128-word fold superblock), and every
// length 0..64 word by word.
#include <gtest/gtest.h>

#include <vector>

#include "bitstream/crc.hpp"
#include "util/rng.hpp"

namespace prcost {
namespace {

std::vector<CrcImpl> available_impls() {
  std::vector<CrcImpl> impls;
  for (const CrcImpl impl :
       {CrcImpl::kBitSerial, CrcImpl::kSliced, CrcImpl::kHwCrc32,
        CrcImpl::kHwClmul}) {
    if (crc_impl_available(impl)) impls.push_back(impl);
  }
  return impls;
}

std::vector<u32> random_words(Rng& rng, std::size_t n) {
  std::vector<u32> words(n);
  for (auto& w : words) w = static_cast<u32>(rng());
  return words;
}

TEST(CrcDispatch, SoftwareImplsAlwaysAvailable) {
  EXPECT_TRUE(crc_impl_available(CrcImpl::kBitSerial));
  EXPECT_TRUE(crc_impl_available(CrcImpl::kSliced));
  EXPECT_TRUE(crc_impl_available(active_crc_impl()));
}

TEST(CrcDispatch, ImplNamesAreStable) {
  EXPECT_STREQ(crc_impl_name(CrcImpl::kBitSerial), "bitserial");
  EXPECT_STREQ(crc_impl_name(CrcImpl::kSliced), "sliced");
  EXPECT_STREQ(crc_impl_name(CrcImpl::kHwCrc32), "hw-crc32");
  EXPECT_STREQ(crc_impl_name(CrcImpl::kHwClmul), "hw-clmul");
}

TEST(CrcDispatch, AllImplsMatchOracleOnAllLengthsUpTo64) {
  Rng rng{0xC0FFEE01};
  const auto impls = available_impls();
  for (std::size_t len = 0; len <= 64; ++len) {
    const auto words = random_words(rng, len);
    for (const ConfigReg reg : {ConfigReg::kFdri, ConfigReg::kCmd,
                                ConfigReg::kFar}) {
      const u32 oracle = config_crc_advance(CrcImpl::kBitSerial, 0x12345678u,
                                            reg, words);
      for (const CrcImpl impl : impls) {
        EXPECT_EQ(config_crc_advance(impl, 0x12345678u, reg, words), oracle)
            << crc_impl_name(impl) << " len=" << len;
      }
    }
  }
}

TEST(CrcDispatch, AllImplsMatchOracleAroundBlockBoundaries) {
  Rng rng{0xC0FFEE02};
  const auto impls = available_impls();
  // The hw kernels switch strategy at 64-word (crc32 lanes) and 128-word
  // (clmul superblock) boundaries; exercise one span on each side.
  for (const std::size_t len :
       {std::size_t{63}, std::size_t{64}, std::size_t{65}, std::size_t{127},
        std::size_t{128}, std::size_t{129}, std::size_t{191},
        std::size_t{192}, std::size_t{255}, std::size_t{256},
        std::size_t{257}, std::size_t{1000}}) {
    const auto words = random_words(rng, len);
    const u32 oracle =
        config_crc_advance(CrcImpl::kBitSerial, 0, ConfigReg::kFdri, words);
    for (const CrcImpl impl : impls) {
      EXPECT_EQ(config_crc_advance(impl, 0, ConfigReg::kFdri, words), oracle)
          << crc_impl_name(impl) << " len=" << len;
    }
  }
}

TEST(CrcDispatch, StateThreadsThroughSplitSpans) {
  // Splitting a span anywhere and threading the state through must equal
  // one contiguous advance, for every implementation.
  Rng rng{0xC0FFEE03};
  const auto words = random_words(rng, 300);
  const std::span<const u32> all{words};
  for (const CrcImpl impl : available_impls()) {
    const u32 whole = config_crc_advance(impl, 0, ConfigReg::kFdri, all);
    for (const std::size_t cut : {std::size_t{1}, std::size_t{37},
                                  std::size_t{64}, std::size_t{129},
                                  std::size_t{299}}) {
      u32 s = config_crc_advance(impl, 0, ConfigReg::kFdri, all.first(cut));
      s = config_crc_advance(impl, s, ConfigReg::kFdri, all.subspan(cut));
      EXPECT_EQ(s, whole) << crc_impl_name(impl) << " cut=" << cut;
    }
  }
}

TEST(CrcDispatch, CorruptedSpansDiverge) {
  // Flipping any single bit in a burst must change the CRC under every
  // implementation (it is a CRC, after all), and all implementations must
  // agree on the corrupted value too.
  Rng rng{0xC0FFEE04};
  const auto impls = available_impls();
  auto words = random_words(rng, 130);
  const u32 clean =
      config_crc_advance(CrcImpl::kBitSerial, 0, ConfigReg::kFdri, words);
  for (const std::size_t at : {std::size_t{0}, std::size_t{63},
                               std::size_t{64}, std::size_t{127},
                               std::size_t{128}, std::size_t{129}}) {
    words[at] ^= 1u << (at % 32);
    const u32 corrupt =
        config_crc_advance(CrcImpl::kBitSerial, 0, ConfigReg::kFdri, words);
    EXPECT_NE(corrupt, clean) << "bit flip at word " << at;
    for (const CrcImpl impl : impls) {
      EXPECT_EQ(config_crc_advance(impl, 0, ConfigReg::kFdri, words),
                corrupt)
          << crc_impl_name(impl) << " at=" << at;
    }
    words[at] ^= 1u << (at % 32);
  }
}

TEST(CrcDispatch, ConfigCrcMatchesOracleUnderEveryForcedImpl) {
  Rng rng{0xC0FFEE05};
  const auto words = random_words(rng, 200);
  BitSerialConfigCrc oracle;
  for (const u32 w : words) oracle.update(ConfigReg::kFdri, w);
  oracle.update(ConfigReg::kCmd, 0x5);

  const CrcImpl before = active_crc_impl();
  for (const CrcImpl impl : available_impls()) {
    ASSERT_TRUE(set_crc_impl(impl));
    EXPECT_EQ(active_crc_impl(), impl);
    ConfigCrc crc;
    crc.update_span(ConfigReg::kFdri, words);
    crc.update(ConfigReg::kCmd, 0x5);
    EXPECT_EQ(crc.value(), oracle.value()) << crc_impl_name(impl);
  }
  ASSERT_TRUE(set_crc_impl(before));
}

TEST(CrcDispatch, SetCrcImplRejectsUnavailable) {
  for (const CrcImpl impl : {CrcImpl::kHwCrc32, CrcImpl::kHwClmul}) {
    if (!crc_impl_available(impl)) {
      const CrcImpl before = active_crc_impl();
      EXPECT_FALSE(set_crc_impl(impl));
      EXPECT_EQ(active_crc_impl(), before);
    }
  }
}

TEST(Crc32cBytes, MatchesKnownVectors) {
  // RFC 3720 iSCSI test vectors for CRC-32C.
  const unsigned char zeros[32] = {};
  EXPECT_EQ(crc32c_bytes(zeros, sizeof zeros), 0x8A9136AAu);
  unsigned char ones[32];
  for (auto& b : ones) b = 0xFF;
  EXPECT_EQ(crc32c_bytes(ones, sizeof ones), 0x62A8AB43u);
  unsigned char ascending[32];
  for (u32 i = 0; i < 32; ++i) ascending[i] = static_cast<unsigned char>(i);
  EXPECT_EQ(crc32c_bytes(ascending, sizeof ascending), 0x46DD794Eu);
  EXPECT_EQ(crc32c_bytes("123456789", 9), 0xE3069283u);
}

TEST(Crc32cBytes, SensitiveToEveryByte) {
  Rng rng{0xC0FFEE06};
  std::vector<unsigned char> data(100);
  for (auto& b : data) b = static_cast<unsigned char>(rng.below(256));
  const u32 clean = crc32c_bytes(data.data(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 0x40;
    EXPECT_NE(crc32c_bytes(data.data(), data.size()), clean) << i;
    data[i] ^= 0x40;
  }
}

}  // namespace
}  // namespace prcost
