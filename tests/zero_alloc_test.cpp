// Zero-allocation enforcement for the warm request path.
//
// The operator-new replacement in obs/request_stats.cpp counts every heap
// allocation made while a request scope is live; these tests pin the
// steady-state contract: once the process caches are warm (plan cache,
// bitstream cache, builtin-requirements memo, scratch arena, trace rings),
// a repeated plan or bitstream request performs ZERO heap allocations.
// Any regression — a std::map rebuilt per request, a vector copied out of
// a cache, a string that outgrew SSO — shows up here as a nonzero count.
#include <gtest/gtest.h>

#include "api/engine.hpp"
#include "util/arena.hpp"

namespace prcost {
namespace {

api::Engine stats_engine() {
  api::Engine::Options options;
  options.collect_stats = true;
  return api::Engine{options};
}

TEST(ZeroAlloc, WarmPlanRequestAllocatesNothing) {
  const api::Engine engine = stats_engine();
  api::PlanRequest request;
  request.device = "xc5vlx110t";
  request.source.prm = "fir";
  // The cross-check flow re-synthesizes and re-runs PAR by design; the
  // zero-alloc contract covers the cached model path.
  request.cross_check = false;

  // Cold pass fills the plan cache and the builtin-requirements memo (and
  // is expected to allocate); one more pass absorbs any remaining lazy
  // per-thread initialization (trace ring, metrics sites).
  const api::PlanResponse cold = engine.plan(request);
  ASSERT_TRUE(cold.stats.has_value());
  EXPECT_GT(cold.stats->allocations, 0u);
  engine.plan(request);

  const api::PlanResponse warm = engine.plan(request);
  ASSERT_TRUE(warm.stats.has_value());
  EXPECT_EQ(warm.stats->allocations, 0u);
  EXPECT_GE(warm.stats->plan_cache_hits, 1u);
  EXPECT_EQ(warm.stats->plan_cache_misses, 0u);
  // Warm answers are identical to cold ones.
  EXPECT_EQ(warm.plan.organization.h, cold.plan.organization.h);
  EXPECT_EQ(warm.plan.bitstream.total_words, cold.plan.bitstream.total_words);
}

TEST(ZeroAlloc, WarmBitstreamRequestAllocatesNothing) {
  const api::Engine engine = stats_engine();
  api::BitstreamRequest request;
  request.device = "xc5vlx110t";
  request.source.prm = "uart";

  const api::BitstreamResponse cold = engine.bitstream(request);
  ASSERT_TRUE(cold.words != nullptr);
  engine.bitstream(request);

  const api::BitstreamResponse warm = engine.bitstream(request);
  ASSERT_TRUE(warm.stats.has_value());
  EXPECT_EQ(warm.stats->allocations, 0u);
  EXPECT_GE(warm.stats->bitstream_cache_hits, 1u);
  // The warm response shares the cached words (same vector, not a copy).
  ASSERT_TRUE(warm.words != nullptr);
  EXPECT_EQ(warm.words.get(), cold.words.get());
  EXPECT_EQ(*warm.words, *cold.words);
  EXPECT_EQ(warm.total_bytes, cold.total_bytes);
}

TEST(ZeroAlloc, DistinctWarmRequestsStayAtZero) {
  // Zero-alloc must hold per requirement set, not just for one pet input.
  const api::Engine engine = stats_engine();
  for (const char* prm : {"fir", "uart", "crc32"}) {
    api::PlanRequest request;
    request.device = "xc5vlx50t";
    request.source.prm = prm;
    request.cross_check = false;
    engine.plan(request);
    engine.plan(request);
    const api::PlanResponse warm = engine.plan(request);
    ASSERT_TRUE(warm.stats.has_value());
    EXPECT_EQ(warm.stats->allocations, 0u) << prm;
  }
}

TEST(ZeroAlloc, ArenaRetainsCapacityAcrossScopes) {
  Arena arena{1024};
  std::size_t grown = 0;
  {
    const auto marker = arena.mark();
    for (int i = 0; i < 100; ++i) arena.allocate(128, 8);
    grown = arena.capacity();
    EXPECT_GT(grown, 0u);
    arena.rewind(marker);
  }
  // A second identical pass reuses the retained chunks: no growth.
  {
    const auto marker = arena.mark();
    for (int i = 0; i < 100; ++i) arena.allocate(128, 8);
    EXPECT_EQ(arena.capacity(), grown);
    arena.rewind(marker);
  }
}

TEST(ZeroAlloc, ArenaAlignsAndNests) {
  Arena arena{256};
  void* a = arena.allocate(3, 1);
  void* b = arena.allocate(8, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 64, 0u);
  EXPECT_NE(a, b);
  const auto outer = arena.mark();
  void* c = arena.allocate(1000, 8);  // forces a second chunk
  EXPECT_NE(c, nullptr);
  {
    const auto inner = arena.mark();
    arena.allocate(5000, 8);
    arena.rewind(inner);
  }
  arena.rewind(outer);
  // After rewinding, the same request lands back on retained memory.
  void* c2 = arena.allocate(1000, 8);
  EXPECT_EQ(c, c2);
}

}  // namespace
}  // namespace prcost
