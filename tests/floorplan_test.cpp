#include <gtest/gtest.h>

#include "cost/floorplan.hpp"
#include "device/device_db.hpp"
#include "paperdata/paper_dataset.hpp"
#include "util/error.hpp"

namespace prcost {
namespace {

const Fabric& lx110t() {
  return DeviceDb::instance().get("xc5vlx110t").fabric;
}

PrmRequirements small_logic() {
  PrmRequirements req;
  req.lut_ff_pairs = 300;  // 38 CLBs -> 2 columns at H=1
  req.luts = 250;
  req.ffs = 200;
  return req;
}

TEST(Floorplanner, StartsEmpty) {
  Floorplanner fp{lx110t()};
  EXPECT_DOUBLE_EQ(fp.occupancy(), 0.0);
  EXPECT_TRUE(fp.rect_free(0, 3, 0, 2));
}

TEST(Floorplanner, ReserveBlocksPlacement) {
  Floorplanner fp{lx110t()};
  fp.reserve(0, lx110t().num_columns(), 0, lx110t().rows());  // everything
  EXPECT_FALSE(fp.place("p", small_logic()).has_value());
  EXPECT_GT(fp.occupancy(), 0.99);
}

TEST(Floorplanner, ReserveOutOfRangeThrows) {
  Floorplanner fp{lx110t()};
  EXPECT_THROW(fp.reserve(0, lx110t().num_columns() + 1, 0, 1),
               ContractError);
  EXPECT_THROW(fp.reserve(0, 1, 0, lx110t().rows() + 1), ContractError);
}

TEST(Floorplanner, PlacementsDoNotOverlap) {
  Floorplanner fp{lx110t()};
  std::vector<PlacedPrr> placed;
  for (int i = 0; i < 6; ++i) {
    const auto p = fp.place("p" + std::to_string(i), small_logic());
    ASSERT_TRUE(p.has_value()) << i;
    placed.push_back(*p);
  }
  for (std::size_t a = 0; a < placed.size(); ++a) {
    for (std::size_t b = a + 1; b < placed.size(); ++b) {
      const auto& pa = placed[a];
      const auto& pb = placed[b];
      const bool col_overlap =
          pa.first_col < pb.first_col + pb.plan.window.width &&
          pb.first_col < pa.first_col + pa.plan.window.width;
      const bool row_overlap =
          pa.first_row < pb.first_row + pb.plan.organization.h &&
          pb.first_row < pa.first_row + pa.plan.organization.h;
      EXPECT_FALSE(col_overlap && row_overlap) << a << " vs " << b;
    }
  }
  EXPECT_EQ(fp.placements().size(), 6u);
  EXPECT_GT(fp.occupancy(), 0.0);
}

TEST(Floorplanner, FillsRowsBottomUp) {
  Floorplanner fp{lx110t()};
  const auto first = fp.place("a", small_logic());
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->first_row, 0u);
  // Same demand again: either a different window or the next row up, but
  // never the same rectangle.
  const auto second = fp.place("b", small_logic());
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(second->first_col != first->first_col ||
              second->first_row != first->first_row);
}

TEST(Floorplanner, EventuallyRunsOut) {
  Floorplanner fp{lx110t()};
  int placed = 0;
  while (fp.place("p", small_logic()).has_value()) {
    ++placed;
    ASSERT_LT(placed, 1000) << "floorplanner never saturated";
  }
  EXPECT_GT(placed, 10);  // the LX110T fits many 2-column PRRs
  // After saturation the occupancy is substantial.
  EXPECT_GT(fp.occupancy(), 0.5);
}

TEST(Floorplanner, PlacesPaperTrio) {
  // FIR + MIPS + SDRAM must coexist on the LX110T.
  Floorplanner fp{lx110t()};
  for (const char* prm : {"MIPS", "FIR", "SDRAM"}) {  // biggest first
    const auto& rec = paperdata::table5_record(prm, "xc5vlx110t");
    EXPECT_TRUE(fp.place(prm, rec.req).has_value()) << prm;
  }
  EXPECT_EQ(fp.placements().size(), 3u);
}

TEST(Floorplanner, SupersetFallbackPlacesWideDemands) {
  // On a regular interleaved fabric, a wide CLB+DSP demand has no
  // exact-composition window; the floorplanner must fall back to a
  // superset window whose surplus columns show up in the plan.
  const Fabric& fabric = DeviceDb::instance().get("xc6vlx240t").fabric;
  PrmRequirements req;
  req.lut_ff_pairs = 1158;  // FIR-on-V6-sized demand
  req.luts = 830;
  req.ffs = 350;
  req.dsps = 27;
  Floorplanner fp{fabric};
  const auto placed = fp.place("fir", req);
  ASSERT_TRUE(placed.has_value());
  // The effective organization satisfies the demand...
  EXPECT_TRUE(satisfies(placed->plan.organization, req, fabric.traits()));
  // ...and matches the actual window composition (bitstream accounts for
  // the surplus columns).
  const ColumnDemand comp =
      fabric.window_composition(placed->plan.window);
  EXPECT_EQ(comp.clb_cols, placed->plan.organization.columns.clb_cols);
  EXPECT_EQ(comp.dsp_cols, placed->plan.organization.columns.dsp_cols);
  EXPECT_EQ(comp.bram_cols, placed->plan.organization.columns.bram_cols);
  EXPECT_EQ(placed->plan.bitstream.total_bytes,
            bitstream_bytes(placed->plan.organization, fabric.traits()));
}

TEST(Floorplanner, RespectsReservedStaticRegion) {
  Floorplanner fp{lx110t()};
  // Reserve the bottom row across the device (typical static region).
  fp.reserve(0, lx110t().num_columns(), 0, 1);
  const auto placed = fp.place("p", small_logic());
  ASSERT_TRUE(placed.has_value());
  EXPECT_GE(placed->first_row, 1u);
}

}  // namespace
}  // namespace prcost
