#include <gtest/gtest.h>

#include "netlist/generators.hpp"
#include "tests/netlist_sim.hpp"
#include "util/error.hpp"

namespace prcost {
namespace {

TEST(Fir, BuildsAndValidates) {
  const Netlist nl = make_fir();
  const NetlistStats stats = nl.stats();
  EXPECT_EQ(stats.muls, 32u);                 // one generic mul per tap
  EXPECT_GE(stats.ffs, 32u * 12u);            // delay line registers
  EXPECT_GT(stats.luts, 500u);                // adder tree
  EXPECT_EQ(stats.rams, 0u);
}

TEST(Fir, TapCountScalesMuls) {
  FirParams params;
  params.taps = 8;
  params.symmetric_pairs = 0;
  EXPECT_EQ(make_fir(params).stats().muls, 8u);
}

TEST(Fir, SymmetricPairsShareCoefficientNets) {
  FirParams params;
  params.taps = 8;
  params.symmetric_pairs = 2;
  const Netlist nl = make_fir(params);
  // 8 taps with 2 shared pairs -> only 6 distinct coefficient buses ->
  // fewer input ports than the unshared version.
  FirParams unshared = params;
  unshared.symmetric_pairs = 0;
  const Netlist nl_unshared = make_fir(unshared);
  EXPECT_LT(nl.stats().inputs, nl_unshared.stats().inputs);
}

TEST(Fir, RejectsBadParams) {
  FirParams params;
  params.taps = 0;
  EXPECT_THROW(make_fir(params), ContractError);
  params = FirParams{};
  params.symmetric_pairs = 20;  // 2*20 > 32 taps
  EXPECT_THROW(make_fir(params), ContractError);
}

TEST(Fir, Deterministic) {
  const Netlist a = make_fir();
  const Netlist b = make_fir();
  EXPECT_EQ(a.cell_count(), b.cell_count());
  EXPECT_EQ(a.net_count(), b.net_count());
}

TEST(Mips5, BuildsWithExpectedMemories) {
  const Netlist nl = make_mips5();
  const NetlistStats stats = nl.stats();
  EXPECT_EQ(stats.rams, 2u);      // I-mem + D-mem macros
  EXPECT_EQ(stats.muls, 1u);      // multiply unit
  EXPECT_GE(stats.ffs, 1024u);    // FF register file dominates
  EXPECT_GT(stats.luts, 1000u);   // read-port muxes + ALU
}

TEST(Mips5, XlenChecked) {
  MipsParams params;
  params.xlen = 4;
  EXPECT_THROW(make_mips5(params), ContractError);
}

TEST(Sdram, ProfileIsFfDominatedNoDspBram) {
  const Netlist nl = make_sdram_ctrl();
  const NetlistStats stats = nl.stats();
  EXPECT_EQ(stats.muls, 0u);
  EXPECT_EQ(stats.rams, 0u);
  EXPECT_GT(stats.ffs, 100u);   // timers + address/data registers
  EXPECT_GT(stats.luts, 100u);  // next-state logic
}

TEST(AesRound, UsesSboxRams) {
  const Netlist nl = make_aes_round();
  EXPECT_EQ(nl.stats().rams, 16u);       // one 256x8 S-box per state byte
  EXPECT_GE(nl.stats().ffs, 128u);       // state register
}

TEST(Crc32, BuildsAllStateBits) {
  const Netlist nl = make_crc32(8);
  EXPECT_EQ(nl.stats().ffs, 32u);
  EXPECT_GT(nl.stats().luts, 32u);  // XOR trees
}

// Functional: the CRC netlist must implement the real CRC-32 LFSR. Compare
// one 8-bit step against a bit-level software model.
TEST(Crc32, MatchesSoftwareLfsr) {
  const Netlist nl = make_crc32(8);
  // Collect the state FFs in bit order from their names.
  std::vector<CellId> crc_ffs(32, kNoCell);
  std::vector<NetId> crc_nets(32, kNoNet);
  for (u32 c = 0; c < nl.cell_count(); ++c) {
    const Cell& cell = nl.cell(CellId{c});
    if (cell.kind == CellKind::kFf && cell.name.rfind("crc", 0) == 0) {
      const auto bit = static_cast<std::size_t>(std::stoi(cell.name.substr(3)));
      crc_ffs[bit] = CellId{c};
      crc_nets[bit] = cell.outputs[0];
    }
  }
  for (const CellId id : crc_ffs) ASSERT_NE(id, kNoCell);

  // Software model: bitwise CRC-32 (0x04C11DB7), MSB-first feedback, one
  // data bit per shift - the construction the generator unrolls.
  const auto software_step = [](u32 crc, u32 data_byte) {
    for (int bit = 0; bit < 8; ++bit) {
      const bool fb = ((crc >> 31) & 1) != ((data_byte >> bit) & 1);
      crc <<= 1;
      if (fb) crc ^= 0x04C11DB7;
    }
    return crc;
  };

  prcost::testing::NetlistSim sim{nl};
  // Find the data input bus by name.
  Bus data(8, kNoNet);
  for (u32 c = 0; c < nl.cell_count(); ++c) {
    const Cell& cell = nl.cell(CellId{c});
    if (cell.kind == CellKind::kInput && cell.name.rfind("data[", 0) == 0) {
      const auto bit = static_cast<std::size_t>(
          std::stoi(cell.name.substr(5, cell.name.size() - 6)));
      data[bit] = cell.outputs[0];
    }
  }
  for (const NetId net : data) ASSERT_NE(net, kNoNet);

  u32 state = 0xFFFFFFFF;  // FFs initialize to 1 (param0 = init)
  for (u32 bit = 0; bit < 32; ++bit) {
    sim.set_state(crc_ffs[bit], ((state >> bit) & 1) != 0);
  }
  const u32 byte = 0x5A;
  sim.set_bus(data, byte);
  sim.step();
  const u32 expected = software_step(state, byte);
  u32 got = 0;
  for (u32 bit = 0; bit < 32; ++bit) {
    if (sim.ff_state(crc_ffs[bit])) got |= 1u << bit;
  }
  EXPECT_EQ(got, expected);
}

TEST(Uart, Builds) {
  const Netlist nl = make_uart();
  EXPECT_GT(nl.stats().ffs, 20u);
  EXPECT_EQ(nl.stats().rams, 0u);
}

TEST(Sobel, LineBuffersAndGradientDatapath) {
  const Netlist nl = make_sobel();
  const NetlistStats stats = nl.stats();
  EXPECT_EQ(stats.rams, 2u);     // two line buffers
  EXPECT_EQ(stats.muls, 0u);     // gradient is add/sub only
  EXPECT_GT(stats.luts, 100u);   // weighted sums + magnitude + threshold
  EXPECT_GT(stats.ffs, 50u);     // window registers
}

TEST(Sobel, RejectsDegenerateParams) {
  EXPECT_THROW(make_sobel(2, 8), ContractError);
  EXPECT_THROW(make_sobel(640, 0), ContractError);
}

TEST(FftStage, ComplexMultiplierUsesFourMuls) {
  const Netlist nl = make_fft_stage();
  const NetlistStats stats = nl.stats();
  EXPECT_EQ(stats.muls, 4u);  // one complex multiply
  EXPECT_EQ(stats.rams, 1u);  // twiddle ROM
  EXPECT_THROW(make_fft_stage(2, 16), ContractError);
}

TEST(Matmul, ScalesWithMacUnits) {
  const Netlist small = make_matmul(4);
  const Netlist large = make_matmul(16);
  EXPECT_EQ(small.stats().muls, 4u);
  EXPECT_EQ(large.stats().muls, 16u);
  EXPECT_EQ(small.stats().rams, 2u);
  EXPECT_THROW(make_matmul(0), ContractError);
}

}  // namespace
}  // namespace prcost
