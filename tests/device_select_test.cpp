#include <gtest/gtest.h>

#include <algorithm>

#include "device/device_db.hpp"
#include "dse/device_select.hpp"
#include "paperdata/paper_dataset.hpp"

namespace prcost {
namespace {

std::vector<PrmInfo> paper_prms() {
  std::vector<PrmInfo> prms;
  for (const char* name : {"FIR", "MIPS", "SDRAM"}) {
    const auto& rec = paperdata::table5_record(name, "xc5vlx110t");
    prms.push_back(PrmInfo{name, rec.req, 0});
  }
  return prms;
}

TEST(DeviceSelect, CoversWholeCatalog) {
  WorkloadParams wp;
  wp.count = 20;
  const auto choices = rank_devices(paper_prms(), make_workload(wp));
  EXPECT_EQ(choices.size(), DeviceDb::instance().all().size());
}

TEST(DeviceSelect, FeasiblePartsComeFirstSortedByFootprint) {
  WorkloadParams wp;
  wp.count = 20;
  const auto choices = rank_devices(paper_prms(), make_workload(wp));
  bool seen_infeasible = false;
  double last_fraction = 0.0;
  u64 feasible_count = 0;
  for (const DeviceChoice& choice : choices) {
    if (!choice.feasible) {
      seen_infeasible = true;
      EXPECT_FALSE(choice.reason.empty());
      continue;
    }
    EXPECT_FALSE(seen_infeasible) << "feasible after infeasible";
    EXPECT_GE(choice.fabric_fraction, last_fraction);
    last_fraction = choice.fabric_fraction;
    EXPECT_GT(choice.total_prr_cells, 0u);
    EXPECT_GT(choice.total_bitstream_bytes, 0u);
    EXPECT_GT(choice.makespan_s, 0.0);
    ++feasible_count;
  }
  // The paper's own parts must qualify.
  EXPECT_GE(feasible_count, 2u);
  const auto feasible_has = [&](std::string_view name) {
    return std::any_of(choices.begin(), choices.end(),
                       [&](const DeviceChoice& c) {
                         return c.feasible && c.device == name;
                       });
  };
  EXPECT_TRUE(feasible_has("xc5vlx110t"));
  EXPECT_TRUE(feasible_has("xc6vlx75t"));
}

TEST(DeviceSelect, TinyPartIsInfeasibleForDspHeavyLoad) {
  // 200 DSPs cannot fit the single-DSP-column parts.
  std::vector<PrmInfo> prms;
  PrmRequirements req;
  req.lut_ff_pairs = 100;
  req.dsps = 200;
  prms.push_back(PrmInfo{"dsp_monster", req, 0});
  WorkloadParams wp;
  wp.count = 5;
  wp.prm_count = 1;
  const auto choices = rank_devices(prms, make_workload(wp));
  for (const DeviceChoice& choice : choices) {
    if (choice.device == "xc5vlx110t" || choice.device == "xc4vlx60" ||
        choice.device == "xc5vlx50t") {
      EXPECT_FALSE(choice.feasible) << choice.device;
    }
    if (choice.device == "xc6vlx240t") {
      EXPECT_TRUE(choice.feasible);
    }
  }
}

TEST(DeviceSelect, StaticRowReservationShrinksCapacity) {
  // With the reservation off, at least as many parts qualify.
  WorkloadParams wp;
  wp.count = 10;
  DeviceSelectOptions with_static;
  DeviceSelectOptions without_static;
  without_static.reserve_static_row = false;
  const auto workload = make_workload(wp);
  const auto a = rank_devices(paper_prms(), workload, with_static);
  const auto b = rank_devices(paper_prms(), workload, without_static);
  const auto count = [](const std::vector<DeviceChoice>& choices) {
    u64 n = 0;
    for (const auto& c : choices) {
      if (c.feasible) ++n;
    }
    return n;
  };
  EXPECT_LE(count(a), count(b));
}

}  // namespace
}  // namespace prcost
