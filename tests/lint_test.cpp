#include <gtest/gtest.h>

#include "bitstream/generator.hpp"
#include "bitstream/lint.hpp"
#include "cost/prr_search.hpp"
#include "cost/shaped_prr.hpp"
#include "device/device_db.hpp"
#include "paperdata/paper_dataset.hpp"

namespace prcost {
namespace {

bool has_rule(const std::vector<LintIssue>& issues, std::string_view rule) {
  return std::any_of(issues.begin(), issues.end(),
                     [&](const LintIssue& i) { return i.rule == rule; });
}

// Every generated partial bitstream must lint clean: the linter is an
// independently written protocol model, so this is two implementations
// agreeing on the configuration rules.
class LintClean : public ::testing::TestWithParam<paperdata::TableVRecord> {};

TEST_P(LintClean, GeneratedBitstreamsHaveNoViolations) {
  const auto& rec = GetParam();
  const Fabric& fabric = DeviceDb::instance().get(rec.device).fabric;
  const auto plan = find_prr(rec.req, fabric);
  ASSERT_TRUE(plan.has_value());
  const auto issues =
      lint_bitstream(generate_bitstream(*plan, rec.family), rec.family);
  EXPECT_TRUE(issues.empty()) << issues.size() << " issues, first: "
                              << (issues.empty() ? "" : issues[0].message);
}

INSTANTIATE_TEST_SUITE_P(
    Paper, LintClean,
    ::testing::ValuesIn(paperdata::table5().begin(),
                        paperdata::table5().end()),
    [](const ::testing::TestParamInfo<paperdata::TableVRecord>& tp_info) {
      std::string name{tp_info.param.prm};
      name += "_";
      name += tp_info.param.device;
      return name;
    });

TEST(Lint, FullAndShapedBitstreamsClean) {
  for (const Device& dev : DeviceDb::instance().all()) {
    EXPECT_TRUE(lint_bitstream(generate_full_bitstream(dev.fabric),
                               dev.fabric.family())
                    .empty())
        << dev.name;
  }
  const auto& rec = paperdata::table5_record("FIR", "xc5vlx110t");
  const auto shaped = find_l_shaped_prr(
      rec.req, DeviceDb::instance().get("xc5vlx110t").fabric);
  ASSERT_TRUE(shaped.has_value());
  EXPECT_TRUE(lint_bitstream(
                  generate_shaped_bitstream(shaped->shape, Family::kVirtex5),
                  Family::kVirtex5)
                  .empty());
}

TEST(Lint, DetectsMissingSync) {
  const std::vector<u32> junk(8, cfg::kDummy);
  EXPECT_TRUE(has_rule(lint_bitstream(junk, Family::kVirtex5), "R2"));
}

TEST(Lint, DetectsGarbageBeforeSync) {
  std::vector<u32> words{0x12345678, cfg::kSync};
  EXPECT_TRUE(has_rule(lint_bitstream(words, Family::kVirtex5), "R1"));
}

TEST(Lint, DetectsFdriWithoutFar) {
  std::vector<u32> words{
      cfg::kSync,
      type1(PacketOp::kWrite, ConfigReg::kCmd, 1),
      static_cast<u32>(ConfigCmd::kRcrc),
      type1(PacketOp::kWrite, ConfigReg::kCmd, 1),
      static_cast<u32>(ConfigCmd::kWcfg),
      type1(PacketOp::kWrite, ConfigReg::kFdri, 0),
      type2(PacketOp::kWrite, 41),
  };
  words.insert(words.end(), 41, 0u);
  const auto issues = lint_bitstream(words, Family::kVirtex5);
  EXPECT_TRUE(has_rule(issues, "R5"));
}

TEST(Lint, DetectsFdriBeforeWcfg) {
  std::vector<u32> words{
      cfg::kSync,
      type1(PacketOp::kWrite, ConfigReg::kCmd, 1),
      static_cast<u32>(ConfigCmd::kRcrc),
      type1(PacketOp::kWrite, ConfigReg::kFar, 1),
      0x0,
      type1(PacketOp::kWrite, ConfigReg::kFdri, 0),
      type2(PacketOp::kWrite, 41),
  };
  words.insert(words.end(), 41, 0u);
  EXPECT_TRUE(has_rule(lint_bitstream(words, Family::kVirtex5), "R4"));
}

TEST(Lint, DetectsMisalignedPayload) {
  std::vector<u32> words{
      cfg::kSync,
      type1(PacketOp::kWrite, ConfigReg::kCmd, 1),
      static_cast<u32>(ConfigCmd::kRcrc),
      type1(PacketOp::kWrite, ConfigReg::kCmd, 1),
      static_cast<u32>(ConfigCmd::kWcfg),
      type1(PacketOp::kWrite, ConfigReg::kFar, 1),
      0x0,
      type1(PacketOp::kWrite, ConfigReg::kFdri, 0),
      type2(PacketOp::kWrite, 40),  // not a multiple of 41
  };
  words.insert(words.end(), 40, 0u);
  EXPECT_TRUE(has_rule(lint_bitstream(words, Family::kVirtex5), "R6"));
}

TEST(Lint, DetectsMissingDesyncAndCrc) {
  const std::vector<u32> words{cfg::kSync};
  const auto issues = lint_bitstream(words, Family::kVirtex5);
  EXPECT_TRUE(has_rule(issues, "R7"));
  EXPECT_TRUE(has_rule(issues, "R8"));
}

TEST(Lint, DetectsTrafficAfterDesync) {
  const auto& rec = paperdata::table5_record("SDRAM", "xc5vlx110t");
  const Fabric& fabric = DeviceDb::instance().get(rec.device).fabric;
  const auto plan = find_prr(rec.req, fabric);
  auto words = generate_bitstream(*plan, rec.family);
  words.push_back(type1(PacketOp::kWrite, ConfigReg::kFar, 1));
  words.push_back(0);
  EXPECT_TRUE(has_rule(lint_bitstream(words, rec.family), "R8"));
}

TEST(Lint, DetectsDoubleCrcWrite) {
  const auto& rec = paperdata::table5_record("SDRAM", "xc5vlx110t");
  const Fabric& fabric = DeviceDb::instance().get(rec.device).fabric;
  const auto plan = find_prr(rec.req, fabric);
  auto words = generate_bitstream(*plan, rec.family);
  // Duplicate the CRC write just before the trailer's desync.
  std::vector<u32> extra{type1(PacketOp::kWrite, ConfigReg::kCrc, 1), 0};
  words.insert(words.end() - static_cast<std::ptrdiff_t>(
                                 traits(rec.family).fw),
               extra.begin(), extra.end());
  EXPECT_TRUE(has_rule(lint_bitstream(words, rec.family), "R7"));
}

}  // namespace
}  // namespace prcost
