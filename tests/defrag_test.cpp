#include <gtest/gtest.h>

#include "bitstream/generator.hpp"
#include "cost/prr_search.hpp"
#include "device/device_db.hpp"
#include "htr/defrag.hpp"
#include "paperdata/paper_dataset.hpp"

namespace prcost {
namespace {

const Fabric& lx110t() {
  return DeviceDb::instance().get("xc5vlx110t").fabric;
}

PrmRequirements small_logic() {
  PrmRequirements req;
  req.lut_ff_pairs = 300;
  req.luts = 250;
  req.ffs = 200;
  return req;
}

TEST(LargestFreeRect, EmptyFabricIsWholeFabric) {
  Floorplanner fp{lx110t()};
  EXPECT_EQ(largest_free_rect(fp, lx110t()),
            u64{lx110t().num_columns()} * lx110t().rows());
}

TEST(LargestFreeRect, ShrinksWithReservations) {
  Floorplanner fp{lx110t()};
  // Reserve a full-height column strip in the middle: the largest free
  // rect is the bigger side.
  const u32 cols = lx110t().num_columns();
  fp.reserve(cols / 2, 1, 0, lx110t().rows());
  const u64 left = u64{cols / 2} * lx110t().rows();
  const u64 right = u64{cols - cols / 2 - 1} * lx110t().rows();
  EXPECT_EQ(largest_free_rect(fp, lx110t()), std::max(left, right));
}

TEST(Floorplanner, RemoveFreesSpace) {
  Floorplanner fp{lx110t()};
  ASSERT_TRUE(fp.place("a", small_logic()).has_value());
  const double before = fp.occupancy();
  EXPECT_TRUE(fp.remove("a"));
  EXPECT_LT(fp.occupancy(), before);
  EXPECT_TRUE(fp.placements().empty());
  EXPECT_FALSE(fp.remove("a"));
}

TEST(Floorplanner, MovePlacementValidatesTarget) {
  Floorplanner fp{lx110t()};
  const auto a = fp.place("a", small_logic());
  const auto b = fp.place("b", small_logic());
  ASSERT_TRUE(a && b);
  // Moving b onto a must throw; moving b onto itself is a no-op slide.
  EXPECT_THROW(
      fp.move_placement(1, a->plan.window, a->first_row), ContractError);
  EXPECT_NO_THROW(fp.move_placement(1, b->plan.window, b->first_row));
  EXPECT_THROW(fp.move_placement(7, b->plan.window, 0), ContractError);
}

TEST(Defrag, CompactsFragmentedPool) {
  // Fragment: place four small PRRs, free two non-adjacent ones, compact.
  Floorplanner fp{lx110t()};
  for (const char* name : {"a", "b", "c", "d"}) {
    ASSERT_TRUE(fp.place(name, small_logic()).has_value()) << name;
  }
  ASSERT_TRUE(fp.remove("a"));
  ASSERT_TRUE(fp.remove("c"));
  const u64 before = largest_free_rect(fp, lx110t());
  const DefragReport report = compact(fp, lx110t());
  EXPECT_GT(report.moves, 0u);
  EXPECT_GE(report.largest_free_after, before);
  EXPECT_EQ(report.largest_free_before, before);
  // Idempotent: a second compaction does nothing.
  EXPECT_EQ(compact(fp, lx110t()).moves, 0u);
}

TEST(Defrag, MovesLiveFramesThroughConfigMemory) {
  // Load SDRAM twice into separate PRRs, free the left one, and compact
  // with a live configuration memory: the surviving PRR's frames move.
  const auto& rec = paperdata::table5_record("SDRAM", "xc5vlx110t");
  Floorplanner fp{lx110t()};
  const auto left = fp.place("left", rec.req);
  const auto right = fp.place("right", rec.req);
  ASSERT_TRUE(left && right);

  ConfigMemory cm{lx110t()};
  // Configure the RIGHT placement's region with a real bitstream.
  PrrPlan right_plan = right->plan;
  const auto words = generate_bitstream(right_plan, Family::kVirtex5);
  cm.apply_bitstream(words);
  const u64 frames = cm.frames_written();

  ASSERT_TRUE(fp.remove("left"));
  const DefragReport report = compact(fp, lx110t(), &cm);
  ASSERT_EQ(report.moves, 1u);
  EXPECT_EQ(report.frames_copied, frames);
  // The placement now sits where "left" used to be.
  EXPECT_EQ(fp.placements()[0].first_col, left->first_col);
  EXPECT_EQ(fp.placements()[0].first_row, left->first_row);
  // The moved region holds the original frames.
  const auto moved = cm.read_burst(
      FrameAddress{FrameBlock::kInterconnect, left->first_row,
                   left->first_col, 0},
      frames);
  const auto original = cm.read_burst(
      FrameAddress{FrameBlock::kInterconnect, right->first_row,
                   right->first_col, 0},
      frames);
  EXPECT_EQ(moved, original);
}

TEST(Defrag, EnablesOtherwiseImpossiblePlacement) {
  // The classic fragmentation scenario: free space is plentiful but
  // scattered; a wide PRM only fits after compaction.
  Floorplanner fp{lx110t()};
  std::vector<std::string> names;
  int placed = 0;
  while (true) {
    const std::string name = "p" + std::to_string(placed);
    if (!fp.place(name, small_logic()).has_value()) break;
    names.push_back(name);
    ++placed;
  }
  ASSERT_GT(placed, 6);
  // Free every second placement: lots of scattered space.
  for (std::size_t i = 0; i < names.size(); i += 2) {
    ASSERT_TRUE(fp.remove(names[i]));
  }
  const u64 fragmented = largest_free_rect(fp, lx110t());
  compact(fp, lx110t());
  EXPECT_GE(largest_free_rect(fp, lx110t()), fragmented);
}

}  // namespace
}  // namespace prcost
