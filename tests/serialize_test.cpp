#include <gtest/gtest.h>

#include "netlist/generators.hpp"
#include "netlist/serialize.hpp"
#include "synth/synthesizer.hpp"
#include "tests/netlist_sim.hpp"
#include "util/error.hpp"

namespace prcost {
namespace {

using prcost::testing::NetlistSim;

TEST(Serialize, RoundTripPreservesStats) {
  for (int which = 0; which < 3; ++which) {
    const Netlist original = which == 0   ? make_fir()
                             : which == 1 ? make_sdram_ctrl()
                                          : make_uart();
    const Netlist reloaded = netlist_from_text(netlist_to_text(original));
    const NetlistStats a = original.stats();
    const NetlistStats b = reloaded.stats();
    EXPECT_EQ(a.luts, b.luts) << which;
    EXPECT_EQ(a.ffs, b.ffs);
    EXPECT_EQ(a.carries, b.carries);
    EXPECT_EQ(a.muls, b.muls);
    EXPECT_EQ(a.rams, b.rams);
    EXPECT_EQ(a.inputs, b.inputs);
    EXPECT_EQ(a.outputs, b.outputs);
    EXPECT_EQ(reloaded.name(), original.name());
  }
}

TEST(Serialize, RoundTripPreservesBehaviour) {
  // A small combinational design must compute the same function after a
  // save/load cycle (checked by exhaustive simulation over the inputs).
  Netlist original{"adder4"};
  {
    LogicBuilder lb{original};
    const Bus a = original.input_bus("a", 4);
    const Bus b = original.input_bus("b", 4);
    original.output_bus("s", lb.add(a, b));
  }
  const Netlist reloaded = netlist_from_text(netlist_to_text(original));

  const auto find_ports = [](const Netlist& nl) {
    Bus a(4, kNoNet), b(4, kNoNet), s(5, kNoNet);
    for (u32 c = 0; c < nl.cell_count(); ++c) {
      const Cell& cell = nl.cell(CellId{c});
      if (cell.dead) continue;
      if (cell.kind == CellKind::kInput) {
        const auto bit =
            static_cast<std::size_t>(cell.name[2] - '0');
        (cell.name[0] == 'a' ? a : b)[bit] = cell.outputs[0];
      }
      if (cell.kind == CellKind::kOutput) {
        const auto bit =
            static_cast<std::size_t>(cell.name[2] - '0');
        s[bit] = cell.inputs[0];
      }
    }
    return std::tuple{a, b, s};
  };
  const auto [oa, ob, os_] = find_ports(original);
  const auto [ra, rb, rs] = find_ports(reloaded);
  for (u64 va = 0; va < 16; va += 3) {
    for (u64 vb = 0; vb < 16; vb += 5) {
      NetlistSim sim_o{original};
      sim_o.set_bus(oa, va);
      sim_o.set_bus(ob, vb);
      NetlistSim sim_r{reloaded};
      sim_r.set_bus(ra, va);
      sim_r.set_bus(rb, vb);
      EXPECT_EQ(sim_r.eval_bus(rs), sim_o.eval_bus(os_)) << va << "+" << vb;
    }
  }
}

TEST(Serialize, ReloadedDesignSynthesizesIdentically) {
  Netlist original = make_fir();
  Netlist reloaded = netlist_from_text(netlist_to_text(original));
  const auto a =
      synthesize(std::move(original), SynthOptions{Family::kVirtex5});
  const auto b =
      synthesize(std::move(reloaded), SynthOptions{Family::kVirtex5});
  EXPECT_EQ(a.report.lut_ff_pairs, b.report.lut_ff_pairs);
  EXPECT_EQ(a.report.slice_luts, b.report.slice_luts);
  EXPECT_EQ(a.report.slice_ffs, b.report.slice_ffs);
  EXPECT_EQ(a.report.dsps, b.report.dsps);
  EXPECT_EQ(a.report.brams, b.report.brams);
}

TEST(Serialize, RejectsMalformedInput) {
  EXPECT_THROW(netlist_from_text(""), ParseError);
  EXPECT_THROW(netlist_from_text("cell LUT x 0 0 | a | y"), ParseError);
  EXPECT_THROW(netlist_from_text("netlist t\nbogus line"), ParseError);
  EXPECT_THROW(netlist_from_text("netlist t\ncell WAT x 0 0 | | y"),
               ParseError);
  EXPECT_THROW(netlist_from_text("netlist t\ncell LUT x 0 0 no-bar"),
               ParseError);
}

TEST(Serialize, CommentsAndBlankLinesIgnored) {
  const Netlist nl = netlist_from_text(
      "# a comment\n"
      "netlist t\n"
      "\n"
      "cell INPUT a 0 0 | | a_o\n"
      "cell LUT inv 1 0 | a_o | y\n"
      "# trailing comment\n");
  EXPECT_EQ(nl.stats().luts, 1u);
  EXPECT_EQ(nl.stats().inputs, 1u);
}

TEST(Serialize, ForwardReferencesResolve) {
  // A cell may read a net whose driver appears later in the file.
  const Netlist nl = netlist_from_text(
      "netlist t\n"
      "cell LUT inv 1 0 | late | y\n"
      "cell INPUT a 0 0 | | late\n");
  nl.validate();
  const NetlistStats stats = nl.stats();
  EXPECT_EQ(stats.luts, 1u);
  EXPECT_EQ(stats.inputs, 1u);
}

}  // namespace
}  // namespace prcost
