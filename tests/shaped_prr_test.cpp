#include <gtest/gtest.h>

#include "bitstream/generator.hpp"
#include "bitstream/parser.hpp"
#include "cost/shaped_prr.hpp"
#include "device/device_db.hpp"
#include "paperdata/paper_dataset.hpp"
#include "util/error.hpp"

namespace prcost {
namespace {

const Fabric& lx110t() {
  return DeviceDb::instance().get("xc5vlx110t").fabric;
}

ShapedPrr two_band_shape() {
  // 4-row (2 CLB + 1 DSP) band under a 1-row (1 CLB) band.
  ShapedPrr shape;
  shape.bands.push_back(
      PrrBand{PrrOrganization{4, ColumnDemand{2, 1, 0}}, ColumnWindow{24, 3},
              0});
  shape.bands.push_back(
      PrrBand{PrrOrganization{1, ColumnDemand{1, 0, 0}}, ColumnWindow{24, 1},
              4});
  return shape;
}

TEST(ShapedPrr, SizeAndHeight) {
  const ShapedPrr shape = two_band_shape();
  EXPECT_EQ(shape.size(), 4u * 3 + 1u * 1);
  EXPECT_EQ(shape.height(), 5u);
}

TEST(ShapedPrr, AvailabilitySumsBands) {
  const ShapedPrr shape = two_band_shape();
  const PrrAvailability a =
      shaped_availability(shape, lx110t().traits());
  EXPECT_EQ(a.clbs, 4u * 2 * 20 + 1u * 1 * 20);  // 180
  EXPECT_EQ(a.dsps, 4u * 1 * 8);                 // 32
  EXPECT_EQ(a.brams, 0u);
}

TEST(ShapedPrr, BitstreamGeneralizesEq18) {
  const ShapedPrr shape = two_band_shape();
  const FamilyTraits& t = lx110t().traits();
  const BitstreamEstimate e = estimate_shaped_bitstream(shape, t);
  // Band 1: 4 rows of (2*36 + 28 + 1)*41 + 5 words; band 2: 1 row of
  // (36 + 1)*41 + 5 words; plus IW/FW.
  const u64 band1_row = 5u + (2 * 36 + 28 + 1) * 41;
  const u64 band2_row = 5u + (36 + 1) * 41;
  EXPECT_EQ(e.total_words, t.iw + 4 * band1_row + band2_row + t.fw);
  EXPECT_EQ(e.total_bytes, e.total_words * 4);
  EXPECT_THROW(estimate_shaped_bitstream(ShapedPrr{}, t), ContractError);
}

TEST(ShapedPrr, GeneratorMatchesModelByteForByte) {
  // The same model-vs-artifact loop as Eq. (18), for the shaped extension.
  const ShapedPrr shape = two_band_shape();
  const auto words = generate_shaped_bitstream(shape, Family::kVirtex5);
  const BitstreamEstimate e =
      estimate_shaped_bitstream(shape, lx110t().traits());
  EXPECT_EQ(words.size(), e.total_words);
  EXPECT_EQ(to_bytes(words, Family::kVirtex5).size(), e.total_bytes);
  const BitstreamLayout layout = parse_bitstream(words, Family::kVirtex5);
  EXPECT_TRUE(layout.crc_ok);
  EXPECT_TRUE(layout.desync_seen);
  // One config burst per band row: 4 + 1 = 5 bursts.
  EXPECT_EQ(layout.config_burst_count(), 5u);
  EXPECT_THROW(generate_shaped_bitstream(ShapedPrr{}, Family::kVirtex5),
               ContractError);
}

TEST(ShapedPrr, SearchedShapeGeneratesExactly) {
  const auto& rec = paperdata::table5_record("FIR", "xc5vlx110t");
  const auto shaped = find_l_shaped_prr(rec.req, lx110t());
  ASSERT_TRUE(shaped.has_value());
  const auto words =
      generate_shaped_bitstream(shaped->shape, Family::kVirtex5);
  EXPECT_EQ(words.size(), shaped->bitstream.total_words);
}

TEST(ShapedSearch, FirOnLx110tBeatsRectangle) {
  // The paper's suggested win: FIR's rectangular optimum is 15 cells /
  // 83,064 B; an L-shape that gives the DSP column only the 4 rows it
  // needs must beat both numbers.
  const auto& rec = paperdata::table5_record("FIR", "xc5vlx110t");
  const auto rect = find_prr(rec.req, lx110t());
  ASSERT_TRUE(rect.has_value());
  const auto shaped = find_l_shaped_prr(rec.req, lx110t());
  ASSERT_TRUE(shaped.has_value());
  EXPECT_LT(shaped->shape.size(), rect->organization.size());
  EXPECT_LT(shaped->bitstream.total_bytes, rect->bitstream.total_bytes);
  // Higher CLB utilization = lower internal fragmentation.
  EXPECT_GT(shaped->ru.clb, rect->ru.clb);
  // Demand still covered.
  EXPECT_GE(shaped->available.dsps, rec.req.dsps);
  EXPECT_GE(shaped->available.clbs,
            clb_req(rec.req, lx110t().traits()));
}

TEST(ShapedSearch, BandsAreConnected) {
  const auto& rec = paperdata::table5_record("FIR", "xc5vlx110t");
  const auto shaped = find_l_shaped_prr(rec.req, lx110t());
  ASSERT_TRUE(shaped.has_value());
  ASSERT_EQ(shaped->shape.bands.size(), 2u);
  const auto& b0 = shaped->shape.bands[0];
  const auto& b1 = shaped->shape.bands[1];
  // Vertically stacked...
  EXPECT_EQ(b1.first_row, b0.first_row + b0.organization.h);
  // ...with overlapping column ranges (a connected L/T shape).
  EXPECT_LT(b0.window.first_col, b1.window.first_col + b1.window.width);
  EXPECT_LT(b1.window.first_col, b0.window.first_col + b0.window.width);
}

TEST(ShapedSearch, PureLogicPrmGainsNothing) {
  // SDRAM (CLB-only) has no fragmentation for an L-shape to recover; the
  // rectangular optimum is already minimal.
  const auto& rec = paperdata::table5_record("SDRAM", "xc5vlx110t");
  const auto rect = find_prr(rec.req, lx110t());
  const auto shaped = find_l_shaped_prr(rec.req, lx110t());
  ASSERT_TRUE(rect.has_value());
  if (shaped) {
    EXPECT_GE(shaped->shape.size(), rect->organization.size());
  }
}

TEST(ShapedSearch, EmptyRequirementsGiveNothing) {
  EXPECT_FALSE(find_l_shaped_prr(PrmRequirements{}, lx110t()).has_value());
}

TEST(ShapedSearch, WorksAcrossCatalog) {
  PrmRequirements req;
  req.lut_ff_pairs = 900;
  req.dsps = 20;
  for (const Device& device : DeviceDb::instance().all()) {
    const auto shaped = find_l_shaped_prr(req, device.fabric);
    if (!shaped) continue;  // some fabrics have no overlapping window pair
    EXPECT_GE(shaped->available.dsps, req.dsps) << device.name;
    EXPECT_GE(shaped->available.clbs,
              clb_req(req, device.fabric.traits()))
        << device.name;
  }
}

}  // namespace
}  // namespace prcost
