// Concurrent-Engine stress: N threads issuing mixed plan / explore /
// bitstream / optimize requests against ONE shared Engine - the exact
// shape the serve daemon produces when its dispatcher fans a batch over
// the pool while the caches, interners, and obs registry are shared. Run
// under the TSan CI job, this is the data-race net for the whole warm-path
// stack (plan cache, bitstream cache, fabric interning, metrics).
//
// Consistency matters as much as absence of crashes: every thread's
// responses must be identical to a single-threaded reference dispatch of
// the same requests (caches may reorder who computes, never what).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "api/batch.hpp"
#include "api/engine.hpp"
#include "util/json.hpp"

namespace prcost {
namespace {

std::vector<std::string> mixed_requests() {
  return {
      R"({"op":"plan","device":"xc5vlx110t","prm":"fir","cross_check":false})",
      R"({"op":"bitstream","device":"xc5vlx110t","prm":"uart"})",
      R"({"op":"plan","device":"xc6vlx240t","prm":"sdram","cross_check":false})",
      R"({"op":"explore","device":"xc6vlx240t","prms":["fir","uart"],"workers":1})",
      R"({"op":"bitstream","device":"xc5vlx110t","prm":"fir"})",
      R"({"op":"optimize","device":"xc6vlx240t","prms":["fir","uart"],"rounds":1,"proposals_per_round":2,"seed":11,"workers":1})",
      R"({"op":"plan","device":"xc5vlx110t","prm":"crc32","cross_check":false})",
      R"({"op":"ping"})",
  };
}

TEST(EngineConcurrency, MixedOpsAgainstOneEngineAreRaceFreeAndConsistent) {
  const api::Engine engine;
  const std::vector<std::string> requests = mixed_requests();

  // Single-threaded reference answers (also warms both caches, so the
  // concurrent phase exercises the hit paths).
  std::vector<std::string> expected;
  expected.reserve(requests.size());
  for (const std::string& line : requests) {
    expected.push_back(api::dispatch_line(engine, line).dump());
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 6;
  std::vector<std::vector<std::string>> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Offset start index per thread so different ops overlap in time.
      for (int round = 0; round < kRounds; ++round) {
        for (std::size_t i = 0; i < requests.size(); ++i) {
          const std::size_t at =
              (static_cast<std::size_t>(t) + i) % requests.size();
          got[static_cast<std::size_t>(t)].push_back(
              api::dispatch_line(engine, requests[at]).dump() + "@" +
              std::to_string(at));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (int t = 0; t < kThreads; ++t) {
    for (const std::string& tagged : got[static_cast<std::size_t>(t)]) {
      const auto sep = tagged.rfind('@');
      const std::size_t at = std::stoul(tagged.substr(sep + 1));
      EXPECT_EQ(tagged.substr(0, sep), expected[at])
          << "thread " << t << " diverged on request " << at;
    }
  }
}

TEST(EngineConcurrency, ColdCachesUnderConcurrencyStayConsistent) {
  // A fresh engine per run: many threads race to fill the caches from
  // cold (first-writer-wins insertion paths), then results must agree.
  const api::Engine engine;
  const std::vector<std::string> requests = {
      R"({"op":"plan","device":"xc6vlx75t","prm":"mips","cross_check":false})",
      R"({"op":"bitstream","device":"xc6vlx75t","prm":"mips"})",
  };

  constexpr int kThreads = 8;
  std::vector<std::vector<std::string>> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (const std::string& line : requests) {
        got[static_cast<std::size_t>(t)].push_back(
            api::dispatch_line(engine, line).dump());
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(got[static_cast<std::size_t>(t)], got[0])
        << "thread " << t << " disagrees with thread 0";
  }
}

}  // namespace
}  // namespace prcost
