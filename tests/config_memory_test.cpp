#include <gtest/gtest.h>

#include "bitstream/config_memory.hpp"
#include "bitstream/generator.hpp"
#include "cost/prr_search.hpp"
#include "device/device_db.hpp"
#include "paperdata/paper_dataset.hpp"
#include "util/error.hpp"

namespace prcost {
namespace {

const Fabric& lx110t() {
  return DeviceDb::instance().get("xc5vlx110t").fabric;
}

TEST(ConfigMemory, FramesInColumnByBlockType) {
  const Fabric fabric{Family::kVirtex5, "CDBIK", 2};
  ConfigMemory cm{fabric};
  EXPECT_EQ(cm.frames_in_column(0, FrameBlock::kInterconnect), 36u);
  EXPECT_EQ(cm.frames_in_column(1, FrameBlock::kInterconnect), 28u);
  EXPECT_EQ(cm.frames_in_column(2, FrameBlock::kInterconnect), 30u);
  EXPECT_EQ(cm.frames_in_column(0, FrameBlock::kBramContent), 0u);
  EXPECT_EQ(cm.frames_in_column(2, FrameBlock::kBramContent), 128u);
}

TEST(ConfigMemory, WriteReadRoundTrip) {
  const Fabric fabric{Family::kVirtex5, "CCC", 2};
  ConfigMemory cm{fabric};
  const u32 fr = fabric.traits().frame_size;
  std::vector<u32> payload(3 * fr);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<u32>(i * 7 + 1);
  }
  const FrameAddress start{FrameBlock::kInterconnect, 1, 0, 0};
  cm.write_burst(start, payload);
  EXPECT_EQ(cm.frames_written(), 3u);
  EXPECT_EQ(cm.read_burst(start, 3), payload);
}

TEST(ConfigMemory, BurstCrossesColumns) {
  const Fabric fabric{Family::kVirtex5, "CC", 1};
  ConfigMemory cm{fabric};
  const u32 fr = fabric.traits().frame_size;
  // 40 frames: 36 fill column 0, 4 spill into column 1.
  std::vector<u32> payload(40 * fr, 0xAB);
  cm.write_burst(FrameAddress{FrameBlock::kInterconnect, 0, 0, 0}, payload);
  EXPECT_TRUE(cm.row_column_touched(0, 0, FrameBlock::kInterconnect));
  EXPECT_TRUE(cm.row_column_touched(1, 0, FrameBlock::kInterconnect));
  EXPECT_TRUE(
      cm.frame(FrameAddress{FrameBlock::kInterconnect, 0, 1, 3}).has_value());
  EXPECT_FALSE(
      cm.frame(FrameAddress{FrameBlock::kInterconnect, 0, 1, 4}).has_value());
}

TEST(ConfigMemory, BurstOffFabricThrows) {
  const Fabric fabric{Family::kVirtex5, "C", 1};
  ConfigMemory cm{fabric};
  const u32 fr = fabric.traits().frame_size;
  const std::vector<u32> payload(37 * fr, 1);  // 36 frames fit, 37 do not
  EXPECT_THROW(
      cm.write_burst(FrameAddress{FrameBlock::kInterconnect, 0, 0, 0},
                     payload),
      ContractError);
}

TEST(ConfigMemory, UnwrittenFramesReadZero) {
  const Fabric fabric{Family::kVirtex5, "CC", 1};
  ConfigMemory cm{fabric};
  const auto words =
      cm.read_burst(FrameAddress{FrameBlock::kInterconnect, 0, 0, 0}, 2);
  EXPECT_EQ(words.size(), 2u * fabric.traits().frame_size);
  for (const u32 word : words) EXPECT_EQ(word, 0u);
}

TEST(ConfigMemory, BramContentSkipsNonBramColumns) {
  const Fabric fabric{Family::kVirtex5, "CBCB", 1};
  ConfigMemory cm{fabric};
  const u32 fr = fabric.traits().frame_size;
  // 2*128 BRAM-content frames starting at column 0 must land on the two
  // BRAM columns (1 and 3), skipping the CLB columns.
  std::vector<u32> payload(2 * 128 * fr, 0xBB);
  cm.write_burst(FrameAddress{FrameBlock::kBramContent, 0, 0, 0}, payload);
  EXPECT_TRUE(cm.row_column_touched(1, 0, FrameBlock::kBramContent));
  EXPECT_TRUE(cm.row_column_touched(3, 0, FrameBlock::kBramContent));
  EXPECT_FALSE(cm.row_column_touched(0, 0, FrameBlock::kBramContent));
  EXPECT_FALSE(cm.row_column_touched(2, 0, FrameBlock::kBramContent));
}

// Applying a generated partial bitstream touches exactly the PRR window's
// rows and columns - the PR isolation property.
class ApplyIsolation
    : public ::testing::TestWithParam<paperdata::TableVRecord> {};

TEST_P(ApplyIsolation, OnlyPrrFramesWritten) {
  const auto& rec = GetParam();
  const Fabric& fabric = DeviceDb::instance().get(rec.device).fabric;
  const auto plan = find_prr(rec.req, fabric);
  ASSERT_TRUE(plan.has_value());
  const auto words = generate_bitstream(*plan, rec.family);

  ConfigMemory cm{fabric};
  const u64 committed = cm.apply_bitstream(words);
  // Eqs. (19)-(23) minus the flush frames: exactly the PRR's own frames.
  u64 expected = 0;
  for (u32 c = plan->window.first_col;
       c < plan->window.first_col + plan->window.width; ++c) {
    expected += cm.frames_in_column(c, FrameBlock::kInterconnect);
    expected += cm.frames_in_column(c, FrameBlock::kBramContent);
  }
  expected *= plan->organization.h;
  EXPECT_EQ(committed, expected);
  EXPECT_EQ(cm.frames_written(), expected);

  // Isolation: no column outside the window, no row outside the PRR.
  for (u32 c = 0; c < fabric.num_columns(); ++c) {
    for (u32 r = 0; r < fabric.rows(); ++r) {
      const bool inside_cols = c >= plan->window.first_col &&
                               c < plan->window.first_col + plan->window.width;
      const bool inside_rows = r >= plan->first_row &&
                               r < plan->first_row + plan->organization.h;
      if (!(inside_cols && inside_rows)) {
        EXPECT_FALSE(cm.row_column_touched(c, r, FrameBlock::kInterconnect))
            << "col " << c << " row " << r;
        EXPECT_FALSE(cm.row_column_touched(c, r, FrameBlock::kBramContent));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Paper, ApplyIsolation,
    ::testing::ValuesIn(paperdata::table5().begin(),
                        paperdata::table5().end()),
    [](const ::testing::TestParamInfo<paperdata::TableVRecord>& tp_info) {
      std::string name{tp_info.param.prm};
      name += "_";
      name += tp_info.param.device;
      return name;
    });

TEST(ConfigMemory, ApplyIsIdempotent) {
  const auto& rec = paperdata::table5_record("SDRAM", "xc5vlx110t");
  const auto plan = find_prr(rec.req, lx110t());
  const auto words = generate_bitstream(*plan, Family::kVirtex5);
  ConfigMemory cm{lx110t()};
  const u64 first = cm.apply_bitstream(words);
  const u64 second = cm.apply_bitstream(words);
  EXPECT_EQ(first, second);
  EXPECT_EQ(cm.frames_written(), first);  // same frames overwritten
}

TEST(ConfigMemory, ApplyRejectsGarbage) {
  ConfigMemory cm{lx110t()};
  const std::vector<u32> junk(10, 0x12345678);
  EXPECT_THROW(cm.apply_bitstream(junk), ParseError);
}

TEST(ConfigMemory, ClearResets) {
  const auto& rec = paperdata::table5_record("SDRAM", "xc5vlx110t");
  const auto plan = find_prr(rec.req, lx110t());
  ConfigMemory cm{lx110t()};
  cm.apply_bitstream(generate_bitstream(*plan, Family::kVirtex5));
  EXPECT_GT(cm.frames_written(), 0u);
  cm.clear();
  EXPECT_EQ(cm.frames_written(), 0u);
}

}  // namespace
}  // namespace prcost
