// Plan-cache correctness: a hit must be byte-identical to a fresh
// computation, with the cache on or off, from one thread or many.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "cost/floorplan.hpp"
#include "cost/plan_cache.hpp"
#include "cost/prr_search.hpp"
#include "device/device_db.hpp"
#include "dse/explorer.hpp"
#include "multitask/workload.hpp"
#include "netlist/generators.hpp"
#include "synth/synthesizer.hpp"

namespace prcost {
namespace {

/// Restores the global enabled flag (tests toggle it) and starts each test
/// from a cold cache so hits cannot leak across tests.
class PlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = plan_cache_enabled();
    plan_cache_clear();
  }
  void TearDown() override {
    set_plan_cache_enabled(was_enabled_);
    set_plan_cache_capacity(1u << 16);
    plan_cache_clear();
  }

 private:
  bool was_enabled_ = true;
};

PrmRequirements req_for(const Netlist& design, const Fabric& fabric) {
  return PrmRequirements::from_report(
      synthesize(design, SynthOptions{fabric.family()}).report);
}

void expect_plan_eq(const PrrPlan& a, const PrrPlan& b) {
  EXPECT_EQ(a.organization.h, b.organization.h);
  EXPECT_EQ(a.organization.columns.clb_cols, b.organization.columns.clb_cols);
  EXPECT_EQ(a.organization.columns.dsp_cols, b.organization.columns.dsp_cols);
  EXPECT_EQ(a.organization.columns.bram_cols,
            b.organization.columns.bram_cols);
  EXPECT_EQ(a.window.first_col, b.window.first_col);
  EXPECT_EQ(a.window.width, b.window.width);
  EXPECT_EQ(a.first_row, b.first_row);
  EXPECT_EQ(a.available.clbs, b.available.clbs);
  EXPECT_EQ(a.available.luts, b.available.luts);
  EXPECT_EQ(a.available.ffs, b.available.ffs);
  EXPECT_EQ(a.available.dsps, b.available.dsps);
  EXPECT_EQ(a.available.brams, b.available.brams);
  EXPECT_EQ(a.ru.clb, b.ru.clb);
  EXPECT_EQ(a.ru.ff, b.ru.ff);
  EXPECT_EQ(a.ru.lut, b.ru.lut);
  EXPECT_EQ(a.ru.dsp, b.ru.dsp);
  EXPECT_EQ(a.ru.bram, b.ru.bram);
  EXPECT_EQ(a.bitstream.initial_words, b.bitstream.initial_words);
  EXPECT_EQ(a.bitstream.config_words_per_row, b.bitstream.config_words_per_row);
  EXPECT_EQ(a.bitstream.bram_words_per_row, b.bitstream.bram_words_per_row);
  EXPECT_EQ(a.bitstream.final_words, b.bitstream.final_words);
  EXPECT_EQ(a.bitstream.rows, b.bitstream.rows);
  EXPECT_EQ(a.bitstream.total_words, b.bitstream.total_words);
  EXPECT_EQ(a.bitstream.total_bytes, b.bitstream.total_bytes);
}

TEST_F(PlanCacheTest, FindPrrHitMatchesUncached) {
  set_plan_cache_enabled(true);
  for (const char* device : {"xc5vlx110t", "xc6vlx75t"}) {
    const Fabric& fabric = DeviceDb::instance().get(device).fabric;
    for (const Netlist& design : {make_fir(), make_mips5(), make_uart()}) {
      const PrmRequirements req = req_for(design, fabric);
      for (const SearchObjective objective :
           {SearchObjective::kMinArea, SearchObjective::kFirstFeasible,
            SearchObjective::kMinBitstream}) {
        for (const u32 max_height : {u32{0}, u32{3}}) {
          SearchOptions options;
          options.objective = objective;
          options.max_height = max_height;
          const auto fresh = find_prr_uncached(req, fabric, options);
          const auto miss = find_prr(req, fabric, options);  // populates
          const auto hit = find_prr(req, fabric, options);   // cache hit
          ASSERT_EQ(fresh.has_value(), miss.has_value());
          ASSERT_EQ(fresh.has_value(), hit.has_value());
          if (fresh) {
            expect_plan_eq(*fresh, *miss);
            expect_plan_eq(*fresh, *hit);
          }
        }
      }
    }
  }
  const PlanCacheStats stats = plan_cache_stats();
  EXPECT_GT(stats.hits, 0u);
}

TEST_F(PlanCacheTest, InfeasibleResultIsCachedToo) {
  set_plan_cache_enabled(true);
  const Fabric& fabric = DeviceDb::instance().get("xc6vlx75t").fabric;
  PrmRequirements req;  // absurd demand: cannot fit at any height
  req.lut_ff_pairs = 10'000'000;
  req.luts = 10'000'000;
  req.ffs = 10'000'000;
  EXPECT_FALSE(find_prr(req, fabric).has_value());
  const u64 misses = plan_cache_stats().misses;
  EXPECT_FALSE(find_prr(req, fabric).has_value());
  EXPECT_EQ(plan_cache_stats().misses, misses);  // second call was a hit
}

TEST_F(PlanCacheTest, PlaceIdenticalWithCacheOnAndOff) {
  const Fabric& fabric = DeviceDb::instance().get("xc5vlx110t").fabric;
  const PrmRequirements fir = req_for(make_fir(), fabric);
  const PrmRequirements mips = req_for(make_mips5(), fabric);

  const auto run = [&](bool enabled) {
    set_plan_cache_enabled(enabled);
    Floorplanner floorplanner{fabric};
    floorplanner.reserve(0, fabric.num_columns(), 0, 1);
    std::vector<PrrPlan> plans;
    // Repeated placements force the superset pass once exact spans fill.
    for (int i = 0; i < 6; ++i) {
      const auto placed =
          floorplanner.place("p" + std::to_string(i), i % 2 ? mips : fir);
      if (!placed) break;
      plans.push_back(placed->plan);
    }
    return plans;
  };

  const auto cached = run(true);
  const auto uncached = run(false);
  ASSERT_FALSE(cached.empty());
  ASSERT_EQ(cached.size(), uncached.size());
  for (std::size_t i = 0; i < cached.size(); ++i) {
    expect_plan_eq(cached[i], uncached[i]);
  }
}

TEST_F(PlanCacheTest, ExploreBitIdenticalWithCacheOnAndOff) {
  const Fabric& fabric = DeviceDb::instance().get("xc5vlx110t").fabric;
  std::vector<PrmInfo> prms;
  for (int i = 0; i < 5; ++i) {
    prms.push_back(PrmInfo{
        "prm" + std::to_string(i),
        req_for(i % 2 ? make_mips5() : make_fir(), fabric), 0});
  }
  WorkloadParams wp;
  wp.count = 20;
  wp.prm_count = narrow<u32>(prms.size());
  const auto workload = make_workload(wp);

  set_plan_cache_enabled(true);
  const auto cached = explore(prms, fabric, workload);
  set_plan_cache_enabled(false);
  const auto uncached = explore(prms, fabric, workload);

  ASSERT_EQ(cached.size(), uncached.size());
  for (std::size_t i = 0; i < cached.size(); ++i) {
    EXPECT_EQ(cached[i].feasible, uncached[i].feasible);
    EXPECT_EQ(cached[i].infeasible_reason, uncached[i].infeasible_reason);
    EXPECT_EQ(cached[i].total_prr_area, uncached[i].total_prr_area);
    EXPECT_EQ(cached[i].total_bitstream_bytes,
              uncached[i].total_bitstream_bytes);
    EXPECT_EQ(cached[i].makespan_s, uncached[i].makespan_s);
    EXPECT_EQ(cached[i].total_reconfig_s, uncached[i].total_reconfig_s);
    ASSERT_EQ(cached[i].prr_plans.size(), uncached[i].prr_plans.size());
    for (std::size_t g = 0; g < cached[i].prr_plans.size(); ++g) {
      expect_plan_eq(cached[i].prr_plans[g], uncached[i].prr_plans[g]);
    }
  }
}

TEST_F(PlanCacheTest, ConcurrentLookupsAgree) {
  set_plan_cache_enabled(true);
  const Fabric& fabric = DeviceDb::instance().get("xc5vlx110t").fabric;
  const std::vector<PrmRequirements> reqs = {req_for(make_fir(), fabric),
                                             req_for(make_mips5(), fabric),
                                             req_for(make_uart(), fabric)};
  std::vector<std::optional<PrrPlan>> expected;
  for (const auto& req : reqs) expected.push_back(find_prr_uncached(req, fabric));

  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::size_t which =
            static_cast<std::size_t>(t + i) % reqs.size();
        const auto plan = find_prr(reqs[which], fabric);
        const auto& want = expected[which];
        if (plan.has_value() != want.has_value() ||
            (plan && (plan->organization.h != want->organization.h ||
                      plan->bitstream.total_bytes !=
                          want->bitstream.total_bytes))) {
          mismatches.fetch_add(1);
        }
        const auto candidates = placement_candidates(
            reqs[which], fabric, SearchObjective::kMinArea);
        if (!candidates || candidates->empty()) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(PlanCacheTest, EvictionKeepsCacheBoundedAndCorrect) {
  set_plan_cache_enabled(true);
  set_plan_cache_capacity(16);  // one entry per shard
  const Fabric& fabric = DeviceDb::instance().get("xc5vlx110t").fabric;
  const u64 evictions_before = plan_cache_stats().evictions;
  // Far more distinct keys than capacity.
  for (u32 i = 1; i <= 200; ++i) {
    PrmRequirements req;
    req.lut_ff_pairs = i * 10;
    req.luts = i * 10;
    req.ffs = i * 10;
    const auto cached = find_prr(req, fabric);
    const auto fresh = find_prr_uncached(req, fabric);
    ASSERT_EQ(cached.has_value(), fresh.has_value()) << "req " << i;
    if (cached) expect_plan_eq(*cached, *fresh);
  }
  const PlanCacheStats stats = plan_cache_stats();
  EXPECT_GT(stats.evictions, evictions_before);
  EXPECT_LE(stats.entries, 16u);
}

TEST_F(PlanCacheTest, ClearEmptiesButKeepsLifetimeCounters) {
  set_plan_cache_enabled(true);
  const Fabric& fabric = DeviceDb::instance().get("xc5vlx110t").fabric;
  (void)find_prr(req_for(make_fir(), fabric), fabric);
  EXPECT_GT(plan_cache_stats().entries, 0u);
  const u64 misses = plan_cache_stats().misses;
  plan_cache_clear();
  EXPECT_EQ(plan_cache_stats().entries, 0u);
  EXPECT_EQ(plan_cache_stats().misses, misses);
}

TEST_F(PlanCacheTest, DisabledFlagBypassesCache) {
  set_plan_cache_enabled(false);
  const Fabric& fabric = DeviceDb::instance().get("xc5vlx110t").fabric;
  const u64 lookups =
      plan_cache_stats().hits + plan_cache_stats().misses;
  (void)find_prr(req_for(make_fir(), fabric), fabric);
  EXPECT_EQ(plan_cache_stats().hits + plan_cache_stats().misses, lookups);
  EXPECT_EQ(plan_cache_stats().entries, 0u);
}

}  // namespace
}  // namespace prcost
