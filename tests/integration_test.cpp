// End-to-end integration: design entry -> synthesis -> PRR sizing ->
// floorplan -> implementation -> bitstream generation -> reconfiguration
// estimate -> multitasking schedule, with cross-checks at every joint.
#include <gtest/gtest.h>

#include "bitstream/generator.hpp"
#include "bitstream/parser.hpp"
#include "cost/floorplan.hpp"
#include "cost/prr_search.hpp"
#include "device/device_db.hpp"
#include "dse/explorer.hpp"
#include "multitask/simulator.hpp"
#include "netlist/generators.hpp"
#include "par/par.hpp"
#include "reconfig/full_bitstream.hpp"
#include "synth/synthesizer.hpp"

namespace prcost {
namespace {

struct FlowCase {
  const char* device;
  Family family;
};

class FullFlow : public ::testing::TestWithParam<FlowCase> {};

TEST_P(FullFlow, FirThroughEverything) {
  const auto [device_name, family] = GetParam();
  const Fabric& fabric = DeviceDb::instance().get(device_name).fabric;

  // 1. design entry + synthesis (the XST stand-in).
  auto synth = synthesize(make_fir(), SynthOptions{family, false});
  ASSERT_TRUE(synth.report.consistent());

  // 2. PRR sizing from the synthesis report (the paper's core use case).
  const PrmRequirements req = PrmRequirements::from_report(synth.report);
  const auto plan = find_prr(req, fabric);
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(satisfies(plan->organization, req, fabric.traits()));

  // 3. implementation inside the PRR.
  ParOptions par_options;
  par_options.place.anneal_moves = 1000;
  const ParResult par =
      place_and_route(std::move(synth.netlist), *plan, fabric, par_options);
  ASSERT_TRUE(par.routed) << par.failure_reason;
  EXPECT_LE(par.post_par.lut_ff_pairs, synth.report.lut_ff_pairs);

  // 4. bitstream generation matches the Eq. (18)-(23) prediction exactly.
  const auto words = generate_bitstream(*plan, family);
  EXPECT_EQ(to_bytes(words, family).size(), plan->bitstream.total_bytes);
  const auto layout = parse_bitstream(words, family);
  EXPECT_TRUE(layout.crc_ok);

  // 5. reconfiguration estimate feeds scheduling.
  const DmaIcapController dma{default_icap(family)};
  const double reconfig_s =
      dma.estimate(plan->bitstream.total_bytes, StorageMedia::kDdrSdram)
          .total_s;
  EXPECT_GT(reconfig_s, 0.0);
  EXPECT_LT(reconfig_s, 0.1);
}

INSTANTIATE_TEST_SUITE_P(
    Devices, FullFlow,
    ::testing::Values(FlowCase{"xc5vlx110t", Family::kVirtex5},
                      FlowCase{"xc6vlx75t", Family::kVirtex6},
                      FlowCase{"xc7k325t", Family::kSeries7}),
    [](const ::testing::TestParamInfo<FlowCase>& tp_info) {
      return std::string{tp_info.param.device};
    });

TEST(Integration, ThreePrmSystemOnLx110t) {
  // Synthesize all three paper PRMs, size a shared-pool system, place all
  // PRRs, and run the multitasking comparison against full reconfiguration.
  const Fabric& fabric = DeviceDb::instance().get("xc5vlx110t").fabric;

  std::vector<PrmInfo> prms;
  Floorplanner floorplanner{fabric};
  for (int which = 0; which < 3; ++which) {
    auto synth = synthesize(which == 0   ? make_mips5()
                            : which == 1 ? make_fir()
                                         : make_sdram_ctrl(),
                            SynthOptions{Family::kVirtex5, false});
    const PrmRequirements req = PrmRequirements::from_report(synth.report);
    const auto placed = floorplanner.place(synth.report.module_name, req);
    ASSERT_TRUE(placed.has_value()) << synth.report.module_name;
    prms.push_back(PrmInfo{synth.report.module_name, req,
                           placed->plan.bitstream.total_bytes});
  }
  EXPECT_EQ(floorplanner.placements().size(), 3u);

  WorkloadParams wp;
  wp.count = 60;
  const auto tasks = make_workload(wp);
  SimConfig config;
  config.prr_count = 3;
  const SimResult pr = simulate(prms, tasks, config);
  const SimResult nonpr = simulate_full_reconfig(
      prms, tasks, full_bitstream_bytes(fabric), StorageMedia::kDdrSdram);
  EXPECT_LT(pr.makespan_s, nonpr.makespan_s);
  EXPECT_EQ(pr.tasks.size(), tasks.size());
}

TEST(Integration, DseOverSynthesizedPrms) {
  // The DSE path consumes real synthesized requirements, not paper data.
  const Fabric& fabric = DeviceDb::instance().get("xc6vlx240t").fabric;
  std::vector<PrmInfo> prms;
  const auto add = [&](Netlist nl) {
    auto synth = synthesize(std::move(nl), SynthOptions{Family::kVirtex6});
    prms.push_back(PrmInfo{synth.report.module_name,
                           PrmRequirements::from_report(synth.report), 0});
  };
  add(make_fir());
  add(make_sdram_ctrl());
  add(make_uart());
  add(make_crc32());

  WorkloadParams wp;
  wp.count = 40;
  wp.prm_count = 4;
  const auto workload = make_workload(wp);
  const auto points = explore(prms, fabric, workload);
  EXPECT_EQ(points.size(), bell_number(4));
  const auto front = pareto_front(points);
  ASSERT_FALSE(front.empty());
  // The front's cheapest point uses fewer PRR cells than the most
  // parallel point.
  EXPECT_LE(front.front().total_prr_area, front.back().total_prr_area);
}

TEST(Integration, ReportRoundTripFeedsSearchIdentically) {
  // Serializing the synthesis report to text and re-parsing must not
  // change the PRR the model picks.
  auto synth = synthesize(make_mips5(), SynthOptions{Family::kVirtex5});
  const SynthesisReport parsed = parse_report(report_to_text(synth.report));
  const Fabric& fabric = DeviceDb::instance().get("xc5vlx110t").fabric;
  const auto a = find_prr(PrmRequirements::from_report(synth.report), fabric);
  const auto b = find_prr(PrmRequirements::from_report(parsed), fabric);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->organization.size(), b->organization.size());
  EXPECT_EQ(a->bitstream.total_bytes, b->bitstream.total_bytes);
}

}  // namespace
}  // namespace prcost
