#include <gtest/gtest.h>

#include "device/column.hpp"
#include "device/device_db.hpp"
#include "device/fabric.hpp"
#include "device/family_traits.hpp"
#include "util/error.hpp"

namespace prcost {
namespace {

// ------------------------------------------------- family traits (II/IV) ---

TEST(FamilyTraits, TableIIVirtex5) {
  // Values stated in the paper's Section III.A prose.
  const FamilyTraits& t = traits(Family::kVirtex5);
  EXPECT_EQ(t.clb_col, 20u);   // 20 CLBs per column-row
  EXPECT_EQ(t.dsp_col, 8u);    // 8 DSPs per column-row
  EXPECT_EQ(t.bram_col, 4u);   // 4 BRAMs per column-row
  EXPECT_EQ(t.lut_clb, 8u);    // 2 slices x 4 LUTs
  EXPECT_EQ(t.ff_clb, 8u);     // 2 slices x 4 FFs
}

TEST(FamilyTraits, TableIVVirtex5) {
  const FamilyTraits& t = traits(Family::kVirtex5);
  EXPECT_EQ(t.cf_clb, 36u);    // paper: CLB columns have 36 frames
  EXPECT_EQ(t.cf_dsp, 28u);
  EXPECT_EQ(t.cf_bram, 30u);
  EXPECT_EQ(t.cf_iob, 54u);
  EXPECT_EQ(t.cf_clk, 4u);
  EXPECT_EQ(t.df_bram, 128u);  // paper: 128 data frames per BRAM column
  EXPECT_EQ(t.frame_size, 41u);
  EXPECT_EQ(t.bytes_word, 4u);
}

TEST(FamilyTraits, Virtex6DoublesDensities) {
  const FamilyTraits& v5 = traits(Family::kVirtex5);
  const FamilyTraits& v6 = traits(Family::kVirtex6);
  EXPECT_EQ(v6.clb_col, 2 * v5.clb_col);
  EXPECT_EQ(v6.dsp_col, 2 * v5.dsp_col);
  EXPECT_EQ(v6.bram_col, 2 * v5.bram_col);
  EXPECT_EQ(v6.ff_clb, 16u);  // Virtex-6 slices have 8 FFs
}

TEST(FamilyTraits, SlicesPerClb) {
  EXPECT_EQ(traits(Family::kVirtex5).luts_per_slice(), 4u);
  EXPECT_EQ(traits(Family::kVirtex6).ffs_per_slice(), 8u);
}

TEST(FamilyTraits, AllFamiliesHaveSaneBitstreamConstants) {
  for (const Family family : kAllFamilies) {
    const FamilyTraits& t = traits(family);
    EXPECT_GT(t.frame_size, 0u) << family_name(family);
    EXPECT_GT(t.iw, 0u);
    EXPECT_GT(t.fw, 0u);
    EXPECT_EQ(t.far_fdri, 5u);  // NOOP + FAR(2) + FDRI hdr + type-2 hdr
    // Virtex/7-series words are 32-bit; Spartan-6 is the paper's 16-bit
    // Bytes_word case.
    EXPECT_EQ(t.bytes_word, family == Family::kSpartan6 ? 2u : 4u);
  }
}

TEST(FamilyTraits, Spartan6SixteenBitWords) {
  const FamilyTraits& t = traits(Family::kSpartan6);
  EXPECT_EQ(t.bytes_word, 2u);
  EXPECT_EQ(t.frame_size, 65u);
  EXPECT_EQ(parse_family("spartan-6"), Family::kSpartan6);
}

TEST(ParseFamily, AcceptsAliases) {
  EXPECT_EQ(parse_family("virtex5"), Family::kVirtex5);
  EXPECT_EQ(parse_family("Virtex-6"), Family::kVirtex6);
  EXPECT_EQ(parse_family("V4"), Family::kVirtex4);
  EXPECT_EQ(parse_family("7-series"), Family::kSeries7);
}

TEST(ParseFamily, UnknownThrows) {
  EXPECT_THROW(parse_family("spartan3"), ContractError);
}

TEST(FamilyName, RoundTripsThroughParse) {
  for (const Family family : kAllFamilies) {
    EXPECT_EQ(parse_family(family_name(family)), family);
  }
}

// --------------------------------------------------------------- columns ---

TEST(Column, CodesRoundTrip) {
  for (const ColumnType type : kAllColumnTypes) {
    EXPECT_EQ(parse_column_code(column_code(type)), type);
  }
}

TEST(Column, PrrCapability) {
  EXPECT_TRUE(prr_capable(ColumnType::kClb));
  EXPECT_TRUE(prr_capable(ColumnType::kDsp));
  EXPECT_TRUE(prr_capable(ColumnType::kBram));
  EXPECT_FALSE(prr_capable(ColumnType::kIob));
  EXPECT_FALSE(prr_capable(ColumnType::kClk));
}

TEST(Column, ResourcesPerRow) {
  const FamilyTraits& t = traits(Family::kVirtex5);
  EXPECT_EQ(resources_per_row(ColumnType::kClb, t), 20u);
  EXPECT_EQ(resources_per_row(ColumnType::kIob, t), 0u);
}

TEST(Column, ConfigFrames) {
  const FamilyTraits& t = traits(Family::kVirtex5);
  EXPECT_EQ(config_frames(ColumnType::kClb, t), 36u);
  EXPECT_EQ(config_frames(ColumnType::kClk, t), 4u);
}

// ---------------------------------------------------------------- fabric ---

TEST(Fabric, ConstructionAndCounts) {
  const Fabric fabric{Family::kVirtex5, "CCBDCIK", 4};
  EXPECT_EQ(fabric.rows(), 4u);
  EXPECT_EQ(fabric.num_columns(), 7u);
  EXPECT_EQ(fabric.column_count(ColumnType::kClb), 3u);
  EXPECT_EQ(fabric.column_count(ColumnType::kBram), 1u);
  EXPECT_EQ(fabric.column_count(ColumnType::kDsp), 1u);
  EXPECT_EQ(fabric.pattern(), "CCBDCIK");
}

TEST(Fabric, RejectsBadInput) {
  EXPECT_THROW((Fabric{Family::kVirtex5, "", 1}), ContractError);
  EXPECT_THROW((Fabric{Family::kVirtex5, "CC", 0}), ContractError);
  EXPECT_THROW((Fabric{Family::kVirtex5, "CXC", 2}), ContractError);
}

TEST(Fabric, TotalResources) {
  const Fabric fabric{Family::kVirtex5, "CCB", 2};
  EXPECT_EQ(fabric.total_resources(ColumnType::kClb), 2u * 2 * 20);
  EXPECT_EQ(fabric.total_resources(ColumnType::kBram), 1u * 2 * 4);
  EXPECT_EQ(fabric.total_luts(), 80u * 8);
  EXPECT_EQ(fabric.total_ffs(), 80u * 8);
}

TEST(Fabric, FindWindowExactComposition) {
  const Fabric fabric{Family::kVirtex5, "CCBCCDCC", 2};
  const auto window = fabric.find_window(ColumnDemand{2, 1, 0});
  ASSERT_TRUE(window.has_value());
  // Left-most 3-wide window with exactly 2 CLB + 1 DSP: columns 3..5
  // ("CCD").
  EXPECT_EQ(window->first_col, 3u);
  EXPECT_EQ(window->width, 3u);
}

TEST(Fabric, FindWindowRejectsBlockedColumns) {
  const Fabric fabric{Family::kVirtex5, "CCICC", 2};
  // Any 3-wide all-CLB window would have to span the IOB column.
  EXPECT_FALSE(fabric.find_window(ColumnDemand{3, 0, 0}).has_value());
  EXPECT_TRUE(fabric.find_window(ColumnDemand{2, 0, 0}).has_value());
}

TEST(Fabric, FindWindowZeroOrTooWide) {
  const Fabric fabric{Family::kVirtex5, "CCC", 1};
  EXPECT_FALSE(fabric.find_window(ColumnDemand{0, 0, 0}).has_value());
  EXPECT_FALSE(fabric.find_window(ColumnDemand{4, 0, 0}).has_value());
}

TEST(Fabric, FindAllWindowsEnumeratesEveryStart) {
  const Fabric fabric{Family::kVirtex5, "CCCC", 1};
  const auto windows = fabric.find_all_windows(ColumnDemand{2, 0, 0});
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].first_col, 0u);
  EXPECT_EQ(windows[2].first_col, 2u);
}

TEST(Fabric, SupersetWindowAllowsSurplusColumns) {
  const Fabric fabric{Family::kVirtex5, "CCBCDCC", 2};
  // 4 CLB + 1 DSP has no exact 5-wide window (the span around the DSP
  // always carries the BRAM column), but a 6-wide superset does.
  EXPECT_FALSE(fabric.find_window(ColumnDemand{4, 1, 0}).has_value());
  const auto window = fabric.find_window_superset(ColumnDemand{4, 1, 0});
  ASSERT_TRUE(window.has_value());
  const ColumnDemand comp = fabric.window_composition(*window);
  EXPECT_GE(comp.clb_cols, 4u);
  EXPECT_GE(comp.dsp_cols, 1u);
}

TEST(Fabric, SupersetNeverCrossesBlockedColumns) {
  const Fabric fabric{Family::kVirtex5, "CCICC", 1};
  EXPECT_FALSE(fabric.find_window_superset(ColumnDemand{3, 0, 0}).has_value());
}

TEST(Fabric, SupersetPrefersSmallestThenLeftmost) {
  const Fabric fabric{Family::kVirtex5, "CCCDCC", 1};
  const auto window = fabric.find_window_superset(ColumnDemand{1, 1, 0});
  ASSERT_TRUE(window.has_value());
  EXPECT_EQ(window->width, 2u);
  EXPECT_EQ(window->first_col, 2u);  // "CD" at columns 2..3
}

TEST(Fabric, WindowCompositionIgnoresNothingInRange) {
  const Fabric fabric{Family::kVirtex5, "CDBCB", 1};
  const ColumnDemand comp = fabric.window_composition(ColumnWindow{0, 5});
  EXPECT_EQ(comp.clb_cols, 2u);
  EXPECT_EQ(comp.dsp_cols, 1u);
  EXPECT_EQ(comp.bram_cols, 2u);
  EXPECT_THROW(fabric.window_composition(ColumnWindow{3, 5}), ContractError);
}

TEST(Fabric, WindowConfigFrames) {
  const Fabric fabric{Family::kVirtex5, "CDB", 1};
  // 36 + 28 + 30 across the full window.
  EXPECT_EQ(fabric.window_config_frames(ColumnWindow{0, 3}), 94u);
  EXPECT_THROW(fabric.window_config_frames(ColumnWindow{1, 3}), ContractError);
}

// ------------------------------------------------------------- device db ---

TEST(DeviceDb, ContainsPaperDevices) {
  const DeviceDb& db = DeviceDb::instance();
  EXPECT_TRUE(db.contains("xc5vlx110t"));
  EXPECT_TRUE(db.contains("XC6VLX75T"));  // case-insensitive
  EXPECT_FALSE(db.contains("xc2v1000"));
  EXPECT_THROW(db.get("xc2v1000"), ContractError);
}

TEST(DeviceDb, Lx110tMatchesPublishedGeometry) {
  const Device& dev = DeviceDb::instance().get("xc5vlx110t");
  EXPECT_EQ(dev.fabric.family(), Family::kVirtex5);
  EXPECT_EQ(dev.fabric.rows(), 8u);  // paper: "the Virtex-5 LX110T has 8 rows"
  // Exactly one DSP column: the reason the paper uses Eq. (4) on this part.
  EXPECT_EQ(dev.fabric.column_count(ColumnType::kDsp), 1u);
  EXPECT_EQ(dev.fabric.total_resources(ColumnType::kDsp), 64u);
  EXPECT_EQ(dev.fabric.total_resources(ColumnType::kClb), 8640u);
  EXPECT_EQ(dev.fabric.total_luts(), 69120u);  // published LUT count
}

TEST(DeviceDb, Lx75tMatchesPublishedGeometry) {
  const Device& dev = DeviceDb::instance().get("xc6vlx75t");
  EXPECT_EQ(dev.fabric.family(), Family::kVirtex6);
  EXPECT_EQ(dev.fabric.rows(), 3u);  // paper: "the Virtex-6 LX75T has 3 rows"
  EXPECT_EQ(dev.fabric.total_resources(ColumnType::kDsp), 288u);  // published
  EXPECT_GT(dev.fabric.column_count(ColumnType::kDsp), 1u);
}

TEST(DeviceDb, AllDevicesValidateInternally) {
  for (const Device& dev : DeviceDb::instance().all()) {
    EXPECT_GT(dev.fabric.rows(), 0u) << dev.name;
    EXPECT_GT(dev.fabric.column_count(ColumnType::kClb), 0u) << dev.name;
    // Every catalog fabric keeps IOB/CLK out of at least one wide
    // PR-capable stretch.
    EXPECT_TRUE(dev.fabric.find_window(ColumnDemand{3, 0, 0}).has_value())
        << dev.name;
  }
}

TEST(MakeRegularPattern, CountsMatchRequest) {
  const std::string pattern = make_regular_pattern(40, 2, 4, 3, 1);
  const Fabric fabric{Family::kVirtex5, pattern, 1};
  EXPECT_EQ(fabric.column_count(ColumnType::kClb), 40u);
  EXPECT_EQ(fabric.column_count(ColumnType::kDsp), 2u);
  EXPECT_EQ(fabric.column_count(ColumnType::kBram), 4u);
  EXPECT_EQ(fabric.column_count(ColumnType::kIob), 3u);
  EXPECT_EQ(fabric.column_count(ColumnType::kClk), 1u);
}

TEST(MakeRegularPattern, NoClbThrows) {
  EXPECT_THROW(make_regular_pattern(0, 1, 1, 1, 1), ContractError);
}

}  // namespace
}  // namespace prcost
