// Fault-injection & recovery layer: deterministic injector sequences, the
// verified-transfer retry/backoff/timeout accounting, the closed-form
// retry expectation, graceful simulator degradation, and the Engine
// `faults` workflow (strict mode -> FaultError).
#include <gtest/gtest.h>

#include <vector>

#include "api/engine.hpp"
#include "multitask/preemptive.hpp"
#include "multitask/simulator.hpp"
#include "reconfig/baselines.hpp"
#include "reconfig/controllers.hpp"
#include "reconfig/faults.hpp"
#include "reconfig/icap.hpp"
#include "util/error.hpp"

namespace prcost {
namespace {

// FIR on xc5vlx110t per Table V/VII - the reconfig_test anchor size.
constexpr u64 kFirBytes = 83064;

FaultProfile rate(double fault_rate, u64 seed = 0x5EED) {
  FaultProfile profile;
  profile.fault_rate = fault_rate;
  profile.seed = seed;
  return profile;
}

std::vector<PrmInfo> two_prms() {
  return {PrmInfo{"a", {}, kFirBytes}, PrmInfo{"b", {}, kFirBytes}};
}

std::vector<HwTask> small_workload(u32 count = 24) {
  WorkloadParams wp;
  wp.count = count;
  wp.prm_count = 2;
  return make_workload(wp);
}

// ------------------------------------------------------------- injector ---

TEST(FaultInjector, DeterministicUnderFixedSeed) {
  FaultProfile profile = rate(0.5, 123);
  profile.stall_rate = 0.25;
  FaultInjector a{profile};
  FaultInjector b{profile};
  for (int i = 0; i < 1000; ++i) {
    const FaultInjector::Attempt fa = a.next_attempt();
    const FaultInjector::Attempt fb = b.next_attempt();
    EXPECT_EQ(fa.kind, fb.kind);
    EXPECT_EQ(fa.stall_s, fb.stall_s);
  }
  EXPECT_EQ(a.attempts(), 1000u);
  EXPECT_EQ(a.corrupted(), b.corrupted());
  EXPECT_EQ(a.stalls(), b.stalls());
  EXPECT_GT(a.corrupted(), 0u);
  EXPECT_GT(a.stalls(), 0u);
}

TEST(FaultInjector, SeedsProduceDistinctSequences) {
  FaultInjector a{rate(0.5, 1)};
  FaultInjector b{rate(0.5, 2)};
  bool diverged = false;
  for (int i = 0; i < 200 && !diverged; ++i) {
    diverged = a.next_attempt().kind != b.next_attempt().kind;
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultInjector, InactiveProfileNeverFires) {
  FaultInjector injector{FaultProfile{}};
  EXPECT_FALSE(injector.profile().active());
  for (int i = 0; i < 200; ++i) {
    const FaultInjector::Attempt fate = injector.next_attempt();
    EXPECT_FALSE(fate.corrupted());
    EXPECT_EQ(fate.stall_s, 0.0);
  }
  EXPECT_EQ(injector.corrupted(), 0u);
  EXPECT_EQ(injector.stalls(), 0u);
}

TEST(FaultInjector, RejectsBadProfile) {
  EXPECT_THROW(FaultInjector{rate(1.5)}, ContractError);
  EXPECT_THROW(FaultInjector{rate(-0.1)}, ContractError);
  FaultProfile bad_stall;
  bad_stall.stall_rate = 2.0;
  EXPECT_THROW(FaultInjector{bad_stall}, ContractError);
  FaultProfile negative;
  negative.stall_s = -1.0;
  EXPECT_THROW(FaultInjector{negative}, ContractError);
}

TEST(FaultInjector, CorruptMutatesNonEmptyBuffers) {
  FaultInjector injector{rate(1.0, 7)};
  for (int i = 0; i < 50; ++i) {
    std::vector<u32> words(64, 0xA5A5A5A5u);
    const std::vector<u32> original = words;
    const FaultKind kind = injector.corrupt(words);
    EXPECT_NE(kind, FaultKind::kNone);
    EXPECT_NE(words, original) << fault_kind_name(kind);
  }
  std::vector<u32> empty;
  EXPECT_EQ(injector.corrupt(empty), FaultKind::kNone);
}

TEST(FaultInjector, ApplyChangesSizeAsDocumented) {
  Rng rng{99};
  std::vector<u32> words(32, 1u);
  FaultInjector::apply(words, FaultKind::kWordDrop, rng);
  EXPECT_EQ(words.size(), 31u);
  FaultInjector::apply(words, FaultKind::kWordDup, rng);
  EXPECT_EQ(words.size(), 32u);
  FaultInjector::apply(words, FaultKind::kTruncate, rng);
  EXPECT_LT(words.size(), 32u);
}

// ----------------------------------------------------- verified transfer ---

TEST(VerifiedTransfer, FaultFreeIdentity) {
  const DmaIcapController controller{default_icap(Family::kVirtex5)};
  const ReconfigEstimate estimate =
      controller.estimate(kFirBytes, StorageMedia::kDdrSdram);
  const TransferOutcome out =
      verified_transfer(controller, kFirBytes, StorageMedia::kDdrSdram);
  EXPECT_TRUE(out.success);
  EXPECT_EQ(out.attempts, 1u);
  // Exact, not approximate: the fault-free path must be bit-identical.
  EXPECT_EQ(out.total_s, estimate.total_s);
  EXPECT_EQ(out.backoff_s, 0.0);
  EXPECT_EQ(out.wasted_s, 0.0);
  EXPECT_EQ(out.timeouts, 0u);
}

TEST(VerifiedTransfer, ExhaustsRetriesAtRateOne) {
  const DmaIcapController controller{default_icap(Family::kVirtex5)};
  FaultInjector injector{rate(1.0)};
  const RetryPolicy policy;  // 3 retries, 10us backoff doubling
  const TransferOutcome out = verified_transfer(
      controller, kFirBytes, StorageMedia::kDdrSdram, &injector, policy);
  EXPECT_FALSE(out.success);
  EXPECT_EQ(out.attempts, 4u);
  // Backoff schedule is exact: 10us + 20us + 40us between the 4 attempts.
  EXPECT_DOUBLE_EQ(out.backoff_s, 70e-6);
  const double attempt_s =
      controller.estimate(kFirBytes, StorageMedia::kDdrSdram).total_s;
  EXPECT_DOUBLE_EQ(out.total_s, 4.0 * attempt_s + 70e-6);
  EXPECT_DOUBLE_EQ(out.wasted_s, out.total_s);
  EXPECT_EQ(injector.attempts(), 4u);
}

TEST(VerifiedTransfer, RecoversAfterCorruptedAttempt) {
  const DmaIcapController controller{default_icap(Family::kVirtex5)};
  // Find a seed whose first draw corrupts and second does not, so the
  // transfer recovers on attempt 2 deterministically.
  u64 seed = 0;
  for (;; ++seed) {
    FaultInjector probe{rate(0.5, seed)};
    if (probe.next_attempt().corrupted() &&
        !probe.next_attempt().corrupted()) {
      break;
    }
    ASSERT_LT(seed, 1000u);
  }
  FaultInjector injector{rate(0.5, seed)};
  const TransferOutcome out = verified_transfer(
      controller, kFirBytes, StorageMedia::kDdrSdram, &injector, {});
  EXPECT_TRUE(out.success);
  EXPECT_EQ(out.attempts, 2u);
  EXPECT_DOUBLE_EQ(out.backoff_s, 10e-6);
  EXPECT_GT(out.wasted_s, 0.0);
  EXPECT_LT(out.wasted_s, out.total_s);
}

TEST(VerifiedTransfer, TimeoutAbandonsAtTheCap) {
  const DmaIcapController controller{default_icap(Family::kVirtex5)};
  const double attempt_s =
      controller.estimate(kFirBytes, StorageMedia::kDdrSdram).total_s;
  RetryPolicy policy;
  policy.max_retries = 1;
  policy.attempt_timeout_s = attempt_s / 2.0;
  const TransferOutcome out = verified_transfer(
      controller, kFirBytes, StorageMedia::kDdrSdram, nullptr, policy);
  EXPECT_FALSE(out.success);
  EXPECT_EQ(out.attempts, 2u);
  EXPECT_EQ(out.timeouts, 2u);
  // Each attempt is abandoned exactly at the cap.
  EXPECT_DOUBLE_EQ(out.total_s, 2.0 * policy.attempt_timeout_s + 10e-6);
}

TEST(VerifiedTransfer, RejectsBadPolicy) {
  const DmaIcapController controller{default_icap(Family::kVirtex5)};
  RetryPolicy shrink;
  shrink.backoff_multiplier = 0.5;
  EXPECT_THROW(verified_transfer(controller, kFirBytes,
                                 StorageMedia::kDdrSdram, nullptr, shrink),
               ContractError);
  RetryPolicy negative;
  negative.backoff_initial_s = -1.0;
  EXPECT_THROW(verified_transfer(controller, kFirBytes,
                                 StorageMedia::kDdrSdram, nullptr, negative),
               ContractError);
  RetryPolicy zero_cap;
  zero_cap.attempt_timeout_s = 0.0;
  EXPECT_THROW(verified_transfer(controller, kFirBytes,
                                 StorageMedia::kDdrSdram, nullptr, zero_cap),
               ContractError);
}

// ----------------------------------------------------- retry expectation ---

TEST(RetryExpectation, ClosedFormMatchesHandComputation) {
  const RetryPolicy policy;  // n = 4 attempts, 10us backoff doubling
  const RetryExpectation none = expected_retry_cost(1.0, 0.0, policy);
  EXPECT_DOUBLE_EQ(none.expected_attempts, 1.0);
  EXPECT_DOUBLE_EQ(none.success_probability, 1.0);
  EXPECT_DOUBLE_EQ(none.expected_time_s, 1.0);

  const RetryExpectation certain = expected_retry_cost(1.0, 1.0, policy);
  EXPECT_DOUBLE_EQ(certain.expected_attempts, 4.0);
  EXPECT_DOUBLE_EQ(certain.success_probability, 0.0);

  // p = 0.5: E[attempts] = 1 + .5 + .25 + .125; backoff = .5*10u + .25*20u
  // + .125*40u = 15us.
  const RetryExpectation half = expected_retry_cost(1.0, 0.5, policy);
  EXPECT_DOUBLE_EQ(half.expected_attempts, 1.875);
  EXPECT_DOUBLE_EQ(half.success_probability, 1.0 - 0.0625);
  EXPECT_DOUBLE_EQ(half.expected_time_s, 1.875 + 15e-6);

  EXPECT_THROW(expected_retry_cost(1.0, -0.1, policy), ContractError);
  EXPECT_THROW(expected_retry_cost(1.0, 1.1, policy), ContractError);
}

// ------------------------------------------------- simulator degradation ---

TEST(SimulatorFaults, InactiveInjectorIsBitIdenticalToBaseline) {
  const auto prms = two_prms();
  const auto tasks = small_workload();
  SimConfig base;
  base.prr_count = 2;
  const SimResult clean = simulate(prms, tasks, base);

  FaultInjector injector{FaultProfile{}};  // attached but rates all zero
  SimConfig faulty = base;
  faulty.faults = &injector;
  const SimResult guarded = simulate(prms, tasks, faulty);

  EXPECT_EQ(clean.makespan_s, guarded.makespan_s);
  EXPECT_EQ(clean.total_reconfig_s, guarded.total_reconfig_s);
  EXPECT_EQ(clean.reconfig_count, guarded.reconfig_count);
  EXPECT_EQ(guarded.retry_attempts, 0u);
  EXPECT_EQ(guarded.failed_reconfigs, 0u);
  EXPECT_EQ(guarded.dropped_tasks, 0u);
}

TEST(SimulatorFaults, RateOneDropsEveryTask) {
  const auto prms = two_prms();
  const auto tasks = small_workload();
  FaultInjector injector{rate(1.0)};
  SimConfig config;
  config.prr_count = 2;
  config.faults = &injector;
  config.drop_penalty_s = 1e-3;
  const SimResult r = simulate(prms, tasks, config);  // must not throw
  EXPECT_EQ(r.reconfig_count, 0u);
  EXPECT_EQ(r.dropped_tasks, tasks.size());
  EXPECT_EQ(r.failed_reconfigs, tasks.size());
  EXPECT_DOUBLE_EQ(r.total_penalty_s,
                   static_cast<double>(tasks.size()) * 1e-3);
  for (const TaskOutcome& t : r.tasks) {
    EXPECT_TRUE(t.dropped);
    EXPECT_EQ(t.reconfig_attempts, 4u);  // 1 + 3 retries, all corrupted
  }
  EXPECT_GT(r.makespan_s, 0.0);
  EXPECT_GT(r.total_fault_wasted_s, 0.0);
}

TEST(SimulatorFaults, RescheduleRetriesBeforeDropping) {
  const auto prms = two_prms();
  const auto tasks = small_workload(8);
  FaultInjector injector{rate(1.0)};
  SimConfig config;
  config.prr_count = 2;
  config.faults = &injector;
  config.recovery = FaultRecovery::kReschedule;
  config.max_reschedules = 2;
  const SimResult r = simulate(prms, tasks, config);
  EXPECT_EQ(r.dropped_tasks, tasks.size());
  EXPECT_EQ(r.rescheduled_tasks, 2 * tasks.size());
  EXPECT_EQ(r.failed_reconfigs, 3 * tasks.size());
  for (const TaskOutcome& t : r.tasks) {
    EXPECT_TRUE(t.dropped);
    EXPECT_EQ(t.reconfig_attempts, 12u);  // 3 transfers x 4 attempts
  }
}

// kReschedule accounting audit (property test): every permanent transfer
// failure is either one re-queue event or one drop, the re-queue count is
// bounded by the per-task budget, and reconfiguration time is never
// double-charged into wait_s — for tasks that ran, wait is exactly
// start - arrival and finish is exactly start + exec; for dropped tasks,
// start == finish == the give-up instant.
TEST(SimulatorFaults, RescheduleAccountingInvariants) {
  const auto prms = two_prms();
  const auto tasks = small_workload(60);
  for (const double fault_rate : {0.3, 0.6, 1.0}) {
    FaultInjector injector{rate(fault_rate, 99)};
    SimConfig config;
    config.prr_count = 2;
    config.faults = &injector;
    config.recovery = FaultRecovery::kReschedule;
    config.max_reschedules = 3;
    const SimResult r = simulate(prms, tasks, config);
    EXPECT_EQ(r.failed_reconfigs, r.rescheduled_tasks + r.dropped_tasks);
    EXPECT_LE(r.rescheduled_tasks,
              static_cast<u64>(config.max_reschedules) * tasks.size());
    // make_workload arrivals are strictly increasing, so the simulator's
    // (arrival, input order) sort leaves input order intact and
    // r.tasks[i] corresponds to tasks[i].
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      const TaskOutcome& t = r.tasks[i];
      ASSERT_EQ(t.task_index, i);
      if (t.dropped) {
        EXPECT_EQ(t.start_s, t.finish_s);
        EXPECT_EQ(t.wait_s, t.finish_s - tasks[i].arrival_s);
      } else {
        EXPECT_EQ(t.wait_s, t.start_s - tasks[i].arrival_s);
        EXPECT_EQ(t.finish_s, t.start_s + tasks[i].exec_s);
        EXPECT_GE(t.wait_s, 0.0);
      }
    }
  }
  // Rate 1.0 exactness: with N tasks and budget R every task drops after
  // R re-queues, so the event count is N*R, not N.
  FaultInjector certain{rate(1.0)};
  SimConfig config;
  config.prr_count = 2;
  config.faults = &certain;
  config.recovery = FaultRecovery::kReschedule;
  config.max_reschedules = 3;
  const SimResult r = simulate(prms, tasks, config);
  EXPECT_EQ(r.rescheduled_tasks, 3 * tasks.size());
  EXPECT_EQ(r.dropped_tasks, tasks.size());
  EXPECT_EQ(r.failed_reconfigs, 4 * tasks.size());
  EXPECT_EQ(r.reconfig_count, 0u);
}

TEST(SimulatorFaults, FixedSeedIsBitReproducible) {
  const auto prms = two_prms();
  const auto tasks = small_workload(40);
  const auto run = [&] {
    FaultInjector injector{rate(0.3, 77)};
    SimConfig config;
    config.prr_count = 2;
    config.faults = &injector;
    return simulate(prms, tasks, config);
  };
  const SimResult a = run();
  const SimResult b = run();
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.total_reconfig_s, b.total_reconfig_s);
  EXPECT_EQ(a.retry_attempts, b.retry_attempts);
  EXPECT_EQ(a.failed_reconfigs, b.failed_reconfigs);
  EXPECT_EQ(a.dropped_tasks, b.dropped_tasks);
  EXPECT_EQ(a.total_retry_backoff_s, b.total_retry_backoff_s);
}

TEST(PreemptiveFaults, DropsJobsGracefully) {
  const auto prms = two_prms();
  const auto tasks = small_workload(12);
  FaultInjector injector{rate(1.0)};
  PreemptiveConfig config;
  config.prr_count = 1;
  config.faults = &injector;
  config.drop_penalty_s = 5e-4;
  const PreemptiveResult r = simulate_preemptive(prms, tasks, config);
  EXPECT_EQ(r.reconfig_count, 0u);
  EXPECT_EQ(r.dropped_tasks, tasks.size());
  EXPECT_DOUBLE_EQ(r.total_penalty_s,
                   static_cast<double>(tasks.size()) * 5e-4);
  for (const TaskOutcome& t : r.tasks) EXPECT_TRUE(t.dropped);
}

TEST(PreemptiveFaults, InactiveInjectorIsBitIdenticalToBaseline) {
  const auto prms = two_prms();
  const auto tasks = small_workload(16);
  PreemptiveConfig base;
  base.prr_count = 2;
  const PreemptiveResult clean = simulate_preemptive(prms, tasks, base);
  FaultInjector injector{FaultProfile{}};
  PreemptiveConfig faulty = base;
  faulty.faults = &injector;
  const PreemptiveResult guarded = simulate_preemptive(prms, tasks, faulty);
  EXPECT_EQ(clean.makespan_s, guarded.makespan_s);
  EXPECT_EQ(clean.total_reconfig_s, guarded.total_reconfig_s);
  EXPECT_EQ(guarded.dropped_tasks, 0u);
  EXPECT_EQ(guarded.retry_attempts, 0u);
}

// --------------------------------------------------------- engine layer ---

TEST(EngineFaults, ZeroRateIsClean) {
  const api::Engine engine;
  api::FaultsRequest request;
  request.device = "xc5vlx110t";
  request.prms = {"fir", "uart"};
  request.tasks = 20;
  const api::FaultsResponse response = engine.faults(request);
  EXPECT_EQ(response.fault_rate, 0.0);
  EXPECT_EQ(response.dropped_tasks, 0u);
  EXPECT_EQ(response.retry_attempts, 0u);
  EXPECT_EQ(response.injected_faults, 0u);
  EXPECT_GT(response.reconfig_count, 0u);
  EXPECT_GT(response.effective_reconfig_s, 0.0);
}

TEST(EngineFaults, FixedFaultSeedIsBitReproducible) {
  const api::Engine engine;
  api::FaultsRequest request;
  request.device = "xc5vlx110t";
  request.prms = {"fir", "uart"};
  request.tasks = 30;
  request.fault_rate = 0.6;
  request.fault_seed = u64{99};
  const api::FaultsResponse a = engine.faults(request);
  const api::FaultsResponse b = engine.faults(request);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.retry_attempts, b.retry_attempts);
  EXPECT_EQ(a.dropped_tasks, b.dropped_tasks);
  EXPECT_EQ(a.injected_faults, b.injected_faults);
  EXPECT_GT(a.injected_faults, 0u);
}

TEST(EngineFaults, StrictModeThrowsFaultError) {
  const api::Engine engine;
  api::FaultsRequest request;
  request.device = "xc5vlx110t";
  request.prms = {"fir"};
  request.tasks = 10;
  request.fault_rate = 1.0;
  request.strict = true;
  EXPECT_THROW(engine.faults(request), FaultError);
  request.strict = false;
  EXPECT_NO_THROW(engine.faults(request));
}

TEST(EngineFaults, ValidatesRequest) {
  const api::Engine engine;
  api::FaultsRequest request;
  request.device = "xc5vlx110t";
  EXPECT_THROW(engine.faults(request), UsageError);  // no PRMs
  request.prms = {"fir"};
  request.recovery = "retry";
  EXPECT_THROW(engine.faults(request), UsageError);
  request.recovery = "drop";
  request.media = "tape";
  EXPECT_THROW(engine.faults(request), UsageError);
}

TEST(FaultErrorTaxonomy, StableWireName) {
  EXPECT_EQ(error_code_name(ErrorCode::kFault), "fault");
  const FaultError error{"boom"};
  EXPECT_EQ(error.code(), ErrorCode::kFault);
  EXPECT_STREQ(error.what(), "boom");
}

}  // namespace
}  // namespace prcost
