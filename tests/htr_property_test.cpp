// Property tests for the HTR defrag/relocation move machinery: move
// sequences are deterministic under a fixed seed, and every emitted move
// leaves the floorplan free of overlaps.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "device/device_db.hpp"
#include "htr/defrag.hpp"
#include "opt/layout.hpp"
#include "opt/moves.hpp"
#include "reconfig/icap.hpp"
#include "util/rng.hpp"

namespace prcost {
namespace {

const Fabric& lx110t() {
  return DeviceDb::instance().get("xc5vlx110t").fabric;
}

/// Replay a seeded allocate/release trace, leaving a fragmented layout.
Floorplanner fragmented_floorplan(u64 seed, int steps = 120) {
  const Fabric& fabric = lx110t();
  Floorplanner fp{fabric};
  Rng rng{seed};
  std::vector<std::string> live;
  u64 next_id = 0;
  for (int step = 0; step < steps; ++step) {
    if (rng.chance(0.6) || live.empty()) {
      PrmRequirements req;
      req.lut_ff_pairs =
          rng.chance(0.12) ? 6000 + rng.below(8000) : 150 + rng.below(2500);
      req.luts = req.lut_ff_pairs * 3 / 4;
      req.ffs = req.lut_ff_pairs / 2;
      const std::string name = "prr" + std::to_string(next_id++);
      if (fp.place(name, req)) live.push_back(name);
    } else {
      const std::size_t victim = rng.below(live.size());
      fp.remove(live[victim]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }
  }
  return fp;
}

std::vector<SlideMove> compaction_moves(Floorplanner& fp) {
  std::vector<SlideMove> moves;
  plan_compaction(fp, lx110t(), nullptr,
                  [&](const SlideMove& move) { moves.push_back(move); });
  return moves;
}

bool same_move(const SlideMove& a, const SlideMove& b) {
  return a.index == b.index && a.name == b.name &&
         a.from.first_col == b.from.first_col && a.from.width == b.from.width &&
         a.from_row == b.from_row && a.to.first_col == b.to.first_col &&
         a.to_row == b.to_row && a.frames_copied == b.frames_copied;
}

TEST(DefragDeterminism, SameSeedSameMoveSequence) {
  for (const u64 seed : {3ull, 17ull, 91ull}) {
    Floorplanner a = fragmented_floorplan(seed);
    Floorplanner b = fragmented_floorplan(seed);
    const std::vector<SlideMove> moves_a = compaction_moves(a);
    const std::vector<SlideMove> moves_b = compaction_moves(b);
    ASSERT_EQ(moves_a.size(), moves_b.size()) << "seed " << seed;
    for (std::size_t i = 0; i < moves_a.size(); ++i) {
      EXPECT_TRUE(same_move(moves_a[i], moves_b[i]))
          << "seed " << seed << " move " << i;
    }
  }
}

TEST(DefragProperty, EveryMovePreservesNonOverlap) {
  u64 moves = 0;
  for (const u64 seed : {3ull, 17ull, 91ull}) {
    Floorplanner fp = fragmented_floorplan(seed);
    opt::Layout layout{fp, lx110t()};
    ASSERT_TRUE(layout.consistent()) << "seed " << seed << " before moves";
    plan_compaction(fp, lx110t(), nullptr, [&](const SlideMove& move) {
      ++moves;
      EXPECT_TRUE(layout.consistent())
          << "seed " << seed << " after sliding " << move.name;
    });
    EXPECT_TRUE(layout.consistent()) << "seed " << seed << " after all moves";
  }
  // At least one of the traces is fragmented enough for compaction to
  // find work (otherwise the per-move invariant above checked nothing).
  EXPECT_GT(moves, 0u);
}

TEST(DefragProperty, MovesOnlySlideEarlier) {
  // The planner only ever slides left-to-right-first, bottom-up-second
  // ("earlier" is lexicographic on (first_col, row)), so compaction
  // terminates: every move strictly decreases the layout's order.
  Floorplanner fp = fragmented_floorplan(17);
  plan_compaction(fp, lx110t(), nullptr, [&](const SlideMove& move) {
    const bool earlier =
        move.to.first_col < move.from.first_col ||
        (move.to.first_col == move.from.first_col &&
         move.to_row < move.from_row);
    EXPECT_TRUE(earlier) << move.name;
  });
}

TEST(RelocationProperty, AppliedRelocationsPreserveNonOverlap) {
  const Fabric& fabric = lx110t();
  for (const u64 seed : {5ull, 23ull}) {
    Floorplanner fp = fragmented_floorplan(seed);
    opt::Layout layout{fp, fabric};
    u64 applied = 0;
    for (std::size_t index = 0; index < fp.placements().size(); ++index) {
      const auto targets = layout.relocation_targets(index, 4);
      if (targets.empty()) continue;
      const u32 cols = targets[0].window.first_col;
      ASSERT_LT(cols, fabric.num_columns());
      ASSERT_TRUE(fp.try_move_placement(index, targets[0].window,
                                        targets[0].first_row));
      ++applied;
      EXPECT_TRUE(layout.consistent())
          << "seed " << seed << " after relocating placement " << index;
    }
    EXPECT_GT(applied, 0u) << "seed " << seed;
  }
}

TEST(RelocationDeterminism, SameLayoutSameTargets) {
  Floorplanner a = fragmented_floorplan(23);
  Floorplanner b = fragmented_floorplan(23);
  opt::Layout la{a, lx110t()};
  opt::Layout lb{b, lx110t()};
  for (std::size_t index = 0; index < a.placements().size(); ++index) {
    const auto ta = la.relocation_targets(index, 8);
    const auto tb = lb.relocation_targets(index, 8);
    ASSERT_EQ(ta.size(), tb.size()) << "placement " << index;
    for (std::size_t i = 0; i < ta.size(); ++i) {
      EXPECT_EQ(ta[i].window.first_col, tb[i].window.first_col);
      EXPECT_EQ(ta[i].first_row, tb[i].first_row);
    }
  }
}

}  // namespace
}  // namespace prcost
