#include <gtest/gtest.h>

#include "netlist/dot.hpp"
#include "netlist/netlist.hpp"
#include "tests/netlist_sim.hpp"
#include "util/error.hpp"

namespace prcost {
namespace {

using testing_sim = prcost::testing::NetlistSim;

TEST(Netlist, AddNetAndCell) {
  Netlist nl{"t"};
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId ins[] = {a, b};
  const CellId lut = nl.add_cell(CellKind::kLut, "and1", ins, 1, tt::kAnd2);
  EXPECT_EQ(nl.cell(lut).inputs.size(), 2u);
  EXPECT_EQ(nl.cell(lut).outputs.size(), 1u);
  EXPECT_EQ(nl.net(a).sinks.size(), 1u);
  EXPECT_EQ(nl.net(nl.cell(lut).outputs[0]).driver, lut);
  nl.validate();
}

TEST(Netlist, AutoNamesAreUnique) {
  Netlist nl{"t"};
  const NetId a = nl.add_net();
  const NetId b = nl.add_net();
  EXPECT_NE(nl.net(a).name, nl.net(b).name);
}

TEST(Netlist, ConstNetsAreShared) {
  Netlist nl{"t"};
  EXPECT_EQ(nl.const_net(true), nl.const_net(true));
  EXPECT_EQ(nl.const_net(false), nl.const_net(false));
  EXPECT_NE(nl.const_net(true), nl.const_net(false));
  EXPECT_EQ(nl.stats().constants, 2u);
}

TEST(Netlist, LutInputArityChecked) {
  Netlist nl{"t"};
  EXPECT_THROW(nl.lut(1, {}), ContractError);
  std::vector<NetId> seven(7, nl.add_net());
  EXPECT_THROW(nl.lut(1, seven), ContractError);
}

TEST(Netlist, KillCellDetaches) {
  Netlist nl{"t"};
  const NetId a = nl.input("a");
  const NetId ins[] = {a};
  const CellId lut = nl.add_cell(CellKind::kLut, "buf", ins, 1, tt::kBuf);
  nl.kill_cell(lut);
  EXPECT_TRUE(nl.cell(lut).dead);
  EXPECT_TRUE(nl.net(a).sinks.empty());
  nl.validate();
}

TEST(Netlist, KillCellIdempotent) {
  Netlist nl{"t"};
  const NetId a = nl.input("a");
  const NetId ins[] = {a};
  const CellId lut = nl.add_cell(CellKind::kLut, "buf", ins, 1, tt::kBuf);
  nl.kill_cell(lut);
  EXPECT_NO_THROW(nl.kill_cell(lut));
}

TEST(Netlist, ReplaceNetMovesSinks) {
  Netlist nl{"t"};
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  const NetId ins[] = {a};
  const CellId lut = nl.add_cell(CellKind::kLut, "buf", ins, 1, tt::kBuf);
  nl.replace_net(a, b);
  EXPECT_EQ(nl.cell(lut).inputs[0], b);
  EXPECT_TRUE(nl.net(a).sinks.empty());
  EXPECT_EQ(nl.net(b).sinks.size(), 1u);
  nl.validate();
}

TEST(Netlist, RewireInputSingular) {
  Netlist nl{"t"};
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  const NetId q = nl.ff(a, "r");
  const CellId ff = nl.net(q).driver;
  nl.rewire_input(ff, 0, b);
  EXPECT_EQ(nl.cell(ff).inputs[0], b);
  EXPECT_TRUE(nl.net(a).sinks.empty());
  nl.validate();
  EXPECT_THROW(nl.rewire_input(ff, 5, a), ContractError);
}

TEST(Netlist, StatsCountsByKind) {
  Netlist nl{"t"};
  const NetId a = nl.input("a");
  const NetId ins[] = {a};
  nl.lut(tt::kBuf, ins);
  nl.ff(a);
  const NetlistStats stats = nl.stats();
  EXPECT_EQ(stats.inputs, 1u);
  EXPECT_EQ(stats.luts, 1u);
  EXPECT_EQ(stats.ffs, 1u);
}

TEST(Netlist, MulCreatesWideOutput) {
  Netlist nl{"t"};
  const Bus a = nl.input_bus("a", 4);
  const Bus b = nl.input_bus("b", 3);
  const Bus p = nl.mul(a, b);
  EXPECT_EQ(p.size(), 7u);
  EXPECT_EQ(nl.stats().muls, 1u);
}

TEST(Netlist, RamChecksWidth) {
  Netlist nl{"t"};
  const Bus addr = nl.input_bus("addr", 4);
  const Bus wdata = nl.input_bus("wd", 8);
  EXPECT_THROW(nl.ram(16, 9, addr, wdata, nl.const_net(false)),
               ContractError);
  const Bus rdata = nl.ram(16, 8, addr, wdata, nl.const_net(false));
  EXPECT_EQ(rdata.size(), 8u);
}

TEST(Netlist, ValidateCatchesCorruption) {
  Netlist nl{"t"};
  const NetId a = nl.input("a");
  const NetId ins[] = {a};
  const CellId lut = nl.add_cell(CellKind::kLut, "buf", ins, 1, tt::kBuf);
  // Corrupt: point the cell at another net without updating sink lists.
  nl.cell_mut(lut).inputs[0] = nl.add_net("rogue");
  EXPECT_THROW(nl.validate(), ContractError);
}

TEST(Netlist, OutputBusCreatesPorts) {
  Netlist nl{"t"};
  const Bus a = nl.input_bus("a", 3);
  nl.output_bus("y", a);
  EXPECT_EQ(nl.stats().outputs, 3u);
}

// Functional checks through the interpreter.

TEST(NetlistSim, MulComputesProduct) {
  Netlist nl{"t"};
  const Bus a = nl.input_bus("a", 6);
  const Bus b = nl.input_bus("b", 6);
  const Bus p = nl.mul(a, b);
  testing_sim sim{nl};
  sim.set_bus(a, 23);
  sim.set_bus(b, 41);
  EXPECT_EQ(sim.eval_bus(p), 23u * 41u);
}

TEST(NetlistSim, FfStepCaptures) {
  Netlist nl{"t"};
  const NetId d = nl.input("d");
  const NetId q = nl.ff(d, "r");
  const CellId ff = nl.net(q).driver;
  testing_sim sim{nl};
  sim.set_input(d, true);
  EXPECT_FALSE(sim.ff_state(ff));
  sim.step();
  EXPECT_TRUE(sim.ff_state(ff));
  EXPECT_TRUE(sim.eval(q));
}

TEST(Dot, EmitsGraph) {
  Netlist nl{"t"};
  const NetId a = nl.input("a");
  const NetId ins[] = {a};
  nl.lut(tt::kNot, ins, "inv");
  const std::string dot = to_dot(nl);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("inv"), std::string::npos);
}

TEST(Dot, TruncatesLargeGraphs) {
  Netlist nl{"t"};
  for (int i = 0; i < 20; ++i) nl.input("in" + std::to_string(i));
  const std::string dot = to_dot(nl, 5);
  EXPECT_NE(dot.find("omitted"), std::string::npos);
}

}  // namespace
}  // namespace prcost
