#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/ints.hpp"
#include "util/lines.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace prcost {
namespace {

// ---------------------------------------------------------------- ints ---

TEST(CeilDiv, ExactDivision) {
  EXPECT_EQ(ceil_div(12, 4), 3u);
  EXPECT_EQ(ceil_div(0, 7), 0u);
}

TEST(CeilDiv, RoundsUp) {
  EXPECT_EQ(ceil_div(13, 4), 4u);
  EXPECT_EQ(ceil_div(1, 8), 1u);
  EXPECT_EQ(ceil_div(1300, 8), 163u);  // the paper's FIR CLB_req
}

TEST(CeilDiv, ZeroDenominatorThrows) {
  EXPECT_THROW(ceil_div(1, 0), std::invalid_argument);
}

TEST(CheckedMul, Normal) { EXPECT_EQ(checked_mul(6, 7), 42u); }

TEST(CheckedMul, OverflowThrows) {
  EXPECT_THROW(checked_mul(~0ull, 2), std::overflow_error);
}

TEST(CheckedAdd, OverflowThrows) {
  EXPECT_THROW(checked_add(~0ull, 1), std::overflow_error);
}

TEST(Narrow, FitsRoundTrips) {
  EXPECT_EQ(narrow<u32>(u64{12345}), 12345u);
}

TEST(Narrow, TruncationThrows) {
  EXPECT_THROW(narrow<u32>(u64{1} << 40), std::out_of_range);
}

TEST(Narrow, NegativeToUnsignedThrows) {
  EXPECT_THROW(narrow<u32>(-1), std::out_of_range);
}

TEST(Percent, Basic) {
  EXPECT_DOUBLE_EQ(percent(1, 2), 50.0);
  EXPECT_DOUBLE_EQ(percent(163, 200), 81.5);
}

TEST(Percent, ZeroAvailableIsZero) { EXPECT_DOUBLE_EQ(percent(5, 0), 0.0); }

// -------------------------------------------------------------- strings ---

TEST(Split, KeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Split, SingleField) {
  const auto parts = split("alone", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "alone");
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StartsWith, Matches) {
  EXPECT_TRUE(starts_with("Number of Slice LUTs", "Number"));
  EXPECT_FALSE(starts_with("abc", "abcd"));
}

TEST(ToLower, Converts) { EXPECT_EQ(to_lower("Virtex-5"), "virtex-5"); }

TEST(FormatFixed, Digits) {
  EXPECT_EQ(format_fixed(81.526, 1), "81.5");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

TEST(FormatBytes, Units) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(83064), "81.1 KiB");
}

TEST(ParseU64, Valid) {
  EXPECT_EQ(parse_u64("1300"), 1300ull);
  EXPECT_EQ(parse_u64("  42 "), 42ull);
}

TEST(ParseU64, JunkThrows) {
  EXPECT_THROW(parse_u64("12x"), ParseError);
  EXPECT_THROW(parse_u64(""), ParseError);
  EXPECT_THROW(parse_u64("-3"), ParseError);
}

TEST(ParseU64, ErrorsNameTheOffendingToken) {
  // Overflow is distinguished from junk, and both carry the input token so
  // a batch/report error points at the actual field content.
  try {
    parse_u64("99999999999999999999999");
    FAIL() << "overflow accepted";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string{e.what()}.find("out of range"), std::string::npos);
    EXPECT_NE(std::string{e.what()}.find("99999999999999999999999"),
              std::string::npos);
  }
  try {
    parse_u64("12x");
    FAIL() << "junk accepted";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string{e.what()}.find("'12x'"), std::string::npos);
  }
}

TEST(ParseDouble, Valid) {
  EXPECT_DOUBLE_EQ(parse_double("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(parse_double(" -2e-3 "), -2e-3);
  EXPECT_DOUBLE_EQ(parse_double("0"), 0.0);
}

TEST(ParseDouble, RejectsNonFiniteAndJunk) {
  // from_chars accepts "inf"/"nan" tokens; the models must never see one.
  EXPECT_THROW(parse_double("inf"), ParseError);
  EXPECT_THROW(parse_double("-inf"), ParseError);
  EXPECT_THROW(parse_double("nan"), ParseError);
  EXPECT_THROW(parse_double("1e999"), ParseError);
  EXPECT_THROW(parse_double(""), ParseError);
  EXPECT_THROW(parse_double("0.5.1"), ParseError);
  try {
    parse_double("1e999");
    FAIL() << "overflow accepted";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string{e.what()}.find("'1e999'"), std::string::npos);
  }
}

TEST(FormatMinutesSeconds, PaperNotation) {
  EXPECT_EQ(format_minutes_seconds(265.0), "4m25.000s");
  EXPECT_EQ(format_minutes_seconds(0.5), "0.500000s");
}

// ---------------------------------------------------------------- table ---

TEST(TextTable, AsciiContainsCells) {
  TextTable table{{"Parameter", "FIR"}};
  table.add_row({"LUT_FF_req", "1300"});
  const std::string ascii = table.to_ascii();
  EXPECT_NE(ascii.find("LUT_FF_req"), std::string::npos);
  EXPECT_NE(ascii.find("1300"), std::string::npos);
  EXPECT_NE(ascii.find("+"), std::string::npos);
}

TEST(TextTable, MarkdownHasHeaderRule) {
  TextTable table{{"a", "b"}};
  table.add_row({"1", "2"});
  const std::string md = table.to_markdown();
  EXPECT_NE(md.find("|---"), std::string::npos);
}

TEST(TextTable, RaggedRowsTolerated) {
  TextTable table{{"a", "b", "c"}};
  table.add_row({"only"});
  EXPECT_NO_THROW(table.to_ascii());
  EXPECT_EQ(table.row_count(), 1u);
}

// ------------------------------------------------------------------ csv ---

TEST(Csv, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_quote("plain"), "plain");
  EXPECT_EQ(csv_quote("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_quote("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesRows) {
  std::ostringstream os;
  CsvWriter writer{os};
  writer.write_row({"x", "1,2"});
  EXPECT_EQ(os.str(), "x,\"1,2\"\n");
}

// ------------------------------------------------------------------ rng ---

TEST(Rng, DeterministicForSeed) {
  Rng a{7}, b{7};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowInRange) {
  Rng rng{3};
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowZeroBound) {
  Rng rng{3};
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, BetweenInclusive) {
  Rng rng{5};
  std::set<u64> seen;
  for (int i = 0; i < 500; ++i) {
    const u64 v = rng.between(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // all three values appear
}

TEST(Rng, Uniform01HalfOpen) {
  Rng rng{11};
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ExponentialMeanApproximate) {
  Rng rng{13};
  double sum = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kSamples, 2.0, 0.1);
}

// ------------------------------------------------------------- parallel ---

TEST(ParallelFor, CoversEveryIndexOnce) {
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  parallel_for(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, SingleWorkerSequential) {
  std::vector<int> order;
  parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
               1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, PropagatesException) {
  EXPECT_THROW(
      parallel_for(100,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error{"boom"};
                   }),
      std::runtime_error);
}

// --------------------------------------------------------------- lines ---
// Incremental newline framing shared by `prcost serve` sockets and the
// streaming batch reader; the contract is std::getline equivalence.

TEST(LineSplitter, FramesLinesAcrossArbitraryChunkBoundaries) {
  LineSplitter splitter;
  splitter.append("ab");
  EXPECT_FALSE(splitter.next_line().has_value());
  splitter.append("c\nde\nf");
  EXPECT_EQ(splitter.next_line(), "abc");
  EXPECT_EQ(splitter.next_line(), "de");
  EXPECT_FALSE(splitter.next_line().has_value());  // "f" is unterminated
  splitter.append("\n");
  EXPECT_EQ(splitter.next_line(), "f");
}

TEST(LineSplitter, TakeTailFlushesUnterminatedFinalLine) {
  LineSplitter splitter;
  splitter.append("first\nlast-no-newline");
  EXPECT_EQ(splitter.next_line(), "first");
  EXPECT_FALSE(splitter.next_line().has_value());
  EXPECT_EQ(splitter.take_tail(), "last-no-newline");
  EXPECT_EQ(splitter.take_tail(), "");  // drained
  EXPECT_EQ(splitter.buffered(), 0u);
}

TEST(LineSplitter, EmptyLinesAndBufferedCount) {
  LineSplitter splitter;
  splitter.append("\n\nx\n");
  EXPECT_EQ(splitter.next_line(), "");
  EXPECT_EQ(splitter.next_line(), "");
  EXPECT_EQ(splitter.next_line(), "x");
  EXPECT_FALSE(splitter.next_line().has_value());
  splitter.append("partial");
  EXPECT_EQ(splitter.buffered(), 7u);
}

TEST(LineSplitter, ReclaimsConsumedPrefixOnLargeStreams) {
  // Push many lines through one splitter; buffered() must track only the
  // unconsumed remainder, not grow with the total stream.
  LineSplitter splitter;
  for (int round = 0; round < 1000; ++round) {
    splitter.append("line-" + std::to_string(round) + "\n");
    EXPECT_EQ(splitter.next_line(), "line-" + std::to_string(round));
  }
  EXPECT_EQ(splitter.buffered(), 0u);
}

}  // namespace
}  // namespace prcost
