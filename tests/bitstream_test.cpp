#include <gtest/gtest.h>

#include "bitstream/crc.hpp"
#include "bitstream/frame_address.hpp"
#include "bitstream/generator.hpp"
#include "bitstream/parser.hpp"
#include "cost/prr_search.hpp"
#include "device/device_db.hpp"
#include "paperdata/paper_dataset.hpp"
#include "util/error.hpp"

namespace prcost {
namespace {

// ---------------------------------------------------------------- words ---

TEST(Packets, Type1RoundTrip) {
  const u32 word = type1(PacketOp::kWrite, ConfigReg::kFar, 1);
  EXPECT_EQ(packet_type(word), 1u);
  EXPECT_EQ(packet_op(word), PacketOp::kWrite);
  EXPECT_EQ(packet_reg(word), ConfigReg::kFar);
  EXPECT_EQ(type1_count(word), 1u);
}

TEST(Packets, Type2CarriesBigCounts) {
  const u32 word = type2(PacketOp::kWrite, 20730);
  EXPECT_EQ(packet_type(word), 2u);
  EXPECT_EQ(type2_count(word), 20730u);
}

TEST(Packets, Names) {
  EXPECT_EQ(config_reg_name(ConfigReg::kFdri), "FDRI");
  EXPECT_EQ(config_cmd_name(ConfigCmd::kDesync), "DESYNC");
}

// ------------------------------------------------------------------- far ---

TEST(FrameAddress, RoundTrips) {
  const FrameAddress far{FrameBlock::kBramContent, 7, 33, 5};
  EXPECT_EQ(decode_far(encode_far(far)), far);
}

TEST(FrameAddress, FieldRangeChecked) {
  FrameAddress far;
  far.row = 32;  // 5-bit field
  EXPECT_THROW(encode_far(far), ContractError);
  far = FrameAddress{};
  far.major = 256;
  EXPECT_THROW(encode_far(far), ContractError);
}

TEST(FrameAddress, ToString) {
  const FrameAddress far{FrameBlock::kInterconnect, 2, 25, 0};
  EXPECT_EQ(far_to_string(far), "CFG row 2 major 25 minor 0");
}

// ------------------------------------------------------------------- crc ---

TEST(Crc, DeterministicAndOrderSensitive) {
  ConfigCrc a, b;
  a.update(ConfigReg::kFdri, 0x12345678);
  a.update(ConfigReg::kFdri, 0x9ABCDEF0);
  b.update(ConfigReg::kFdri, 0x9ABCDEF0);
  b.update(ConfigReg::kFdri, 0x12345678);
  EXPECT_NE(a.value(), b.value());
  ConfigCrc c;
  c.update(ConfigReg::kFdri, 0x12345678);
  c.update(ConfigReg::kFdri, 0x9ABCDEF0);
  EXPECT_EQ(a.value(), c.value());
}

TEST(Crc, RegisterAddressMatters) {
  ConfigCrc a, b;
  a.update(ConfigReg::kFdri, 0x1);
  b.update(ConfigReg::kFar, 0x1);
  EXPECT_NE(a.value(), b.value());
}

TEST(Crc, ResetClears) {
  ConfigCrc crc;
  crc.update(ConfigReg::kFdri, 42);
  crc.reset();
  EXPECT_EQ(crc.value(), 0u);
}

// ------------------------------------------------------ header / trailer ---

TEST(Generator, HeaderLengthEqualsIwForAllFamilies) {
  // The paper's IW constant must equal what the generator actually emits;
  // Table IV and the generator share one source of truth.
  for (const Family family : kAllFamilies) {
    EXPECT_EQ(header_words(family, default_idcode(family)).size(),
              traits(family).iw)
        << family_name(family);
  }
}

TEST(Generator, TrailerLengthEqualsFwForAllFamilies) {
  for (const Family family : kAllFamilies) {
    EXPECT_EQ(trailer_words(family, 0xDEADBEEF).size(), traits(family).fw)
        << family_name(family);
  }
}

TEST(Generator, HeaderContainsSync) {
  const auto words = header_words(Family::kVirtex5, 0x02AD6093);
  EXPECT_NE(std::find(words.begin(), words.end(), cfg::kSync), words.end());
}

// --------------------------------------- model == generator (Table VII) ---

class ModelVsGenerator
    : public ::testing::TestWithParam<paperdata::TableVRecord> {};

TEST_P(ModelVsGenerator, ByteExactAgreement) {
  const auto& rec = GetParam();
  const Fabric& fabric = DeviceDb::instance().get(rec.device).fabric;
  const auto plan = find_prr(rec.req, fabric);
  ASSERT_TRUE(plan.has_value());
  const auto words = generate_bitstream(*plan, rec.family);
  const auto bytes = to_bytes(words, rec.family);
  EXPECT_EQ(bytes.size(), plan->bitstream.total_bytes);
  EXPECT_EQ(words.size(), plan->bitstream.total_words);
}

TEST_P(ModelVsGenerator, ParserRecoversStructure) {
  const auto& rec = GetParam();
  const Fabric& fabric = DeviceDb::instance().get(rec.device).fabric;
  const auto plan = find_prr(rec.req, fabric);
  ASSERT_TRUE(plan.has_value());
  const auto words = generate_bitstream(*plan, rec.family);
  const BitstreamLayout layout = parse_bitstream(words, rec.family);
  const FamilyTraits& t = traits(rec.family);
  EXPECT_EQ(layout.initial_words, t.iw);
  EXPECT_EQ(layout.final_words, t.fw);
  EXPECT_EQ(layout.config_burst_count(), plan->organization.h);
  const u64 bram_bursts =
      plan->organization.columns.bram_cols > 0 ? plan->organization.h : 0;
  EXPECT_EQ(layout.bram_burst_count(), bram_bursts);
  EXPECT_TRUE(layout.crc_ok);
  EXPECT_TRUE(layout.desync_seen);
  EXPECT_EQ(layout.idcode, default_idcode(rec.family));
  // Frame counts per burst match Eqs. (19)-(23).
  for (const FdriBurst& burst : layout.bursts) {
    if (burst.far.block == FrameBlock::kInterconnect) {
      EXPECT_EQ(burst.frames, plan->bitstream.config_frames_per_row);
    } else {
      EXPECT_EQ(burst.frames,
                u64{plan->organization.columns.bram_cols} * t.df_bram + 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Paper, ModelVsGenerator,
    ::testing::ValuesIn(paperdata::table5().begin(),
                        paperdata::table5().end()),
    [](const ::testing::TestParamInfo<paperdata::TableVRecord>& tp_info) {
      std::string name{tp_info.param.prm};
      name += "_";
      name += tp_info.param.device;
      return name;
    });

// Property sweep: model == generator for synthetic organizations across
// every family and a grid of shapes - not just the paper's six points.
struct SweepPoint {
  Family family;
  u32 h;
  u32 clb;
  u32 dsp;
  u32 bram;
};

class SizeSweep : public ::testing::TestWithParam<SweepPoint> {};

TEST_P(SizeSweep, ModelEqualsGenerator) {
  const auto& p = GetParam();
  PrrPlan plan;
  plan.organization.h = p.h;
  plan.organization.columns = ColumnDemand{p.clb, p.dsp, p.bram};
  plan.window = ColumnWindow{1, plan.organization.width()};
  plan.bitstream =
      estimate_bitstream(plan.organization, traits(p.family));
  const auto words = generate_bitstream(plan, p.family);
  EXPECT_EQ(words.size(), plan.bitstream.total_words);
  const auto layout = parse_bitstream(words, p.family);
  EXPECT_TRUE(layout.crc_ok);
  EXPECT_EQ(layout.total_words, plan.bitstream.total_words);
}

std::vector<SweepPoint> sweep_points() {
  std::vector<SweepPoint> points;
  for (const Family family : kAllFamilies) {
    for (const u32 h : {1u, 2u, 3u, 7u}) {
      for (const u32 clb : {1u, 5u, 17u}) {
        for (const u32 dsp : {0u, 1u, 2u}) {
          for (const u32 bram : {0u, 1u, 3u}) {
            points.push_back(SweepPoint{family, h, clb, dsp, bram});
          }
        }
      }
    }
  }
  return points;
}

INSTANTIATE_TEST_SUITE_P(Grid, SizeSweep, ::testing::ValuesIn(sweep_points()));

// ---------------------------------------------------------------- parser ---

TEST(Parser, MissingSyncThrows) {
  const std::vector<u32> junk(16, cfg::kDummy);
  EXPECT_THROW(parse_bitstream(junk, Family::kVirtex5), ParseError);
}

TEST(Parser, TruncatedStreamThrows) {
  PrrPlan plan;
  plan.organization.h = 1;
  plan.organization.columns = ColumnDemand{2, 0, 0};
  plan.bitstream = estimate_bitstream(plan.organization,
                                      traits(Family::kVirtex5));
  auto words = generate_bitstream(plan, Family::kVirtex5);
  words.resize(words.size() / 2);
  EXPECT_THROW(parse_bitstream(words, Family::kVirtex5), ParseError);
}

TEST(Parser, CorruptedPayloadBreaksCrc) {
  PrrPlan plan;
  plan.organization.h = 1;
  plan.organization.columns = ColumnDemand{2, 0, 0};
  plan.bitstream = estimate_bitstream(plan.organization,
                                      traits(Family::kVirtex5));
  auto words = generate_bitstream(plan, Family::kVirtex5);
  // Flip one bit in the middle of the frame data.
  words[words.size() / 2] ^= 0x00010000;
  const auto layout = parse_bitstream(words, Family::kVirtex5);
  EXPECT_FALSE(layout.crc_ok);
}

TEST(Parser, DisassemblyMentionsStructure) {
  PrrPlan plan;
  plan.organization.h = 2;
  plan.organization.columns = ColumnDemand{1, 0, 1};
  plan.bitstream = estimate_bitstream(plan.organization,
                                      traits(Family::kVirtex5));
  const auto words = generate_bitstream(plan, Family::kVirtex5);
  const std::string text = disassemble(words, Family::kVirtex5);
  EXPECT_NE(text.find("BRAM"), std::string::npos);
  EXPECT_NE(text.find("crc           : ok"), std::string::npos);
}

TEST(Generator, PayloadSeedChangesDataNotSize) {
  PrrPlan plan;
  plan.organization.h = 1;
  plan.organization.columns = ColumnDemand{3, 0, 0};
  plan.bitstream = estimate_bitstream(plan.organization,
                                      traits(Family::kVirtex5));
  GeneratorOptions a, b;
  a.payload_seed = 1;
  b.payload_seed = 2;
  const auto wa = generate_bitstream(plan, Family::kVirtex5, a);
  const auto wb = generate_bitstream(plan, Family::kVirtex5, b);
  EXPECT_EQ(wa.size(), wb.size());
  EXPECT_NE(wa, wb);
  // Both parse and CRC-check: the CRC adapts to the payload.
  EXPECT_TRUE(parse_bitstream(wa, Family::kVirtex5).crc_ok);
  EXPECT_TRUE(parse_bitstream(wb, Family::kVirtex5).crc_ok);
}

TEST(Generator, ToBytesBigEndian) {
  const std::vector<u32> words{0xAA995566};
  const auto bytes = to_bytes(words, Family::kVirtex5);
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(bytes[0], 0xAA);
  EXPECT_EQ(bytes[3], 0x66);
}

TEST(Generator, EmptyPlanThrows) {
  PrrPlan plan;  // h == 0
  EXPECT_THROW(generate_bitstream(plan, Family::kVirtex5), ContractError);
}

}  // namespace
}  // namespace prcost
