#include <gtest/gtest.h>

#include "bitstream/generator.hpp"
#include "bitstream/parser.hpp"
#include "device/device_db.hpp"
#include "reconfig/baselines.hpp"
#include "reconfig/controllers.hpp"
#include "reconfig/full_bitstream.hpp"
#include "reconfig/icap.hpp"
#include "reconfig/media.hpp"
#include "util/error.hpp"

namespace prcost {
namespace {

constexpr u64 kFirBytes = 83064;  // FIR/LX110T partial bitstream

// ----------------------------------------------------------------- media ---

TEST(Media, BandwidthOrdering) {
  // The Papadimitriou survey's central observation: CF << flash << DDR <=
  // BRAM.
  EXPECT_LT(media_model(StorageMedia::kCompactFlash).bandwidth_bytes_per_s,
            media_model(StorageMedia::kFlash).bandwidth_bytes_per_s);
  EXPECT_LT(media_model(StorageMedia::kFlash).bandwidth_bytes_per_s,
            media_model(StorageMedia::kDdrSdram).bandwidth_bytes_per_s);
  EXPECT_LE(media_model(StorageMedia::kDdrSdram).bandwidth_bytes_per_s,
            media_model(StorageMedia::kBram).bandwidth_bytes_per_s);
}

TEST(Media, FetchMonotonicInSize) {
  for (const StorageMedia media : kAllMedia) {
    EXPECT_LT(fetch_seconds(media, 1000), fetch_seconds(media, 100000));
  }
}

TEST(Media, CompactFlashIsMilliseconds) {
  // ~83KB over ~500KB/s => > 100 ms: the reason CF-based reconfiguration
  // dominates measured times in the survey.
  EXPECT_GT(fetch_seconds(StorageMedia::kCompactFlash, kFirBytes), 0.1);
  EXPECT_LT(fetch_seconds(StorageMedia::kDdrSdram, kFirBytes), 0.001);
}

// ------------------------------------------------------------------ icap ---

TEST(Icap, PeakThroughput) {
  const IcapModel icap = default_icap(Family::kVirtex5);
  EXPECT_DOUBLE_EQ(icap.peak_bytes_per_s(), 400.0e6);
}

TEST(Icap, WriteTimeLinear) {
  const IcapModel icap = default_icap(Family::kVirtex5);
  EXPECT_NEAR(icap_write_seconds(icap, kFirBytes), 83064.0 / 400e6, 1e-9);
}

TEST(Icap, BusyFactorStretches) {
  const IcapModel icap = default_icap(Family::kVirtex5);
  const double idle = icap_write_seconds(icap, kFirBytes, 0.0);
  const double busy = icap_write_seconds(icap, kFirBytes, 0.5);
  EXPECT_NEAR(busy, 2.0 * idle, 1e-12);
  EXPECT_THROW(icap_write_seconds(icap, 100, 1.0), ContractError);
  EXPECT_THROW(icap_write_seconds(icap, 100, -0.1), ContractError);
}

// ----------------------------------------------------------- controllers ---

TEST(Controllers, DmaBeatsCpuOnFastMedia) {
  const IcapModel icap = default_icap(Family::kVirtex5);
  const CpuIcapController cpu{icap};
  const DmaIcapController dma{icap};
  const double cpu_t =
      cpu.estimate(kFirBytes, StorageMedia::kDdrSdram).total_s;
  const double dma_t =
      dma.estimate(kFirBytes, StorageMedia::kDdrSdram).total_s;
  EXPECT_LT(dma_t, cpu_t);
}

TEST(Controllers, FarmBeatsDmaViaCompressionAndOverclock) {
  const IcapModel icap = default_icap(Family::kVirtex5);
  const DmaIcapController dma{icap};
  const FarmController farm{icap};
  EXPECT_LT(farm.estimate(kFirBytes, StorageMedia::kDdrSdram).total_s,
            dma.estimate(kFirBytes, StorageMedia::kDdrSdram).total_s);
}

TEST(Controllers, SlowMediaDominatesEverything) {
  // On CompactFlash the fetch phase dwarfs controller differences.
  const IcapModel icap = default_icap(Family::kVirtex5);
  const CpuIcapController cpu{icap};
  const DmaIcapController dma{icap};
  const double cpu_t =
      cpu.estimate(kFirBytes, StorageMedia::kCompactFlash).total_s;
  const double dma_t =
      dma.estimate(kFirBytes, StorageMedia::kCompactFlash).total_s;
  EXPECT_NEAR(cpu_t / dma_t, 1.0, 0.05);
}

TEST(Controllers, BusyFactorWrapper) {
  const IcapModel icap = default_icap(Family::kVirtex5);
  auto dma = std::make_shared<DmaIcapController>(icap);
  const BusyFactorController busy{dma, 0.5};
  EXPECT_EQ(busy.name(), "DMA-ICAP+busy");
  const auto plain = dma->estimate(kFirBytes, StorageMedia::kBram);
  const auto contended = busy.estimate(kFirBytes, StorageMedia::kBram);
  EXPECT_GT(contended.total_s, plain.total_s);
  EXPECT_NEAR(contended.write_s, 2.0 * plain.write_s, 1e-12);
  EXPECT_THROW(BusyFactorController(nullptr, 0.1), ContractError);
  EXPECT_THROW(BusyFactorController(dma, 1.0), ContractError);
}

TEST(Controllers, StandardSetHasThree) {
  const auto controllers = standard_controllers(Family::kVirtex5);
  ASSERT_EQ(controllers.size(), 3u);
  EXPECT_EQ(controllers[0]->name(), "CPU-ICAP");
  EXPECT_EQ(controllers[1]->name(), "DMA-ICAP");
  EXPECT_EQ(controllers[2]->name(), "FaRM");
}

TEST(Controllers, FarmParameterValidation) {
  const IcapModel icap = default_icap(Family::kVirtex5);
  EXPECT_THROW(FarmController(icap, 0.0), ContractError);
  EXPECT_THROW(FarmController(icap, 1.2), ContractError);
  EXPECT_THROW(FarmController(icap, 0.5, 0.9), ContractError);
}

// -------------------------------------------------------------- baselines ---

TEST(Baselines, PapadimitriouErrorBand) {
  const auto e = papadimitriou_model(kFirBytes, StorageMedia::kDdrSdram);
  EXPECT_NEAR(e.low_s, e.nominal_s * 0.7, 1e-12);
  EXPECT_NEAR(e.high_s, e.nominal_s * 1.6, 1e-12);
  EXPECT_GT(e.nominal_s, 0.0);
}

TEST(Baselines, ClausPreconditionDependsOnMedia) {
  // The Claus model "is only valid if the ICAP is the limiting factor".
  const auto fast = claus_model(kFirBytes, Family::kVirtex5, 0.0,
                                StorageMedia::kBram);
  EXPECT_TRUE(fast.icap_is_bottleneck);
  const auto slow = claus_model(kFirBytes, Family::kVirtex5, 0.0,
                                StorageMedia::kCompactFlash);
  EXPECT_FALSE(slow.icap_is_bottleneck);
}

TEST(Baselines, ClausBusyFactorScales) {
  const auto idle =
      claus_model(kFirBytes, Family::kVirtex5, 0.0, StorageMedia::kBram);
  const auto busy =
      claus_model(kFirBytes, Family::kVirtex5, 0.75, StorageMedia::kBram);
  EXPECT_NEAR(busy.seconds, 4.0 * idle.seconds, 1e-12);
}

TEST(Baselines, DuhemFasterThanPlainIcap) {
  const IcapModel icap = default_icap(Family::kVirtex5);
  EXPECT_LT(duhem_model(kFirBytes, Family::kVirtex5),
            icap_write_seconds(icap, kFirBytes));
  EXPECT_THROW(duhem_model(100, Family::kVirtex5, 0.0), ContractError);
}

// ---------------------------------------------------------- full bitstream ---

TEST(FullBitstream, DwarfsEveryPartial) {
  for (const Device& dev : DeviceDb::instance().all()) {
    const u64 full = full_bitstream_bytes(dev.fabric);
    EXPECT_GT(full, 10u * kFirBytes) << dev.name;
  }
}

TEST(FullBitstream, ModelMatchesGeneratedArtifactForEveryDevice) {
  // Same model-vs-artifact loop as Eq. (18): the full-device bitstream
  // model must match a generated full bitstream byte-for-byte.
  for (const Device& dev : DeviceDb::instance().all()) {
    const auto words = generate_full_bitstream(dev.fabric);
    const auto bytes = to_bytes(words, dev.fabric.family());
    EXPECT_EQ(bytes.size(), full_bitstream_bytes(dev.fabric)) << dev.name;
    // The artifact is well-formed: parses, CRC checks, desyncs.
    const auto layout = parse_bitstream(words, dev.fabric.family());
    EXPECT_TRUE(layout.crc_ok) << dev.name;
    EXPECT_TRUE(layout.desync_seen) << dev.name;
    EXPECT_EQ(layout.config_burst_count(), dev.fabric.rows()) << dev.name;
  }
}

TEST(FullBitstream, Lx110tMagnitude) {
  // The real XC5VLX110T full bitstream is ~3.9 MB; the model must land in
  // the same magnitude.
  const u64 full = full_bitstream_bytes(
      DeviceDb::instance().get("xc5vlx110t").fabric);
  EXPECT_GT(full, 2u * 1024 * 1024);
  EXPECT_LT(full, 8u * 1024 * 1024);
}

}  // namespace
}  // namespace prcost
