// Bitstream cache contract: a hit is byte-identical to a fresh
// generation, counters track hits/misses/evictions, the capacity valve
// bounds residency, the enabled switch bypasses storage entirely, and
// concurrent same-key lookups converge on one resident entry.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bitstream/bitstream_cache.hpp"
#include "bitstream/generator.hpp"
#include "cost/prr_search.hpp"
#include "device/device_db.hpp"
#include "util/parallel.hpp"

namespace prcost {
namespace {

PrrPlan plan_on(const Device& device) {
  // BRAM-only demand: feasible on every catalog device (several column
  // patterns cannot place DSP and BRAM columns in one window) and forces
  // the generator's BRAM-content bursts into the cached stream.
  PrmRequirements req;
  req.lut_ff_pairs = 600;
  req.luts = 400;
  req.ffs = 300;
  req.dsps = 0;
  req.brams = 2;
  const auto plan = find_prr(req, device.fabric);
  EXPECT_TRUE(plan.has_value()) << device.name;
  return *plan;
}

/// Every test starts and ends with the default cache configuration so the
/// process-wide singleton cannot leak state between tests (or into other
/// suites when binaries share a process under gtest_discover_tests).
class BitstreamCacheTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }

  static void reset() {
    set_bitstream_cache_enabled(true);
    set_bitstream_cache_capacity(128);
    bitstream_cache_clear();
  }
};

TEST_F(BitstreamCacheTest, CachedMatchesUncachedOnEveryCatalogDevice) {
  for (const Device& device : DeviceDb::instance().all()) {
    const PrrPlan plan = plan_on(device);
    const Family family = device.fabric.family();
    const std::vector<u32> fresh = generate_bitstream(plan, family);
    const auto cached = generate_bitstream_cached(plan, family);
    EXPECT_EQ(*cached, fresh) << device.name;
    // Second lookup returns the same resident vector, still identical.
    const auto again = generate_bitstream_cached(plan, family);
    EXPECT_EQ(again.get(), cached.get()) << device.name;
    EXPECT_EQ(*again, fresh) << device.name;
  }
}

TEST_F(BitstreamCacheTest, CountsOneMissThenHits) {
  const Device& device = DeviceDb::instance().get("xc5vlx110t");
  const PrrPlan plan = plan_on(device);
  const BitstreamCacheStats before = bitstream_cache_stats();
  const auto first = generate_bitstream_cached(plan, device.fabric.family());
  const auto second = generate_bitstream_cached(plan, device.fabric.family());
  const auto third = generate_bitstream_cached(plan, device.fabric.family());
  const BitstreamCacheStats after = bitstream_cache_stats();
  EXPECT_EQ(after.misses - before.misses, 1u);
  EXPECT_EQ(after.hits - before.hits, 2u);
  EXPECT_EQ(after.entries, 1u);
  EXPECT_EQ(after.resident_words, first->size());
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(first.get(), third.get());
}

TEST_F(BitstreamCacheTest, DistinctOptionsAreDistinctEntries) {
  const Device& device = DeviceDb::instance().get("xc5vlx110t");
  const PrrPlan plan = plan_on(device);
  GeneratorOptions a;
  a.payload_seed = 1;
  GeneratorOptions b;
  b.payload_seed = 2;
  const Family family = device.fabric.family();
  const auto words_a = generate_bitstream_cached(plan, family, a);
  const auto words_b = generate_bitstream_cached(plan, family, b);
  EXPECT_NE(words_a.get(), words_b.get());
  EXPECT_NE(*words_a, *words_b);  // payload differs, framing does not
  EXPECT_EQ(words_a->size(), words_b->size());
  EXPECT_EQ(bitstream_cache_stats().entries, 2u);
}

TEST_F(BitstreamCacheTest, EvictsPastCapacityAndStaysCorrect) {
  const Device& device = DeviceDb::instance().get("xc5vlx110t");
  const PrrPlan plan = plan_on(device);
  const Family family = device.fabric.family();
  set_bitstream_cache_capacity(8);  // 1 entry per shard
  const BitstreamCacheStats before = bitstream_cache_stats();
  for (u64 seed = 0; seed < 40; ++seed) {
    GeneratorOptions options;
    options.payload_seed = seed;
    const auto cached = generate_bitstream_cached(plan, family, options);
    // Even while evicting, every result matches a fresh generation.
    if (seed % 13 == 0) {
      EXPECT_EQ(*cached, generate_bitstream(plan, family, options));
    }
  }
  const BitstreamCacheStats after = bitstream_cache_stats();
  EXPECT_GT(after.evictions, before.evictions);
  EXPECT_LE(after.entries, 8u);
}

TEST_F(BitstreamCacheTest, DisabledCacheBypassesStorage) {
  const Device& device = DeviceDb::instance().get("xc6vlx240t");
  const PrrPlan plan = plan_on(device);
  const Family family = device.fabric.family();
  set_bitstream_cache_enabled(false);
  EXPECT_FALSE(bitstream_cache_enabled());
  const BitstreamCacheStats before = bitstream_cache_stats();
  const auto first = generate_bitstream_cached(plan, family);
  const auto second = generate_bitstream_cached(plan, family);
  const BitstreamCacheStats after = bitstream_cache_stats();
  // No lookups, no residency: each call is a plain compute.
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.entries, 0u);
  EXPECT_NE(first.get(), second.get());
  EXPECT_EQ(*first, *second);
  EXPECT_EQ(*first, generate_bitstream(plan, family));
}

TEST_F(BitstreamCacheTest, ConcurrentSameKeyLookupsConvergeOnOneEntry) {
  const Device& device = DeviceDb::instance().get("xc7k325t");
  const PrrPlan plan = plan_on(device);
  const Family family = device.fabric.family();
  const std::vector<u32> fresh = generate_bitstream(plan, family);
  constexpr std::size_t kCalls = 64;
  std::vector<std::shared_ptr<const std::vector<u32>>> results(kCalls);
  parallel_for(kCalls, [&](std::size_t i) {
    results[i] = generate_bitstream_cached(plan, family);
  });
  for (const auto& words : results) {
    ASSERT_TRUE(words);
    EXPECT_EQ(*words, fresh);
  }
  // First writer wins: exactly one resident entry, and late callers share
  // it (pointer equality with whatever ended up resident).
  EXPECT_EQ(bitstream_cache_stats().entries, 1u);
  const auto resident = generate_bitstream_cached(plan, family);
  EXPECT_EQ(*resident, fresh);
}

}  // namespace
}  // namespace prcost
