// Functional verification of the LogicBuilder word-level constructions via
// the test interpreter: the builders must compute what they claim, not
// just instantiate the right number of cells.
#include <gtest/gtest.h>

#include "netlist/logic.hpp"
#include "tests/netlist_sim.hpp"

namespace prcost {
namespace {

using prcost::testing::NetlistSim;

class LogicFixture : public ::testing::Test {
 protected:
  Netlist nl{"logic"};
  LogicBuilder lb{nl};
};

TEST_F(LogicFixture, Gates) {
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  const NetId and_o = lb.land(a, b);
  const NetId or_o = lb.lor(a, b);
  const NetId xor_o = lb.lxor(a, b);
  const NetId not_o = lb.lnot(a);
  for (int va = 0; va < 2; ++va) {
    for (int vb = 0; vb < 2; ++vb) {
      NetlistSim sim{nl};
      sim.set_input(a, va != 0);
      sim.set_input(b, vb != 0);
      EXPECT_EQ(sim.eval(and_o), (va && vb)) << va << vb;
      EXPECT_EQ(sim.eval(or_o), (va || vb)) << va << vb;
      EXPECT_EQ(sim.eval(xor_o), (va != vb)) << va << vb;
      EXPECT_EQ(sim.eval(not_o), !va) << va;
    }
  }
}

TEST_F(LogicFixture, Mux2SelectsCorrectLeg) {
  const NetId s = nl.input("s");
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  const NetId y = lb.mux2(s, a, b);
  NetlistSim sim{nl};
  sim.set_input(a, true);
  sim.set_input(b, false);
  sim.set_input(s, false);
  EXPECT_TRUE(sim.eval(y));  // sel=0 -> a
  sim.set_input(s, true);
  EXPECT_FALSE(sim.eval(y));  // sel=1 -> b
}

TEST_F(LogicFixture, ConstantBus) {
  const Bus c = lb.constant(8, 0xA5);
  NetlistSim sim{nl};
  EXPECT_EQ(sim.eval_bus(c), 0xA5u);
}

// Parameterized adder sweep: LUT+CARRY4 construction must add correctly.
class AdderSweep : public ::testing::TestWithParam<std::tuple<u64, u64>> {};

TEST_P(AdderSweep, AddsCorrectly) {
  const auto [va, vb] = GetParam();
  Netlist nl{"adder"};
  LogicBuilder lb{nl};
  const Bus a = nl.input_bus("a", 10);
  const Bus b = nl.input_bus("b", 10);
  const Bus sum = lb.add(a, b);
  ASSERT_EQ(sum.size(), 11u);
  NetlistSim sim{nl};
  sim.set_bus(a, va);
  sim.set_bus(b, vb);
  EXPECT_EQ(sim.eval_bus(sum), va + vb);
}

INSTANTIATE_TEST_SUITE_P(
    Values, AdderSweep,
    ::testing::Values(std::tuple<u64, u64>{0, 0}, std::tuple<u64, u64>{1, 1},
                      std::tuple<u64, u64>{511, 1},
                      std::tuple<u64, u64>{1023, 1023},
                      std::tuple<u64, u64>{765, 432},
                      std::tuple<u64, u64>{3, 1020}));

TEST_F(LogicFixture, AddUsesCarryChains) {
  const Bus a = nl.input_bus("a", 8);
  const Bus b = nl.input_bus("b", 8);
  lb.add(a, b);
  const NetlistStats stats = nl.stats();
  EXPECT_EQ(stats.carries, 2u);  // 8 bits / 4 per CARRY4
  EXPECT_EQ(stats.luts, 8u);     // one propagate LUT per bit
}

TEST_F(LogicFixture, SubComputesDifference) {
  const Bus a = nl.input_bus("a", 8);
  const Bus b = nl.input_bus("b", 8);
  const Bus diff = lb.sub(a, b);
  NetlistSim sim{nl};
  sim.set_bus(a, 200);
  sim.set_bus(b, 55);
  EXPECT_EQ(sim.eval_bus(diff) & 0xFFu, 145u);
}

TEST_F(LogicFixture, IncrementWraps) {
  const Bus a = nl.input_bus("a", 4);
  const Bus inc = lb.increment(a);
  NetlistSim sim{nl};
  sim.set_bus(a, 15);
  EXPECT_EQ(sim.eval_bus(inc), 0u);
  sim.set_bus(a, 7);
  EXPECT_EQ(sim.eval_bus(inc), 8u);
}

TEST_F(LogicFixture, EqConst) {
  const Bus a = nl.input_bus("a", 6);
  const NetId hit = lb.eq_const(a, 42);
  NetlistSim sim{nl};
  sim.set_bus(a, 42);
  EXPECT_TRUE(sim.eval(hit));
  sim.set_bus(a, 41);
  EXPECT_FALSE(sim.eval(hit));
}

TEST_F(LogicFixture, Reductions) {
  const Bus a = nl.input_bus("a", 5);
  const NetId any = lb.reduce_or(a);
  const NetId all = lb.reduce_and(a);
  const NetId parity = lb.reduce_xor(a);
  NetlistSim sim{nl};
  sim.set_bus(a, 0);
  EXPECT_FALSE(sim.eval(any));
  EXPECT_FALSE(sim.eval(all));
  EXPECT_FALSE(sim.eval(parity));
  sim.set_bus(a, 0b10110);
  EXPECT_TRUE(sim.eval(any));
  EXPECT_FALSE(sim.eval(all));
  EXPECT_TRUE(sim.eval(parity));
  sim.set_bus(a, 0b11111);
  EXPECT_TRUE(sim.eval(all));
}

TEST_F(LogicFixture, MuxNSelectsBank) {
  std::vector<Bus> banks;
  for (u64 v = 0; v < 8; ++v) banks.push_back(lb.constant(8, 10 * v + 5));
  const Bus sel = nl.input_bus("sel", 3);
  const Bus y = lb.mux_n(banks, sel);
  for (u64 s = 0; s < 8; ++s) {
    NetlistSim sim{nl};
    sim.set_bus(sel, s);
    EXPECT_EQ(sim.eval_bus(y), 10 * s + 5) << "sel=" << s;
  }
}

TEST_F(LogicFixture, DecodeOneHot) {
  const Bus a = nl.input_bus("a", 3);
  const Bus onehot = lb.decode(a);
  ASSERT_EQ(onehot.size(), 8u);
  NetlistSim sim{nl};
  sim.set_bus(a, 5);
  EXPECT_EQ(sim.eval_bus(onehot), 1ull << 5);
}

TEST_F(LogicFixture, RegisterBusCapturesOnStep) {
  const Bus d = nl.input_bus("d", 4);
  const Bus q = lb.register_bus(d, "r");
  NetlistSim sim{nl};
  sim.set_bus(d, 9);
  EXPECT_EQ(sim.eval_bus(q), 0u);
  sim.step();
  EXPECT_EQ(sim.eval_bus(q), 9u);
}

TEST_F(LogicFixture, RegisterBusCeHoldsWithoutEnable) {
  const Bus d = nl.input_bus("d", 4);
  const NetId ce = nl.input("ce");
  const Bus q = lb.register_bus_ce(d, ce, "r");
  NetlistSim sim{nl};
  sim.set_bus(d, 5);
  sim.set_input(ce, false);
  sim.step();
  EXPECT_EQ(sim.eval_bus(q), 0u);  // held reset value
  sim.set_input(ce, true);
  sim.step();
  EXPECT_EQ(sim.eval_bus(q), 5u);  // captured
  sim.set_bus(d, 12);
  sim.set_input(ce, false);
  sim.step();
  EXPECT_EQ(sim.eval_bus(q), 5u);  // held
}

TEST_F(LogicFixture, CounterCounts) {
  const Bus count = lb.counter(4, "cnt");
  NetlistSim sim{nl};
  EXPECT_EQ(sim.eval_bus(count), 0u);
  for (u64 i = 1; i <= 17; ++i) {
    sim.step();
    EXPECT_EQ(sim.eval_bus(count), i % 16) << "cycle " << i;
  }
}

TEST_F(LogicFixture, CounterCeClr) {
  const NetId ce = nl.input("ce");
  const NetId clr = nl.input("clr");
  const Bus count = lb.counter_ce_clr(4, ce, clr, "cnt");
  NetlistSim sim{nl};
  sim.set_input(ce, true);
  sim.set_input(clr, false);
  sim.step();
  sim.step();
  EXPECT_EQ(sim.eval_bus(count), 2u);
  sim.set_input(ce, false);  // hold
  sim.step();
  EXPECT_EQ(sim.eval_bus(count), 2u);
  sim.set_input(clr, true);  // synchronous clear
  sim.step();
  EXPECT_EQ(sim.eval_bus(count), 0u);
}

TEST_F(LogicFixture, DelayLineShifts) {
  const Bus in = nl.input_bus("x", 4);
  const auto taps = lb.delay_line(in, 3, "dl");
  ASSERT_EQ(taps.size(), 3u);
  NetlistSim sim{nl};
  sim.set_bus(in, 7);
  sim.step();
  sim.set_bus(in, 2);
  sim.step();
  EXPECT_EQ(sim.eval_bus(taps[0]), 2u);
  EXPECT_EQ(sim.eval_bus(taps[1]), 7u);
  EXPECT_EQ(sim.eval_bus(taps[2]), 0u);
}

TEST_F(LogicFixture, WidthMismatchThrows) {
  const Bus a = nl.input_bus("a", 3);
  const Bus b = nl.input_bus("b", 4);
  EXPECT_THROW(lb.and_bus(a, b), ContractError);
  EXPECT_THROW(lb.mux2_bus(nl.input("s"), a, b), ContractError);
}

TEST_F(LogicFixture, MuxNChecksSelectWidth) {
  std::vector<Bus> banks{lb.constant(4, 1), lb.constant(4, 2),
                         lb.constant(4, 3)};
  const Bus narrow_sel = nl.input_bus("s", 1);
  EXPECT_THROW(lb.mux_n(banks, narrow_sel), ContractError);
}

}  // namespace
}  // namespace prcost
