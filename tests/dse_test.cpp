#include <gtest/gtest.h>

#include <set>

#include "device/device_db.hpp"
#include "dse/explorer.hpp"
#include "dse/partition.hpp"
#include "paperdata/paper_dataset.hpp"
#include "util/error.hpp"

namespace prcost {
namespace {

// -------------------------------------------------------------- partitions ---

TEST(Partitions, BellNumbers) {
  EXPECT_EQ(bell_number(0), 1u);
  EXPECT_EQ(bell_number(1), 1u);
  EXPECT_EQ(bell_number(2), 2u);
  EXPECT_EQ(bell_number(3), 5u);
  EXPECT_EQ(bell_number(4), 15u);
  EXPECT_EQ(bell_number(5), 52u);
  EXPECT_EQ(bell_number(10), 115975u);
}

TEST(Partitions, EnumerationCountMatchesBell) {
  for (u32 n = 1; n <= 6; ++n) {
    EXPECT_EQ(enumerate_partitions(n).size(), bell_number(n)) << n;
  }
}

TEST(Partitions, EveryItemExactlyOnce) {
  for (const Partition& partition : enumerate_partitions(4)) {
    std::set<u32> seen;
    for (const auto& group : partition) {
      EXPECT_FALSE(group.empty());
      for (const u32 item : group) {
        EXPECT_TRUE(seen.insert(item).second) << "duplicate item";
      }
    }
    EXPECT_EQ(seen.size(), 4u);
  }
}

TEST(Partitions, MaxGroupsFilter) {
  // Partitions of 4 into <= 2 groups: S(4,1) + S(4,2) = 1 + 7 = 8.
  EXPECT_EQ(enumerate_partitions(4, 2).size(), 8u);
  // Into exactly 1 group.
  EXPECT_EQ(enumerate_partitions(4, 1).size(), 1u);
}

TEST(Partitions, NoDuplicates) {
  const auto partitions = enumerate_partitions(5);
  std::set<std::string> keys;
  for (const Partition& partition : partitions) {
    std::string key;
    for (const auto& group : partition) {
      key += "|";
      for (const u32 item : group) key += static_cast<char>('0' + item);
    }
    EXPECT_TRUE(keys.insert(key).second);
  }
}

TEST(Partitions, TooLargeThrows) {
  EXPECT_THROW(enumerate_partitions(13), ContractError);
  EXPECT_THROW(bell_number(25), ContractError);
}

// ---------------------------------------------------------------- explore ---

std::vector<PrmInfo> paper_prms(std::string_view device) {
  std::vector<PrmInfo> prms;
  for (const char* name : {"FIR", "MIPS", "SDRAM"}) {
    const auto& rec = paperdata::table5_record(name, device);
    prms.push_back(PrmInfo{name, rec.req, 0});
  }
  return prms;
}

TEST(Explore, EvaluatesEveryPartition) {
  const auto prms = paper_prms("xc5vlx110t");
  const Fabric& fabric = DeviceDb::instance().get("xc5vlx110t").fabric;
  WorkloadParams wp;
  wp.count = 30;
  const auto workload = make_workload(wp);
  const auto points = explore(prms, fabric, workload);
  EXPECT_EQ(points.size(), bell_number(3));  // 5 partitionings
  u32 feasible = 0;
  for (const DesignPoint& point : points) {
    if (point.feasible) {
      ++feasible;
      EXPECT_EQ(point.prr_plans.size(), point.partition.size());
      EXPECT_GT(point.total_prr_area, 0u);
      EXPECT_GT(point.makespan_s, 0.0);
      EXPECT_GT(point.total_bitstream_bytes, 0u);
    } else {
      EXPECT_FALSE(point.infeasible_reason.empty());
    }
  }
  EXPECT_GT(feasible, 0u);
}

TEST(Explore, DeterministicAcrossWorkerCounts) {
  const auto prms = paper_prms("xc5vlx110t");
  const Fabric& fabric = DeviceDb::instance().get("xc5vlx110t").fabric;
  WorkloadParams wp;
  wp.count = 20;
  const auto workload = make_workload(wp);
  ExploreOptions seq;
  seq.workers = 1;
  ExploreOptions par;
  par.workers = 4;
  const auto a = explore(prms, fabric, workload, seq);
  const auto b = explore(prms, fabric, workload, par);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].feasible, b[i].feasible);
    EXPECT_EQ(a[i].total_prr_area, b[i].total_prr_area);
    EXPECT_DOUBLE_EQ(a[i].makespan_s, b[i].makespan_s);
  }
}

TEST(Explore, MaxGroupsRestricts) {
  const auto prms = paper_prms("xc5vlx110t");
  const Fabric& fabric = DeviceDb::instance().get("xc5vlx110t").fabric;
  WorkloadParams wp;
  wp.count = 10;
  const auto workload = make_workload(wp);
  ExploreOptions options;
  options.max_groups = 1;
  const auto points = explore(prms, fabric, workload, options);
  EXPECT_EQ(points.size(), 1u);  // only the all-in-one-PRR partitioning
}

// ------------------------------------------------------------ pareto front ---

TEST(Pareto, FrontIsMinimalAndSorted) {
  const auto prms = paper_prms("xc5vlx110t");
  const Fabric& fabric = DeviceDb::instance().get("xc5vlx110t").fabric;
  WorkloadParams wp;
  wp.count = 40;
  const auto workload = make_workload(wp);
  const auto points = explore(prms, fabric, workload);
  const auto front = pareto_front(points);
  ASSERT_FALSE(front.empty());
  // Sorted by area; no point dominates another.
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_LE(front[i - 1].total_prr_area, front[i].total_prr_area);
    EXPECT_GT(front[i - 1].makespan_s, front[i].makespan_s);
  }
  // Every front member is feasible and not dominated by any point.
  for (const DesignPoint& f : front) {
    EXPECT_TRUE(f.feasible);
    for (const DesignPoint& p : points) {
      if (!p.feasible) continue;
      const bool dominates = p.total_prr_area <= f.total_prr_area &&
                             p.makespan_s <= f.makespan_s &&
                             (p.total_prr_area < f.total_prr_area ||
                              p.makespan_s < f.makespan_s);
      EXPECT_FALSE(dominates);
    }
  }
}

TEST(Pareto, EmptyInputGivesEmptyFront) {
  EXPECT_TRUE(pareto_front({}).empty());
}

}  // namespace
}  // namespace prcost
