#include <gtest/gtest.h>

#include "netlist/generators.hpp"
#include "netlist/logic.hpp"
#include "synth/mapper.hpp"
#include "synth/passes.hpp"
#include "synth/report.hpp"
#include "synth/synthesizer.hpp"
#include "util/error.hpp"

namespace prcost {
namespace {

// ---------------------------------------------------------------- report ---

TEST(Report, TextRoundTrips) {
  SynthesisReport report;
  report.module_name = "fir";
  report.family = Family::kVirtex6;
  report.slice_luts = 1316;
  report.slice_ffs = 394;
  report.lut_ff_pairs = 1467;
  report.dsps = 27;
  report.brams = 0;
  report.bonded_iobs = 99;
  const SynthesisReport parsed = parse_report(report_to_text(report));
  EXPECT_EQ(parsed.module_name, "fir");
  EXPECT_EQ(parsed.family, Family::kVirtex6);
  EXPECT_EQ(parsed.slice_luts, 1316u);
  EXPECT_EQ(parsed.slice_ffs, 394u);
  EXPECT_EQ(parsed.lut_ff_pairs, 1467u);
  EXPECT_EQ(parsed.dsps, 27u);
  EXPECT_EQ(parsed.brams, 0u);
  EXPECT_EQ(parsed.bonded_iobs, 99u);
}

TEST(Report, ParseMissingFieldsThrows) {
  EXPECT_THROW(parse_report("Module Name : x\n"), ParseError);
}

TEST(Report, BadNumericFieldNamesKeyAndToken) {
  SynthesisReport report;
  report.module_name = "fir";
  std::string text = report_to_text(report);
  const std::string needle = "Number of Slice LUTs              : 0";
  const auto pos = text.find(needle);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, needle.size(), "Number of Slice LUTs              : 12x3");
  try {
    parse_report(text);
    FAIL() << "corrupt count accepted";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("number of slice luts"), std::string::npos) << what;
    EXPECT_NE(what.find("'12x3'"), std::string::npos) << what;
  }
}

TEST(Report, BadFamilyIsParseErrorNamingToken) {
  SynthesisReport report;
  report.module_name = "fir";
  std::string text = report_to_text(report);
  const std::string needle = "Target Family                      : Virtex-5";
  const auto pos = text.find(needle);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, needle.size(), "Target Family : spartan9");
  try {
    parse_report(text);
    FAIL() << "unknown family accepted";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string{e.what()}.find("spartan9"), std::string::npos);
  }
}

TEST(Report, ConsistencyInvariant) {
  SynthesisReport report;
  report.slice_luts = 100;
  report.slice_ffs = 60;
  report.lut_ff_pairs = 120;  // between max(100,60) and 160
  EXPECT_TRUE(report.consistent());
  report.lut_ff_pairs = 90;  // below max -> impossible
  EXPECT_FALSE(report.consistent());
  report.lut_ff_pairs = 161;  // above sum -> impossible
  EXPECT_FALSE(report.consistent());
}

// ---------------------------------------------------------------- passes ---

TEST(Passes, ConstPropFoldsConstantLut) {
  Netlist nl{"t"};
  LogicBuilder lb{nl};
  const NetId a = nl.input("a");
  const NetId y = lb.land(a, nl.const_net(false));  // a & 0 == 0
  nl.output("y", y);
  propagate_constants(nl);
  eliminate_dead_cells(nl);
  EXPECT_EQ(nl.stats().luts, 0u);
  // The output port must now read constant 0.
  const CellId port = [&] {
    for (const CellId id : nl.live_cells()) {
      if (nl.cell(id).kind == CellKind::kOutput) return id;
    }
    return kNoCell;
  }();
  ASSERT_NE(port, kNoCell);
  EXPECT_EQ(nl.cell(nl.net(nl.cell(port).inputs[0]).driver).kind,
            CellKind::kConst0);
}

TEST(Passes, ConstPropSpecializesPartially) {
  Netlist nl{"t"};
  LogicBuilder lb{nl};
  const NetId a = nl.input("a");
  const NetId y = lb.lor(a, nl.const_net(false));  // a | 0 == a (buffer)
  nl.output("y", y);
  propagate_constants(nl);
  // The OR collapses to a buffer which is then bypassed entirely.
  EXPECT_EQ(nl.stats().luts, 0u);
}

TEST(Passes, DceRemovesUnusedLogicKeepsMemories) {
  Netlist nl{"t"};
  LogicBuilder lb{nl};
  const NetId a = nl.input("a");
  lb.lnot(a);  // dangling inverter
  const Bus addr = nl.input_bus("addr", 4);
  nl.ram(16, 8, addr, lb.constant(8, 0), nl.const_net(false));  // dangling RAM
  const u64 removed = eliminate_dead_cells(nl);
  EXPECT_GE(removed, 1u);
  EXPECT_EQ(nl.stats().luts, 0u);
  EXPECT_EQ(nl.stats().rams, 1u);  // memories survive
}

TEST(Passes, DceCascades) {
  Netlist nl{"t"};
  LogicBuilder lb{nl};
  const NetId a = nl.input("a");
  const NetId mid = lb.lnot(a);
  lb.lnot(mid);  // chain with no consumer
  eliminate_dead_cells(nl);
  EXPECT_EQ(nl.stats().luts, 0u);
}

TEST(Passes, MergeDuplicateLuts) {
  Netlist nl{"t"};
  LogicBuilder lb{nl};
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  const NetId x = lb.land(a, b);
  const NetId y = lb.land(a, b);  // identical
  nl.output("x", x);
  nl.output("y", y);
  EXPECT_EQ(merge_duplicate_luts(nl), 1u);
  EXPECT_EQ(nl.stats().luts, 1u);
  nl.validate();
}

TEST(Passes, MergeLeavesDifferentInputsAlone) {
  Netlist nl{"t"};
  LogicBuilder lb{nl};
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  nl.output("x", lb.land(a, b));
  nl.output("y", lb.land(b, a));  // same function, different pin order
  EXPECT_EQ(merge_duplicate_luts(nl), 0u);
}

TEST(Passes, AbsorbCeMuxes) {
  Netlist nl{"t"};
  LogicBuilder lb{nl};
  const Bus d = nl.input_bus("d", 4);
  const NetId ce = nl.input("ce");
  lb.register_bus_ce(d, ce, "r");
  const u64 before = nl.stats().luts;
  const u64 absorbed = absorb_ce_muxes(nl);
  EXPECT_EQ(absorbed, 4u);
  EXPECT_EQ(nl.stats().luts, before - 4);
  EXPECT_EQ(nl.stats().ffs, 4u);
  nl.validate();
}

TEST(Passes, FoldInverters) {
  Netlist nl{"t"};
  LogicBuilder lb{nl};
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  const NetId na = lb.lnot(a);
  nl.output("y", lb.land(na, b));  // ~a & b foldable into one LUT
  EXPECT_EQ(fold_inverters(nl), 1u);
  EXPECT_EQ(nl.stats().luts, 1u);
  nl.validate();
}

TEST(Passes, SynthesisPipelineReachesFixpoint) {
  Netlist nl = make_sdram_ctrl();
  run_synthesis_passes(nl);
  // Running again must change nothing.
  EXPECT_EQ(run_synthesis_passes(nl), 0u);
}

// ---------------------------------------------------------------- mapper ---

TEST(Mapper, DspArchPerFamily) {
  EXPECT_FALSE(dsp_arch(Family::kVirtex5).has_preadder);
  EXPECT_TRUE(dsp_arch(Family::kVirtex6).has_preadder);
  EXPECT_EQ(dsp_arch(Family::kVirtex4).a_width, 18u);
  EXPECT_EQ(dsp_arch(Family::kVirtex5).a_width, 25u);
}

TEST(Mapper, DspCountForMul) {
  const DspArch v5 = dsp_arch(Family::kVirtex5);
  EXPECT_EQ(dsp_count_for_mul(12, 12, v5), 1u);
  EXPECT_EQ(dsp_count_for_mul(25, 18, v5), 1u);
  EXPECT_EQ(dsp_count_for_mul(32, 32, v5), 4u);  // the MIPS multiply unit
  EXPECT_EQ(dsp_count_for_mul(26, 18, v5), 2u);
  EXPECT_THROW(dsp_count_for_mul(0, 8, v5), ContractError);
}

TEST(Mapper, BramCountForRam) {
  EXPECT_EQ(bram_count_for_ram(256, 8).bram18, 1u);    // AES S-box
  EXPECT_EQ(bram_count_for_ram(2048, 32).bram36, 2u);  // MIPS I-mem
  EXPECT_EQ(bram_count_for_ram(4096, 32).bram36, 4u);  // MIPS D-mem
  EXPECT_EQ(bram_count_for_ram(1024, 72).bram36, 2u);  // wide RAM tiles
  EXPECT_THROW(bram_count_for_ram(0, 8), ContractError);
}

TEST(Mapper, MapsMulsToDsps) {
  Netlist nl{"t"};
  const Bus a = nl.input_bus("a", 12);
  const Bus b = nl.input_bus("b", 12);
  const Bus p = nl.mul(a, b);
  nl.output_bus("p", p);
  const MapStats stats = map_netlist(nl, Family::kVirtex5);
  EXPECT_EQ(stats.muls_mapped, 1u);
  EXPECT_EQ(stats.dsps_emitted, 1u);
  EXPECT_EQ(nl.stats().dsp48s, 1u);
  EXPECT_EQ(nl.stats().muls, 0u);
}

TEST(Mapper, TilesWideMultipliers) {
  Netlist nl{"t"};
  const Bus a = nl.input_bus("a", 32);
  const Bus b = nl.input_bus("b", 32);
  nl.output_bus("p", nl.mul(a, b));
  map_netlist(nl, Family::kVirtex5);
  EXPECT_EQ(nl.stats().dsp48s, 4u);
}

TEST(Mapper, PreadderFusesSharedCoefficientPairs) {
  // Two multipliers sharing the same B bus fuse on Virtex-6, not Virtex-5.
  const auto build = [] {
    Netlist nl{"t"};
    const Bus x1 = nl.input_bus("x1", 12);
    const Bus x2 = nl.input_bus("x2", 12);
    const Bus c = nl.input_bus("c", 12);
    nl.output_bus("p1", nl.mul(x1, c));
    nl.output_bus("p2", nl.mul(x2, c));
    return nl;
  };
  Netlist v5 = build();
  map_netlist(v5, Family::kVirtex5);
  EXPECT_EQ(v5.stats().dsp48s, 2u);
  Netlist v6 = build();
  const MapStats stats = map_netlist(v6, Family::kVirtex6);
  EXPECT_EQ(stats.muls_fused, 1u);
  EXPECT_EQ(v6.stats().dsp48s, 1u);
}

TEST(Mapper, RamExpansionCounts) {
  Netlist nl{"t"};
  LogicBuilder lb{nl};
  const Bus addr = nl.input_bus("addr", 12);
  nl.output_bus("q", nl.ram(4096, 32, addr, lb.constant(32, 0),
                            nl.const_net(false)));
  map_netlist(nl, Family::kVirtex5);
  EXPECT_EQ(nl.stats().bram36s, 4u);
}

// ------------------------------------------------------------ synthesize ---

TEST(Synthesize, FirVirtex5Profile) {
  const SynthesisResult result =
      synthesize(make_fir(), SynthOptions{Family::kVirtex5, false});
  EXPECT_EQ(result.report.dsps, 32u);
  EXPECT_EQ(result.report.brams, 0u);
  EXPECT_TRUE(result.report.consistent());
  // Same regime as the paper's FIR (1300 pairs / 1150 LUTs / 394 FFs).
  EXPECT_GT(result.report.lut_ff_pairs, 800u);
  EXPECT_LT(result.report.lut_ff_pairs, 2000u);
}

TEST(Synthesize, FirVirtex6UsesPreadder) {
  const SynthesisResult result =
      synthesize(make_fir(), SynthOptions{Family::kVirtex6, false});
  // 32 taps with 5 symmetric pairs fused: 27 DSPs, the paper's Table V
  // value for FIR on the LX75T.
  EXPECT_EQ(result.report.dsps, 27u);
}

TEST(Synthesize, MipsProfile) {
  const SynthesisResult result =
      synthesize(make_mips5(), SynthOptions{Family::kVirtex5, false});
  EXPECT_EQ(result.report.dsps, 4u);   // 32x32 multiply tiles to 4 DSP48s
  EXPECT_EQ(result.report.brams, 6u);  // 2 + 4 BRAM36 memories
  EXPECT_GT(result.report.slice_ffs, 1000u);
}

TEST(Synthesize, SdramProfile) {
  const SynthesisResult result =
      synthesize(make_sdram_ctrl(), SynthOptions{Family::kVirtex5, false});
  EXPECT_EQ(result.report.dsps, 0u);
  EXPECT_EQ(result.report.brams, 0u);
  EXPECT_TRUE(result.report.consistent());
}

TEST(Synthesize, Deterministic) {
  const auto a = synthesize(make_fir(), SynthOptions{Family::kVirtex5, false});
  const auto b = synthesize(make_fir(), SynthOptions{Family::kVirtex5, false});
  EXPECT_EQ(a.report.lut_ff_pairs, b.report.lut_ff_pairs);
  EXPECT_EQ(a.report.slice_luts, b.report.slice_luts);
}

TEST(Synthesize, ImplementationLevelNeverIncreasesLuts) {
  for (int which = 0; which < 3; ++which) {
    const auto make = [&] {
      return which == 0 ? make_fir() : which == 1 ? make_mips5()
                                                  : make_sdram_ctrl();
    };
    const auto synth = synthesize(make(), SynthOptions{Family::kVirtex5, false});
    const auto impl = synthesize(make(), SynthOptions{Family::kVirtex5, true});
    EXPECT_LE(impl.report.slice_luts, synth.report.slice_luts) << which;
    // DSP/BRAM counts are untouched by logic optimization (Table VI).
    EXPECT_EQ(impl.report.dsps, synth.report.dsps) << which;
    EXPECT_EQ(impl.report.brams, synth.report.brams) << which;
  }
}

TEST(Synthesize, AesUsesBramPairs) {
  const SynthesisResult result =
      synthesize(make_aes_round(), SynthOptions{Family::kVirtex5, false});
  // 16 S-boxes as 18Kb halves -> 8 BRAM36 equivalents.
  EXPECT_EQ(result.report.brams, 8u);
}

}  // namespace
}  // namespace prcost
