#include <gtest/gtest.h>

#include "bitstream/generator.hpp"
#include "bitstream/readback.hpp"
#include "cost/prr_search.hpp"
#include "device/device_db.hpp"
#include "htr/relocation.hpp"
#include "paperdata/paper_dataset.hpp"
#include "util/error.hpp"

namespace prcost {
namespace {

const Fabric& lx110t() {
  return DeviceDb::instance().get("xc5vlx110t").fabric;
}

TEST(Readback, RequestStructure) {
  const auto& rec = paperdata::table5_record("MIPS", "xc5vlx110t");
  const auto plan = find_prr(rec.req, lx110t());
  const ReadbackRequest request =
      make_readback_request(*plan, Family::kVirtex5);
  // One config burst per row plus one BRAM burst per row (MIPS has BRAM).
  EXPECT_EQ(request.bursts.size(), 2u * plan->organization.h);
  // Command stream contains sync, RCFG and desync.
  EXPECT_NE(std::find(request.command_words.begin(),
                      request.command_words.end(), cfg::kSync),
            request.command_words.end());
  EXPECT_GT(request.response_words, 0u);
  EXPECT_THROW(make_readback_request(PrrPlan{}, Family::kVirtex5),
               ContractError);
}

TEST(Readback, ResponseMatchesWrittenFrames) {
  // Configure a PRR, read it back, and verify the recovered frames equal
  // what the bitstream wrote (pad frames removed).
  const auto& rec = paperdata::table5_record("SDRAM", "xc5vlx110t");
  const auto plan = find_prr(rec.req, lx110t());
  ConfigMemory cm{lx110t()};
  cm.apply_bitstream(generate_bitstream(*plan, Family::kVirtex5));

  const ReadbackRequest request =
      make_readback_request(*plan, Family::kVirtex5);
  const std::vector<u32> response = serve_readback(cm, request);
  EXPECT_EQ(response.size(), request.response_words);

  const auto frames = split_readback_response(
      request, response, lx110t().traits().frame_size);
  ASSERT_EQ(frames.size(), request.bursts.size());
  for (std::size_t b = 0; b < frames.size(); ++b) {
    const auto direct =
        cm.read_burst(request.bursts[b].far, request.bursts[b].frames);
    EXPECT_EQ(frames[b], direct) << "burst " << b;
  }
}

TEST(Readback, ResponseWordsMatchContextCostModel) {
  // The readback request's word count is what the HTR save-time model
  // charges: both sides must agree (modulo the per-row FAR/FDRO command
  // words, which the model folds in as FAR_FDRI).
  const auto& rec = paperdata::table5_record("FIR", "xc5vlx110t");
  const auto plan = find_prr(rec.req, lx110t());
  const FamilyTraits& t = lx110t().traits();
  const ReadbackRequest request =
      make_readback_request(*plan, Family::kVirtex5);
  const ContextCost cost = context_cost(plan->organization, t);
  const u64 command_rows = request.bursts.size();
  const u64 modeled_words = cost.save_bytes / t.bytes_word;
  const u64 actual_words =
      request.response_words + command_rows * t.far_fdri;
  EXPECT_EQ(modeled_words, actual_words);
}

TEST(Readback, SplitRejectsWrongSizes) {
  const auto& rec = paperdata::table5_record("SDRAM", "xc5vlx110t");
  const auto plan = find_prr(rec.req, lx110t());
  const ReadbackRequest request =
      make_readback_request(*plan, Family::kVirtex5);
  const std::vector<u32> short_response(request.response_words - 1, 0);
  EXPECT_THROW(split_readback_response(request, short_response,
                                       lx110t().traits().frame_size),
               ContractError);
}

TEST(Readback, BlankMemoryReadsZeroes) {
  const auto& rec = paperdata::table5_record("SDRAM", "xc5vlx110t");
  const auto plan = find_prr(rec.req, lx110t());
  ConfigMemory cm{lx110t()};
  const ReadbackRequest request =
      make_readback_request(*plan, Family::kVirtex5);
  for (const u32 word : serve_readback(cm, request)) EXPECT_EQ(word, 0u);
}

}  // namespace
}  // namespace prcost
