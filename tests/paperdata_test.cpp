// Internal-consistency checks on the reconstructed paper dataset: the
// recorded Table V inputs, Table VI deltas and expected outputs must agree
// with each other and with the model equations. These tests are the
// documentation trail for the algebraic reconstruction described in
// paperdata/paper_dataset.hpp.
#include <gtest/gtest.h>

#include <cmath>

#include "paperdata/paper_dataset.hpp"
#include "util/error.hpp"

namespace prcost {
namespace {

using paperdata::table5;
using paperdata::table5_record;
using paperdata::table6;

TEST(PaperData, SixRecordsEach) {
  EXPECT_EQ(table5().size(), 6u);
  EXPECT_EQ(table6().size(), 6u);
}

TEST(PaperData, LookupWorks) {
  const auto& rec = table5_record("FIR", "xc5vlx110t");
  EXPECT_EQ(rec.req.lut_ff_pairs, 1300u);
  EXPECT_THROW(table5_record("FIR", "nope"), ContractError);
}

TEST(PaperData, Eq1HoldsForEveryRecord) {
  for (const auto& rec : table5()) {
    EXPECT_EQ(ceil_div(rec.req.lut_ff_pairs, traits(rec.family).lut_clb),
              rec.clb_req)
        << rec.prm << "/" << rec.device;
  }
}

TEST(PaperData, AvailabilityIsHTimesColumns) {
  for (const auto& rec : table5()) {
    const FamilyTraits& t = traits(rec.family);
    EXPECT_EQ(rec.clb_avail, u64{rec.h} * rec.w_clb * t.clb_col);
    EXPECT_EQ(rec.ff_avail, rec.clb_avail * t.ff_clb);
    EXPECT_EQ(rec.lut_avail, rec.clb_avail * t.lut_clb);
    EXPECT_EQ(rec.dsp_avail, u64{rec.h} * rec.w_dsp * t.dsp_col);
    EXPECT_EQ(rec.bram_avail, u64{rec.h} * rec.w_bram * t.bram_col);
  }
}

TEST(PaperData, UtilizationPercentagesWithinRounding) {
  for (const auto& rec : table5()) {
    const auto check = [&](u64 used, u64 avail, int printed,
                           const char* what) {
      const double exact = percent(used, avail);
      EXPECT_NEAR(exact, printed, 1.0)
          << rec.prm << "/" << rec.device << " " << what;
    };
    check(rec.clb_req, rec.clb_avail, rec.ru_clb, "CLB");
    check(rec.req.ffs, rec.ff_avail, rec.ru_ff, "FF");
    check(rec.req.luts, rec.lut_avail, rec.ru_lut, "LUT");
    check(rec.req.dsps, rec.dsp_avail, rec.ru_dsp, "DSP");
    check(rec.req.brams, rec.bram_avail, rec.ru_bram, "BRAM");
  }
}

TEST(PaperData, RequirementsAreConsistentReports) {
  for (const auto& rec : table5()) {
    // LUT_FF pairs between max(LUT, FF) and LUT+FF.
    const u64 lo = std::max(rec.req.luts, rec.req.ffs);
    EXPECT_GE(rec.req.lut_ff_pairs, lo) << rec.prm << "/" << rec.device;
    EXPECT_LE(rec.req.lut_ff_pairs, rec.req.luts + rec.req.ffs);
  }
}

TEST(PaperData, TableVIDeltasReconstructTableV) {
  // TableV = TableVI / (1 - delta/100) must hold within integer rounding
  // for the pair and CLB counts - this is exactly how Table V was
  // reconstructed, so it doubles as a regression lock on the dataset.
  for (const auto& t6 : table6()) {
    const auto& t5 = table5_record(t6.prm, t6.device);
    const auto reconstruct = [](u64 post, double delta) {
      return static_cast<double>(post) / (1.0 - delta / 100.0);
    };
    EXPECT_NEAR(reconstruct(t6.req.lut_ff_pairs, t6.d_lut_ff),
                static_cast<double>(t5.req.lut_ff_pairs),
                static_cast<double>(t5.req.lut_ff_pairs) * 0.002)
        << t6.prm << "/" << t6.device;
    EXPECT_NEAR(reconstruct(t6.clb_req, t6.d_clb),
                static_cast<double>(t5.clb_req),
                static_cast<double>(t5.clb_req) * 0.005);
    EXPECT_NEAR(reconstruct(t6.req.luts, t6.d_lut),
                static_cast<double>(t5.req.luts),
                static_cast<double>(t5.req.luts) * 0.005);
  }
}

TEST(PaperData, TableVIDspBramUnchanged) {
  // "resulting in fewer resources ... but not with DSPs or BRAMs (0%
  // change with respect to values in Table V)".
  for (const auto& t6 : table6()) {
    const auto& t5 = table5_record(t6.prm, t6.device);
    EXPECT_EQ(t6.req.dsps, t5.req.dsps) << t6.prm << "/" << t6.device;
    EXPECT_EQ(t6.req.brams, t5.req.brams);
  }
}

TEST(PaperData, TableVILutSavingsConcentrateInClbs) {
  // The paper's observation: PAR optimizations hit LUTs/CLBs, sometimes
  // hard (up to ~32% for FIR on Virtex-6), while FFs barely move.
  for (const auto& t6 : table6()) {
    EXPECT_GE(t6.d_lut_ff, 0.0) << t6.prm << "/" << t6.device;
    EXPECT_LE(std::abs(t6.d_ff), 5.0);
  }
  EXPECT_DOUBLE_EQ(table6()[3].d_clb, 32.1);  // FIR on LX75T
}

}  // namespace
}  // namespace prcost
