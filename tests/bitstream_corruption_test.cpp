// Parser robustness under randomized corruption.
//
// The contract hardened in this PR: parse_bitstream must never crash,
// overflow, or allocate absurdly on corrupted input - every outcome is
// either a successfully parsed layout (corruption survived the grammar,
// e.g. a payload bit flip that only breaks the CRC) or a clean ParseError.
// The property loop below pushes >= 10k FaultInjector-mutated bitstreams
// through the parser; the crafted cases pin the specific FDRI type-2
// guards (zero count, count past end-of-stream, unaligned count).
#include <gtest/gtest.h>

#include <vector>

#include "bitstream/generator.hpp"
#include "bitstream/parser.hpp"
#include "bitstream/words.hpp"
#include "cost/prr_search.hpp"
#include "reconfig/faults.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace prcost {
namespace {

// Small synthetic PRR so one bitstream is a few hundred words: the 10k+
// mutation loop stays fast while still covering header, multi-row FDRI
// bursts (CLB + BRAM blocks), and trailer.
std::vector<u32> small_bitstream(Family family = Family::kVirtex5) {
  PrrPlan plan;
  plan.organization.h = 2;
  plan.organization.columns = ColumnDemand{3, 1, 1};
  plan.window = ColumnWindow{1, plan.organization.width()};
  plan.bitstream = estimate_bitstream(plan.organization, traits(family));
  return generate_bitstream(plan, family);
}

/// Parse and classify: 0 = clean, 1 = ParseError. Anything else (another
/// exception type, crash, sanitizer abort) fails the test.
int parse_outcome(const std::vector<u32>& words, Family family) {
  try {
    (void)parse_bitstream(words, family);
    return 0;
  } catch (const ParseError&) {
    return 1;
  }
}

TEST(ParserCorruption, SurvivesTenThousandMutatedBitstreams) {
  const std::vector<u32> clean = small_bitstream();
  ASSERT_GT(clean.size(), 0u);
  ASSERT_EQ(parse_outcome(clean, Family::kVirtex5), 0);

  FaultProfile profile;
  profile.fault_rate = 1.0;
  profile.seed = 0xC0FFEE;
  FaultInjector injector{profile};

  u64 parse_errors = 0;
  u64 clean_parses = 0;
  constexpr int kIterations = 12000;
  for (int i = 0; i < kIterations; ++i) {
    std::vector<u32> mutated = clean;
    // 1-3 stacked corruptions: single faults plus compound damage.
    const int hits = 1 + i % 3;
    for (int c = 0; c < hits; ++c) injector.corrupt(mutated);
    switch (parse_outcome(mutated, Family::kVirtex5)) {
      case 0: ++clean_parses; break;
      case 1: ++parse_errors; break;
    }
  }
  // The loop completing at all is the real assertion (no crash / UB under
  // the sanitizer jobs); both outcome classes must occur, and grammar
  // damage dominates.
  EXPECT_EQ(parse_errors + clean_parses, u64{kIterations});
  EXPECT_GT(parse_errors, u64{kIterations} / 2);
  EXPECT_GT(clean_parses, 0u);
}

TEST(ParserCorruption, EveryTruncationIsClean) {
  const std::vector<u32> clean = small_bitstream();
  for (std::size_t len = 0; len < clean.size(); ++len) {
    const std::vector<u32> prefix(clean.begin(),
                                  clean.begin() + static_cast<long>(len));
    // Must not crash; a strict prefix either parses (header-only streams
    // have no bursts yet) or reports a clean truncation error.
    (void)parse_outcome(prefix, Family::kVirtex5);
  }
}

TEST(ParserCorruption, RandomWordSoupNeverCrashes) {
  Rng rng{2026};
  for (int i = 0; i < 500; ++i) {
    std::vector<u32> words(rng.below(64));
    for (u32& w : words) w = static_cast<u32>(rng());
    if (i % 2 == 0 && !words.empty()) words[0] = cfg::kSync;
    (void)parse_outcome(words, Family::kVirtex5);
  }
}

// Pin the FDRI type-2 guards added in this PR: the count is validated
// before any pointer arithmetic or payload recording.

std::size_t find_type2(const std::vector<u32>& words) {
  for (std::size_t i = 0; i < words.size(); ++i) {
    if (packet_type(words[i]) == 2) return i;
  }
  ADD_FAILURE() << "no type-2 packet in generated stream";
  return 0;
}

TEST(ParserCorruption, HugeType2CountIsParseError) {
  std::vector<u32> words = small_bitstream();
  const std::size_t pos = find_type2(words);
  words[pos] = type2(PacketOp::kWrite, 0x3FFFFFFu);  // far past end of stream
  EXPECT_THROW(parse_bitstream(words, Family::kVirtex5), ParseError);
}

TEST(ParserCorruption, ZeroType2CountIsParseError) {
  std::vector<u32> words = small_bitstream();
  words[find_type2(words)] = type2(PacketOp::kWrite, 0);
  EXPECT_THROW(parse_bitstream(words, Family::kVirtex5), ParseError);
}

TEST(ParserCorruption, UnalignedType2CountIsParseError) {
  std::vector<u32> words = small_bitstream();
  const std::size_t pos = find_type2(words);
  const u64 count = type2_count(words[pos]);
  ASSERT_GT(count, 1u);
  // One word short of a whole number of frames, still inside the stream.
  words[pos] = type2(PacketOp::kWrite, narrow<u32>(count - 1));
  EXPECT_THROW(parse_bitstream(words, Family::kVirtex5), ParseError);
}

TEST(ParserCorruption, WorksAcrossFamilies) {
  FaultProfile profile;
  profile.fault_rate = 1.0;
  profile.seed = 0xBEEF;
  for (const Family family : kAllFamilies) {
    const std::vector<u32> clean = small_bitstream(family);
    ASSERT_EQ(parse_outcome(clean, family), 0) << family_name(family);
    FaultInjector injector{profile};
    for (int i = 0; i < 500; ++i) {
      std::vector<u32> mutated = clean;
      injector.corrupt(mutated);
      (void)parse_outcome(mutated, family);
    }
  }
}

}  // namespace
}  // namespace prcost
