#include <gtest/gtest.h>

#include "device/device_db.hpp"
#include "paperdata/paper_dataset.hpp"
#include "par/routability.hpp"
#include "util/error.hpp"

namespace prcost {
namespace {

const Fabric& lx110t() {
  return DeviceDb::instance().get("xc5vlx110t").fabric;
}

Floorplanner place_paper_trio() {
  Floorplanner fp{lx110t()};
  for (const char* name : {"MIPS", "FIR", "SDRAM"}) {
    const auto& rec = paperdata::table5_record(name, "xc5vlx110t");
    if (!fp.place(name, rec.req)) {
      throw ContractError{"place_paper_trio: placement failed"};
    }
  }
  return fp;
}

TEST(StaticNets, EndpointsAvoidPlacements) {
  const Floorplanner fp = place_paper_trio();
  const auto nets = sample_static_nets(fp, lx110t(), RoutePressureOptions{});
  EXPECT_EQ(nets.size(), RoutePressureOptions{}.net_count);
  for (const StaticNet& net : nets) {
    for (const PlacedPrr& placed : fp.placements()) {
      const auto inside = [&](u32 col, u32 row) {
        return col >= placed.first_col &&
               col < placed.first_col + placed.plan.window.width &&
               row >= placed.first_row &&
               row < placed.first_row + placed.plan.organization.h;
      };
      EXPECT_FALSE(inside(net.col_a, net.row_a));
      EXPECT_FALSE(inside(net.col_b, net.row_b));
    }
  }
}

TEST(StaticNets, DeterministicForSeed) {
  const Floorplanner fp = place_paper_trio();
  RoutePressureOptions options;
  options.net_count = 100;
  const auto a = sample_static_nets(fp, lx110t(), options);
  const auto b = sample_static_nets(fp, lx110t(), options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].col_a, b[i].col_a);
    EXPECT_EQ(a[i].row_b, b[i].row_b);
  }
}

TEST(StaticNets, FullFabricThrows) {
  Floorplanner fp{lx110t()};
  fp.reserve(0, lx110t().num_columns(), 0, lx110t().rows());
  EXPECT_THROW(sample_static_nets(fp, lx110t(), RoutePressureOptions{}),
               ContractError);
}

TEST(RoutePressure, OnePerPlacement) {
  const Floorplanner fp = place_paper_trio();
  const std::vector<double> densities{0.96, 0.82, 0.70};
  const auto pressures = estimate_route_pressure(fp, lx110t(), densities);
  ASSERT_EQ(pressures.size(), 3u);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(pressures[p].name, fp.placements()[p].name);
    EXPECT_DOUBLE_EQ(pressures[p].packing_density, densities[p]);
    EXPECT_GE(pressures[p].risk, 0.0);
    EXPECT_LE(pressures[p].risk, 1.0);
  }
}

TEST(RoutePressure, DensityScalesRiskQuadratically) {
  const Floorplanner fp = place_paper_trio();
  const auto dense =
      estimate_route_pressure(fp, lx110t(), {1.0, 1.0, 1.0});
  const auto sparse =
      estimate_route_pressure(fp, lx110t(), {0.5, 0.5, 0.5});
  for (std::size_t p = 0; p < dense.size(); ++p) {
    EXPECT_EQ(dense[p].crossing_nets, sparse[p].crossing_nets);
    if (dense[p].crossing_nets > 0) {
      EXPECT_NEAR(dense[p].risk / sparse[p].risk, 4.0, 1e-9);
    }
  }
}

TEST(RoutePressure, DensityCountMismatchThrows) {
  const Floorplanner fp = place_paper_trio();
  EXPECT_THROW(estimate_route_pressure(fp, lx110t(), {0.5}),
               ContractError);
}

TEST(RoutePressure, BiggerPrrsCrossMoreNets) {
  // A PRR spanning more rows/columns intersects more random bounding
  // boxes. Compare SDRAM (1x3) against MIPS (1x20) under one net sample.
  const Floorplanner fp = place_paper_trio();
  const auto pressures =
      estimate_route_pressure(fp, lx110t(), {1.0, 1.0, 1.0});
  const auto find = [&](std::string_view name) {
    for (const auto& p : pressures) {
      if (p.name == name) return p;
    }
    throw ContractError{"missing placement"};
  };
  EXPECT_GT(find("MIPS").crossing_nets, find("SDRAM").crossing_nets);
}

}  // namespace
}  // namespace prcost
