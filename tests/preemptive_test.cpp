#include <gtest/gtest.h>

#include "multitask/preemptive.hpp"
#include "util/error.hpp"

namespace prcost {
namespace {

std::vector<PrmInfo> two_prms() {
  return {PrmInfo{"a", {}, 83064}, PrmInfo{"b", {}, 18040}};
}

TEST(Preemptive, ModeNames) {
  EXPECT_EQ(preempt_mode_name(PreemptMode::kNoPreemption), "no-preemption");
  EXPECT_EQ(preempt_mode_name(PreemptMode::kSaveRestore), "save-restore");
}

TEST(Preemptive, ValidatesInput) {
  PreemptiveConfig config;
  config.prr_count = 0;
  EXPECT_THROW(simulate_preemptive(two_prms(), {}, config), ContractError);
  config.prr_count = 1;
  std::vector<HwTask> bad{HwTask{"x", 7, 0, 1e-3, 0}};
  EXPECT_THROW(simulate_preemptive(two_prms(), bad, config), ContractError);
}

TEST(Preemptive, NoPreemptionRunsEverything) {
  std::vector<HwTask> tasks;
  for (int i = 0; i < 10; ++i) {
    tasks.push_back(HwTask{"t" + std::to_string(i),
                           static_cast<u32>(i % 2), i * 1e-4, 2e-3,
                           static_cast<u32>(i % 4)});
  }
  PreemptiveConfig config;
  config.prr_count = 2;
  config.mode = PreemptMode::kNoPreemption;
  const PreemptiveResult result =
      simulate_preemptive(two_prms(), tasks, config);
  EXPECT_EQ(result.preemptions, 0u);
  for (const TaskOutcome& outcome : result.tasks) {
    EXPECT_GT(outcome.finish_s, 0.0);
  }
}

TEST(Preemptive, DuplicateArrivalsAreDeterministic) {
  // Equal-arrival tasks: the explicit (arrival, input order) tie-break
  // makes repeated runs bit-identical even with every mode's preemption
  // churn in play.
  std::vector<HwTask> tasks;
  for (int i = 0; i < 10; ++i) {
    tasks.push_back(HwTask{"t" + std::to_string(i), static_cast<u32>(i % 2),
                           1e-3 * static_cast<double>(i / 5), 2e-3,
                           static_cast<u32>(i % 3)});
  }
  for (const PreemptMode mode :
       {PreemptMode::kNoPreemption, PreemptMode::kRestart,
        PreemptMode::kSaveRestore}) {
    PreemptiveConfig config;
    config.prr_count = 2;
    config.mode = mode;
    const PreemptiveResult a = simulate_preemptive(two_prms(), tasks, config);
    const PreemptiveResult b = simulate_preemptive(two_prms(), tasks, config);
    EXPECT_EQ(a.makespan_s, b.makespan_s);
    EXPECT_EQ(a.preemptions, b.preemptions);
    ASSERT_EQ(a.tasks.size(), b.tasks.size());
    for (std::size_t i = 0; i < a.tasks.size(); ++i) {
      EXPECT_EQ(a.tasks[i].start_s, b.tasks[i].start_s);
      EXPECT_EQ(a.tasks[i].finish_s, b.tasks[i].finish_s);
      EXPECT_EQ(a.tasks[i].prr, b.tasks[i].prr);
    }
  }
}

TEST(Preemptive, UrgentTaskPreemptsLongRunner) {
  // A long low-priority task occupies the single PRR; an urgent short one
  // arrives mid-flight. With preemption the urgent task finishes well
  // before the long task would have released the PRR.
  std::vector<HwTask> tasks{
      HwTask{"long", 0, 0.0, 100e-3, /*priority=*/0},
      HwTask{"urgent", 0, 5e-3, 1e-3, /*priority=*/7},
  };
  PreemptiveConfig preempt;
  preempt.prr_count = 1;
  preempt.mode = PreemptMode::kSaveRestore;
  preempt.context_save_s = 100e-6;
  preempt.context_restore_s = 100e-6;
  PreemptiveConfig fifo = preempt;
  fifo.mode = PreemptMode::kNoPreemption;

  const auto with = simulate_preemptive(two_prms(), tasks, preempt);
  const auto without = simulate_preemptive(two_prms(), tasks, fifo);
  EXPECT_EQ(with.preemptions, 1u);
  EXPECT_LT(with.tasks[1].finish_s, without.tasks[1].finish_s);
  // The long task resumed rather than restarted: total makespan grows only
  // by roughly the urgent task + overheads.
  EXPECT_LT(with.makespan_s, without.makespan_s + 5e-3);
}

TEST(Preemptive, SaveRestoreBeatsRestart) {
  // Preempting a half-done long task: with save/restore the victim loses
  // only the overhead; with restart it repeats its whole execution.
  std::vector<HwTask> tasks{
      HwTask{"long", 0, 0.0, 50e-3, 0},
      HwTask{"urgent", 0, 25e-3, 1e-3, 9},
  };
  PreemptiveConfig save;
  save.prr_count = 1;
  save.mode = PreemptMode::kSaveRestore;
  save.context_save_s = 200e-6;
  save.context_restore_s = 200e-6;
  PreemptiveConfig restart = save;
  restart.mode = PreemptMode::kRestart;

  const auto a = simulate_preemptive(two_prms(), tasks, save);
  const auto b = simulate_preemptive(two_prms(), tasks, restart);
  EXPECT_EQ(a.preemptions, 1u);
  EXPECT_EQ(b.preemptions, 1u);
  // Restart repeats ~25 ms of lost work.
  EXPECT_LT(a.makespan_s + 20e-3, b.makespan_s);
  EXPECT_GT(a.total_save_restore_s, 0.0);
  EXPECT_DOUBLE_EQ(b.total_save_restore_s, 0.0);
}

TEST(Preemptive, HighPriorityWaitImproves) {
  // Random-ish mixed load: the top-quartile tasks must wait less under
  // save/restore preemption than under FIFO.
  std::vector<HwTask> tasks;
  for (int i = 0; i < 40; ++i) {
    tasks.push_back(HwTask{"t" + std::to_string(i),
                           static_cast<u32>(i % 2), i * 0.3e-3,
                           (1 + i % 5) * 2e-3,
                           static_cast<u32>((i * 7) % 8)});
  }
  PreemptiveConfig preempt;
  preempt.prr_count = 2;
  preempt.mode = PreemptMode::kSaveRestore;
  preempt.context_save_s = 100e-6;
  preempt.context_restore_s = 100e-6;
  PreemptiveConfig fifo = preempt;
  fifo.mode = PreemptMode::kNoPreemption;
  const auto with = simulate_preemptive(two_prms(), tasks, preempt);
  const auto without = simulate_preemptive(two_prms(), tasks, fifo);
  EXPECT_GT(with.preemptions, 0u);
  EXPECT_LE(with.mean_high_priority_wait_s,
            without.mean_high_priority_wait_s);
}

TEST(Preemptive, AllTasksEventuallyComplete) {
  std::vector<HwTask> tasks;
  for (int i = 0; i < 30; ++i) {
    tasks.push_back(HwTask{"t" + std::to_string(i),
                           static_cast<u32>(i % 2), 0.0, 1e-3,
                           static_cast<u32>(i % 8)});
  }
  for (const PreemptMode mode :
       {PreemptMode::kNoPreemption, PreemptMode::kRestart,
        PreemptMode::kSaveRestore}) {
    PreemptiveConfig config;
    config.prr_count = 3;
    config.mode = mode;
    config.context_save_s = 50e-6;
    config.context_restore_s = 50e-6;
    const auto result = simulate_preemptive(two_prms(), tasks, config);
    ASSERT_EQ(result.tasks.size(), tasks.size());
    for (const TaskOutcome& outcome : result.tasks) {
      EXPECT_GT(outcome.finish_s, 0.0) << preempt_mode_name(mode);
    }
  }
}

}  // namespace
}  // namespace prcost
