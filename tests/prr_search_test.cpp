// Fig. 1 search-flow tests, including the full reproduction of the paper's
// Table V as a parameterized suite over the reconstructed records.
#include <gtest/gtest.h>

#include <cmath>

#include "cost/prr_search.hpp"
#include "device/device_db.hpp"
#include "paperdata/paper_dataset.hpp"

namespace prcost {
namespace {

const Fabric& lx110t() {
  return DeviceDb::instance().get("xc5vlx110t").fabric;
}
const Fabric& lx75t() { return DeviceDb::instance().get("xc6vlx75t").fabric; }

// ------------------------------------------------ Table V reproduction ---

class TableVSuite
    : public ::testing::TestWithParam<paperdata::TableVRecord> {};

TEST_P(TableVSuite, OrganizationMatchesPaper) {
  const auto& rec = GetParam();
  const Fabric& fabric = DeviceDb::instance().get(rec.device).fabric;
  const auto plan = find_prr(rec.req, fabric);
  ASSERT_TRUE(plan.has_value()) << rec.prm << " on " << rec.device;
  EXPECT_EQ(plan->organization.h, rec.h);
  EXPECT_EQ(plan->organization.columns.clb_cols, rec.w_clb);
  EXPECT_EQ(plan->organization.columns.dsp_cols, rec.w_dsp);
  EXPECT_EQ(plan->organization.columns.bram_cols, rec.w_bram);
}

TEST_P(TableVSuite, AvailabilityMatchesPaper) {
  const auto& rec = GetParam();
  const Fabric& fabric = DeviceDb::instance().get(rec.device).fabric;
  const auto plan = find_prr(rec.req, fabric);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->available.clbs, rec.clb_avail);
  EXPECT_EQ(plan->available.ffs, rec.ff_avail);
  EXPECT_EQ(plan->available.luts, rec.lut_avail);
  EXPECT_EQ(plan->available.dsps, rec.dsp_avail);
  EXPECT_EQ(plan->available.brams, rec.bram_avail);
}

TEST_P(TableVSuite, UtilizationMatchesPaperWithinRounding) {
  // The paper prints integer percentages with an unrecoverable rounding
  // convention (MIPS/LX110T prints 96.47% as 97 but FIR/LX75T prints
  // 12.31% as 12), so we accept +/-1 point.
  const auto& rec = GetParam();
  const Fabric& fabric = DeviceDb::instance().get(rec.device).fabric;
  const auto plan = find_prr(rec.req, fabric);
  ASSERT_TRUE(plan.has_value());
  EXPECT_NEAR(plan->ru.clb, rec.ru_clb, 1.0);
  EXPECT_NEAR(plan->ru.ff, rec.ru_ff, 1.0);
  EXPECT_NEAR(plan->ru.lut, rec.ru_lut, 1.0);
  EXPECT_NEAR(plan->ru.dsp, rec.ru_dsp, 1.0);
  EXPECT_NEAR(plan->ru.bram, rec.ru_bram, 1.0);
}

TEST_P(TableVSuite, ClbReqMatchesPaper) {
  const auto& rec = GetParam();
  EXPECT_EQ(clb_req(rec.req, traits(rec.family)), rec.clb_req);
}

INSTANTIATE_TEST_SUITE_P(
    Paper, TableVSuite,
    ::testing::ValuesIn(paperdata::table5().begin(),
                        paperdata::table5().end()),
    [](const ::testing::TestParamInfo<paperdata::TableVRecord>& tp_info) {
      std::string name{tp_info.param.prm};
      name += "_";
      name += tp_info.param.device;
      return name;
    });

// -------------------------------------------------------- search logic ---

TEST(Search, MinAreaBeatsFirstFeasibleForFir) {
  // The paper's FIR/LX110T organization (H=5, size 15) is NOT the first
  // feasible height: H=4 works too but costs 16 cells. This is the
  // evidence the flow minimizes H*W.
  const auto& rec = paperdata::table5_record("FIR", "xc5vlx110t");
  SearchOptions first;
  first.objective = SearchObjective::kFirstFeasible;
  const auto first_plan = find_prr(rec.req, lx110t(), first);
  ASSERT_TRUE(first_plan.has_value());
  EXPECT_EQ(first_plan->organization.h, 4u);
  EXPECT_EQ(first_plan->organization.size(), 16u);

  const auto area_plan = find_prr(rec.req, lx110t());
  ASSERT_TRUE(area_plan.has_value());
  EXPECT_EQ(area_plan->organization.h, 5u);
  EXPECT_EQ(area_plan->organization.size(), 15u);
}

TEST(Search, MinBitstreamObjective) {
  const auto& rec = paperdata::table5_record("FIR", "xc5vlx110t");
  SearchOptions options;
  options.objective = SearchObjective::kMinBitstream;
  const auto plan = find_prr(rec.req, lx110t(), options);
  ASSERT_TRUE(plan.has_value());
  // Minimum-bitstream must be <= the min-area plan's bitstream.
  const auto area_plan = find_prr(rec.req, lx110t());
  EXPECT_LE(plan->bitstream.total_bytes, area_plan->bitstream.total_bytes);
}

TEST(Search, EmptyRequirementsGiveNoPlan) {
  EXPECT_FALSE(find_prr(PrmRequirements{}, lx110t()).has_value());
}

TEST(Search, ImpossibleDemandGivesNoPlan) {
  PrmRequirements req;
  req.lut_ff_pairs = 10'000'000;  // far beyond the device
  EXPECT_FALSE(find_prr(req, lx110t()).has_value());
  req = PrmRequirements{};
  req.dsps = 1000;  // only 64 on the LX110T
  EXPECT_FALSE(find_prr(req, lx110t()).has_value());
}

TEST(Search, MaxHeightOptionRestricts) {
  const auto& rec = paperdata::table5_record("FIR", "xc5vlx110t");
  SearchOptions options;
  options.max_height = 4;  // excludes the H=5 optimum
  const auto plan = find_prr(rec.req, lx110t(), options);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->organization.h, 4u);
}

TEST(Search, EnumerateReturnsAscendingHeights) {
  const auto& rec = paperdata::table5_record("MIPS", "xc5vlx110t");
  const auto plans = enumerate_prrs(rec.req, lx110t());
  ASSERT_GT(plans.size(), 1u);
  for (std::size_t i = 1; i < plans.size(); ++i) {
    EXPECT_LT(plans[i - 1].organization.h, plans[i].organization.h);
  }
  // Every enumerated plan satisfies the requirements.
  for (const PrrPlan& plan : plans) {
    EXPECT_TRUE(satisfies(plan.organization, rec.req, lx110t().traits()));
  }
}

TEST(Search, PlansCarryConsistentBitstreamEstimate) {
  const auto& rec = paperdata::table5_record("MIPS", "xc6vlx75t");
  const auto plan = find_prr(rec.req, lx75t());
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->bitstream.total_bytes,
            bitstream_bytes(plan->organization, lx75t().traits()));
}

// ---------------------------------------------------------- shared PRR ---

TEST(SharedPrr, TakesElementwiseMaximum) {
  // FIR (DSP-heavy) + SDRAM (logic-only) share a PRR: the PRR must carry
  // FIR's DSP demand and the max CLB demand.
  const auto& fir = paperdata::table5_record("FIR", "xc5vlx110t");
  const auto& sdram = paperdata::table5_record("SDRAM", "xc5vlx110t");
  const PrmRequirements reqs[] = {fir.req, sdram.req};
  const auto shared = find_shared_prr(reqs, lx110t());
  ASSERT_TRUE(shared.has_value());
  const auto fir_alone = find_prr(fir.req, lx110t());
  EXPECT_GE(shared->available.dsps, fir.req.dsps);
  EXPECT_GE(shared->available.clbs,
            clb_req(fir.req, lx110t().traits()));
  EXPECT_GE(shared->organization.size(),
            fir_alone->organization.size());
}

TEST(SharedPrr, SinglePrmEqualsFindPrr) {
  const auto& rec = paperdata::table5_record("SDRAM", "xc6vlx75t");
  const PrmRequirements reqs[] = {rec.req};
  const auto shared = find_shared_prr(reqs, lx75t());
  const auto single = find_prr(rec.req, lx75t());
  ASSERT_TRUE(shared.has_value());
  ASSERT_TRUE(single.has_value());
  EXPECT_EQ(shared->organization.size(), single->organization.size());
}

TEST(SharedPrr, EmptyListGivesNothing) {
  EXPECT_FALSE(find_shared_prr({}, lx110t()).has_value());
}

// Property sweep: for every catalog device, min-area plans never lose to
// any enumerated alternative, and all plans respect fabric feasibility.
class DeviceSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(DeviceSweep, MinAreaIsMinimalOverEnumeration) {
  const Fabric& fabric = DeviceDb::instance().get(GetParam()).fabric;
  PrmRequirements req;
  req.lut_ff_pairs = 500;
  req.dsps = 10;
  req.brams = 3;
  const auto best = find_prr(req, fabric);
  const auto all = enumerate_prrs(req, fabric);
  if (!best) {
    EXPECT_TRUE(all.empty());
    return;
  }
  for (const PrrPlan& plan : all) {
    EXPECT_GE(plan.organization.size(), best->organization.size());
    // The chosen window must actually have the demanded composition.
    u32 clb = 0, dsp = 0, bram = 0;
    for (u32 c = plan.window.first_col;
         c < plan.window.first_col + plan.window.width; ++c) {
      switch (fabric.column(c)) {
        case ColumnType::kClb: ++clb; break;
        case ColumnType::kDsp: ++dsp; break;
        case ColumnType::kBram: ++bram; break;
        default: FAIL() << "window contains blocked column";
      }
    }
    EXPECT_EQ(clb, plan.organization.columns.clb_cols);
    EXPECT_EQ(dsp, plan.organization.columns.dsp_cols);
    EXPECT_EQ(bram, plan.organization.columns.bram_cols);
  }
}

INSTANTIATE_TEST_SUITE_P(Catalog, DeviceSweep,
                         ::testing::Values("xc5vlx110t", "xc6vlx75t",
                                           "xc4vlx60", "xc5vlx50t",
                                           "xc6vlx240t", "xc7k325t"));

}  // namespace
}  // namespace prcost
