// Cross-cutting property sweeps that tie several subsystems together:
// randomized requirements through search/availability/bitstream/linter on
// every device, simulator conservation laws across policies and media,
// and controller formula identities.
#include <gtest/gtest.h>

#include <cmath>

#include "bitstream/bitstream_cache.hpp"
#include "bitstream/crc.hpp"
#include "bitstream/generator.hpp"
#include "bitstream/lint.hpp"
#include "cost/prr_search.hpp"
#include "device/device_db.hpp"
#include "multitask/simulator.hpp"
#include "reconfig/controllers.hpp"
#include "util/rng.hpp"

namespace prcost {
namespace {

// ---------------------------------------- randomized requirement sweeps ---

class RandomReqSweep : public ::testing::TestWithParam<u64> {};

TEST_P(RandomReqSweep, SearchResultsAreAlwaysSufficientAndExact) {
  Rng rng{GetParam()};
  for (const Device& device : DeviceDb::instance().all()) {
    for (int trial = 0; trial < 8; ++trial) {
      PrmRequirements req;
      req.lut_ff_pairs = 1 + rng.below(5000);
      req.luts = req.lut_ff_pairs * 2 / 3;
      req.ffs = req.lut_ff_pairs / 2;
      req.dsps = rng.below(40);
      req.brams = rng.below(12);
      const auto plan = find_prr(req, device.fabric);
      if (!plan) continue;  // legitimately infeasible on small parts
      // Sufficiency (Eqs. 8-12 vs requirements).
      EXPECT_TRUE(satisfies(plan->organization, req, device.fabric.traits()))
          << device.name;
      // RU sanity: utilization of each demanded resource is in (0, 100].
      if (req.dsps > 0) {
        EXPECT_GT(plan->ru.dsp, 0.0);
        EXPECT_LE(plan->ru.dsp, 100.0);
      }
      // Window composition equals the organization exactly.
      const ColumnDemand comp =
          device.fabric.window_composition(plan->window);
      EXPECT_EQ(comp.clb_cols, plan->organization.columns.clb_cols);
      EXPECT_EQ(comp.dsp_cols, plan->organization.columns.dsp_cols);
      EXPECT_EQ(comp.bram_cols, plan->organization.columns.bram_cols);
      // Bitstream model == generated artifact == lint-clean stream.
      const auto words = generate_bitstream(*plan, device.fabric.family());
      EXPECT_EQ(words.size(), plan->bitstream.total_words) << device.name;
      EXPECT_TRUE(lint_bitstream(words, device.fabric.family()).empty())
          << device.name;
      // Cached generation is byte-identical to the fresh one.
      const auto cached =
          generate_bitstream_cached(*plan, device.fabric.family());
      EXPECT_EQ(*cached, words) << device.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomReqSweep,
                         ::testing::Values(101, 202, 303, 404));

// ------------------------------------------------- CRC slicing oracle ---

class SlicedCrcProperty : public ::testing::TestWithParam<u64> {};

TEST_P(SlicedCrcProperty, MatchesBitSerialOracleOnRandomStreams) {
  Rng rng{GetParam()};
  ConfigCrc sliced;
  BitSerialConfigCrc oracle;
  for (int step = 0; step < 4000; ++step) {
    const u32 data = static_cast<u32>(rng());
    const auto reg = static_cast<ConfigReg>(rng() % 32);
    sliced.update(reg, data);
    oracle.update(reg, data);
    ASSERT_EQ(sliced.value(), oracle.value()) << "step " << step;
    if (rng.below(64) == 0) {
      sliced.reset();
      oracle.reset();
      ASSERT_EQ(sliced.value(), oracle.value());
    }
  }
}

TEST_P(SlicedCrcProperty, SpanUpdateEqualsPerWordUpdates) {
  Rng rng{GetParam() ^ 0x5Fa2u};
  for (int trial = 0; trial < 32; ++trial) {
    std::vector<u32> burst(1 + rng.below(600));
    for (u32& word : burst) word = static_cast<u32>(rng());
    const auto reg = static_cast<ConfigReg>(rng() % 32);
    ConfigCrc span_crc;
    ConfigCrc word_crc;
    BitSerialConfigCrc oracle;
    span_crc.update_span(reg, burst);
    for (const u32 word : burst) {
      word_crc.update(reg, word);
      oracle.update(reg, word);
    }
    ASSERT_EQ(span_crc.value(), word_crc.value());
    ASSERT_EQ(span_crc.value(), oracle.value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlicedCrcProperty,
                         ::testing::Values(11, 22, 33, 44));

TEST(MonotoneProperty, MoreDemandNeverShrinksThePrr) {
  const Fabric& fabric = DeviceDb::instance().get("xc6vlx240t").fabric;
  PrmRequirements req;
  req.lut_ff_pairs = 100;
  u64 last_size = 0;
  for (int step = 0; step < 12; ++step) {
    const auto plan = find_prr(req, fabric);
    ASSERT_TRUE(plan.has_value()) << "step " << step;
    EXPECT_GE(plan->organization.size(), last_size);
    last_size = plan->organization.size();
    req.lut_ff_pairs += 700;
    req.dsps += 3;
  }
}

TEST(MonotoneProperty, BitstreamGrowsWithEveryColumnKind) {
  const FamilyTraits& t = traits(Family::kVirtex5);
  PrrOrganization base;
  base.h = 2;
  base.columns = ColumnDemand{3, 1, 1};
  const u64 base_bytes = bitstream_bytes(base, t);
  for (int kind = 0; kind < 3; ++kind) {
    PrrOrganization bigger = base;
    if (kind == 0) ++bigger.columns.clb_cols;
    if (kind == 1) ++bigger.columns.dsp_cols;
    if (kind == 2) ++bigger.columns.bram_cols;
    EXPECT_GT(bitstream_bytes(bigger, t), base_bytes) << kind;
  }
  PrrOrganization taller = base;
  ++taller.h;
  EXPECT_GT(bitstream_bytes(taller, t), base_bytes);
}

// ------------------------------------------------- simulator invariants ---

struct SimCase {
  SchedPolicy policy;
  StorageMedia media;
  u32 prrs;
};

class SimInvariants : public ::testing::TestWithParam<SimCase> {};

TEST_P(SimInvariants, ConservationAndOrdering) {
  const auto [policy, media, prrs] = GetParam();
  std::vector<PrmInfo> prms{PrmInfo{"a", {}, 83064},
                            PrmInfo{"b", {}, 157296},
                            PrmInfo{"c", {}, 18040}};
  WorkloadParams wp;
  wp.count = 64;
  wp.seed = 7;
  const auto tasks = make_workload(wp);
  SimConfig config;
  config.policy = policy;
  config.media = media;
  config.prr_count = prrs;
  const SimResult result = simulate(prms, tasks, config);
  // Conservation: every task is dispatched exactly once.
  EXPECT_EQ(result.reconfig_count + result.reuse_hits, tasks.size());
  EXPECT_EQ(result.tasks.size(), tasks.size());
  double exec_total = 0;
  for (const HwTask& task : tasks) exec_total += task.exec_s;
  // Makespan bounds: at least the serial-execution lower bound divided by
  // pool size; at most serial execution plus all reconfigurations.
  EXPECT_GE(result.makespan_s * prrs * 1.0001, exec_total / 4);
  EXPECT_LE(result.makespan_s,
            exec_total + result.total_reconfig_s +
                tasks.back().arrival_s + 1.0);
  EXPECT_GE(result.prr_busy_fraction, 0.0);
  EXPECT_LE(result.prr_busy_fraction, 1.0 + 1e-9);
}

std::vector<SimCase> sim_cases() {
  std::vector<SimCase> cases;
  for (const SchedPolicy policy : kAllPolicies) {
    for (const StorageMedia media :
         {StorageMedia::kDdrSdram, StorageMedia::kCompactFlash}) {
      for (const u32 prrs : {1u, 3u}) {
        cases.push_back(SimCase{policy, media, prrs});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, SimInvariants,
                         ::testing::ValuesIn(sim_cases()));

// ----------------------------------------------- controller identities ---

TEST(ControllerIdentity, DmaEqualsMaxOfPhases) {
  const IcapModel icap = default_icap(Family::kVirtex5);
  const DmaIcapController dma{icap, 0.0};  // zero setup
  for (const StorageMedia media : kAllMedia) {
    for (const u64 bytes : {1000ull, 83064ull, 1000000ull}) {
      const ReconfigEstimate e = dma.estimate(bytes, media);
      EXPECT_NEAR(e.total_s, std::max(e.fetch_s, e.write_s), 1e-15);
    }
  }
}

TEST(ControllerIdentity, CpuEqualsSumOfPhases) {
  const IcapModel icap = default_icap(Family::kVirtex5);
  const CpuIcapController cpu{icap};
  const ReconfigEstimate e = cpu.estimate(83064, StorageMedia::kDdrSdram);
  EXPECT_NEAR(e.total_s, e.fetch_s + e.write_s + e.overhead_s, 1e-15);
}

TEST(ControllerIdentity, EstimatesScaleLinearly) {
  for (const auto& controller : standard_controllers(Family::kVirtex5)) {
    const double one = controller->estimate(100000, StorageMedia::kBram).total_s;
    const double two = controller->estimate(200000, StorageMedia::kBram).total_s;
    // Up to the fixed setup overhead, time doubles with size.
    EXPECT_NEAR(two / one, 2.0, 0.05) << controller->name();
  }
}

}  // namespace
}  // namespace prcost
