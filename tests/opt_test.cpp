// Tests for the joint partition-schedule-floorplan optimizer: same-seed
// determinism, end-to-end cost verification, never-worse-than-greedy, and
// the shared substrate invariants the annealer relies on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "device/device_db.hpp"
#include "opt/layout.hpp"
#include "opt/moves.hpp"
#include "opt/optimizer.hpp"
#include "util/rng.hpp"

namespace prcost {
namespace {

const Device& lx110t() { return DeviceDb::instance().get("xc5vlx110t"); }

opt::OptimizeOptions small_options() {
  opt::OptimizeOptions options;
  options.seed = 7;
  options.rounds = 12;
  options.proposals_per_round = 6;
  return options;
}

TEST(PrmFleet, SameSeedSameFleet) {
  const opt::OptInstance a = opt::make_prm_fleet(lx110t(), 80, 0, 5);
  const opt::OptInstance b = opt::make_prm_fleet(lx110t(), 80, 0, 5);
  ASSERT_EQ(a.prms.size(), b.prms.size());
  ASSERT_EQ(a.group_count, b.group_count);
  for (std::size_t i = 0; i < a.prms.size(); ++i) {
    EXPECT_EQ(a.prms[i].req.lut_ff_pairs, b.prms[i].req.lut_ff_pairs);
    EXPECT_EQ(a.group_of[i], b.group_of[i]);
  }
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t t = 0; t < a.tasks.size(); ++t) {
    EXPECT_EQ(a.tasks[t].exec_s, b.tasks[t].exec_s);
  }
}

TEST(GroupRequirements, ElementWiseMaxOverMembers) {
  opt::OptInstance instance;
  instance.device = &lx110t();
  instance.group_count = 2;
  PrmRequirements a;
  a.lut_ff_pairs = 100;
  a.dsps = 4;
  PrmRequirements b;
  b.lut_ff_pairs = 900;
  b.brams = 2;
  PrmRequirements other;
  other.lut_ff_pairs = 5000;
  instance.prms = {PrmInfo{"a", a, 0}, PrmInfo{"b", b, 0},
                   PrmInfo{"other", other, 0}};
  instance.group_of = {0, 0, 1};
  const PrmRequirements merged = opt::group_requirements(instance, 0);
  EXPECT_EQ(merged.lut_ff_pairs, 900u);
  EXPECT_EQ(merged.dsps, 4u);
  EXPECT_EQ(merged.brams, 2u);
  EXPECT_EQ(opt::group_requirements(instance, 1).lut_ff_pairs, 5000u);
}

TEST(JointOptimizer, SameSeedSameResult) {
  const opt::OptInstance instance = opt::make_prm_fleet(lx110t(), 60, 0, 7);
  const opt::OptimizeOptions options = small_options();
  const opt::OptimizeResult a = opt::JointOptimizer{instance, options}.run();
  const opt::OptimizeResult b = opt::JointOptimizer{instance, options}.run();
  EXPECT_EQ(a.proposals, b.proposals);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.accepted_by_kind, b.accepted_by_kind);
  EXPECT_EQ(a.greedy.cost, b.greedy.cost);
  EXPECT_EQ(a.best.cost, b.best.cost);
  ASSERT_EQ(a.placements.size(), b.placements.size());
  for (std::size_t i = 0; i < a.placements.size(); ++i) {
    EXPECT_EQ(a.placements[i].name, b.placements[i].name);
    EXPECT_EQ(a.placements[i].first_col, b.placements[i].first_col);
    EXPECT_EQ(a.placements[i].first_row, b.placements[i].first_row);
    EXPECT_EQ(a.placements[i].plan.bitstream.total_bytes,
              b.placements[i].plan.bitstream.total_bytes);
  }
}

TEST(JointOptimizer, ResultIndependentOfWorkerCount) {
  const opt::OptInstance instance = opt::make_prm_fleet(lx110t(), 60, 0, 7);
  opt::OptimizeOptions serial = small_options();
  serial.workers = 1;
  opt::OptimizeOptions wide = small_options();
  wide.workers = 4;
  const opt::OptimizeResult a = opt::JointOptimizer{instance, serial}.run();
  const opt::OptimizeResult b = opt::JointOptimizer{instance, wide}.run();
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.best.cost, b.best.cost);
  EXPECT_EQ(a.best.rejected_prms, b.best.rejected_prms);
}

TEST(JointOptimizer, CostVerifiedAndNeverWorseThanGreedy) {
  for (const u64 seed : {7ull, 19ull, 42ull}) {
    opt::OptimizeOptions options = small_options();
    options.seed = seed;
    const opt::OptInstance instance =
        opt::make_prm_fleet(lx110t(), 80, 0, seed);
    const opt::OptimizeResult result =
        opt::JointOptimizer{instance, options}.run();
    EXPECT_TRUE(result.cost_verified) << "seed " << seed;
    EXPECT_LE(result.best.cost, result.greedy.cost) << "seed " << seed;
    EXPECT_LE(result.best.rejected_prms, result.greedy.rejected_prms)
        << "seed " << seed;
  }
}

TEST(JointOptimizer, FinalLayoutIsConsistent) {
  const opt::OptInstance instance = opt::make_prm_fleet(lx110t(), 60, 0, 7);
  const opt::OptimizeResult result =
      opt::JointOptimizer{instance, small_options()}.run();
  // Rebuild the result layout and check the non-overlap invariant.
  Floorplanner fp{instance.device->fabric};
  for (const opt::OptInstance::Rect& rect : instance.reserved) {
    fp.reserve(rect.first_col, rect.width, rect.first_row, rect.height);
  }
  for (const PlacedPrr& placed : result.placements) {
    EXPECT_TRUE(fp.place_plan(placed.name, placed.plan).has_value())
        << placed.name;
  }
  opt::Layout layout{fp, instance.device->fabric};
  EXPECT_TRUE(layout.consistent());
}

TEST(Evaluate, RejectionsDominateCost) {
  const opt::OptInstance instance = opt::make_prm_fleet(lx110t(), 40, 0, 3);
  const opt::OptimizeOptions options = small_options();
  const opt::PlanState state = opt::greedy_plan(instance, options);
  const opt::CostBreakdown cost = opt::evaluate(instance, state, options);
  EXPECT_EQ(cost.placed_groups + 0u, state.fp.placements().size());
  EXPECT_GE(cost.cost, options.reject_weight *
                           static_cast<double>(cost.rejected_prms));
  EXPECT_GE(cost.makespan_s, cost.busy_max_s);
  EXPECT_GE(cost.makespan_s, cost.icap_s);
}

TEST(Evaluate, FaultRateInflatesMakespan) {
  const opt::OptInstance instance = opt::make_prm_fleet(lx110t(), 40, 0, 3);
  opt::OptimizeOptions clean = small_options();
  opt::OptimizeOptions faulty = small_options();
  faulty.fault_rate = 0.3;
  const opt::PlanState state = opt::greedy_plan(instance, clean);
  const opt::CostBreakdown base = opt::evaluate(instance, state, clean);
  const opt::CostBreakdown degraded = opt::evaluate(instance, state, faulty);
  EXPECT_GT(degraded.icap_s, base.icap_s);
  EXPECT_GE(degraded.makespan_s, base.makespan_s);
}

TEST(Moves, ProposalsAreDeterministic) {
  const opt::OptInstance instance = opt::make_prm_fleet(lx110t(), 60, 0, 7);
  const opt::OptimizeOptions options = small_options();
  opt::PlanState state_a = opt::greedy_plan(instance, options);
  opt::PlanState state_b = opt::greedy_plan(instance, options);
  const std::vector<opt::GroupSpec> groups = opt::group_specs(instance);
  opt::Layout layout_a{state_a.fp, instance.device->fabric};
  opt::Layout layout_b{state_b.fp, instance.device->fabric};
  Rng rng_a{9};
  Rng rng_b{9};
  for (int i = 0; i < 32; ++i) {
    const auto move_a = opt::propose_move(layout_a, groups, rng_a);
    const auto move_b = opt::propose_move(layout_b, groups, rng_b);
    ASSERT_EQ(move_a.has_value(), move_b.has_value());
    if (!move_a) continue;
    EXPECT_EQ(move_a->kind, move_b->kind);
    EXPECT_EQ(move_a->group_a, move_b->group_a);
    EXPECT_EQ(move_a->group_b, move_b->group_b);
    EXPECT_EQ(move_a->target.first_col, move_b->target.first_col);
    EXPECT_EQ(move_a->target_row, move_b->target_row);
  }
}

}  // namespace
}  // namespace prcost
