#include <gtest/gtest.h>

#include "bitstream/compress.hpp"
#include "bitstream/generator.hpp"
#include "cost/prr_search.hpp"
#include "device/device_db.hpp"
#include "paperdata/paper_dataset.hpp"
#include "util/error.hpp"

namespace prcost {
namespace {

TEST(Rle, RoundTripsArbitraryStreams) {
  const std::vector<u32> streams[] = {
      {},
      {42},
      {7, 7, 7, 7},
      {1, 2, 3, 4, 5},
      {0, 0, 1, 0, 0, 0, 2, 2},
  };
  for (const auto& stream : streams) {
    EXPECT_EQ(rle_decompress(rle_compress(stream)), stream);
  }
}

TEST(Rle, CompressesRuns) {
  const std::vector<u32> zeros(1000, 0);
  const CompressionStats stats = measure_rle(zeros);
  EXPECT_EQ(stats.compressed_words, 2u);
  EXPECT_LT(stats.ratio(), 0.01);
}

TEST(Rle, ExpandsIncompressibleData) {
  std::vector<u32> distinct(100);
  for (u32 i = 0; i < 100; ++i) distinct[i] = i;
  EXPECT_GT(measure_rle(distinct).ratio(), 1.0);
}

TEST(Rle, DecompressRejectsOddStreams) {
  const std::vector<u32> odd{1, 2, 3};
  EXPECT_THROW(rle_decompress(odd), ParseError);
}

TEST(Frames, AnalyzeCountsDuplicatesAndZeros) {
  constexpr u32 kFrame = 4;
  // Frames: A A 0 B 0 -> total 5, unique 3 (A, 0, B), zero 2.
  const std::vector<u32> payload{1, 2, 3, 4, 1, 2, 3, 4, 0, 0, 0, 0,
                                 9, 9, 9, 9, 0, 0, 0, 0};
  const FrameRedundancy r = analyze_frames(payload, kFrame);
  EXPECT_EQ(r.total_frames, 5u);
  EXPECT_EQ(r.unique_frames, 3u);
  EXPECT_EQ(r.zero_frames, 2u);
  EXPECT_LT(r.mfwr_ratio(kFrame), 1.0);
  EXPECT_THROW(analyze_frames(payload, 3), ContractError);
  EXPECT_THROW(analyze_frames(payload, 0), ContractError);
}

TEST(Frames, MfwrRatioBounds) {
  FrameRedundancy r;
  r.total_frames = 10;
  r.unique_frames = 10;
  EXPECT_DOUBLE_EQ(r.mfwr_ratio(41), 1.0);
  r.unique_frames = 1;
  EXPECT_LT(r.mfwr_ratio(41), 0.2);
  EXPECT_DOUBLE_EQ(FrameRedundancy{}.mfwr_ratio(41), 1.0);
}

TEST(Payload, KindsOrderCompressibility) {
  // zeros compress best, sparse in between, random not at all.
  const auto& rec = paperdata::table5_record("FIR", "xc5vlx110t");
  const Fabric& fabric = DeviceDb::instance().get(rec.device).fabric;
  const auto plan = find_prr(rec.req, fabric);
  const auto ratio_for = [&](PayloadKind kind) {
    GeneratorOptions options;
    options.payload = kind;
    const auto words = generate_bitstream(*plan, rec.family, options);
    return measure_rle(words).ratio();
  };
  const double zeros = ratio_for(PayloadKind::kZeros);
  const double sparse = ratio_for(PayloadKind::kSparse);
  const double random = ratio_for(PayloadKind::kRandom);
  EXPECT_LT(zeros, sparse);
  EXPECT_LT(sparse, random);
  EXPECT_LT(zeros, 0.05);
  EXPECT_GT(random, 1.0);
}

TEST(Payload, SparseDefaultIsFarmCompatible) {
  // The default sparse payload lands in the compression regime FaRM's
  // hardware decompressor exploits (well below 1.0).
  const auto& rec = paperdata::table5_record("MIPS", "xc6vlx75t");
  const Fabric& fabric = DeviceDb::instance().get(rec.device).fabric;
  const auto plan = find_prr(rec.req, fabric);
  const auto words = generate_bitstream(*plan, rec.family);
  EXPECT_LT(measure_rle(words).ratio(), 0.9);
}

TEST(Frames, BitstreamAnalysisCoversAllBursts) {
  const auto& rec = paperdata::table5_record("MIPS", "xc5vlx110t");
  const Fabric& fabric = DeviceDb::instance().get(rec.device).fabric;
  const auto plan = find_prr(rec.req, fabric);
  GeneratorOptions options;
  options.payload = PayloadKind::kZeros;
  const auto words = generate_bitstream(*plan, rec.family, options);
  const FrameRedundancy r = analyze_bitstream_frames(words, rec.family);
  // config frames + BRAM-content frames, including the flush frames.
  const u64 expected =
      plan->organization.h *
      (plan->bitstream.config_frames_per_row +
       (plan->organization.columns.bram_cols > 0
            ? u64{plan->organization.columns.bram_cols} * 128 + 1
            : 0));
  EXPECT_EQ(r.total_frames, expected);
  EXPECT_EQ(r.unique_frames, 1u);  // everything is the zero frame
  EXPECT_EQ(r.zero_frames, r.total_frames);
}

}  // namespace
}  // namespace prcost
