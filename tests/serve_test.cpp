// serve::Server integration tests: a real daemon (event loop + dispatcher
// over real sockets) driven through serve::Client, in process. Covers the
// production behaviors the daemon claims: wire-contract parity with batch,
// per-connection response ordering under pipelining, malformed-line
// isolation, admission-control shedding, arrival-anchored deadlines,
// disconnect isolation, graceful drain, TCP + unix listeners, and the
// "metrics" scrape.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/json.hpp"

namespace prcost {
namespace {

std::string unique_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/prcost_serve_test." + std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

/// One running daemon per fixture instance: server on a background thread,
/// stopped and joined on teardown.
class ServeHarness {
 public:
  explicit ServeHarness(serve::ServerOptions options,
                        api::Engine::Options engine_options = {})
      : engine_(engine_options), server_(engine_, std::move(options)) {
    server_.start();
    thread_ = std::thread{[this] { server_.run(); }};
  }

  ~ServeHarness() {
    server_.stop();
    if (thread_.joinable()) thread_.join();
  }

  serve::Server& server() { return server_; }
  serve::Client connect() {
    return serve::Client::connect_unix(server_.options().unix_path);
  }

 private:
  api::Engine engine_;
  serve::Server server_;
  std::thread thread_;
};

serve::ServerOptions unix_options() {
  serve::ServerOptions options;
  options.unix_path = unique_socket_path();
  return options;
}

std::string error_code_of(const std::string& response) {
  const Json envelope = Json::parse(response);
  const Json* error = envelope.find("error");
  if (error == nullptr) return "";
  return error->find("code")->as_string();
}

TEST(Serve, MixedOpsMatchBatchWireContract) {
  ServeHarness harness{unix_options()};
  serve::Client client = harness.connect();

  const Json pong = Json::parse(client.request(R"({"op":"ping"})"));
  EXPECT_TRUE(pong.find("result")->find("pong")->as_bool());

  const Json plan = Json::parse(client.request(
      R"({"op":"plan","device":"xc5vlx110t","prm":"fir","cross_check":false,"id":7})"));
  EXPECT_NE(plan.find("result"), nullptr);
  EXPECT_EQ(plan.find("id")->as_double(), 7.0);  // id echoed like batch

  const Json devices = Json::parse(client.request(R"({"op":"devices"})"));
  EXPECT_NE(devices.find("result"), nullptr);

  EXPECT_EQ(error_code_of(client.request(R"({"op":"nope"})")), "not_found");
}

TEST(Serve, MalformedLineAnswersParseErrorAndConnectionStaysUp) {
  ServeHarness harness{unix_options()};
  serve::Client client = harness.connect();

  EXPECT_EQ(error_code_of(client.request("this is not json")), "parse");
  // Same connection keeps working - failure isolation is per request.
  const Json pong = Json::parse(client.request(R"({"op":"ping"})"));
  EXPECT_TRUE(pong.find("result")->find("pong")->as_bool());
}

TEST(Serve, PipelinedResponsesPreserveInputOrder) {
  ServeHarness harness{unix_options()};
  serve::Client client = harness.connect();

  constexpr int kRequests = 40;
  for (int i = 0; i < kRequests; ++i) {
    client.send_line(R"({"op":"ping","id":)" + std::to_string(i) + "}");
  }
  for (int i = 0; i < kRequests; ++i) {
    const auto response = client.recv_line();
    ASSERT_TRUE(response.has_value()) << "response " << i;
    const Json envelope = Json::parse(*response);
    EXPECT_EQ(envelope.find("id")->as_double(), static_cast<double>(i));
  }
}

TEST(Serve, ShutdownWriteDrainsResponsesThenOrderlyEof) {
  ServeHarness harness{unix_options()};
  serve::Client client = harness.connect();

  // Half-close (nc-style): outstanding responses still arrive, then EOF.
  client.send_line(R"({"op":"ping","id":1})");
  client.send_line(R"({"op":"ping","id":2})");
  client.shutdown_write();
  const auto first = client.recv_line();
  const auto second = client.recv_line();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(Json::parse(*second).find("id")->as_double(), 2.0);
  EXPECT_FALSE(client.recv_line().has_value());  // orderly EOF
}

TEST(Serve, ZeroQueueShedsEverythingWithOverloadedCode) {
  serve::ServerOptions options = unix_options();
  options.max_queue = 0;  // deliberate brown-out mode
  ServeHarness harness{options};
  serve::Client client = harness.connect();

  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(error_code_of(client.request(R"({"op":"ping"})")),
              "overloaded");
  }
  EXPECT_EQ(harness.server().counters().shed, 5u);
  // Shedding answers immediately and keeps the connection healthy.
  EXPECT_EQ(harness.server().counters().responses, 5u);
}

TEST(Serve, ExpiredDeadlineAnswersDeadlineCode) {
  ServeHarness harness{unix_options()};
  serve::Client client = harness.connect();

  // deadline_ms:0 is expired by the time the dispatcher picks it up
  // (arrival-anchored), so the admission check fires before any work.
  EXPECT_EQ(error_code_of(client.request(
                R"({"op":"plan","device":"xc5vlx110t","prm":"fir","deadline_ms":0})")),
            "deadline");
  // A generous budget does not fire.
  EXPECT_EQ(error_code_of(client.request(
                R"({"op":"ping","deadline_ms":60000})")),
            "");
  // Expired requests are answered before the pool fan-out: they count as
  // expired, never as shed, and op/id are echoed like any dispatch.
  EXPECT_GE(harness.server().counters().expired, 1u);
  EXPECT_EQ(harness.server().counters().shed, 0u);
  const Json envelope = Json::parse(client.request(
      R"({"op":"ping","id":42,"deadline_ms":0})"));
  EXPECT_EQ(envelope.find("error")->find("code")->as_string(), "deadline");
  EXPECT_EQ(envelope.find("op")->as_string(), "ping");
  EXPECT_EQ(envelope.find("id")->as_double(), 42.0);
}

TEST(Serve, ExpiredDeadlineUnderOverloadIsDeadlineNotOverloaded) {
  serve::ServerOptions options = unix_options();
  options.max_queue = 0;  // every request hits the shed path
  ServeHarness harness{options};
  serve::Client client = harness.connect();

  // Already past its own deadline when it arrives at a full queue: the
  // client must see the stable "deadline" code, not "overloaded".
  EXPECT_EQ(error_code_of(client.request(
                R"({"op":"ping","deadline_ms":0})")),
            "deadline");
  // With budget remaining, overload still sheds with "overloaded".
  EXPECT_EQ(error_code_of(client.request(
                R"({"op":"ping","deadline_ms":60000})")),
            "overloaded");
  // Deadline-free requests shed as before.
  EXPECT_EQ(error_code_of(client.request(R"({"op":"ping"})")), "overloaded");
  EXPECT_EQ(harness.server().counters().expired, 1u);
  EXPECT_EQ(harness.server().counters().shed, 2u);
}

TEST(Serve, ClientDisconnectMidRequestLeavesServerServing) {
  ServeHarness harness{unix_options()};
  {
    serve::Client doomed = harness.connect();
    // In-flight work when the client vanishes: response is discarded, the
    // daemon must not care.
    doomed.send_line(
        R"({"op":"explore","device":"xc6vlx240t","prms":["fir","sdram","uart"],"workers":1})");
  }  // closed without reading the response
  serve::Client client = harness.connect();
  for (int i = 0; i < 3; ++i) {
    const Json pong = Json::parse(client.request(R"({"op":"ping"})"));
    EXPECT_TRUE(pong.find("result")->find("pong")->as_bool());
  }
}

TEST(Serve, GracefulDrainFinishesInFlightThenClosesConnections) {
  ServeHarness harness{unix_options()};
  serve::Client client = harness.connect();

  // Admitted work completes across the drain.
  const Json before = Json::parse(client.request(R"({"op":"ping"})"));
  EXPECT_TRUE(before.find("result")->find("pong")->as_bool());

  harness.server().stop();
  // After the drain the connection is closed in an orderly way.
  EXPECT_FALSE(client.recv_line().has_value());

  const serve::Server::Counters totals = harness.server().counters();
  EXPECT_EQ(totals.requests, totals.responses);
}

TEST(Serve, TcpListenerBindsEphemeralPortAndServes) {
  serve::ServerOptions options;  // TCP only, no unix listener
  options.tcp_port = 0;
  ServeHarness harness{options};
  const int port = harness.server().tcp_port();
  ASSERT_GT(port, 0);

  serve::Client client = serve::Client::connect_tcp("127.0.0.1", port);
  const Json pong = Json::parse(client.request(R"({"op":"ping"})"));
  EXPECT_TRUE(pong.find("result")->find("pong")->as_bool());
}

TEST(Serve, MetricsOpScrapesLiveOpenMetricsRegistry) {
  ServeHarness harness{unix_options()};
  serve::Client client = harness.connect();

  client.request(R"({"op":"ping"})");  // ensure serve.* counters exist
  const Json envelope = Json::parse(client.request(R"({"op":"metrics"})"));
  const std::string& scrape =
      envelope.find("result")->find("openmetrics")->as_string();
  EXPECT_NE(scrape.find("prcost_serve_requests_total"), std::string::npos);
  EXPECT_NE(scrape.find("# EOF"), std::string::npos);
}

TEST(Serve, CountersTallyAcceptsRequestsResponses) {
  ServeHarness harness{unix_options()};
  {
    serve::Client a = harness.connect();
    serve::Client b = harness.connect();
    a.request(R"({"op":"ping"})");
    b.request(R"({"op":"ping"})");
    a.request(R"({"op":"ping"})");
  }
  const serve::Server::Counters totals = harness.server().counters();
  EXPECT_EQ(totals.accepted, 2u);
  EXPECT_EQ(totals.requests, 3u);
  EXPECT_EQ(totals.responses, 3u);
  EXPECT_EQ(totals.shed, 0u);
}

}  // namespace
}  // namespace prcost
