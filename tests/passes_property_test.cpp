// Property-based testing of the optimization passes: for randomly
// generated combinational/sequential netlists, every pass pipeline must
// preserve observable behaviour (output-port values over random input
// vectors and clock cycles) while never increasing cell counts.
#include <gtest/gtest.h>

#include <vector>

#include "netlist/logic.hpp"
#include "synth/passes.hpp"
#include "tests/netlist_sim.hpp"
#include "util/rng.hpp"

namespace prcost {
namespace {

using prcost::testing::NetlistSim;

/// A random netlist plus handles to its ports.
struct RandomDesign {
  Netlist nl{"fuzz"};
  std::vector<NetId> inputs;
  std::vector<CellId> output_ports;  ///< kOutput cells (stable across passes)
};

/// Build a random DAG of LUTs/FFs/muxes over `input_count` inputs with
/// sprinkled constants (const-prop fodder), duplicate subtrees (dedup
/// fodder), inverters (folding fodder) and CE registers (absorption
/// fodder).
RandomDesign make_random_design(u64 seed, u32 input_count, u32 cell_budget) {
  RandomDesign design;
  Netlist& nl = design.nl;
  LogicBuilder lb{nl};
  Rng rng{seed};

  std::vector<NetId> pool;
  for (u32 i = 0; i < input_count; ++i) {
    const NetId in = nl.input("in" + std::to_string(i));
    design.inputs.push_back(in);
    pool.push_back(in);
  }
  pool.push_back(nl.const_net(false));
  pool.push_back(nl.const_net(true));

  const auto pick = [&]() -> NetId { return pool[rng.below(pool.size())]; };

  for (u32 c = 0; c < cell_budget; ++c) {
    switch (rng.below(8)) {
      case 0: pool.push_back(lb.land(pick(), pick())); break;
      case 1: pool.push_back(lb.lor(pick(), pick())); break;
      case 2: pool.push_back(lb.lxor(pick(), pick())); break;
      case 3: pool.push_back(lb.lnot(pick())); break;
      case 4: pool.push_back(lb.mux2(pick(), pick(), pick())); break;
      case 5: pool.push_back(nl.ff(pick())); break;
      case 6: {
        // Duplicate an existing LUT verbatim (dedup fodder).
        const NetId a = pick();
        const NetId b = pick();
        pool.push_back(lb.land(a, b));
        pool.push_back(lb.land(a, b));
        break;
      }
      case 7: {
        // CE register (absorption fodder).
        const Bus d{pick()};
        pool.push_back(lb.register_bus_ce(d, pick())[0]);
        break;
      }
    }
  }
  // Expose a sample of the pool as outputs so DCE has something to keep.
  // Observation goes through the port cells: passes may rewire the port's
  // input net (const-prop, dedup), which is exactly what must stay
  // behaviour-equivalent.
  for (u32 o = 0; o < 8; ++o) {
    const NetId net = pool[pool.size() - 1 - o * 3 % pool.size()];
    design.output_ports.push_back(nl.output("out" + std::to_string(o), net));
  }
  nl.validate();
  return design;
}

/// Observable behaviour: output values over `cycles` clock cycles under a
/// deterministic input stimulus.
std::vector<u64> observe(const RandomDesign& design, u64 stimulus_seed,
                         u32 cycles) {
  NetlistSim sim{design.nl};
  Rng rng{stimulus_seed};
  std::vector<u64> trace;
  for (u32 cycle = 0; cycle < cycles; ++cycle) {
    for (const NetId in : design.inputs) {
      sim.set_input(in, rng.chance(0.5));
    }
    u64 snapshot = 0;
    for (std::size_t o = 0; o < design.output_ports.size(); ++o) {
      const NetId net = design.nl.cell(design.output_ports[o]).inputs[0];
      if (sim.eval(net)) snapshot |= u64{1} << o;
    }
    trace.push_back(snapshot);
    sim.step();
  }
  return trace;
}

class PassFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(PassFuzz, SynthesisPassesPreserveBehaviour) {
  const u64 seed = GetParam();
  RandomDesign design = make_random_design(seed, 6, 60);
  const auto before = observe(design, seed * 31 + 7, 8);
  const u64 cells_before = design.nl.stats().total_cells();
  run_synthesis_passes(design.nl);
  const auto after = observe(design, seed * 31 + 7, 8);
  EXPECT_EQ(before, after) << "seed " << seed;
  EXPECT_LE(design.nl.stats().total_cells(), cells_before);
}

TEST_P(PassFuzz, ImplementationPassesPreserveBehaviour) {
  const u64 seed = GetParam();
  RandomDesign design = make_random_design(seed, 6, 60);
  const auto before = observe(design, seed * 131 + 3, 8);
  run_implementation_passes(design.nl);
  const auto after = observe(design, seed * 131 + 3, 8);
  EXPECT_EQ(before, after) << "seed " << seed;
}

TEST_P(PassFuzz, PassesReachFixpointAndStayValid) {
  const u64 seed = GetParam();
  RandomDesign design = make_random_design(seed, 5, 40);
  run_implementation_passes(design.nl);
  EXPECT_EQ(run_implementation_passes(design.nl), 0u) << "seed " << seed;
  design.nl.validate();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PassFuzz,
                         ::testing::Range<u64>(1, 33));  // 32 random designs

TEST(PassFuzz, LargerDesignsStillConverge) {
  RandomDesign design = make_random_design(99, 10, 400);
  const auto before = observe(design, 1234, 4);
  run_implementation_passes(design.nl);
  EXPECT_EQ(observe(design, 1234, 4), before);
}

}  // namespace
}  // namespace prcost
