// Online scheduler runtime: policies, placement pricing, prefetch, CPU
// fallback, trace replay, and the determinism contract (same seed+policy
// => identical Engine::schedule JSON regardless of worker count).
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.hpp"
#include "api/requests.hpp"
#include "bitstream/bitstream_cache.hpp"
#include "sched/generators.hpp"
#include "sched/scheduler.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace prcost {
namespace {

using api::Engine;

/// The scheduler never reads `req` (placement happens upstream), so unit
/// tests only need a name and a bitstream size.
PrmInfo make_prm(const std::string& name, u64 bytes) {
  return PrmInfo{name, PrmRequirements{}, bytes};
}

sched::Task make_task(const std::string& name, u32 prm, double arrival_s,
                      double exec_s, u32 priority = 0,
                      double deadline_s = 0) {
  return sched::Task{name, prm, arrival_s, exec_s, priority, deadline_s};
}

// -------------------------------------------------------------- policy --

TEST(SchedPolicy, NamesRoundTrip) {
  for (const auto policy : {sched::Policy::kFcfs, sched::Policy::kPriority,
                            sched::Policy::kEdf}) {
    EXPECT_EQ(sched::parse_policy(sched::policy_name(policy)), policy);
  }
  EXPECT_THROW(sched::parse_policy("round-robin"), UsageError);
}

// ----------------------------------------------------------------- run --

TEST(SchedRun, ResidentPrmIsReusedWithoutReconfiguration) {
  const std::vector<PrmInfo> prms = {make_prm("a", 100'000)};
  std::vector<sched::Task> tasks = {
      make_task("t0", 0, 0.0, 1e-3),
      make_task("t1", 0, 1.0, 1e-3),  // slot already holds PRM a
  };
  sched::SchedulerConfig config;
  config.slot_count = 1;
  const sched::Report report = sched::run(prms, tasks, config);
  ASSERT_EQ(report.tasks.size(), 2u);
  EXPECT_TRUE(report.tasks[0].reconfigured);
  EXPECT_FALSE(report.tasks[1].reconfigured);
  EXPECT_EQ(report.reuse_hits, 1u);
  EXPECT_EQ(report.reconfig_count, 1u);
  EXPECT_DOUBLE_EQ(report.tasks[1].reconfig_s, 0.0);
  EXPECT_DOUBLE_EQ(report.tasks[1].start_s, 1.0);
}

TEST(SchedRun, PriorityPolicyDispatchesUrgentTasksFirst) {
  const std::vector<PrmInfo> prms = {make_prm("a", 100'000)};
  // All arrive together on one slot: priority order is B, C, A.
  std::vector<sched::Task> tasks = {
      make_task("A", 0, 0.0, 1e-3, 1),
      make_task("B", 0, 0.0, 1e-3, 5),
      make_task("C", 0, 0.0, 1e-3, 3),
  };
  sched::SchedulerConfig config;
  config.slot_count = 1;
  config.policy = sched::Policy::kPriority;
  const sched::Report report = sched::run(prms, tasks, config);
  ASSERT_EQ(report.tasks.size(), 3u);
  EXPECT_LT(report.tasks[1].start_s, report.tasks[2].start_s);
  EXPECT_LT(report.tasks[2].start_s, report.tasks[0].start_s);
}

TEST(SchedRun, EdfPolicyDispatchesEarliestDeadlineFirst) {
  const std::vector<PrmInfo> prms = {make_prm("a", 100'000)};
  // Deadlines 0.9 / 0.2 / 0.5; the no-deadline task D sorts last.
  std::vector<sched::Task> tasks = {
      make_task("A", 0, 0.0, 1e-3, 0, 0.9),
      make_task("B", 0, 0.0, 1e-3, 0, 0.2),
      make_task("C", 0, 0.0, 1e-3, 0, 0.5),
      make_task("D", 0, 0.0, 1e-3, 0, 0.0),
  };
  sched::SchedulerConfig config;
  config.slot_count = 1;
  config.policy = sched::Policy::kEdf;
  const sched::Report report = sched::run(prms, tasks, config);
  ASSERT_EQ(report.tasks.size(), 4u);
  EXPECT_LT(report.tasks[1].start_s, report.tasks[2].start_s);
  EXPECT_LT(report.tasks[2].start_s, report.tasks[0].start_s);
  EXPECT_LT(report.tasks[0].start_s, report.tasks[3].start_s);
}

TEST(SchedRun, RejectsEmptySlotPoolAndUnknownPrm) {
  const std::vector<PrmInfo> prms = {make_prm("a", 100'000)};
  std::vector<sched::Task> tasks = {make_task("t", 0, 0.0, 1e-3)};
  sched::SchedulerConfig empty;
  empty.slot_count = 0;
  EXPECT_THROW(sched::run(prms, tasks, empty), ContractError);
  std::vector<sched::Task> bad = {make_task("t", 5, 0.0, 1e-3)};
  EXPECT_THROW(sched::run(prms, bad, sched::SchedulerConfig{}),
               ContractError);
}

TEST(SchedRun, CpuFallbackRescuesDoomedDeadline) {
  // 4 MB over DMA-ICAP takes ~10 ms, so hardware cannot make the 3 ms
  // deadline; the CPU path (2x slowdown on a 1 ms task) can.
  const std::vector<PrmInfo> prms = {make_prm("big", 4'000'000)};
  std::vector<sched::Task> tasks = {
      make_task("t", 0, 0.0, 1e-3, 0, 3e-3)};
  sched::SchedulerConfig config;
  config.slot_count = 1;
  config.cpu_workers = 1;
  config.cpu_slowdown = 2.0;
  const sched::Report report = sched::run(prms, tasks, config);
  ASSERT_EQ(report.tasks.size(), 1u);
  EXPECT_TRUE(report.tasks[0].cpu_fallback);
  EXPECT_FALSE(report.tasks[0].reconfigured);
  EXPECT_FALSE(report.tasks[0].deadline_miss);
  EXPECT_EQ(report.cpu_fallbacks, 1u);
  EXPECT_EQ(report.reconfig_count, 0u);

  // Without a CPU pool the task has to take the doomed hardware slot.
  config.cpu_workers = 0;
  const sched::Report hw_only = sched::run(prms, tasks, config);
  EXPECT_FALSE(hw_only.tasks[0].cpu_fallback);
  EXPECT_TRUE(hw_only.tasks[0].reconfigured);
  EXPECT_TRUE(hw_only.tasks[0].deadline_miss);
}

TEST(SchedRun, FaultRateInflatesReconfigurationTime) {
  const std::vector<PrmInfo> prms = {make_prm("a", 1'000'000)};
  std::vector<sched::Task> tasks = {make_task("t", 0, 0.0, 1e-3)};
  sched::SchedulerConfig config;
  config.slot_count = 1;
  const sched::Report clean = sched::run(prms, tasks, config);
  config.fault_rate = 0.2;
  const sched::Report faulty = sched::run(prms, tasks, config);
  EXPECT_GT(faulty.tasks[0].reconfig_s, clean.tasks[0].reconfig_s);
}

TEST(SchedRun, PrefetchWarmsLaterReconfigurations) {
  // Two PRMs alternating on one slot: every dispatch reconfigures, and
  // each PRM recurs every 2 ms (500 Hz), far above the 100 Hz threshold.
  const std::vector<PrmInfo> prms = {make_prm("a", 200'000),
                                     make_prm("b", 200'000)};
  std::vector<sched::Task> tasks;
  for (u32 i = 0; i < 40; ++i) {
    tasks.push_back(
        make_task("t" + std::to_string(i), i % 2, i * 1e-3, 2e-4));
  }
  sched::SchedulerConfig config;
  config.slot_count = 1;
  const sched::Report cold = sched::run(prms, tasks, config);

  u32 hook_calls = 0;
  config.prefetch_rate_hz = 100.0;
  config.prefetch_hook = [&hook_calls](u32) { ++hook_calls; };
  const sched::Report warm = sched::run(prms, tasks, config);

  EXPECT_EQ(warm.prefetches_issued, 2u);  // once per PRM
  EXPECT_EQ(hook_calls, 2u);
  EXPECT_GT(warm.prefetched_reconfigs, 0u);
  EXPECT_LT(warm.total_reconfig_s, cold.total_reconfig_s);
  EXPECT_EQ(cold.prefetches_issued, 0u);
  EXPECT_EQ(cold.prefetched_reconfigs, 0u);
}

TEST(SchedRun, SameInputProducesIdenticalReport) {
  const std::vector<PrmInfo> prms = {make_prm("a", 300'000),
                                     make_prm("b", 150'000),
                                     make_prm("c", 500'000)};
  sched::ArrivalParams params;
  params.count = 120;
  params.prm_count = 3;
  params.deadline_factor = 10.0;
  params.seed = 7;
  const std::vector<sched::Task> tasks = sched::make_bursty(params);
  sched::SchedulerConfig config;
  config.slot_count = 2;
  config.policy = sched::Policy::kEdf;
  config.prefetch_rate_hz = 50.0;
  const sched::Report a = sched::run(prms, tasks, config);
  const sched::Report b = sched::run(prms, tasks, config);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.total_reconfig_s, b.total_reconfig_s);
  EXPECT_EQ(a.reuse_hits, b.reuse_hits);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(a.prefetched_reconfigs, b.prefetched_reconfigs);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].slot, b.tasks[i].slot);
    EXPECT_EQ(a.tasks[i].start_s, b.tasks[i].start_s);
    EXPECT_EQ(a.tasks[i].finish_s, b.tasks[i].finish_s);
  }
}

// ---------------------------------------------------------- generators --

TEST(SchedGenerators, SameSeedIsDeterministic) {
  sched::ArrivalParams params;
  params.count = 50;
  params.seed = 13;
  const auto a = sched::make_poisson(params);
  const auto b = sched::make_poisson(params);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_s, b[i].arrival_s);
    EXPECT_EQ(a[i].exec_s, b[i].exec_s);
    EXPECT_EQ(a[i].prm, b[i].prm);
  }
  params.seed = 14;
  const auto c = sched::make_poisson(params);
  EXPECT_NE(a.front().arrival_s + a.front().exec_s,
            c.front().arrival_s + c.front().exec_s);
}

TEST(SchedGenerators, TraceRoundTripIsExact) {
  sched::ArrivalParams params;
  params.count = 64;
  params.deadline_factor = 8.0;
  params.seed = 21;
  const std::vector<sched::Task> tasks = sched::make_bursty(params);
  const std::vector<sched::Task> replayed =
      sched::parse_trace(sched::dump_trace(tasks));
  ASSERT_EQ(replayed.size(), tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(replayed[i].name, tasks[i].name);
    EXPECT_EQ(replayed[i].prm, tasks[i].prm);
    // Json doubles dump via shortest-round-trip to_chars, so replay is
    // bit-exact - the basis of the trace-determinism guarantee.
    EXPECT_EQ(replayed[i].arrival_s, tasks[i].arrival_s);
    EXPECT_EQ(replayed[i].exec_s, tasks[i].exec_s);
    EXPECT_EQ(replayed[i].priority, tasks[i].priority);
    EXPECT_EQ(replayed[i].deadline_s, tasks[i].deadline_s);
  }
}

TEST(SchedGenerators, ParseTraceNamesTheOffendingLine) {
  const std::string text =
      "{\"prm\":0,\"arrival_s\":0.0,\"exec_s\":1e-3}\n"
      "{\"prm\":1,\"arrival_s\":0.1}\n";  // missing exec_s
  try {
    sched::parse_trace(text);
    FAIL() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_NE(std::string{error.what()}.find("line 2"), std::string::npos);
  }
}

// -------------------------------------------------------------- engine --

api::ScheduleRequest engine_request() {
  api::ScheduleRequest request;
  request.device = "xc6vlx240t";
  request.prms = {"fir", "mips", "aes"};
  request.slots = 2;
  request.workload = "bursty";
  request.tasks = 80;
  request.seed = 5;
  request.deadline_factor = 12.0;
  request.prefetch_rate_hz = 25.0;
  request.detail = true;
  return request;
}

TEST(EngineSchedule, IdenticalJsonAcrossWorkerCounts) {
  const api::ScheduleRequest request = engine_request();
  std::string baseline;
  for (const std::size_t workers : {1u, 2u, 4u}) {
    Engine::Options options;
    options.workers = workers;
    const Engine engine{options};
    const std::string dump = to_json(engine.schedule(request)).dump();
    if (baseline.empty()) {
      baseline = dump;
    } else {
      EXPECT_EQ(dump, baseline) << "workers=" << workers;
    }
  }
  EXPECT_FALSE(baseline.empty());
}

TEST(EngineSchedule, TraceReplayMatchesGeneratorRun) {
  const api::ScheduleRequest generated = engine_request();
  // Rebuild the same workload the engine synthesizes, dump it as a JSONL
  // trace, and replay it: the two runs must be byte-identical.
  sched::ArrivalParams params;
  params.count = generated.tasks;
  params.prm_count = 3;
  params.deadline_factor = generated.deadline_factor;
  params.seed = generated.seed;
  api::ScheduleRequest replay = generated;
  replay.workload = "trace";
  replay.trace = sched::dump_trace(sched::make_bursty(params));
  const Engine engine;
  EXPECT_EQ(to_json(engine.schedule(replay)).dump(),
            to_json(engine.schedule(generated)).dump());
}

TEST(EngineSchedule, PrefetchAccountingMatchesBitstreamCache) {
  bitstream_cache_clear();
  const BitstreamCacheStats before = bitstream_cache_stats();
  const Engine engine;
  const api::ScheduleResponse response = engine.schedule(engine_request());
  const BitstreamCacheStats after = bitstream_cache_stats();
  // Each issued prefetch is exactly one generate_bitstream_cached call;
  // scheduling does no other bitstream generation.
  EXPECT_GE(response.prefetches_issued, 1u);
  EXPECT_LE(response.prefetches_issued, 3u);  // at most once per PRM
  EXPECT_EQ((after.hits + after.misses) - (before.hits + before.misses),
            response.prefetches_issued);
  EXPECT_GE(after.misses - before.misses, 1u);
}

TEST(EngineSchedule, RejectsUnknownWorkloadAndBadTracePrm) {
  const Engine engine;
  api::ScheduleRequest request = engine_request();
  request.workload = "adversarial";
  EXPECT_THROW(engine.schedule(request), UsageError);
  request.workload = "trace";
  request.trace = "{\"prm\":9,\"arrival_s\":0.0,\"exec_s\":1e-3}\n";
  EXPECT_THROW(engine.schedule(request), UsageError);
}

}  // namespace
}  // namespace prcost
