// Test-only netlist interpreter: functional simulation of the IR so logic
// builders and generators can be verified semantically, not just
// structurally. Combinational cells evaluate on demand; FFs read from an
// explicit state map and step() computes the next state.
#pragma once

#include <unordered_map>
#include <vector>

#include "netlist/logic.hpp"
#include "netlist/netlist.hpp"

namespace prcost::testing {

class NetlistSim {
 public:
  explicit NetlistSim(const Netlist& nl) : nl_(&nl) {}

  /// Drive a top-level input net.
  void set_input(NetId net, bool value) { inputs_[index(net)] = value; }

  /// Drive a bus with an integer (bit 0 = LSB).
  void set_bus(const Bus& bus, u64 value) {
    for (std::size_t i = 0; i < bus.size(); ++i) {
      set_input(bus[i], ((value >> i) & 1) != 0);
    }
  }

  /// Set an FF's current Q value.
  void set_state(CellId ff, bool value) { state_[index(ff)] = value; }

  /// Evaluate the value on `net` for the current inputs/state.
  bool eval(NetId net) {
    std::unordered_map<u32, bool> memo;
    std::unordered_map<u32, bool> visiting;
    return eval_net(net, memo, visiting);
  }

  /// Evaluate a bus to an integer.
  u64 eval_bus(const Bus& bus) {
    u64 value = 0;
    for (std::size_t i = 0; i < bus.size(); ++i) {
      if (eval(bus[i])) value |= u64{1} << i;
    }
    return value;
  }

  /// Clock edge: every FF captures its D input.
  void step() {
    std::unordered_map<u32, bool> next;
    std::unordered_map<u32, bool> memo;
    std::unordered_map<u32, bool> visiting;
    for (const CellId id : nl_->live_cells()) {
      const Cell& cell = nl_->cell(id);
      if (cell.kind != CellKind::kFf) continue;
      const bool d = cell.inputs[0] == kNoNet
                         ? false
                         : eval_net(cell.inputs[0], memo, visiting);
      if (cell.inputs.size() > 1) {
        // CE pin (attached by the clock-enable absorption pass):
        // q <= ce ? d : q.
        const bool ce = eval_net(cell.inputs[1], memo, visiting);
        next[index(id)] = ce ? d : ff_state(id);
      } else {
        next[index(id)] = d;
      }
    }
    for (const auto& [id, v] : next) state_[id] = v;
  }

  /// Current Q of an FF (default: its init value).
  bool ff_state(CellId ff) const {
    const auto it = state_.find(index(ff));
    if (it != state_.end()) return it->second;
    return nl_->cell(ff).param0 != 0;  // init value
  }

 private:
  bool eval_net(NetId net, std::unordered_map<u32, bool>& memo,
                std::unordered_map<u32, bool>& visiting) {
    if (net == kNoNet) return false;
    const auto input_it = inputs_.find(index(net));
    if (input_it != inputs_.end()) return input_it->second;
    const auto memo_it = memo.find(index(net));
    if (memo_it != memo.end()) return memo_it->second;
    const CellId driver = nl_->net(net).driver;
    if (driver == kNoCell) return false;
    if (visiting[index(net)]) return false;  // cut combinational loops
    visiting[index(net)] = true;

    const Cell& cell = nl_->cell(driver);
    bool value = false;
    switch (cell.kind) {
      case CellKind::kConst0: value = false; break;
      case CellKind::kConst1: value = true; break;
      case CellKind::kInput: value = false; break;  // undriven input
      case CellKind::kFf: value = ff_state(driver); break;
      case CellKind::kLut: {
        u32 idx = 0;
        for (std::size_t i = 0; i < cell.inputs.size(); ++i) {
          if (eval_net(cell.inputs[i], memo, visiting)) idx |= 1u << i;
        }
        value = tt::eval(cell.param0, idx);
        break;
      }
      case CellKind::kCarry: {
        // inputs: [cin, p0, g0, p1, g1, ...]; outputs: [s0..s_{n-1}, cout]
        // s_i = p_i ^ c_i;  c_{i+1} = p_i ? c_i : g_i.
        const std::size_t bits = cell.outputs.size() - 1;
        bool carry = eval_net(cell.inputs[0], memo, visiting);
        std::size_t wanted = cell.outputs.size();
        for (std::size_t o = 0; o < cell.outputs.size(); ++o) {
          if (cell.outputs[o] == net) wanted = o;
        }
        for (std::size_t i = 0; i < bits; ++i) {
          const bool p = eval_net(cell.inputs[1 + 2 * i], memo, visiting);
          const bool g = eval_net(cell.inputs[2 + 2 * i], memo, visiting);
          const bool sum = p != carry;
          if (wanted == i) {
            value = sum;
            break;
          }
          carry = p ? carry : g;
          if (wanted == bits && i == bits - 1) value = carry;
        }
        break;
      }
      case CellKind::kMul: {
        // Word-level multiply: reconstruct operands from the pin order.
        const auto aw = static_cast<std::size_t>(cell.param0);
        const auto bw = static_cast<std::size_t>(cell.param1);
        u64 a = 0, b = 0;
        for (std::size_t i = 0; i < aw; ++i) {
          if (eval_net(cell.inputs[i], memo, visiting)) a |= u64{1} << i;
        }
        for (std::size_t i = 0; i < bw; ++i) {
          if (eval_net(cell.inputs[aw + i], memo, visiting)) b |= u64{1} << i;
        }
        const u64 product = a * b;
        for (std::size_t o = 0; o < cell.outputs.size(); ++o) {
          if (cell.outputs[o] == net) value = ((product >> o) & 1) != 0;
        }
        break;
      }
      default:
        value = false;  // memories / DSP macros are opaque to the test sim
        break;
    }
    visiting[index(net)] = false;
    memo[index(net)] = value;
    return value;
  }

  const Netlist* nl_;
  std::unordered_map<u32, bool> inputs_;  ///< net index -> forced value
  std::unordered_map<u32, bool> state_;   ///< FF cell index -> Q
};

}  // namespace prcost::testing
