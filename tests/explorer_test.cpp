// Focused tests on explorer internals not covered by dse_test's
// end-to-end sweeps: bitstream accounting, controller plumbing, and
// infeasibility reporting.
#include <gtest/gtest.h>

#include "device/device_db.hpp"
#include "dse/explorer.hpp"
#include "paperdata/paper_dataset.hpp"

namespace prcost {
namespace {

std::vector<PrmInfo> paper_prms() {
  std::vector<PrmInfo> prms;
  for (const char* name : {"FIR", "MIPS", "SDRAM"}) {
    const auto& rec = paperdata::table5_record(name, "xc5vlx110t");
    prms.push_back(PrmInfo{name, rec.req, 0});
  }
  return prms;
}

TEST(Explorer, BitstreamTotalsSumPerPrmGroupSizes) {
  const Fabric& fabric = DeviceDb::instance().get("xc5vlx110t").fabric;
  WorkloadParams wp;
  wp.count = 10;
  const auto points = explore(paper_prms(), fabric, make_workload(wp));
  for (const DesignPoint& point : points) {
    if (!point.feasible) continue;
    u64 expected = 0;
    for (std::size_t g = 0; g < point.partition.size(); ++g) {
      expected += point.prr_plans[g].bitstream.total_bytes *
                  point.partition[g].size();
    }
    EXPECT_EQ(point.total_bitstream_bytes, expected);
    // Fewer groups -> at most as much total fabric as fully split, never
    // more than the sum of per-group sizes (tautology guard on area sum).
    u64 area = 0;
    for (const auto& plan : point.prr_plans) area += plan.organization.size();
    EXPECT_EQ(point.total_prr_area, area);
  }
}

TEST(Explorer, ControllerOverrideChangesMakespan) {
  const Fabric& fabric = DeviceDb::instance().get("xc5vlx110t").fabric;
  WorkloadParams wp;
  wp.count = 60;
  wp.mean_interarrival_s = 0.3e-3;  // reconfig-bound load
  const auto workload = make_workload(wp);
  ExploreOptions slow;
  slow.media = StorageMedia::kCompactFlash;
  ExploreOptions fast;
  fast.media = StorageMedia::kBram;
  const auto a = explore(paper_prms(), fabric, workload, slow);
  const auto b = explore(paper_prms(), fabric, workload, fast);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].feasible && b[i].feasible) {
      EXPECT_GT(a[i].makespan_s, b[i].makespan_s);
    }
  }
}

TEST(Explorer, OversizedPrmReportsInfeasible) {
  std::vector<PrmInfo> prms = paper_prms();
  PrmRequirements monster;
  monster.lut_ff_pairs = 200000;  // bigger than the device
  prms.push_back(PrmInfo{"monster", monster, 0});
  const Fabric& fabric = DeviceDb::instance().get("xc5vlx110t").fabric;
  WorkloadParams wp;
  wp.count = 5;
  wp.prm_count = 4;
  const auto points = explore(prms, fabric, make_workload(wp));
  for (const DesignPoint& point : points) {
    EXPECT_FALSE(point.feasible);
    EXPECT_FALSE(point.infeasible_reason.empty());
  }
}

TEST(Explorer, SingleGroupUsesSharedPrrSemantics) {
  // One group hosting all PRMs: its PRR must satisfy the element-wise max
  // of requirements.
  const Fabric& fabric = DeviceDb::instance().get("xc5vlx110t").fabric;
  WorkloadParams wp;
  wp.count = 5;
  ExploreOptions options;
  options.max_groups = 1;
  const auto points =
      explore(paper_prms(), fabric, make_workload(wp), options);
  ASSERT_EQ(points.size(), 1u);
  ASSERT_TRUE(points[0].feasible);
  const PrrPlan& plan = points[0].prr_plans[0];
  for (const PrmInfo& prm : paper_prms()) {
    EXPECT_GE(plan.available.dsps, prm.req.dsps);
    EXPECT_GE(plan.available.brams, prm.req.brams);
    EXPECT_GE(plan.available.clbs, clb_req(prm.req, fabric.traits()));
  }
}

}  // namespace
}  // namespace prcost
