// Unit tests for the paper's equations (1)-(23) with hand-computed values.
#include <gtest/gtest.h>

#include "cost/bitstream_model.hpp"
#include "cost/prr_model.hpp"
#include "util/error.hpp"

namespace prcost {
namespace {

const FamilyTraits& v5() { return traits(Family::kVirtex5); }
const FamilyTraits& v6() { return traits(Family::kVirtex6); }

// ------------------------------------------------------------- Eq. (1) ---

TEST(Eq1, ClbReqCeils) {
  // Paper Table V: FIR on Virtex-5, LUT_FF_req = 1300 -> CLB_req = 163.
  PrmRequirements req;
  req.lut_ff_pairs = 1300;
  EXPECT_EQ(clb_req(req, v5()), 163u);
  req.lut_ff_pairs = 1304;  // exactly 163 CLBs
  EXPECT_EQ(clb_req(req, v5()), 163u);
  req.lut_ff_pairs = 1305;
  EXPECT_EQ(clb_req(req, v5()), 164u);
  req.lut_ff_pairs = 0;
  EXPECT_EQ(clb_req(req, v5()), 0u);
}

// -------------------------------------------------------- Eqs. (2)-(5) ---

TEST(Organization, Eq2ClbColumns) {
  PrmRequirements req;
  req.lut_ff_pairs = 1300;  // CLB_req = 163
  // H = 5: W_CLB = ceil(163 / (5 * 20)) = 2 (the paper's FIR/LX110T row).
  const auto org = organization_for_height(req, v5(), 5, false);
  ASSERT_TRUE(org.has_value());
  EXPECT_EQ(org->columns.clb_cols, 2u);
  // H = 1: ceil(163/20) = 9.
  EXPECT_EQ(organization_for_height(req, v5(), 1, false)->columns.clb_cols,
            9u);
}

TEST(Organization, Eq3DspColumnsMultiColumn) {
  PrmRequirements req;
  req.lut_ff_pairs = 8;
  req.dsps = 27;
  // Virtex-6, H=1: W_DSP = ceil(27 / (1*16)) = 2 (paper's FIR/LX75T).
  const auto org = organization_for_height(req, v6(), 1, false);
  ASSERT_TRUE(org.has_value());
  EXPECT_EQ(org->columns.dsp_cols, 2u);
}

TEST(Organization, Eq4SingleDspColumnPinsWidth) {
  PrmRequirements req;
  req.lut_ff_pairs = 8;
  req.dsps = 32;
  // Single-DSP-column device (LX110T): W_DSP = 1 and H must cover the
  // demand: H_DSP = ceil(32/8) = 4.
  EXPECT_FALSE(organization_for_height(req, v5(), 3, true).has_value());
  const auto org = organization_for_height(req, v5(), 4, true);
  ASSERT_TRUE(org.has_value());
  EXPECT_EQ(org->columns.dsp_cols, 1u);
  // Multi-column mode at H=3 would instead widen: ceil(32/(3*8)) = 2.
  EXPECT_EQ(organization_for_height(req, v5(), 3, false)->columns.dsp_cols,
            2u);
}

TEST(Organization, Eq5BramColumns) {
  PrmRequirements req;
  req.lut_ff_pairs = 8;
  req.brams = 6;
  // Virtex-5, H=1: W_BRAM = ceil(6/(1*4)) = 2 (paper's MIPS/LX110T).
  EXPECT_EQ(organization_for_height(req, v5(), 1, false)->columns.bram_cols,
            2u);
  // Virtex-6, H=1: ceil(6/8) = 1 (paper's MIPS/LX75T).
  EXPECT_EQ(organization_for_height(req, v6(), 1, false)->columns.bram_cols,
            1u);
}

TEST(Organization, ZeroHeightThrows) {
  PrmRequirements req;
  req.lut_ff_pairs = 1;
  EXPECT_THROW(organization_for_height(req, v5(), 0, false), ContractError);
}

TEST(Organization, EmptyPrmHasNoOrganization) {
  EXPECT_FALSE(
      organization_for_height(PrmRequirements{}, v5(), 1, false).has_value());
}

TEST(Organization, Eq6Eq7WidthAndSize) {
  PrrOrganization org;
  org.h = 5;
  org.columns = ColumnDemand{2, 1, 0};
  EXPECT_EQ(org.width(), 3u);   // Eq. (6)
  EXPECT_EQ(org.size(), 15u);   // Eq. (7)
}

// ------------------------------------------------------- Eqs. (8)-(12) ---

TEST(Availability, PaperFirRow) {
  PrrOrganization org;
  org.h = 5;
  org.columns = ColumnDemand{2, 1, 0};
  const PrrAvailability a = availability(org, v5());
  EXPECT_EQ(a.clbs, 200u);   // 5*2*20
  EXPECT_EQ(a.ffs, 1600u);   // 200*8
  EXPECT_EQ(a.luts, 1600u);  // 200*8
  EXPECT_EQ(a.dsps, 40u);    // 5*1*8
  EXPECT_EQ(a.brams, 0u);
}

TEST(Availability, Virtex6FfDoubling) {
  PrrOrganization org;
  org.h = 1;
  org.columns = ColumnDemand{5, 2, 0};
  const PrrAvailability a = availability(org, v6());
  EXPECT_EQ(a.clbs, 200u);   // 1*5*40
  EXPECT_EQ(a.ffs, 3200u);   // FF_CLB = 16
  EXPECT_EQ(a.luts, 1600u);
  EXPECT_EQ(a.dsps, 32u);    // 1*2*16
}

// ------------------------------------------------------ Eqs. (13)-(17) ---

TEST(Utilization, PaperFirRow) {
  PrmRequirements req{1300, 1150, 394, 32, 0};
  PrrOrganization org;
  org.h = 5;
  org.columns = ColumnDemand{2, 1, 0};
  const ResourceUtilization ru = utilization(req, availability(org, v5()), v5());
  EXPECT_NEAR(ru.clb, 81.5, 0.01);   // 163/200
  EXPECT_NEAR(ru.ff, 24.625, 0.01);  // 394/1600
  EXPECT_NEAR(ru.lut, 71.875, 0.01); // 1150/1600
  EXPECT_NEAR(ru.dsp, 80.0, 0.01);   // 32/40
  EXPECT_DOUBLE_EQ(ru.bram, 0.0);    // no BRAM in the PRR -> 0%
}

TEST(Utilization, OverOneHundredSignalsInfeasible) {
  PrmRequirements req{300, 250, 200, 0, 0};  // CLB_req = 38
  PrrOrganization org;
  org.h = 1;
  org.columns = ColumnDemand{1, 0, 0};  // 20 CLBs only
  const ResourceUtilization ru = utilization(req, availability(org, v5()), v5());
  EXPECT_GT(ru.clb, 100.0);
}

// ------------------------------------------------------ Eqs. (18)-(23) ---

TEST(BitstreamModel, HandComputedNoBram) {
  // FIR/LX110T organization: H=5, W_CLB=2, W_DSP=1, W_BRAM=0.
  PrrOrganization org;
  org.h = 5;
  org.columns = ColumnDemand{2, 1, 0};
  const BitstreamEstimate e = estimate_bitstream(org, v5());
  // NCF = 2*36 + 1*28 = 100; +1 flush frame = 101 frames/row.
  EXPECT_EQ(e.config_frames_per_row, 101u);
  // NCW_row = 5 + 101*41 = 4146.
  EXPECT_EQ(e.config_words_per_row, 4146u);
  EXPECT_EQ(e.bram_words_per_row, 0u);  // Eq. (23) vanishes without BRAM
  // S = (21 + 5*4146 + 15) * 4 = 82 9 64... = 83064 bytes.
  EXPECT_EQ(e.total_words, 21u + 5 * 4146 + 15);
  EXPECT_EQ(e.total_bytes, 83064u);
}

TEST(BitstreamModel, HandComputedWithBram) {
  // MIPS/LX110T: H=1, W_CLB=17, W_DSP=1, W_BRAM=2.
  PrrOrganization org;
  org.h = 1;
  org.columns = ColumnDemand{17, 1, 2};
  const BitstreamEstimate e = estimate_bitstream(org, v5());
  // NCF = 17*36 + 28 + 2*30 = 700; +1 = 701 frames.
  EXPECT_EQ(e.config_frames_per_row, 701u);
  EXPECT_EQ(e.config_words_per_row, 5u + 701 * 41);
  // NDW = 5 + (2*128 + 1)*41 = 5 + 257*41 = 10542.
  EXPECT_EQ(e.bram_words_per_row, 10542u);
  EXPECT_EQ(e.total_bytes,
            (21u + 1 * (e.config_words_per_row + 10542) + 15) * 4);
}

TEST(BitstreamModel, ScalesLinearlyWithHeight) {
  PrrOrganization org;
  org.columns = ColumnDemand{3, 0, 0};
  org.h = 1;
  const u64 bytes1 = bitstream_bytes(org, v5());
  org.h = 2;
  const u64 bytes2 = bitstream_bytes(org, v5());
  org.h = 4;
  const u64 bytes4 = bitstream_bytes(org, v5());
  const FamilyTraits& t = v5();
  const u64 fixed = u64{t.iw + t.fw} * t.bytes_word;
  EXPECT_EQ(bytes2 - fixed, 2 * (bytes1 - fixed));
  EXPECT_EQ(bytes4 - fixed, 4 * (bytes1 - fixed));
}

TEST(BitstreamModel, RejectsEmptyOrganizations) {
  PrrOrganization org;  // h == 0
  EXPECT_THROW(estimate_bitstream(org, v5()), ContractError);
  org.h = 1;  // width == 0
  EXPECT_THROW(estimate_bitstream(org, v5()), ContractError);
}

TEST(BitstreamModel, WiderFramesOnVirtex6) {
  // Same organization costs more bytes on Virtex-6 (81- vs 41-word frames).
  PrrOrganization org;
  org.h = 1;
  org.columns = ColumnDemand{2, 0, 0};
  EXPECT_GT(bitstream_bytes(org, v6()), bitstream_bytes(org, v5()));
}

TEST(Satisfies, ChecksEveryResource) {
  PrmRequirements req{1300, 1150, 394, 32, 0};
  PrrOrganization org;
  org.h = 5;
  org.columns = ColumnDemand{2, 1, 0};
  EXPECT_TRUE(satisfies(org, req, v5()));
  org.h = 4;  // 32 DSPs need 4 rows of the single column: 4*8 = 32, ok
  org.columns = ColumnDemand{3, 1, 0};
  EXPECT_TRUE(satisfies(org, req, v5()));
  org.columns = ColumnDemand{1, 1, 0};  // 80 CLBs < 163
  EXPECT_FALSE(satisfies(org, req, v5()));
}

}  // namespace
}  // namespace prcost
