// Persistent-pool behavior behind parallel_for: coverage, exception
// propagation, pool reuse after a throw, nested calls, and concurrent
// submitters. These run real threads, so they double as the targets for a
// -DPRCOST_TSAN=ON build.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/parallel.hpp"

namespace prcost {
namespace {

TEST(ParallelPool, EveryIndexExecutesExactlyOnce) {
  constexpr std::size_t kCount = 10'000;
  std::vector<std::atomic<int>> executed(kCount);
  parallel_for(kCount, [&](std::size_t i) {
    executed[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(executed[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelPool, WorkerCountIsPositive) {
  EXPECT_GE(parallel_worker_count(), 1u);
}

TEST(ParallelPool, ExceptionPropagatesAndPoolSurvives) {
  for (int round = 0; round < 5; ++round) {
    EXPECT_THROW(
        parallel_for(1000,
                     [&](std::size_t i) {
                       if (i == 137) {
                         throw std::runtime_error{"boom"};
                       }
                     }),
        std::runtime_error);
    // The pool must remain usable after a failed batch.
    std::atomic<std::size_t> sum{0};
    parallel_for(100, [&](std::size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(ParallelPool, FirstExceptionWinsWhenManyThrow) {
  try {
    parallel_for(500, [](std::size_t i) {
      throw std::out_of_range{"idx " + std::to_string(i)};
    });
    FAIL() << "expected an exception";
  } catch (const std::out_of_range&) {
    // Any one of the bodies' exceptions, with its type intact.
  }
}

TEST(ParallelPool, NestedParallelForRunsSerialInline) {
  std::atomic<bool> saw_nested_region{false};
  std::vector<std::vector<std::size_t>> inner_orders(8);
  parallel_for(8, [&](std::size_t outer) {
    EXPECT_TRUE(in_parallel_region());
    // A nested call must not deadlock; it degrades to a serial loop on the
    // calling thread, preserving index order.
    parallel_for(5, [&](std::size_t inner) {
      if (in_parallel_region()) saw_nested_region.store(true);
      inner_orders[outer].push_back(inner);
    });
  });
  EXPECT_TRUE(saw_nested_region.load());
  for (const auto& order : inner_orders) {
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
  }
}

TEST(ParallelPool, NotInRegionOutsideParallelFor) {
  EXPECT_FALSE(in_parallel_region());
  parallel_for(4, [](std::size_t) {});
  EXPECT_FALSE(in_parallel_region());
}

TEST(ParallelPool, ExplicitSingleWorkerPreservesOrder) {
  std::vector<std::size_t> order;
  parallel_for(6, [&](std::size_t i) { order.push_back(i); }, 1);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4, 5}));
}

TEST(ParallelPool, ConcurrentSubmittersBothComplete) {
  // Two external threads submit batches at once; the pool serializes
  // batches internally, and both must finish with full coverage.
  constexpr std::size_t kCount = 5000;
  std::atomic<std::size_t> total_a{0};
  std::atomic<std::size_t> total_b{0};
  std::thread a{[&] {
    for (int round = 0; round < 10; ++round) {
      parallel_for(kCount, [&](std::size_t) {
        total_a.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }};
  std::thread b{[&] {
    for (int round = 0; round < 10; ++round) {
      parallel_for(kCount, [&](std::size_t) {
        total_b.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }};
  a.join();
  b.join();
  EXPECT_EQ(total_a.load(), kCount * 10);
  EXPECT_EQ(total_b.load(), kCount * 10);
}

TEST(ParallelPool, LargeWorkerRequestIsClamped) {
  // More workers than indices must still cover everything exactly once.
  std::vector<std::atomic<int>> executed(3);
  parallel_for(3, [&](std::size_t i) { executed[i].fetch_add(1); }, 64);
  for (auto& e : executed) EXPECT_EQ(e.load(), 1);
}

}  // namespace
}  // namespace prcost
