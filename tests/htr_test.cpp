#include <gtest/gtest.h>

#include "bitstream/generator.hpp"
#include "cost/prr_search.hpp"
#include "device/device_db.hpp"
#include "htr/relocation.hpp"
#include "paperdata/paper_dataset.hpp"

namespace prcost {
namespace {

const Fabric& lx110t() {
  return DeviceDb::instance().get("xc5vlx110t").fabric;
}

TEST(Compatibility, SameSequenceCompatible) {
  const Fabric fabric{Family::kVirtex5, "CCDCCBCCDCC", 4};
  // Columns 0..4 "CCDCC" and 6..10 "CCDCC" are compatible.
  EXPECT_TRUE(windows_compatible(fabric, ColumnWindow{0, 5},
                                 ColumnWindow{6, 5}));
  // Columns 1..5 "CDCCB" differ.
  EXPECT_FALSE(windows_compatible(fabric, ColumnWindow{0, 5},
                                  ColumnWindow{1, 5}));
  EXPECT_FALSE(windows_compatible(fabric, ColumnWindow{0, 5},
                                  ColumnWindow{0, 4}));
}

TEST(Relocation, CopiesFramesBetweenCompatibleRegions) {
  const Fabric fabric{Family::kVirtex5, "CCDCCBCCDCC", 4};
  ConfigMemory cm{fabric};
  const u32 fr = fabric.traits().frame_size;
  // Populate the source region (rows 0-1, columns 0..4).
  const u64 cfg_frames = 36 * 4 + 28;  // 4 CLB + 1 DSP columns
  std::vector<u32> payload(cfg_frames * fr);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<u32>(i ^ 0xC0FFEE);
  }
  for (u32 row = 0; row < 2; ++row) {
    cm.write_burst(FrameAddress{FrameBlock::kInterconnect, row, 0, 0},
                   payload);
  }

  const RelocationResult result = relocate_region(
      cm, ColumnWindow{0, 5}, 0, ColumnWindow{6, 5}, 2, 2);
  ASSERT_TRUE(result.ok) << result.reason;
  EXPECT_EQ(result.frames_copied, 2 * cfg_frames);

  // Destination frames equal the source frames.
  const auto src = cm.read_burst(
      FrameAddress{FrameBlock::kInterconnect, 0, 0, 0}, cfg_frames);
  const auto dst = cm.read_burst(
      FrameAddress{FrameBlock::kInterconnect, 2, 6, 0}, cfg_frames);
  EXPECT_EQ(src, dst);
}

TEST(Relocation, IncompatibleWindowsRefused) {
  const Fabric fabric{Family::kVirtex5, "CCDCCBCCDCC", 4};
  ConfigMemory cm{fabric};
  const RelocationResult result = relocate_region(
      cm, ColumnWindow{0, 5}, 0, ColumnWindow{1, 5}, 2, 2);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.reason.empty());
}

TEST(Relocation, RowOverflowRefused) {
  const Fabric fabric{Family::kVirtex5, "CCDCCBCCDCC", 4};
  ConfigMemory cm{fabric};
  EXPECT_FALSE(
      relocate_region(cm, ColumnWindow{0, 5}, 0, ColumnWindow{6, 5}, 3, 2)
          .ok);
  EXPECT_FALSE(
      relocate_region(cm, ColumnWindow{0, 5}, 0, ColumnWindow{6, 5}, 0, 0)
          .ok);
}

TEST(Relocation, EndToEndWithGeneratedBitstream) {
  // Load SDRAM's bitstream into its PRR, relocate the region to another
  // all-CLB window, and verify the frames moved intact.
  const auto& rec = paperdata::table5_record("SDRAM", "xc5vlx110t");
  const auto plan = find_prr(rec.req, lx110t());
  ASSERT_TRUE(plan.has_value());
  ConfigMemory cm{lx110t()};
  cm.apply_bitstream(generate_bitstream(*plan, Family::kVirtex5));

  // Find a second compatible window to the right of the first.
  const auto windows = lx110t().find_all_windows(plan->organization.columns);
  ASSERT_GE(windows.size(), 2u);
  const ColumnWindow src = plan->window;
  ColumnWindow dst{};
  bool found = false;
  for (const ColumnWindow& w : windows) {
    if (w.first_col >= src.first_col + src.width &&
        windows_compatible(lx110t(), src, w)) {
      dst = w;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);

  const u64 before = cm.frames_written();
  const auto result = relocate_region(cm, src, plan->first_row, dst,
                                      plan->first_row, plan->organization.h);
  ASSERT_TRUE(result.ok) << result.reason;
  EXPECT_GT(cm.frames_written(), before);  // copies, source preserved
  const u64 frames_per_row = result.frames_copied / plan->organization.h;
  const auto src_words = cm.read_burst(
      FrameAddress{FrameBlock::kInterconnect, plan->first_row,
                   src.first_col, 0},
      frames_per_row);
  const auto dst_words = cm.read_burst(
      FrameAddress{FrameBlock::kInterconnect, plan->first_row,
                   dst.first_col, 0},
      frames_per_row);
  EXPECT_EQ(src_words, dst_words);
}

TEST(ContextCost, MirrorsBitstreamAccounting) {
  const auto& rec = paperdata::table5_record("MIPS", "xc5vlx110t");
  const auto plan = find_prr(rec.req, lx110t());
  const ContextCost cost =
      context_cost(plan->organization, lx110t().traits());
  // Save/restore carry the frame payloads but not the sync header/trailer:
  // strictly less than the partial bitstream, more than half of it.
  EXPECT_LT(cost.save_bytes, plan->bitstream.total_bytes);
  EXPECT_GT(cost.save_bytes, plan->bitstream.total_bytes / 2);
  EXPECT_EQ(cost.save_bytes, cost.restore_bytes);
  EXPECT_THROW(context_cost(PrrOrganization{}, lx110t().traits()),
               ContractError);
}

TEST(RelocationTime, DominatedByFrameTraffic) {
  const auto& rec = paperdata::table5_record("FIR", "xc5vlx110t");
  const auto plan = find_prr(rec.req, lx110t());
  const RelocationTime time = relocation_time(
      plan->organization, lx110t().traits(), default_icap(Family::kVirtex5));
  EXPECT_GT(time.readback_s, 0.0);
  EXPECT_NEAR(time.total_s,
              time.capture_s + time.readback_s + time.rewrite_s +
                  time.restore_s,
              1e-15);
  EXPECT_GT(time.readback_s + time.rewrite_s,
            100 * (time.capture_s + time.restore_s));
}

TEST(RelocationTime, ScalesWithPrrSize) {
  const auto& small = paperdata::table5_record("SDRAM", "xc5vlx110t");
  const auto& large = paperdata::table5_record("MIPS", "xc5vlx110t");
  const auto plan_small = find_prr(small.req, lx110t());
  const auto plan_large = find_prr(large.req, lx110t());
  const FamilyTraits& t = lx110t().traits();
  const IcapModel icap = default_icap(Family::kVirtex5);
  EXPECT_LT(relocation_time(plan_small->organization, t, icap).total_s,
            relocation_time(plan_large->organization, t, icap).total_s);
}

}  // namespace
}  // namespace prcost
