#include <gtest/gtest.h>

#include "bitstream/bit_file.hpp"
#include "bitstream/generator.hpp"
#include "bitstream/parser.hpp"
#include "cost/prr_search.hpp"
#include "device/device_db.hpp"
#include "paperdata/paper_dataset.hpp"
#include "util/error.hpp"

namespace prcost {
namespace {

BitFile sample_file() {
  BitFile file;
  file.design_name = "fir_prr0.ncd;UserID=0xFFFFFFFF";
  file.part_name = "5vlx110tff1136";
  file.date = "2015/05/25";
  file.time = "10:31:07";
  file.payload = {0xAA, 0x99, 0x55, 0x66, 0x20, 0x00, 0x00, 0x00};
  return file;
}

TEST(BitFile, RoundTrips) {
  const BitFile original = sample_file();
  const BitFile parsed = read_bit_file(write_bit_file(original));
  EXPECT_EQ(parsed.design_name, original.design_name);
  EXPECT_EQ(parsed.part_name, original.part_name);
  EXPECT_EQ(parsed.date, original.date);
  EXPECT_EQ(parsed.time, original.time);
  EXPECT_EQ(parsed.payload, original.payload);
}

TEST(BitFile, StripHeaderReturnsAlignedPayload) {
  // The paper's preprocessing step: removing the header (ncd name, date)
  // leaves the 32-bit-aligned configuration words.
  const BitFile file = sample_file();
  const auto stripped = strip_bit_header(write_bit_file(file));
  EXPECT_EQ(stripped, file.payload);
  EXPECT_EQ(stripped.size() % 4, 0u);
}

TEST(BitFile, RejectsCorruptInput) {
  const auto bytes = write_bit_file(sample_file());
  // Bad magic.
  auto bad = bytes;
  bad[0] ^= 0xFF;
  EXPECT_THROW(read_bit_file(bad), ParseError);
  // Truncated payload.
  auto truncated = bytes;
  truncated.resize(truncated.size() - 4);
  EXPECT_THROW(read_bit_file(truncated), ParseError);
  // Empty input.
  EXPECT_THROW(read_bit_file(std::vector<std::uint8_t>{}), ParseError);
}

TEST(BitFile, PackageWrapsGeneratedBitstream) {
  const auto& rec = paperdata::table5_record("FIR", "xc5vlx110t");
  const Fabric& fabric = DeviceDb::instance().get(rec.device).fabric;
  const auto plan = find_prr(rec.req, fabric);
  const auto words = generate_bitstream(*plan, rec.family);
  const auto container =
      package_bit_file(words, rec.family, "fir_prr0", "5vlx110tff1136");
  // Container is strictly larger than the payload (the header bytes the
  // paper removes before measuring Table VII)...
  EXPECT_GT(container.size(), plan->bitstream.total_bytes);
  // ...and stripping recovers exactly the Eq. (18)-sized payload.
  const auto stripped = strip_bit_header(container);
  EXPECT_EQ(stripped.size(), plan->bitstream.total_bytes);
  EXPECT_EQ(stripped, to_bytes(words, rec.family));
  // Metadata round-trips.
  const BitFile parsed = read_bit_file(container);
  EXPECT_EQ(parsed.design_name, "fir_prr0.ncd;UserID=0xFFFFFFFF");
  EXPECT_EQ(parsed.part_name, "5vlx110tff1136");
}

TEST(BitFile, HeaderOverheadIsSmall) {
  const BitFile file = sample_file();
  const auto bytes = write_bit_file(file);
  EXPECT_LT(bytes.size() - file.payload.size(), 128u);
}

}  // namespace
}  // namespace prcost
