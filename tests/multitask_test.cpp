#include <gtest/gtest.h>

#include <algorithm>

#include "device/device_db.hpp"
#include "multitask/simulator.hpp"
#include "multitask/workload.hpp"
#include "reconfig/full_bitstream.hpp"
#include "util/error.hpp"

namespace prcost {
namespace {

std::vector<PrmInfo> three_prms() {
  // Bitstream sizes from the paper's devices (FIR/MIPS/SDRAM on LX110T).
  return {
      PrmInfo{"fir", {}, 83064},
      PrmInfo{"mips", {}, 157296},
      PrmInfo{"sdram", {}, 18040},
  };
}

double dma_reconfig_s(u64 bytes) {
  const DmaIcapController dma{default_icap(Family::kVirtex5)};
  return dma.estimate(bytes, StorageMedia::kDdrSdram).total_s;
}

// --------------------------------------------------------------- workload ---

TEST(Workload, DeterministicForSeed) {
  const auto a = make_workload({});
  const auto b = make_workload({});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_s, b[i].arrival_s);
    EXPECT_EQ(a[i].prm, b[i].prm);
  }
}

TEST(Workload, ArrivalsMonotonic) {
  const auto tasks = make_workload({});
  for (std::size_t i = 1; i < tasks.size(); ++i) {
    EXPECT_GE(tasks[i].arrival_s, tasks[i - 1].arrival_s);
  }
}

TEST(Workload, PrmIndicesInRange) {
  WorkloadParams params;
  params.prm_count = 3;
  for (const HwTask& task : make_workload(params)) EXPECT_LT(task.prm, 3u);
  params.prm_count = 0;
  EXPECT_THROW(make_workload(params), ContractError);
}

TEST(Workload, SortByArrivalBreaksTiesByInputOrder) {
  std::vector<HwTask> tasks{
      HwTask{"late", 2, 1.0, 0.1, 0},
      HwTask{"a", 0, 0.5, 0.1, 0},
      HwTask{"b", 1, 0.5, 0.1, 7},
      HwTask{"c", 0, 0.5, 0.1, 3},
  };
  sort_by_arrival(tasks);
  EXPECT_EQ(tasks[0].name, "a");
  EXPECT_EQ(tasks[1].name, "b");
  EXPECT_EQ(tasks[2].name, "c");
  EXPECT_EQ(tasks[3].name, "late");
}

// -------------------------------------------------------------- simulator ---

TEST(Simulator, SingleTaskTimingExact) {
  const auto prms = three_prms();
  std::vector<HwTask> tasks{HwTask{"t0", 0, 0.0, 0.010, 0}};
  SimConfig config;
  config.prr_count = 1;
  const SimResult result = simulate(prms, tasks, config);
  const double reconfig = dma_reconfig_s(prms[0].bitstream_bytes);
  ASSERT_EQ(result.tasks.size(), 1u);
  EXPECT_TRUE(result.tasks[0].reconfigured);
  EXPECT_NEAR(result.tasks[0].start_s, reconfig, 1e-12);
  EXPECT_NEAR(result.makespan_s, reconfig + 0.010, 1e-12);
  EXPECT_EQ(result.reconfig_count, 1u);
}

TEST(Simulator, ReuseSkipsReconfiguration) {
  const auto prms = three_prms();
  std::vector<HwTask> tasks{HwTask{"a", 0, 0.0, 0.001, 0},
                            HwTask{"b", 0, 0.0, 0.001, 0}};
  SimConfig config;
  config.prr_count = 1;
  const SimResult result = simulate(prms, tasks, config);
  EXPECT_EQ(result.reconfig_count, 1u);
  EXPECT_EQ(result.reuse_hits, 1u);
}

TEST(Simulator, AllTasksComplete) {
  const auto prms = three_prms();
  WorkloadParams params;
  params.count = 100;
  const auto tasks = make_workload(params);
  SimConfig config;
  config.prr_count = 3;
  const SimResult result = simulate(prms, tasks, config);
  ASSERT_EQ(result.tasks.size(), tasks.size());
  EXPECT_EQ(result.reconfig_count + result.reuse_hits, tasks.size());
  for (const TaskOutcome& outcome : result.tasks) {
    EXPECT_GT(outcome.finish_s, 0.0);
    EXPECT_GE(outcome.wait_s, 0.0);
  }
}

TEST(Simulator, DuplicateArrivalsDispatchInInputOrder) {
  const auto prms = three_prms();
  // Twelve tasks sharing three arrival instants: with the explicit
  // (arrival, input order) tie-break, two runs must agree task-for-task
  // and the makespan must be bit-identical.
  std::vector<HwTask> tasks;
  for (int i = 0; i < 12; ++i) {
    tasks.push_back(HwTask{"t" + std::to_string(i), static_cast<u32>(i % 3),
                           1e-3 * static_cast<double>(i / 4), 2e-3,
                           static_cast<u32>(i % 5)});
  }
  SimConfig config;
  config.prr_count = 2;
  const SimResult a = simulate(prms, tasks, config);
  const SimResult b = simulate(prms, tasks, config);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].task_index, b.tasks[i].task_index);
    EXPECT_EQ(a.tasks[i].prr, b.tasks[i].prr);
    EXPECT_EQ(a.tasks[i].start_s, b.tasks[i].start_s);
    EXPECT_EQ(a.tasks[i].finish_s, b.tasks[i].finish_s);
  }
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  // FCFS on one PRR with every task arriving at t=0: execution order is
  // exactly input order, so starts are non-decreasing in input index.
  std::vector<HwTask> burst;
  for (int i = 0; i < 6; ++i) {
    burst.push_back(HwTask{"b" + std::to_string(i), 0, 0.0, 1e-3, 0});
  }
  SimConfig serial;
  serial.prr_count = 1;
  const SimResult r = simulate(prms, burst, serial);
  for (std::size_t i = 1; i < r.tasks.size(); ++i) {
    EXPECT_GT(r.tasks[i].start_s, r.tasks[i - 1].start_s);
  }
}

TEST(Simulator, MakespanLowerBound) {
  const auto prms = three_prms();
  const auto tasks = make_workload({});
  SimConfig config;
  config.prr_count = 2;
  const SimResult result = simulate(prms, tasks, config);
  double bound = 0;
  for (const HwTask& task : tasks) {
    bound = std::max(bound, task.arrival_s + task.exec_s);
  }
  EXPECT_GE(result.makespan_s, bound);
}

TEST(Simulator, MorePrrsNeverHurt) {
  const auto prms = three_prms();
  WorkloadParams params;
  params.count = 80;
  params.mean_interarrival_s = 0.5e-3;  // saturating load
  const auto tasks = make_workload(params);
  SimConfig one;
  one.prr_count = 1;
  SimConfig three;
  three.prr_count = 3;
  EXPECT_LE(simulate(prms, tasks, three).makespan_s,
            simulate(prms, tasks, one).makespan_s * 1.0001);
}

TEST(Simulator, ReuseAwareBeatsFcfsOnSwitchHeavyLoad) {
  const auto prms = three_prms();
  // Alternating pattern arriving at once: reuse-aware can batch.
  std::vector<HwTask> tasks;
  for (int i = 0; i < 24; ++i) {
    tasks.push_back(
        HwTask{"t" + std::to_string(i), static_cast<u32>(i % 3), 0.0, 1e-4, 0});
  }
  SimConfig fcfs;
  fcfs.prr_count = 3;
  fcfs.policy = SchedPolicy::kFcfs;
  SimConfig reuse = fcfs;
  reuse.policy = SchedPolicy::kReuseAware;
  const SimResult r_fcfs = simulate(prms, tasks, fcfs);
  const SimResult r_reuse = simulate(prms, tasks, reuse);
  EXPECT_GE(r_reuse.reuse_hits, r_fcfs.reuse_hits);
  EXPECT_LE(r_reuse.total_reconfig_s, r_fcfs.total_reconfig_s + 1e-12);
}

TEST(Simulator, PolicyNames) {
  EXPECT_EQ(sched_policy_name(SchedPolicy::kFcfs), "FCFS");
  EXPECT_EQ(sched_policy_name(SchedPolicy::kReuseAware), "Reuse-aware");
}

TEST(Simulator, ValidatesInput) {
  const auto prms = three_prms();
  std::vector<HwTask> tasks{HwTask{"bad", 9, 0.0, 0.001, 0}};
  EXPECT_THROW(simulate(prms, tasks, SimConfig{}), ContractError);
  SimConfig config;
  config.prr_count = 0;
  EXPECT_THROW(simulate(prms, {}, config), ContractError);
}

// ----------------------------------------------------------- relocation ---

TEST(Simulator, RelocationReplacesSlowStorageFetches) {
  // From CompactFlash, the on-chip HTR copy is far cheaper than a storage
  // fetch; with two PRRs ping-ponging one PRM plus a competitor, enabling
  // relocation must cut total context-switch time.
  const auto prms = three_prms();
  std::vector<HwTask> tasks;
  for (int i = 0; i < 30; ++i) {
    tasks.push_back(
        HwTask{"t" + std::to_string(i), static_cast<u32>(i % 2), 0.0, 1e-4, 0});
  }
  SimConfig base;
  base.prr_count = 2;
  base.policy = SchedPolicy::kFcfs;
  base.media = StorageMedia::kCompactFlash;
  SimConfig htr = base;
  htr.allow_relocation = true;
  htr.relocation_s = 500e-6;  // on-chip copy: ~0.5 ms vs ~170 ms CF fetch
  const SimResult without = simulate(prms, tasks, base);
  const SimResult with = simulate(prms, tasks, htr);
  EXPECT_GT(with.relocation_count, 0u);
  EXPECT_LT(with.makespan_s, without.makespan_s);
  EXPECT_EQ(with.relocation_count + with.reconfig_count + with.reuse_hits,
            tasks.size());
}

TEST(Simulator, RelocationIgnoredWhenSlowerThanStorage) {
  const auto prms = three_prms();
  std::vector<HwTask> tasks{HwTask{"a", 0, 0.0, 1e-4, 0},
                            HwTask{"b", 1, 0.0, 1e-4, 0},
                            HwTask{"c", 0, 0.0, 1e-4, 0}};
  SimConfig config;
  config.prr_count = 2;
  config.media = StorageMedia::kDdrSdram;  // storage already fast
  config.allow_relocation = true;
  config.relocation_s = 1.0;  // absurdly slow copy
  const SimResult result = simulate(prms, tasks, config);
  EXPECT_EQ(result.relocation_count, 0u);
}

// ----------------------------------------------------- non-PR comparison ---

TEST(FullReconfigBaseline, PrWinsWhenTasksAlternate) {
  // Section I's motivation: with sensible PRRs, PR beats full
  // reconfiguration because partial bitstreams are far smaller and PRRs
  // run in parallel.
  const auto prms = three_prms();
  WorkloadParams params;
  params.count = 60;
  const auto tasks = make_workload(params);
  const u64 full =
      full_bitstream_bytes(DeviceDb::instance().get("xc5vlx110t").fabric);
  SimConfig config;
  config.prr_count = 2;
  const SimResult pr = simulate(prms, tasks, config);
  const SimResult nonpr =
      simulate_full_reconfig(prms, tasks, full, StorageMedia::kDdrSdram);
  EXPECT_LT(pr.makespan_s, nonpr.makespan_s);
  EXPECT_LT(pr.total_reconfig_s, nonpr.total_reconfig_s);
}

TEST(FullReconfigBaseline, PrCanLoseWithOversizedPrrs) {
  // ...and the converse motivation: a PR design whose single PRR is so
  // oversized that its partial bitstream approaches the full bitstream
  // (plus per-switch ICAP serialization) can be WORSE than non-PR when
  // the workload rarely switches.
  const u64 full =
      full_bitstream_bytes(DeviceDb::instance().get("xc5vlx110t").fabric);
  std::vector<PrmInfo> prms{
      PrmInfo{"a", {}, full},  // oversized PRR: partial == full size
      PrmInfo{"b", {}, full},
  };
  // Tasks always alternate PRMs and the scheduler is FCFS (a reuse-aware
  // scheduler would rescue the design by batching same-PRM tasks) -> both
  // systems reconfigure every time; the PR pool has one PRR, so no
  // parallelism compensates.
  std::vector<HwTask> tasks;
  for (int i = 0; i < 10; ++i) {
    tasks.push_back(
        HwTask{"t" + std::to_string(i), static_cast<u32>(i % 2), 0.0, 1e-5, 0});
  }
  SimConfig config;
  config.prr_count = 1;
  config.policy = SchedPolicy::kFcfs;
  const SimResult pr = simulate(prms, tasks, config);
  const SimResult nonpr =
      simulate_full_reconfig(prms, tasks, full, StorageMedia::kDdrSdram);
  EXPECT_GE(pr.makespan_s, nonpr.makespan_s * 0.99);
}

}  // namespace
}  // namespace prcost
