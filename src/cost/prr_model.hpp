// PRR size/organization cost model - the paper's first contribution
// (Section III.B, Eqs. (1)-(17) and Table I).
//
// Given a PRM's post-synthesis resource requirements, the model computes,
// for a candidate PRR height H (in fabric rows), how many CLB/DSP/BRAM
// columns the PRR needs (W_CLB, W_DSP, W_BRAM), what resources such a PRR
// makes available, and the per-resource utilization (RU) that quantifies
// internal fragmentation.
#pragma once

#include <optional>

#include "device/fabric.hpp"
#include "device/family_traits.hpp"
#include "synth/report.hpp"

namespace prcost {

/// The model's input 5-tuple (Table I "req" parameters), normally obtained
/// from a SynthesisReport.
struct PrmRequirements {
  u64 lut_ff_pairs = 0;  ///< LUT_FF_req
  u64 luts = 0;          ///< LUT_req
  u64 ffs = 0;           ///< FF_req
  u64 dsps = 0;          ///< DSP_req
  u64 brams = 0;         ///< BRAM_req

  static PrmRequirements from_report(const SynthesisReport& report) {
    return PrmRequirements{report.lut_ff_pairs, report.slice_luts,
                           report.slice_ffs, report.dsps, report.brams};
  }
};

/// Eq. (1): CLB_req = ceil(LUT_FF_req / LUT_CLB).
u64 clb_req(const PrmRequirements& req, const FamilyTraits& t);

/// A concrete PRR shape: height H (rows) and column organization.
struct PrrOrganization {
  u32 h = 0;              ///< H: PRR height in fabric rows
  ColumnDemand columns;   ///< W_CLB / W_DSP / W_BRAM

  /// Eq. (6)/(7): W and PRR_size = H * W.
  u32 width() const { return columns.width(); }
  u64 size() const { return checked_mul(h, width()); }
};

/// Eqs. (8)-(12): resources available inside a PrrOrganization.
struct PrrAvailability {
  u64 clbs = 0;   ///< CLB_avail  (Eq. 8)
  u64 ffs = 0;    ///< FF_avail   (Eq. 9)
  u64 luts = 0;   ///< LUT_avail  (Eq. 10)
  u64 dsps = 0;   ///< DSP_avail  (Eq. 11)
  u64 brams = 0;  ///< BRAM_avail (Eq. 12)
};
PrrAvailability availability(const PrrOrganization& org,
                             const FamilyTraits& t);

/// Eqs. (13)-(17): per-resource utilization percentages (0 when the PRR
/// has none of that resource, matching the paper's tables).
struct ResourceUtilization {
  double clb = 0;   ///< RU_CLB  (Eq. 13)
  double ff = 0;    ///< RU_FF   (Eq. 14)
  double lut = 0;   ///< RU_LUT  (Eq. 15)
  double dsp = 0;   ///< RU_DSP  (Eq. 16)
  double bram = 0;  ///< RU_BRAM (Eq. 17)
};
ResourceUtilization utilization(const PrmRequirements& req,
                                const PrrAvailability& avail,
                                const FamilyTraits& t);

/// Eqs. (2)-(5): the column organization a PRM needs at height `h`.
///
/// `single_dsp_column` selects the Eq. (4) special case for devices whose
/// fabric has only one DSP column (e.g. the Virtex-5 LX110T): W_DSP is
/// pinned to 1, so the DSP demand must fit within `h` rows of that single
/// column - if it cannot, this height is infeasible and nullopt is
/// returned. Heights of zero are invalid.
std::optional<PrrOrganization> organization_for_height(
    const PrmRequirements& req, const FamilyTraits& t, u32 h,
    bool single_dsp_column);

/// Convenience: does `org` provide at least `req` of every resource?
bool satisfies(const PrrOrganization& org, const PrmRequirements& req,
               const FamilyTraits& t);

}  // namespace prcost
