// Fig. 1 search flow: find the PRR size/organization on a concrete device
// fabric that satisfies a PRM's (or a set of PRMs') requirements.
//
// The paper's flow iterates H starting at 1, derives W_CLB/W_DSP/W_BRAM
// via Eqs. (2)-(5), and checks whether W contiguous PR-capable columns
// with that composition exist on the fabric; Table V's results show the
// flow keeps searching past the first feasible height and returns the
// organization minimizing PRR_size = H*W (FIR on the LX110T lands at
// H=5, W=3 although H=4, W=4 is feasible). SearchObjective selects that
// criterion, the first-feasible variant, or minimum predicted bitstream.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "cost/bitstream_model.hpp"
#include "cost/prr_model.hpp"
#include "device/fabric.hpp"

namespace prcost {

/// What the search minimizes across feasible heights.
enum class SearchObjective {
  kMinArea,       ///< smallest PRR_size = H*W (ties: smaller H) - Table V
  kFirstFeasible, ///< smallest feasible H (the literal Fig. 1 loop)
  kMinBitstream,  ///< smallest predicted partial bitstream (Eq. 18)
};

struct SearchOptions {
  SearchObjective objective = SearchObjective::kMinArea;
  /// Cap on candidate heights; 0 means the device row count R.
  u32 max_height = 0;
};

/// A fully resolved PRR: organization + concrete fabric placement +
/// derived availability/utilization/bitstream predictions.
struct PrrPlan {
  PrrOrganization organization;
  ColumnWindow window;       ///< leftmost matching column window
  u32 first_row = 0;         ///< bottom row r (0-based; paper counts from 1)
  PrrAvailability available;
  ResourceUtilization ru;
  BitstreamEstimate bitstream;
};

/// Search one PRM. Returns nullopt when no feasible PRR exists on the
/// fabric at any height. The Eq. (4) single-DSP-column rule is applied
/// automatically when the fabric has exactly one DSP column. Results are
/// memoized in the process-wide plan cache (src/cost/plan_cache.hpp) when
/// it is enabled; the search is a pure function of its arguments, so the
/// memoized result is identical to a fresh search.
std::optional<PrrPlan> find_prr(const PrmRequirements& req,
                                const Fabric& fabric,
                                const SearchOptions& options = {});

/// Cache-bypassing variant of find_prr: always runs the full Fig. 1
/// height sweep. find_prr delegates here on a cache miss (or when the
/// plan cache is disabled).
std::optional<PrrPlan> find_prr_uncached(const PrmRequirements& req,
                                         const Fabric& fabric,
                                         const SearchOptions& options = {});

/// Every candidate organization for `req` at heights 1..rows, sorted by
/// `objective` but not window-placed (window/first_row are defaults): the
/// raw material Floorplanner::place tries against concrete fabric windows.
/// Unlike enumerate_prrs this does NOT pre-filter on exact-window
/// existence, because a candidate with no exact span can still be placed
/// through a superset window. Memoized via the plan cache; this is the
/// uncached compute.
std::vector<PrrPlan> placement_candidates_uncached(const PrmRequirements& req,
                                                   const Fabric& fabric,
                                                   SearchObjective objective);

/// Flatten the superset-window pass over `candidates` (the output of
/// placement_candidates_uncached for `req`): for each candidate, each
/// window width from the candidate's own width up to the fabric width,
/// and each superset window at that width (left-most first), emit the
/// widened plan - organization rewritten to the window's real column
/// composition, with availability/utilization/bitstream recomputed for
/// the surplus columns and `window` filled in. This is exactly the
/// sequence Floorplanner::place tries in its pass 2, precomputed; it is a
/// pure function of (fabric, req, candidate order) and is memoized via
/// the plan cache (widened_candidates).
std::vector<PrrPlan> widen_candidates(const std::vector<PrrPlan>& candidates,
                                      const PrmRequirements& req,
                                      const Fabric& fabric);

/// Search a PRR shared by several time-multiplexed PRMs. Per the paper:
/// "the largest W_CLB, W_DSP, and W_BRAM across all of the PRR's
/// associated PRMs dictates the number of CLB, DSP, and BRAM columns in
/// the PRR." Utilization in the returned plan is computed against the
/// element-wise maximum requirement. Returns nullopt if any PRM cannot fit
/// at any height.
std::optional<PrrPlan> find_shared_prr(std::span<const PrmRequirements> reqs,
                                       const Fabric& fabric,
                                       const SearchOptions& options = {});

/// All feasible (H, organization) candidates for a PRM on a fabric, in
/// ascending H order - the raw material for fragmentation sweeps and DSE.
std::vector<PrrPlan> enumerate_prrs(const PrmRequirements& req,
                                    const Fabric& fabric, u32 max_height = 0);

}  // namespace prcost
