#include "cost/plan_cache.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <iterator>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/snapshot.hpp"

namespace prcost {
namespace {

std::atomic<bool> g_enabled{true};

/// What a cache entry memoizes: a find_prr result, a candidate list, or a
/// widened (superset-window) candidate list - discriminated by Key::kind,
/// never more than one per entry.
enum class EntryKind : u32 { kFindPrr, kCandidates, kWidened };

struct Key {
  u64 fabric_id = 0;
  PrmRequirements req;
  u32 max_height = 0;  ///< SearchOptions::max_height (0 for candidates)
  u32 objective = 0;
  EntryKind kind = EntryKind::kFindPrr;

  bool operator==(const Key& other) const {
    return fabric_id == other.fabric_id &&
           req.lut_ff_pairs == other.req.lut_ff_pairs &&
           req.luts == other.req.luts && req.ffs == other.req.ffs &&
           req.dsps == other.req.dsps && req.brams == other.req.brams &&
           max_height == other.max_height && objective == other.objective &&
           kind == other.kind;
  }
};

struct KeyHash {
  std::size_t operator()(const Key& key) const noexcept {
    // FNV-1a over the key fields (field-wise, not memcmp: Key has padding).
    u64 h = 14695981039346656037ull;
    const auto mix = [&h](u64 v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    mix(key.fabric_id);
    mix(key.req.lut_ff_pairs);
    mix(key.req.luts);
    mix(key.req.ffs);
    mix(key.req.dsps);
    mix(key.req.brams);
    mix(key.max_height);
    mix(key.objective);
    mix(static_cast<u64>(key.kind));
    return static_cast<std::size_t>(h);
  }
};

struct Entry {
  std::optional<PrrPlan> plan;  // kFindPrr
  std::shared_ptr<const std::vector<PrrPlan>> candidates;  // kCandidates/kWidened
};

class Cache {
 public:
  static Cache& instance() {
    static Cache cache;
    return cache;
  }

  /// nullptr on miss. Shared entries: callers must not mutate.
  std::shared_ptr<const Entry> lookup(const Key& key) {
    Shard& shard = shard_for(key);
    {
      const std::scoped_lock lock{shard.mu};
      const auto it = shard.map.find(key);
      if (it != shard.map.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        PRCOST_COUNT("plan_cache.hits");
        PRCOST_REQUEST_EVENT(kPlanCacheHit);
        return it->second;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    PRCOST_COUNT("plan_cache.misses");
    PRCOST_REQUEST_EVENT(kPlanCacheMiss);
    return nullptr;
  }

  /// Insert (first writer wins) and return the resident entry.
  std::shared_ptr<const Entry> insert(const Key& key,
                                      std::shared_ptr<const Entry> entry) {
    Shard& shard = shard_for(key);
    const std::size_t shard_cap =
        std::max<std::size_t>(1, capacity_.load(std::memory_order_relaxed) /
                                     kShardCount);
    const std::scoped_lock lock{shard.mu};
    if (shard.map.size() >= shard_cap &&
        shard.map.find(key) == shard.map.end()) {
      // Full: drop an arbitrary resident entry (hash order ~ random). The
      // DSE working set is far below the cap; this is an overflow valve,
      // not an LRU.
      shard.map.erase(shard.map.begin());
      entries_.fetch_sub(1, std::memory_order_relaxed);
      evictions_.fetch_add(1, std::memory_order_relaxed);
      PRCOST_COUNT("plan_cache.evictions");
    }
    const auto [it, inserted] = shard.map.try_emplace(key, std::move(entry));
    if (inserted) {
      PRCOST_GAUGE_SET("plan_cache.entries",
                       entries_.fetch_add(1, std::memory_order_relaxed) + 1);
    }
    return it->second;
  }

  void clear() {
    for (Shard& shard : shards_) {
      const std::scoped_lock lock{shard.mu};
      entries_.fetch_sub(shard.map.size(), std::memory_order_relaxed);
      shard.map.clear();
    }
    PRCOST_GAUGE_SET("plan_cache.entries",
                     entries_.load(std::memory_order_relaxed));
  }

  PlanCacheStats stats() const {
    PlanCacheStats out;
    out.hits = hits_.load(std::memory_order_relaxed);
    out.misses = misses_.load(std::memory_order_relaxed);
    out.evictions = evictions_.load(std::memory_order_relaxed);
    for (const Shard& shard : shards_) {
      const std::scoped_lock lock{shard.mu};
      out.entries += shard.map.size();
    }
    return out;
  }

  void set_capacity(std::size_t max_entries) {
    capacity_.store(std::max<std::size_t>(kShardCount, max_entries),
                    std::memory_order_relaxed);
  }

  /// Point-in-time copy of every resident (key, entry) pair, shard by
  /// shard. Entries are shared_ptr, so this pins them without copying.
  std::vector<std::pair<Key, std::shared_ptr<const Entry>>> resident() const {
    std::vector<std::pair<Key, std::shared_ptr<const Entry>>> out;
    for (const Shard& shard : shards_) {
      const std::scoped_lock lock{shard.mu};
      out.reserve(out.size() + shard.map.size());
      for (const auto& [key, entry] : shard.map) out.emplace_back(key, entry);
    }
    return out;
  }

 private:
  static constexpr std::size_t kShardCount = 16;

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, std::shared_ptr<const Entry>, KeyHash> map;
  };

  Shard& shard_for(const Key& key) {
    return shards_[KeyHash{}(key)&(kShardCount - 1)];
  }

  std::array<Shard, kShardCount> shards_;
  std::atomic<u64> hits_{0};
  std::atomic<u64> misses_{0};
  std::atomic<u64> evictions_{0};
  std::atomic<std::size_t> entries_{0};  ///< mirrors the shard maps (gauge)
  std::atomic<std::size_t> capacity_{1u << 16};
};

// ---------------------------------------------------------------------
// Snapshot persistence (plan_cache_save / plan_cache_load).
//
// Format version 1 payload:
//   u64 identity_count
//     { u64 id; u32 family; u32 rows; string pattern } x identity_count
//   u64 entry_count
//     { Key; per-kind body } x entry_count
//
// Keys carry process-local fabric identity ids, so the identity table
// (family, rows, pattern - everything Fabric::identity() interns over)
// travels with the snapshot and keys are re-interned + translated on
// load. PrrPlan is flat scalars, written field-wise (never memcpy'd:
// struct padding would leak indeterminate bytes into the checksum).

constexpr u32 kPlanSnapshotVersion = 1;

void put_plan(SnapshotWriter& out, const PrrPlan& plan) {
  out.put_u32(plan.organization.h);
  out.put_u32(plan.organization.columns.clb_cols);
  out.put_u32(plan.organization.columns.dsp_cols);
  out.put_u32(plan.organization.columns.bram_cols);
  out.put_u32(plan.window.first_col);
  out.put_u32(plan.window.width);
  out.put_u32(plan.first_row);
  out.put_u64(plan.available.clbs);
  out.put_u64(plan.available.ffs);
  out.put_u64(plan.available.luts);
  out.put_u64(plan.available.dsps);
  out.put_u64(plan.available.brams);
  out.put_f64(plan.ru.clb);
  out.put_f64(plan.ru.ff);
  out.put_f64(plan.ru.lut);
  out.put_f64(plan.ru.dsp);
  out.put_f64(plan.ru.bram);
  out.put_u64(plan.bitstream.initial_words);
  out.put_u64(plan.bitstream.config_words_per_row);
  out.put_u64(plan.bitstream.bram_words_per_row);
  out.put_u64(plan.bitstream.final_words);
  out.put_u64(plan.bitstream.rows);
  out.put_u64(plan.bitstream.total_words);
  out.put_u64(plan.bitstream.total_bytes);
  out.put_u64(plan.bitstream.config_frames_per_row);
}

PrrPlan get_plan(SnapshotReader& in) {
  PrrPlan plan;
  plan.organization.h = in.get_u32();
  plan.organization.columns.clb_cols = in.get_u32();
  plan.organization.columns.dsp_cols = in.get_u32();
  plan.organization.columns.bram_cols = in.get_u32();
  plan.window.first_col = in.get_u32();
  plan.window.width = in.get_u32();
  plan.first_row = in.get_u32();
  plan.available.clbs = in.get_u64();
  plan.available.ffs = in.get_u64();
  plan.available.luts = in.get_u64();
  plan.available.dsps = in.get_u64();
  plan.available.brams = in.get_u64();
  plan.ru.clb = in.get_f64();
  plan.ru.ff = in.get_f64();
  plan.ru.lut = in.get_f64();
  plan.ru.dsp = in.get_f64();
  plan.ru.bram = in.get_f64();
  plan.bitstream.initial_words = in.get_u64();
  plan.bitstream.config_words_per_row = in.get_u64();
  plan.bitstream.bram_words_per_row = in.get_u64();
  plan.bitstream.final_words = in.get_u64();
  plan.bitstream.rows = in.get_u64();
  plan.bitstream.total_words = in.get_u64();
  plan.bitstream.total_bytes = in.get_u64();
  plan.bitstream.config_frames_per_row = in.get_u64();
  return plan;
}

}  // namespace

std::size_t plan_cache_save(const std::string& path) {
  SnapshotWriter out;
  const auto identities = interned_fabric_identities();
  out.put_u64(identities.size());
  for (const FabricIdentityRecord& record : identities) {
    out.put_u64(record.id);
    out.put_u32(static_cast<u32>(record.family));
    out.put_u32(record.rows);
    out.put_string(record.pattern);
  }
  const auto resident = Cache::instance().resident();
  out.put_u64(resident.size());
  for (const auto& [key, entry] : resident) {
    out.put_u64(key.fabric_id);
    out.put_u64(key.req.lut_ff_pairs);
    out.put_u64(key.req.luts);
    out.put_u64(key.req.ffs);
    out.put_u64(key.req.dsps);
    out.put_u64(key.req.brams);
    out.put_u32(key.max_height);
    out.put_u32(key.objective);
    out.put_u32(static_cast<u32>(key.kind));
    if (key.kind == EntryKind::kFindPrr) {
      out.put_u32(entry->plan.has_value() ? 1 : 0);
      if (entry->plan.has_value()) put_plan(out, *entry->plan);
    } else {
      const auto& candidates = *entry->candidates;
      out.put_u64(candidates.size());
      for (const PrrPlan& plan : candidates) put_plan(out, plan);
    }
  }
  out.write(path, kPlanSnapshotVersion);
  return resident.size();
}

std::size_t plan_cache_load(const std::string& path) {
  SnapshotReader in{path, kPlanSnapshotVersion};
  // Re-intern the identity table; old id -> current process id.
  std::unordered_map<u64, u64> translate;
  const u64 identity_count = in.get_u64();
  for (u64 i = 0; i < identity_count; ++i) {
    const u64 old_id = in.get_u64();
    const u32 family = in.get_u32();
    const u32 rows = in.get_u32();
    const std::string pattern = in.get_string();
    if (family >= std::size(kAllFamilies) || rows == 0 || pattern.empty()) {
      throw ParseError{"snapshot '" + path + "': invalid fabric identity"};
    }
    translate[old_id] =
        intern_fabric_identity(static_cast<Family>(family), pattern, rows);
  }
  // Decode everything before touching the cache, so a malformed payload
  // leaves it unchanged.
  std::vector<std::pair<Key, std::shared_ptr<const Entry>>> loaded;
  const u64 entry_count = in.get_u64();
  // Bound the reserve: a crafted count larger than the payload could
  // otherwise throw bad_alloc instead of the underrun ParseError below.
  loaded.reserve(std::min<u64>(entry_count, 1u << 16));
  for (u64 i = 0; i < entry_count; ++i) {
    Key key;
    const u64 old_fabric = in.get_u64();
    const auto mapped = translate.find(old_fabric);
    if (mapped == translate.end()) {
      throw ParseError{"snapshot '" + path + "': unknown fabric id"};
    }
    key.fabric_id = mapped->second;
    key.req.lut_ff_pairs = in.get_u64();
    key.req.luts = in.get_u64();
    key.req.ffs = in.get_u64();
    key.req.dsps = in.get_u64();
    key.req.brams = in.get_u64();
    key.max_height = in.get_u32();
    key.objective = in.get_u32();
    const u32 kind = in.get_u32();
    if (kind > static_cast<u32>(EntryKind::kWidened)) {
      throw ParseError{"snapshot '" + path + "': invalid entry kind"};
    }
    key.kind = static_cast<EntryKind>(kind);
    auto entry = std::make_shared<Entry>();
    if (key.kind == EntryKind::kFindPrr) {
      if (in.get_u32() != 0) entry->plan = get_plan(in);
    } else {
      const u64 plan_count = in.get_u64();
      std::vector<PrrPlan> plans;
      plans.reserve(std::min<u64>(plan_count, 1u << 16));
      for (u64 j = 0; j < plan_count; ++j) plans.push_back(get_plan(in));
      entry->candidates =
          std::make_shared<const std::vector<PrrPlan>>(std::move(plans));
    }
    loaded.emplace_back(key, std::move(entry));
  }
  if (in.remaining() != 0) {
    throw ParseError{"snapshot '" + path + "': trailing bytes"};
  }
  for (auto& [key, entry] : loaded) {
    Cache::instance().insert(key, std::move(entry));
  }
  return loaded.size();
}

bool plan_cache_enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

void set_plan_cache_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

std::optional<PrrPlan> find_prr_cached(const PrmRequirements& req,
                                       const Fabric& fabric,
                                       const SearchOptions& options) {
  Key key;
  key.fabric_id = fabric.identity();
  key.req = req;
  key.max_height = options.max_height;
  key.objective = static_cast<u32>(options.objective);
  key.kind = EntryKind::kFindPrr;
  if (const auto entry = Cache::instance().lookup(key)) return entry->plan;
  auto entry = std::make_shared<Entry>();
  entry->plan = find_prr_uncached(req, fabric, options);
  return Cache::instance().insert(key, std::move(entry))->plan;
}

std::shared_ptr<const std::vector<PrrPlan>> placement_candidates(
    const PrmRequirements& req, const Fabric& fabric,
    SearchObjective objective) {
  if (!plan_cache_enabled()) {
    return std::make_shared<const std::vector<PrrPlan>>(
        placement_candidates_uncached(req, fabric, objective));
  }
  Key key;
  key.fabric_id = fabric.identity();
  key.req = req;
  key.objective = static_cast<u32>(objective);
  key.kind = EntryKind::kCandidates;
  if (const auto entry = Cache::instance().lookup(key)) {
    return entry->candidates;
  }
  auto entry = std::make_shared<Entry>();
  entry->candidates = std::make_shared<const std::vector<PrrPlan>>(
      placement_candidates_uncached(req, fabric, objective));
  return Cache::instance().insert(key, std::move(entry))->candidates;
}

std::shared_ptr<const std::vector<PrrPlan>> widened_candidates(
    const PrmRequirements& req, const Fabric& fabric,
    SearchObjective objective) {
  if (!plan_cache_enabled()) {
    return std::make_shared<const std::vector<PrrPlan>>(widen_candidates(
        placement_candidates_uncached(req, fabric, objective), req, fabric));
  }
  Key key;
  key.fabric_id = fabric.identity();
  key.req = req;
  key.objective = static_cast<u32>(objective);
  key.kind = EntryKind::kWidened;
  if (const auto entry = Cache::instance().lookup(key)) {
    return entry->candidates;
  }
  auto entry = std::make_shared<Entry>();
  entry->candidates = std::make_shared<const std::vector<PrrPlan>>(
      widen_candidates(*placement_candidates(req, fabric, objective), req,
                       fabric));
  return Cache::instance().insert(key, std::move(entry))->candidates;
}

void plan_cache_clear() { Cache::instance().clear(); }

PlanCacheStats plan_cache_stats() { return Cache::instance().stats(); }

void set_plan_cache_capacity(std::size_t max_entries) {
  Cache::instance().set_capacity(max_entries);
}

}  // namespace prcost
