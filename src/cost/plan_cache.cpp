#include "cost/plan_cache.hpp"

#include <array>
#include <atomic>
#include <mutex>
#include <unordered_map>

#include "obs/obs.hpp"

namespace prcost {
namespace {

std::atomic<bool> g_enabled{true};

/// What a cache entry memoizes: a find_prr result, a candidate list, or a
/// widened (superset-window) candidate list - discriminated by Key::kind,
/// never more than one per entry.
enum class EntryKind : u32 { kFindPrr, kCandidates, kWidened };

struct Key {
  u64 fabric_id = 0;
  PrmRequirements req;
  u32 max_height = 0;  ///< SearchOptions::max_height (0 for candidates)
  u32 objective = 0;
  EntryKind kind = EntryKind::kFindPrr;

  bool operator==(const Key& other) const {
    return fabric_id == other.fabric_id &&
           req.lut_ff_pairs == other.req.lut_ff_pairs &&
           req.luts == other.req.luts && req.ffs == other.req.ffs &&
           req.dsps == other.req.dsps && req.brams == other.req.brams &&
           max_height == other.max_height && objective == other.objective &&
           kind == other.kind;
  }
};

struct KeyHash {
  std::size_t operator()(const Key& key) const noexcept {
    // FNV-1a over the key fields (field-wise, not memcmp: Key has padding).
    u64 h = 14695981039346656037ull;
    const auto mix = [&h](u64 v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    mix(key.fabric_id);
    mix(key.req.lut_ff_pairs);
    mix(key.req.luts);
    mix(key.req.ffs);
    mix(key.req.dsps);
    mix(key.req.brams);
    mix(key.max_height);
    mix(key.objective);
    mix(static_cast<u64>(key.kind));
    return static_cast<std::size_t>(h);
  }
};

struct Entry {
  std::optional<PrrPlan> plan;  // kFindPrr
  std::shared_ptr<const std::vector<PrrPlan>> candidates;  // kCandidates/kWidened
};

class Cache {
 public:
  static Cache& instance() {
    static Cache cache;
    return cache;
  }

  /// nullptr on miss. Shared entries: callers must not mutate.
  std::shared_ptr<const Entry> lookup(const Key& key) {
    Shard& shard = shard_for(key);
    {
      const std::scoped_lock lock{shard.mu};
      const auto it = shard.map.find(key);
      if (it != shard.map.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        PRCOST_COUNT("plan_cache.hits");
        PRCOST_REQUEST_EVENT(kPlanCacheHit);
        return it->second;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    PRCOST_COUNT("plan_cache.misses");
    PRCOST_REQUEST_EVENT(kPlanCacheMiss);
    return nullptr;
  }

  /// Insert (first writer wins) and return the resident entry.
  std::shared_ptr<const Entry> insert(const Key& key,
                                      std::shared_ptr<const Entry> entry) {
    Shard& shard = shard_for(key);
    const std::size_t shard_cap =
        std::max<std::size_t>(1, capacity_.load(std::memory_order_relaxed) /
                                     kShardCount);
    const std::scoped_lock lock{shard.mu};
    if (shard.map.size() >= shard_cap &&
        shard.map.find(key) == shard.map.end()) {
      // Full: drop an arbitrary resident entry (hash order ~ random). The
      // DSE working set is far below the cap; this is an overflow valve,
      // not an LRU.
      shard.map.erase(shard.map.begin());
      entries_.fetch_sub(1, std::memory_order_relaxed);
      evictions_.fetch_add(1, std::memory_order_relaxed);
      PRCOST_COUNT("plan_cache.evictions");
    }
    const auto [it, inserted] = shard.map.try_emplace(key, std::move(entry));
    if (inserted) {
      PRCOST_GAUGE_SET("plan_cache.entries",
                       entries_.fetch_add(1, std::memory_order_relaxed) + 1);
    }
    return it->second;
  }

  void clear() {
    for (Shard& shard : shards_) {
      const std::scoped_lock lock{shard.mu};
      entries_.fetch_sub(shard.map.size(), std::memory_order_relaxed);
      shard.map.clear();
    }
    PRCOST_GAUGE_SET("plan_cache.entries",
                     entries_.load(std::memory_order_relaxed));
  }

  PlanCacheStats stats() const {
    PlanCacheStats out;
    out.hits = hits_.load(std::memory_order_relaxed);
    out.misses = misses_.load(std::memory_order_relaxed);
    out.evictions = evictions_.load(std::memory_order_relaxed);
    for (const Shard& shard : shards_) {
      const std::scoped_lock lock{shard.mu};
      out.entries += shard.map.size();
    }
    return out;
  }

  void set_capacity(std::size_t max_entries) {
    capacity_.store(std::max<std::size_t>(kShardCount, max_entries),
                    std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kShardCount = 16;

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, std::shared_ptr<const Entry>, KeyHash> map;
  };

  Shard& shard_for(const Key& key) {
    return shards_[KeyHash{}(key)&(kShardCount - 1)];
  }

  std::array<Shard, kShardCount> shards_;
  std::atomic<u64> hits_{0};
  std::atomic<u64> misses_{0};
  std::atomic<u64> evictions_{0};
  std::atomic<std::size_t> entries_{0};  ///< mirrors the shard maps (gauge)
  std::atomic<std::size_t> capacity_{1u << 16};
};

}  // namespace

bool plan_cache_enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

void set_plan_cache_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

std::optional<PrrPlan> find_prr_cached(const PrmRequirements& req,
                                       const Fabric& fabric,
                                       const SearchOptions& options) {
  Key key;
  key.fabric_id = fabric.identity();
  key.req = req;
  key.max_height = options.max_height;
  key.objective = static_cast<u32>(options.objective);
  key.kind = EntryKind::kFindPrr;
  if (const auto entry = Cache::instance().lookup(key)) return entry->plan;
  auto entry = std::make_shared<Entry>();
  entry->plan = find_prr_uncached(req, fabric, options);
  return Cache::instance().insert(key, std::move(entry))->plan;
}

std::shared_ptr<const std::vector<PrrPlan>> placement_candidates(
    const PrmRequirements& req, const Fabric& fabric,
    SearchObjective objective) {
  if (!plan_cache_enabled()) {
    return std::make_shared<const std::vector<PrrPlan>>(
        placement_candidates_uncached(req, fabric, objective));
  }
  Key key;
  key.fabric_id = fabric.identity();
  key.req = req;
  key.objective = static_cast<u32>(objective);
  key.kind = EntryKind::kCandidates;
  if (const auto entry = Cache::instance().lookup(key)) {
    return entry->candidates;
  }
  auto entry = std::make_shared<Entry>();
  entry->candidates = std::make_shared<const std::vector<PrrPlan>>(
      placement_candidates_uncached(req, fabric, objective));
  return Cache::instance().insert(key, std::move(entry))->candidates;
}

std::shared_ptr<const std::vector<PrrPlan>> widened_candidates(
    const PrmRequirements& req, const Fabric& fabric,
    SearchObjective objective) {
  if (!plan_cache_enabled()) {
    return std::make_shared<const std::vector<PrrPlan>>(widen_candidates(
        placement_candidates_uncached(req, fabric, objective), req, fabric));
  }
  Key key;
  key.fabric_id = fabric.identity();
  key.req = req;
  key.objective = static_cast<u32>(objective);
  key.kind = EntryKind::kWidened;
  if (const auto entry = Cache::instance().lookup(key)) {
    return entry->candidates;
  }
  auto entry = std::make_shared<Entry>();
  entry->candidates = std::make_shared<const std::vector<PrrPlan>>(
      widen_candidates(*placement_candidates(req, fabric, objective), req,
                       fabric));
  return Cache::instance().insert(key, std::move(entry))->candidates;
}

void plan_cache_clear() { Cache::instance().clear(); }

PlanCacheStats plan_cache_stats() { return Cache::instance().stats(); }

void set_plan_cache_capacity(std::size_t max_entries) {
  Cache::instance().set_capacity(max_entries);
}

}  // namespace prcost
