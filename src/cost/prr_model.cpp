#include "cost/prr_model.hpp"

#include "util/error.hpp"

namespace prcost {

u64 clb_req(const PrmRequirements& req, const FamilyTraits& t) {
  if (req.lut_ff_pairs == 0) return 0;
  return ceil_div(req.lut_ff_pairs, t.lut_clb);  // Eq. (1)
}

PrrAvailability availability(const PrrOrganization& org,
                             const FamilyTraits& t) {
  PrrAvailability a;
  a.clbs = checked_mul(checked_mul(org.h, org.columns.clb_cols), t.clb_col);
  a.ffs = checked_mul(a.clbs, t.ff_clb);    // Eq. (9)
  a.luts = checked_mul(a.clbs, t.lut_clb);  // Eq. (10)
  a.dsps = checked_mul(checked_mul(org.h, org.columns.dsp_cols), t.dsp_col);
  a.brams =
      checked_mul(checked_mul(org.h, org.columns.bram_cols), t.bram_col);
  return a;
}

ResourceUtilization utilization(const PrmRequirements& req,
                                const PrrAvailability& avail,
                                const FamilyTraits& t) {
  ResourceUtilization ru;
  ru.clb = percent(clb_req(req, t), avail.clbs);  // Eq. (13)
  ru.ff = percent(req.ffs, avail.ffs);      // Eq. (14)
  ru.lut = percent(req.luts, avail.luts);   // Eq. (15)
  ru.dsp = percent(req.dsps, avail.dsps);   // Eq. (16)
  ru.bram = percent(req.brams, avail.brams);// Eq. (17)
  return ru;
}

std::optional<PrrOrganization> organization_for_height(
    const PrmRequirements& req, const FamilyTraits& t, u32 h,
    bool single_dsp_column) {
  if (h == 0) throw ContractError{"organization_for_height: h == 0"};
  PrrOrganization org;
  org.h = h;

  const u64 clbs = clb_req(req, t);
  if (clbs > 0) {
    // Eq. (2): W_CLB = ceil(CLB_req / (H * CLB_col)).
    org.columns.clb_cols =
        narrow<u32>(ceil_div(clbs, checked_mul(h, t.clb_col)));
  }
  if (req.dsps > 0) {
    if (single_dsp_column) {
      // Eq. (4): W_DSP = 1; H_DSP = ceil(DSP_req / (W_DSP * DSP_col)).
      // A rectangular PRR requires H >= H_DSP; smaller heights cannot
      // reach the demanded DSPs through the single column.
      const u64 h_dsp = ceil_div(req.dsps, t.dsp_col);
      if (h < h_dsp) return std::nullopt;
      org.columns.dsp_cols = 1;
    } else {
      // Eq. (3): W_DSP = ceil(DSP_req / (H * DSP_col)).
      org.columns.dsp_cols =
          narrow<u32>(ceil_div(req.dsps, checked_mul(h, t.dsp_col)));
    }
  }
  if (req.brams > 0) {
    // Eq. (5): W_BRAM = ceil(BRAM_req / (H * BRAM_col)).
    org.columns.bram_cols =
        narrow<u32>(ceil_div(req.brams, checked_mul(h, t.bram_col)));
  }
  if (org.width() == 0) return std::nullopt;  // empty PRM
  return org;
}

bool satisfies(const PrrOrganization& org, const PrmRequirements& req,
               const FamilyTraits& t) {
  const PrrAvailability a = availability(org, t);
  return a.clbs >= clb_req(req, t) && a.ffs >= req.ffs && a.dsps >= req.dsps &&
         a.brams >= req.brams;
}

}  // namespace prcost
