// Process-wide memoization of PRR plan derivations - the DSE hot path.
//
// Design-space exploration re-derives the identical PRR plan thousands of
// times: every partition whose groups merge to the same PrmRequirements
// repeats the full Fig. 1 height sweep, window scan, and bitstream
// estimate. All of those are pure functions of (fabric, requirements,
// search options), so this cache memoizes them process-wide:
//
//   - find_prr results (including "infeasible"), keyed by fabric identity,
//     the requirement 5-tuple, and SearchOptions;
//   - Floorplanner placement candidate lists (objective-sorted
//     organizations, not yet window-placed), shared read-only across
//     threads.
//
// The cache is sharded (mutex per shard) so parallel_for sweeps do not
// serialize on one lock, bounded (random-ish eviction past the per-shard
// cap), and exact: a hit returns byte-identical data to a fresh
// computation, so results with the cache disabled match results with it
// enabled. Hit/miss/eviction counts are exported through the obs metrics
// registry ("plan_cache.hits" / ".misses" / ".evictions") and through
// stats() for callers that keep metrics off. The `prcost` CLI exposes
// --no-plan-cache as the escape hatch.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cost/prr_search.hpp"

namespace prcost {

/// Global switch, default on. Checked by find_prr and Floorplanner::place.
bool plan_cache_enabled() noexcept;
void set_plan_cache_enabled(bool on) noexcept;

/// Point-in-time cache counters (process lifetime, not reset by clear()).
struct PlanCacheStats {
  u64 hits = 0;
  u64 misses = 0;
  u64 evictions = 0;
  u64 entries = 0;  ///< currently resident entries across all shards
};

/// Memoized find_prr. Equivalent to find_prr_uncached(req, fabric,
/// options) in every case; compute-through on miss.
std::optional<PrrPlan> find_prr_cached(const PrmRequirements& req,
                                       const Fabric& fabric,
                                       const SearchOptions& options);

/// Memoized placement_candidates_uncached. The returned vector is shared
/// and immutable; callers iterate it concurrently without copying.
std::shared_ptr<const std::vector<PrrPlan>> placement_candidates(
    const PrmRequirements& req, const Fabric& fabric,
    SearchObjective objective);

/// Memoized widen_candidates over the (also memoized) candidate list: the
/// full superset-window sequence Floorplanner::place pass 2 tries, with
/// per-window availability/utilization/bitstream already computed. Shared
/// and immutable like placement_candidates.
std::shared_ptr<const std::vector<PrrPlan>> widened_candidates(
    const PrmRequirements& req, const Fabric& fabric,
    SearchObjective objective);

/// Persist every resident entry - together with the fabric-identity
/// table needed to re-key them in another process - as a versioned,
/// checksummed snapshot (util/snapshot.hpp). Returns the number of
/// entries written. Throws IoError when the file cannot be written.
std::size_t plan_cache_save(const std::string& path);

/// Restore entries written by plan_cache_save. Fabric identities are
/// re-interned on load and every key is translated, so snapshots remain
/// valid across processes (interning order does not matter). Throws
/// IoError when the file cannot be opened and ParseError on any
/// corruption; in both cases the cache is left unchanged, so callers can
/// fall back to a clean cold start. Returns the entries restored.
std::size_t plan_cache_load(const std::string& path);

/// Drop every cached entry (stats survive). Intended for tests and for
/// benchmarks that need cold-cache timings.
void plan_cache_clear();

PlanCacheStats plan_cache_stats();

/// Cap the total resident entries (approximate; enforced per shard).
/// Intended for tests exercising eviction. Default is 1 << 16.
void set_plan_cache_capacity(std::size_t max_entries);

}  // namespace prcost
