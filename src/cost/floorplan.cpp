#include "cost/floorplan.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace prcost {

Floorplanner::Floorplanner(const Fabric& fabric)
    : fabric_(&fabric),
      occupied_(static_cast<std::size_t>(fabric.rows()) * fabric.num_columns(),
                false) {}

bool Floorplanner::rect_free(u32 first_col, u32 width, u32 first_row,
                             u32 height) const {
  if (first_col + width > fabric_->num_columns() ||
      first_row + height > fabric_->rows()) {
    return false;
  }
  for (u32 r = first_row; r < first_row + height; ++r) {
    for (u32 c = first_col; c < first_col + width; ++c) {
      if (occupied_[static_cast<std::size_t>(r) * fabric_->num_columns() + c]) {
        return false;
      }
    }
  }
  return true;
}

void Floorplanner::mark(u32 first_col, u32 width, u32 first_row, u32 height) {
  for (u32 r = first_row; r < first_row + height; ++r) {
    for (u32 c = first_col; c < first_col + width; ++c) {
      occupied_[static_cast<std::size_t>(r) * fabric_->num_columns() + c] =
          true;
    }
  }
}

void Floorplanner::reserve(u32 first_col, u32 width, u32 first_row,
                           u32 height) {
  if (first_col + width > fabric_->num_columns() ||
      first_row + height > fabric_->rows()) {
    throw ContractError{"Floorplanner::reserve: rectangle exceeds fabric"};
  }
  mark(first_col, width, first_row, height);
}

std::optional<PlacedPrr> Floorplanner::place(const std::string& name,
                                             const PrmRequirements& req,
                                             SearchObjective objective) {
  // Candidate organizations over all heights, sorted by the objective.
  // Unlike enumerate_prrs this does NOT pre-filter on exact-window
  // existence: a candidate with no exact span can still be placed by the
  // superset pass below.
  std::vector<PrrPlan> candidates;
  const bool single_dsp = fabric_->column_count(ColumnType::kDsp) == 1;
  for (u32 h = 1; h <= fabric_->rows(); ++h) {
    const auto org =
        organization_for_height(req, fabric_->traits(), h, single_dsp);
    if (!org) continue;
    PrrPlan plan;
    plan.organization = *org;
    plan.available = availability(*org, fabric_->traits());
    plan.ru = utilization(req, plan.available, fabric_->traits());
    plan.bitstream = estimate_bitstream(*org, fabric_->traits());
    candidates.push_back(std::move(plan));
  }
  const auto key = [&](const PrrPlan& p) {
    switch (objective) {
      case SearchObjective::kMinArea:
        return std::pair<u64, u64>{p.organization.size(), p.organization.h};
      case SearchObjective::kFirstFeasible:
        return std::pair<u64, u64>{p.organization.h, 0};
      case SearchObjective::kMinBitstream:
        return std::pair<u64, u64>{p.bitstream.total_bytes, p.organization.h};
    }
    throw ContractError{"Floorplanner::place: unknown objective"};
  };
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](const PrrPlan& a, const PrrPlan& b) {
                     return key(a) < key(b);
                   });

  const auto try_place = [&](const PrrPlan& plan,
                             const ColumnWindow& window)
      -> std::optional<PlacedPrr> {
    for (u32 row = 0; row + plan.organization.h <= fabric_->rows(); ++row) {
      if (!rect_free(window.first_col, window.width, row,
                     plan.organization.h)) {
        continue;
      }
      mark(window.first_col, window.width, row, plan.organization.h);
      PlacedPrr placed;
      placed.name = name;
      placed.plan = plan;
      placed.plan.window = window;
      placed.plan.first_row = row;
      placed.first_col = window.first_col;
      placed.first_row = row;
      placements_.push_back(placed);
      return placed;
    }
    return std::nullopt;
  };

  // Pass 1: exact column composition (the paper's Fig. 1 semantics).
  for (const PrrPlan& candidate : candidates) {
    for (const ColumnWindow& window :
         fabric_->find_all_windows(candidate.organization.columns)) {
      if (auto placed = try_place(candidate, window)) return placed;
    }
  }

  // Pass 2: superset windows - accept surplus PR-capable columns when no
  // exact span exists (or is free). The effective organization is the
  // window's real composition, so availability, utilization and bitstream
  // size all account for the surplus columns the PRR now drags along.
  for (const PrrPlan& candidate : candidates) {
    for (u32 width = candidate.organization.width();
         width <= fabric_->num_columns(); ++width) {
      for (const ColumnWindow& window : fabric_->find_all_windows_superset(
               candidate.organization.columns, width)) {
        PrrPlan widened = candidate;
        widened.organization.columns = fabric_->window_composition(window);
        widened.available =
            availability(widened.organization, fabric_->traits());
        widened.bitstream =
            estimate_bitstream(widened.organization, fabric_->traits());
        widened.ru = utilization(req, widened.available, fabric_->traits());
        if (auto placed = try_place(widened, window)) return placed;
      }
    }
  }
  return std::nullopt;
}

bool Floorplanner::remove(const std::string& name) {
  for (std::size_t i = 0; i < placements_.size(); ++i) {
    if (placements_[i].name != name) continue;
    const PlacedPrr& placed = placements_[i];
    for (u32 r = placed.first_row;
         r < placed.first_row + placed.plan.organization.h; ++r) {
      for (u32 c = placed.first_col;
           c < placed.first_col + placed.plan.window.width; ++c) {
        occupied_[static_cast<std::size_t>(r) * fabric_->num_columns() + c] =
            false;
      }
    }
    placements_.erase(placements_.begin() +
                      static_cast<std::ptrdiff_t>(i));
    return true;
  }
  return false;
}

void Floorplanner::move_placement(std::size_t index,
                                  const ColumnWindow& window, u32 first_row) {
  if (index >= placements_.size()) {
    throw ContractError{"move_placement: index out of range"};
  }
  PlacedPrr& placed = placements_[index];
  const u32 h = placed.plan.organization.h;
  // Unmark the current rectangle, verify the target, then re-mark.
  const auto set_rect = [&](u32 col0, u32 width, u32 row0, bool value) {
    for (u32 r = row0; r < row0 + h; ++r) {
      for (u32 c = col0; c < col0 + width; ++c) {
        occupied_[static_cast<std::size_t>(r) * fabric_->num_columns() + c] =
            value;
      }
    }
  };
  set_rect(placed.first_col, placed.plan.window.width, placed.first_row,
           false);
  if (!rect_free(window.first_col, window.width, first_row, h)) {
    set_rect(placed.first_col, placed.plan.window.width, placed.first_row,
             true);
    throw ContractError{"move_placement: target rectangle is not free"};
  }
  set_rect(window.first_col, window.width, first_row, true);
  placed.plan.window = window;
  placed.plan.first_row = first_row;
  placed.first_col = window.first_col;
  placed.first_row = first_row;
}

double Floorplanner::occupancy() const {
  const auto used = static_cast<double>(
      std::count(occupied_.begin(), occupied_.end(), true));
  return occupied_.empty() ? 0.0 : used / static_cast<double>(occupied_.size());
}

}  // namespace prcost
