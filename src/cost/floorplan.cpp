#include "cost/floorplan.hpp"

#include "cost/plan_cache.hpp"
#include "util/error.hpp"

namespace prcost {

Floorplanner::Floorplanner(const Fabric& fabric)
    : fabric_(&fabric), grid_(fabric.rows(), fabric.num_columns()) {}

bool Floorplanner::rect_free(u32 first_col, u32 width, u32 first_row,
                             u32 height) const {
  return grid_.rect_free(first_col, width, first_row, height);
}

void Floorplanner::mark(u32 first_col, u32 width, u32 first_row, u32 height) {
  grid_.set_rect(first_col, width, first_row, height, true);
}

void Floorplanner::reserve(u32 first_col, u32 width, u32 first_row,
                           u32 height) {
  if (first_col + width > fabric_->num_columns() ||
      first_row + height > fabric_->rows()) {
    throw ContractError{"Floorplanner::reserve: rectangle exceeds fabric"};
  }
  mark(first_col, width, first_row, height);
}

std::optional<PlacedPrr> Floorplanner::place(const std::string& name,
                                             const PrmRequirements& req,
                                             SearchObjective objective) {
  // Candidate organizations over all heights, sorted by the objective.
  // Unlike enumerate_prrs this does NOT pre-filter on exact-window
  // existence: a candidate with no exact span can still be placed by the
  // superset pass below. The list is a pure function of (fabric, req,
  // objective), memoized in the plan cache and shared across threads.
  const std::shared_ptr<const std::vector<PrrPlan>> candidates =
      placement_candidates(req, *fabric_, objective);

  const auto try_place = [&](const PrrPlan& plan,
                             const ColumnWindow& window)
      -> std::optional<PlacedPrr> {
    for (u32 row = 0; row + plan.organization.h <= fabric_->rows(); ++row) {
      if (!rect_free(window.first_col, window.width, row,
                     plan.organization.h)) {
        continue;
      }
      mark(window.first_col, window.width, row, plan.organization.h);
      PlacedPrr placed;
      placed.name = name;
      placed.plan = plan;
      placed.plan.window = window;
      placed.plan.first_row = row;
      placed.first_col = window.first_col;
      placed.first_row = row;
      placements_.push_back(placed);
      return placed;
    }
    return std::nullopt;
  };

  // Pass 1: exact column composition (the paper's Fig. 1 semantics).
  for (const PrrPlan& candidate : *candidates) {
    for (const ColumnWindow& window :
         fabric_->find_all_windows(candidate.organization.columns)) {
      if (auto placed = try_place(candidate, window)) return placed;
    }
  }

  // Pass 2: superset windows - accept surplus PR-capable columns when no
  // exact span exists (or is free). The effective organization is the
  // window's real composition, so availability, utilization and bitstream
  // size all account for the surplus columns the PRR now drags along.
  if (plan_cache_enabled()) {
    // The whole widened sequence is pure in (fabric, req, objective);
    // take it precomputed from the plan cache and only test occupancy.
    const std::shared_ptr<const std::vector<PrrPlan>> widened =
        widened_candidates(req, *fabric_, objective);
    for (const PrrPlan& plan : *widened) {
      if (auto placed = try_place(plan, plan.window)) return placed;
    }
    return std::nullopt;
  }
  // Cache disabled: generate lazily so an early fit skips the rest of the
  // sweep. Must enumerate in the same order as widen_candidates.
  for (const PrrPlan& candidate : *candidates) {
    for (u32 width = candidate.organization.width();
         width <= fabric_->num_columns(); ++width) {
      for (const ColumnWindow& window : fabric_->find_all_windows_superset(
               candidate.organization.columns, width)) {
        PrrPlan widened = candidate;
        widened.organization.columns = fabric_->window_composition(window);
        widened.available =
            availability(widened.organization, fabric_->traits());
        widened.bitstream =
            estimate_bitstream(widened.organization, fabric_->traits());
        widened.ru = utilization(req, widened.available, fabric_->traits());
        if (auto placed = try_place(widened, window)) return placed;
      }
    }
  }
  return std::nullopt;
}

std::optional<PlacedPrr> Floorplanner::place_plan(const std::string& name,
                                                  const PrrPlan& plan) {
  if (!rect_free(plan.window.first_col, plan.window.width, plan.first_row,
                 plan.organization.h)) {
    return std::nullopt;
  }
  mark(plan.window.first_col, plan.window.width, plan.first_row,
       plan.organization.h);
  PlacedPrr placed;
  placed.name = name;
  placed.plan = plan;
  placed.first_col = plan.window.first_col;
  placed.first_row = plan.first_row;
  placements_.push_back(placed);
  return placed;
}

bool Floorplanner::remove(const std::string& name) {
  for (std::size_t i = 0; i < placements_.size(); ++i) {
    if (placements_[i].name != name) continue;
    const PlacedPrr& placed = placements_[i];
    grid_.set_rect(placed.first_col, placed.plan.window.width,
                   placed.first_row, placed.plan.organization.h, false);
    placements_.erase(placements_.begin() +
                      static_cast<std::ptrdiff_t>(i));
    return true;
  }
  return false;
}

void Floorplanner::move_placement(std::size_t index,
                                  const ColumnWindow& window, u32 first_row) {
  if (index >= placements_.size()) {
    throw ContractError{"move_placement: index out of range"};
  }
  if (!try_move_placement(index, window, first_row)) {
    throw ContractError{"move_placement: target rectangle is not free"};
  }
}

bool Floorplanner::try_move_placement(std::size_t index,
                                      const ColumnWindow& window,
                                      u32 first_row) {
  if (index >= placements_.size()) return false;
  PlacedPrr& placed = placements_[index];
  const u32 h = placed.plan.organization.h;
  // Unmark the current rectangle, verify the target, then re-mark.
  grid_.set_rect(placed.first_col, placed.plan.window.width, placed.first_row,
                 h, false);
  if (!rect_free(window.first_col, window.width, first_row, h)) {
    grid_.set_rect(placed.first_col, placed.plan.window.width,
                   placed.first_row, h, true);
    return false;
  }
  grid_.set_rect(window.first_col, window.width, first_row, h, true);
  placed.plan.window = window;
  placed.plan.first_row = first_row;
  placed.first_col = window.first_col;
  placed.first_row = first_row;
  return true;
}

double Floorplanner::occupancy() const {
  const auto cells = static_cast<double>(u64{fabric_->rows()} *
                                         fabric_->num_columns());
  return cells == 0 ? 0.0
                    : static_cast<double>(grid_.count_set()) / cells;
}

}  // namespace prcost
