// Non-rectangular (L/T-shaped) PRR extension.
//
// Section IV closes with: "Higher RUs may be obtained by selecting
// non-rectangular PRRs (such as an L or T PRR shape), but chances of
// routing problems in the PRRs are increased." This module implements that
// option: a shaped PRR is a vertical stack of rectangular bands, each with
// its own height and column organization. Because partial bitstreams
// address the fabric per (row, column), the Eq. (18) accounting
// generalizes band-wise:
//
//   S = {IW + sum_bands h_b * (NCW_row(b) + NDW_BRAM(b)) + FW} * Bytes_word
//
// The canonical win: FIR on the LX110T needs 4 rows of the single DSP
// column but only ~163 CLBs; the rectangular optimum drags 2 CLB columns
// through 5 rows (PRR size 15), while an L-shape with a 4-row DSP+CLB band
// plus a 1-row CLB band covers the demand with fewer cells and a smaller
// bitstream.
#pragma once

#include <optional>
#include <vector>

#include "cost/bitstream_model.hpp"
#include "cost/prr_search.hpp"
#include "device/fabric.hpp"

namespace prcost {

/// One horizontal band of a shaped PRR.
struct PrrBand {
  PrrOrganization organization;  ///< band height + column organization
  ColumnWindow window;           ///< concrete columns on the fabric
  u32 first_row = 0;             ///< bottom fabric row of the band
};

/// A shaped PRR: one or more vertically stacked bands whose column windows
/// overlap pairwise with their vertical neighbour (connected shape).
struct ShapedPrr {
  std::vector<PrrBand> bands;

  /// Total fabric cells (the shaped analogue of Eq. 7).
  u64 size() const;
  /// Total height in rows.
  u32 height() const;
};

/// Band-wise availability (Eqs. 8-12 summed over bands).
PrrAvailability shaped_availability(const ShapedPrr& prr,
                                    const FamilyTraits& t);

/// Band-wise bitstream size (generalized Eq. 18).
BitstreamEstimate estimate_shaped_bitstream(const ShapedPrr& prr,
                                            const FamilyTraits& t);

/// A found shaped plan with derived metrics.
struct ShapedPrrPlan {
  ShapedPrr shape;
  PrrAvailability available;
  ResourceUtilization ru;
  BitstreamEstimate bitstream;
};

/// Search two-band (L-shaped) PRRs for `req` on `fabric`: band 1 carries
/// all DSP demand, band 2 all BRAM demand, CLB demand splits across both;
/// every (h1, h2, split) candidate is checked for a pair of vertically
/// overlapping fabric windows. Returns the candidate minimizing total
/// cells (ties: smaller bitstream), or nullopt. A rectangle is returned
/// only if no true two-band shape beats it (callers compare against
/// find_prr themselves).
std::optional<ShapedPrrPlan> find_l_shaped_prr(const PrmRequirements& req,
                                               const Fabric& fabric);

}  // namespace prcost
