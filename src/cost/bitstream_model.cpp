#include "cost/bitstream_model.hpp"

#include "util/error.hpp"

namespace prcost {

BitstreamEstimate estimate_bitstream(const PrrOrganization& org,
                                     const FamilyTraits& t) {
  if (org.h == 0) throw ContractError{"estimate_bitstream: H == 0"};
  if (org.width() == 0) {
    throw ContractError{"estimate_bitstream: empty organization"};
  }
  BitstreamEstimate e;
  e.rows = org.h;
  e.initial_words = t.iw;
  e.final_words = t.fw;

  const u64 ncf_clb = checked_mul(org.columns.clb_cols, t.cf_clb);    // (20)
  const u64 ncf_dsp = checked_mul(org.columns.dsp_cols, t.cf_dsp);    // (21)
  const u64 ncf_bram = checked_mul(org.columns.bram_cols, t.cf_bram); // (22)
  e.config_frames_per_row = ncf_clb + ncf_dsp + ncf_bram + 1;
  e.config_words_per_row =
      t.far_fdri + checked_mul(e.config_frames_per_row, t.frame_size); // (19)

  if (org.columns.bram_cols > 0) {
    e.bram_words_per_row =
        t.far_fdri +
        checked_mul(checked_mul(org.columns.bram_cols, t.df_bram) + 1,
                    t.frame_size);                                     // (23)
  }

  e.total_words =
      checked_add(e.initial_words,
                  checked_add(checked_mul(e.rows, e.config_words_per_row +
                                                      e.bram_words_per_row),
                              e.final_words));
  e.total_bytes = checked_mul(e.total_words, t.bytes_word);            // (18)
  return e;
}

u64 bitstream_bytes(const PrrOrganization& org, const FamilyTraits& t) {
  return estimate_bitstream(org, t).total_bytes;
}

}  // namespace prcost
