#include "cost/shaped_prr.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace prcost {

u64 ShapedPrr::size() const {
  u64 total = 0;
  for (const PrrBand& band : bands) {
    total = checked_add(total, band.organization.size());
  }
  return total;
}

u32 ShapedPrr::height() const {
  u32 total = 0;
  for (const PrrBand& band : bands) total += band.organization.h;
  return total;
}

PrrAvailability shaped_availability(const ShapedPrr& prr,
                                    const FamilyTraits& t) {
  PrrAvailability total;
  for (const PrrBand& band : prr.bands) {
    const PrrAvailability a = availability(band.organization, t);
    total.clbs += a.clbs;
    total.ffs += a.ffs;
    total.luts += a.luts;
    total.dsps += a.dsps;
    total.brams += a.brams;
  }
  return total;
}

BitstreamEstimate estimate_shaped_bitstream(const ShapedPrr& prr,
                                            const FamilyTraits& t) {
  if (prr.bands.empty()) {
    throw ContractError{"estimate_shaped_bitstream: no bands"};
  }
  BitstreamEstimate total;
  total.initial_words = t.iw;
  total.final_words = t.fw;
  u64 body_words = 0;
  for (const PrrBand& band : prr.bands) {
    const BitstreamEstimate e = estimate_bitstream(band.organization, t);
    body_words = checked_add(
        body_words, checked_mul(band.organization.h,
                                e.config_words_per_row + e.bram_words_per_row));
    total.rows += band.organization.h;
    // Report the widest band's per-row quantities for inspection.
    if (e.config_words_per_row > total.config_words_per_row) {
      total.config_words_per_row = e.config_words_per_row;
      total.config_frames_per_row = e.config_frames_per_row;
      total.bram_words_per_row = e.bram_words_per_row;
    }
  }
  total.total_words = checked_add(t.iw, checked_add(body_words, t.fw));
  total.total_bytes = checked_mul(total.total_words, t.bytes_word);
  return total;
}

namespace {

bool windows_overlap(const ColumnWindow& a, const ColumnWindow& b) {
  return a.first_col < b.first_col + b.width &&
         b.first_col < a.first_col + a.width;
}

/// First pair of (window for a, window for b) that overlap in columns.
std::optional<std::pair<ColumnWindow, ColumnWindow>> overlapping_pair(
    const Fabric& fabric, const ColumnDemand& a, const ColumnDemand& b) {
  const auto windows_a = fabric.find_all_windows(a);
  if (windows_a.empty()) return std::nullopt;
  const auto windows_b = fabric.find_all_windows(b);
  for (const ColumnWindow& wa : windows_a) {
    for (const ColumnWindow& wb : windows_b) {
      if (windows_overlap(wa, wb)) return std::make_pair(wa, wb);
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<ShapedPrrPlan> find_l_shaped_prr(const PrmRequirements& req,
                                               const Fabric& fabric) {
  const FamilyTraits& t = fabric.traits();
  const bool single_dsp = fabric.column_count(ColumnType::kDsp) == 1;
  const u64 clbs_needed = clb_req(req, t);
  if (clbs_needed == 0 && req.dsps == 0 && req.brams == 0) {
    return std::nullopt;
  }

  std::optional<ShapedPrrPlan> best;
  const auto consider = [&](ShapedPrr shape) {
    ShapedPrrPlan plan;
    plan.shape = std::move(shape);
    plan.available = shaped_availability(plan.shape, t);
    if (plan.available.clbs < clbs_needed || plan.available.dsps < req.dsps ||
        plan.available.brams < req.brams) {
      return;
    }
    plan.ru = utilization(req, plan.available, t);
    plan.bitstream = estimate_shaped_bitstream(plan.shape, t);
    const bool better =
        !best || plan.shape.size() < best->shape.size() ||
        (plan.shape.size() == best->shape.size() &&
         plan.bitstream.total_bytes < best->bitstream.total_bytes);
    if (better) best = std::move(plan);
  };

  for (u32 h1 = 1; h1 <= fabric.rows(); ++h1) {
    // Band 1 carries all DSPs (Eq. 3/4 semantics at height h1).
    u32 dsp_cols1 = 0;
    if (req.dsps > 0) {
      if (single_dsp) {
        if (ceil_div(req.dsps, t.dsp_col) > h1) continue;  // cannot reach
        dsp_cols1 = 1;
      } else {
        dsp_cols1 = narrow<u32>(ceil_div(req.dsps, u64{h1} * t.dsp_col));
      }
    }
    for (u32 h2 = 1; h1 + h2 <= fabric.rows(); ++h2) {
      // Band 2 carries all BRAMs.
      const u32 bram_cols2 =
          req.brams > 0
              ? narrow<u32>(ceil_div(req.brams, u64{h2} * t.bram_col))
              : 0;
      // Split CLB columns: band 1 takes clb1 columns, band 2 the rest.
      const u32 max_clb1 = narrow<u32>(
          clbs_needed == 0 ? 0 : ceil_div(clbs_needed, u64{h1} * t.clb_col));
      for (u32 clb1 = 0; clb1 <= max_clb1; ++clb1) {
        const u64 covered = u64{clb1} * h1 * t.clb_col;
        const u64 remaining = covered >= clbs_needed ? 0 : clbs_needed - covered;
        const u32 clb2 =
            remaining == 0
                ? 0
                : narrow<u32>(ceil_div(remaining, u64{h2} * t.clb_col));
        const ColumnDemand demand1{clb1, dsp_cols1, 0};
        const ColumnDemand demand2{clb2, 0, bram_cols2};
        if (demand1.width() == 0 || demand2.width() == 0) continue;
        const auto windows = overlapping_pair(fabric, demand1, demand2);
        if (!windows) continue;
        ShapedPrr shape;
        shape.bands.push_back(
            PrrBand{PrrOrganization{h1, demand1}, windows->first, 0});
        shape.bands.push_back(
            PrrBand{PrrOrganization{h2, demand2}, windows->second, h1});
        consider(std::move(shape));
      }
    }
  }
  return best;
}

}  // namespace prcost
