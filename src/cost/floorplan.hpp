// Multi-PRR floorplanning on a device fabric.
//
// The paper's flow (Fig. 1) searches for one PRR "starting at the bottom
// of the device fabric (row = 1)". In a real PR system the fabric also
// hosts a static region and other PRRs, so later searches must skip
// occupied rectangles. This module adds that occupancy-aware placement on
// top of the Fig. 1 search - it is the "floorplanning stage" the paper's
// future-work section points at.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cost/prr_search.hpp"
#include "device/fabric.hpp"
#include "util/bitgrid.hpp"

namespace prcost {

/// One placed PRR: the plan plus its concrete rectangle.
struct PlacedPrr {
  std::string name;
  PrrPlan plan;
  u32 first_col = 0;  ///< left-most fabric column (0-based)
  u32 first_row = 0;  ///< bottom fabric row (0-based)
};

/// Occupancy-aware sequential floorplanner. Placement is greedy in call
/// order: callers place the largest/most-constrained PRMs first for best
/// packing (the classic offline strategy; the DSE module automates
/// orderings).
class Floorplanner {
 public:
  explicit Floorplanner(const Fabric& fabric);

  /// Mark a rectangle as used by the static region. Throws ContractError
  /// if it exceeds the fabric.
  void reserve(u32 first_col, u32 width, u32 first_row, u32 height);

  /// Place the best PRR for `req` (by `objective`) in free space. Tries
  /// candidate organizations in objective order, every matching column
  /// window, and every row offset bottom-up. Returns nullopt when nothing
  /// fits.
  std::optional<PlacedPrr> place(const std::string& name,
                                 const PrmRequirements& req,
                                 SearchObjective objective =
                                     SearchObjective::kMinArea);

  /// Place a specific, already-searched plan (its window/first_row must be
  /// set, e.g. from `place` on a scratch copy or a relocation candidate).
  /// Returns nullopt instead of throwing when the rectangle is occupied.
  /// Used by the joint optimizer to replay a candidate on a trial layout.
  std::optional<PlacedPrr> place_plan(const std::string& name,
                                      const PrrPlan& plan);

  const std::vector<PlacedPrr>& placements() const { return placements_; }

  /// Free a previously placed PRR by name (first match). Returns false if
  /// no placement has that name. Reserved rectangles are never released.
  bool remove(const std::string& name);

  /// Relocate placement `index` to a new rectangle (marks/unmarks cells
  /// and rewrites the stored placement). The target must be free after
  /// removing the placement itself; throws ContractError otherwise. Used
  /// by the HTR defragmenter.
  void move_placement(std::size_t index, const ColumnWindow& window,
                      u32 first_row);

  /// Non-throwing variant of move_placement: returns false (layout
  /// untouched) when the target is occupied or the index is out of range.
  /// The optimizer probes many speculative targets, so failure is a
  /// normal outcome rather than a contract violation.
  bool try_move_placement(std::size_t index, const ColumnWindow& window,
                          u32 first_row);

  /// Fraction of fabric cells (rows x columns) currently occupied.
  double occupancy() const;

  /// True if the rectangle is fully free and inside the fabric.
  bool rect_free(u32 first_col, u32 width, u32 first_row, u32 height) const;

  /// The raw occupancy bitmask (fragmentation metrics, property tests).
  const BitGrid& grid() const { return grid_; }

  const Fabric& fabric() const { return *fabric_; }

 private:
  void mark(u32 first_col, u32 width, u32 first_row, u32 height);

  const Fabric* fabric_;
  /// Occupancy bitmap: one bit per fabric cell (util/bitgrid.hpp), shared
  /// substrate with the HTR defragmenter and the joint optimizer
  /// (rect_free dominates DSE time).
  BitGrid grid_;
  std::vector<PlacedPrr> placements_;
};

}  // namespace prcost
