// Partial bitstream size cost model - the paper's second contribution
// (Section III.C, Eqs. (18)-(23) and Tables III-IV).
//
// Given a PRR organization (H rows of W_CLB/W_DSP/W_BRAM columns) and the
// device family's frame geometry, the model predicts the exact byte size
// of the PRM's partial bitstream:
//
//   S_bitstream = {IW + H * (NCW_row + NDW_BRAM) + FW} * Bytes_word  (18)
//   NCW_row  = FAR_FDRI + (NCF_CLB + NCF_DSP + NCF_BRAM + 1) * FR_size (19)
//   NCF_CLB  = W_CLB  * CF_CLB                                        (20)
//   NCF_DSP  = W_DSP  * CF_DSP                                        (21)
//   NCF_BRAM = W_BRAM * CF_BRAM                                       (22)
//   NDW_BRAM = FAR_FDRI + (W_BRAM * DF_BRAM + 1) * FR_size            (23)
//
// The "+1" frame in (19)/(23) is the configuration-pipeline flush frame
// each FDRI burst carries. The model is validated byte-for-byte against
// the generator in src/bitstream.
#pragma once

#include "cost/prr_model.hpp"
#include "device/family_traits.hpp"

namespace prcost {

/// Full breakdown of a predicted partial bitstream (all counts in 32/16-bit
/// configuration words except `total_bytes`).
struct BitstreamEstimate {
  u64 initial_words = 0;        ///< IW
  u64 config_words_per_row = 0; ///< NCW_row  (Eq. 19)
  u64 bram_words_per_row = 0;   ///< NDW_BRAM (Eq. 23; 0 when W_BRAM == 0)
  u64 final_words = 0;          ///< FW
  u64 rows = 0;                 ///< H
  u64 total_words = 0;          ///< IW + H*(NCW_row + NDW_BRAM) + FW
  u64 total_bytes = 0;          ///< S_bitstream (Eq. 18)

  /// Configuration frames per PRR row (NCF_CLB + NCF_DSP + NCF_BRAM plus
  /// the flush frame) - the quantity reconfiguration-time models consume.
  u64 config_frames_per_row = 0;
};

/// Apply Eqs. (18)-(23) to `org` for family traits `t`.
BitstreamEstimate estimate_bitstream(const PrrOrganization& org,
                                     const FamilyTraits& t);

/// Shorthand: predicted size in bytes.
u64 bitstream_bytes(const PrrOrganization& org, const FamilyTraits& t);

}  // namespace prcost
