#include "cost/prr_search.hpp"

#include <algorithm>

#include "cost/plan_cache.hpp"
#include "obs/obs.hpp"
#include "util/arena.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace prcost {
namespace {

PrrPlan make_plan(const PrmRequirements& req, const Fabric& fabric,
                  const PrrOrganization& org, const ColumnWindow& window) {
  PrrPlan plan;
  plan.organization = org;
  plan.window = window;
  plan.first_row = 0;  // fabric rows are uniform; Fig. 1 starts at row 1
  plan.available = availability(org, fabric.traits());
  plan.ru = utilization(req, plan.available, fabric.traits());
  plan.bitstream = estimate_bitstream(org, fabric.traits());
  return plan;
}

/// True if `a` beats `b` under `objective` (ties prefer smaller H).
bool better(const PrrPlan& a, const PrrPlan& b, SearchObjective objective) {
  switch (objective) {
    case SearchObjective::kMinArea:
      if (a.organization.size() != b.organization.size()) {
        return a.organization.size() < b.organization.size();
      }
      return a.organization.h < b.organization.h;
    case SearchObjective::kFirstFeasible:
      return a.organization.h < b.organization.h;
    case SearchObjective::kMinBitstream:
      if (a.bitstream.total_bytes != b.bitstream.total_bytes) {
        return a.bitstream.total_bytes < b.bitstream.total_bytes;
      }
      return a.organization.h < b.organization.h;
  }
  throw ContractError{"better: unknown objective"};
}

std::optional<PrrPlan> search(const PrmRequirements& req, const Fabric& fabric,
                              const SearchOptions& options) {
  PRCOST_TRACE_SPAN("prr_search");
  const bool single_dsp = fabric.column_count(ColumnType::kDsp) == 1;
  const u32 max_h = options.max_height == 0
                        ? fabric.rows()
                        : std::min(options.max_height, fabric.rows());
  std::optional<PrrPlan> best;
  u64 rejected = 0, accepted = 0;
  for (u32 h = 1; h <= max_h; ++h) {
    const auto org =
        organization_for_height(req, fabric.traits(), h, single_dsp);
    if (!org) {
      ++rejected;
      continue;
    }
    const auto window = fabric.find_window(org->columns);
    if (!window) {  // internal fragmentation: no contiguous span
      ++rejected;
      PRCOST_COUNT("prr_search.window_misses");
      continue;
    }
    PrrPlan plan = make_plan(req, fabric, *org, *window);
    if (!best || better(plan, *best, options.objective)) {
      best = std::move(plan);
      ++accepted;
      if (options.objective == SearchObjective::kFirstFeasible) break;
    }
  }
  PRCOST_COUNT("prr_search.searches");
  PRCOST_COUNT_N("prr_search.candidates_rejected", rejected);
  PRCOST_COUNT_N("prr_search.candidates_accepted", accepted);
  if (!best) PRCOST_COUNT("prr_search.infeasible");
  return best;
}

}  // namespace

std::optional<PrrPlan> find_prr(const PrmRequirements& req,
                                const Fabric& fabric,
                                const SearchOptions& options) {
  if (req.lut_ff_pairs == 0 && req.dsps == 0 && req.brams == 0) {
    return std::nullopt;  // empty PRM: nothing to place
  }
  if (plan_cache_enabled()) return find_prr_cached(req, fabric, options);
  return search(req, fabric, options);
}

std::optional<PrrPlan> find_prr_uncached(const PrmRequirements& req,
                                         const Fabric& fabric,
                                         const SearchOptions& options) {
  if (req.lut_ff_pairs == 0 && req.dsps == 0 && req.brams == 0) {
    return std::nullopt;
  }
  return search(req, fabric, options);
}

std::vector<PrrPlan> placement_candidates_uncached(const PrmRequirements& req,
                                                   const Fabric& fabric,
                                                   SearchObjective objective) {
  // Stage through the thread's scratch arena: the sweep does not know its
  // candidate count up front, so a plain vector would reallocate-and-copy
  // log2(n) times. The arena bumps instead, and the single exact-size heap
  // allocation happens once at the end.
  ScratchScope scratch;
  std::vector<PrrPlan, ArenaAllocator<PrrPlan>> candidates{
      ArenaAllocator<PrrPlan>{scratch.arena()}};
  const bool single_dsp = fabric.column_count(ColumnType::kDsp) == 1;
  for (u32 h = 1; h <= fabric.rows(); ++h) {
    const auto org =
        organization_for_height(req, fabric.traits(), h, single_dsp);
    if (!org) continue;
    PrrPlan plan;
    plan.organization = *org;
    plan.available = availability(*org, fabric.traits());
    plan.ru = utilization(req, plan.available, fabric.traits());
    plan.bitstream = estimate_bitstream(*org, fabric.traits());
    candidates.push_back(std::move(plan));
  }
  const auto key = [&](const PrrPlan& p) {
    switch (objective) {
      case SearchObjective::kMinArea:
        return std::pair<u64, u64>{p.organization.size(), p.organization.h};
      case SearchObjective::kFirstFeasible:
        return std::pair<u64, u64>{p.organization.h, 0};
      case SearchObjective::kMinBitstream:
        return std::pair<u64, u64>{p.bitstream.total_bytes, p.organization.h};
    }
    throw ContractError{"placement_candidates: unknown objective"};
  };
  std::stable_sort(
      candidates.begin(), candidates.end(),
      [&](const PrrPlan& a, const PrrPlan& b) { return key(a) < key(b); });
  return std::vector<PrrPlan>(candidates.begin(), candidates.end());
}

std::vector<PrrPlan> widen_candidates(const std::vector<PrrPlan>& candidates,
                                      const PrmRequirements& req,
                                      const Fabric& fabric) {
  // Same arena staging as placement_candidates_uncached, and the memoized
  // superset-window lists are iterated shared (no per-(candidate, width)
  // vector copy).
  ScratchScope scratch;
  std::vector<PrrPlan, ArenaAllocator<PrrPlan>> widened{
      ArenaAllocator<PrrPlan>{scratch.arena()}};
  for (const PrrPlan& candidate : candidates) {
    for (u32 width = candidate.organization.width();
         width <= fabric.num_columns(); ++width) {
      const auto windows = fabric.superset_windows_shared(
          candidate.organization.columns, width);
      for (const ColumnWindow& window : *windows) {
        PrrPlan plan = candidate;
        plan.window = window;
        plan.organization.columns = fabric.window_composition(window);
        plan.available = availability(plan.organization, fabric.traits());
        plan.bitstream = estimate_bitstream(plan.organization, fabric.traits());
        plan.ru = utilization(req, plan.available, fabric.traits());
        widened.push_back(std::move(plan));
      }
    }
  }
  return std::vector<PrrPlan>(widened.begin(), widened.end());
}

std::optional<PrrPlan> find_shared_prr(std::span<const PrmRequirements> reqs,
                                       const Fabric& fabric,
                                       const SearchOptions& options) {
  if (reqs.empty()) return std::nullopt;
  // Element-wise maximum requirement: the PRR must host the largest
  // per-resource demand across its associated PRMs.
  PrmRequirements merged;
  for (const PrmRequirements& r : reqs) {
    merged.lut_ff_pairs = std::max(merged.lut_ff_pairs, r.lut_ff_pairs);
    merged.luts = std::max(merged.luts, r.luts);
    merged.ffs = std::max(merged.ffs, r.ffs);
    merged.dsps = std::max(merged.dsps, r.dsps);
    merged.brams = std::max(merged.brams, r.brams);
  }
  return find_prr(merged, fabric, options);
}

std::vector<PrrPlan> enumerate_prrs(const PrmRequirements& req,
                                    const Fabric& fabric, u32 max_height) {
  PRCOST_TRACE_SPAN("prr_enumerate");
  PRCOST_COUNT("prr_search.enumerations");
  std::vector<PrrPlan> plans;
  const bool single_dsp = fabric.column_count(ColumnType::kDsp) == 1;
  const u32 max_h = max_height == 0 ? fabric.rows()
                                    : std::min(max_height, fabric.rows());
  for (u32 h = 1; h <= max_h; ++h) {
    const auto org =
        organization_for_height(req, fabric.traits(), h, single_dsp);
    if (!org) continue;
    const auto window = fabric.find_window(org->columns);
    if (!window) continue;
    plans.push_back(make_plan(req, fabric, *org, *window));
  }
  return plans;
}

}  // namespace prcost
