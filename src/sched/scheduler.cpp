#include "sched/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "device/family_traits.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "reconfig/baselines.hpp"
#include "reconfig/icap.hpp"
#include "util/error.hpp"

namespace prcost::sched {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One PRR slot: which PRM is configured and when it goes idle.
struct SlotState {
  i64 loaded = -1;     ///< PRM index, -1 = empty
  double free_at = 0;
};

/// Per-PRM online state for the prefetch rate estimator.
struct PrmState {
  double last_arrival_s = 0;
  bool seen = false;
  double ewma_gap_s = 0;      ///< 0 until two arrivals observed
  bool prefetch_issued = false;
  double prefetch_ready_s = kInf;  ///< when the warm copy is resident
};

/// Admission order: (arrival, input order), the same canonical tie-break
/// sort_by_arrival pins for the simulators.
std::vector<std::size_t> admission_order(const std::vector<Task>& tasks) {
  std::vector<std::size_t> order(tasks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&tasks](std::size_t a, std::size_t b) {
              if (tasks[a].arrival_s != tasks[b].arrival_s) {
                return tasks[a].arrival_s < tasks[b].arrival_s;
              }
              return a < b;
            });
  return order;
}

/// Pick the next ready task per policy. `ready` holds positions in
/// admission order, ascending; every tie breaks toward earlier admission.
std::size_t pick_ready(const std::vector<std::size_t>& ready,
                       const std::vector<const Task*>& admitted,
                       Policy policy) {
  if (policy == Policy::kFcfs) return 0;
  std::size_t best = 0;
  for (std::size_t i = 1; i < ready.size(); ++i) {
    const Task& candidate = *admitted[ready[i]];
    const Task& incumbent = *admitted[ready[best]];
    if (policy == Policy::kPriority) {
      if (candidate.priority > incumbent.priority) best = i;
    } else {  // kEdf
      const double cd =
          candidate.deadline_s > 0 ? candidate.deadline_s : kInf;
      const double id =
          incumbent.deadline_s > 0 ? incumbent.deadline_s : kInf;
      if (cd < id) best = i;
    }
  }
  return best;
}

}  // namespace

std::string_view policy_name(Policy policy) {
  switch (policy) {
    case Policy::kFcfs:     return "fcfs";
    case Policy::kPriority: return "priority";
    case Policy::kEdf:      return "edf";
  }
  return "fcfs";
}

Policy parse_policy(std::string_view name) {
  if (name == "fcfs") return Policy::kFcfs;
  if (name == "priority") return Policy::kPriority;
  if (name == "edf") return Policy::kEdf;
  throw UsageError{"unknown policy '" + std::string{name} +
                   "' (expected fcfs, priority or edf)"};
}

Report run(const std::vector<PrmInfo>& prms, std::vector<Task> tasks,
           const SchedulerConfig& config) {
  PRCOST_TRACE_SPAN("sched_run");
  if (config.slot_count == 0) {
    throw ContractError{"sched::run: zero PRR slots"};
  }
  for (const Task& task : tasks) {
    if (task.prm >= prms.size()) {
      throw ContractError{"sched::run: task '" + task.name +
                          "' references unknown PRM " +
                          std::to_string(task.prm)};
    }
  }
  const std::shared_ptr<const ReconfigController> controller =
      config.controller != nullptr
          ? config.controller
          : std::make_shared<DmaIcapController>(
                default_icap(Family::kVirtex5));
  const double alpha =
      config.rate_alpha > 0 && config.rate_alpha <= 1 ? config.rate_alpha
                                                      : 0.5;

  Report report;
  report.tasks.resize(tasks.size());
  if (tasks.empty()) return report;

  const std::vector<std::size_t> order = admission_order(tasks);
  std::vector<const Task*> admitted;  // tasks in admission order
  admitted.reserve(order.size());
  for (const std::size_t i : order) admitted.push_back(&tasks[i]);

  std::vector<SlotState> slots(config.slot_count);
  std::vector<double> cpu_free(config.cpu_workers, 0.0);
  std::vector<PrmState> prm_state(prms.size());
  double icap_free_at = 0;
  double clock = 0;

  // Seconds of reconfiguration priced per transfer, given the fetch
  // media, under the fault model's retry expectation.
  const auto reconfig_seconds = [&](u32 prm, StorageMedia media) {
    const double attempt_s =
        controller->estimate(prms[prm].bitstream_bytes, media).total_s;
    if (config.fault_rate <= 0) return attempt_s;
    return expected_retry_cost(attempt_s, config.fault_rate, config.retry)
        .expected_time_s;
  };

  // Observe one arrival for the prefetch rate estimator; fires the
  // prefetch (once per PRM) when the EWMA arrival-rate estimate reaches
  // the threshold. The staged copy becomes resident one cold fetch later.
  const auto observe_arrival = [&](u32 prm, double arrival_s) {
    PrmState& state = prm_state[prm];
    if (state.seen) {
      const double gap = arrival_s - state.last_arrival_s;
      state.ewma_gap_s = state.ewma_gap_s > 0
                             ? alpha * gap + (1 - alpha) * state.ewma_gap_s
                             : gap;
    }
    state.seen = true;
    state.last_arrival_s = arrival_s;
    if (config.prefetch_rate_hz > 0 && !state.prefetch_issued &&
        state.ewma_gap_s > 0 &&
        1.0 / state.ewma_gap_s >= config.prefetch_rate_hz) {
      state.prefetch_issued = true;
      state.prefetch_ready_s =
          arrival_s +
          fetch_seconds(config.cold_media, prms[prm].bitstream_bytes);
      ++report.prefetches_issued;
      if (config.prefetch_hook) config.prefetch_hook(prm);
    }
  };

  std::vector<std::size_t> ready;  // positions in admission order
  std::size_t next_admit = 0;

  const auto admit_until = [&](double now) {
    while (next_admit < admitted.size() &&
           admitted[next_admit]->arrival_s <= now) {
      observe_arrival(admitted[next_admit]->prm,
                      admitted[next_admit]->arrival_s);
      ready.push_back(next_admit);
      ++next_admit;
    }
  };

  std::size_t dispatched = 0;
  while (dispatched < admitted.size()) {
    admit_until(clock);
    if (ready.empty()) {
      clock = std::max(clock, admitted[next_admit]->arrival_s);
      continue;
    }
    // Decision points are instants where at least one slot is idle;
    // otherwise advance to the next event (arrival or slot release) so
    // later, more urgent arrivals still get considered.
    double next_free = kInf;
    bool slot_idle = false;
    for (const SlotState& slot : slots) {
      if (slot.free_at <= clock) slot_idle = true;
      next_free = std::min(next_free, slot.free_at);
    }
    if (!slot_idle) {
      double next_event = next_free;
      if (next_admit < admitted.size()) {
        next_event =
            std::min(next_event, admitted[next_admit]->arrival_s);
      }
      clock = std::max(clock, next_event);
      continue;
    }

    const std::size_t ready_pos = pick_ready(ready, admitted, config.policy);
    const std::size_t admit_pos = ready[ready_pos];
    ready.erase(ready.begin() +
                static_cast<std::ptrdiff_t>(ready_pos));
    const Task& task = *admitted[admit_pos];
    const PrmState& pstate = prm_state[task.prm];

    // Price every candidate slot: residency is free; anything else pays
    // an ICAP-serialized reconfiguration at warm or cold media speed.
    struct Placement {
      std::size_t slot = 0;
      bool reconfigure = false;
      bool warm = false;
      double reconfig_s = 0;
      double start_s = 0;
      double finish_s = 0;
    };
    Placement best;
    best.finish_s = kInf;
    for (std::size_t s = 0; s < slots.size(); ++s) {
      Placement candidate;
      candidate.slot = s;
      if (slots[s].loaded == static_cast<i64>(task.prm)) {
        candidate.start_s = std::max(clock, slots[s].free_at);
      } else {
        candidate.reconfigure = true;
        const double reconfig_start =
            std::max({clock, slots[s].free_at, icap_free_at});
        candidate.warm = pstate.prefetch_ready_s <= reconfig_start;
        candidate.reconfig_s = reconfig_seconds(
            task.prm,
            candidate.warm ? config.warm_media : config.cold_media);
        candidate.start_s = reconfig_start + candidate.reconfig_s;
      }
      candidate.finish_s = candidate.start_s + task.exec_s;
      if (candidate.finish_s < best.finish_s) best = candidate;
    }

    TaskOutcome& outcome = report.tasks[order[admit_pos]];
    outcome.task = narrow<u32>(order[admit_pos]);

    // Deadline-infeasible on every PRR: run in software instead of
    // spending ICAP bandwidth on a placement that cannot meet it.
    bool use_cpu = false;
    if (task.deadline_s > 0 && best.finish_s > task.deadline_s &&
        !cpu_free.empty()) {
      use_cpu = true;
    }
    if (use_cpu) {
      std::size_t worker = 0;
      for (std::size_t w = 1; w < cpu_free.size(); ++w) {
        if (cpu_free[w] < cpu_free[worker]) worker = w;
      }
      outcome.cpu_fallback = true;
      outcome.slot = narrow<u32>(worker);
      outcome.start_s = std::max(clock, cpu_free[worker]);
      outcome.finish_s =
          outcome.start_s + task.exec_s * config.cpu_slowdown;
      cpu_free[worker] = outcome.finish_s;
      ++report.cpu_fallbacks;
    } else {
      outcome.slot = narrow<u32>(best.slot);
      outcome.reconfigured = best.reconfigure;
      outcome.prefetched = best.reconfigure && best.warm;
      outcome.reconfig_s = best.reconfig_s;
      outcome.start_s = best.start_s;
      outcome.finish_s = best.finish_s;
      if (best.reconfigure) {
        icap_free_at = best.start_s;  // reconfig ends where exec starts
        ++report.reconfig_count;
        report.total_reconfig_s += best.reconfig_s;
        if (best.warm) ++report.prefetched_reconfigs;
      } else {
        ++report.reuse_hits;
      }
      slots[best.slot].loaded = static_cast<i64>(task.prm);
      slots[best.slot].free_at = outcome.finish_s;
    }
    outcome.wait_s = outcome.start_s - task.arrival_s;
    outcome.deadline_miss =
        task.deadline_s > 0 && outcome.finish_s > task.deadline_s;
    if (outcome.deadline_miss) ++report.deadline_misses;
    ++dispatched;
  }

  report.completed = report.tasks.size();
  double wait = 0;
  double turnaround = 0;
  for (std::size_t i = 0; i < report.tasks.size(); ++i) {
    const TaskOutcome& outcome = report.tasks[i];
    report.makespan_s = std::max(report.makespan_s, outcome.finish_s);
    wait += outcome.wait_s;
    turnaround += outcome.finish_s - tasks[i].arrival_s;
  }
  const double n = static_cast<double>(report.tasks.size());
  report.mean_wait_s = wait / n;
  report.mean_turnaround_s = turnaround / n;
  if (report.completed > 0) {
    report.reconfig_seconds_per_task =
        report.total_reconfig_s / static_cast<double>(report.completed);
  }
  if (report.makespan_s > 0) {
    report.throughput_per_s =
        static_cast<double>(report.completed) / report.makespan_s;
  }
  PRCOST_COUNT_N("sched.tasks", report.completed);
  PRCOST_COUNT_N("sched.reconfigs", report.reconfig_count);
  PRCOST_COUNT_N("sched.reuse_hits", report.reuse_hits);
  PRCOST_COUNT_N("sched.prefetches", report.prefetches_issued);
  PRCOST_COUNT_N("sched.cpu_fallbacks", report.cpu_fallbacks);
  PRCOST_COUNT_N("sched.deadline_misses", report.deadline_misses);
  return report;
}

}  // namespace prcost::sched
