#include "sched/generators.hpp"

#include <utility>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/lines.hpp"
#include "util/rng.hpp"

namespace prcost::sched {
namespace {

Task synth_task(u32 index, double arrival, Rng& rng,
                const ArrivalParams& params) {
  Task task;
  task.name = "task" + std::to_string(index);
  task.prm = narrow<u32>(rng.below(params.prm_count));
  task.arrival_s = arrival;
  task.exec_s = rng.exponential(params.mean_exec_s);
  task.priority = narrow<u32>(rng.below(8));
  if (params.deadline_factor > 0) {
    task.deadline_s = task.arrival_s + params.deadline_factor * task.exec_s;
  }
  return task;
}

void check_params(const ArrivalParams& params, const char* who) {
  if (params.prm_count == 0) {
    throw ContractError{std::string{who} + ": zero PRMs"};
  }
}

}  // namespace

std::vector<Task> make_poisson(const ArrivalParams& params) {
  check_params(params, "make_poisson");
  Rng rng{params.seed};
  std::vector<Task> tasks;
  tasks.reserve(params.count);
  double clock = 0.0;
  for (u32 i = 0; i < params.count; ++i) {
    clock += rng.exponential(params.mean_interarrival_s);
    tasks.push_back(synth_task(i, clock, rng, params));
  }
  return tasks;
}

std::vector<Task> make_bursty(const ArrivalParams& params) {
  check_params(params, "make_bursty");
  if (params.burst_size == 0) {
    throw ContractError{"make_bursty: zero burst size"};
  }
  Rng rng{params.seed};
  std::vector<Task> tasks;
  tasks.reserve(params.count);
  double clock = 0.0;
  for (u32 i = 0; i < params.count; ++i) {
    if (i != 0 && i % params.burst_size == 0) {
      // Inter-burst idle gap; within a burst arrivals are jittered by a
      // small fraction of the mean inter-arrival so they stay "almost
      // simultaneous" without being byte-equal.
      clock += params.burst_gap_factor *
               rng.exponential(params.mean_interarrival_s);
    } else {
      clock += 0.05 * rng.exponential(params.mean_interarrival_s);
    }
    tasks.push_back(synth_task(i, clock, rng, params));
  }
  return tasks;
}

std::string dump_trace(const std::vector<Task>& tasks) {
  std::string out;
  for (const Task& task : tasks) {
    Json record = Json::object();
    record.set("name", task.name);
    record.set("prm", task.prm);
    record.set("arrival_s", task.arrival_s);
    record.set("exec_s", task.exec_s);
    if (task.priority != 0) record.set("priority", task.priority);
    if (task.deadline_s != 0) record.set("deadline_s", task.deadline_s);
    out += record.dump();
    out += '\n';
  }
  return out;
}

std::vector<Task> parse_trace(std::string_view text) {
  std::vector<Task> tasks;
  LineSplitter splitter;
  splitter.append(text);
  u64 line_no = 0;
  const auto consume = [&tasks, &line_no](const std::string& line) {
    ++line_no;
    if (line.empty()) return;
    Json record;
    try {
      record = Json::parse(line);
    } catch (const ParseError& error) {
      throw ParseError{"trace line " + std::to_string(line_no) + ": " +
                       error.what()};
    }
    const auto require = [&record, &line_no](std::string_view key) {
      const Json* member = record.find(key);
      if (member == nullptr) {
        throw ParseError{"trace line " + std::to_string(line_no) +
                         ": missing \"" + std::string{key} + "\""};
      }
      return member;
    };
    Task task;
    task.prm = narrow<u32>(require("prm")->as_u64());
    task.arrival_s = require("arrival_s")->as_double();
    task.exec_s = require("exec_s")->as_double();
    if (const Json* name = record.find("name")) {
      task.name = name->as_string();
    } else {
      task.name = "task" + std::to_string(tasks.size());
    }
    if (const Json* priority = record.find("priority")) {
      task.priority = narrow<u32>(priority->as_u64());
    }
    if (const Json* deadline = record.find("deadline_s")) {
      task.deadline_s = deadline->as_double();
    }
    tasks.push_back(std::move(task));
  };
  while (auto line = splitter.next_line()) consume(*line);
  const std::string tail = splitter.take_tail();
  if (!tail.empty()) consume(tail);
  return tasks;
}

}  // namespace prcost::sched
