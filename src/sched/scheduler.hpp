// Online, event-driven hardware-multitasking scheduler runtime.
//
// The multitask simulators replay fixed, pre-sorted schedules; this module
// makes the dispatch decision *online*, as tasks arrive, the way a
// production PR runtime would:
//
//   - a priority ready-queue with pluggable policies (FCFS / priority /
//     EDF) over online arrivals (Poisson / bursty generators or JSONL
//     trace replay - src/sched/generators.hpp);
//   - a fixed pool of PRR slots (placed upstream by the bitmask
//     floorplanner) sharing one ICAP, where every candidate placement is
//     priced through the paper's cost models: controller estimate of the
//     partial-bitstream transfer (Eq. 18-23 feed the byte size) times the
//     expected_retry_cost expansion under the PR 5 fault model;
//   - bitstream prefetch: when a PRM's arrival-rate estimate crosses a
//     threshold its partial bitstream is staged from cold storage into
//     memory (the process-wide bitstream cache via `prefetch_hook`), so
//     later reconfigurations fetch at warm-media speed;
//   - CPU fallback: when every idle PRR placement would miss the task's
//     deadline, the task runs in software at `cpu_slowdown` cost instead
//     of wasting ICAP bandwidth on a doomed reconfiguration.
//
// The runtime is single-threaded and fully deterministic: a (prms, tasks,
// config) triple always produces the identical Report, independent of the
// engine worker count.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "multitask/workload.hpp"
#include "reconfig/controllers.hpp"
#include "reconfig/faults.hpp"
#include "reconfig/media.hpp"
#include "util/ints.hpp"

namespace prcost::sched {

/// Ready-queue discipline.
enum class Policy {
  kFcfs,      ///< (arrival, input order) - the admission order itself
  kPriority,  ///< largest priority first (ties: admission order)
  kEdf,       ///< earliest absolute deadline first (no deadline = last)
};

std::string_view policy_name(Policy policy);
/// "fcfs" | "priority" | "edf" -> Policy; throws UsageError otherwise.
Policy parse_policy(std::string_view name);

/// One online task instance.
struct Task {
  std::string name;
  u32 prm = 0;           ///< index into the PrmInfo table
  double arrival_s = 0;
  double exec_s = 0;     ///< hardware execution time once placed
  u32 priority = 0;      ///< larger = more urgent (kPriority)
  double deadline_s = 0; ///< absolute completion deadline (0 = none)
};

struct SchedulerConfig {
  u32 slot_count = 2;    ///< PRR slots (floorplanner-placed upstream)
  Policy policy = Policy::kFcfs;
  /// Where partial bitstreams are fetched from before (cold) and after
  /// (warm) a prefetch staged them into memory.
  StorageMedia cold_media = StorageMedia::kFlash;
  StorageMedia warm_media = StorageMedia::kDdrSdram;
  /// Reconfiguration controller; null = DMA-ICAP on Virtex-5 timings.
  std::shared_ptr<const ReconfigController> controller;
  /// Fault environment for reconfiguration pricing: each transfer costs
  /// its expected_retry_cost wall time instead of the fault-free
  /// estimate. Rate 0 (default) collapses to the plain estimate.
  double fault_rate = 0.0;
  RetryPolicy retry;
  /// Prefetch: issue when a PRM's arrival-rate estimate (EWMA of
  /// inter-arrival gaps) reaches `prefetch_rate_hz` (0 = off). The hook
  /// (when set) warms the process-wide bitstream cache; staging from cold
  /// storage completes `fetch_seconds(cold_media, bytes)` later.
  double prefetch_rate_hz = 0.0;
  std::function<void(u32 prm)> prefetch_hook;
  /// EWMA smoothing for the per-PRM inter-arrival estimate (0..1].
  double rate_alpha = 0.5;
  /// CPU fallback pool: software execution runs `cpu_slowdown` times
  /// slower than the hardware exec_s, on `cpu_workers` cores.
  u32 cpu_workers = 2;
  double cpu_slowdown = 8.0;
};

/// Per-task outcome, in input order.
struct TaskOutcome {
  u32 task = 0;             ///< input index
  u32 slot = 0;             ///< PRR slot (or CPU worker when cpu_fallback)
  bool cpu_fallback = false;
  bool reconfigured = false;
  bool prefetched = false;  ///< reconfiguration fetched at warm media
  bool deadline_miss = false;
  double reconfig_s = 0;    ///< this task's own reconfiguration time
  double start_s = 0;       ///< execution start (post-reconfiguration)
  double finish_s = 0;
  double wait_s = 0;        ///< start - arrival
};

/// Aggregate run report. Everything here is deterministic for a fixed
/// (prms, tasks, config) input.
struct Report {
  double makespan_s = 0;
  u64 completed = 0;
  u64 reuse_hits = 0;          ///< dispatches that found the PRM resident
  u64 reconfig_count = 0;
  double total_reconfig_s = 0;
  /// Reconfiguration seconds charged per completed task - the bench's
  /// "effective reconfiguration overhead" axis.
  double reconfig_seconds_per_task = 0;
  u64 deadline_misses = 0;
  u64 cpu_fallbacks = 0;
  u64 prefetches_issued = 0;
  u64 prefetched_reconfigs = 0;  ///< reconfigs served at warm media
  double mean_wait_s = 0;
  double mean_turnaround_s = 0;  ///< mean (finish - arrival)
  double throughput_per_s = 0;   ///< completed / makespan
  std::vector<TaskOutcome> tasks;
};

/// Run the online scheduler. Tasks may arrive in any order; admission
/// uses the canonical (arrival, input order) tie-break shared with the
/// simulators. Throws ContractError on an empty slot pool or a task
/// referencing an unknown PRM.
Report run(const std::vector<PrmInfo>& prms, std::vector<Task> tasks,
           const SchedulerConfig& config);

}  // namespace prcost::sched
