// Online-arrival sources for the scheduler runtime: deterministic
// synthetic generators (Poisson and bursty) plus JSONL trace replay, so
// the same Engine::schedule entry point serves both what-if studies and
// replay of recorded production arrival logs.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sched/scheduler.hpp"
#include "util/ints.hpp"

namespace prcost::sched {

/// Parameters shared by the synthetic generators.
struct ArrivalParams {
  u32 count = 64;            ///< tasks to generate
  u32 prm_count = 3;         ///< PRM indices drawn uniformly from [0, n)
  double mean_interarrival_s = 2.0e-3;
  double mean_exec_s = 5.0e-3;
  /// Relative deadline factor: deadline = arrival + factor * exec
  /// (0 = no deadlines).
  double deadline_factor = 0.0;
  u64 seed = 42;
  /// Bursty shape only: tasks per burst and the gap between bursts as a
  /// multiple of mean_interarrival_s.
  u32 burst_size = 8;
  double burst_gap_factor = 16.0;
};

/// Poisson process: exponential inter-arrival and service times, uniform
/// PRM mix - the open-arrival analogue of multitask::make_workload.
std::vector<Task> make_poisson(const ArrivalParams& params);

/// Bursty process: `burst_size` near-simultaneous arrivals, then a long
/// gap. Stresses queue policies and the prefetch rate estimator far more
/// than the smooth Poisson mix.
std::vector<Task> make_bursty(const ArrivalParams& params);

/// Serialize tasks as a JSONL trace (one object per line, trailing
/// newline), replayable by parse_trace. Fields: name, prm, arrival_s,
/// exec_s, priority, deadline_s (the latter two omitted when zero).
std::string dump_trace(const std::vector<Task>& tasks);

/// Parse a JSONL trace (LineSplitter framing: blank lines skipped, a
/// trailing unterminated line still counts). Each record needs "prm",
/// "arrival_s" and "exec_s"; "name", "priority" and "deadline_s" are
/// optional. Throws ParseError naming the offending line number.
std::vector<Task> parse_trace(std::string_view text);

}  // namespace prcost::sched
