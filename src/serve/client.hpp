// Minimal blocking JSONL client for a prcost serve daemon.
//
// One Client owns one connected socket (Unix-domain or TCP) and speaks the
// newline-delimited JSON wire contract: send_line() writes one request
// line, recv_line() reads one response line, request() does both. Used by
// the `prcost client` subcommand, the serve tests, and the
// perf_serve_scaling bench's closed-loop workers; it is deliberately
// synchronous - concurrency comes from running many clients.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace prcost::serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to a Unix-domain socket path. Throws IoError on failure.
  static Client connect_unix(const std::string& path);

  /// Connect to host:port over TCP (TCP_NODELAY set). Throws IoError.
  static Client connect_tcp(const std::string& host, int port);

  bool connected() const noexcept { return fd_ >= 0; }

  /// Write one request line (a '\n' is appended; `line` must not contain
  /// one). Throws IoError when the peer is gone.
  void send_line(std::string_view line);

  /// Read one response line (terminator stripped). Returns nullopt on
  /// orderly EOF with no buffered partial line.
  std::optional<std::string> recv_line();

  /// send_line + recv_line. Throws IoError when the server closes the
  /// connection before answering.
  std::string request(std::string_view line);

  /// Close the write side (the server sees EOF and finishes outstanding
  /// responses); recv_line() keeps working until the server closes.
  void shutdown_write() noexcept;

  void close() noexcept;

 private:
  explicit Client(int fd) noexcept : fd_(fd) {}

  int fd_ = -1;
  std::string buf_;        ///< bytes received but not yet returned
  std::size_t pos_ = 0;    ///< consumed prefix of buf_
  bool eof_ = false;
};

}  // namespace prcost::serve
