#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <utility>

#include "util/error.hpp"

namespace prcost::serve {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError{what + ": " + std::strerror(errno)};
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      buf_(std::move(other.buf_)),
      pos_(std::exchange(other.pos_, 0)),
      eof_(std::exchange(other.eof_, false)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buf_ = std::move(other.buf_);
    pos_ = std::exchange(other.pos_, 0);
    eof_ = std::exchange(other.eof_, false);
  }
  return *this;
}

Client Client::connect_unix(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    throw UsageError{"unix socket path too long: " + path};
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("cannot create unix socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("cannot connect to unix socket '" + path + "'");
  }
  return Client{fd};
}

Client Client::connect_tcp(const std::string& host, int port) {
  if (port <= 0 || port > 65535) {
    throw UsageError{"bad TCP port " + std::to_string(port)};
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("cannot create TCP socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw UsageError{"bad TCP host '" + host + "'"};
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("cannot connect to " + host + ":" + std::to_string(port));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Client{fd};
}

void Client::send_line(std::string_view line) {
  if (fd_ < 0) throw IoError{"client not connected"};
  std::string framed;
  framed.reserve(line.size() + 1);
  framed.append(line);
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    throw_errno("send to server failed");
  }
}

std::optional<std::string> Client::recv_line() {
  if (fd_ < 0 && pos_ >= buf_.size()) return std::nullopt;
  for (;;) {
    const auto nl = buf_.find('\n', pos_);
    if (nl != std::string::npos) {
      std::string line = buf_.substr(pos_, nl - pos_);
      pos_ = nl + 1;
      if (pos_ >= buf_.size()) {
        buf_.clear();
        pos_ = 0;
      }
      return line;
    }
    if (eof_) {
      if (pos_ < buf_.size()) {  // unterminated final line
        std::string line = buf_.substr(pos_);
        buf_.clear();
        pos_ = 0;
        return line;
      }
      return std::nullopt;
    }
    char chunk[64 * 1024];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      buf_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    if (errno == EINTR) continue;
    throw_errno("recv from server failed");
  }
}

std::string Client::request(std::string_view line) {
  send_line(line);
  auto response = recv_line();
  if (!response) {
    throw IoError{"server closed the connection before answering"};
  }
  return std::move(*response);
}

void Client::shutdown_write() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Client::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace prcost::serve
