#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <csignal>
#include <cstring>
#include <optional>
#include <utility>

#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/lines.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"

namespace prcost::serve {
namespace {

using Clock = std::chrono::steady_clock;

/// One server per process may own the signal handlers.
std::atomic<Server*> g_signal_server{nullptr};

extern "C" void serve_signal_handler(int) {
  // Async-signal-safe: stop() is one atomic store plus one write() to the
  // wake pipe.
  if (Server* server = g_signal_server.load(std::memory_order_acquire)) {
    server->stop();
  }
}

std::string static_error_envelope(ErrorCode code, const std::string& message) {
  Json error = Json::object();
  error.set("code", std::string{error_code_name(code)}).set("message", message);
  Json envelope = Json::object();
  envelope.set("error", std::move(error));
  return envelope.dump();
}

const std::string& overloaded_envelope() {
  static const std::string envelope = static_error_envelope(
      ErrorCode::kOverloaded,
      "server overloaded: admission queue full, request shed");
  return envelope;
}

const std::string& oversized_envelope() {
  static const std::string envelope = static_error_envelope(
      ErrorCode::kParse, "line exceeds the maximum request size");
  return envelope;
}

void close_fd(int& fd) noexcept {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// True when `line` carries a valid "deadline_ms" whose budget, anchored
/// at `arrival`, is already spent at `now`. The substring probe keeps
/// deadline-free traffic from paying a JSON parse here; malformed or
/// invalid lines return false and take the normal dispatch path (which
/// reports the parse/usage error).
bool deadline_already_expired(const std::string& line,
                              Clock::time_point arrival,
                              Clock::time_point now) {
  if (line.find("\"deadline_ms\"") == std::string::npos) return false;
  try {
    const Json request = Json::parse(line);
    if (!request.is_object()) return false;
    const Json* dl = request.find("deadline_ms");
    if (dl == nullptr || !dl->is_number() || dl->as_double() < 0) {
      return false;
    }
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>{now - arrival}.count();
    return elapsed_ms >= dl->as_double();
  } catch (const std::exception&) {
    return false;
  }
}

/// Deadline answer for the no-dispatch fast paths, echoing op/id like
/// dispatch_line_at would. Only called on lines deadline_already_expired
/// accepted, so the parse cannot throw.
std::string expired_envelope(const std::string& line) {
  const Json request = Json::parse(line);
  Json envelope = Json::object();
  if (const Json* op = request.find("op")) {
    if (op->is_string()) envelope.set("op", *op);
  }
  if (const Json* id = request.find("id")) envelope.set("id", *id);
  Json error = Json::object();
  error.set("code", std::string{error_code_name(ErrorCode::kDeadline)})
      .set("message",
           "deadline exceeded at phase 'admission' (expired while queued)");
  envelope.set("error", std::move(error));
  return envelope.dump();
}

}  // namespace

/// Per-connection state; owned exclusively by the event-loop thread.
struct Server::Conn {
  int fd = -1;
  u64 id = 0;
  LineSplitter in;              ///< socket bytes -> request lines
  std::string out;              ///< serialized responses awaiting send
  std::size_t out_pos = 0;
  u64 next_seq = 0;             ///< next request sequence to assign
  u64 next_emit = 0;            ///< next sequence to append to `out`
  std::map<u64, std::string> ready;  ///< out-of-order completed responses
  std::size_t inflight = 0;     ///< requests submitted but not yet emitted
  bool eof = false;             ///< peer closed its write side
  bool fatal = false;           ///< protocol error: close once flushed

  bool drained() const noexcept {
    return inflight == 0 && ready.empty() && out_pos == out.size();
  }
  bool wants_read(const ServerOptions& options, bool draining) const noexcept {
    return !eof && !fatal && !draining &&
           inflight < options.max_inflight_per_conn &&
           out.size() - out_pos < options.max_write_buffer;
  }
};

Server::Server(const api::Engine& engine, ServerOptions options)
    : engine_(&engine), options_(std::move(options)) {
  if (options_.dispatch_batch == 0) options_.dispatch_batch = 64;
  if (options_.drain_grace_ms < 0) options_.drain_grace_ms = 0;
}

Server::~Server() {
  Server* expected = this;
  g_signal_server.compare_exchange_strong(expected, nullptr);
  if (dispatcher_.joinable()) {
    {
      const std::lock_guard<std::mutex> lock{mu_};
      dispatcher_shutdown_ = true;
    }
    cv_.notify_all();
    dispatcher_.join();
  }
  for (auto& [id, conn] : conns_) close_fd(conn->fd);
  conns_.clear();
  close_fd(unix_fd_);
  close_fd(tcp_fd_);
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
  close_fd(wake_fd_[0]);
  close_fd(wake_fd_[1]);
}

void Server::start() {
  if (started_) throw ContractError{"Server::start() called twice"};
  if (options_.unix_path.empty() && options_.tcp_port < 0) {
    throw UsageError{"serve needs a unix socket path or a TCP port"};
  }
  if (::pipe2(wake_fd_, O_NONBLOCK | O_CLOEXEC) != 0) {
    throw IoError{"cannot create wake pipe: " +
                  std::string{std::strerror(errno)}};
  }

  if (!options_.unix_path.empty()) {
    if (options_.unix_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      throw UsageError{"unix socket path too long: " + options_.unix_path};
    }
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (unix_fd_ < 0) {
      throw IoError{"cannot create unix socket: " +
                    std::string{std::strerror(errno)}};
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof addr.sun_path - 1);
    ::unlink(options_.unix_path.c_str());  // stale socket from a dead server
    if (::bind(unix_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0 ||
        ::listen(unix_fd_, SOMAXCONN) != 0) {
      throw IoError{"cannot bind unix socket '" + options_.unix_path +
                    "': " + std::string{std::strerror(errno)}};
    }
  }

  if (options_.tcp_port >= 0) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (tcp_fd_ < 0) {
      throw IoError{"cannot create TCP socket: " +
                    std::string{std::strerror(errno)}};
    }
    int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    if (::inet_pton(AF_INET, options_.tcp_host.c_str(), &addr.sin_addr) != 1) {
      throw UsageError{"bad TCP host '" + options_.tcp_host + "'"};
    }
    if (::bind(tcp_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0 ||
        ::listen(tcp_fd_, SOMAXCONN) != 0) {
      throw IoError{"cannot bind TCP " + options_.tcp_host + ":" +
                    std::to_string(options_.tcp_port) + ": " +
                    std::string{std::strerror(errno)}};
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      actual_tcp_port_ = ntohs(bound.sin_port);
    }
  }

  // The daemon is the observability story: a live registry makes the
  // "metrics" op scrape meaningful without any extra flag.
  obs::set_metrics_enabled(true);
  dispatcher_ = std::thread{[this] { dispatch_loop(); }};
  started_ = true;
}

void Server::install_signal_handlers() {
  g_signal_server.store(this, std::memory_order_release);
  struct sigaction action {};
  action.sa_handler = serve_signal_handler;
  ::sigemptyset(&action.sa_mask);
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
}

void Server::stop() {
  draining_.store(true, std::memory_order_release);
  wake();
}

void Server::wake() noexcept {
  const char byte = 'w';
  // Full pipe means a wakeup is already pending; any failure is benign.
  [[maybe_unused]] const auto n = ::write(wake_fd_[1], &byte, 1);
}

Server::Counters Server::counters() const noexcept {
  Counters totals;
  totals.accepted = stat_accepted_.load(std::memory_order_relaxed);
  totals.disconnects = stat_disconnects_.load(std::memory_order_relaxed);
  totals.requests = stat_requests_.load(std::memory_order_relaxed);
  totals.responses = stat_responses_.load(std::memory_order_relaxed);
  totals.shed = stat_shed_.load(std::memory_order_relaxed);
  totals.expired = stat_expired_.load(std::memory_order_relaxed);
  totals.protocol_errors =
      stat_protocol_errors_.load(std::memory_order_relaxed);
  return totals;
}

// ------------------------------------------------------ dispatcher thread --

std::string Server::handle(const Pending& pending) const {
  const auto begin = Clock::now();
  const Json envelope =
      api::dispatch_line_at(*engine_, pending.line, pending.arrival);
  const double ms =
      std::chrono::duration<double, std::milli>{Clock::now() - begin}.count();
  PRCOST_HIST("serve.request_ms", ms, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0,
              300.0, 1000.0, 3000.0, 10000.0);
  if (envelope.find("error") != nullptr) {
    PRCOST_COUNT("serve.request_errors");
  }
  return envelope.dump();
}

void Server::dispatch_loop() {
  std::vector<Pending> batch;
  std::vector<std::string> results;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock{mu_};
      cv_.wait(lock,
               [this] { return dispatcher_shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (dispatcher_shutdown_) return;
        continue;
      }
      const std::size_t take =
          std::min(queue_.size(), options_.dispatch_batch);
      batch.assign(std::make_move_iterator(queue_.begin()),
                   std::make_move_iterator(queue_.begin() +
                                           static_cast<std::ptrdiff_t>(take)));
      queue_.erase(queue_.begin(),
                   queue_.begin() + static_cast<std::ptrdiff_t>(take));
    }
    queued_.fetch_sub(batch.size(), std::memory_order_relaxed);

    // Requests whose deadline expired while they sat in the admission
    // queue are answered here with the stable "deadline" code instead of
    // occupying pool workers on work nobody is waiting for.
    results.assign(batch.size(), {});
    std::vector<std::size_t> live;
    live.reserve(batch.size());
    const auto now = Clock::now();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (deadline_already_expired(batch[i].line, batch[i].arrival, now)) {
        stat_expired_.fetch_add(1, std::memory_order_relaxed);
        PRCOST_COUNT("serve.deadline_expired");
        results[i] = expired_envelope(batch[i].line);
      } else {
        live.push_back(i);
      }
    }

    // One pool fan-out per batch: with N closed-loop clients the queue
    // holds ~N requests, so the wakeup/notify cost amortizes N ways.
    if (live.size() == 1) {
      results[live[0]] = handle(batch[live[0]]);
    } else if (!live.empty()) {
      parallel_for(
          live.size(),
          [&](std::size_t i) { results[live[i]] = handle(batch[live[i]]); },
          options_.workers != 0 ? options_.workers
                                : engine_->options().workers);
    }

    {
      const std::lock_guard<std::mutex> lock{mu_};
      for (std::size_t i = 0; i < batch.size(); ++i) {
        done_.push_back(Done{batch[i].conn, batch[i].seq,
                             std::move(results[i])});
      }
    }
    wake();
  }
}

// -------------------------------------------------------- event-loop side --

void Server::accept_ready(int listen_fd, bool is_unix) {
  for (;;) {
    const int fd =
        ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN, or a transient accept error: poll will retry
    }
    if (!is_unix) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conns_.emplace(conn->id, std::move(conn));
    stat_accepted_.fetch_add(1, std::memory_order_relaxed);
    PRCOST_COUNT("serve.accepted");
  }
}

void Server::submit_line(Conn& conn, std::string line) {
  const u64 seq = conn.next_seq++;
  ++conn.inflight;
  stat_requests_.fetch_add(1, std::memory_order_relaxed);
  PRCOST_COUNT("serve.requests");
  if (queued_.load(std::memory_order_relaxed) >= options_.max_queue) {
    // A request that is already past its own deadline is a deadline miss,
    // not an overload artifact: answer the stable "deadline" code so
    // clients can tell the two apart. Everything else is shed without
    // parsing; the event loop never blocks on a full queue.
    const auto now = Clock::now();
    if (deadline_already_expired(line, now, now)) {
      stat_expired_.fetch_add(1, std::memory_order_relaxed);
      PRCOST_COUNT("serve.deadline_expired");
      conn.ready.emplace(seq, expired_envelope(line));
      return;
    }
    stat_shed_.fetch_add(1, std::memory_order_relaxed);
    PRCOST_COUNT("serve.shed");
    conn.ready.emplace(seq, overloaded_envelope());
    return;
  }
  queued_.fetch_add(1, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock{mu_};
    queue_.push_back(Pending{conn.id, seq, std::move(line), Clock::now()});
  }
  cv_.notify_one();
}

void Server::read_conn(Conn& conn) {
  // One chunk per poll round keeps one chatty client from starving the
  // rest; poll is level-triggered, so leftover bytes re-arm immediately.
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
    if (n > 0) {
      conn.in.append(std::string_view{buf, static_cast<std::size_t>(n)});
      while (auto line = conn.in.next_line()) {
        submit_line(conn, std::move(*line));
      }
      if (conn.in.buffered() > options_.max_line_bytes) {
        // Unframeable: a single line larger than the cap. Answer once,
        // then close after the response flushes.
        stat_protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        PRCOST_COUNT("serve.protocol_errors");
        ++conn.inflight;
        conn.ready.emplace(conn.next_seq++, oversized_envelope());
        conn.in.take_tail();
        conn.eof = true;
        conn.fatal = true;
      }
      return;
    }
    if (n == 0) {
      conn.eof = true;
      // getline semantics shared with batch: an unterminated final chunk
      // is still one last request line.
      std::string tail = conn.in.take_tail();
      if (!tail.empty()) submit_line(conn, std::move(tail));
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    destroy_conn(conn.id, /*disconnect=*/true);
    return;
  }
}

void Server::pump_ready(Conn& conn) {
  // Emit completed responses in request order; out-of-order completions
  // wait in `ready` until their turn.
  for (auto it = conn.ready.find(conn.next_emit); it != conn.ready.end();
       it = conn.ready.find(conn.next_emit)) {
    conn.out += it->second;
    conn.out += '\n';
    conn.ready.erase(it);
    ++conn.next_emit;
    --conn.inflight;
    stat_responses_.fetch_add(1, std::memory_order_relaxed);
    PRCOST_COUNT("serve.responses");
  }
}

bool Server::flush_writes(Conn& conn) {
  while (conn.out_pos < conn.out.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.out.data() + conn.out_pos,
               conn.out.size() - conn.out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    destroy_conn(conn.id, /*disconnect=*/true);
    return false;
  }
  if (conn.out_pos == conn.out.size()) {
    conn.out.clear();
    conn.out_pos = 0;
  }
  return true;
}

void Server::destroy_conn(u64 id, bool disconnect) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  close_fd(it->second->fd);
  conns_.erase(it);
  if (disconnect) {
    // In-flight work for this connection still completes; its responses
    // are discarded when the completion finds no connection to deliver to.
    stat_disconnects_.fetch_add(1, std::memory_order_relaxed);
    PRCOST_COUNT("serve.disconnects");
  }
}

void Server::drain_completions() {
  std::vector<Done> done;
  {
    const std::lock_guard<std::mutex> lock{mu_};
    done.swap(done_);
  }
  for (Done& d : done) {
    const auto it = conns_.find(d.conn);
    if (it == conns_.end()) continue;  // client left mid-request
    it->second->ready.emplace(d.seq, std::move(d.response));
  }
  for (Done& d : done) {
    const auto it = conns_.find(d.conn);
    if (it == conns_.end()) continue;
    pump_ready(*it->second);
    if (!flush_writes(*it->second)) continue;  // destroyed mid-write
    // Close-when-done must run here too: a half-closed connection whose
    // final response lands via this path registers no poll events (no
    // POLLIN after EOF, no POLLOUT once flushed), so the event loop's own
    // check would never see it again.
    const auto again = conns_.find(d.conn);
    if (again != conns_.end() && again->second->eof &&
        again->second->drained()) {
      destroy_conn(d.conn, /*disconnect=*/!again->second->fatal);
    }
  }
}

void Server::update_gauges() {
  PRCOST_GAUGE_SET("serve.connections", conns_.size());
  PRCOST_GAUGE_SET("serve.queue_depth",
                   queued_.load(std::memory_order_relaxed));
  std::size_t inflight = 0;
  for (const auto& [id, conn] : conns_) inflight += conn->inflight;
  PRCOST_GAUGE_SET("serve.inflight", inflight);
}

void Server::run() {
  if (!started_) throw ContractError{"Server::run() before start()"};
  std::vector<pollfd> fds;
  std::vector<u64> fd_conn;  // conn id per pollfd slot (0 = not a conn)
  std::optional<Clock::time_point> drain_deadline;
  bool listeners_open = true;

  for (;;) {
    const bool draining = draining_.load(std::memory_order_acquire);
    if (draining && listeners_open) {
      // Drain step 1: stop accepting. Existing connections finish their
      // queued + in-flight requests and are closed once flushed.
      listeners_open = false;
      close_fd(unix_fd_);
      close_fd(tcp_fd_);
      if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
      drain_deadline = Clock::now() + std::chrono::milliseconds{
                                          options_.drain_grace_ms};
      log_info("serve: draining (", conns_.size(), " connection(s), ",
               queued_.load(std::memory_order_relaxed), " queued)");
    }
    if (draining) {
      std::vector<u64> finished;
      for (const auto& [id, conn] : conns_) {
        if (conn->drained()) finished.push_back(id);
      }
      for (const u64 id : finished) destroy_conn(id, /*disconnect=*/false);
      if (conns_.empty()) break;
      if (drain_deadline && Clock::now() >= *drain_deadline) {
        log_warn("serve: drain grace expired, closing ", conns_.size(),
                 " connection(s)");
        std::vector<u64> remaining;
        remaining.reserve(conns_.size());
        for (const auto& [id, conn] : conns_) remaining.push_back(id);
        for (const u64 id : remaining) destroy_conn(id, /*disconnect=*/true);
        break;
      }
    }

    fds.clear();
    fd_conn.clear();
    fds.push_back(pollfd{wake_fd_[0], POLLIN, 0});
    fd_conn.push_back(0);
    if (listeners_open && unix_fd_ >= 0) {
      fds.push_back(pollfd{unix_fd_, POLLIN, 0});
      fd_conn.push_back(0);
    }
    if (listeners_open && tcp_fd_ >= 0) {
      fds.push_back(pollfd{tcp_fd_, POLLIN, 0});
      fd_conn.push_back(0);
    }
    for (const auto& [id, conn] : conns_) {
      short events = 0;
      if (conn->wants_read(options_, draining)) events |= POLLIN;
      if (conn->out_pos < conn->out.size()) events |= POLLOUT;
      fds.push_back(pollfd{conn->fd, events, 0});
      fd_conn.push_back(id);
    }

    // Block indefinitely when idle; tick while draining so the grace
    // deadline and close conditions re-check even if no fd fires.
    const int timeout_ms = draining ? 50 : -1;
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) {
      log_error("serve: poll failed: ", std::strerror(errno));
      break;
    }

    if (fds[0].revents & POLLIN) {
      char sink[256];
      while (::read(wake_fd_[0], sink, sizeof sink) > 0) {
      }
    }
    drain_completions();

    for (std::size_t i = 1; i < fds.size(); ++i) {
      const short revents = fds[i].revents;
      if (revents == 0) continue;
      if (fd_conn[i] == 0) {
        if (revents & POLLIN) {
          accept_ready(fds[i].fd, fds[i].fd == unix_fd_);
        }
        continue;
      }
      const u64 id = fd_conn[i];
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // destroyed earlier this round
      Conn& conn = *it->second;
      if (revents & (POLLERR | POLLNVAL)) {
        destroy_conn(id, /*disconnect=*/true);
        continue;
      }
      if (revents & (POLLIN | POLLHUP)) {
        if (!conn.eof) read_conn(conn);
        if (conns_.find(id) == conns_.end()) continue;
      }
      pump_ready(conn);
      if (!flush_writes(conn)) continue;
      if (conn.eof && conn.drained()) {
        destroy_conn(id, /*disconnect=*/!conn.fatal);
      }
    }
    update_gauges();
  }

  // Drain step 2: the queue is empty of live work (every connection is
  // gone); shut the dispatcher down and hand control back so the caller
  // can flush snapshots and exit cleanly.
  {
    const std::lock_guard<std::mutex> lock{mu_};
    dispatcher_shutdown_ = true;
  }
  cv_.notify_all();
  dispatcher_.join();
  update_gauges();
  log_info("serve: drained, ",
           stat_responses_.load(std::memory_order_relaxed),
           " response(s) served");
}

}  // namespace prcost::serve
