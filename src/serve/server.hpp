// prcost serve: the warm multi-tenant daemon over one shared Engine.
//
// One Server owns a poll()-based event loop (Unix-domain and/or TCP
// listeners, newline-delimited JSON with exactly the JSONL batch wire
// contract) and a dispatcher thread that drains an admission queue in
// batches through the process-wide parallel_for pool. All expensive state
// - device catalog, interned fabric identities, plan cache, bitstream
// cache, worker pool, obs registry, warm-start snapshots - is paid once
// per process and amortized across every connection.
//
// Production behavior:
//   - Admission control: the queue is bounded (ServerOptions::max_queue);
//     a request arriving past the bound is shed immediately with the
//     stable "overloaded" error code. The event loop never blocks on the
//     queue.
//   - Backpressure: a connection with too many requests in flight or too
//     large an unflushed response buffer stops being read until it drains;
//     other connections are unaffected.
//   - Deadlines: a request's "deadline_ms" is anchored at arrival (queue
//     wait counts) and honored at engine phase boundaries -> stable
//     "deadline" error code.
//   - Isolation: a malformed JSONL line answers a per-request "parse"
//     error and the connection stays up; a client disconnecting
//     mid-request only discards its own responses.
//   - Graceful drain: stop() (or SIGTERM/SIGINT via
//     install_signal_handlers) closes the listeners, finishes every
//     queued and in-flight request, flushes the write buffers, and
//     returns from run() so the caller can flush cache snapshots and
//     exit 0. Connections that cannot drain within drain_grace_ms are
//     force-closed.
//
// Responses preserve per-connection input order (one response line per
// request line, like batch) even though execution is parallel and
// out-of-order across connections.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/batch.hpp"
#include "api/engine.hpp"
#include "util/ints.hpp"

namespace prcost::serve {

struct ServerOptions {
  /// Unix-domain socket path (empty = no unix listener). A stale file at
  /// the path is unlinked before bind; the file is removed on shutdown.
  std::string unix_path;
  /// TCP listener (-1 = no TCP listener, 0 = bind an ephemeral port and
  /// report it via Server::tcp_port()).
  int tcp_port = -1;
  std::string tcp_host = "127.0.0.1";
  /// Admission-queue bound: requests arriving while this many are queued
  /// are shed with the "overloaded" error code. 0 sheds everything (a
  /// deliberate brown-out / test mode).
  std::size_t max_queue = 1024;
  /// Per-connection in-flight bound: reading from a connection pauses
  /// while it has this many unanswered requests.
  std::size_t max_inflight_per_conn = 64;
  /// Per-connection unflushed-response bound (bytes): reading pauses until
  /// the peer consumes its backlog.
  std::size_t max_write_buffer = 4u << 20;
  /// A single line larger than this is a protocol error: the connection
  /// gets one "parse" error envelope and is closed.
  std::size_t max_line_bytes = 8u << 20;
  /// Requests taken per dispatcher batch (0 = auto). Batches amortize one
  /// wakeup + one pool fan-out over many requests.
  std::size_t dispatch_batch = 0;
  /// Workers for the dispatch fan-out (0 = engine/pool default).
  std::size_t workers = 0;
  /// Milliseconds to wait during drain for peers to consume their
  /// responses before force-closing them.
  int drain_grace_ms = 5000;
};

class Server {
 public:
  /// Monotonic totals since start (atomically maintained; readable from
  /// any thread). The obs registry mirrors these as serve.* metrics.
  struct Counters {
    u64 accepted = 0;       ///< connections accepted
    u64 disconnects = 0;    ///< connections torn down by peer error/EOF
    u64 requests = 0;       ///< request lines read off sockets
    u64 responses = 0;      ///< response lines queued to write buffers
    u64 shed = 0;           ///< requests rejected with "overloaded"
    u64 expired = 0;        ///< answered "deadline" without dispatch
    u64 protocol_errors = 0;  ///< oversized-line connection closures
  };

  Server(const api::Engine& engine, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind listeners and start the dispatcher thread. Throws IoError when a
  /// socket cannot be bound. After start() returns the endpoints accept
  /// connections (run() must be entered to answer them).
  void start();

  /// Event loop: blocks until a drain (stop()/signal) completes. Finishes
  /// in-flight work and flushes responses before returning.
  void run();

  /// Request a graceful drain (thread-safe, idempotent, callable from any
  /// thread; also what SIGTERM triggers).
  void stop();

  /// Route SIGTERM/SIGINT to stop() for this server (one server per
  /// process). Call after start().
  void install_signal_handlers();

  /// Actual TCP port after start() (ephemeral binds resolve here); -1 when
  /// no TCP listener was configured.
  int tcp_port() const noexcept { return actual_tcp_port_; }

  const ServerOptions& options() const noexcept { return options_; }

  Counters counters() const noexcept;

 private:
  struct Conn;
  struct Pending {
    u64 conn = 0;
    u64 seq = 0;
    std::string line;
    std::chrono::steady_clock::time_point arrival;
  };
  struct Done {
    u64 conn = 0;
    u64 seq = 0;
    std::string response;
  };

  void dispatch_loop();
  std::string handle(const Pending& pending) const;

  void accept_ready(int listen_fd, bool is_unix);
  void read_conn(Conn& conn);
  void submit_line(Conn& conn, std::string line);
  void pump_ready(Conn& conn);
  bool flush_writes(Conn& conn);  ///< false when the conn died mid-write
  void destroy_conn(u64 id, bool disconnect);
  void drain_completions();
  void wake() noexcept;
  void update_gauges();

  const api::Engine* engine_;
  ServerOptions options_;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int actual_tcp_port_ = -1;
  int wake_fd_[2] = {-1, -1};

  std::unordered_map<u64, std::unique_ptr<Conn>> conns_;
  u64 next_conn_id_ = 1;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  std::vector<Done> done_;
  std::thread dispatcher_;
  std::atomic<std::size_t> queued_{0};
  std::atomic<bool> draining_{false};
  std::atomic<bool> dispatcher_shutdown_{false};
  bool started_ = false;

  std::atomic<u64> stat_accepted_{0};
  std::atomic<u64> stat_disconnects_{0};
  std::atomic<u64> stat_requests_{0};
  std::atomic<u64> stat_responses_{0};
  std::atomic<u64> stat_shed_{0};
  std::atomic<u64> stat_expired_{0};
  std::atomic<u64> stat_protocol_errors_{0};
};

}  // namespace prcost::serve
