// Device-family constants for the two cost models.
//
// These are the paper's Table II (PRR size/organization model) and Table IV
// (bitstream size model) merged into one traits record per family. The
// Virtex-5 values come from the paper's text and UG191/UG190; Virtex-4 and
// Virtex-6 values follow the corresponding configuration user guides
// (UG071, UG360). The text extraction of the paper lost the numeric cells
// of Tables II/IV, so values not stated in prose are reconstructed from the
// public user guides and flagged below; `IW`, `FW` and `FAR_FDRI` are
// chosen to match exactly the packet sequences emitted by our bitstream
// generator (src/bitstream), which is the artifact the model is validated
// against.
//
// A 7-series entry is provided as the "portability" extension the paper
// claims (Section III: "generally portable across different Xilinx FPGA
// families by simply altering the device-specific characteristic values").
#pragma once

#include <string_view>

#include "util/ints.hpp"

namespace prcost {

/// Supported Xilinx-style device families. Spartan-6 is the paper's
/// explicit Bytes_word generalization case: "in other devices, such as
/// Spartan-3/6 devices, words are 16-bit, therefore Bytes_word must be
/// adjusted according to the device family."
enum class Family { kVirtex4, kVirtex5, kVirtex6, kSeries7, kSpartan6 };

/// All Family enumerators, for sweeps.
inline constexpr Family kAllFamilies[] = {Family::kVirtex4, Family::kVirtex5,
                                          Family::kVirtex6, Family::kSeries7,
                                          Family::kSpartan6};

/// Human-readable family name ("Virtex-5", ...).
std::string_view family_name(Family family);

/// Parse "virtex4" / "Virtex-5" / "7series"...; throws ContractError.
Family parse_family(std::string_view name);

/// Per-family constants. Field names follow the paper's Tables I-IV.
struct FamilyTraits {
  // --- Table II: PRR size/organization model ---------------------------
  u32 clb_col;   ///< CLB_col: CLBs per CLB column per fabric row
  u32 dsp_col;   ///< DSP_col: DSPs per DSP column per fabric row
  u32 bram_col;  ///< BRAM_col: BRAMs per BRAM column per fabric row
  u32 lut_clb;   ///< LUT_CLB: LUTs per CLB
  u32 ff_clb;    ///< FF_CLB: FFs per CLB

  // --- Table IV: bitstream size model -----------------------------------
  u32 cf_clb;      ///< CF_CLB: configuration frames per CLB column
  u32 cf_dsp;      ///< CF_DSP: configuration frames per DSP column
  u32 cf_bram;     ///< CF_BRAM: configuration frames per BRAM column
  u32 df_bram;     ///< DF_BRAM: BRAM-content initialization frames per column
  u32 cf_iob;      ///< frames per IOB column (not PRR-capable; full bitstreams)
  u32 cf_clk;      ///< frames per CLK column (not PRR-capable; full bitstreams)
  u32 frame_size;  ///< FR_size: words per configuration frame
  u32 iw;          ///< IW: initial (sync/header) words in a partial bitstream
  u32 fw;          ///< FW: final (desync/trailer) words in a partial bitstream
  u32 far_fdri;    ///< FAR_FDRI: per-row FAR/FDRI setup words
  u32 bytes_word;  ///< Bytes_word: bytes per configuration word

  /// LUTs per slice (two slices per CLB on all supported families).
  constexpr u32 luts_per_slice() const { return lut_clb / 2; }
  /// FFs per slice.
  constexpr u32 ffs_per_slice() const { return ff_clb / 2; }
};

/// Constants for `family`.
const FamilyTraits& traits(Family family);

}  // namespace prcost
