#include "device/family_traits.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace prcost {
namespace {

// Virtex-4 (UG071): 16 CLBs per column-row, frame = 41 x 32-bit words,
// CLB/DSP/BRAM-interconnect columns have 22/21/20 frames, 64 BRAM content
// frames per column.
constexpr FamilyTraits kVirtex4{
    .clb_col = 16,
    .dsp_col = 8,
    .bram_col = 4,
    .lut_clb = 8,
    .ff_clb = 8,
    .cf_clb = 22,
    .cf_dsp = 21,
    .cf_bram = 20,
    .df_bram = 64,
    .cf_iob = 30,
    .cf_clk = 3,
    .frame_size = 41,
    .iw = 20,
    .fw = 14,
    .far_fdri = 5,
    .bytes_word = 4,
};

// Virtex-5 (paper Section III.A, UG191/UG190): frame = 41 words; CLB, DSP,
// BRAM, IOB, CLK columns have 36, 28, 30, 54, 4 frames; 128 BRAM data
// frames per column; 20 CLBs / 8 DSPs / 4 BRAMs per column-row; CLB = 2
// slices x (4 LUTs + 4 FFs).
constexpr FamilyTraits kVirtex5{
    .clb_col = 20,
    .dsp_col = 8,
    .bram_col = 4,
    .lut_clb = 8,
    .ff_clb = 8,
    .cf_clb = 36,
    .cf_dsp = 28,
    .cf_bram = 30,
    .df_bram = 128,
    .cf_iob = 54,
    .cf_clk = 4,
    .frame_size = 41,
    .iw = 21,
    .fw = 15,
    .far_fdri = 5,
    .bytes_word = 4,
};

// Virtex-6 (UG360): frame = 81 words; 40 CLBs / 16 DSPs / 8 BRAMs per
// column-row; CLB = 2 slices x (4 LUTs + 8 FFs) => FF_CLB = 16.
constexpr FamilyTraits kVirtex6{
    .clb_col = 40,
    .dsp_col = 16,
    .bram_col = 8,
    .lut_clb = 8,
    .ff_clb = 16,
    .cf_clb = 36,
    .cf_dsp = 28,
    .cf_bram = 28,
    .df_bram = 128,
    .cf_iob = 44,
    .cf_clk = 4,
    .frame_size = 81,
    .iw = 24,
    .fw = 16,
    .far_fdri = 5,
    .bytes_word = 4,
};

// 7-series (UG470): frame = 101 words; 50 CLBs / 20 DSPs / 10 BRAMs per
// column-row; CLB = 2 slices x (4 LUTs + 8 FFs).
constexpr FamilyTraits kSeries7{
    .clb_col = 50,
    .dsp_col = 20,
    .bram_col = 10,
    .lut_clb = 8,
    .ff_clb = 16,
    .cf_clb = 36,
    .cf_dsp = 28,
    .cf_bram = 28,
    .df_bram = 128,
    .cf_iob = 42,
    .cf_clk = 30,
    .frame_size = 101,
    .iw = 26,
    .fw = 16,
    .far_fdri = 5,
    .bytes_word = 4,
};

// Spartan-6 (UG380): 16-bit configuration words (Bytes_word = 2!), frame =
// 65 words of 16 bits; 16 CLBs / 4 DSP48A1s / 2 BRAMs per column-row.
constexpr FamilyTraits kSpartan6{
    .clb_col = 16,
    .dsp_col = 4,
    .bram_col = 2,
    .lut_clb = 8,
    .ff_clb = 16,
    .cf_clb = 31,
    .cf_dsp = 25,
    .cf_bram = 25,
    .df_bram = 144,
    .cf_iob = 30,
    .cf_clk = 4,
    .frame_size = 65,
    .iw = 20,
    .fw = 14,
    .far_fdri = 5,
    .bytes_word = 2,
};

}  // namespace

std::string_view family_name(Family family) {
  switch (family) {
    case Family::kVirtex4: return "Virtex-4";
    case Family::kVirtex5: return "Virtex-5";
    case Family::kVirtex6: return "Virtex-6";
    case Family::kSeries7: return "7-series";
    case Family::kSpartan6: return "Spartan-6";
  }
  throw ContractError{"family_name: unknown family"};
}

Family parse_family(std::string_view name) {
  const std::string lower = to_lower(name);
  if (lower == "virtex4" || lower == "virtex-4" || lower == "v4") {
    return Family::kVirtex4;
  }
  if (lower == "virtex5" || lower == "virtex-5" || lower == "v5") {
    return Family::kVirtex5;
  }
  if (lower == "virtex6" || lower == "virtex-6" || lower == "v6") {
    return Family::kVirtex6;
  }
  if (lower == "series7" || lower == "7series" || lower == "7-series" ||
      lower == "s7") {
    return Family::kSeries7;
  }
  if (lower == "spartan6" || lower == "spartan-6" || lower == "s6") {
    return Family::kSpartan6;
  }
  throw ContractError{"parse_family: unknown family '" + std::string{name} +
                      "'"};
}

const FamilyTraits& traits(Family family) {
  switch (family) {
    case Family::kVirtex4: return kVirtex4;
    case Family::kVirtex5: return kVirtex5;
    case Family::kVirtex6: return kVirtex6;
    case Family::kSeries7: return kSeries7;
    case Family::kSpartan6: return kSpartan6;
  }
  throw ContractError{"traits: unknown family"};
}

}  // namespace prcost
