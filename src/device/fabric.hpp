// Two-dimensional FPGA fabric model.
//
// Following the Virtex-5-and-newer layout described in Section III.A of the
// paper, the fabric is a grid of `rows` clock-region rows by a left-to-right
// sequence of resource columns; every column spans the full device height
// and contributes `resources_per_row(type)` primitives in each row. PRRs
// are rectangles: H contiguous rows by W contiguous columns, with no
// IOB/CLK column inside.
//
// The fabric is immutable, so expensive derived data is computed once in
// the constructor (per-type column counts, per-position prefix sums) and
// pure window queries are memoized per demand in a thread-safe window
// index shared by copies. The Fig. 1 height sweep asks for the same
// column-demand windows thousands of times during DSE; each distinct
// demand pays for one sliding-window pass, every repeat is a hash lookup.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "device/column.hpp"
#include "device/family_traits.hpp"

namespace prcost {

/// Count of columns a window needs per PRR-capable type; the "organization"
/// half of the paper's PRR size/organization (W_CLB, W_DSP, W_BRAM).
struct ColumnDemand {
  u32 clb_cols = 0;   ///< W_CLB
  u32 dsp_cols = 0;   ///< W_DSP
  u32 bram_cols = 0;  ///< W_BRAM

  /// Total window width W = W_CLB + W_DSP + W_BRAM (Eq. 6).
  constexpr u32 width() const { return clb_cols + dsp_cols + bram_cols; }
};

/// A placed column window: `first_col` is the left-most fabric column index
/// (0-based) of a W-wide window satisfying some ColumnDemand.
struct ColumnWindow {
  u32 first_col = 0;
  u32 width = 0;
};

/// Immutable device fabric: family traits + column sequence + row count.
class Fabric {
 public:
  /// Build from a pattern string of column codes, e.g. "CCBCCDCC...".
  /// Throws ContractError on empty pattern, zero rows, or unknown codes.
  Fabric(Family family, std::string_view column_pattern, u32 rows);

  Family family() const { return family_; }
  const FamilyTraits& traits() const { return *traits_; }

  /// Stable process-wide identity: fabrics constructed from the same
  /// (family, pattern, rows) triple share one id, distinct contents get
  /// distinct ids (interned, no hash collisions). Cache keys (the plan
  /// cache in src/cost) use this instead of hashing the whole layout.
  u64 identity() const { return identity_; }

  /// Number of clock-region rows R (the paper: "the target device has R
  /// rows"; LX110T has 8, LX75T has 3).
  u32 rows() const { return rows_; }
  u32 num_columns() const { return narrow<u32>(columns_.size()); }
  ColumnType column(u32 index) const { return columns_.at(index); }
  const std::vector<ColumnType>& columns() const { return columns_; }

  /// Column pattern as a code string (round-trips the constructor input).
  std::string pattern() const;

  /// Number of columns of `type` on the whole device (precomputed).
  u32 column_count(ColumnType type) const {
    return type_counts_[static_cast<std::size_t>(type)];
  }

  /// Total primitives of a resource column type on the device
  /// (columns x rows x per-row density).
  u64 total_resources(ColumnType type) const;

  /// Total LUTs / FFs on the device (via CLB count and family traits).
  u64 total_luts() const;
  u64 total_ffs() const;

  /// Find the left-most W-wide contiguous window whose column-type
  /// composition EXACTLY matches `demand` (the paper's Fig. 1: "distribute
  /// the CLB, DSP, and BRAM columns in any order", no IOB/CLK columns).
  /// Windows of width 0 are rejected. Returns nullopt when no such window
  /// exists anywhere on the fabric.
  std::optional<ColumnWindow> find_window(const ColumnDemand& demand) const;

  /// All windows matching `demand` (left-most first); used by the
  /// multi-PRR floorplanner to try alternatives.
  std::vector<ColumnWindow> find_all_windows(const ColumnDemand& demand) const;

  /// Relaxed search: the smallest (then left-most) window containing AT
  /// LEAST the demanded number of columns per type and no IOB/CLK columns;
  /// surplus PR-capable columns are allowed (they become internal
  /// fragmentation the PRM never uses but the bitstream must still carry).
  /// Real PR floorplans accept this when no exact-composition span exists.
  std::optional<ColumnWindow> find_window_superset(
      const ColumnDemand& demand) const;

  /// All superset windows of exactly `width` (left-most first).
  std::vector<ColumnWindow> find_all_windows_superset(
      const ColumnDemand& demand, u32 width) const;

  /// Shared, immutable view of the memoized superset-window list for one
  /// (demand, width). Same contents as find_all_windows_superset without
  /// the per-call copy; the hot widening loop in src/cost iterates this.
  std::shared_ptr<const std::vector<ColumnWindow>> superset_windows_shared(
      const ColumnDemand& demand, u32 width) const {
    return superset_windows(demand, width);
  }

  /// Shared, immutable view of the memoized exact-window list (the
  /// find_all_windows contents without the per-call copy).
  std::shared_ptr<const std::vector<ColumnWindow>> exact_windows_shared(
      const ColumnDemand& demand) const {
    return exact_windows(demand);
  }

  /// The column-type composition of a window as a ColumnDemand. O(1) via
  /// the per-position prefix sums.
  ColumnDemand window_composition(const ColumnWindow& window) const;

  /// Configuration frames covered by one row of the given window
  /// (sum of config_frames over its columns) - the quantity behind
  /// Eqs. (19)-(22). O(1) via the per-position prefix sums.
  u64 window_config_frames(const ColumnWindow& window) const;

 private:
  /// Running totals over columns_[0, i); prefix_[i] holds the counts for
  /// the first i columns, so any window aggregate is one subtraction.
  struct ColumnPrefix {
    u32 clb = 0;
    u32 dsp = 0;
    u32 bram = 0;
    u32 blocked = 0;  ///< IOB/CLK columns
    u64 frames = 0;   ///< config frames per row
  };

  struct WindowIndex;  // thread-safe memo, shared between copies

  /// Uncached sliding-window scans backing the memoized queries.
  std::vector<ColumnWindow> scan_windows_exact(const ColumnDemand& demand) const;
  std::vector<ColumnWindow> scan_windows_superset(const ColumnDemand& demand,
                                                  u32 width) const;
  /// Memoized lookups: one scan per distinct demand (/width), then hash
  /// hits. The returned vector is owned by the index and immutable.
  std::shared_ptr<const std::vector<ColumnWindow>> exact_windows(
      const ColumnDemand& demand) const;
  std::shared_ptr<const std::vector<ColumnWindow>> superset_windows(
      const ColumnDemand& demand, u32 width) const;

  Family family_;
  const FamilyTraits* traits_;
  std::vector<ColumnType> columns_;
  u32 rows_;
  u64 identity_ = 0;
  std::array<u32, 5> type_counts_{};
  std::vector<ColumnPrefix> prefix_;  ///< size num_columns() + 1
  std::shared_ptr<WindowIndex> index_;
};

/// One interned fabric identity: the (family, pattern, rows) triple behind
/// a Fabric::identity() value. Snapshots of identity-keyed caches persist
/// these records so a restarted process can re-intern and translate ids.
struct FabricIdentityRecord {
  u64 id = 0;
  Family family = Family::kVirtex5;
  u32 rows = 0;
  std::string pattern;
};

/// Intern a (family, pattern, rows) triple and return its process-wide
/// identity (the same value Fabric::identity() reports for a fabric built
/// from the triple). Idempotent; used by cache-snapshot restore.
u64 intern_fabric_identity(Family family, std::string_view pattern, u32 rows);

/// Every identity interned so far, in id order.
std::vector<FabricIdentityRecord> interned_fabric_identities();

}  // namespace prcost
