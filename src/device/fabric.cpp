#include "device/fabric.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <tuple>
#include <unordered_map>

#include "util/error.hpp"

namespace prcost {
namespace {

/// Process-wide fabric interning: identical (family, pattern, rows) triples
/// map to one id, so cache keys can carry a u64 instead of the layout and
/// still never collide across distinct fabrics.
struct InternTable {
  std::mutex mu;
  std::map<std::tuple<int, u32, std::string>, u64> ids;
};

InternTable& intern_table() {
  static InternTable table;
  return table;
}

/// Packs a (demand, width) query into one map key. Component counts are
/// bounded by the column count (narrow<u32> of a string length), far below
/// 2^16 for any real device pattern.
constexpr u64 pack_query(const ColumnDemand& demand, u32 width) {
  return (u64{demand.clb_cols} << 0) | (u64{demand.dsp_cols} << 16) |
         (u64{demand.bram_cols} << 32) | (u64{width} << 48);
}

constexpr bool packable(const ColumnDemand& demand, u32 width) {
  return demand.clb_cols < (1u << 16) && demand.dsp_cols < (1u << 16) &&
         demand.bram_cols < (1u << 16) && width < (1u << 16);
}

}  // namespace

/// Thread-safe per-demand window memo. Queries are pure functions of the
/// immutable column sequence, so memoization is exact; the map is capped to
/// keep pathological demand streams from growing it without bound (past the
/// cap, queries simply fall back to the scan).
struct Fabric::WindowIndex {
  static constexpr std::size_t kMaxEntries = 1u << 15;
  mutable std::shared_mutex mu;
  std::unordered_map<u64, std::shared_ptr<const std::vector<ColumnWindow>>>
      exact;
  std::unordered_map<u64, std::shared_ptr<const std::vector<ColumnWindow>>>
      superset;
};

Fabric::Fabric(Family family, std::string_view column_pattern, u32 rows)
    : family_(family),
      traits_(&prcost::traits(family)),
      rows_(rows),
      index_(std::make_shared<WindowIndex>()) {
  if (column_pattern.empty()) {
    throw ContractError{"Fabric: empty column pattern"};
  }
  if (rows == 0) throw ContractError{"Fabric: zero rows"};
  columns_.reserve(column_pattern.size());
  for (const char code : column_pattern) {
    columns_.push_back(parse_column_code(code));
  }
  identity_ = intern_fabric_identity(family, column_pattern, rows);

  prefix_.resize(columns_.size() + 1);
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    const ColumnType type = columns_[i];
    ++type_counts_[static_cast<std::size_t>(type)];
    ColumnPrefix next = prefix_[i];
    switch (type) {
      case ColumnType::kClb: ++next.clb; break;
      case ColumnType::kDsp: ++next.dsp; break;
      case ColumnType::kBram: ++next.bram; break;
      case ColumnType::kIob:
      case ColumnType::kClk: ++next.blocked; break;
    }
    next.frames = checked_add(next.frames, config_frames(type, *traits_));
    prefix_[i + 1] = next;
  }
}

std::string Fabric::pattern() const {
  std::string out;
  out.reserve(columns_.size());
  for (const auto type : columns_) out += column_code(type);
  return out;
}

u64 Fabric::total_resources(ColumnType type) const {
  return checked_mul(checked_mul(column_count(type), rows_),
                     resources_per_row(type, *traits_));
}

u64 Fabric::total_luts() const {
  return checked_mul(total_resources(ColumnType::kClb), traits_->lut_clb);
}

u64 Fabric::total_ffs() const {
  return checked_mul(total_resources(ColumnType::kClb), traits_->ff_clb);
}

std::vector<ColumnWindow> Fabric::scan_windows_exact(
    const ColumnDemand& demand) const {
  std::vector<ColumnWindow> out;
  const u32 width = demand.width();
  if (width == 0 || width > num_columns()) return out;
  for (u32 start = 0; start + width <= num_columns(); ++start) {
    const ColumnPrefix& lo = prefix_[start];
    const ColumnPrefix& hi = prefix_[start + width];
    if (hi.blocked == lo.blocked && hi.clb - lo.clb == demand.clb_cols &&
        hi.dsp - lo.dsp == demand.dsp_cols &&
        hi.bram - lo.bram == demand.bram_cols) {
      out.push_back(ColumnWindow{start, width});
    }
  }
  return out;
}

std::vector<ColumnWindow> Fabric::scan_windows_superset(
    const ColumnDemand& demand, u32 width) const {
  std::vector<ColumnWindow> out;
  if (width < demand.width() || width == 0 || width > num_columns()) {
    return out;
  }
  for (u32 start = 0; start + width <= num_columns(); ++start) {
    const ColumnPrefix& lo = prefix_[start];
    const ColumnPrefix& hi = prefix_[start + width];
    if (hi.blocked == lo.blocked && hi.clb - lo.clb >= demand.clb_cols &&
        hi.dsp - lo.dsp >= demand.dsp_cols &&
        hi.bram - lo.bram >= demand.bram_cols) {
      out.push_back(ColumnWindow{start, width});
    }
  }
  return out;
}

std::shared_ptr<const std::vector<ColumnWindow>> Fabric::exact_windows(
    const ColumnDemand& demand) const {
  if (!packable(demand, 0)) {
    return std::make_shared<const std::vector<ColumnWindow>>(
        scan_windows_exact(demand));
  }
  const u64 key = pack_query(demand, 0);
  {
    const std::shared_lock lock{index_->mu};
    const auto it = index_->exact.find(key);
    if (it != index_->exact.end()) return it->second;
  }
  auto windows = std::make_shared<const std::vector<ColumnWindow>>(
      scan_windows_exact(demand));
  {
    const std::unique_lock lock{index_->mu};
    if (index_->exact.size() < WindowIndex::kMaxEntries) {
      return index_->exact.try_emplace(key, std::move(windows)).first->second;
    }
  }
  return windows;
}

std::shared_ptr<const std::vector<ColumnWindow>> Fabric::superset_windows(
    const ColumnDemand& demand, u32 width) const {
  if (!packable(demand, width)) {
    return std::make_shared<const std::vector<ColumnWindow>>(
        scan_windows_superset(demand, width));
  }
  const u64 key = pack_query(demand, width);
  {
    const std::shared_lock lock{index_->mu};
    const auto it = index_->superset.find(key);
    if (it != index_->superset.end()) return it->second;
  }
  auto windows = std::make_shared<const std::vector<ColumnWindow>>(
      scan_windows_superset(demand, width));
  {
    const std::unique_lock lock{index_->mu};
    if (index_->superset.size() < WindowIndex::kMaxEntries) {
      return index_->superset.try_emplace(key, std::move(windows))
          .first->second;
    }
  }
  return windows;
}

std::vector<ColumnWindow> Fabric::find_all_windows(
    const ColumnDemand& demand) const {
  return *exact_windows(demand);
}

std::optional<ColumnWindow> Fabric::find_window(
    const ColumnDemand& demand) const {
  const auto windows = exact_windows(demand);
  if (windows->empty()) return std::nullopt;
  return windows->front();
}

std::vector<ColumnWindow> Fabric::find_all_windows_superset(
    const ColumnDemand& demand, u32 width) const {
  return *superset_windows(demand, width);
}

std::optional<ColumnWindow> Fabric::find_window_superset(
    const ColumnDemand& demand) const {
  for (u32 width = demand.width(); width <= num_columns(); ++width) {
    const auto windows = superset_windows(demand, width);
    if (!windows->empty()) return windows->front();
  }
  return std::nullopt;
}

ColumnDemand Fabric::window_composition(const ColumnWindow& window) const {
  if (window.first_col + window.width > num_columns()) {
    throw ContractError{"window_composition: window out of range"};
  }
  const ColumnPrefix& lo = prefix_[window.first_col];
  const ColumnPrefix& hi = prefix_[window.first_col + window.width];
  return ColumnDemand{hi.clb - lo.clb, hi.dsp - lo.dsp, hi.bram - lo.bram};
}

u64 Fabric::window_config_frames(const ColumnWindow& window) const {
  if (window.first_col + window.width > num_columns()) {
    throw ContractError{"window_config_frames: window out of range"};
  }
  return prefix_[window.first_col + window.width].frames -
         prefix_[window.first_col].frames;
}

u64 intern_fabric_identity(Family family, std::string_view pattern,
                           u32 rows) {
  InternTable& table = intern_table();
  const std::scoped_lock lock{table.mu};
  const auto [it, inserted] = table.ids.try_emplace(
      std::tuple{static_cast<int>(family), rows, std::string{pattern}},
      table.ids.size() + 1);
  return it->second;
}

std::vector<FabricIdentityRecord> interned_fabric_identities() {
  InternTable& table = intern_table();
  std::vector<FabricIdentityRecord> records;
  const std::scoped_lock lock{table.mu};
  records.reserve(table.ids.size());
  for (const auto& [key, id] : table.ids) {
    FabricIdentityRecord record;
    record.id = id;
    record.family = static_cast<Family>(std::get<0>(key));
    record.rows = std::get<1>(key);
    record.pattern = std::get<2>(key);
    records.push_back(std::move(record));
  }
  std::sort(records.begin(), records.end(),
            [](const FabricIdentityRecord& a, const FabricIdentityRecord& b) {
              return a.id < b.id;
            });
  return records;
}

}  // namespace prcost
