#include "device/fabric.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace prcost {

Fabric::Fabric(Family family, std::string_view column_pattern, u32 rows)
    : family_(family), traits_(&prcost::traits(family)), rows_(rows) {
  if (column_pattern.empty()) {
    throw ContractError{"Fabric: empty column pattern"};
  }
  if (rows == 0) throw ContractError{"Fabric: zero rows"};
  columns_.reserve(column_pattern.size());
  for (const char code : column_pattern) {
    columns_.push_back(parse_column_code(code));
  }
}

std::string Fabric::pattern() const {
  std::string out;
  out.reserve(columns_.size());
  for (const auto type : columns_) out += column_code(type);
  return out;
}

u32 Fabric::column_count(ColumnType type) const {
  return narrow<u32>(std::count(columns_.begin(), columns_.end(), type));
}

u64 Fabric::total_resources(ColumnType type) const {
  return checked_mul(checked_mul(column_count(type), rows_),
                     resources_per_row(type, *traits_));
}

u64 Fabric::total_luts() const {
  return checked_mul(total_resources(ColumnType::kClb), traits_->lut_clb);
}

u64 Fabric::total_ffs() const {
  return checked_mul(total_resources(ColumnType::kClb), traits_->ff_clb);
}

namespace {

struct WindowCounts {
  u32 clb = 0;
  u32 dsp = 0;
  u32 bram = 0;
  u32 blocked = 0;  // IOB/CLK columns in the window

  void adjust(ColumnType type, int delta) {
    const auto d = static_cast<u32>(delta);
    switch (type) {
      case ColumnType::kClb: clb += d; break;
      case ColumnType::kDsp: dsp += d; break;
      case ColumnType::kBram: bram += d; break;
      case ColumnType::kIob:
      case ColumnType::kClk: blocked += d; break;
    }
  }

  bool matches(const ColumnDemand& demand) const {
    return blocked == 0 && clb == demand.clb_cols && dsp == demand.dsp_cols &&
           bram == demand.bram_cols;
  }
};

}  // namespace

std::vector<ColumnWindow> Fabric::find_all_windows(
    const ColumnDemand& demand) const {
  std::vector<ColumnWindow> out;
  const u32 width = demand.width();
  if (width == 0 || width > num_columns()) return out;

  WindowCounts counts;
  for (u32 c = 0; c < width; ++c) counts.adjust(columns_[c], +1);
  for (u32 start = 0;; ++start) {
    if (counts.matches(demand)) out.push_back(ColumnWindow{start, width});
    if (start + width >= num_columns()) break;
    counts.adjust(columns_[start], -1);
    counts.adjust(columns_[start + width], +1);
  }
  return out;
}

std::optional<ColumnWindow> Fabric::find_window(
    const ColumnDemand& demand) const {
  const u32 width = demand.width();
  if (width == 0 || width > num_columns()) return std::nullopt;

  WindowCounts counts;
  for (u32 c = 0; c < width; ++c) counts.adjust(columns_[c], +1);
  for (u32 start = 0;; ++start) {
    if (counts.matches(demand)) return ColumnWindow{start, width};
    if (start + width >= num_columns()) break;
    counts.adjust(columns_[start], -1);
    counts.adjust(columns_[start + width], +1);
  }
  return std::nullopt;
}

namespace {

bool covers(const WindowCounts& counts, const ColumnDemand& demand) {
  return counts.blocked == 0 && counts.clb >= demand.clb_cols &&
         counts.dsp >= demand.dsp_cols && counts.bram >= demand.bram_cols;
}

}  // namespace

std::vector<ColumnWindow> Fabric::find_all_windows_superset(
    const ColumnDemand& demand, u32 width) const {
  std::vector<ColumnWindow> out;
  if (width < demand.width() || width == 0 || width > num_columns()) {
    return out;
  }
  WindowCounts counts;
  for (u32 c = 0; c < width; ++c) counts.adjust(columns_[c], +1);
  for (u32 start = 0;; ++start) {
    if (covers(counts, demand)) out.push_back(ColumnWindow{start, width});
    if (start + width >= num_columns()) break;
    counts.adjust(columns_[start], -1);
    counts.adjust(columns_[start + width], +1);
  }
  return out;
}

std::optional<ColumnWindow> Fabric::find_window_superset(
    const ColumnDemand& demand) const {
  for (u32 width = demand.width(); width <= num_columns(); ++width) {
    const auto windows = find_all_windows_superset(demand, width);
    if (!windows.empty()) return windows.front();
  }
  return std::nullopt;
}

ColumnDemand Fabric::window_composition(const ColumnWindow& window) const {
  if (window.first_col + window.width > num_columns()) {
    throw ContractError{"window_composition: window out of range"};
  }
  ColumnDemand demand;
  for (u32 c = window.first_col; c < window.first_col + window.width; ++c) {
    switch (columns_[c]) {
      case ColumnType::kClb: ++demand.clb_cols; break;
      case ColumnType::kDsp: ++demand.dsp_cols; break;
      case ColumnType::kBram: ++demand.bram_cols; break;
      default: break;
    }
  }
  return demand;
}

u64 Fabric::window_config_frames(const ColumnWindow& window) const {
  if (window.first_col + window.width > num_columns()) {
    throw ContractError{"window_config_frames: window out of range"};
  }
  u64 frames = 0;
  for (u32 c = window.first_col; c < window.first_col + window.width; ++c) {
    frames = checked_add(frames, config_frames(columns_[c], *traits_));
  }
  return frames;
}

}  // namespace prcost
