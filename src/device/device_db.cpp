#include "device/device_db.hpp"

#include <algorithm>
#include <cctype>
#include <numeric>
#include <utility>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace prcost {
namespace {

std::string repeat(char code, u32 count) { return std::string(count, code); }

// Hand-crafted XC5VLX110T-like layout (Virtex-5, 8 rows).
//
// Published part: 8 clock-region rows, 69,120 LUTs (= 8,640 CLBs = 54 CLB
// columns x 8 rows x 20), 64 DSP48Es (exactly one DSP column: 1 x 8 x 8,
// which is why the paper applies Eq. (4) instead of Eq. (3) on this part),
// and ~148 BRAM36 (we use 5 BRAM columns = 160, the nearest regular
// layout). Three IOB columns and the center clock column break the fabric
// into contiguous PR-capable stretches; the stretch around the DSP column
// is >= 20 columns wide with two BRAM columns, matching the windows the
// paper's PRMs occupy (Table V).
std::string lx110t_pattern() {
  std::string p;
  p += repeat('C', 6) + "B" + repeat('C', 6) + "I";               // left bank
  p += repeat('C', 3) + "B" + repeat('C', 9) + "D" +              // center:
       repeat('C', 8) + "B" + repeat('C', 3);                     //  DSP bank
  p += "K";                                                       // clock col
  p += repeat('C', 5) + "B" + repeat('C', 4) + "B" +              // right bank
       repeat('C', 3) + "I" + repeat('C', 7) + "I";
  return p;
}

// Hand-crafted XC6VLX75T-like layout (Virtex-6, 3 rows).
//
// Published part: 3 clock-region rows, 46,560 LUTs (~48 CLB columns x 3
// rows x 40 CLBs), 288 DSP48E1s (6 DSP columns x 3 x 16) and ~156 BRAM36
// (6 BRAM columns = 144, nearest regular layout). Virtex-6 devices pair
// DSP columns, so the layout includes an adjacent "DD" pair - the 7-column
// window (5 CLB + 2 DSP) the paper's FIR PRM occupies on this part.
std::string lx75t_pattern() {
  std::string p;
  p += repeat('C', 5) + "B" + repeat('C', 5) + "D" + repeat('C', 6) + "B";
  p += "I";
  p += repeat('C', 4) + "DD" + repeat('C', 5) + "B" + repeat('C', 3);
  p += "K";
  p += repeat('C', 5) + "B" + repeat('C', 4) + "D" + repeat('C', 5);
  p += "I";
  p += repeat('C', 3) + "B" + "D" + "C" + "D" + "B" + repeat('C', 2);
  return p;
}

void check_counts(const Fabric& fabric, u32 clb, u32 dsp, u32 bram, u32 iob,
                  u32 clk, std::string_view name) {
  const bool ok = fabric.column_count(ColumnType::kClb) == clb &&
                  fabric.column_count(ColumnType::kDsp) == dsp &&
                  fabric.column_count(ColumnType::kBram) == bram &&
                  fabric.column_count(ColumnType::kIob) == iob &&
                  fabric.column_count(ColumnType::kClk) == clk;
  if (!ok) {
    throw ContractError{"DeviceDb: column counts for " + std::string{name} +
                        " do not match the catalog specification"};
  }
}

}  // namespace

std::string make_regular_pattern(u32 clb_cols, u32 dsp_cols, u32 bram_cols,
                                 u32 iob_cols, u32 clk_cols) {
  if (clb_cols == 0) {
    throw ContractError{"make_regular_pattern: need at least one CLB column"};
  }
  // Distribute DSP and BRAM columns over `slots` gaps between CLB runs.
  const u32 special = dsp_cols + bram_cols;
  std::vector<char> body;
  body.reserve(clb_cols + special);
  u32 placed_special = 0;
  u32 placed_clb = 0;
  // Walk CLB columns; after every chunk of CLBs insert the next special
  // column (alternating BRAM/DSP to spread both kinds).
  u32 next_bram = bram_cols;
  u32 next_dsp = dsp_cols;
  const u32 chunk = special == 0 ? clb_cols : std::max<u32>(1, clb_cols / (special + 1));
  while (placed_clb < clb_cols || placed_special < special) {
    for (u32 i = 0; i < chunk && placed_clb < clb_cols; ++i) {
      body.push_back('C');
      ++placed_clb;
    }
    if (placed_special < special) {
      // Alternate, preferring whichever kind has more remaining.
      if (next_bram >= next_dsp && next_bram > 0) {
        body.push_back('B');
        --next_bram;
      } else if (next_dsp > 0) {
        body.push_back('D');
        --next_dsp;
      }
      ++placed_special;
    }
  }
  // Insert IOB columns at the edges and a CLK column in the middle. The
  // middle insertion keeps the two halves contiguous and PR-capable.
  std::string pattern;
  if (iob_cols > 0) pattern += 'I';
  const std::size_t mid = body.size() / 2;
  for (std::size_t i = 0; i < body.size(); ++i) {
    if (clk_cols > 0 && i == mid) pattern += repeat('K', clk_cols);
    pattern += body[i];
  }
  if (iob_cols > 1) pattern += repeat('I', iob_cols - 1);
  return pattern;
}

DeviceDb::DeviceDb() {
  {
    Fabric fabric{Family::kVirtex5, lx110t_pattern(), 8};
    check_counts(fabric, 54, 1, 5, 3, 1, "xc5vlx110t");
    devices_.push_back(Device{"xc5vlx110t", std::move(fabric)});
  }
  {
    Fabric fabric{Family::kVirtex6, lx75t_pattern(), 3};
    check_counts(fabric, 48, 6, 6, 2, 1, "xc6vlx75t");
    devices_.push_back(Device{"xc6vlx75t", std::move(fabric)});
  }
  {
    // XC4VLX60-like: 8 rows of 16 CLBs, one DSP column, 64 DSP48s.
    Fabric fabric{Family::kVirtex4, make_regular_pattern(40, 1, 4, 3, 1), 8};
    check_counts(fabric, 40, 1, 4, 3, 1, "xc4vlx60");
    devices_.push_back(Device{"xc4vlx60", std::move(fabric)});
  }
  {
    // XC5VLX50T-like: smaller 6-row Virtex-5 with a single DSP column.
    Fabric fabric{Family::kVirtex5, make_regular_pattern(36, 1, 4, 2, 1), 6};
    check_counts(fabric, 36, 1, 4, 2, 1, "xc5vlx50t");
    devices_.push_back(Device{"xc5vlx50t", std::move(fabric)});
  }
  {
    // XC6VLX240T-like: 6-row Virtex-6.
    Fabric fabric{Family::kVirtex6, make_regular_pattern(64, 8, 8, 2, 1), 6};
    check_counts(fabric, 64, 8, 8, 2, 1, "xc6vlx240t");
    devices_.push_back(Device{"xc6vlx240t", std::move(fabric)});
  }
  {
    // XC7K325T-like: 6-row Kintex-7 used for the family-portability
    // extension (the paper claims the models port by swapping constants).
    Fabric fabric{Family::kSeries7, make_regular_pattern(50, 8, 8, 2, 1), 6};
    check_counts(fabric, 50, 8, 8, 2, 1, "xc7k325t");
    devices_.push_back(Device{"xc7k325t", std::move(fabric)});
  }
  {
    // XC6SLX45-like: the paper's Bytes_word = 2 (16-bit word) case.
    Fabric fabric{Family::kSpartan6, make_regular_pattern(27, 2, 4, 2, 1), 8};
    check_counts(fabric, 27, 2, 4, 2, 1, "xc6slx45");
    devices_.push_back(Device{"xc6slx45", std::move(fabric)});
  }
}

const DeviceDb& DeviceDb::instance() {
  static const DeviceDb db;
  return db;
}

namespace {

/// Catalog names carry the "xc" vendor prefix and put the generation digit
/// before the family letter ("xc5vlx110t"); users often write the
/// family-first shorthand ("v5lx110t") or just drop the prefix
/// ("5vlx110t"), so lookup tolerates both.
std::string canonical_device_name(std::string_view name) {
  std::string lower = to_lower(name);
  if (lower.size() >= 2 &&
      (lower[0] == 'v' || lower[0] == 's' || lower[0] == 'k') &&
      std::isdigit(static_cast<unsigned char>(lower[1])) != 0) {
    std::swap(lower[0], lower[1]);  // v5lx110t -> 5vlx110t
  }
  if (lower.rfind("xc", 0) != 0) lower.insert(0, "xc");
  return lower;
}

}  // namespace

const Device& DeviceDb::get(std::string_view name) const {
  const std::string lower = to_lower(name);
  const std::string canonical = canonical_device_name(name);
  const auto it = std::find_if(
      devices_.begin(), devices_.end(),
      [&](const Device& d) { return d.name == lower || d.name == canonical; });
  if (it == devices_.end()) {
    throw NotFoundError{"DeviceDb: unknown device '" + std::string{name} +
                        "'"};
  }
  return *it;
}

bool DeviceDb::contains(std::string_view name) const {
  const std::string lower = to_lower(name);
  const std::string canonical = canonical_device_name(name);
  return std::any_of(devices_.begin(), devices_.end(), [&](const Device& d) {
    return d.name == lower || d.name == canonical;
  });
}

std::vector<std::string> DeviceDb::names() const {
  std::vector<std::string> out;
  out.reserve(devices_.size());
  for (const auto& d : devices_) out.push_back(d.name);
  return out;
}

}  // namespace prcost
