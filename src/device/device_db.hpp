// Database of synthetic-but-faithful device descriptions.
//
// The paper evaluates on a Virtex-5 LX110T (8 fabric rows) and a Virtex-6
// LX75T (3 fabric rows). Exact commercial column layouts are proprietary to
// the vendor's tools, so each entry here is a synthetic layout constructed
// to match the public resource totals and row counts of the named part
// (documented per-device below and checked by tests). This is the
// "simulate the hardware you do not have" substitution described in
// DESIGN.md; the cost models consume only row/column geometry, so any
// layout with the right densities exercises the same code paths.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "device/fabric.hpp"

namespace prcost {

/// One catalog entry: a named part and its fabric.
struct Device {
  std::string name;   ///< canonical lower-case part name, e.g. "xc5vlx110t"
  Fabric fabric;      ///< full-device fabric model
};

/// Immutable catalog of known parts.
class DeviceDb {
 public:
  /// The process-wide catalog (built once, thread-safe).
  static const DeviceDb& instance();

  /// Look up by part name (case-insensitive); throws ContractError if the
  /// part is unknown.
  const Device& get(std::string_view name) const;

  /// True if `name` is in the catalog.
  bool contains(std::string_view name) const;

  /// All devices, in catalog order.
  const std::vector<Device>& all() const { return devices_; }

  /// Names of all devices, in catalog order.
  std::vector<std::string> names() const;

 private:
  DeviceDb();
  std::vector<Device> devices_;
};

/// Build a regular synthetic column pattern: `clb_cols` CLB columns with
/// `dsp_cols` DSP and `bram_cols` BRAM columns spread evenly among them,
/// `iob_cols` IOB columns at the edges/quarters and one CLK column in the
/// middle when `clk_cols` > 0. Used for catalog parts that do not need a
/// hand-crafted layout.
std::string make_regular_pattern(u32 clb_cols, u32 dsp_cols, u32 bram_cols,
                                 u32 iob_cols, u32 clk_cols);

}  // namespace prcost
