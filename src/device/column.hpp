// Fabric column types and per-type accessors into FamilyTraits.
#pragma once

#include <string_view>

#include "device/family_traits.hpp"
#include "util/error.hpp"

namespace prcost {

/// Resource type of one fabric column. The paper's PRR model only allows
/// CLB/DSP/BRAM columns inside a PRR; IOB and CLK columns terminate any
/// candidate column window (Section III.A).
enum class ColumnType { kClb, kDsp, kBram, kIob, kClk };

inline constexpr ColumnType kAllColumnTypes[] = {
    ColumnType::kClb, ColumnType::kDsp, ColumnType::kBram, ColumnType::kIob,
    ColumnType::kClk};

/// True for column types permitted inside a PRR.
constexpr bool prr_capable(ColumnType type) {
  return type == ColumnType::kClb || type == ColumnType::kDsp ||
         type == ColumnType::kBram;
}

/// One-letter code used in fabric pattern strings ('C','D','B','I','K').
constexpr char column_code(ColumnType type) {
  switch (type) {
    case ColumnType::kClb: return 'C';
    case ColumnType::kDsp: return 'D';
    case ColumnType::kBram: return 'B';
    case ColumnType::kIob: return 'I';
    case ColumnType::kClk: return 'K';
  }
  return '?';
}

/// Inverse of column_code; throws ContractError on unknown code.
constexpr ColumnType parse_column_code(char code) {
  switch (code) {
    case 'C': return ColumnType::kClb;
    case 'D': return ColumnType::kDsp;
    case 'B': return ColumnType::kBram;
    case 'I': return ColumnType::kIob;
    case 'K': return ColumnType::kClk;
    default: throw ContractError{"parse_column_code: unknown code"};
  }
}

/// Long name ("CLB", "DSP", ...).
constexpr std::string_view column_name(ColumnType type) {
  switch (type) {
    case ColumnType::kClb: return "CLB";
    case ColumnType::kDsp: return "DSP";
    case ColumnType::kBram: return "BRAM";
    case ColumnType::kIob: return "IOB";
    case ColumnType::kClk: return "CLK";
  }
  return "?";
}

/// Primitive resources one column contributes per fabric row
/// (CLBs/DSPs/BRAMs; IOB and CLK columns report 0).
constexpr u32 resources_per_row(ColumnType type, const FamilyTraits& t) {
  switch (type) {
    case ColumnType::kClb: return t.clb_col;
    case ColumnType::kDsp: return t.dsp_col;
    case ColumnType::kBram: return t.bram_col;
    case ColumnType::kIob:
    case ColumnType::kClk: return 0;
  }
  return 0;
}

/// Configuration frames for one column (per fabric row), Table IV.
constexpr u32 config_frames(ColumnType type, const FamilyTraits& t) {
  switch (type) {
    case ColumnType::kClb: return t.cf_clb;
    case ColumnType::kDsp: return t.cf_dsp;
    case ColumnType::kBram: return t.cf_bram;
    case ColumnType::kIob: return t.cf_iob;
    case ColumnType::kClk: return t.cf_clk;
  }
  return 0;
}

}  // namespace prcost
