// Static-region routing pressure on PRRs.
//
// Section IV: "high RUs lead to densely packed PRRs that may eventually
// cause routing problems ... since the Xilinx tools allow the static
// region's nets to cross the PRRs, routing problems may arise if nets from
// the static region try to cross a densely packed PRR." This model
// quantifies that risk: synthesize a population of static-region nets
// (random endpoint pairs over the non-PRR fabric), count how many of each
// net's bounding boxes cross each placed PRR, and score the PRR by
// crossings weighted with its packing density. A designer choosing between
// a 95%-RU PRR and a 75%-RU PRR can now see the routing-risk price of the
// denser one.
#pragma once

#include <vector>

#include "cost/floorplan.hpp"
#include "util/ints.hpp"

namespace prcost {

/// One synthetic static-region net: two endpoints in fabric coordinates.
struct StaticNet {
  u32 col_a = 0;
  u32 row_a = 0;
  u32 col_b = 0;
  u32 row_b = 0;
};

/// Routing-pressure options.
struct RoutePressureOptions {
  u32 net_count = 2000;  ///< synthetic static nets to sample
  u64 seed = 7;
};

/// Per-PRR result.
struct PrrRoutePressure {
  std::string name;
  u64 crossing_nets = 0;      ///< static nets whose bbox crosses the PRR
  double packing_density = 0; ///< the PRR's CLB utilization in [0,1+]
  /// Risk score: fraction of sampled nets crossing, scaled by how little
  /// spare routing the packed PRR leaves (density^2 emphasises the
  /// congestion cliff near full packing).
  double risk = 0;
};

/// Sample static nets over the free fabric and score every placement in
/// `floorplanner`. `densities` supplies each placement's CLB utilization
/// in [0,1] (same order as floorplanner.placements()).
std::vector<PrrRoutePressure> estimate_route_pressure(
    const Floorplanner& floorplanner, const Fabric& fabric,
    const std::vector<double>& densities,
    const RoutePressureOptions& options = {});

/// Generate the synthetic static nets (exposed for testing): endpoints
/// uniform over fabric cells NOT covered by any placement.
std::vector<StaticNet> sample_static_nets(const Floorplanner& floorplanner,
                                          const Fabric& fabric,
                                          const RoutePressureOptions& options);

}  // namespace prcost
