#include "par/placer.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace prcost {
namespace {

/// Which site class a cell occupies. LUTs, FFs and carry chains live in
/// distinct slot planes of the same CLB columns (a slice offers LUT
/// positions, FF positions and one carry chain independently).
enum class SiteClass { kLut, kFf, kCarry, kDsp, kBram, kNone };
inline constexpr int kPlaceableClasses = 5;

SiteClass site_class(const Cell& cell) {
  switch (cell.kind) {
    case CellKind::kLut: return SiteClass::kLut;
    case CellKind::kFf: return SiteClass::kFf;
    case CellKind::kCarry: return SiteClass::kCarry;
    case CellKind::kDsp48: return SiteClass::kDsp;
    case CellKind::kBram36:
    case CellKind::kBram18: return SiteClass::kBram;
    default:
      return SiteClass::kNone;  // ports/constants/macros are not placed
  }
}

/// Columns of one class inside the PRR window, with per-column capacity.
struct ClassColumns {
  std::vector<u32> xs;  ///< window-relative x of each column
  u64 per_column = 0;   ///< sites per column (over the whole PRR height)
};

struct Grid {
  ClassColumns lut;
  ClassColumns ff;
  ClassColumns carry;
  ClassColumns dsp;
  ClassColumns bram;

  const ClassColumns& of(SiteClass cls) const {
    switch (cls) {
      case SiteClass::kLut: return lut;
      case SiteClass::kFf: return ff;
      case SiteClass::kCarry: return carry;
      case SiteClass::kDsp: return dsp;
      case SiteClass::kBram: return bram;
      case SiteClass::kNone: break;
    }
    throw ContractError{"Grid::of: unplaceable class"};
  }
};

Grid make_grid(const PrrPlan& plan, const Fabric& fabric) {
  const FamilyTraits& t = fabric.traits();
  Grid grid;
  const u64 clbs_per_col = checked_mul(plan.organization.h, t.clb_col);
  grid.lut.per_column = checked_mul(clbs_per_col, t.lut_clb);
  grid.ff.per_column = checked_mul(clbs_per_col, t.ff_clb);
  grid.carry.per_column = checked_mul(clbs_per_col, 2);  // 1 CARRY4/slice
  grid.dsp.per_column = checked_mul(plan.organization.h, t.dsp_col);
  // BRAM slots at 18Kb granularity: each 36Kb site holds two 18Kb halves,
  // so BRAM18 cells do not overflow a PRR sized in 36Kb equivalents.
  grid.bram.per_column =
      checked_mul(checked_mul(plan.organization.h, t.bram_col), 2);
  for (u32 c = 0; c < plan.window.width; ++c) {
    switch (fabric.column(plan.window.first_col + c)) {
      case ColumnType::kClb:
        grid.lut.xs.push_back(c);
        grid.ff.xs.push_back(c);
        grid.carry.xs.push_back(c);
        break;
      case ColumnType::kDsp: grid.dsp.xs.push_back(c); break;
      case ColumnType::kBram: grid.bram.xs.push_back(c); break;
      default:
        throw ContractError{"make_grid: PRR window contains IOB/CLK column"};
    }
  }
  return grid;
}

/// Flattened site index <-> Site for one class.
Site site_at(const ClassColumns& cols, u64 flat) {
  const u64 col = flat / cols.per_column;
  const u64 y = flat % cols.per_column;
  return Site{cols.xs.at(col), narrow<u32>(y)};
}

u64 hpwl_of_net(const Net& net,
                const std::unordered_map<u32, Site>& sites) {
  u32 min_x = ~0u, max_x = 0, min_y = ~0u, max_y = 0;
  u32 pins = 0;
  const auto visit = [&](CellId id) {
    const auto it = sites.find(index(id));
    if (it == sites.end()) return;
    min_x = std::min(min_x, it->second.x);
    max_x = std::max(max_x, it->second.x);
    min_y = std::min(min_y, it->second.y);
    max_y = std::max(max_y, it->second.y);
    ++pins;
  };
  if (net.driver != kNoCell) visit(net.driver);
  for (const CellId sink : net.sinks) visit(sink);
  if (pins < 2) return 0;
  // Columns are ~16 sites wide in routing terms; weight x accordingly so a
  // one-column hop costs what ~16 vertical site hops cost.
  return 16ull * (max_x - min_x) + (max_y - min_y);
}

/// Combinational logic depth (LUT/carry levels) - FFs, DSPs and BRAMs are
/// timing endpoints.
u64 logic_depth(const Netlist& nl) {
  std::vector<u64> depth(nl.cell_count(), 0);
  // Cells are created in topological-ish order by the builders, but
  // feedback via replace_net means we need a relaxation; two sweeps are
  // enough in practice and we cap to avoid pathological loops.
  u64 max_depth = 0;
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (const CellId id : nl.live_cells()) {
      const Cell& cell = nl.cell(id);
      if (cell.kind != CellKind::kLut && cell.kind != CellKind::kCarry) {
        continue;
      }
      u64 d = 0;
      for (const NetId in : cell.inputs) {
        if (in == kNoNet) continue;
        const CellId drv = nl.net(in).driver;
        if (drv == kNoCell) continue;
        const Cell& drv_cell = nl.cell(drv);
        if (drv_cell.kind == CellKind::kLut ||
            drv_cell.kind == CellKind::kCarry) {
          d = std::max(d, depth[index(drv)] + 1);
        }
      }
      depth[index(id)] = std::max(depth[index(id)], d);
      max_depth = std::max(max_depth, depth[index(id)]);
    }
  }
  return max_depth;
}

}  // namespace

PlaceResult place_into_prr(const Netlist& nl, const PrrPlan& plan,
                           const Fabric& fabric, const PlaceOptions& options) {
  PRCOST_TRACE_SPAN("placement");
  PlaceResult result;
  const Grid grid = make_grid(plan, fabric);

  // --- demand vs capacity ------------------------------------------------
  const PackResult packed = pack_slices(nl);
  const NetlistStats stats = nl.stats();
  result.pair_sites = grid.lut.per_column * grid.lut.xs.size();
  result.pairs_needed = packed.lut_ff_pairs;
  result.dsp_sites = grid.dsp.per_column * grid.dsp.xs.size();
  result.dsps_needed = stats.dsp48s;
  // bram_sites is reported in 36Kb equivalents (half the 18Kb slot count).
  result.bram_sites = grid.bram.per_column * grid.bram.xs.size() / 2;
  result.brams_needed = stats.bram36s + ceil_div(stats.bram18s, 2);

  const u64 ff_capacity = grid.ff.per_column * grid.ff.xs.size();
  if (result.pairs_needed > result.pair_sites) {
    result.failure_reason = "not enough slice LUT-FF pair sites";
    return result;
  }
  if (stats.ffs > ff_capacity) {
    result.failure_reason = "not enough slice FF sites";
    return result;
  }
  if (result.dsps_needed > result.dsp_sites) {
    result.failure_reason = "not enough DSP sites";
    return result;
  }
  if (result.brams_needed > result.bram_sites) {
    result.failure_reason = "not enough BRAM sites";
    return result;
  }
  if (stats.luts > result.pair_sites) {
    result.failure_reason = "not enough LUT sites";
    return result;
  }
  if (stats.carries > grid.carry.per_column * grid.carry.xs.size()) {
    result.failure_reason = "not enough carry-chain sites";
    return result;
  }

  // --- greedy initial placement ------------------------------------------
  // Round-robin across the class's columns so early cells spread out.
  struct Cursor {
    u64 next = 0;
  };
  Cursor cursors[kPlaceableClasses];
  const auto place_next = [&](SiteClass cls) {
    const ClassColumns& cols = grid.of(cls);
    Cursor& cursor = cursors[static_cast<int>(cls)];
    const u64 total = cols.per_column * cols.xs.size();
    if (cursor.next >= total) {
      throw ContractError{"place_into_prr: site overflow after checks"};
    }
    // Interleave: site i goes to column (i % #cols), slot (i / #cols).
    const u64 i = cursor.next++;
    const u64 col = i % cols.xs.size();
    const u64 y = i / cols.xs.size();
    return Site{cols.xs.at(col), narrow<u32>(y)};
  };

  std::vector<CellId> placeable;
  for (const CellId id : nl.live_cells()) {
    if (site_class(nl.cell(id)) != SiteClass::kNone) placeable.push_back(id);
  }
  for (const CellId id : placeable) {
    result.sites.emplace(index(id),
                         place_next(site_class(nl.cell(id))));
  }
  result.placed_cells = placeable.size();

  // --- wirelength ---------------------------------------------------------
  const auto total_hpwl = [&] {
    u64 sum = 0;
    for (u32 n = 0; n < nl.net_count(); ++n) {
      sum += hpwl_of_net(nl.net(NetId{n}), result.sites);
    }
    return sum;
  };
  result.hpwl_initial = total_hpwl();
  result.hpwl_final = result.hpwl_initial;

  // --- simulated annealing -------------------------------------------------
  if (!options.skip_anneal && !placeable.empty()) {
    PRCOST_TRACE_SPAN("placement_anneal");
    Rng rng{options.seed};
    const u64 moves = options.anneal_moves != 0
                          ? options.anneal_moves
                          : placeable.size() * 32;
    double temp = options.initial_temp;
    const double cooling = moves > 1
        ? std::pow(0.005 / options.initial_temp, 1.0 / static_cast<double>(moves))
        : 1.0;
    u64 current = result.hpwl_initial;

    // Occupancy per class keyed by flattened site -> cell.
    // Rebuild from result.sites.
    const auto flat = [&](SiteClass cls, const Site& s) {
      const ClassColumns& cols = grid.of(cls);
      const auto col_it = std::find(cols.xs.begin(), cols.xs.end(), s.x);
      const u64 col = static_cast<u64>(col_it - cols.xs.begin());
      return col * cols.per_column + s.y;
    };
    std::unordered_map<u64, u32> occupancy[kPlaceableClasses];
    for (const CellId id : placeable) {
      const SiteClass cls = site_class(nl.cell(id));
      occupancy[static_cast<int>(cls)].emplace(
          flat(cls, result.sites.at(index(id))), index(id));
    }

    const auto cell_nets_hpwl = [&](CellId id) {
      u64 sum = 0;
      const Cell& cell = nl.cell(id);
      for (const NetId in : cell.inputs) {
        if (in != kNoNet) sum += hpwl_of_net(nl.net(in), result.sites);
      }
      for (const NetId out : cell.outputs) {
        sum += hpwl_of_net(nl.net(out), result.sites);
      }
      return sum;
    };

    u64 moves_accepted = 0;
    for (u64 m = 0; m < moves; ++m, temp *= cooling) {
      const CellId id = placeable[rng.below(placeable.size())];
      const SiteClass cls = site_class(nl.cell(id));
      const ClassColumns& cols = grid.of(cls);
      const u64 total_sites = cols.per_column * cols.xs.size();
      const u64 target_flat = rng.below(total_sites);
      const Site target = site_at(cols, target_flat);
      const Site origin = result.sites.at(index(id));
      if (target == origin) continue;

      auto& occ = occupancy[static_cast<int>(cls)];
      const auto occupant_it = occ.find(target_flat);
      const bool swap = occupant_it != occ.end();
      const CellId other =
          swap ? CellId{occupant_it->second} : kNoCell;

      u64 before = cell_nets_hpwl(id);
      if (swap) before += cell_nets_hpwl(other);

      result.sites[index(id)] = target;
      if (swap) result.sites[index(other)] = origin;

      u64 after = cell_nets_hpwl(id);
      if (swap) after += cell_nets_hpwl(other);

      const double delta = static_cast<double>(after) -
                           static_cast<double>(before);
      const bool accept =
          delta <= 0 || rng.uniform01() < std::exp(-delta / std::max(temp, 1e-9));
      if (accept) {
        ++moves_accepted;
        const u64 origin_flat = flat(cls, origin);
        occ.erase(target_flat);
        occ.erase(origin_flat);
        occ.emplace(target_flat, index(id));
        if (swap) occ.emplace(origin_flat, index(other));
        current = current - before + after;
      } else {
        result.sites[index(id)] = origin;
        if (swap) result.sites[index(other)] = target;
      }
    }
    result.hpwl_final = total_hpwl();
    // Tallied locally so the hot loop pays no atomics; one add per anneal.
    PRCOST_COUNT_N("place.moves_proposed", moves);
    PRCOST_COUNT_N("place.moves_accepted", moves_accepted);
  }
  PRCOST_COUNT("place.placements");
  PRCOST_COUNT_N("place.cells_placed", result.placed_cells);

  // --- timing estimate -----------------------------------------------------
  const u64 depth = logic_depth(nl);
  const double avg_net =
      result.placed_cells > 0
          ? static_cast<double>(result.hpwl_final) /
                static_cast<double>(std::max<u64>(1, nl.net_count()))
          : 0.0;
  constexpr double kLutDelayNs = 0.4;
  constexpr double kUnitRouteNs = 0.03;
  result.critical_path_ns =
      static_cast<double>(depth) * kLutDelayNs + avg_net * kUnitRouteNs * 4.0;

  result.feasible = true;
  return result;
}

}  // namespace prcost
