// PRR-constrained placement with simulated-annealing refinement.
//
// Models the ISE PAR step the paper runs with the AREA_GROUP constraint:
// every mapped primitive must land on a site inside the PRR rectangle.
// Quality is measured by half-perimeter wirelength (HPWL); an annealer
// refines a greedy initial placement. A placement that cannot seat every
// primitive reports failure - the mechanism behind the paper's note that
// "MIPS failed place and route on the Virtex-6" when the PRR was shrunk to
// the post-PAR requirements.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "cost/prr_search.hpp"
#include "device/family_traits.hpp"
#include "netlist/netlist.hpp"
#include "par/packer.hpp"

namespace prcost {

/// A physical site inside the PRR, in abstract grid coordinates: x is the
/// column index within the PRR window, y the resource index within the
/// column (0 = bottom).
struct Site {
  u32 x = 0;
  u32 y = 0;
  friend bool operator==(const Site&, const Site&) = default;
};

/// Placement options.
struct PlaceOptions {
  u64 seed = 1;           ///< annealer RNG seed
  u32 anneal_moves = 0;   ///< 0 = auto (#cells * 32)
  double initial_temp = 4.0;
  bool skip_anneal = false;  ///< greedy-only (fast, for big sweeps)
};

/// Placement result.
struct PlaceResult {
  bool feasible = false;        ///< every primitive seated
  std::string failure_reason;   ///< set when !feasible
  u64 hpwl_initial = 0;         ///< greedy placement wirelength
  u64 hpwl_final = 0;           ///< post-anneal wirelength
  u64 placed_cells = 0;
  /// Site capacity and demand per resource class - the utilization PAR saw.
  u64 pair_sites = 0;           ///< slice LUT-FF pair sites in the PRR
  u64 pairs_needed = 0;
  u64 dsp_sites = 0;
  u64 dsps_needed = 0;
  u64 bram_sites = 0;
  u64 brams_needed = 0;
  /// Estimated critical-path delay (ns): logic depth * per-level delay +
  /// average net span * per-unit routing delay.
  double critical_path_ns = 0.0;
  std::unordered_map<u32, Site> sites;  ///< cell index -> site
};

/// Place mapped netlist `nl` into the PRR described by `plan` (window
/// columns and height define the site grid) on `family`.
PlaceResult place_into_prr(const Netlist& nl, const PrrPlan& plan,
                           const Fabric& fabric,
                           const PlaceOptions& options = {});

}  // namespace prcost
