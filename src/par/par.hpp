// Full implementation flow: the prcost stand-in for "run ISE MAP + PAR
// with an AREA_GROUP constraint and read the post-PAR resource counts"
// (the paper's Table VI experiment).
#pragma once

#include "cost/prr_search.hpp"
#include "netlist/netlist.hpp"
#include "par/placer.hpp"
#include "synth/synthesizer.hpp"

namespace prcost {

/// Implementation options.
struct ParOptions {
  u64 seed = 1;
  PackOptions pack;
  PlaceOptions place;
};

/// Outcome of the implementation flow.
struct ParResult {
  bool routed = false;            ///< placement (and hence routing) succeeded
  std::string failure_reason;
  SynthesisReport post_par;       ///< post-implementation resource counts
  PackResult packing;
  PlaceResult placement;
  u64 cells_optimized = 0;        ///< extra cells removed vs synthesis
};

/// Implement a mapped design inside `plan` on `fabric`: run the
/// MAP/PAR-level optimization passes, re-pack slices, place into the PRR,
/// and report post-PAR requirements. `mapped` is the netlist from
/// synthesize() (taken by value; the flow rewrites it).
ParResult place_and_route(Netlist mapped, const PrrPlan& plan,
                          const Fabric& fabric, const ParOptions& options = {});

}  // namespace prcost
