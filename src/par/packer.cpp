#include "par/packer.hpp"

#include <cmath>

#include "util/error.hpp"

namespace prcost {

PackResult pack_slices(const Netlist& nl, const PackOptions& options) {
  if (options.cross_pack_efficiency < 0.0 ||
      options.cross_pack_efficiency > 1.0) {
    throw ContractError{"pack_slices: efficiency out of [0,1]"};
  }
  PackResult result;
  const NetlistStats stats = nl.stats();
  result.luts = stats.luts;
  result.ffs = stats.ffs;

  // Direct pairs: FF driven by a single-sink LUT.
  for (const CellId id : nl.live_cells()) {
    const Cell& ff = nl.cell(id);
    if (ff.kind != CellKind::kFf) continue;
    const NetId d = ff.inputs[0];
    if (d == kNoNet) continue;
    const CellId driver = nl.net(d).driver;
    if (driver == kNoCell) continue;
    if (nl.cell(driver).kind == CellKind::kLut &&
        nl.net(d).sinks.size() == 1) {
      ++result.direct_pairs;
    }
  }

  const u64 lone_luts = result.luts - result.direct_pairs;
  const u64 lone_ffs = result.ffs - result.direct_pairs;
  const u64 packable = lone_luts < lone_ffs ? lone_luts : lone_ffs;
  result.cross_packed = static_cast<u64>(
      std::floor(static_cast<double>(packable) *
                 options.cross_pack_efficiency));
  result.lut_ff_pairs =
      result.luts + result.ffs - result.direct_pairs - result.cross_packed;
  return result;
}

}  // namespace prcost
