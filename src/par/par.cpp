#include "par/par.hpp"

#include "obs/obs.hpp"
#include "synth/mapper.hpp"
#include "synth/passes.hpp"
#include "util/log.hpp"

namespace prcost {

ParResult place_and_route(Netlist mapped, const PrrPlan& plan,
                          const Fabric& fabric, const ParOptions& options) {
  PRCOST_TRACE_SPAN("par");
  PRCOST_COUNT("par.runs");
  ParResult result;

  // MAP-level optimization: cross-boundary dedup and polarity folding that
  // XST's hierarchical synthesis leaves behind - the source of the paper's
  // Table VI LUT/CLB savings.
  {
    PRCOST_TRACE_SPAN("par_opt_passes");
    result.cells_optimized = run_implementation_passes(mapped);
  }
  PRCOST_COUNT_N("par.cells_optimized", result.cells_optimized);

  {
    PRCOST_TRACE_SPAN("par_pack");
    result.packing = pack_slices(mapped, options.pack);
  }

  PlaceOptions place_options = options.place;
  place_options.seed = options.seed;
  result.placement = place_into_prr(mapped, plan, fabric, place_options);
  if (!result.placement.feasible) {
    result.failure_reason = result.placement.failure_reason;
    return result;
  }

  // Post-PAR report: packed pair count replaces the synthesis-time pairing.
  const NetlistStats stats = mapped.stats();
  result.post_par.module_name = mapped.name();
  result.post_par.family = fabric.family();
  result.post_par.slice_luts = stats.luts;
  result.post_par.slice_ffs = stats.ffs;
  result.post_par.lut_ff_pairs = result.packing.lut_ff_pairs;
  result.post_par.dsps = stats.dsp48s;
  result.post_par.brams = stats.bram36s + ceil_div(stats.bram18s, 2);
  result.post_par.bonded_iobs = stats.inputs + stats.outputs;

  result.routed = true;
  log_debug("par ", mapped.name(), ": pairs ", result.post_par.lut_ff_pairs,
            " (", result.packing.cross_packed, " cross-packed), hpwl ",
            result.placement.hpwl_initial, " -> ",
            result.placement.hpwl_final, ", tcrit ",
            result.placement.critical_path_ns, " ns");
  return result;
}

}  // namespace prcost
