// Slice packing: the MAP-stage step that pairs LUTs and FFs into slice
// LUT-FF pairs.
//
// XST's synthesis report only pairs an FF with the LUT that directly
// drives it; ISE MAP additionally co-locates unrelated lone LUTs and lone
// FFs in the same slice pair when placement permits. That cross-packing is
// the dominant source of the paper's Table VI effect: post-PAR LUT_FF
// pair (and hence CLB) counts drop by up to ~32% while FF/DSP/BRAM counts
// stay put.
#pragma once

#include "netlist/netlist.hpp"
#include "synth/report.hpp"

namespace prcost {

/// Packing knobs.
struct PackOptions {
  /// Fraction of lone-LUT/lone-FF pairs MAP manages to co-locate; the
  /// remainder stays unpaired due to clock-enable/reset incompatibility
  /// and placement locality. 0.8 matches the savings regime of Table VI.
  double cross_pack_efficiency = 0.8;
};

/// Packing outcome.
struct PackResult {
  u64 direct_pairs = 0;   ///< FF packed with its driving LUT
  u64 cross_packed = 0;   ///< lone FF co-located with an unrelated lone LUT
  u64 lut_ff_pairs = 0;   ///< resulting slice pairs (LUT_FF_req post-MAP)
  u64 luts = 0;
  u64 ffs = 0;
};

/// Pack the live LUT/FF population of `nl`.
PackResult pack_slices(const Netlist& nl, const PackOptions& options = {});

}  // namespace prcost
