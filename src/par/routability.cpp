#include "par/routability.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace prcost {
namespace {

bool bbox_crosses(const StaticNet& net, const PlacedPrr& placed) {
  const u32 min_col = std::min(net.col_a, net.col_b);
  const u32 max_col = std::max(net.col_a, net.col_b);
  const u32 min_row = std::min(net.row_a, net.row_b);
  const u32 max_row = std::max(net.row_a, net.row_b);
  const bool col_overlap =
      min_col < placed.first_col + placed.plan.window.width &&
      placed.first_col <= max_col;
  const bool row_overlap =
      min_row < placed.first_row + placed.plan.organization.h &&
      placed.first_row <= max_row;
  return col_overlap && row_overlap;
}

}  // namespace

std::vector<StaticNet> sample_static_nets(
    const Floorplanner& floorplanner, const Fabric& fabric,
    const RoutePressureOptions& options) {
  // Collect free cells from the occupancy grid, which covers both placed
  // PRRs and reserved static-region rectangles.
  std::vector<std::pair<u32, u32>> free_cells;
  for (u32 col = 0; col < fabric.num_columns(); ++col) {
    for (u32 row = 0; row < fabric.rows(); ++row) {
      if (floorplanner.rect_free(col, 1, row, 1)) {
        free_cells.emplace_back(col, row);
      }
    }
  }
  if (free_cells.size() < 2) {
    throw ContractError{"sample_static_nets: fabric has no free space"};
  }
  Rng rng{options.seed};
  std::vector<StaticNet> nets;
  nets.reserve(options.net_count);
  for (u32 n = 0; n < options.net_count; ++n) {
    const auto& a = free_cells[rng.below(free_cells.size())];
    const auto& b = free_cells[rng.below(free_cells.size())];
    nets.push_back(StaticNet{a.first, a.second, b.first, b.second});
  }
  return nets;
}

std::vector<PrrRoutePressure> estimate_route_pressure(
    const Floorplanner& floorplanner, const Fabric& fabric,
    const std::vector<double>& densities,
    const RoutePressureOptions& options) {
  const auto& placements = floorplanner.placements();
  if (densities.size() != placements.size()) {
    throw ContractError{
        "estimate_route_pressure: one density per placement required"};
  }
  const auto nets = sample_static_nets(floorplanner, fabric, options);
  std::vector<PrrRoutePressure> out;
  out.reserve(placements.size());
  for (std::size_t p = 0; p < placements.size(); ++p) {
    PrrRoutePressure pressure;
    pressure.name = placements[p].name;
    pressure.packing_density = densities[p];
    for (const StaticNet& net : nets) {
      if (bbox_crosses(net, placements[p])) ++pressure.crossing_nets;
    }
    const double crossing_fraction =
        nets.empty() ? 0.0
                     : static_cast<double>(pressure.crossing_nets) /
                           static_cast<double>(nets.size());
    pressure.risk =
        crossing_fraction * densities[p] * densities[p];
    out.push_back(std::move(pressure));
  }
  return out;
}

}  // namespace prcost
