#include "netlist/serialize.hpp"

#include <map>
#include <optional>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace prcost {
namespace {

CellKind parse_cell_kind(std::string_view name) {
  for (const CellKind kind :
       {CellKind::kConst0, CellKind::kConst1, CellKind::kInput,
        CellKind::kOutput, CellKind::kLut, CellKind::kFf, CellKind::kCarry,
        CellKind::kMul, CellKind::kMulAcc, CellKind::kRam, CellKind::kDsp48,
        CellKind::kBram36, CellKind::kBram18}) {
    if (cell_kind_name(kind) == name) return kind;
  }
  throw ParseError{"netlist: unknown cell kind '" + std::string{name} + "'"};
}

}  // namespace

std::string netlist_to_text(const Netlist& nl) {
  std::ostringstream os;
  os << "netlist " << nl.name() << "\n";
  for (const CellId id : nl.live_cells()) {
    const Cell& cell = nl.cell(id);
    os << "cell " << cell_kind_name(cell.kind) << ' ' << cell.name << ' '
       << cell.param0 << ' ' << cell.param1 << " |";
    for (const NetId in : cell.inputs) {
      os << ' ' << (in == kNoNet ? std::string{"-"} : nl.net(in).name);
    }
    os << " |";
    for (const NetId out : cell.outputs) os << ' ' << nl.net(out).name;
    os << '\n';
  }
  return os.str();
}

Netlist netlist_from_text(std::string_view text) {
  std::optional<Netlist> nl;
  std::map<std::string, NetId> nets;  // name -> net in the new netlist

  const auto net_for = [&](const std::string& name) {
    if (name == "-") return kNoNet;
    const auto it = nets.find(name);
    if (it != nets.end()) return it->second;
    const NetId id = nl->add_net(name);
    nets.emplace(name, id);
    return id;
  };

  for (const auto& raw_line : split(text, '\n')) {
    const std::string_view line = trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    std::istringstream in{std::string{line}};
    std::string keyword;
    in >> keyword;
    if (keyword == "netlist") {
      std::string name;
      in >> name;
      if (name.empty()) throw ParseError{"netlist: missing design name"};
      nl.emplace(name);
      continue;
    }
    if (keyword != "cell") {
      throw ParseError{"netlist: unexpected keyword '" + keyword + "'"};
    }
    if (!nl) throw ParseError{"netlist: cell before header"};
    std::string kind_name, cell_name;
    u64 param0 = 0, param1 = 0;
    in >> kind_name >> cell_name >> param0 >> param1;
    if (in.fail()) throw ParseError{"netlist: malformed cell line"};
    std::string bar;
    in >> bar;
    if (bar != "|") throw ParseError{"netlist: expected '|' before inputs"};
    std::vector<NetId> inputs;
    std::vector<std::string> output_names;
    std::string token;
    bool in_outputs = false;
    while (in >> token) {
      if (token == "|") {
        in_outputs = true;
        continue;
      }
      if (in_outputs) {
        output_names.push_back(token);
      } else {
        inputs.push_back(net_for(token));
      }
    }
    const CellKind kind = parse_cell_kind(kind_name);
    const CellId id =
        nl->add_cell(kind, cell_name, inputs,
                     narrow<u32>(output_names.size()), param0, param1);
    // Bind the freshly created output nets to the serialized names so
    // later cells can reference them.
    const Cell& cell = nl->cell(id);
    for (std::size_t o = 0; o < output_names.size(); ++o) {
      const auto [it, inserted] =
          nets.emplace(output_names[o], cell.outputs[o]);
      if (!inserted) {
        // The name was referenced (or declared) before its driver: merge
        // the placeholder net into the real output.
        nl->replace_net(it->second, cell.outputs[o]);
        it->second = cell.outputs[o];
      }
    }
  }
  if (!nl) throw ParseError{"netlist: empty input"};
  nl->validate();
  return std::move(*nl);
}

}  // namespace prcost
