#include "netlist/logic.hpp"

#include <algorithm>

namespace prcost {
namespace {

Bus pad_to(Netlist& nl, const Bus& a, std::size_t width) {
  Bus out = a;
  while (out.size() < width) out.push_back(nl.const_net(false));
  return out;
}

}  // namespace

NetId LogicBuilder::lnot(NetId a) {
  const NetId ins[] = {a};
  return nl_.lut(tt::kNot, ins);
}

NetId LogicBuilder::land(NetId a, NetId b) {
  const NetId ins[] = {a, b};
  return nl_.lut(tt::kAnd2, ins);
}

NetId LogicBuilder::lor(NetId a, NetId b) {
  const NetId ins[] = {a, b};
  return nl_.lut(tt::kOr2, ins);
}

NetId LogicBuilder::lxor(NetId a, NetId b) {
  const NetId ins[] = {a, b};
  return nl_.lut(tt::kXor2, ins);
}

NetId LogicBuilder::lxnor(NetId a, NetId b) {
  const NetId ins[] = {a, b};
  return nl_.lut(tt::kXnor2, ins);
}

NetId LogicBuilder::land3(NetId a, NetId b, NetId c) {
  const NetId ins[] = {a, b, c};
  return nl_.lut(tt::kAnd3, ins);
}

NetId LogicBuilder::lor3(NetId a, NetId b, NetId c) {
  const NetId ins[] = {a, b, c};
  return nl_.lut(tt::kOr3, ins);
}

NetId LogicBuilder::mux2(NetId sel, NetId a, NetId b) {
  const NetId ins[] = {sel, a, b};
  return nl_.lut(tt::kMux2, ins);
}

Bus LogicBuilder::constant(u32 width, u64 value) {
  Bus out;
  out.reserve(width);
  for (u32 i = 0; i < width; ++i) {
    out.push_back(nl_.const_net(((value >> i) & 1) != 0));
  }
  return out;
}

Bus LogicBuilder::and_bus(const Bus& a, const Bus& b) {
  if (a.size() != b.size()) throw ContractError{"and_bus: width mismatch"};
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(land(a[i], b[i]));
  return out;
}

Bus LogicBuilder::or_bus(const Bus& a, const Bus& b) {
  if (a.size() != b.size()) throw ContractError{"or_bus: width mismatch"};
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(lor(a[i], b[i]));
  return out;
}

Bus LogicBuilder::xor_bus(const Bus& a, const Bus& b) {
  if (a.size() != b.size()) throw ContractError{"xor_bus: width mismatch"};
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(lxor(a[i], b[i]));
  return out;
}

Bus LogicBuilder::not_bus(const Bus& a) {
  Bus out;
  out.reserve(a.size());
  for (const NetId bit : a) out.push_back(lnot(bit));
  return out;
}

Bus LogicBuilder::mux2_bus(NetId sel, const Bus& a, const Bus& b) {
  if (a.size() != b.size()) throw ContractError{"mux2_bus: width mismatch"};
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.push_back(mux2(sel, a[i], b[i]));
  }
  return out;
}

Bus LogicBuilder::resize(const Bus& a, u32 width) {
  Bus out = a;
  out.resize(width, nl_.const_net(false));
  return out;
}

Bus LogicBuilder::add(const Bus& a, const Bus& b) {
  const std::size_t width = std::max(a.size(), b.size());
  const Bus aa = pad_to(nl_, a, width);
  const Bus bb = pad_to(nl_, b, width);
  Bus sum;
  sum.reserve(width + 1);
  NetId carry = nl_.const_net(false);
  // One propagate/generate LUT per bit; a kCarry chain cell per 4 bits
  // provides the sum/carry-out nets (mirrors the LUT+CARRY4 structure XST
  // emits, so LUT counts stay realistic at ~1 LUT/bit).
  for (std::size_t base = 0; base < width; base += 4) {
    const std::size_t chunk = std::min<std::size_t>(4, width - base);
    std::vector<NetId> carry_ins;
    carry_ins.push_back(carry);
    for (std::size_t i = 0; i < chunk; ++i) {
      const NetId ins[] = {aa[base + i], bb[base + i]};
      carry_ins.push_back(nl_.lut(tt::kXor2, ins));  // propagate
      carry_ins.push_back(aa[base + i]);             // generate source
    }
    const CellId chain = nl_.add_cell(CellKind::kCarry, {}, carry_ins,
                                      narrow<u32>(chunk + 1));
    const auto& outs = nl_.cell(chain).outputs;
    for (std::size_t i = 0; i < chunk; ++i) sum.push_back(outs[i]);
    carry = outs[chunk];
  }
  sum.push_back(carry);
  return sum;
}

Bus LogicBuilder::sub(const Bus& a, const Bus& b) {
  const std::size_t width = std::max(a.size(), b.size());
  const Bus bb = not_bus(pad_to(nl_, b, width));
  // a + ~b + 1: fold the +1 in by adding a constant-1 LSB through add().
  Bus sum = add(pad_to(nl_, a, width), bb);
  // Ripple in the +1 with an increment over the low bits.
  return increment(sum);
}

Bus LogicBuilder::increment(const Bus& a) {
  Bus out;
  out.reserve(a.size());
  NetId carry = nl_.const_net(true);
  for (const NetId bit : a) {
    out.push_back(lxor(bit, carry));
    carry = land(bit, carry);
  }
  return out;
}

NetId LogicBuilder::eq_const(const Bus& a, u64 value) {
  // Per-bit match, then AND-reduce.
  Bus matches;
  matches.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const bool bit = ((value >> i) & 1) != 0;
    matches.push_back(bit ? a[i] : lnot(a[i]));
  }
  return reduce_and(matches);
}

namespace {

NetId reduce_tree(LogicBuilder& lb, Bus bus, u64 table2) {
  Netlist& nl = lb.netlist();
  if (bus.empty()) return nl.const_net(false);
  while (bus.size() > 1) {
    Bus next;
    next.reserve((bus.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < bus.size(); i += 2) {
      const NetId ins[] = {bus[i], bus[i + 1]};
      next.push_back(nl.lut(table2, ins));
    }
    if (bus.size() % 2 == 1) next.push_back(bus.back());
    bus = std::move(next);
  }
  return bus[0];
}

}  // namespace

NetId LogicBuilder::reduce_or(const Bus& a) {
  return reduce_tree(*this, a, tt::kOr2);
}

NetId LogicBuilder::reduce_and(const Bus& a) {
  return reduce_tree(*this, a, tt::kAnd2);
}

NetId LogicBuilder::reduce_xor(const Bus& a) {
  return reduce_tree(*this, a, tt::kXor2);
}

Bus LogicBuilder::register_bus(const Bus& d, const std::string& name) {
  Bus q;
  q.reserve(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    q.push_back(nl_.ff(
        d[i], name.empty() ? std::string{} : name + "[" + std::to_string(i) + "]"));
  }
  return q;
}

Bus LogicBuilder::register_bus_ce(const Bus& d, NetId ce,
                                  const std::string& name) {
  // q <= ce ? d : q, built as a mux feeding the FF. Create each FF on a
  // placeholder net first, then point the placeholder at the feedback mux
  // (same append-only pattern as counter()).
  Bus q;
  q.reserve(d.size());
  std::vector<NetId> placeholders;
  placeholders.reserve(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    const NetId ph = nl_.add_net();
    placeholders.push_back(ph);
    q.push_back(nl_.ff(
        ph, name.empty() ? std::string{} : name + "[" + std::to_string(i) + "]"));
  }
  for (std::size_t i = 0; i < d.size(); ++i) {
    nl_.replace_net(placeholders[i], mux2(ce, q[i], d[i]));
  }
  return q;
}

Bus LogicBuilder::counter(u32 width, const std::string& name) {
  // q <= q + 1: create FFs on placeholder nets, then wire increment of the
  // outputs back. The IR forbids rewiring FF inputs after creation, so use
  // an explicit feedback net per bit: FF reads a fresh net that the
  // increment logic later drives... Simplest construction that stays within
  // the append-only IR: build increment over FF outputs and let the FFs
  // read it through replace_net.
  Bus q;
  q.reserve(width);
  std::vector<NetId> placeholders;
  placeholders.reserve(width);
  for (u32 i = 0; i < width; ++i) {
    const NetId d = nl_.add_net();
    placeholders.push_back(d);
    q.push_back(
        nl_.ff(d, name.empty() ? std::string{} : name + "[" + std::to_string(i) + "]"));
  }
  const Bus next = increment(q);
  for (u32 i = 0; i < width; ++i) nl_.replace_net(placeholders[i], next[i]);
  return q;
}

Bus LogicBuilder::counter_ce_clr(u32 width, NetId ce, NetId clr,
                                 const std::string& name) {
  Bus q;
  q.reserve(width);
  std::vector<NetId> placeholders;
  placeholders.reserve(width);
  for (u32 i = 0; i < width; ++i) {
    const NetId d = nl_.add_net();
    placeholders.push_back(d);
    q.push_back(
        nl_.ff(d, name.empty() ? std::string{} : name + "[" + std::to_string(i) + "]"));
  }
  const Bus incremented = increment(q);
  const Bus gated = mux2_bus(ce, q, incremented);
  const NetId nclr = lnot(clr);
  Bus next;
  next.reserve(width);
  for (u32 i = 0; i < width; ++i) next.push_back(land(gated[i], nclr));
  for (u32 i = 0; i < width; ++i) nl_.replace_net(placeholders[i], next[i]);
  return q;
}

std::vector<Bus> LogicBuilder::delay_line(const Bus& in, u32 stages,
                                          const std::string& name) {
  std::vector<Bus> taps;
  taps.reserve(stages);
  Bus current = in;
  for (u32 s = 0; s < stages; ++s) {
    current = register_bus(
        current, name.empty() ? std::string{} : name + "_s" + std::to_string(s));
    taps.push_back(current);
  }
  return taps;
}

Bus LogicBuilder::mux_n(const std::vector<Bus>& inputs, const Bus& select) {
  if (inputs.empty()) throw ContractError{"mux_n: no inputs"};
  const std::size_t width = inputs[0].size();
  for (const Bus& b : inputs) {
    if (b.size() != width) throw ContractError{"mux_n: ragged input widths"};
  }
  std::vector<Bus> level = inputs;
  std::size_t sel_bit = 0;
  while (level.size() > 1) {
    if (sel_bit >= select.size()) {
      throw ContractError{"mux_n: select bus too narrow"};
    }
    std::vector<Bus> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(mux2_bus(select[sel_bit], level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
    ++sel_bit;
  }
  return level[0];
}

Bus LogicBuilder::decode(const Bus& a) {
  const u64 outputs = 1ull << a.size();
  Bus out;
  out.reserve(outputs);
  for (u64 v = 0; v < outputs; ++v) out.push_back(eq_const(a, v));
  return out;
}

}  // namespace prcost
