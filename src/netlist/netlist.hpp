// Structural netlist IR.
//
// This is the "design entry" substrate of the reproduction: the paper's
// cost models take as input the resource requirements that Xilinx XST
// reports after synthesizing a PR module (PRM). We cannot run XST, so PRMs
// are expressed as technology-level structural netlists (LUTs, FFs, generic
// multipliers/RAMs) built by the generators in `generators.hpp`, and
// `src/synth` plays the role of XST: optimize, map generic cells to
// DSP/BRAM primitives, pack LUT-FF pairs, and emit the synthesis report.
//
// The IR is bit-level for logic (one net per signal bit) and word-level for
// arithmetic/memory macro cells (a bus is a contiguous vector of nets).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/ints.hpp"

namespace prcost {

/// Index of a net within its netlist.
enum class NetId : u32 {};
/// Index of a cell within its netlist.
enum class CellId : u32 {};

constexpr u32 index(NetId id) { return static_cast<u32>(id); }
constexpr u32 index(CellId id) { return static_cast<u32>(id); }

/// Sentinel "not connected".
inline constexpr NetId kNoNet{0xFFFFFFFFu};
inline constexpr CellId kNoCell{0xFFFFFFFFu};

/// Kinds of cells in the IR. kLut/kFf/kCarry are technology-level; kMul,
/// kMulAcc and kRam are generic macro cells the synthesizer maps onto
/// DSP48/BRAM primitives; kDsp48/kBram36/kBram18 are post-mapping
/// primitives.
enum class CellKind : std::uint8_t {
  kConst0,   ///< constant 0 driver (no inputs, 1 output)
  kConst1,   ///< constant 1 driver (no inputs, 1 output)
  kInput,    ///< top-level input port (no inputs, 1 output)
  kOutput,   ///< top-level output port (1 input, no outputs)
  kLut,      ///< k-input LUT, 1 <= k <= 6; truth table in param0
  kFf,       ///< D flip-flop: inputs = {D}, output = {Q}; init in param0
  kCarry,    ///< 4-bit carry chain element: inputs = {cin, s0..s3, d0..d3}
  kMul,      ///< generic multiplier: param0 = a width, param1 = b width
  kMulAcc,   ///< generic multiply-accumulate; widths as kMul
  kRam,      ///< generic RAM macro: param0 = depth, param1 = data width
  kDsp48,    ///< mapped DSP slice; param0 = fused op count (1 or 2)
  kBram36,   ///< mapped 36Kb block RAM
  kBram18,   ///< mapped 18Kb block RAM
};

/// Human-readable cell kind name.
std::string_view cell_kind_name(CellKind kind);

/// One cell instance.
struct Cell {
  CellKind kind{CellKind::kConst0};
  std::string name;            ///< instance name (unique within netlist)
  std::vector<NetId> inputs;   ///< input pins in positional order
  std::vector<NetId> outputs;  ///< output pins in positional order
  u64 param0 = 0;              ///< kind-specific (LUT truth table, widths...)
  u64 param1 = 0;
  bool dead = false;           ///< tombstone set by optimization passes
};

/// One net: a single driver pin and any number of sink pins.
struct Net {
  std::string name;
  CellId driver = kNoCell;
  std::vector<CellId> sinks;  ///< cells reading this net (with multiplicity)
};

/// A multi-bit signal: bit 0 first (little-endian).
using Bus = std::vector<NetId>;

/// Aggregate counts of live cells by category.
struct NetlistStats {
  u64 luts = 0;
  u64 ffs = 0;
  u64 carries = 0;
  u64 muls = 0;      ///< generic kMul + kMulAcc
  u64 rams = 0;      ///< generic kRam
  u64 dsp48s = 0;    ///< mapped DSP primitives
  u64 bram36s = 0;   ///< mapped 36Kb BRAMs
  u64 bram18s = 0;   ///< mapped 18Kb BRAMs
  u64 inputs = 0;
  u64 outputs = 0;
  u64 constants = 0;

  u64 total_cells() const {
    return luts + ffs + carries + muls + rams + dsp48s + bram36s + bram18s +
           inputs + outputs + constants;
  }
};

/// The netlist: an append-only cell/net store with tombstoned deletion.
///
/// Invariants (checked by validate()):
///  - every non-dead cell's connected input is driven by a live net
///  - every net's driver/sink lists are consistent with cell pin lists
class Netlist {
 public:
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // --- construction ------------------------------------------------------

  /// Create a fresh net; `name` may be empty (auto-named).
  NetId add_net(std::string name = {});

  /// Create a cell; inputs must be existing nets; outputs are created.
  CellId add_cell(CellKind kind, std::string name, std::span<const NetId> ins,
                  u32 output_count, u64 param0 = 0, u64 param1 = 0);

  // Convenience builders -------------------------------------------------

  /// Top-level input port; returns its net.
  NetId input(std::string name);
  /// Bus of input ports ("name[i]").
  Bus input_bus(const std::string& name, u32 width);
  /// Top-level output port reading `net`.
  CellId output(std::string name, NetId net);
  /// Output ports for each bit of `bus`.
  void output_bus(const std::string& name, const Bus& bus);
  /// Constant driver net (one shared cell per constant).
  NetId const_net(bool value);
  /// K-input LUT with the given truth table; returns output net.
  NetId lut(u64 truth_table, std::span<const NetId> ins,
            std::string name = {});
  /// D flip-flop; returns Q net.
  NetId ff(NetId d, std::string name = {}, bool init = false);
  /// Generic multiplier over two buses; returns product bus
  /// (a.size() + b.size() bits wide).
  Bus mul(const Bus& a, const Bus& b, std::string name = {});
  /// Generic multiply-accumulate: product of a,b plus accumulator feedback;
  /// returns accumulator output bus of `acc_width` bits.
  Bus mul_acc(const Bus& a, const Bus& b, u32 acc_width,
              std::string name = {});
  /// Generic RAM macro: returns read-data bus of `width` bits.
  Bus ram(u32 depth, u32 width, const Bus& addr, const Bus& write_data,
          NetId write_enable, std::string name = {});

  // --- access -------------------------------------------------------------

  u32 net_count() const { return narrow<u32>(nets_.size()); }
  u32 cell_count() const { return narrow<u32>(cells_.size()); }
  const Net& net(NetId id) const { return nets_.at(index(id)); }
  const Cell& cell(CellId id) const { return cells_.at(index(id)); }
  Cell& cell_mut(CellId id) { return cells_.at(index(id)); }

  /// Live (non-dead) cell ids.
  std::vector<CellId> live_cells() const;

  /// Count live cells by category.
  NetlistStats stats() const;

  // --- mutation used by optimization passes --------------------------------

  /// Tombstone a cell and detach it from its nets.
  void kill_cell(CellId id);

  /// Reconnect every sink of `from` to read `to` instead.
  void replace_net(NetId from, NetId to);

  /// Point one input pin of `cell` at a different net (keeps sink lists
  /// consistent). `pin` must be a valid input index.
  void rewire_input(CellId cell, u32 pin, NetId to);

  /// Append an input pin to `cell` reading `net` (e.g. the CE pin the
  /// clock-enable absorption pass attaches to an FF).
  void add_input_pin(CellId cell, NetId net);

  /// Check structural invariants; throws ContractError on violation.
  void validate() const;

 private:
  std::string name_;
  std::vector<Net> nets_;
  std::vector<Cell> cells_;
  NetId const0_ = kNoNet;
  NetId const1_ = kNoNet;
  u64 auto_name_counter_ = 0;

  std::string next_auto_name(std::string_view prefix);
};

}  // namespace prcost
