// Parametric PR-module (PRM) generators.
//
// The paper evaluates three PRMs chosen to be "of similar complexity and
// resource usage to the PRMs used in prior research": a 32-coefficient FIR
// filter, a 5-stage pipelined MIPS R3000-style 32-bit processor, and a
// 32-bit SDRAM controller. We cannot ship the authors' RTL, so each PRM is
// regenerated here as a structural netlist whose post-synthesis resource
// profile lands in the same regime (hundreds-to-thousands of LUT-FF pairs,
// tens of DSPs for FIR, a handful of BRAMs for MIPS). Additional PRMs
// (AES round, CRC32, UART, matrix multiplier) extend the evaluation beyond
// the paper's set.
//
// All generators are deterministic: the same parameters always produce the
// same netlist.
#pragma once

#include "netlist/netlist.hpp"

namespace prcost {

/// Parameters for the FIR filter PRM.
struct FirParams {
  u32 taps = 32;          ///< number of coefficients (paper: 32)
  u32 data_width = 12;    ///< input sample width in bits
  u32 coeff_width = 12;   ///< coefficient width in bits
  /// Number of outer tap pairs that share one coefficient input bus
  /// (symmetric impulse response). Mappers for families with a DSP
  /// pre-adder (Virtex-6, 7-series) fuse each such pair into one DSP,
  /// which is how the paper's FIR needs 32 DSPs on Virtex-5 but only 27 on
  /// Virtex-6.
  u32 symmetric_pairs = 5;
};

/// Transposed-form FIR: tap delay line, one multiplier per (unfused) tap,
/// LUT/carry adder tree, output rounding/saturation and a small control
/// counter.
Netlist make_fir(const FirParams& params = {});

/// Parameters for the MIPS processor PRM.
struct MipsParams {
  u32 xlen = 32;            ///< register/datapath width
  u32 icache_depth = 2048;  ///< instruction memory words (2048x32 = 2 BRAM36)
  u32 dcache_depth = 4096;  ///< data memory words (4096x32 = 4 BRAM36)
};

/// 5-stage pipeline (IF/ID/EX/MEM/WB): FF register file (32 x xlen),
/// read-port mux trees, ALU (add/sub/logic/barrel shift), forwarding
/// muxes, pipeline registers, and BRAM-mapped instruction/data memories.
Netlist make_mips5(const MipsParams& params = {});

/// Parameters for the SDRAM controller PRM.
struct SdramParams {
  u32 data_width = 32;  ///< external data bus width
  u32 row_bits = 13;    ///< row address width
  u32 col_bits = 10;    ///< column address width
  u32 banks = 4;        ///< bank count (log2 -> bank address bits)
};

/// SDRAM controller: one-hot command FSM, init/refresh/timing counters,
/// address multiplexing, and registered data path. FF-dominated, no
/// DSP/BRAM - matching the paper's SDRAM PRM profile.
Netlist make_sdram_ctrl(const SdramParams& params = {});

/// One AES-128 round: 16 S-boxes as 256x8 RAM macros (maps to BRAMs),
/// MixColumns XOR network, AddRoundKey, state registers. A LUT+BRAM-heavy
/// PRM used by the extension benches.
Netlist make_aes_round();

/// Parallel CRC-32 over a `data_width`-bit input per cycle: XOR trees plus
/// a 32-bit state register. Pure-LUT PRM.
Netlist make_crc32(u32 data_width = 32);

/// 8N1 UART transceiver with configurable divisor counter width. A tiny
/// PRM useful for exercising the H=1 / small-W corner of the PRR model.
Netlist make_uart(u32 divisor_bits = 16);

/// Blocked matrix multiplier: `mac_units` multiply-accumulate units plus
/// two operand RAM macros - a DSP+BRAM-balanced PRM.
Netlist make_matmul(u32 mac_units = 16, u32 data_width = 16);

/// Sobel 3x3 edge detector for `line_width`-pixel rows of `pixel_bits`
/// pixels: two BRAM line buffers, 3x3 window registers, |Gx|+|Gy| gradient
/// datapath and threshold compare - the video-processing PRM class the
/// Related-Work platforms (Liu'09, Papadimitriou'11) evaluate.
Netlist make_sobel(u32 line_width = 640, u32 pixel_bits = 8);

/// One radix-2 FFT butterfly stage over `points` complex samples of
/// `sample_bits` bits: twiddle ROM (BRAM), complex multiplier (4 real
/// multipliers -> DSPs) and add/sub datapath.
Netlist make_fft_stage(u32 points = 256, u32 sample_bits = 16);

}  // namespace prcost
