// Plain-text netlist serialization (a minimal EDIF-like interchange
// format) so designs can be saved, diffed and reloaded - e.g. by the CLI
// or by users bringing their own PRMs instead of the built-in generators.
//
// Format (line oriented, '#' comments):
//   netlist <name>
//   cell <kind> <name> <param0> <param1> | <in-net>... | <out-net>...
//
// Nets are referenced by stable string names; pin order is positional.
// Dead cells are dropped on save; net identities are regenerated on load,
// so the round trip is an isomorphism, not an identity (tested as such).
#pragma once

#include <string>
#include <string_view>

#include "netlist/netlist.hpp"

namespace prcost {

/// Render the live cells of `nl`.
std::string netlist_to_text(const Netlist& nl);

/// Parse a netlist back; throws ParseError on malformed input.
Netlist netlist_from_text(std::string_view text);

}  // namespace prcost
