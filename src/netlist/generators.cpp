#include "netlist/generators.hpp"

#include <algorithm>
#include <array>
#include <string>
#include <vector>

#include "netlist/logic.hpp"

namespace prcost {
namespace {

/// Saturate a bus to `width` bits with an overflow flag: |width| LUTs for
/// the clamp muxes plus an OR-reduce over the truncated high bits.
Bus saturate(LogicBuilder& lb, const Bus& value, u32 width) {
  if (value.size() <= width) return lb.resize(value, width);
  Bus high(value.begin() + width, value.end());
  const NetId overflow = lb.reduce_or(high);
  Bus low(value.begin(), value.begin() + width);
  const Bus max_value = lb.constant(width, (1ull << width) - 1);
  return lb.mux2_bus(overflow, low, max_value);
}

}  // namespace

Netlist make_fir(const FirParams& params) {
  if (params.taps == 0 || params.data_width == 0 || params.coeff_width == 0) {
    throw ContractError{"make_fir: zero-sized parameter"};
  }
  if (params.symmetric_pairs * 2 > params.taps) {
    throw ContractError{"make_fir: more symmetric pairs than tap pairs"};
  }
  Netlist nl{"fir"};
  LogicBuilder lb{nl};

  const Bus x = nl.input_bus("x", params.data_width);
  const NetId valid_in = nl.input("valid_in");

  // Tap delay line: taps * data_width FFs.
  const std::vector<Bus> taps = lb.delay_line(x, params.taps, "dline");

  // Coefficient input buses. Symmetric outer pairs share one bus: tap i and
  // tap (taps-1-i) read the same coefficient nets, which family-aware
  // mapping can fuse into a pre-adder DSP (see src/synth).
  std::vector<Bus> coeffs(params.taps);
  for (u32 i = 0; i < params.taps; ++i) {
    const u32 mirror = params.taps - 1 - i;
    if (i > mirror) {
      if (params.taps - params.symmetric_pairs <= i) {
        coeffs[i] = coeffs[mirror];  // shared coefficient bus
        continue;
      }
    }
    coeffs[i] = nl.input_bus("coeff" + std::to_string(i), params.coeff_width);
  }

  // One generic multiplier per tap (the mapper decides DSP packing).
  std::vector<Bus> products;
  products.reserve(params.taps);
  for (u32 i = 0; i < params.taps; ++i) {
    products.push_back(nl.mul(taps[i], coeffs[i], "tapmul" + std::to_string(i)));
  }

  // LUT/carry adder tree over the products.
  std::vector<Bus> level = products;
  while (level.size() > 1) {
    std::vector<Bus> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(lb.add(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  const Bus acc = level[0];

  // Round/saturate back to the sample width, register, and hand out.
  const Bus y = lb.register_bus(saturate(lb, acc, params.data_width), "y_reg");
  nl.output_bus("y", y);

  // Small control block: sample counter + valid pipeline.
  const Bus sample_count = lb.counter(10, "sample_cnt");
  NetId valid = valid_in;
  for (u32 s = 0; s < 4; ++s) valid = nl.ff(valid, "valid_d" + std::to_string(s));
  nl.output("valid_out", valid);
  nl.output("window_done", lb.eq_const(sample_count, params.taps - 1));

  nl.validate();
  return nl;
}

Netlist make_mips5(const MipsParams& params) {
  if (params.xlen < 8) throw ContractError{"make_mips5: xlen too small"};
  Netlist nl{"mips5"};
  LogicBuilder lb{nl};
  const u32 xlen = params.xlen;

  // ---------------- IF: program counter + instruction memory -------------
  const NetId stall = nl.input("stall");
  const Bus pc = lb.counter_ce_clr(xlen, stall, nl.input("reset"), "pc");
  const Bus imem_addr(
      pc.begin(),
      pc.begin() + static_cast<std::ptrdiff_t>(std::min<std::size_t>(pc.size(), 11)));
  const Bus instr = nl.ram(params.icache_depth, 32, imem_addr,
                           lb.constant(32, 0), nl.const_net(false), "imem");
  // IF/ID pipeline register.
  const Bus ifid_instr = lb.register_bus(instr, "ifid_instr");
  const Bus ifid_pc = lb.register_bus(pc, "ifid_pc");

  // ---------------- ID: decode + FF register file -------------------------
  const Bus rs(ifid_instr.begin() + 21, ifid_instr.begin() + 26);
  const Bus rt(ifid_instr.begin() + 16, ifid_instr.begin() + 21);
  const Bus rd(ifid_instr.begin() + 11, ifid_instr.begin() + 16);
  const Bus imm(ifid_instr.begin(), ifid_instr.begin() + 16);
  const Bus opcode(ifid_instr.begin() + 26, ifid_instr.end());

  // Register file: 32 x xlen FFs with a write decoder and two read-port
  // mux trees. XST maps this exact structure to FFs when no LUT-RAM is
  // inferred, which is what the paper's MIPS FF count (~1.6k) indicates.
  const Bus wb_data_placeholder = [&] {
    Bus b;
    for (u32 i = 0; i < xlen; ++i) b.push_back(nl.add_net());
    return b;
  }();
  const Bus wb_reg_placeholder = [&] {
    Bus b;
    for (u32 i = 0; i < 5; ++i) b.push_back(nl.add_net());
    return b;
  }();
  const Bus write_sel = lb.decode(wb_reg_placeholder);
  std::vector<Bus> regs;
  regs.reserve(32);
  for (u32 r = 0; r < 32; ++r) {
    regs.push_back(lb.register_bus_ce(wb_data_placeholder, write_sel[r],
                                      "rf" + std::to_string(r)));
  }
  const Bus rs_value = lb.mux_n(regs, rs);
  const Bus rt_value = lb.mux_n(regs, rt);

  // ID/EX pipeline registers.
  const Bus idex_rs = lb.register_bus(rs_value, "idex_rs");
  const Bus idex_rt = lb.register_bus(rt_value, "idex_rt");
  const Bus idex_imm = lb.register_bus(lb.resize(imm, xlen), "idex_imm");
  const Bus idex_rd = lb.register_bus(rd, "idex_rd");
  const Bus idex_op = lb.register_bus(opcode, "idex_op");
  const Bus idex_pc = lb.register_bus(ifid_pc, "idex_pc");

  // ---------------- EX: ALU + barrel shifter + branch compare -----------
  const NetId use_imm = lb.reduce_or(idex_op);
  const Bus operand_b = lb.mux2_bus(use_imm, idex_rt, idex_imm);
  const Bus alu_add = lb.add(idex_rs, operand_b);
  const Bus alu_sub = lb.sub(idex_rs, operand_b);
  const Bus alu_and = lb.and_bus(idex_rs, operand_b);
  const Bus alu_or = lb.or_bus(idex_rs, operand_b);
  const Bus alu_xor = lb.xor_bus(idex_rs, operand_b);

  // Barrel shifter: log2(xlen) mux stages.
  Bus shifted = idex_rs;
  const Bus shamt(idex_imm.begin(), idex_imm.begin() + 5);
  for (u32 stage = 0; stage < 5; ++stage) {
    const u32 dist = 1u << stage;
    Bus moved;
    moved.reserve(xlen);
    for (u32 i = 0; i < xlen; ++i) {
      moved.push_back(i + dist < xlen ? shifted[i + dist]
                                      : nl.const_net(false));
    }
    shifted = lb.mux2_bus(shamt[stage], shifted, moved);
  }

  // Multiply unit: one generic xlen x xlen multiplier (tiles to 4 DSP48s
  // at 32 bits on Virtex-5, matching the paper's MIPS DSP count).
  const Bus alu_mul = nl.mul(idex_rs, idex_rt, "alu_mul");

  const Bus func(idex_op.begin(), idex_op.begin() + 3);
  const Bus alu_result = lb.mux_n(
      {lb.resize(alu_add, xlen), lb.resize(alu_sub, xlen), alu_and, alu_or,
       alu_xor, shifted, lb.resize(alu_mul, xlen), idex_pc},
      func);
  const NetId take_branch = lb.land(lb.reduce_or(lb.xor_bus(idex_rs, idex_rt)),
                                    lb.reduce_and(func));

  // EX/MEM pipeline registers.
  const Bus exmem_alu = lb.register_bus(alu_result, "exmem_alu");
  const Bus exmem_store = lb.register_bus(idex_rt, "exmem_store");
  const Bus exmem_rd = lb.register_bus(idex_rd, "exmem_rd");
  const NetId exmem_branch = nl.ff(take_branch, "exmem_branch");

  // ---------------- MEM: data memory -------------------------------------
  const Bus dmem_addr(
      exmem_alu.begin(),
      exmem_alu.begin() + static_cast<std::ptrdiff_t>(std::min<u32>(12, xlen)));
  const Bus load_data = nl.ram(params.dcache_depth, 32, dmem_addr,
                               lb.resize(exmem_store, 32), exmem_branch,
                               "dmem");

  // MEM/WB pipeline registers + write-back mux.
  const Bus memwb_load = lb.register_bus(load_data, "memwb_load");
  const Bus memwb_alu = lb.register_bus(exmem_alu, "memwb_alu");
  const Bus memwb_rd = lb.register_bus(exmem_rd, "memwb_rd");
  const NetId memwb_is_load = nl.ff(exmem_branch, "memwb_is_load");
  const Bus wb_data =
      lb.mux2_bus(memwb_is_load, lb.resize(memwb_alu, xlen),
                  lb.resize(memwb_load, xlen));

  // Close the write-back loop into the register file placeholders.
  for (u32 i = 0; i < xlen; ++i) {
    nl.replace_net(wb_data_placeholder[i], wb_data[i]);
  }
  for (u32 i = 0; i < 5; ++i) {
    nl.replace_net(wb_reg_placeholder[i], memwb_rd[i]);
  }

  nl.output_bus("debug_wb", wb_data);
  nl.output("branch_taken", exmem_branch);
  nl.validate();
  return nl;
}

Netlist make_sdram_ctrl(const SdramParams& params) {
  Netlist nl{"sdram_ctrl"};
  LogicBuilder lb{nl};
  const u32 dw = params.data_width;

  const NetId req = nl.input("req");
  const NetId we = nl.input("we");
  const Bus addr = nl.input_bus("addr",
                                params.row_bits + params.col_bits + 2);
  const Bus wdata = nl.input_bus("wdata", dw);

  // One-hot command FSM over ~20 states (INIT, PRECHARGE, MODE, IDLE,
  // ACTIVATE, READ, WRITE, REFRESH and wait states).
  constexpr u32 kStates = 20;
  std::vector<NetId> state_placeholders;
  Bus state;
  for (u32 s = 0; s < kStates; ++s) {
    const NetId ph = nl.add_net();
    state_placeholders.push_back(ph);
    state.push_back(nl.ff(ph, "state" + std::to_string(s), s == 0));
  }

  // Timing counters.
  const NetId tick = lb.reduce_or(Bus(state.begin(), state.begin() + 4));
  const Bus init_cnt = lb.counter_ce_clr(16, tick, state[0], "init_cnt");
  const Bus refresh_cnt = lb.counter(12, "refresh_cnt");
  const NetId refresh_due = lb.eq_const(refresh_cnt, 0x700);
  const Bus trc_cnt = lb.counter_ce_clr(6, state[4], state[5], "trc_cnt");
  const Bus trp_cnt = lb.counter_ce_clr(6, state[6], state[7], "trp_cnt");
  const Bus trcd_cnt = lb.counter_ce_clr(6, state[8], state[9], "trcd_cnt");
  const Bus burst_cnt = lb.counter_ce_clr(4, state[10], state[11], "burst");

  // Next-state logic: each state's successor depends on its timer/flags.
  const NetId init_done = lb.eq_const(init_cnt, 0xC350 & 0xFFFF);
  const NetId trc_done = lb.eq_const(trc_cnt, 7);
  const NetId trp_done = lb.eq_const(trp_cnt, 3);
  const NetId trcd_done = lb.eq_const(trcd_cnt, 3);
  const NetId burst_done = lb.eq_const(burst_cnt, 7);
  const NetId go = lb.land(req, state[3]);
  for (u32 s = 0; s < kStates; ++s) {
    const NetId hold = lb.land(state[s], lb.lnot(s == 0 ? init_done
                                                 : s == 4 ? trc_done
                                                 : s == 6 ? trp_done
                                                 : s == 8 ? trcd_done
                                                 : s == 10 ? burst_done
                                                           : go));
    const NetId enter = s == 0
                            ? nl.const_net(false)
                            : lb.land(state[s - 1],
                                      s == 1   ? init_done
                                      : s == 5 ? trc_done
                                      : s == 7 ? trp_done
                                      : s == 9 ? trcd_done
                                      : s == 11 ? burst_done
                                      : s == 12 ? refresh_due
                                                : go);
    nl.replace_net(state_placeholders[s], lb.lor(hold, enter));
  }

  // Address path: registered row/col/bank with output mux.
  const Bus row(addr.begin() + params.col_bits,
                addr.begin() + params.col_bits + params.row_bits);
  const Bus col(addr.begin(), addr.begin() + params.col_bits);
  const Bus bank(addr.end() - 2, addr.end());
  const Bus row_reg = lb.register_bus_ce(row, go, "row_reg");
  const Bus col_reg = lb.register_bus_ce(col, go, "col_reg");
  const Bus bank_reg = lb.register_bus_ce(bank, go, "bank_reg");
  const Bus sdram_addr =
      lb.mux2_bus(state[8], lb.resize(col_reg, params.row_bits), row_reg);
  nl.output_bus("sdram_a", sdram_addr);
  nl.output_bus("sdram_ba", bank_reg);

  // Data path: registered in/out with write-enable gating.
  const Bus wdata_reg = lb.register_bus_ce(wdata, lb.land(go, we), "wdata_reg");
  const Bus dq_in = nl.input_bus("dq_in", dw);
  const Bus rdata_reg = lb.register_bus_ce(dq_in, state[11], "rdata_reg");
  nl.output_bus("dq_out", wdata_reg);
  nl.output_bus("rdata", rdata_reg);

  // Command pins decoded from state.
  nl.output("cs_n", lb.lnot(lb.reduce_or(state)));
  nl.output("ras_n", lb.lnot(lb.lor3(state[4], state[6], state[12])));
  nl.output("cas_n", lb.lnot(lb.lor(state[10], state[12])));
  nl.output("we_n", lb.lnot(lb.lor(state[6], lb.land(state[10], we))));
  nl.output("ready", state[3]);

  nl.validate();
  return nl;
}

Netlist make_aes_round() {
  Netlist nl{"aes_round"};
  LogicBuilder lb{nl};

  const Bus state_in = nl.input_bus("state", 128);
  const Bus round_key = nl.input_bus("round_key", 128);

  // SubBytes: 16 S-boxes as 256x8 RAM macros (the mapper packs pairs of
  // them into BRAM primitives).
  std::vector<Bus> sboxed;
  sboxed.reserve(16);
  for (u32 b = 0; b < 16; ++b) {
    const Bus byte_in(state_in.begin() + b * 8, state_in.begin() + b * 8 + 8);
    sboxed.push_back(nl.ram(256, 8, byte_in, lb.constant(8, 0),
                            nl.const_net(false), "sbox" + std::to_string(b)));
  }

  // ShiftRows is free (wiring); MixColumns: GF(2^8) xtime + XOR network.
  Bus mixed;
  mixed.reserve(128);
  for (u32 col = 0; col < 4; ++col) {
    for (u32 row = 0; row < 4; ++row) {
      const Bus& a = sboxed[(col * 4 + row) % 16];
      const Bus& b = sboxed[(col * 4 + (row + 1) % 4) % 16];
      const Bus& c = sboxed[(col * 4 + (row + 2) % 4) % 16];
      const Bus& d = sboxed[(col * 4 + (row + 3) % 4) % 16];
      const Bus ab = lb.xor_bus(a, b);
      const Bus cd = lb.xor_bus(c, d);
      const Bus mixed_byte = lb.xor_bus(ab, cd);
      mixed.insert(mixed.end(), mixed_byte.begin(), mixed_byte.end());
    }
  }

  // AddRoundKey + output register.
  const Bus out = lb.register_bus(lb.xor_bus(mixed, round_key), "state_out");
  nl.output_bus("state_out", out);
  nl.validate();
  return nl;
}

Netlist make_crc32(u32 data_width) {
  if (data_width == 0) throw ContractError{"make_crc32: zero data width"};
  Netlist nl{"crc32"};
  LogicBuilder lb{nl};

  const Bus data = nl.input_bus("data", data_width);
  std::vector<NetId> crc_placeholders;
  Bus crc;
  for (u32 i = 0; i < 32; ++i) {
    const NetId ph = nl.add_net();
    crc_placeholders.push_back(ph);
    crc.push_back(nl.ff(ph, "crc" + std::to_string(i), true));
  }

  // Unrolled LFSR: next state is an XOR combination of state and data bits
  // given by the CRC-32 (0x04C11DB7) polynomial, computed symbolically.
  std::array<std::vector<u32>, 32> state_terms;  // indices into crc
  std::array<std::vector<u32>, 32> data_terms;   // indices into data
  std::array<std::vector<u32>, 32> cur_state;
  for (u32 i = 0; i < 32; ++i) cur_state[i] = {i};
  std::array<std::vector<u32>, 32> cur = cur_state;
  std::array<std::vector<u32>, 32> cur_data{};
  const auto toggle = [](std::vector<u32>& v, u32 x) {
    const auto it = std::find(v.begin(), v.end(), x);
    if (it == v.end()) v.push_back(x); else v.erase(it);
  };
  for (u32 step = 0; step < data_width; ++step) {
    // feedback = crc[31] ^ data[step]
    std::vector<u32> fb_state = cur[31];
    std::vector<u32> fb_data = cur_data[31];
    toggle(fb_data, step);
    std::array<std::vector<u32>, 32> next{};
    std::array<std::vector<u32>, 32> next_data{};
    for (u32 i = 31; i >= 1; --i) {
      next[i] = cur[i - 1];
      next_data[i] = cur_data[i - 1];
      constexpr u64 kPoly = 0x04C11DB7ull;
      if ((kPoly >> i) & 1) {
        for (const u32 t : fb_state) toggle(next[i], t);
        for (const u32 t : fb_data) toggle(next_data[i], t);
      }
    }
    next[0] = fb_state;
    next_data[0] = fb_data;
    cur = std::move(next);
    cur_data = std::move(next_data);
  }
  state_terms = cur;
  data_terms = cur_data;

  for (u32 i = 0; i < 32; ++i) {
    Bus terms;
    for (const u32 s : state_terms[i]) terms.push_back(crc[s]);
    for (const u32 d : data_terms[i]) terms.push_back(data[d]);
    nl.replace_net(crc_placeholders[i],
                   terms.empty() ? nl.const_net(false) : lb.reduce_xor(terms));
  }

  nl.output_bus("crc", crc);
  nl.validate();
  return nl;
}

Netlist make_uart(u32 divisor_bits) {
  Netlist nl{"uart"};
  LogicBuilder lb{nl};

  const NetId rx = nl.input("rx");
  const Bus tx_data = nl.input_bus("tx_data", 8);
  const NetId tx_start = nl.input("tx_start");

  const Bus baud_cnt = lb.counter(divisor_bits, "baud_cnt");
  const NetId baud_tick = lb.eq_const(baud_cnt, (1ull << divisor_bits) - 1);

  // TX: 10-bit shift register (start + 8 data + stop) + bit counter.
  const Bus tx_shift = lb.register_bus_ce(
      lb.mux2_bus(tx_start, lb.resize(tx_data, 10), lb.resize(tx_data, 10)),
      baud_tick, "tx_shift");
  const Bus tx_bit_cnt = lb.counter_ce_clr(4, baud_tick, tx_start, "tx_bits");
  nl.output("tx", tx_shift[0]);
  nl.output("tx_busy", lb.lnot(lb.eq_const(tx_bit_cnt, 10)));

  // RX: 2-FF synchronizer, sample counter, 8-bit shift register.
  const NetId rx_sync = nl.ff(nl.ff(rx, "rx_meta"), "rx_sync");
  const Bus rx_shift = lb.register_bus_ce(
      [&] {
        Bus shifted{rx_sync};
        return lb.resize(shifted, 8);
      }(),
      baud_tick, "rx_shift");
  const Bus rx_bit_cnt = lb.counter_ce_clr(4, baud_tick, rx_sync, "rx_bits");
  nl.output_bus("rx_data", rx_shift);
  nl.output("rx_done", lb.eq_const(rx_bit_cnt, 9));

  nl.validate();
  return nl;
}

Netlist make_sobel(u32 line_width, u32 pixel_bits) {
  if (line_width < 3 || pixel_bits == 0) {
    throw ContractError{"make_sobel: degenerate parameters"};
  }
  Netlist nl{"sobel"};
  LogicBuilder lb{nl};

  const Bus pixel_in = nl.input_bus("pixel", pixel_bits);
  const NetId pixel_valid = nl.input("pixel_valid");

  // Column counter addresses the two line buffers (previous two rows).
  const u32 addr_bits = [&] {
    u32 bits = 1;
    while ((1u << bits) < line_width) ++bits;
    return bits;
  }();
  const Bus col = lb.counter_ce_clr(addr_bits, pixel_valid,
                                    nl.input("line_start"), "col");
  const Bus line1 = nl.ram(1u << addr_bits, pixel_bits, col, pixel_in,
                           pixel_valid, "linebuf1");
  const Bus line2 = nl.ram(1u << addr_bits, pixel_bits, col, line1,
                           pixel_valid, "linebuf2");

  // 3x3 window: three shift chains of 3 pixels each.
  const auto window_row = [&](const Bus& source, const char* name) {
    std::vector<Bus> taps = lb.delay_line(source, 3, name);
    return taps;
  };
  const auto r0 = window_row(line2, "w0");
  const auto r1 = window_row(line1, "w1");
  const auto r2 = window_row(pixel_in, "w2");

  // Gx = (r0[0]+2*r1[0]+r2[0]) - (r0[2]+2*r1[2]+r2[2]);
  // Gy analogous across rows. Shifts are free; adds are LUT/carry.
  const auto weighted = [&](const Bus& a, const Bus& b2, const Bus& c) {
    Bus doubled = b2;
    doubled.insert(doubled.begin(), nl.const_net(false));  // b*2
    return lb.add(lb.add(a, doubled), c);
  };
  const Bus gx_pos = weighted(r0[0], r1[0], r2[0]);
  const Bus gx_neg = weighted(r0[2], r1[2], r2[2]);
  const Bus gy_pos = weighted(r0[0], r0[1], r0[2]);
  const Bus gy_neg = weighted(r2[0], r2[1], r2[2]);
  const Bus gx = lb.sub(gx_pos, gx_neg);
  const Bus gy = lb.sub(gy_pos, gy_neg);

  // |Gx| + |Gy| approximated by conditional negate + add.
  const auto magnitude = [&](const Bus& g) {
    const NetId sign = g.back();
    const Bus negated = lb.increment(lb.not_bus(g));
    return lb.mux2_bus(sign, g, negated);
  };
  const Bus mag = lb.add(magnitude(gx), magnitude(gy));

  // Threshold compare + registered outputs.
  const Bus threshold = nl.input_bus("threshold", pixel_bits);
  const Bus diff = lb.sub(mag, lb.resize(threshold, narrow<u32>(mag.size())));
  const NetId edge = lb.lnot(diff.back());
  nl.output("edge", nl.ff(edge, "edge_reg"));
  nl.output_bus("magnitude",
                lb.register_bus(lb.resize(mag, pixel_bits), "mag_reg"));

  nl.validate();
  return nl;
}

Netlist make_fft_stage(u32 points, u32 sample_bits) {
  if (points < 4 || sample_bits == 0) {
    throw ContractError{"make_fft_stage: degenerate parameters"};
  }
  Netlist nl{"fft_stage"};
  LogicBuilder lb{nl};

  const Bus a_re = nl.input_bus("a_re", sample_bits);
  const Bus a_im = nl.input_bus("a_im", sample_bits);
  const Bus b_re = nl.input_bus("b_re", sample_bits);
  const Bus b_im = nl.input_bus("b_im", sample_bits);

  // Twiddle factor ROM: points/2 complex coefficients from a BRAM macro.
  u32 index_bits = 1;
  while ((1u << index_bits) < points / 2) ++index_bits;
  const Bus k = lb.counter(index_bits, "k");
  const Bus twiddle = nl.ram(points / 2, 2 * sample_bits, k,
                             lb.constant(2 * sample_bits, 0),
                             nl.const_net(false), "twiddle_rom");
  const Bus w_re(twiddle.begin(),
                 twiddle.begin() + static_cast<std::ptrdiff_t>(sample_bits));
  const Bus w_im(twiddle.begin() + static_cast<std::ptrdiff_t>(sample_bits),
                 twiddle.end());

  // Complex multiply b * w: four real multipliers (DSP48s after mapping).
  const Bus re_re = nl.mul(b_re, w_re, "m_rr");
  const Bus im_im = nl.mul(b_im, w_im, "m_ii");
  const Bus re_im = nl.mul(b_re, w_im, "m_ri");
  const Bus im_re = nl.mul(b_im, w_re, "m_ir");
  const Bus prod_re = lb.sub(re_re, im_im);
  const Bus prod_im = lb.add(re_im, im_re);

  // Butterfly outputs: a +/- b*w, truncated and registered.
  const auto out_pair = [&](const Bus& a, const Bus& p, const char* name) {
    const Bus wide_a = lb.resize(a, narrow<u32>(p.size()));
    nl.output_bus(std::string{name} + "_sum",
                  lb.register_bus(lb.resize(lb.add(wide_a, p), sample_bits)));
    nl.output_bus(std::string{name} + "_diff",
                  lb.register_bus(lb.resize(lb.sub(wide_a, p), sample_bits)));
  };
  out_pair(a_re, prod_re, "re");
  out_pair(a_im, prod_im, "im");

  nl.validate();
  return nl;
}

Netlist make_matmul(u32 mac_units, u32 data_width) {
  if (mac_units == 0) throw ContractError{"make_matmul: zero MAC units"};
  Netlist nl{"matmul"};
  LogicBuilder lb{nl};

  const Bus k_index = lb.counter(10, "k_index");
  const NetId accumulate = nl.input("accumulate");

  // Operand memories: A is mac_units-wide rows, B is a column vector.
  const Bus a_row = nl.ram(1024, mac_units * data_width, k_index,
                           lb.constant(mac_units * data_width, 0),
                           nl.const_net(false), "a_mem");
  const Bus b_col = nl.ram(1024, data_width, k_index,
                           lb.constant(data_width, 0), nl.const_net(false),
                           "b_mem");

  // MAC units: generic multiply-accumulate cells -> one DSP each.
  for (u32 m = 0; m < mac_units; ++m) {
    const Bus a_slice(a_row.begin() + m * data_width,
                      a_row.begin() + (m + 1) * data_width);
    const Bus acc = nl.mul_acc(a_slice, b_col, 2 * data_width + 8,
                               "mac" + std::to_string(m));
    const Bus out = lb.register_bus_ce(acc, accumulate,
                                       "c_reg" + std::to_string(m));
    nl.output_bus("c" + std::to_string(m), out);
  }

  nl.validate();
  return nl;
}

}  // namespace prcost
