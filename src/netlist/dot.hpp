// Graphviz DOT export for netlists (debugging / documentation aid).
#pragma once

#include <string>

#include "netlist/netlist.hpp"

namespace prcost {

/// Render the live cells of `nl` as a DOT digraph. `max_cells` truncates
/// very large netlists (0 = no limit); truncation is noted in a comment
/// node so a truncated graph is never mistaken for the whole design.
std::string to_dot(const Netlist& nl, std::size_t max_cells = 0);

}  // namespace prcost
