// Word-level combinational/sequential construction helpers on top of the
// bit-level netlist IR: gates, muxes, ripple-carry arithmetic (LUT +
// CARRY4-style chain, matching how XST maps adders), registers, counters
// and wide reductions. PRM generators are written against this API.
#pragma once

#include <string>

#include "netlist/netlist.hpp"

namespace prcost {

/// Truth tables for common LUT functions (input 0 is the least-significant
/// index bit).
namespace tt {
inline constexpr u64 kNot = 0x1;        // 1 input
inline constexpr u64 kBuf = 0x2;        // 1 input
inline constexpr u64 kAnd2 = 0x8;       // 2 inputs
inline constexpr u64 kOr2 = 0xE;        // 2 inputs
inline constexpr u64 kXor2 = 0x6;       // 2 inputs
inline constexpr u64 kNand2 = 0x7;      // 2 inputs
inline constexpr u64 kNor2 = 0x1;       // 2 inputs
inline constexpr u64 kXnor2 = 0x9;      // 2 inputs
inline constexpr u64 kMux2 = 0xE4;      // 3 inputs: (sel, a, b) -> sel?b:a
inline constexpr u64 kSum3 = 0x96;      // 3 inputs: full-adder sum (parity)
inline constexpr u64 kMaj3 = 0xE8;      // 3 inputs: full-adder carry
inline constexpr u64 kAnd3 = 0x80;      // 3 inputs
inline constexpr u64 kOr3 = 0xFE;       // 3 inputs
inline constexpr u64 kXor3 = 0x96;      // 3 inputs

/// Evaluate a k-input truth table on packed input bits.
constexpr bool eval(u64 table, u32 input_bits) {
  return ((table >> input_bits) & 1ull) != 0;
}
}  // namespace tt

/// Thin builder over a Netlist. All methods create cells in the underlying
/// netlist and return the resulting net(s).
class LogicBuilder {
 public:
  explicit LogicBuilder(Netlist& nl) : nl_(nl) {}

  Netlist& netlist() { return nl_; }

  // --- single-bit gates --------------------------------------------------
  NetId lnot(NetId a);
  NetId land(NetId a, NetId b);
  NetId lor(NetId a, NetId b);
  NetId lxor(NetId a, NetId b);
  NetId lxnor(NetId a, NetId b);
  NetId land3(NetId a, NetId b, NetId c);
  NetId lor3(NetId a, NetId b, NetId c);
  /// 2:1 mux: sel ? b : a.
  NetId mux2(NetId sel, NetId a, NetId b);

  // --- buses ---------------------------------------------------------------
  /// Constant bus of `width` bits holding `value` (shared const cells).
  Bus constant(u32 width, u64 value);
  /// Bit-wise ops (equal widths required).
  Bus and_bus(const Bus& a, const Bus& b);
  Bus or_bus(const Bus& a, const Bus& b);
  Bus xor_bus(const Bus& a, const Bus& b);
  Bus not_bus(const Bus& a);
  /// Per-bit 2:1 mux.
  Bus mux2_bus(NetId sel, const Bus& a, const Bus& b);
  /// Zero-extend or truncate to `width`.
  Bus resize(const Bus& a, u32 width);

  // --- arithmetic ----------------------------------------------------------
  /// Ripple-carry adder with CARRY4-style chain cells: one propagate LUT
  /// per bit plus one kCarry cell per 4 bits (mirrors XST adder mapping).
  /// Result width = max(|a|, |b|) + 1 (carry out as MSB).
  Bus add(const Bus& a, const Bus& b);
  /// a - b in two's complement; result width = max(|a|, |b|) + 1.
  Bus sub(const Bus& a, const Bus& b);
  /// Increment by one; result same width as input (wraps).
  Bus increment(const Bus& a);

  // --- comparisons / reductions ------------------------------------------
  /// a == value (LUT comparator tree).
  NetId eq_const(const Bus& a, u64 value);
  /// OR-reduce a bus to one bit.
  NetId reduce_or(const Bus& a);
  /// AND-reduce a bus to one bit.
  NetId reduce_and(const Bus& a);
  /// XOR-reduce a bus to one bit.
  NetId reduce_xor(const Bus& a);

  // --- sequential ----------------------------------------------------------
  /// Register every bit (optionally clock-enabled via mux feedback).
  Bus register_bus(const Bus& d, const std::string& name = {});
  /// Register with clock enable: q <= ce ? d : q.
  Bus register_bus_ce(const Bus& d, NetId ce, const std::string& name = {});
  /// Free-running counter of `width` bits; returns count bus.
  Bus counter(u32 width, const std::string& name = {});
  /// Counter with enable and synchronous clear.
  Bus counter_ce_clr(u32 width, NetId ce, NetId clr,
                     const std::string& name = {});
  /// N-stage, W-bit shift register (delay line); returns all stage buses.
  std::vector<Bus> delay_line(const Bus& in, u32 stages,
                              const std::string& name = {});

  // --- wide selection -------------------------------------------------------
  /// N:1 mux over equally sized buses using a LUT tree (select is binary).
  Bus mux_n(const std::vector<Bus>& inputs, const Bus& select);
  /// One-hot decoder: `width`-bit input -> 2^width outputs.
  Bus decode(const Bus& a);

 private:
  Netlist& nl_;
};

}  // namespace prcost
