#include "netlist/dot.hpp"

#include <sstream>

namespace prcost {

std::string to_dot(const Netlist& nl, std::size_t max_cells) {
  std::ostringstream os;
  os << "digraph \"" << nl.name() << "\" {\n  rankdir=LR;\n"
     << "  node [shape=box, fontsize=9];\n";
  const auto cells = nl.live_cells();
  const std::size_t limit =
      max_cells == 0 ? cells.size() : std::min(max_cells, cells.size());
  for (std::size_t i = 0; i < limit; ++i) {
    const Cell& cell = nl.cell(cells[i]);
    os << "  c" << index(cells[i]) << " [label=\"" << cell.name << "\\n"
       << cell_kind_name(cell.kind) << "\"];\n";
  }
  // Edges: driver cell -> sink cell for each net, restricted to the
  // emitted cell range.
  for (std::size_t i = 0; i < limit; ++i) {
    const Cell& cell = nl.cell(cells[i]);
    for (const NetId out : cell.outputs) {
      for (const CellId sink : nl.net(out).sinks) {
        if (index(sink) <= index(cells[limit - 1])) {
          os << "  c" << index(cells[i]) << " -> c" << index(sink) << ";\n";
        }
      }
    }
  }
  if (limit < cells.size()) {
    os << "  truncated [shape=note, label=\"" << (cells.size() - limit)
       << " more cells omitted\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace prcost
