#include "netlist/netlist.hpp"

#include <algorithm>

namespace prcost {

std::string_view cell_kind_name(CellKind kind) {
  switch (kind) {
    case CellKind::kConst0: return "CONST0";
    case CellKind::kConst1: return "CONST1";
    case CellKind::kInput: return "INPUT";
    case CellKind::kOutput: return "OUTPUT";
    case CellKind::kLut: return "LUT";
    case CellKind::kFf: return "FF";
    case CellKind::kCarry: return "CARRY";
    case CellKind::kMul: return "MUL";
    case CellKind::kMulAcc: return "MULACC";
    case CellKind::kRam: return "RAM";
    case CellKind::kDsp48: return "DSP48";
    case CellKind::kBram36: return "BRAM36";
    case CellKind::kBram18: return "BRAM18";
  }
  return "?";
}

std::string Netlist::next_auto_name(std::string_view prefix) {
  return std::string{prefix} + "_" + std::to_string(auto_name_counter_++);
}

NetId Netlist::add_net(std::string name) {
  if (name.empty()) name = next_auto_name("net");
  nets_.push_back(Net{std::move(name), kNoCell, {}});
  return NetId{narrow<u32>(nets_.size() - 1)};
}

CellId Netlist::add_cell(CellKind kind, std::string name,
                         std::span<const NetId> ins, u32 output_count,
                         u64 param0, u64 param1) {
  if (name.empty()) name = next_auto_name(std::string{cell_kind_name(kind)});
  const CellId id{narrow<u32>(cells_.size())};
  Cell cell;
  cell.kind = kind;
  cell.name = std::move(name);
  cell.param0 = param0;
  cell.param1 = param1;
  cell.inputs.assign(ins.begin(), ins.end());
  for (const NetId in : cell.inputs) {
    if (in != kNoNet) nets_.at(index(in)).sinks.push_back(id);
  }
  cell.outputs.reserve(output_count);
  for (u32 i = 0; i < output_count; ++i) {
    const NetId out = add_net(cell.name + "_o" + std::to_string(i));
    nets_.at(index(out)).driver = id;
    cell.outputs.push_back(out);
  }
  cells_.push_back(std::move(cell));
  return id;
}

NetId Netlist::input(std::string name) {
  const CellId id = add_cell(CellKind::kInput, std::move(name), {}, 1);
  return cells_[index(id)].outputs[0];
}

Bus Netlist::input_bus(const std::string& name, u32 width) {
  Bus bus;
  bus.reserve(width);
  for (u32 i = 0; i < width; ++i) {
    bus.push_back(input(name + "[" + std::to_string(i) + "]"));
  }
  return bus;
}

CellId Netlist::output(std::string name, NetId net) {
  const NetId ins[] = {net};
  return add_cell(CellKind::kOutput, std::move(name), ins, 0);
}

void Netlist::output_bus(const std::string& name, const Bus& bus) {
  for (std::size_t i = 0; i < bus.size(); ++i) {
    output(name + "[" + std::to_string(i) + "]", bus[i]);
  }
}

NetId Netlist::const_net(bool value) {
  NetId& cached = value ? const1_ : const0_;
  if (cached == kNoNet) {
    const CellId id = add_cell(value ? CellKind::kConst1 : CellKind::kConst0,
                               value ? "const1" : "const0", {}, 1);
    cached = cells_[index(id)].outputs[0];
  }
  return cached;
}

NetId Netlist::lut(u64 truth_table, std::span<const NetId> ins,
                   std::string name) {
  if (ins.empty() || ins.size() > 6) {
    throw ContractError{"Netlist::lut: LUT must have 1..6 inputs"};
  }
  const CellId id =
      add_cell(CellKind::kLut, std::move(name), ins, 1, truth_table);
  return cells_[index(id)].outputs[0];
}

NetId Netlist::ff(NetId d, std::string name, bool init) {
  const NetId ins[] = {d};
  const CellId id =
      add_cell(CellKind::kFf, std::move(name), ins, 1, init ? 1 : 0);
  return cells_[index(id)].outputs[0];
}

Bus Netlist::mul(const Bus& a, const Bus& b, std::string name) {
  std::vector<NetId> ins;
  ins.reserve(a.size() + b.size());
  ins.insert(ins.end(), a.begin(), a.end());
  ins.insert(ins.end(), b.begin(), b.end());
  const u32 out_width = narrow<u32>(a.size() + b.size());
  const CellId id = add_cell(CellKind::kMul, std::move(name), ins, out_width,
                             a.size(), b.size());
  return cells_[index(id)].outputs;
}

Bus Netlist::mul_acc(const Bus& a, const Bus& b, u32 acc_width,
                     std::string name) {
  std::vector<NetId> ins;
  ins.reserve(a.size() + b.size());
  ins.insert(ins.end(), a.begin(), a.end());
  ins.insert(ins.end(), b.begin(), b.end());
  const CellId id = add_cell(CellKind::kMulAcc, std::move(name), ins,
                             acc_width, a.size(), b.size());
  return cells_[index(id)].outputs;
}

Bus Netlist::ram(u32 depth, u32 width, const Bus& addr, const Bus& write_data,
                 NetId write_enable, std::string name) {
  if (write_data.size() != width) {
    throw ContractError{"Netlist::ram: write_data width mismatch"};
  }
  std::vector<NetId> ins;
  ins.reserve(addr.size() + write_data.size() + 1);
  ins.insert(ins.end(), addr.begin(), addr.end());
  ins.insert(ins.end(), write_data.begin(), write_data.end());
  ins.push_back(write_enable);
  const CellId id =
      add_cell(CellKind::kRam, std::move(name), ins, width, depth, width);
  return cells_[index(id)].outputs;
}

std::vector<CellId> Netlist::live_cells() const {
  std::vector<CellId> out;
  out.reserve(cells_.size());
  for (u32 i = 0; i < cells_.size(); ++i) {
    if (!cells_[i].dead) out.push_back(CellId{i});
  }
  return out;
}

NetlistStats Netlist::stats() const {
  NetlistStats s;
  for (const auto& cell : cells_) {
    if (cell.dead) continue;
    switch (cell.kind) {
      case CellKind::kLut: ++s.luts; break;
      case CellKind::kFf: ++s.ffs; break;
      case CellKind::kCarry: ++s.carries; break;
      case CellKind::kMul:
      case CellKind::kMulAcc: ++s.muls; break;
      case CellKind::kRam: ++s.rams; break;
      case CellKind::kDsp48: ++s.dsp48s; break;
      case CellKind::kBram36: ++s.bram36s; break;
      case CellKind::kBram18: ++s.bram18s; break;
      case CellKind::kInput: ++s.inputs; break;
      case CellKind::kOutput: ++s.outputs; break;
      case CellKind::kConst0:
      case CellKind::kConst1: ++s.constants; break;
    }
  }
  return s;
}

void Netlist::kill_cell(CellId id) {
  Cell& cell = cells_.at(index(id));
  if (cell.dead) return;
  for (const NetId in : cell.inputs) {
    if (in == kNoNet) continue;
    auto& sinks = nets_.at(index(in)).sinks;
    const auto it = std::find(sinks.begin(), sinks.end(), id);
    if (it != sinks.end()) sinks.erase(it);
  }
  for (const NetId out : cell.outputs) {
    nets_.at(index(out)).driver = kNoCell;
  }
  cell.dead = true;
}

void Netlist::replace_net(NetId from, NetId to) {
  if (from == to) return;
  Net& src = nets_.at(index(from));
  Net& dst = nets_.at(index(to));
  for (const CellId sink_id : src.sinks) {
    Cell& sink = cells_.at(index(sink_id));
    for (NetId& in : sink.inputs) {
      if (in == from) in = to;
    }
    dst.sinks.push_back(sink_id);
  }
  src.sinks.clear();
}

void Netlist::rewire_input(CellId cell_id, u32 pin, NetId to) {
  Cell& cell = cells_.at(index(cell_id));
  if (pin >= cell.inputs.size()) {
    throw ContractError{"rewire_input: pin out of range"};
  }
  const NetId from = cell.inputs[pin];
  if (from == to) return;
  if (from != kNoNet) {
    auto& sinks = nets_.at(index(from)).sinks;
    const auto it = std::find(sinks.begin(), sinks.end(), cell_id);
    if (it != sinks.end()) sinks.erase(it);
  }
  cell.inputs[pin] = to;
  if (to != kNoNet) nets_.at(index(to)).sinks.push_back(cell_id);
}

void Netlist::add_input_pin(CellId cell_id, NetId net) {
  Cell& cell = cells_.at(index(cell_id));
  cell.inputs.push_back(net);
  if (net != kNoNet) nets_.at(index(net)).sinks.push_back(cell_id);
}

void Netlist::validate() const {
  for (u32 n = 0; n < nets_.size(); ++n) {
    const Net& net = nets_[n];
    if (net.driver != kNoCell) {
      const Cell& driver = cells_.at(index(net.driver));
      if (driver.dead) {
        throw ContractError{"validate: net '" + net.name +
                            "' driven by dead cell"};
      }
      const bool listed = std::any_of(
          driver.outputs.begin(), driver.outputs.end(),
          [&](NetId out) { return index(out) == n; });
      if (!listed) {
        throw ContractError{"validate: net '" + net.name +
                            "' driver does not list it as output"};
      }
    }
    for (const CellId sink_id : net.sinks) {
      const Cell& sink = cells_.at(index(sink_id));
      if (sink.dead) {
        throw ContractError{"validate: net '" + net.name +
                            "' has dead sink"};
      }
      const bool listed =
          std::any_of(sink.inputs.begin(), sink.inputs.end(),
                      [&](NetId in) { return index(in) == n; });
      if (!listed) {
        throw ContractError{"validate: net '" + net.name +
                            "' sink does not list it as input"};
      }
    }
  }
  for (u32 c = 0; c < cells_.size(); ++c) {
    const Cell& cell = cells_[c];
    if (cell.dead) continue;
    for (const NetId in : cell.inputs) {
      if (in == kNoNet) continue;
      const auto& sinks = nets_.at(index(in)).sinks;
      if (std::find(sinks.begin(), sinks.end(), CellId{c}) == sinks.end()) {
        throw ContractError{"validate: cell '" + cell.name +
                            "' input net does not list it as sink"};
      }
    }
    for (const NetId out : cell.outputs) {
      if (nets_.at(index(out)).driver != CellId{c}) {
        throw ContractError{"validate: cell '" + cell.name +
                            "' output net has wrong driver"};
      }
    }
  }
}

}  // namespace prcost
