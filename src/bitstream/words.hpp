// Configuration-word vocabulary for Virtex-style partial bitstreams
// (UG191 chapter 6 / UG360 / UG470): sync words, type-1/type-2 packet
// headers, configuration registers and commands.
#pragma once

#include <string_view>

#include "util/ints.hpp"

namespace prcost {

/// Special configuration words.
namespace cfg {
inline constexpr u32 kDummy = 0xFFFFFFFF;
inline constexpr u32 kBusWidthSync = 0x000000BB;
inline constexpr u32 kBusWidthDetect = 0x11220044;
inline constexpr u32 kSync = 0xAA995566;
inline constexpr u32 kNoop = 0x20000000;
}  // namespace cfg

/// Configuration registers (packet-header address field).
enum class ConfigReg : u32 {
  kCrc = 0x00,
  kFar = 0x01,
  kFdri = 0x02,
  kFdro = 0x03,
  kCmd = 0x04,
  kCtl0 = 0x05,
  kMask = 0x06,
  kStat = 0x07,
  kLout = 0x08,
  kCout = 0x09,
  kMfwr = 0x0A,
  kCbc = 0x0B,
  kIdcode = 0x0C,
  kAxss = 0x0D,
};

/// CMD register command codes.
enum class ConfigCmd : u32 {
  kNull = 0x0,
  kWcfg = 0x1,
  kMfw = 0x2,
  kLfrm = 0x3,
  kRcfg = 0x4,
  kStart = 0x5,
  kRcap = 0x6,
  kRcrc = 0x7,
  kAghigh = 0x8,
  kSwitch = 0x9,
  kGrestore = 0xA,
  kShutdown = 0xB,
  kGcapture = 0xC,
  kDesync = 0xD,
};

/// Packet opcodes.
enum class PacketOp : u32 { kNop = 0, kRead = 1, kWrite = 2 };

/// Build a type-1 packet header: op on `reg`, `count` payload words.
constexpr u32 type1(PacketOp op, ConfigReg reg, u32 count) {
  return (1u << 29) | (static_cast<u32>(op) << 27) |
         ((static_cast<u32>(reg) & 0x3FFFu) << 13) | (count & 0x7FFu);
}

/// Build a type-2 packet header (big payload, register from previous
/// type-1): `count` payload words (27 bits).
constexpr u32 type2(PacketOp op, u32 count) {
  return (2u << 29) | (static_cast<u32>(op) << 27) | (count & 0x7FFFFFFu);
}

/// Decode helpers.
constexpr u32 packet_type(u32 word) { return word >> 29; }
constexpr PacketOp packet_op(u32 word) {
  return static_cast<PacketOp>((word >> 27) & 0x3u);
}
constexpr ConfigReg packet_reg(u32 word) {
  return static_cast<ConfigReg>((word >> 13) & 0x3FFFu);
}
constexpr u32 type1_count(u32 word) { return word & 0x7FFu; }
constexpr u32 type2_count(u32 word) { return word & 0x7FFFFFFu; }

/// Register / command names for the disassembler.
std::string_view config_reg_name(ConfigReg reg);
std::string_view config_cmd_name(ConfigCmd cmd);

}  // namespace prcost
