#include "bitstream/readback.hpp"

#include "bitstream/words.hpp"
#include "util/error.hpp"

namespace prcost {

ReadbackRequest make_readback_request(const PrrPlan& plan, Family family) {
  const FamilyTraits& t = traits(family);
  const PrrOrganization& org = plan.organization;
  if (org.h == 0 || org.width() == 0) {
    throw ContractError{"make_readback_request: empty plan"};
  }
  ReadbackRequest request;
  auto& out = request.command_words;

  // Short sync header (readback shares the configuration interface).
  out.push_back(cfg::kDummy);
  out.push_back(cfg::kSync);
  out.push_back(cfg::kNoop);
  out.push_back(type1(PacketOp::kWrite, ConfigReg::kCmd, 1));
  out.push_back(static_cast<u32>(ConfigCmd::kRcfg));

  const u64 cfg_frames = u64{org.columns.clb_cols} * t.cf_clb +
                         u64{org.columns.dsp_cols} * t.cf_dsp +
                         u64{org.columns.bram_cols} * t.cf_bram;
  const u64 bram_frames = org.columns.bram_cols > 0
                              ? u64{org.columns.bram_cols} * t.df_bram
                              : 0;

  const auto add_burst = [&](FrameBlock block, u32 row, u64 frames) {
    if (frames == 0) return;
    const FrameAddress far{block, row, plan.window.first_col, 0};
    out.push_back(type1(PacketOp::kWrite, ConfigReg::kFar, 1));
    out.push_back(encode_far(far));
    out.push_back(type1(PacketOp::kRead, ConfigReg::kFdro, 0));
    // +1 pipeline pad frame leads every FDRO response.
    out.push_back(type2(PacketOp::kRead,
                        narrow<u32>((frames + 1) * t.frame_size)));
    request.bursts.push_back(ReadbackBurst{far, frames});
    request.response_words += (frames + 1) * t.frame_size;
  };
  for (u32 row = 0; row < org.h; ++row) {
    add_burst(FrameBlock::kInterconnect, plan.first_row + row, cfg_frames);
    add_burst(FrameBlock::kBramContent, plan.first_row + row, bram_frames);
  }

  out.push_back(type1(PacketOp::kWrite, ConfigReg::kCmd, 1));
  out.push_back(static_cast<u32>(ConfigCmd::kDesync));
  return request;
}

std::vector<u32> serve_readback(const ConfigMemory& cm,
                                const ReadbackRequest& request) {
  const u32 frame_size = cm.fabric().traits().frame_size;
  std::vector<u32> response;
  response.reserve(request.response_words);
  for (const ReadbackBurst& burst : request.bursts) {
    response.insert(response.end(), frame_size, 0u);  // pipeline pad frame
    const std::vector<u32> frames = cm.read_burst(burst.far, burst.frames);
    response.insert(response.end(), frames.begin(), frames.end());
  }
  if (response.size() != request.response_words) {
    throw ContractError{"serve_readback: response size mismatch"};
  }
  return response;
}

std::vector<std::vector<u32>> split_readback_response(
    const ReadbackRequest& request, std::span<const u32> response,
    u32 frame_size) {
  if (response.size() != request.response_words) {
    throw ContractError{"split_readback_response: word count mismatch"};
  }
  std::vector<std::vector<u32>> out;
  std::size_t pos = 0;
  for (const ReadbackBurst& burst : request.bursts) {
    pos += frame_size;  // drop the pipeline pad frame
    const std::size_t words = burst.frames * frame_size;
    out.emplace_back(response.begin() + static_cast<std::ptrdiff_t>(pos),
                     response.begin() + static_cast<std::ptrdiff_t>(pos + words));
    pos += words;
  }
  return out;
}

}  // namespace prcost
