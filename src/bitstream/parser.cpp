#include "bitstream/parser.hpp"

#include <sstream>

#include "bitstream/crc.hpp"
#include "util/error.hpp"

namespace prcost {

u64 BitstreamLayout::bram_burst_count() const {
  u64 n = 0;
  for (const auto& b : bursts) {
    if (b.far.block == FrameBlock::kBramContent) ++n;
  }
  return n;
}

u64 BitstreamLayout::config_burst_count() const {
  u64 n = 0;
  for (const auto& b : bursts) {
    if (b.far.block == FrameBlock::kInterconnect) ++n;
  }
  return n;
}

namespace {

struct Cursor {
  std::span<const u32> words;
  u64 pos = 0;

  bool done() const { return pos >= words.size(); }
  u32 peek() const {
    if (done()) throw ParseError{"bitstream: truncated stream"};
    return words[pos];
  }
  u32 take() {
    const u32 w = peek();
    ++pos;
    return w;
  }
};

}  // namespace

BitstreamLayout parse_bitstream(std::span<const u32> words, Family family) {
  const FamilyTraits& t = traits(family);
  BitstreamLayout layout;
  layout.total_words = words.size();

  Cursor cur{words};
  // --- pre-sync: dummies / bus-width detection -------------------------
  while (!cur.done() && cur.peek() != cfg::kSync) cur.take();
  if (cur.done()) throw ParseError{"bitstream: sync word not found"};
  cur.take();  // SYNC

  ConfigCrc crc;
  FrameAddress current_far{};
  bool far_valid = false;
  bool in_body = false;  // set once the first FAR write is seen
  u64 body_start = 0;
  u64 final_start = words.size();

  while (!cur.done()) {
    const u32 word = cur.take();
    if (word == cfg::kNoop || word == cfg::kDummy) continue;
    if (packet_type(word) == 1) {
      const ConfigReg reg = packet_reg(word);
      const PacketOp op = packet_op(word);
      u32 count = type1_count(word);
      if (op == PacketOp::kNop) continue;
      if (reg == ConfigReg::kFdri && count == 0) {
        // Big burst follows as a type-2 packet.
        const u32 t2 = cur.take();
        if (packet_type(t2) != 2) {
          throw ParseError{"bitstream: FDRI type-1 not followed by type-2"};
        }
        count = type2_count(t2);
        if (!far_valid) throw ParseError{"bitstream: FDRI before FAR"};
        // Validate the adversary-controlled count before any arithmetic
        // or recording: it must name a non-empty, frame-aligned burst
        // that fits in the remaining words.
        if (count == 0) {
          throw ParseError{"bitstream: empty FDRI type-2 burst"};
        }
        if (count > words.size() - cur.pos) {
          throw ParseError{"bitstream: truncated stream"};
        }
        if (count % t.frame_size != 0) {
          throw ParseError{"bitstream: FDRI burst not frame-aligned"};
        }
        FdriBurst burst;
        burst.far = current_far;
        burst.words = count;
        burst.frames = count / t.frame_size;
        burst.offset_words = cur.pos;
        crc.update_span(ConfigReg::kFdri, words.subspan(cur.pos, count));
        cur.pos += count;
        layout.bursts.push_back(burst);
        continue;
      }
      // Plain type-1 payload.
      for (u32 i = 0; i < count; ++i) {
        const u32 value = cur.take();
        switch (reg) {
          case ConfigReg::kFar:
            current_far = decode_far(value);
            far_valid = true;
            if (!in_body) {
              in_body = true;
              body_start = cur.pos - 3;  // NOOP + FAR header precede value
            }
            crc.update(reg, value);
            break;
          case ConfigReg::kIdcode:
            layout.idcode = value;
            crc.update(reg, value);
            break;
          case ConfigReg::kCmd: {
            const auto cmd = static_cast<ConfigCmd>(value);
            if (cmd == ConfigCmd::kRcrc) {
              crc.reset();
            } else {
              crc.update(reg, value);
            }
            if (cmd == ConfigCmd::kLfrm && final_start == words.size()) {
              final_start = cur.pos - 2;
            }
            if (cmd == ConfigCmd::kDesync) layout.desync_seen = true;
            break;
          }
          case ConfigReg::kCrc:
            layout.crc_written = value;
            layout.crc_computed = crc.value();
            break;
          default:
            crc.update(reg, value);
            break;
        }
      }
      continue;
    }
    throw ParseError{"bitstream: unexpected packet type"};
  }

  if (!in_body) throw ParseError{"bitstream: no FAR/FDRI body found"};
  layout.initial_words = body_start;
  layout.final_words = words.size() - final_start;
  layout.crc_ok = layout.crc_written == layout.crc_computed;
  return layout;
}

std::string disassemble(std::span<const u32> words, Family family) {
  const BitstreamLayout layout = parse_bitstream(words, family);
  std::ostringstream os;
  os << "partial bitstream: " << layout.total_words << " words ("
     << layout.total_words * traits(family).bytes_word << " bytes)\n"
     << "  initial words : " << layout.initial_words << "\n";
  for (const auto& burst : layout.bursts) {
    os << "  burst @" << burst.offset_words << "  "
       << far_to_string(burst.far) << "  " << burst.frames << " frames, "
       << burst.words << " words\n";
  }
  os << "  final words   : " << layout.final_words << "\n"
     << "  idcode        : 0x" << std::hex << layout.idcode << std::dec << "\n"
     << "  crc           : " << (layout.crc_ok ? "ok" : "MISMATCH") << "\n"
     << "  desync        : " << (layout.desync_seen ? "yes" : "NO") << "\n";
  return os.str();
}

}  // namespace prcost
