#include "bitstream/config_memory.hpp"

#include "bitstream/words.hpp"
#include "util/error.hpp"

namespace prcost {

ConfigMemory::ConfigMemory(const Fabric& fabric) : fabric_(&fabric) {}

u32 ConfigMemory::frames_in_column(u32 column, FrameBlock block) const {
  const ColumnType type = fabric_->column(column);
  if (block == FrameBlock::kBramContent) {
    return type == ColumnType::kBram ? fabric_->traits().df_bram : 0;
  }
  return config_frames(type, fabric_->traits());
}

ConfigMemory::Key ConfigMemory::key_of(const FrameAddress& address) {
  return Key{static_cast<u32>(address.block), address.row, address.major,
             address.minor};
}

bool ConfigMemory::advance(FrameAddress& address) const {
  ++address.minor;
  if (address.minor < frames_in_column(address.major, address.block)) {
    return true;
  }
  // Next column (to the right) with frames of this block type.
  for (u32 c = address.major + 1; c < fabric_->num_columns(); ++c) {
    if (frames_in_column(c, address.block) > 0) {
      address.major = c;
      address.minor = 0;
      return true;
    }
  }
  return false;
}

namespace {

/// Snap an address onto the first column at-or-right-of `major` that has
/// frames of its block type; returns false if none exists.
bool normalize(const ConfigMemory& cm, const Fabric& fabric,
               FrameAddress& address) {
  for (u32 c = address.major; c < fabric.num_columns(); ++c) {
    if (cm.frames_in_column(c, address.block) > 0) {
      address.major = c;
      return true;
    }
  }
  return false;
}

}  // namespace

void ConfigMemory::write_burst(const FrameAddress& start,
                               std::span<const u32> words) {
  const u32 frame_size = fabric_->traits().frame_size;
  if (words.size() % frame_size != 0) {
    throw ContractError{"write_burst: payload not frame-aligned"};
  }
  if (start.row >= fabric_->rows()) {
    throw ContractError{"write_burst: row out of range"};
  }
  FrameAddress cursor = start;
  if (!normalize(*this, *fabric_, cursor)) {
    throw ContractError{"write_burst: no frames at or after start column"};
  }
  cursor.minor = std::min(cursor.minor,
                          frames_in_column(cursor.major, cursor.block) - 1);
  const u64 frame_count = words.size() / frame_size;
  for (u64 f = 0; f < frame_count; ++f) {
    // assign() into the mapped slot reuses the frame's existing buffer on
    // rewrite instead of allocating a fresh vector per frame.
    Frame& frame = frames_[key_of(cursor)];
    frame.assign(
        words.begin() + static_cast<std::ptrdiff_t>(f * frame_size),
        words.begin() + static_cast<std::ptrdiff_t>((f + 1) * frame_size));
    if (f + 1 < frame_count && !advance(cursor)) {
      throw ContractError{"write_burst: burst runs off the fabric row"};
    }
  }
}

std::vector<u32> ConfigMemory::read_burst(const FrameAddress& start,
                                          u64 frame_count) const {
  const u32 frame_size = fabric_->traits().frame_size;
  std::vector<u32> out;
  out.reserve(frame_count * frame_size);
  FrameAddress cursor = start;
  if (!normalize(*this, *fabric_, cursor)) {
    throw ContractError{"read_burst: no frames at or after start column"};
  }
  for (u64 f = 0; f < frame_count; ++f) {
    const auto it = frames_.find(key_of(cursor));
    if (it != frames_.end()) {
      out.insert(out.end(), it->second.begin(), it->second.end());
    } else {
      out.insert(out.end(), frame_size, 0u);
    }
    if (f + 1 < frame_count && !advance(cursor)) {
      throw ContractError{"read_burst: burst runs off the fabric row"};
    }
  }
  return out;
}

u64 ConfigMemory::apply_bitstream(std::span<const u32> words) {
  const u32 frame_size = fabric_->traits().frame_size;
  u64 committed = 0;

  std::size_t pos = 0;
  while (pos < words.size() && words[pos] != cfg::kSync) ++pos;
  if (pos == words.size()) throw ParseError{"apply_bitstream: no sync word"};
  ++pos;

  FrameAddress current_far{};
  bool far_valid = false;
  while (pos < words.size()) {
    const u32 word = words[pos++];
    if (word == cfg::kNoop || word == cfg::kDummy) continue;
    if (packet_type(word) == 1) {
      const ConfigReg reg = packet_reg(word);
      u32 count = type1_count(word);
      if (packet_op(word) == PacketOp::kNop) continue;
      if (reg == ConfigReg::kFdri && count == 0) {
        if (pos >= words.size() || packet_type(words[pos]) != 2) {
          throw ParseError{"apply_bitstream: FDRI without type-2 payload"};
        }
        count = type2_count(words[pos++]);
        if (!far_valid) throw ParseError{"apply_bitstream: FDRI before FAR"};
        if (count % frame_size != 0) {
          throw ParseError{"apply_bitstream: burst not frame-aligned"};
        }
        if (pos + count > words.size()) {
          throw ParseError{"apply_bitstream: truncated FDRI payload"};
        }
        const u64 frame_count = count / frame_size;
        if (frame_count > 1) {
          // The final frame of every FDRI burst is the configuration
          // pipeline flush frame (the "+1" of Eqs. 19/23); it is not
          // committed to the CM.
          write_burst(current_far,
                      std::span<const u32>{words.data() + pos,
                                           (frame_count - 1) * frame_size});
          committed += frame_count - 1;
        }
        pos += count;
        continue;
      }
      for (u32 i = 0; i < count && pos < words.size(); ++i) {
        const u32 value = words[pos++];
        if (reg == ConfigReg::kFar) {
          current_far = decode_far(value);
          far_valid = true;
        }
        if (reg == ConfigReg::kCmd &&
            static_cast<ConfigCmd>(value) == ConfigCmd::kDesync) {
          return committed;
        }
      }
      continue;
    }
    throw ParseError{"apply_bitstream: unexpected packet type"};
  }
  return committed;
}

bool ConfigMemory::row_column_touched(u32 column, u32 row,
                                      FrameBlock block) const {
  const u32 frame_count = frames_in_column(column, block);
  for (u32 minor = 0; minor < frame_count; ++minor) {
    if (frames_.count(Key{static_cast<u32>(block), row, column, minor}) > 0) {
      return true;
    }
  }
  return false;
}

std::optional<Frame> ConfigMemory::frame(const FrameAddress& address) const {
  const auto it = frames_.find(key_of(address));
  if (it == frames_.end()) return std::nullopt;
  return it->second;
}

}  // namespace prcost
