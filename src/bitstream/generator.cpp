#include "bitstream/generator.hpp"

#include <span>

#include "bitstream/crc.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace prcost {
namespace {

void append_cmd(std::vector<u32>& out, ConfigCmd cmd) {
  out.push_back(type1(PacketOp::kWrite, ConfigReg::kCmd, 1));
  out.push_back(static_cast<u32>(cmd));
}

void append_reg(std::vector<u32>& out, ConfigReg reg, u32 value) {
  out.push_back(type1(PacketOp::kWrite, reg, 1));
  out.push_back(value);
}

/// Append the header and return the CRC mirror of its post-RCRC register
/// writes, in stream order, so the parser's recomputation lands on the
/// same check value.
ConfigCrc begin_stream(std::vector<u32>& out, Family family, u32 idcode) {
  append_header_words(out, family, idcode);
  ConfigCrc crc;
  crc.update(ConfigReg::kIdcode, idcode);
  crc.update(ConfigReg::kCmd, static_cast<u32>(ConfigCmd::kWcfg));
  crc.update(ConfigReg::kMask, 0);
  if (family == Family::kVirtex6 || family == Family::kSeries7) {
    crc.update(ConfigReg::kCtl0, 0);
  }
  return crc;
}

/// The LFRM command is written before the CRC register, so it is part of
/// the checked prefix; then the trailer carries the final value.
void end_stream(std::vector<u32>& out, Family family, ConfigCrc& crc) {
  crc.update(ConfigReg::kCmd, static_cast<u32>(ConfigCmd::kLfrm));
  append_trailer_words(out, family, crc.value());
}

/// Fill one FDRI payload span in bulk. Consumes the payload RNG in exactly
/// the order the original per-word generator did (chance() then the value
/// draw under kSparse), so streams stay byte-identical.
void fill_payload(std::span<u32> dst, Rng& payload,
                  const GeneratorOptions& options) {
  switch (options.payload) {
    case PayloadKind::kRandom:
      for (u32& word : dst) word = static_cast<u32>(payload());
      return;
    case PayloadKind::kZeros:
      return;  // the resize() that produced `dst` already zero-filled it
    case PayloadKind::kSparse:
      for (u32& word : dst) {
        word = payload.chance(options.sparse_density)
                   ? static_cast<u32>(payload())
                   : 0u;
      }
      return;
  }
}

void emit_burst(std::vector<u32>& out, ConfigCrc& crc, Rng& payload,
                const GeneratorOptions& options, FrameBlock block, u32 row,
                u32 first_col, u64 word_count) {
  // FAR_FDRI = 5 words: NOOP, FAR write (2), FDRI type-1 header with
  // zero count, type-2 header carrying the real count.
  out.push_back(cfg::kNoop);
  const u32 far = encode_far(FrameAddress{block, row, first_col, 0});
  append_reg(out, ConfigReg::kFar, far);
  crc.update(ConfigReg::kFar, far);
  out.push_back(type1(PacketOp::kWrite, ConfigReg::kFdri, 0));
  out.push_back(type2(PacketOp::kWrite, narrow<u32>(word_count)));
  const std::size_t payload_at = out.size();
  out.resize(payload_at + static_cast<std::size_t>(word_count));
  const std::span<u32> dst{out.data() + payload_at,
                           static_cast<std::size_t>(word_count)};
  fill_payload(dst, payload, options);
  crc.update_span(ConfigReg::kFdri, dst);
}

u32 resolve_idcode(const GeneratorOptions& options, Family family) {
  return options.idcode != 0 ? options.idcode : default_idcode(family);
}

void count_generated(const std::vector<u32>& out) {
  PRCOST_COUNT("bitstream.generated");
  PRCOST_COUNT_N("bitstream.words_emitted", out.size());
}

}  // namespace

u32 default_idcode(Family family) {
  switch (family) {
    case Family::kVirtex4: return 0x0167C093;  // XC4VLX60-like
    case Family::kVirtex5: return 0x02AD6093;  // XC5VLX110T-like
    case Family::kVirtex6: return 0x04244093;  // XC6VLX75T-like
    case Family::kSeries7: return 0x03651093;  // XC7K325T-like
    case Family::kSpartan6: return 0x04004093;  // XC6SLX45-like
  }
  throw ContractError{"default_idcode: unknown family"};
}

void append_header_words(std::vector<u32>& out, Family family, u32 idcode) {
  if (family == Family::kSeries7) {
    out.push_back(cfg::kDummy);
    out.push_back(cfg::kDummy);
  }
  out.insert(out.end(), 4, cfg::kDummy);
  out.push_back(cfg::kBusWidthSync);
  out.push_back(cfg::kBusWidthDetect);
  out.insert(out.end(), 2, cfg::kDummy);
  out.push_back(cfg::kSync);
  out.push_back(cfg::kNoop);
  append_cmd(out, ConfigCmd::kRcrc);
  out.push_back(cfg::kNoop);
  const bool short_format =
      family == Family::kVirtex4 || family == Family::kSpartan6;
  if (!short_format) out.push_back(cfg::kNoop);
  append_reg(out, ConfigReg::kIdcode, idcode);
  append_cmd(out, ConfigCmd::kWcfg);
  out.push_back(cfg::kNoop);
  append_reg(out, ConfigReg::kMask, 0);
  if (family == Family::kVirtex6 || family == Family::kSeries7) {
    append_reg(out, ConfigReg::kCtl0, 0);
    out.push_back(cfg::kNoop);
  }
}

std::vector<u32> header_words(Family family, u32 idcode) {
  std::vector<u32> out;
  out.reserve(traits(family).iw);
  append_header_words(out, family, idcode);
  return out;
}

void append_trailer_words(std::vector<u32>& out, Family family,
                          u32 crc_value) {
  append_cmd(out, ConfigCmd::kLfrm);
  const bool short_format =
      family == Family::kVirtex4 || family == Family::kSpartan6;
  out.insert(out.end(), short_format ? 2 : 3, cfg::kNoop);
  out.push_back(type1(PacketOp::kWrite, ConfigReg::kCrc, 1));
  out.push_back(crc_value);
  append_cmd(out, ConfigCmd::kDesync);
  const u32 pad_noops =
      (family == Family::kVirtex6 || family == Family::kSeries7) ? 5 : 4;
  out.insert(out.end(), pad_noops, cfg::kNoop);
  out.push_back(cfg::kDummy);
  out.push_back(cfg::kDummy);
}

std::vector<u32> trailer_words(Family family, u32 crc_value) {
  std::vector<u32> out;
  out.reserve(traits(family).fw);
  append_trailer_words(out, family, crc_value);
  return out;
}

void generate_bitstream_into(std::vector<u32>& out, const PrrPlan& plan,
                             Family family, const GeneratorOptions& options) {
  PRCOST_TRACE_SPAN("bitstream_gen");
  const FamilyTraits& t = traits(family);
  const PrrOrganization& org = plan.organization;
  if (org.h == 0 || org.width() == 0) {
    throw ContractError{"generate_bitstream: empty PRR plan"};
  }
  const u32 idcode = resolve_idcode(options, family);

  // Eq. (18) predicts the exact word count, so the output is sized once up
  // front and never reallocates.
  const u64 total_words = estimate_bitstream(org, t).total_words;
  out.clear();
  out.reserve(static_cast<std::size_t>(total_words));

  ConfigCrc crc = begin_stream(out, family, idcode);
  if (out.size() != t.iw) {
    throw ContractError{"generate_bitstream: header/IW mismatch"};
  }

  // Configuration frame words per row: (NCF_CLB + NCF_DSP + NCF_BRAM + 1)
  // frames - Eq. (19)'s data component.
  const u64 cfg_frames = checked_mul(org.columns.clb_cols, t.cf_clb) +
                         checked_mul(org.columns.dsp_cols, t.cf_dsp) +
                         checked_mul(org.columns.bram_cols, t.cf_bram) + 1;
  const u64 cfg_words = checked_mul(cfg_frames, t.frame_size);
  const u64 bram_frames =
      org.columns.bram_cols > 0
          ? checked_mul(org.columns.bram_cols, t.df_bram) + 1
          : 0;
  const u64 bram_words = checked_mul(bram_frames, t.frame_size);

  Rng payload{options.payload_seed};
  for (u32 row = 0; row < org.h; ++row) {
    emit_burst(out, crc, payload, options, FrameBlock::kInterconnect,
               plan.first_row + row, plan.window.first_col, cfg_words);
    if (org.columns.bram_cols > 0) {
      emit_burst(out, crc, payload, options, FrameBlock::kBramContent,
                 plan.first_row + row, plan.window.first_col, bram_words);
    }
  }

  end_stream(out, family, crc);
  if (out.size() != total_words) {
    throw ContractError{"generate_bitstream: Eq. (18) size mismatch"};
  }
  count_generated(out);
}

std::vector<u32> generate_bitstream(const PrrPlan& plan, Family family,
                                    const GeneratorOptions& options) {
  std::vector<u32> out;
  generate_bitstream_into(out, plan, family, options);
  return out;
}

void generate_shaped_bitstream_into(std::vector<u32>& out,
                                    const ShapedPrr& shape, Family family,
                                    const GeneratorOptions& options) {
  PRCOST_TRACE_SPAN("bitstream_gen_shaped");
  const FamilyTraits& t = traits(family);
  if (shape.bands.empty()) {
    throw ContractError{"generate_shaped_bitstream: no bands"};
  }
  const u32 idcode = resolve_idcode(options, family);

  const u64 total_words = estimate_shaped_bitstream(shape, t).total_words;
  out.clear();
  out.reserve(static_cast<std::size_t>(total_words));

  ConfigCrc crc = begin_stream(out, family, idcode);
  Rng payload{options.payload_seed};
  for (const PrrBand& band : shape.bands) {
    const auto& columns = band.organization.columns;
    const u64 cfg_frames = checked_mul(columns.clb_cols, t.cf_clb) +
                           checked_mul(columns.dsp_cols, t.cf_dsp) +
                           checked_mul(columns.bram_cols, t.cf_bram) + 1;
    const u64 cfg_words = checked_mul(cfg_frames, t.frame_size);
    const u64 bram_frames =
        columns.bram_cols > 0 ? checked_mul(columns.bram_cols, t.df_bram) + 1
                              : 0;
    const u64 bram_words = checked_mul(bram_frames, t.frame_size);
    for (u32 row = 0; row < band.organization.h; ++row) {
      emit_burst(out, crc, payload, options, FrameBlock::kInterconnect,
                 band.first_row + row, band.window.first_col, cfg_words);
      if (columns.bram_cols > 0) {
        emit_burst(out, crc, payload, options, FrameBlock::kBramContent,
                   band.first_row + row, band.window.first_col, bram_words);
      }
    }
  }

  end_stream(out, family, crc);
  if (out.size() != total_words) {
    throw ContractError{"generate_shaped_bitstream: size model mismatch"};
  }
  count_generated(out);
}

std::vector<u32> generate_shaped_bitstream(const ShapedPrr& shape,
                                           Family family,
                                           const GeneratorOptions& options) {
  std::vector<u32> out;
  generate_shaped_bitstream_into(out, shape, family, options);
  return out;
}

void generate_full_bitstream_into(std::vector<u32>& out, const Fabric& fabric,
                                  const GeneratorOptions& options) {
  PRCOST_TRACE_SPAN("bitstream_gen_full");
  const Family family = fabric.family();
  const FamilyTraits& t = traits(family);
  const u32 idcode = resolve_idcode(options, family);

  // Every column of a row participates (IOB and CLK included), then one
  // flush frame - the same accounting as full_bitstream_bytes().
  const u64 cfg_frames =
      fabric.window_config_frames(ColumnWindow{0, fabric.num_columns()}) + 1;
  const u64 cfg_words = checked_mul(cfg_frames, t.frame_size);
  const u64 bram_cols = fabric.column_count(ColumnType::kBram);
  const u64 bram_frames =
      bram_cols > 0 ? checked_mul(bram_cols, t.df_bram) + 1 : 0;
  const u64 bram_words = checked_mul(bram_frames, t.frame_size);
  const u64 row_words = t.far_fdri + cfg_words +
                        (bram_cols > 0 ? t.far_fdri + bram_words : 0);
  const u64 total_words =
      t.iw + checked_mul(fabric.rows(), row_words) + t.fw;
  out.clear();
  out.reserve(static_cast<std::size_t>(total_words));

  ConfigCrc crc = begin_stream(out, family, idcode);
  Rng payload{options.payload_seed};
  for (u32 row = 0; row < fabric.rows(); ++row) {
    emit_burst(out, crc, payload, options, FrameBlock::kInterconnect, row, 0,
               cfg_words);
    if (bram_cols > 0) {
      emit_burst(out, crc, payload, options, FrameBlock::kBramContent, row, 0,
                 bram_words);
    }
  }

  end_stream(out, family, crc);
  if (out.size() != total_words) {
    throw ContractError{"generate_full_bitstream: size model mismatch"};
  }
  count_generated(out);
}

std::vector<u32> generate_full_bitstream(const Fabric& fabric,
                                         const GeneratorOptions& options) {
  std::vector<u32> out;
  generate_full_bitstream_into(out, fabric, options);
  return out;
}

std::vector<std::uint8_t> to_bytes(const std::vector<u32>& words,
                                   Family family) {
  const FamilyTraits& t = traits(family);
  std::vector<std::uint8_t> bytes;
  bytes.reserve(words.size() * t.bytes_word);
  for (const u32 word : words) {
    for (u32 b = 0; b < t.bytes_word; ++b) {
      const u32 shift = 8 * (t.bytes_word - 1 - b);
      bytes.push_back(static_cast<std::uint8_t>((word >> shift) & 0xFFu));
    }
  }
  return bytes;
}

}  // namespace prcost
