#include "bitstream/generator.hpp"

#include "bitstream/crc.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace prcost {
namespace {

void push_cmd(std::vector<u32>& out, ConfigCrc& crc, ConfigCmd cmd) {
  out.push_back(type1(PacketOp::kWrite, ConfigReg::kCmd, 1));
  out.push_back(static_cast<u32>(cmd));
  crc.update(ConfigReg::kCmd, static_cast<u32>(cmd));
}

void push_reg(std::vector<u32>& out, ConfigCrc& crc, ConfigReg reg,
              u32 value) {
  out.push_back(type1(PacketOp::kWrite, reg, 1));
  out.push_back(value);
  crc.update(reg, value);
}

}  // namespace

u32 default_idcode(Family family) {
  switch (family) {
    case Family::kVirtex4: return 0x0167C093;  // XC4VLX60-like
    case Family::kVirtex5: return 0x02AD6093;  // XC5VLX110T-like
    case Family::kVirtex6: return 0x04244093;  // XC6VLX75T-like
    case Family::kSeries7: return 0x03651093;  // XC7K325T-like
    case Family::kSpartan6: return 0x04004093;  // XC6SLX45-like
  }
  throw ContractError{"default_idcode: unknown family"};
}

std::vector<u32> header_words(Family family, u32 idcode) {
  std::vector<u32> out;
  ConfigCrc crc;  // header CRC contribution is discarded (RCRC resets it)
  if (family == Family::kSeries7) {
    out.push_back(cfg::kDummy);
    out.push_back(cfg::kDummy);
  }
  out.insert(out.end(), 4, cfg::kDummy);
  out.push_back(cfg::kBusWidthSync);
  out.push_back(cfg::kBusWidthDetect);
  out.insert(out.end(), 2, cfg::kDummy);
  out.push_back(cfg::kSync);
  out.push_back(cfg::kNoop);
  push_cmd(out, crc, ConfigCmd::kRcrc);
  out.push_back(cfg::kNoop);
  const bool short_format =
      family == Family::kVirtex4 || family == Family::kSpartan6;
  if (!short_format) out.push_back(cfg::kNoop);
  push_reg(out, crc, ConfigReg::kIdcode, idcode);
  push_cmd(out, crc, ConfigCmd::kWcfg);
  out.push_back(cfg::kNoop);
  push_reg(out, crc, ConfigReg::kMask, 0);
  if (family == Family::kVirtex6 || family == Family::kSeries7) {
    push_reg(out, crc, ConfigReg::kCtl0, 0);
    out.push_back(cfg::kNoop);
  }
  return out;
}

std::vector<u32> trailer_words(Family family, u32 crc_value) {
  std::vector<u32> out;
  ConfigCrc crc;  // local; trailer writes no longer affect the check value
  push_cmd(out, crc, ConfigCmd::kLfrm);
  const bool short_format =
      family == Family::kVirtex4 || family == Family::kSpartan6;
  out.insert(out.end(), short_format ? 2 : 3, cfg::kNoop);
  out.push_back(type1(PacketOp::kWrite, ConfigReg::kCrc, 1));
  out.push_back(crc_value);
  push_cmd(out, crc, ConfigCmd::kDesync);
  const u32 pad_noops =
      (family == Family::kVirtex6 || family == Family::kSeries7) ? 5 : 4;
  out.insert(out.end(), pad_noops, cfg::kNoop);
  out.push_back(cfg::kDummy);
  out.push_back(cfg::kDummy);
  return out;
}

std::vector<u32> generate_bitstream(const PrrPlan& plan, Family family,
                                    const GeneratorOptions& options) {
  PRCOST_TRACE_SPAN("bitstream_gen");
  const FamilyTraits& t = traits(family);
  const PrrOrganization& org = plan.organization;
  if (org.h == 0 || org.width() == 0) {
    throw ContractError{"generate_bitstream: empty PRR plan"};
  }
  const u32 idcode =
      options.idcode != 0 ? options.idcode : default_idcode(family);

  std::vector<u32> out = header_words(family, idcode);
  if (out.size() != t.iw) {
    throw ContractError{"generate_bitstream: header/IW mismatch"};
  }

  // Mirror the register writes the header just emitted (everything after
  // the RCRC reset), in stream order, so the parser's recomputation lands
  // on the same check value.
  ConfigCrc crc;
  crc.update(ConfigReg::kIdcode, idcode);
  crc.update(ConfigReg::kCmd, static_cast<u32>(ConfigCmd::kWcfg));
  crc.update(ConfigReg::kMask, 0);
  if (family == Family::kVirtex6 || family == Family::kSeries7) {
    crc.update(ConfigReg::kCtl0, 0);
  }

  Rng payload{options.payload_seed};
  const auto next_payload_word = [&]() -> u32 {
    switch (options.payload) {
      case PayloadKind::kRandom: return static_cast<u32>(payload());
      case PayloadKind::kZeros: return 0;
      case PayloadKind::kSparse:
        return payload.chance(options.sparse_density)
                   ? static_cast<u32>(payload())
                   : 0u;
    }
    return 0;
  };

  // Configuration frame words per row: (NCF_CLB + NCF_DSP + NCF_BRAM + 1)
  // frames - Eq. (19)'s data component.
  const u64 cfg_frames = checked_mul(org.columns.clb_cols, t.cf_clb) +
                         checked_mul(org.columns.dsp_cols, t.cf_dsp) +
                         checked_mul(org.columns.bram_cols, t.cf_bram) + 1;
  const u64 cfg_words = checked_mul(cfg_frames, t.frame_size);
  const u64 bram_frames =
      org.columns.bram_cols > 0
          ? checked_mul(org.columns.bram_cols, t.df_bram) + 1
          : 0;
  const u64 bram_words = checked_mul(bram_frames, t.frame_size);

  const auto emit_burst = [&](FrameBlock block, u32 row, u64 word_count) {
    // FAR_FDRI = 5 words: NOOP, FAR write (2), FDRI type-1 header with
    // zero count, type-2 header carrying the real count.
    out.push_back(cfg::kNoop);
    const FrameAddress far{block, row, plan.window.first_col, 0};
    push_reg(out, crc, ConfigReg::kFar, encode_far(far));
    out.push_back(type1(PacketOp::kWrite, ConfigReg::kFdri, 0));
    out.push_back(type2(PacketOp::kWrite, narrow<u32>(word_count)));
    for (u64 w = 0; w < word_count; ++w) {
      const u32 word = next_payload_word();
      out.push_back(word);
      crc.update(ConfigReg::kFdri, word);
    }
  };

  for (u32 row = 0; row < org.h; ++row) {
    emit_burst(FrameBlock::kInterconnect, plan.first_row + row, cfg_words);
    if (org.columns.bram_cols > 0) {
      emit_burst(FrameBlock::kBramContent, plan.first_row + row, bram_words);
    }
  }

  // The LFRM command is written before the CRC register, so it is part of
  // the checked prefix.
  crc.update(ConfigReg::kCmd, static_cast<u32>(ConfigCmd::kLfrm));
  const std::vector<u32> trailer = trailer_words(family, crc.value());
  if (trailer.size() != t.fw) {
    throw ContractError{"generate_bitstream: trailer/FW mismatch"};
  }
  out.insert(out.end(), trailer.begin(), trailer.end());
  PRCOST_COUNT("bitstream.generated");
  PRCOST_COUNT_N("bitstream.words_emitted", out.size());
  return out;
}

std::vector<u32> generate_shaped_bitstream(const ShapedPrr& shape,
                                           Family family,
                                           const GeneratorOptions& options) {
  PRCOST_TRACE_SPAN("bitstream_gen_shaped");
  const FamilyTraits& t = traits(family);
  if (shape.bands.empty()) {
    throw ContractError{"generate_shaped_bitstream: no bands"};
  }
  const u32 idcode =
      options.idcode != 0 ? options.idcode : default_idcode(family);
  std::vector<u32> out = header_words(family, idcode);

  ConfigCrc crc;
  crc.update(ConfigReg::kIdcode, idcode);
  crc.update(ConfigReg::kCmd, static_cast<u32>(ConfigCmd::kWcfg));
  crc.update(ConfigReg::kMask, 0);
  if (family == Family::kVirtex6 || family == Family::kSeries7) {
    crc.update(ConfigReg::kCtl0, 0);
  }

  Rng payload{options.payload_seed};
  const auto next_payload_word = [&]() -> u32 {
    switch (options.payload) {
      case PayloadKind::kRandom: return static_cast<u32>(payload());
      case PayloadKind::kZeros: return 0;
      case PayloadKind::kSparse:
        return payload.chance(options.sparse_density)
                   ? static_cast<u32>(payload())
                   : 0u;
    }
    return 0;
  };

  for (const PrrBand& band : shape.bands) {
    const auto& columns = band.organization.columns;
    const u64 cfg_frames = checked_mul(columns.clb_cols, t.cf_clb) +
                           checked_mul(columns.dsp_cols, t.cf_dsp) +
                           checked_mul(columns.bram_cols, t.cf_bram) + 1;
    const u64 bram_frames =
        columns.bram_cols > 0 ? checked_mul(columns.bram_cols, t.df_bram) + 1
                              : 0;
    const auto emit_burst = [&](FrameBlock block, u32 row, u64 frame_count) {
      out.push_back(cfg::kNoop);
      const FrameAddress far{block, row, band.window.first_col, 0};
      push_reg(out, crc, ConfigReg::kFar, encode_far(far));
      out.push_back(type1(PacketOp::kWrite, ConfigReg::kFdri, 0));
      const u64 word_count = checked_mul(frame_count, t.frame_size);
      out.push_back(type2(PacketOp::kWrite, narrow<u32>(word_count)));
      for (u64 w = 0; w < word_count; ++w) {
        const u32 word = next_payload_word();
        out.push_back(word);
        crc.update(ConfigReg::kFdri, word);
      }
    };
    for (u32 row = 0; row < band.organization.h; ++row) {
      emit_burst(FrameBlock::kInterconnect, band.first_row + row, cfg_frames);
      if (columns.bram_cols > 0) {
        emit_burst(FrameBlock::kBramContent, band.first_row + row,
                   bram_frames);
      }
    }
  }

  crc.update(ConfigReg::kCmd, static_cast<u32>(ConfigCmd::kLfrm));
  const std::vector<u32> trailer = trailer_words(family, crc.value());
  out.insert(out.end(), trailer.begin(), trailer.end());
  PRCOST_COUNT("bitstream.generated");
  PRCOST_COUNT_N("bitstream.words_emitted", out.size());
  return out;
}

std::vector<u32> generate_full_bitstream(const Fabric& fabric,
                                         const GeneratorOptions& options) {
  PRCOST_TRACE_SPAN("bitstream_gen_full");
  const Family family = fabric.family();
  const FamilyTraits& t = traits(family);
  const u32 idcode =
      options.idcode != 0 ? options.idcode : default_idcode(family);
  std::vector<u32> out = header_words(family, idcode);

  ConfigCrc crc;
  crc.update(ConfigReg::kIdcode, idcode);
  crc.update(ConfigReg::kCmd, static_cast<u32>(ConfigCmd::kWcfg));
  crc.update(ConfigReg::kMask, 0);
  if (family == Family::kVirtex6 || family == Family::kSeries7) {
    crc.update(ConfigReg::kCtl0, 0);
  }

  Rng payload{options.payload_seed};
  const auto next_payload_word = [&]() -> u32 {
    switch (options.payload) {
      case PayloadKind::kRandom: return static_cast<u32>(payload());
      case PayloadKind::kZeros: return 0;
      case PayloadKind::kSparse:
        return payload.chance(options.sparse_density)
                   ? static_cast<u32>(payload())
                   : 0u;
    }
    return 0;
  };

  // Every column of a row participates (IOB and CLK included), then one
  // flush frame - the same accounting as full_bitstream_bytes().
  const u64 cfg_frames =
      fabric.window_config_frames(ColumnWindow{0, fabric.num_columns()}) + 1;
  const u64 bram_cols = fabric.column_count(ColumnType::kBram);
  const u64 bram_frames =
      bram_cols > 0 ? checked_mul(bram_cols, t.df_bram) + 1 : 0;

  const auto emit_burst = [&](FrameBlock block, u32 row, u64 frame_count) {
    out.push_back(cfg::kNoop);
    const FrameAddress far{block, row, 0, 0};
    push_reg(out, crc, ConfigReg::kFar, encode_far(far));
    out.push_back(type1(PacketOp::kWrite, ConfigReg::kFdri, 0));
    const u64 word_count = checked_mul(frame_count, t.frame_size);
    out.push_back(type2(PacketOp::kWrite, narrow<u32>(word_count)));
    for (u64 w = 0; w < word_count; ++w) {
      const u32 word = next_payload_word();
      out.push_back(word);
      crc.update(ConfigReg::kFdri, word);
    }
  };
  for (u32 row = 0; row < fabric.rows(); ++row) {
    emit_burst(FrameBlock::kInterconnect, row, cfg_frames);
    if (bram_cols > 0) emit_burst(FrameBlock::kBramContent, row, bram_frames);
  }

  crc.update(ConfigReg::kCmd, static_cast<u32>(ConfigCmd::kLfrm));
  const std::vector<u32> trailer = trailer_words(family, crc.value());
  out.insert(out.end(), trailer.begin(), trailer.end());
  PRCOST_COUNT("bitstream.generated");
  PRCOST_COUNT_N("bitstream.words_emitted", out.size());
  return out;
}

std::vector<std::uint8_t> to_bytes(const std::vector<u32>& words,
                                   Family family) {
  const FamilyTraits& t = traits(family);
  std::vector<std::uint8_t> bytes;
  bytes.reserve(words.size() * t.bytes_word);
  for (const u32 word : words) {
    for (u32 b = 0; b < t.bytes_word; ++b) {
      const u32 shift = 8 * (t.bytes_word - 1 - b);
      bytes.push_back(static_cast<std::uint8_t>((word >> shift) & 0xFFu));
    }
  }
  return bytes;
}

}  // namespace prcost
