#include "bitstream/words.hpp"

namespace prcost {

std::string_view config_reg_name(ConfigReg reg) {
  switch (reg) {
    case ConfigReg::kCrc: return "CRC";
    case ConfigReg::kFar: return "FAR";
    case ConfigReg::kFdri: return "FDRI";
    case ConfigReg::kFdro: return "FDRO";
    case ConfigReg::kCmd: return "CMD";
    case ConfigReg::kCtl0: return "CTL0";
    case ConfigReg::kMask: return "MASK";
    case ConfigReg::kStat: return "STAT";
    case ConfigReg::kLout: return "LOUT";
    case ConfigReg::kCout: return "COUT";
    case ConfigReg::kMfwr: return "MFWR";
    case ConfigReg::kCbc: return "CBC";
    case ConfigReg::kIdcode: return "IDCODE";
    case ConfigReg::kAxss: return "AXSS";
  }
  return "?";
}

std::string_view config_cmd_name(ConfigCmd cmd) {
  switch (cmd) {
    case ConfigCmd::kNull: return "NULL";
    case ConfigCmd::kWcfg: return "WCFG";
    case ConfigCmd::kMfw: return "MFW";
    case ConfigCmd::kLfrm: return "LFRM";
    case ConfigCmd::kRcfg: return "RCFG";
    case ConfigCmd::kStart: return "START";
    case ConfigCmd::kRcap: return "RCAP";
    case ConfigCmd::kRcrc: return "RCRC";
    case ConfigCmd::kAghigh: return "AGHIGH";
    case ConfigCmd::kSwitch: return "SWITCH";
    case ConfigCmd::kGrestore: return "GRESTORE";
    case ConfigCmd::kShutdown: return "SHUTDOWN";
    case ConfigCmd::kGcapture: return "GCAPTURE";
    case ConfigCmd::kDesync: return "DESYNC";
  }
  return "?";
}

}  // namespace prcost
