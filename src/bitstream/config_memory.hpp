// Device configuration memory (CM) simulator.
//
// Section III.A: "A frame is the minimum unit of information used to
// configure/read the FFs' stored values and BRAMs in the device's
// configuration memory (CM)." This module models the CM as the addressable
// frame store behind the ICAP: applying a partial bitstream writes frames
// at increasing frame addresses (minor within column, then next column of
// the same block type), and readback returns them. It closes the loop for
// two things the cost models feed into:
//
//  * verification that the generator's FAR/FDRI bursts land exactly on the
//    frames of the PRR window and nothing else (PRR isolation), and
//  * context save/restore + hardware task relocation (the authors' HTR
//    prior work [5][6]) in src/htr, which copies live frames between
//    compatible PRRs.
#pragma once

#include <map>
#include <optional>
#include <span>
#include <vector>

#include "bitstream/frame_address.hpp"
#include "device/fabric.hpp"

namespace prcost {

/// One frame's payload.
using Frame = std::vector<u32>;

/// Addressable frame store for one device.
class ConfigMemory {
 public:
  explicit ConfigMemory(const Fabric& fabric);

  const Fabric& fabric() const { return *fabric_; }

  /// Number of configuration frames a column contributes per row for the
  /// given block type (0 when the column has no frames of that type, e.g.
  /// BRAM-content frames of a CLB column).
  u32 frames_in_column(u32 column, FrameBlock block) const;

  /// Write `frames` sequentially starting at `start`: minor advances
  /// within the column, then the address moves to the next column to the
  /// right that has frames of the same block type (same row). Throws
  /// ContractError if the burst runs off the row.
  void write_burst(const FrameAddress& start, std::span<const u32> words);

  /// Read `frame_count` frames starting at `start` with the same
  /// traversal; unwritten frames read as zeroes.
  std::vector<u32> read_burst(const FrameAddress& start,
                              u64 frame_count) const;

  /// Apply a full partial bitstream (as produced by generate_bitstream):
  /// every FDRI burst is written at its FAR. Returns the number of frames
  /// written. Throws ParseError/ContractError on malformed input.
  u64 apply_bitstream(std::span<const u32> words);

  /// True if any frame of `column`/`row` has been written.
  bool row_column_touched(u32 column, u32 row, FrameBlock block) const;

  /// Total distinct frames currently stored.
  u64 frames_written() const { return frames_.size(); }

  /// Direct access to one frame (nullopt if never written).
  std::optional<Frame> frame(const FrameAddress& address) const;

  /// Zero out every frame (full-device reset).
  void clear() { frames_.clear(); }

 private:
  /// Canonical key for one frame.
  struct Key {
    u32 block;
    u32 row;
    u32 major;
    u32 minor;
    auto operator<=>(const Key&) const = default;
  };
  static Key key_of(const FrameAddress& address);

  /// Advance `address` by one frame using the column-major traversal.
  /// Returns false when the row is exhausted.
  bool advance(FrameAddress& address) const;

  const Fabric* fabric_;
  std::map<Key, Frame> frames_;
};

}  // namespace prcost
