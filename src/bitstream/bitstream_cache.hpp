// Process-wide memoization of generated bitstreams.
//
// Batch cross-checks, explore verification, and reconfiguration studies
// regenerate the identical partial bitstream many times: every request
// that plans the same PRM on the same device reaches generate_bitstream
// with the same plan geometry and options. Generation is a pure function
// of (family traits, PRR plan geometry, GeneratorOptions) - the family
// enum interns the fabric's frame constants, and the plan's organization,
// column window, and first row pin the burst layout - so the words can be
// memoized process-wide, modeled on src/cost/plan_cache:
//
//   - sharded (mutex per shard) so parallel_for generation sweeps do not
//     serialize on one lock;
//   - bounded with an overflow-valve eviction (entries are whole
//     bitstreams, so the default cap is small);
//   - exact: a hit is byte-identical to a fresh generation, so results
//     with the cache disabled match results with it enabled.
//
// Hit/miss/eviction counts are exported through the obs metrics registry
// ("bitstream_cache.hits" / ".misses" / ".evictions") and through stats()
// for callers that keep metrics off. The `prcost` CLI exposes
// --no-bitstream-cache as the escape hatch.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bitstream/generator.hpp"

namespace prcost {

/// Global switch, default on. Checked by generate_bitstream_cached.
bool bitstream_cache_enabled() noexcept;
void set_bitstream_cache_enabled(bool on) noexcept;

/// Point-in-time cache counters (process lifetime, not reset by clear()).
struct BitstreamCacheStats {
  u64 hits = 0;
  u64 misses = 0;
  u64 evictions = 0;
  u64 entries = 0;         ///< currently resident bitstreams
  u64 resident_words = 0;  ///< total words held across all entries
};

/// Memoized generate_bitstream. The returned vector is shared and
/// immutable; on a hit no generation (and no copy) happens. With the
/// cache disabled this is a plain compute returning a fresh vector.
std::shared_ptr<const std::vector<u32>> generate_bitstream_cached(
    const PrrPlan& plan, Family family, const GeneratorOptions& options = {});

/// Persist every resident bitstream as a versioned, checksummed snapshot
/// (util/snapshot.hpp). Keys are (family, geometry, options) - all
/// process-independent - so no translation table is needed. Returns the
/// entries written. Throws IoError when the file cannot be written.
std::size_t bitstream_cache_save(const std::string& path);

/// Restore entries written by bitstream_cache_save. Throws IoError when
/// the file cannot be opened and ParseError on any corruption; in both
/// cases the cache is left unchanged, so callers can fall back to a
/// clean cold start. Returns the entries restored.
std::size_t bitstream_cache_load(const std::string& path);

/// Drop every cached bitstream (stats survive). Intended for tests and
/// for benchmarks that need cold-cache timings.
void bitstream_cache_clear();

BitstreamCacheStats bitstream_cache_stats();

/// Cap the total resident entries (approximate; enforced per shard).
/// Entries are whole bitstreams, so the default is deliberately small:
/// 128.
void set_bitstream_cache_capacity(std::size_t max_entries);

}  // namespace prcost
