// Bitstream compression analysis.
//
// Duhem et al.'s FaRM controller [2] exploits bitstream compressibility to
// cut the fetch phase of reconfiguration. Rather than assuming a ratio,
// this module measures it on concrete bitstreams two ways:
//
//  * word-level run-length coding (what FaRM's hardware decompressor
//    implements), with a lossless round-trip;
//  * frame-redundancy analysis for MFWR-style compression: the Xilinx
//    configuration logic has a Multiple Frame Write command (MFWR) that
//    writes one FDRI frame to many addresses, so a bitstream whose frames
//    repeat (sparse logic, blanking frames) shrinks to its unique frames
//    plus one short MFWR packet per duplicate.
#pragma once

#include <span>
#include <vector>

#include "device/family_traits.hpp"
#include "util/ints.hpp"

namespace prcost {

/// RLE output: (count, word) pairs. Ratio < 1 means the stream shrank.
struct CompressionStats {
  u64 original_words = 0;
  u64 compressed_words = 0;
  double ratio() const {
    return original_words == 0
               ? 1.0
               : static_cast<double>(compressed_words) /
                     static_cast<double>(original_words);
  }
};

/// Word-level run-length encode: pairs of (run length, word).
std::vector<u32> rle_compress(std::span<const u32> words);

/// Inverse of rle_compress; throws ParseError on odd-length input.
std::vector<u32> rle_decompress(std::span<const u32> pairs);

/// Compress and report the ratio without keeping the output.
CompressionStats measure_rle(std::span<const u32> words);

/// Frame-level redundancy of a full bitstream word stream.
struct FrameRedundancy {
  u64 total_frames = 0;
  u64 unique_frames = 0;
  u64 zero_frames = 0;
  /// Achievable size fraction under MFWR compression: unique frames at
  /// full size + ~3 command words per duplicated frame write.
  double mfwr_ratio(u32 frame_size) const;
};

/// Split `words` into frame_size-word frames and count duplicates. The
/// caller passes the payload region (e.g. every FDRI burst); the helper
/// overload below extracts bursts from a full bitstream.
FrameRedundancy analyze_frames(std::span<const u32> payload, u32 frame_size);

/// Analyze every FDRI burst of a complete partial bitstream.
FrameRedundancy analyze_bitstream_frames(std::span<const u32> bitstream,
                                         Family family);

}  // namespace prcost
