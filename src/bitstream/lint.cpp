#include "bitstream/lint.hpp"

#include "bitstream/words.hpp"

namespace prcost {

std::vector<LintIssue> lint_bitstream(std::span<const u32> words,
                                      Family family) {
  const FamilyTraits& t = traits(family);
  std::vector<LintIssue> issues;
  const auto report = [&](const char* rule, u64 offset,
                          const std::string& message) {
    issues.push_back(LintIssue{rule, offset, message});
  };

  bool synced = false;
  bool rcrc_seen = false;
  bool wcfg_seen = false;
  bool far_since_fdri = false;
  bool crc_written = false;
  bool desynced = false;
  u64 fdri_after_crc = 0;
  u64 sync_count = 0;

  std::size_t pos = 0;
  while (pos < words.size()) {
    const u64 offset = pos;
    const u32 word = words[pos++];

    if (!synced) {
      if (word == cfg::kSync) {
        synced = true;
        ++sync_count;
        continue;
      }
      if (word != cfg::kDummy && word != cfg::kBusWidthSync &&
          word != cfg::kBusWidthDetect) {
        report("R1", offset, "non-preamble word before SYNC");
      }
      continue;
    }
    if (word == cfg::kSync) {
      ++sync_count;
      report("R2", offset, "duplicate SYNC word");
      continue;
    }
    if (word == cfg::kNoop || word == cfg::kDummy) {
      continue;
    }
    if (desynced) {
      report("R8", offset, "packet after DESYNC");
      continue;
    }
    if (packet_type(word) != 1) {
      report("R8", offset, "stray non-type-1 packet at top level");
      continue;
    }
    const ConfigReg reg = packet_reg(word);
    const PacketOp op = packet_op(word);
    u32 count = type1_count(word);
    if (op == PacketOp::kNop) continue;

    if (reg == ConfigReg::kFdri) {
      if (count == 0) {
        if (pos >= words.size() || packet_type(words[pos]) != 2) {
          report("R6", offset, "FDRI type-1 with no type-2 payload");
          continue;
        }
        count = type2_count(words[pos++]);
      }
      if (!wcfg_seen) report("R4", offset, "FDRI before WCFG");
      if (!far_since_fdri) report("R5", offset, "FDRI without preceding FAR");
      if (count == 0 || count % t.frame_size != 0) {
        report("R6", offset, "FDRI payload not frame-aligned");
      }
      if (crc_written) ++fdri_after_crc;
      far_since_fdri = false;
      pos += count;  // skip frame data
      continue;
    }

    for (u32 i = 0; i < count && pos < words.size(); ++i) {
      const u32 value = words[pos++];
      switch (reg) {
        case ConfigReg::kCmd: {
          const auto cmd = static_cast<ConfigCmd>(value);
          if (cmd == ConfigCmd::kRcrc) rcrc_seen = true;
          if (cmd == ConfigCmd::kWcfg) wcfg_seen = true;
          if (cmd == ConfigCmd::kDesync) desynced = true;
          break;
        }
        case ConfigReg::kFar:
          far_since_fdri = true;
          break;
        case ConfigReg::kCrc:
          if (crc_written) {
            report("R7", offset, "CRC register written more than once");
          }
          if (!rcrc_seen) report("R3", offset, "CRC check without RCRC");
          crc_written = true;
          break;
        case ConfigReg::kIdcode:
          if (!rcrc_seen) {
            report("R3", offset, "register write before RCRC");
          }
          break;
        default:
          break;
      }
    }
  }

  if (sync_count == 0) report("R2", 0, "no SYNC word");
  if (!crc_written) report("R7", words.size(), "CRC register never written");
  if (fdri_after_crc > 0) {
    report("R7", words.size(), "FDRI data after the CRC check");
  }
  if (!desynced) report("R8", words.size(), "stream never desyncs");
  return issues;
}

}  // namespace prcost
