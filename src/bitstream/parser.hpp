// Partial bitstream parser / disassembler.
//
// Walks a word stream produced by generate_bitstream (or any stream with
// the same packet grammar), recovers the Fig. 2 structure - initial words,
// per-row FDRI bursts with their frame addresses, final words - and
// re-checks the configuration CRC. The Fig. 2 bench uses this to print the
// structure of each PRM's bitstream; round-trip tests use it to prove the
// generator emits what the model predicts section by section.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "bitstream/frame_address.hpp"
#include "bitstream/words.hpp"
#include "device/family_traits.hpp"

namespace prcost {

/// One FDRI write burst.
struct FdriBurst {
  FrameAddress far;     ///< frame address the burst starts at
  u64 words = 0;        ///< payload configuration words
  u64 frames = 0;       ///< words / frame_size
  u64 offset_words = 0; ///< position of the burst payload in the stream
};

/// Parsed bitstream structure.
struct BitstreamLayout {
  u64 total_words = 0;
  u64 initial_words = 0;  ///< words before the first per-row NOOP/FAR group
  u64 final_words = 0;    ///< words from the LFRM command onward
  std::vector<FdriBurst> bursts;
  u32 idcode = 0;
  u32 crc_written = 0;    ///< CRC value carried in the trailer
  u32 crc_computed = 0;   ///< CRC recomputed over the register writes
  bool crc_ok = false;
  bool desync_seen = false;

  /// Bursts writing BRAM content frames.
  u64 bram_burst_count() const;
  /// Bursts writing interconnect/configuration frames.
  u64 config_burst_count() const;
};

/// Parse `words` for `family`. Throws ParseError on grammar violations
/// (missing sync, truncated packet, unknown packet type).
BitstreamLayout parse_bitstream(std::span<const u32> words, Family family);

/// Human-readable disassembly (one line per packet; frame payloads are
/// summarized, not dumped).
std::string disassemble(std::span<const u32> words, Family family);

}  // namespace prcost
