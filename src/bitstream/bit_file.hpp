// Xilinx-style .bit container format.
//
// Section III.C: "From this bitstream, we remove the initial bytes,
// including the name of the native circuit description file (*.ncd) used
// to generate the partial bitstream and the bitstream creation date,
// resulting in a 32-bit word aligned bitstream." This module implements
// that container so the removal step is a real operation: a .bit file is a
// small tag-length-value header (design name, part, date, time) followed
// by the raw configuration words. Sizes reported by the paper's Table VII
// refer to the aligned payload, not the container.
//
// Layout (matches the de-facto public format):
//   field 0x0F 0x F0...: 13-byte magic + 0x0001
//   'a' <len> <design name '\0'>      (the *.ncd name)
//   'b' <len> <part name '\0'>
//   'c' <len> <date '\0'>
//   'd' <len> <time '\0'>
//   'e' <u32 payload byte count> <payload...>
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "device/family_traits.hpp"
#include "util/ints.hpp"

namespace prcost {

/// Parsed .bit container.
struct BitFile {
  std::string design_name;  ///< e.g. "fir_prr0.ncd;UserID=0xFFFFFFFF"
  std::string part_name;    ///< e.g. "5vlx110tff1136"
  std::string date;         ///< "2015/05/25"
  std::string time;         ///< "10:31:07"
  std::vector<std::uint8_t> payload;  ///< word-aligned configuration bytes
};

/// Serialize a container around configuration `payload` bytes.
std::vector<std::uint8_t> write_bit_file(const BitFile& file);

/// Parse a container; throws ParseError on malformed input.
BitFile read_bit_file(std::span<const std::uint8_t> bytes);

/// The paper's preprocessing step: strip the header, return the aligned
/// configuration payload (what Eq. 18 predicts the size of).
std::vector<std::uint8_t> strip_bit_header(std::span<const std::uint8_t> bytes);

/// Convenience: wrap a generated word stream into a .bit container with
/// metadata derived from the PRM/device names.
std::vector<std::uint8_t> package_bit_file(std::span<const u32> words,
                                           Family family,
                                           const std::string& design_name,
                                           const std::string& part_name);

}  // namespace prcost
