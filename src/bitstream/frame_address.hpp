// Frame address register (FAR) encoding.
//
// The FAR names the first configuration frame of a burst in terms of block
// type (logic interconnect/configuration vs. BRAM content), fabric row,
// major column and minor frame index. Exact field widths differ per
// family; this layout follows the Virtex-5 arrangement (UG191 table 6-9,
// with the top/bottom bit folded into the row index for our single-ordinate
// row model).
#pragma once

#include <string>

#include "util/ints.hpp"

namespace prcost {

/// Frame block type.
enum class FrameBlock : u32 {
  kInterconnect = 0,  ///< CLB/DSP/BRAM-interconnect configuration frames
  kBramContent = 1,   ///< BRAM data initialization frames
};

/// Decoded frame address.
struct FrameAddress {
  FrameBlock block = FrameBlock::kInterconnect;
  u32 row = 0;    ///< fabric row (0-based, bottom-up)
  u32 major = 0;  ///< column index within the row
  u32 minor = 0;  ///< frame index within the column

  friend bool operator==(const FrameAddress&, const FrameAddress&) = default;
};

/// Pack to the 32-bit FAR word: [23:21] block, [20:16] row (5 bits),
/// [15:8] major (8 bits), [7:0] minor (8 bits).
u32 encode_far(const FrameAddress& far);

/// Unpack; inverse of encode_far.
FrameAddress decode_far(u32 word);

/// "BLOCK row/major/minor" string for the disassembler.
std::string far_to_string(const FrameAddress& far);

}  // namespace prcost
