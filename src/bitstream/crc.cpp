#include "bitstream/crc.hpp"

namespace prcost {
namespace {

constexpr u32 kPolynomial = 0x1EDC6F41;  // CRC-32C (Castagnoli)
constexpr u32 kReflected = 0x82F63B78;   // kPolynomial bit-reversed

constexpr u32 bit_reverse(u32 v) {
  v = ((v >> 1) & 0x55555555u) | ((v & 0x55555555u) << 1);
  v = ((v >> 2) & 0x33333333u) | ((v & 0x33333333u) << 2);
  v = ((v >> 4) & 0x0F0F0F0Fu) | ((v & 0x0F0F0F0Fu) << 4);
  v = ((v >> 8) & 0x00FF00FFu) | ((v & 0x00FF00FFu) << 8);
  return (v >> 16) | (v << 16);
}

static_assert(bit_reverse(kPolynomial) == kReflected);

/// Advance a reflected-domain accumulator by `n` zero input bits.
constexpr u32 zero_steps(u32 s, u32 n) {
  for (u32 i = 0; i < n; ++i) s = (s >> 1) ^ ((s & 1u) ? kReflected : 0u);
  return s;
}

// Keeping the accumulator bit-reversed turns the hardware's LSB-first feed
// (shift_in_bit in BitSerialConfigCrc below) into the classic reflected CRC
// recurrence, so one 37-bit register write (32 data bits, then the 5-bit
// register address) becomes
//
//   x  = state ^ data
//   state = word[0][x & 0xFF] ^ word[1][(x >> 8) & 0xFF]
//         ^ word[2][(x >> 16) & 0xFF] ^ word[3][x >> 24] ^ addr[reg]
//
// word[b] is the slice-by-4 table for byte b of the word with the five
// trailing zero shifts of the address step pre-folded in (the fold is
// legal because advancing by zero bits is linear over GF(2)); addr[] is
// the address bits' own 5-bit contribution, separable for the same
// linearity reason.
struct Tables {
  u32 word[4][256];
  u32 addr[32];
};

constexpr Tables make_tables() {
  // Base reflected byte table, then the three composed slice tables.
  u32 sliced[4][256]{};
  for (u32 i = 0; i < 256; ++i) sliced[0][i] = zero_steps(i, 8);
  for (u32 k = 1; k < 4; ++k) {
    for (u32 i = 0; i < 256; ++i) {
      const u32 prev = sliced[k - 1][i];
      sliced[k][i] = (prev >> 8) ^ sliced[0][prev & 0xFFu];
    }
  }
  Tables t{};
  // Byte 0 of the word is consumed first, so it is shifted over by the
  // most later input: it takes the most-composed table.
  for (u32 b = 0; b < 4; ++b) {
    for (u32 i = 0; i < 256; ++i) {
      t.word[b][i] = zero_steps(sliced[3 - b][i], 5);
    }
  }
  for (u32 i = 0; i < 32; ++i) t.addr[i] = zero_steps(i, 5);
  return t;
}

constexpr Tables kTables = make_tables();

constexpr u32 write_step(u32 state, u32 addr_contribution, u32 data) {
  const u32 x = state ^ data;
  return kTables.word[0][x & 0xFFu] ^ kTables.word[1][(x >> 8) & 0xFFu] ^
         kTables.word[2][(x >> 16) & 0xFFu] ^ kTables.word[3][x >> 24] ^
         addr_contribution;
}

constexpr u32 addr_contribution(ConfigReg reg) {
  return kTables.addr[static_cast<u32>(reg) & 0x1Fu];
}

}  // namespace

void ConfigCrc::update(ConfigReg reg, u32 data) {
  state_ = write_step(state_, addr_contribution(reg), data);
}

void ConfigCrc::update_span(ConfigReg reg, std::span<const u32> words) {
  const u32 addr = addr_contribution(reg);
  u32 s = state_;
  for (const u32 word : words) s = write_step(s, addr, word);
  state_ = s;
}

u32 ConfigCrc::value() const { return bit_reverse(state_); }

namespace {

constexpr u32 shift_in_bit(u32 crc, bool bit) {
  const bool msb = (crc & 0x80000000u) != 0;
  crc <<= 1;
  if (msb != bit) crc ^= kPolynomial;
  return crc;
}

}  // namespace

void BitSerialConfigCrc::update(ConfigReg reg, u32 data) {
  // 37-bit contribution: data bits 0..31 LSB-first, then the 5-bit
  // register address LSB-first.
  for (u32 i = 0; i < 32; ++i) {
    crc_ = shift_in_bit(crc_, ((data >> i) & 1u) != 0);
  }
  const u32 addr = static_cast<u32>(reg) & 0x1Fu;
  for (u32 i = 0; i < 5; ++i) {
    crc_ = shift_in_bit(crc_, ((addr >> i) & 1u) != 0);
  }
}

}  // namespace prcost
