#include "bitstream/crc.hpp"

namespace prcost {
namespace {

constexpr u32 kPolynomial = 0x1EDC6F41;  // CRC-32C (Castagnoli)

constexpr u32 shift_in_bit(u32 crc, bool bit) {
  const bool msb = (crc & 0x80000000u) != 0;
  crc <<= 1;
  if (msb != bit) crc ^= kPolynomial;
  return crc;
}

}  // namespace

void ConfigCrc::update(ConfigReg reg, u32 data) {
  // 37-bit contribution: data bits 0..31 LSB-first, then the 5-bit
  // register address LSB-first.
  for (u32 i = 0; i < 32; ++i) {
    crc_ = shift_in_bit(crc_, ((data >> i) & 1u) != 0);
  }
  const u32 addr = static_cast<u32>(reg) & 0x1Fu;
  for (u32 i = 0; i < 5; ++i) {
    crc_ = shift_in_bit(crc_, ((addr >> i) & 1u) != 0);
  }
}

}  // namespace prcost
