#include "bitstream/crc.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string_view>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PRCOST_CRC_X86 1
#include <immintrin.h>
#endif

namespace prcost {
namespace {

constexpr u32 kPolynomial = 0x1EDC6F41;  // CRC-32C (Castagnoli)
constexpr u32 kReflected = 0x82F63B78;   // kPolynomial bit-reversed

constexpr u32 bit_reverse(u32 v) {
  v = ((v >> 1) & 0x55555555u) | ((v & 0x55555555u) << 1);
  v = ((v >> 2) & 0x33333333u) | ((v & 0x33333333u) << 2);
  v = ((v >> 4) & 0x0F0F0F0Fu) | ((v & 0x0F0F0F0Fu) << 4);
  v = ((v >> 8) & 0x00FF00FFu) | ((v & 0x00FF00FFu) << 8);
  return (v >> 16) | (v << 16);
}

static_assert(bit_reverse(kPolynomial) == kReflected);

/// Advance a reflected-domain accumulator by `n` zero input bits.
/// Equivalently (the accumulator is the bit-reflection of a degree-<32
/// polynomial): multiply that polynomial by x^n and reduce mod P.
constexpr u32 zero_steps(u32 s, u32 n) {
  for (u32 i = 0; i < n; ++i) s = (s >> 1) ^ ((s & 1u) ? kReflected : 0u);
  return s;
}

// Keeping the accumulator bit-reversed turns the hardware's LSB-first feed
// (shift_in_bit in BitSerialConfigCrc below) into the classic reflected CRC
// recurrence, so one 37-bit register write (32 data bits, then the 5-bit
// register address) becomes
//
//   x  = state ^ data
//   state = word[0][x & 0xFF] ^ word[1][(x >> 8) & 0xFF]
//         ^ word[2][(x >> 16) & 0xFF] ^ word[3][x >> 24] ^ addr[reg]
//
// word[b] is the slice-by-4 table for byte b of the word with the five
// trailing zero shifts of the address step pre-folded in (the fold is
// legal because advancing by zero bits is linear over GF(2)); addr[] is
// the address bits' own 5-bit contribution, separable for the same
// linearity reason. byte_[] is the plain reflected byte table, used by the
// clmul final reduction and crc32c_bytes.
struct Tables {
  u32 word[4][256];
  u32 addr[32];
  u32 byte_[256];
};

constexpr Tables make_tables() {
  // Base reflected byte table, then the three composed slice tables.
  u32 sliced[4][256]{};
  for (u32 i = 0; i < 256; ++i) sliced[0][i] = zero_steps(i, 8);
  for (u32 k = 1; k < 4; ++k) {
    for (u32 i = 0; i < 256; ++i) {
      const u32 prev = sliced[k - 1][i];
      sliced[k][i] = (prev >> 8) ^ sliced[0][prev & 0xFFu];
    }
  }
  Tables t{};
  // Byte 0 of the word is consumed first, so it is shifted over by the
  // most later input: it takes the most-composed table.
  for (u32 b = 0; b < 4; ++b) {
    for (u32 i = 0; i < 256; ++i) {
      t.word[b][i] = zero_steps(sliced[3 - b][i], 5);
    }
  }
  for (u32 i = 0; i < 32; ++i) t.addr[i] = zero_steps(i, 5);
  for (u32 i = 0; i < 256; ++i) t.byte_[i] = sliced[0][i];
  return t;
}

constexpr Tables kTables = make_tables();

constexpr u32 write_step(u32 state, u32 addr_contribution, u32 data) {
  const u32 x = state ^ data;
  return kTables.word[0][x & 0xFFu] ^ kTables.word[1][(x >> 8) & 0xFFu] ^
         kTables.word[2][(x >> 16) & 0xFFu] ^ kTables.word[3][x >> 24] ^
         addr_contribution;
}

constexpr u32 addr_contribution(ConfigReg reg) {
  return kTables.addr[static_cast<u32>(reg) & 0x1Fu];
}

constexpr u32 shift_in_bit(u32 crc, bool bit) {
  const bool msb = (crc & 0x80000000u) != 0;
  crc <<= 1;
  if (msb != bit) crc ^= kPolynomial;
  return crc;
}

// ------------------------------------------------------------------------
// Span kernels. All take and return the reflected-domain state.

u32 span_sliced(u32 state, u32 reg5, const u32* words, std::size_t n) {
  const u32 addr = kTables.addr[reg5];
  u32 s = state;
  for (std::size_t i = 0; i < n; ++i) s = write_step(s, addr, words[i]);
  return s;
}

u32 span_bitserial(u32 state, u32 reg5, const u32* words, std::size_t n) {
  // The oracle works in the non-reflected register domain.
  u32 crc = bit_reverse(state);
  for (std::size_t i = 0; i < n; ++i) {
    const u32 data = words[i];
    for (u32 b = 0; b < 32; ++b) {
      crc = shift_in_bit(crc, ((data >> b) & 1u) != 0);
    }
    for (u32 b = 0; b < 5; ++b) {
      crc = shift_in_bit(crc, ((reg5 >> b) & 1u) != 0);
    }
  }
  return bit_reverse(crc);
}

#if PRCOST_CRC_X86

// One register write via the crc32 instruction: `crc32` absorbs the 32
// data bits LSB-first in the reflected domain, then the 5 address bits are
// appended with the same split the sliced tables use —
// zero_steps(t, 5) = (t >> 5) ^ zero_steps(t & 31, 5) by GF(2) linearity,
// and zero_steps(i, 5) for i < 32 is exactly kTables.addr[i].
__attribute__((target("sse4.2"))) inline u32 hw_step(u32 state, u32 addr_c,
                                                     u32 data) {
  const u32 t = _mm_crc32_u32(state, data);
  return (t >> 5) ^ kTables.addr[t & 0x1Fu] ^ addr_c;
}

// Burst path: 64 writes x 37 bits = 2368 bits = exactly 37 u64 lanes, so
// any multiple of 64 words packs into whole lanes with no tail. The packer
// streams symbols (data | addr << 32) through a shift register and feeds
// each completed lane straight to `_mm_crc32_u64`, whose semantics are
// "absorb these 64 stream bits LSB-first" — the state flows through with
// no combine step. The < 64-word tail falls back to the scalar step.
__attribute__((target("sse4.2"))) u32 span_hw_crc32(u32 state, u32 reg5,
                                                    const u32* words,
                                                    std::size_t n) {
  const u64 addr_bits = static_cast<u64>(reg5) << 32;
  u64 s = state;
  std::size_t blocks = n / 64;
  while (blocks-- > 0) {
    u64 cur = 0;
    u32 bit = 0;
    for (u32 i = 0; i < 64; ++i) {
      const u64 sym = words[i] | addr_bits;
      cur |= sym << bit;
      bit += 37;
      if (bit >= 64) {
        s = _mm_crc32_u64(s, cur);
        bit -= 64;
        // Shift amount is in [1, 37]; when bit == 0 the symbol had no
        // bits left and sym >> 37 is zero anyway (symbols are 37 bits).
        cur = sym >> (37 - bit);
      }
    }
    words += 64;
  }
  u32 s32 = static_cast<u32>(s);
  const u32 addr_c = kTables.addr[reg5];
  for (std::size_t i = 0; i < n % 64; ++i) {
    s32 = hw_step(s32, addr_c, words[i]);
  }
  return s32;
}

// PCLMUL carry-less folding. A 128-word superblock is 4736 bits = 74 u64
// lanes = 37 x 128-bit blocks. In the reflected convention (register bit j
// holds the coefficient of x^(127-j)), folding the accumulator forward by
// one block is ACC * x^128 mod-congruent, split over the two halves:
//
//   ACC = L_poly * x^64 + H_poly          (L = low qword, H = high qword)
//   ACC * x^128 = L_poly * x^192 + H_poly * x^128
//
// With both operands bit-reflected, PCLMULQDQ(a, k) yields the reflected
// representation of x * A(x) * K(x), so the constants are taken one power
// low: kFoldLo = x^191 mod P and kFoldHi = x^127 mod P, each stored as its
// reflected 32 bits in the top half of a qword. The initial state enters
// XORed into the low 32 bits of the first block (it is the highest-power
// part of the superblock polynomial), and the final 128-bit accumulator
// reduces to the 32-bit state by feeding its 16 bytes through the plain
// reflected byte table — the CRC of a 16-byte message is exactly
// ACC * x^32 mod P, which is the state we need.
constexpr u64 fold_const(u32 power) {
  // zero_steps(reflect(1), power) = reflected representation of
  // x^power mod P; park it in the top 32 bits so the qword, read as a
  // 64-bit reflected polynomial, is the same degree-<32 polynomial.
  return static_cast<u64>(zero_steps(0x80000000u, power)) << 32;
}

constexpr u64 kFoldLo = fold_const(191);
constexpr u64 kFoldHi = fold_const(127);

__attribute__((target("pclmul,sse4.2"))) u32 span_hw_clmul(u32 state,
                                                           u32 reg5,
                                                           const u32* words,
                                                           std::size_t n) {
  const u64 addr_bits = static_cast<u64>(reg5) << 32;
  const __m128i fold_k = _mm_set_epi64x(static_cast<long long>(kFoldHi),
                                        static_cast<long long>(kFoldLo));
  std::size_t blocks = n / 128;
  while (blocks-- > 0) {
    u64 lanes[74];
    u64 cur = 0;
    u32 bit = 0;
    u32 li = 0;
    for (u32 i = 0; i < 128; ++i) {
      const u64 sym = words[i] | addr_bits;
      cur |= sym << bit;
      bit += 37;
      if (bit >= 64) {
        lanes[li++] = cur;
        bit -= 64;
        cur = sym >> (37 - bit);
      }
    }
    const u64* p = lanes;
    __m128i acc = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    acc = _mm_xor_si128(acc, _mm_cvtsi32_si128(static_cast<int>(state)));
    for (u32 i = 1; i < 37; ++i) {
      const __m128i block =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 2 * i));
      const __m128i lo = _mm_clmulepi64_si128(acc, fold_k, 0x00);
      const __m128i hi = _mm_clmulepi64_si128(acc, fold_k, 0x11);
      acc = _mm_xor_si128(_mm_xor_si128(lo, hi), block);
    }
    alignas(16) unsigned char bytes[16];
    _mm_store_si128(reinterpret_cast<__m128i*>(bytes), acc);
    u32 s = 0;
    for (u32 i = 0; i < 16; ++i) {
      s = (s >> 8) ^ kTables.byte_[(s ^ bytes[i]) & 0xFFu];
    }
    state = s;
    words += 128;
  }
  return span_hw_crc32(state, reg5, words, n % 128);
}

__attribute__((target("sse4.2"))) u32 crc32c_bytes_hw(const unsigned char* p,
                                                     std::size_t size) {
  u64 s = 0xFFFFFFFFu;
  while (size >= 8) {
    u64 chunk;
    std::memcpy(&chunk, p, 8);
    s = _mm_crc32_u64(s, chunk);
    p += 8;
    size -= 8;
  }
  u32 s32 = static_cast<u32>(s);
  while (size-- > 0) s32 = _mm_crc32_u8(s32, *p++);
  return s32 ^ 0xFFFFFFFFu;
}

bool cpu_has_sse42() { return __builtin_cpu_supports("sse4.2") != 0; }
bool cpu_has_pclmul() {
  return cpu_has_sse42() && __builtin_cpu_supports("pclmul") != 0;
}

#else  // !PRCOST_CRC_X86

bool cpu_has_sse42() { return false; }
bool cpu_has_pclmul() { return false; }

#endif  // PRCOST_CRC_X86

// ------------------------------------------------------------------------
// Dispatch.

u32 span_with(CrcImpl impl, u32 state, u32 reg5, const u32* words,
              std::size_t n) {
  switch (impl) {
    case CrcImpl::kBitSerial:
      return span_bitserial(state, reg5, words, n);
#if PRCOST_CRC_X86
    case CrcImpl::kHwCrc32:
      return span_hw_crc32(state, reg5, words, n);
    case CrcImpl::kHwClmul:
      return span_hw_clmul(state, reg5, words, n);
#endif
    case CrcImpl::kSliced:
    default:
      return span_sliced(state, reg5, words, n);
  }
}

constexpr int kImplUnresolved = -1;
std::atomic<int> g_impl{kImplUnresolved};

CrcImpl best_available() {
  // The scalar CRC32 instruction wins on the 37-bit config-symbol stream:
  // the perf_bitstream_throughput harness measures it ~1.7x faster than
  // the PCLMUL fold (whose symbol packing eats the wide-multiply gain),
  // so it is the auto pick; PRCOST_FORCE_CRC=clmul still selects folding.
  if (cpu_has_sse42()) return CrcImpl::kHwCrc32;
  if (cpu_has_pclmul()) return CrcImpl::kHwClmul;
  return CrcImpl::kSliced;
}

CrcImpl resolve_default() {
  if (const char* env = std::getenv("PRCOST_FORCE_CRC")) {
    const std::string_view name{env};
    if (name == "bitserial" || name == "bit-serial" || name == "serial") {
      return CrcImpl::kBitSerial;
    }
    if (name == "sliced" || name == "table") return CrcImpl::kSliced;
    if (name == "sse42" || name == "crc32") {
      if (crc_impl_available(CrcImpl::kHwCrc32)) return CrcImpl::kHwCrc32;
    }
    if (name == "clmul" || name == "pclmul") {
      if (crc_impl_available(CrcImpl::kHwClmul)) return CrcImpl::kHwClmul;
    }
    if (name == "hw" || name == "sse42" || name == "crc32" ||
        name == "clmul" || name == "pclmul") {
      const CrcImpl best = best_available();
      return best == CrcImpl::kSliced ? CrcImpl::kSliced : best;
    }
    // Unknown name: fall through to the auto pick.
  }
  return best_available();
}

}  // namespace

bool crc_impl_available(CrcImpl impl) {
  switch (impl) {
    case CrcImpl::kBitSerial:
    case CrcImpl::kSliced:
      return true;
    case CrcImpl::kHwCrc32:
      return cpu_has_sse42();
    case CrcImpl::kHwClmul:
      return cpu_has_pclmul();
  }
  return false;
}

CrcImpl active_crc_impl() {
  int current = g_impl.load(std::memory_order_relaxed);
  if (current == kImplUnresolved) {
    current = static_cast<int>(resolve_default());
    int expected = kImplUnresolved;
    // First resolver wins; a concurrent set_crc_impl takes priority.
    if (!g_impl.compare_exchange_strong(expected, current,
                                        std::memory_order_relaxed)) {
      current = expected;
    }
  }
  return static_cast<CrcImpl>(current);
}

bool set_crc_impl(CrcImpl impl) {
  if (!crc_impl_available(impl)) return false;
  g_impl.store(static_cast<int>(impl), std::memory_order_relaxed);
  return true;
}

const char* crc_impl_name(CrcImpl impl) {
  switch (impl) {
    case CrcImpl::kBitSerial:
      return "bitserial";
    case CrcImpl::kSliced:
      return "sliced";
    case CrcImpl::kHwCrc32:
      return "hw-crc32";
    case CrcImpl::kHwClmul:
      return "hw-clmul";
  }
  return "unknown";
}

u32 config_crc_advance(CrcImpl impl, u32 state, ConfigReg reg,
                       std::span<const u32> words) {
  const u32 reg5 = static_cast<u32>(reg) & 0x1Fu;
  return span_with(impl, state, reg5, words.data(), words.size());
}

u32 crc32c_bytes(const void* data, std::size_t size) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
#if PRCOST_CRC_X86
  if (cpu_has_sse42()) return crc32c_bytes_hw(p, size);
#endif
  u32 s = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    s = (s >> 8) ^ kTables.byte_[(s ^ p[i]) & 0xFFu];
  }
  return s ^ 0xFFFFFFFFu;
}

void ConfigCrc::update(ConfigReg reg, u32 data) {
  const CrcImpl impl = active_crc_impl();
  if (impl == CrcImpl::kSliced) {
    state_ = write_step(state_, addr_contribution(reg), data);
    return;
  }
  const u32 reg5 = static_cast<u32>(reg) & 0x1Fu;
  state_ = span_with(impl, state_, reg5, &data, 1);
}

void ConfigCrc::update_span(ConfigReg reg, std::span<const u32> words) {
  const u32 reg5 = static_cast<u32>(reg) & 0x1Fu;
  state_ = span_with(active_crc_impl(), state_, reg5, words.data(),
                     words.size());
}

u32 ConfigCrc::value() const { return bit_reverse(state_); }

void BitSerialConfigCrc::update(ConfigReg reg, u32 data) {
  // 37-bit contribution: data bits 0..31 LSB-first, then the 5-bit
  // register address LSB-first.
  for (u32 i = 0; i < 32; ++i) {
    crc_ = shift_in_bit(crc_, ((data >> i) & 1u) != 0);
  }
  const u32 addr = static_cast<u32>(reg) & 0x1Fu;
  for (u32 i = 0; i < 5; ++i) {
    crc_ = shift_in_bit(crc_, ((addr >> i) & 1u) != 0);
  }
}

}  // namespace prcost
