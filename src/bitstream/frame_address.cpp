#include "bitstream/frame_address.hpp"

#include <sstream>

#include "util/error.hpp"

namespace prcost {

u32 encode_far(const FrameAddress& far) {
  if (far.row > 0x1F || far.major > 0xFF || far.minor > 0xFF) {
    throw ContractError{"encode_far: field out of range"};
  }
  return (static_cast<u32>(far.block) << 21) | (far.row << 16) |
         (far.major << 8) | far.minor;
}

FrameAddress decode_far(u32 word) {
  FrameAddress far;
  far.block = static_cast<FrameBlock>((word >> 21) & 0x7u);
  far.row = (word >> 16) & 0x1Fu;
  far.major = (word >> 8) & 0xFFu;
  far.minor = word & 0xFFu;
  return far;
}

std::string far_to_string(const FrameAddress& far) {
  std::ostringstream os;
  os << (far.block == FrameBlock::kInterconnect ? "CFG" : "BRAM") << " row "
     << far.row << " major " << far.major << " minor " << far.minor;
  return os.str();
}

}  // namespace prcost
