// Partial bitstream generator.
//
// Produces a concrete, parseable partial bitstream for a placed PRR with
// exactly the structure of the paper's Fig. 2: initial (sync/header)
// words; for each PRR row a FAR/FDRI packet pair followed by the row's
// configuration frames (plus the pipeline flush frame); a BRAM
// initialization burst per row when the PRR contains BRAM columns; and the
// final CRC/desync words.
//
// This is the validation artifact for the Eq. (18)-(23) size model: for
// every (device, organization) the generated word count must equal the
// model's prediction exactly - a property the test suite sweeps.
#pragma once

#include <cstdint>
#include <vector>

#include "bitstream/frame_address.hpp"
#include "bitstream/words.hpp"
#include "cost/prr_search.hpp"
#include "cost/shaped_prr.hpp"
#include "device/family_traits.hpp"

namespace prcost {

/// What the synthetic frame payload looks like. Real post-PAR frames are
/// sparse (most interconnect bits are 0); kSparse is the default so the
/// compression ablation measures realistic ratios.
enum class PayloadKind {
  kSparse,  ///< ~`sparse_density` of words non-zero, rest zero
  kRandom,  ///< fully random words (incompressible worst case)
  kZeros,   ///< all-zero frames (blank PRR / best case)
};

/// Generation options.
struct GeneratorOptions {
  /// Seed for the deterministic frame payload filler (stands in for the
  /// placed-and-routed design's actual configuration bits).
  u64 payload_seed = 0x5EED;
  /// Device IDCODE written to the IDCODE register; 0 selects a per-family
  /// default.
  u32 idcode = 0;
  PayloadKind payload = PayloadKind::kSparse;
  /// Fraction of non-zero payload words under kSparse.
  double sparse_density = 0.15;
};

/// Initial words for `family` (the paper's IW). The sequence length equals
/// traits(family).iw by construction - tested.
std::vector<u32> header_words(Family family, u32 idcode);

/// Append the header words to `out` (allocation-free when `out` has
/// capacity).
void append_header_words(std::vector<u32>& out, Family family, u32 idcode);

/// Final words for `family` (the paper's FW), carrying the accumulated
/// CRC. Length equals traits(family).fw.
std::vector<u32> trailer_words(Family family, u32 crc);

/// Append the trailer words to `out`.
void append_trailer_words(std::vector<u32>& out, Family family, u32 crc);

/// Generate the full partial bitstream for `plan` as 32-bit configuration
/// words (for 16-bit families each entry still holds one configuration
/// word; byte serialization honours traits.bytes_word).
std::vector<u32> generate_bitstream(const PrrPlan& plan, Family family,
                                    const GeneratorOptions& options = {});

/// Same, writing into a caller-owned buffer (cleared first). Hot callers
/// pass a reused (e.g. thread-local) scratch vector so steady-state
/// generation performs no allocation at all: the word count is known
/// exactly up front from Eq. (18), so the buffer is reserved once and its
/// capacity is reused across calls.
void generate_bitstream_into(std::vector<u32>& out, const PrrPlan& plan,
                             Family family,
                             const GeneratorOptions& options = {});

/// Serialize to wire bytes (big-endian, traits.bytes_word bytes per word).
/// The result size is the quantity Table VII reports.
std::vector<std::uint8_t> to_bytes(const std::vector<u32>& words,
                                   Family family);

/// Generate the partial bitstream of a non-rectangular (multi-band) PRR:
/// one FAR/FDRI burst group per band row, single sync header and trailer.
/// Byte size equals estimate_shaped_bitstream() exactly (tested).
std::vector<u32> generate_shaped_bitstream(const ShapedPrr& shape,
                                           Family family,
                                           const GeneratorOptions& options = {});

/// Buffer-reusing variant of generate_shaped_bitstream.
void generate_shaped_bitstream_into(std::vector<u32>& out,
                                    const ShapedPrr& shape, Family family,
                                    const GeneratorOptions& options = {});

/// Generate a FULL configuration bitstream for the whole fabric (every
/// column of every row, including IOB and clock columns, plus all BRAM
/// initialization) - the non-PR baseline artifact. Its byte size equals
/// full_bitstream_bytes(fabric) exactly (tested), closing the same
/// model-vs-artifact loop Eq. (18) has for partial bitstreams.
std::vector<u32> generate_full_bitstream(const Fabric& fabric,
                                         const GeneratorOptions& options = {});

/// Buffer-reusing variant of generate_full_bitstream.
void generate_full_bitstream_into(std::vector<u32>& out, const Fabric& fabric,
                                  const GeneratorOptions& options = {});

/// Default IDCODE per family (synthetic but stable).
u32 default_idcode(Family family);

}  // namespace prcost
