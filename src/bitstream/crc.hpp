// Configuration CRC.
//
// Virtex configuration logic accumulates a CRC over every (register
// address, data word) pair written through the configuration interface and
// compares it against the value written to the CRC register before
// startup. We implement the documented 32-bit scheme: each written word
// contributes 37 bits (5-bit register address above the 32 data bits) fed
// LSB-first into a CRC-32C (Castagnoli, 0x1EDC6F41) register, per the
// Virtex-5 configuration user guide.
//
// ConfigCrc is a table-driven sliced implementation: the accumulator is
// kept bit-reversed so the LSB-first feed becomes the classic reflected
// CRC recurrence, one 37-bit register write collapses to four 256-entry
// table lookups (slice-by-4 over the data word, with the five trailing
// address bits folded into the tables) plus one 32-entry lookup for the
// register address. BitSerialConfigCrc keeps the original bit-at-a-time
// algorithm as the oracle the sliced tables are property-tested against.
#pragma once

#include <span>

#include "bitstream/words.hpp"
#include "util/ints.hpp"

namespace prcost {

/// Streaming configuration-CRC accumulator (sliced, table-driven).
class ConfigCrc {
 public:
  /// Absorb one register write.
  void update(ConfigReg reg, u32 data);

  /// Absorb a burst of writes to the same register (FDRI payloads).
  /// Equivalent to calling update(reg, w) for each word in order.
  void update_span(ConfigReg reg, std::span<const u32> words);

  /// Current CRC value.
  u32 value() const;

  /// Reset (the RCRC command).
  void reset() { state_ = 0; }

 private:
  u32 state_ = 0;  ///< accumulator in the bit-reversed (reflected) domain
};

/// Reference bit-at-a-time implementation of the same 37-bit scheme.
/// Retained as the test oracle for ConfigCrc and as the baseline the
/// throughput bench measures speedup against.
class BitSerialConfigCrc {
 public:
  void update(ConfigReg reg, u32 data);
  u32 value() const { return crc_; }
  void reset() { crc_ = 0; }

 private:
  u32 crc_ = 0;
};

}  // namespace prcost
