// Configuration CRC.
//
// Virtex configuration logic accumulates a CRC over every (register
// address, data word) pair written through the configuration interface and
// compares it against the value written to the CRC register before
// startup. We implement the documented 32-bit scheme: each written word
// contributes 37 bits (5-bit register address above the 32 data bits) fed
// LSB-first into a CRC-32C (Castagnoli, 0x1EDC6F41) register, per the
// Virtex-5 configuration user guide.
#pragma once

#include "bitstream/words.hpp"
#include "util/ints.hpp"

namespace prcost {

/// Streaming configuration-CRC accumulator.
class ConfigCrc {
 public:
  /// Absorb one register write.
  void update(ConfigReg reg, u32 data);

  /// Current CRC value.
  u32 value() const { return crc_; }

  /// Reset (the RCRC command).
  void reset() { crc_ = 0; }

 private:
  u32 crc_ = 0;
};

}  // namespace prcost
