// Configuration CRC.
//
// Virtex configuration logic accumulates a CRC over every (register
// address, data word) pair written through the configuration interface and
// compares it against the value written to the CRC register before
// startup. We implement the documented 32-bit scheme: each written word
// contributes 37 bits (5-bit register address above the 32 data bits) fed
// LSB-first into a CRC-32C (Castagnoli, 0x1EDC6F41) register, per the
// Virtex-5 configuration user guide.
//
// ConfigCrc is the streaming accumulator. It dispatches at runtime between
// several implementations of the same 37-bit scheme:
//
//   kBitSerial  the original bit-at-a-time loop (the property-test oracle)
//   kSliced     table-driven slice-by-4 with the 5 address bits pre-folded
//               into the word tables via GF(2) linearity
//   kHwCrc32    SSE4.2 `crc32` instruction. 64 register writes are exactly
//               2368 bits = 37 u64 lanes, so a burst packs its 37-bit
//               symbols into u64 lanes and feeds them straight through
//               `_mm_crc32_u64` with no combine step
//   kHwClmul    PCLMUL carry-less folding: 128-word superblocks (74 lanes
//               = 37 x 128-bit blocks) folded with x^191 / x^127 mod P
//               constants, then reduced back to 32 bits by byte table
//
// The default is chosen by CPUID at first use; `PRCOST_FORCE_CRC`
// (bitserial | sliced | hw | sse42 | clmul) overrides it, and
// `set_crc_impl` overrides both (used by benches and tests). All four
// implementations are bit-identical; the dispatch is purely a speed knob.
#pragma once

#include <cstddef>
#include <span>

#include "bitstream/words.hpp"
#include "util/ints.hpp"

namespace prcost {

/// Selectable implementations of the 37-bit configuration CRC step.
enum class CrcImpl {
  kBitSerial = 0,
  kSliced = 1,
  kHwCrc32 = 2,
  kHwClmul = 3,
};

/// True when `impl` can run on this machine (CPUID check for hw paths).
bool crc_impl_available(CrcImpl impl);

/// The implementation ConfigCrc currently dispatches to. Resolved on first
/// use: `set_crc_impl` override, else `PRCOST_FORCE_CRC`, else the fastest
/// available hardware path, else the sliced tables.
CrcImpl active_crc_impl();

/// Force a specific implementation process-wide. Returns false (and leaves
/// the dispatch unchanged) when `impl` is not available on this machine.
bool set_crc_impl(CrcImpl impl);

/// Stable short name ("bitserial", "sliced", "hw-crc32", "hw-clmul").
const char* crc_impl_name(CrcImpl impl);

/// Advance a reflected-domain accumulator (the `ConfigCrc` state, i.e.
/// bit_reverse of the register value) across a burst of writes using a
/// specific implementation. Exposed so tests and benches can compare
/// implementations directly without changing the process-wide dispatch.
u32 config_crc_advance(CrcImpl impl, u32 state, ConfigReg reg,
                       std::span<const u32> words);

/// Plain CRC-32C over bytes (init/final-xor 0xFFFFFFFF, reflected), used
/// to checksum cache snapshots. Uses the crc32 instruction when available.
u32 crc32c_bytes(const void* data, std::size_t size);

/// Streaming configuration-CRC accumulator (runtime-dispatched).
class ConfigCrc {
 public:
  /// Absorb one register write.
  void update(ConfigReg reg, u32 data);

  /// Absorb a burst of writes to the same register (FDRI payloads).
  /// Equivalent to calling update(reg, w) for each word in order.
  void update_span(ConfigReg reg, std::span<const u32> words);

  /// Current CRC value.
  u32 value() const;

  /// Reset (the RCRC command).
  void reset() { state_ = 0; }

 private:
  u32 state_ = 0;  ///< accumulator in the bit-reversed (reflected) domain
};

/// Reference bit-at-a-time implementation of the same 37-bit scheme.
/// Retained as the test oracle for the dispatched implementations and as
/// the baseline the throughput bench measures speedup against.
class BitSerialConfigCrc {
 public:
  void update(ConfigReg reg, u32 data);
  u32 value() const { return crc_; }
  void reset() { crc_ = 0; }

 private:
  u32 crc_ = 0;
};

}  // namespace prcost
