// Configuration command-stream linter.
//
// An independent rule checker for the configuration protocol, distinct
// from the parser (which recovers structure): the linter verifies ORDER
// and STATE rules the configuration logic enforces on silicon, so the
// generator is validated by a second, independently written model:
//
//   R1  nothing but dummy/bus-width words before SYNC
//   R2  exactly one SYNC
//   R3  RCRC precedes the first register write that feeds the CRC
//   R4  WCFG is issued before the first FDRI write
//   R5  every FDRI write is preceded by a FAR write (per burst)
//   R6  FDRI payloads are frame-aligned and non-empty
//   R7  the CRC register is written exactly once, after all FDRI data
//   R8  DESYNC is the last command; only pad words may follow
//
// Violations carry the word offset so a bad generator change is easy to
// localize.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "device/family_traits.hpp"
#include "util/ints.hpp"

namespace prcost {

/// One rule violation.
struct LintIssue {
  std::string rule;     ///< "R1".."R8"
  u64 word_offset = 0;  ///< position in the stream
  std::string message;
};

/// Check `words` against the protocol rules for `family`. Empty result =
/// clean stream.
std::vector<LintIssue> lint_bitstream(std::span<const u32> words,
                                      Family family);

}  // namespace prcost
