// Configuration readback (FDRO path).
//
// Context save (FCCM'13 [5]) reads a PRR's frames back out of the
// configuration memory through the ICAP: for each PRR row, write the FAR,
// issue the RCFG command and read (frames + 1 pipeline pad) frames from
// FDRO. This module generates the request command stream, serves it
// against a ConfigMemory, and re-assembles the returned frames - closing
// the save half of the HTR save/restore loop at the word level.
#pragma once

#include <vector>

#include "bitstream/config_memory.hpp"
#include "cost/prr_search.hpp"

namespace prcost {

/// One row's readback exchange.
struct ReadbackBurst {
  FrameAddress far;
  u64 frames = 0;  ///< frames requested (excluding the pipeline pad)
};

/// The full request: command words to push into the ICAP plus the bursts
/// they describe (for the responder).
struct ReadbackRequest {
  std::vector<u32> command_words;
  std::vector<ReadbackBurst> bursts;
  u64 response_words = 0;  ///< total words FDRO will return
};

/// Build the readback request covering every row (config frames; plus
/// BRAM-content frames when the PRR has BRAM columns).
ReadbackRequest make_readback_request(const PrrPlan& plan, Family family);

/// Serve a request against `cm`: returns the FDRO word stream - for each
/// burst one pipeline pad frame of zeroes followed by the stored frames.
std::vector<u32> serve_readback(const ConfigMemory& cm,
                                const ReadbackRequest& request);

/// Split a served response back into per-burst frame payloads (pad frames
/// removed). Throws ContractError if the word count mismatches.
std::vector<std::vector<u32>> split_readback_response(
    const ReadbackRequest& request, std::span<const u32> response,
    u32 frame_size);

}  // namespace prcost
