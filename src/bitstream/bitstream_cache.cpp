#include "bitstream/bitstream_cache.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/snapshot.hpp"

namespace prcost {
namespace {

std::atomic<bool> g_enabled{true};

/// Everything generate_bitstream reads: the family (interning the frame
/// constants), the plan geometry that shapes the bursts, and the payload
/// options. The window width is deliberately absent - generation only
/// reads window.first_col.
struct Key {
  u32 family = 0;
  u32 h = 0;
  u32 clb_cols = 0;
  u32 dsp_cols = 0;
  u32 bram_cols = 0;
  u32 first_col = 0;
  u32 first_row = 0;
  u64 payload_seed = 0;
  u32 idcode = 0;
  u32 payload_kind = 0;
  u64 density_bits = 0;  ///< sparse_density, compared bit-exactly

  bool operator==(const Key& other) const {
    return family == other.family && h == other.h &&
           clb_cols == other.clb_cols && dsp_cols == other.dsp_cols &&
           bram_cols == other.bram_cols && first_col == other.first_col &&
           first_row == other.first_row &&
           payload_seed == other.payload_seed && idcode == other.idcode &&
           payload_kind == other.payload_kind &&
           density_bits == other.density_bits;
  }
};

struct KeyHash {
  std::size_t operator()(const Key& key) const noexcept {
    // FNV-1a over the key fields (field-wise, not memcmp: Key has padding).
    u64 h = 14695981039346656037ull;
    const auto mix = [&h](u64 v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    mix(key.family);
    mix(key.h);
    mix(key.clb_cols);
    mix(key.dsp_cols);
    mix(key.bram_cols);
    mix(key.first_col);
    mix(key.first_row);
    mix(key.payload_seed);
    mix(key.idcode);
    mix(key.payload_kind);
    mix(key.density_bits);
    return static_cast<std::size_t>(h);
  }
};

using Words = std::shared_ptr<const std::vector<u32>>;

class Cache {
 public:
  static Cache& instance() {
    static Cache cache;
    return cache;
  }

  /// nullptr on miss. Shared entries: callers must not mutate.
  Words lookup(const Key& key) {
    Shard& shard = shard_for(key);
    {
      const std::scoped_lock lock{shard.mu};
      const auto it = shard.map.find(key);
      if (it != shard.map.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        PRCOST_COUNT("bitstream_cache.hits");
        PRCOST_REQUEST_EVENT(kBitstreamCacheHit);
        return it->second;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    PRCOST_COUNT("bitstream_cache.misses");
    PRCOST_REQUEST_EVENT(kBitstreamCacheMiss);
    return nullptr;
  }

  /// Insert (first writer wins) and return the resident words.
  Words insert(const Key& key, Words words) {
    Shard& shard = shard_for(key);
    const std::size_t shard_cap =
        std::max<std::size_t>(1, capacity_.load(std::memory_order_relaxed) /
                                     kShardCount);
    const std::scoped_lock lock{shard.mu};
    if (shard.map.size() >= shard_cap &&
        shard.map.find(key) == shard.map.end()) {
      // Full: drop an arbitrary resident entry (hash order ~ random). An
      // overflow valve, not an LRU - the typical working set is a handful
      // of PRMs per device.
      const auto victim = shard.map.begin();
      resident_words_.fetch_sub(victim->second->size(),
                                std::memory_order_relaxed);
      shard.map.erase(victim);
      entries_.fetch_sub(1, std::memory_order_relaxed);
      evictions_.fetch_add(1, std::memory_order_relaxed);
      PRCOST_COUNT("bitstream_cache.evictions");
    }
    const auto [it, inserted] = shard.map.try_emplace(key, std::move(words));
    if (inserted) {
      PRCOST_GAUGE_SET("bitstream_cache.entries",
                       entries_.fetch_add(1, std::memory_order_relaxed) + 1);
      PRCOST_GAUGE_SET(
          "bitstream_cache.resident_words",
          resident_words_.fetch_add(it->second->size(),
                                    std::memory_order_relaxed) +
              it->second->size());
    }
    return it->second;
  }

  void clear() {
    for (Shard& shard : shards_) {
      const std::scoped_lock lock{shard.mu};
      entries_.fetch_sub(shard.map.size(), std::memory_order_relaxed);
      for (const auto& [key, words] : shard.map) {
        resident_words_.fetch_sub(words->size(), std::memory_order_relaxed);
      }
      shard.map.clear();
    }
    PRCOST_GAUGE_SET("bitstream_cache.entries",
                     entries_.load(std::memory_order_relaxed));
    PRCOST_GAUGE_SET("bitstream_cache.resident_words",
                     resident_words_.load(std::memory_order_relaxed));
  }

  BitstreamCacheStats stats() const {
    BitstreamCacheStats out;
    out.hits = hits_.load(std::memory_order_relaxed);
    out.misses = misses_.load(std::memory_order_relaxed);
    out.evictions = evictions_.load(std::memory_order_relaxed);
    for (const Shard& shard : shards_) {
      const std::scoped_lock lock{shard.mu};
      out.entries += shard.map.size();
      for (const auto& [key, words] : shard.map) {
        out.resident_words += words->size();
      }
    }
    return out;
  }

  void set_capacity(std::size_t max_entries) {
    capacity_.store(std::max<std::size_t>(kShardCount, max_entries),
                    std::memory_order_relaxed);
  }

  /// Point-in-time copy of every resident (key, words) pair. Words are
  /// shared_ptr, so this pins them without copying payloads.
  std::vector<std::pair<Key, Words>> resident() const {
    std::vector<std::pair<Key, Words>> out;
    for (const Shard& shard : shards_) {
      const std::scoped_lock lock{shard.mu};
      out.reserve(out.size() + shard.map.size());
      for (const auto& [key, words] : shard.map) out.emplace_back(key, words);
    }
    return out;
  }

 private:
  static constexpr std::size_t kShardCount = 8;

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, Words, KeyHash> map;
  };

  Shard& shard_for(const Key& key) {
    return shards_[KeyHash{}(key)&(kShardCount - 1)];
  }

  std::array<Shard, kShardCount> shards_;
  std::atomic<u64> hits_{0};
  std::atomic<u64> misses_{0};
  std::atomic<u64> evictions_{0};
  std::atomic<std::size_t> entries_{0};        ///< mirrors shard maps (gauge)
  std::atomic<std::size_t> resident_words_{0};  ///< cached payload words
  std::atomic<std::size_t> capacity_{128};
};

Key key_of(const PrrPlan& plan, Family family,
           const GeneratorOptions& options) {
  Key key;
  key.family = static_cast<u32>(family);
  key.h = plan.organization.h;
  key.clb_cols = plan.organization.columns.clb_cols;
  key.dsp_cols = plan.organization.columns.dsp_cols;
  key.bram_cols = plan.organization.columns.bram_cols;
  key.first_col = plan.window.first_col;
  key.first_row = plan.first_row;
  key.payload_seed = options.payload_seed;
  key.idcode = options.idcode;
  key.payload_kind = static_cast<u32>(options.payload);
  key.density_bits = std::bit_cast<u64>(options.sparse_density);
  return key;
}

// Snapshot format version 1 payload:
//   u64 entry_count
//     { 11 key fields; u64 word_count; word_count x u32 words } x count
// Words are written as one bulk byte range (not word-by-word): resident
// bitstreams dominate the file, and the bulk path keeps warm restart
// well under the 100 ms budget.
constexpr u32 kBitstreamSnapshotVersion = 1;

}  // namespace

std::size_t bitstream_cache_save(const std::string& path) {
  SnapshotWriter out;
  const auto resident = Cache::instance().resident();
  out.put_u64(resident.size());
  for (const auto& [key, words] : resident) {
    out.put_u32(key.family);
    out.put_u32(key.h);
    out.put_u32(key.clb_cols);
    out.put_u32(key.dsp_cols);
    out.put_u32(key.bram_cols);
    out.put_u32(key.first_col);
    out.put_u32(key.first_row);
    out.put_u64(key.payload_seed);
    out.put_u32(key.idcode);
    out.put_u32(key.payload_kind);
    out.put_u64(key.density_bits);
    out.put_u64(words->size());
    out.put_bytes(words->data(), words->size() * sizeof(u32));
  }
  out.write(path, kBitstreamSnapshotVersion);
  return resident.size();
}

std::size_t bitstream_cache_load(const std::string& path) {
  SnapshotReader in{path, kBitstreamSnapshotVersion};
  // Decode everything before touching the cache, so a malformed payload
  // leaves it unchanged.
  std::vector<std::pair<Key, Words>> loaded;
  const u64 entry_count = in.get_u64();
  loaded.reserve(std::min<u64>(entry_count, 1u << 16));
  for (u64 i = 0; i < entry_count; ++i) {
    Key key;
    key.family = in.get_u32();
    key.h = in.get_u32();
    key.clb_cols = in.get_u32();
    key.dsp_cols = in.get_u32();
    key.bram_cols = in.get_u32();
    key.first_col = in.get_u32();
    key.first_row = in.get_u32();
    key.payload_seed = in.get_u64();
    key.idcode = in.get_u32();
    key.payload_kind = in.get_u32();
    key.density_bits = in.get_u64();
    const u64 word_count = in.get_u64();
    if (word_count * sizeof(u32) > in.remaining()) {
      throw ParseError{"snapshot '" + path + "': payload underrun"};
    }
    std::vector<u32> words(static_cast<std::size_t>(word_count));
    in.get_bytes(words.data(), words.size() * sizeof(u32));
    loaded.emplace_back(
        key, std::make_shared<const std::vector<u32>>(std::move(words)));
  }
  if (in.remaining() != 0) {
    throw ParseError{"snapshot '" + path + "': trailing bytes"};
  }
  for (auto& [key, words] : loaded) {
    Cache::instance().insert(key, std::move(words));
  }
  return loaded.size();
}

bool bitstream_cache_enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

void set_bitstream_cache_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

std::shared_ptr<const std::vector<u32>> generate_bitstream_cached(
    const PrrPlan& plan, Family family, const GeneratorOptions& options) {
  if (!bitstream_cache_enabled()) {
    return std::make_shared<const std::vector<u32>>(
        generate_bitstream(plan, family, options));
  }
  const Key key = key_of(plan, family, options);
  if (Words words = Cache::instance().lookup(key)) return words;
  auto words = std::make_shared<const std::vector<u32>>(
      generate_bitstream(plan, family, options));
  return Cache::instance().insert(key, std::move(words));
}

void bitstream_cache_clear() { Cache::instance().clear(); }

BitstreamCacheStats bitstream_cache_stats() {
  return Cache::instance().stats();
}

void set_bitstream_cache_capacity(std::size_t max_entries) {
  Cache::instance().set_capacity(max_entries);
}

}  // namespace prcost
