#include "bitstream/compress.hpp"

#include <string>
#include <unordered_set>

#include "bitstream/parser.hpp"
#include "util/error.hpp"

namespace prcost {
namespace {

/// One scan counting the RLE runs in `words` (each run emits a
/// (count, word) pair), shared by rle_compress and measure_rle.
u64 count_runs(std::span<const u32> words) {
  u64 runs = 0;
  std::size_t i = 0;
  while (i < words.size()) {
    const u32 word = words[i];
    std::size_t run = 1;
    while (i + run < words.size() && words[i + run] == word &&
           run < 0xFFFFFFFFu) {
      ++run;
    }
    ++runs;
    i += run;
  }
  return runs;
}

}  // namespace

std::vector<u32> rle_compress(std::span<const u32> words) {
  std::vector<u32> out;
  out.reserve(2 * count_runs(words));
  std::size_t i = 0;
  while (i < words.size()) {
    const u32 word = words[i];
    u32 run = 1;
    while (i + run < words.size() && words[i + run] == word &&
           run < 0xFFFFFFFFu) {
      ++run;
    }
    out.push_back(run);
    out.push_back(word);
    i += run;
  }
  return out;
}

std::vector<u32> rle_decompress(std::span<const u32> pairs) {
  if (pairs.size() % 2 != 0) {
    throw ParseError{"rle_decompress: odd pair stream"};
  }
  u64 total = 0;
  for (std::size_t i = 0; i < pairs.size(); i += 2) {
    total = checked_add(total, pairs[i]);
  }
  std::vector<u32> out;
  out.reserve(total);
  for (std::size_t i = 0; i < pairs.size(); i += 2) {
    out.insert(out.end(), pairs[i], pairs[i + 1]);
  }
  return out;
}

CompressionStats measure_rle(std::span<const u32> words) {
  CompressionStats stats;
  stats.original_words = words.size();
  stats.compressed_words = 2 * count_runs(words);
  return stats;
}

double FrameRedundancy::mfwr_ratio(u32 frame_size) const {
  if (total_frames == 0) return 1.0;
  const double full = static_cast<double>(total_frames) * frame_size;
  const double compressed =
      static_cast<double>(unique_frames) * frame_size +
      3.0 * static_cast<double>(total_frames - unique_frames);
  return compressed / full;
}

FrameRedundancy analyze_frames(std::span<const u32> payload, u32 frame_size) {
  if (frame_size == 0) throw ContractError{"analyze_frames: zero frame size"};
  if (payload.size() % frame_size != 0) {
    throw ContractError{"analyze_frames: payload not frame-aligned"};
  }
  FrameRedundancy result;
  std::unordered_set<std::string> seen;
  for (std::size_t f = 0; f < payload.size() / frame_size; ++f) {
    const auto frame = payload.subspan(f * frame_size, frame_size);
    ++result.total_frames;
    bool zero = true;
    std::string key;
    key.reserve(frame_size * 4);
    for (const u32 word : frame) {
      if (word != 0) zero = false;
      key.append(reinterpret_cast<const char*>(&word), 4);
    }
    if (zero) ++result.zero_frames;
    if (seen.insert(std::move(key)).second) ++result.unique_frames;
  }
  return result;
}

FrameRedundancy analyze_bitstream_frames(std::span<const u32> bitstream,
                                         Family family) {
  const BitstreamLayout layout = parse_bitstream(bitstream, family);
  const u32 frame_size = traits(family).frame_size;
  FrameRedundancy total;
  std::unordered_set<std::string> seen;
  for (const FdriBurst& burst : layout.bursts) {
    const auto payload =
        bitstream.subspan(burst.offset_words, burst.words);
    for (std::size_t f = 0; f < burst.frames; ++f) {
      const auto frame = payload.subspan(f * frame_size, frame_size);
      ++total.total_frames;
      bool zero = true;
      std::string key;
      key.reserve(frame_size * 4);
      for (const u32 word : frame) {
        if (word != 0) zero = false;
        key.append(reinterpret_cast<const char*>(&word), 4);
      }
      if (zero) ++total.zero_frames;
      if (seen.insert(std::move(key)).second) ++total.unique_frames;
    }
  }
  return total;
}

}  // namespace prcost
