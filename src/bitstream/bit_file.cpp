#include "bitstream/bit_file.hpp"

#include "bitstream/generator.hpp"
#include "util/error.hpp"

namespace prcost {
namespace {

// 13-byte magic preamble used by the de-facto .bit format.
constexpr std::uint8_t kMagic[] = {0x00, 0x09, 0x0F, 0xF0, 0x0F, 0xF0, 0x0F,
                                   0xF0, 0x0F, 0xF0, 0x00, 0x00, 0x01};

void put_u16(std::vector<std::uint8_t>& out, u32 value) {
  out.push_back(static_cast<std::uint8_t>((value >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>(value & 0xFF));
}

void put_u32(std::vector<std::uint8_t>& out, u64 value) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>((value >> shift) & 0xFF));
  }
}

void put_string_field(std::vector<std::uint8_t>& out, char tag,
                      const std::string& value) {
  out.push_back(static_cast<std::uint8_t>(tag));
  put_u16(out, narrow<u32>(value.size() + 1));
  out.insert(out.end(), value.begin(), value.end());
  out.push_back(0);
}

struct Reader {
  std::span<const std::uint8_t> bytes;
  std::size_t pos = 0;

  std::uint8_t u8() {
    if (pos >= bytes.size()) throw ParseError{"bit file: truncated"};
    return bytes[pos++];
  }
  u32 u16() {
    const u32 high = u8();
    return (high << 8) | u8();
  }
  u64 u32be() {
    u64 value = 0;
    for (int i = 0; i < 4; ++i) value = (value << 8) | u8();
    return value;
  }
  std::string string_field() {
    const u32 length = u16();
    if (length == 0) throw ParseError{"bit file: empty string field"};
    std::string value;
    for (u32 i = 0; i + 1 < length; ++i) {
      value.push_back(static_cast<char>(u8()));
    }
    if (u8() != 0) throw ParseError{"bit file: unterminated string"};
    return value;
  }
};

}  // namespace

std::vector<std::uint8_t> write_bit_file(const BitFile& file) {
  std::vector<std::uint8_t> out;
  out.reserve(64 + file.payload.size());
  for (const std::uint8_t magic_byte : kMagic) out.push_back(magic_byte);
  put_string_field(out, 'a', file.design_name);
  put_string_field(out, 'b', file.part_name);
  put_string_field(out, 'c', file.date);
  put_string_field(out, 'd', file.time);
  out.push_back('e');
  put_u32(out, file.payload.size());
  out.insert(out.end(), file.payload.begin(), file.payload.end());
  return out;
}

BitFile read_bit_file(std::span<const std::uint8_t> bytes) {
  Reader reader{bytes};
  for (const std::uint8_t magic_byte : kMagic) {
    if (reader.u8() != magic_byte) {
      throw ParseError{"bit file: bad magic preamble"};
    }
  }
  BitFile file;
  // The 'a' tag doubles as the first field marker.
  if (reader.u8() != 'a') throw ParseError{"bit file: missing 'a' field"};
  file.design_name = reader.string_field();
  while (reader.pos < bytes.size()) {
    const char tag = static_cast<char>(reader.u8());
    switch (tag) {
      case 'b': file.part_name = reader.string_field(); break;
      case 'c': file.date = reader.string_field(); break;
      case 'd': file.time = reader.string_field(); break;
      case 'e': {
        const u64 count = reader.u32be();
        if (reader.pos + count > bytes.size()) {
          throw ParseError{"bit file: payload length exceeds file"};
        }
        file.payload.reserve(count);
        for (u64 i = 0; i < count; ++i) {
          file.payload.push_back(bytes[reader.pos + i]);
        }
        return file;
      }
      default:
        throw ParseError{"bit file: unknown field tag"};
    }
  }
  throw ParseError{"bit file: missing 'e' payload field"};
}

std::vector<std::uint8_t> strip_bit_header(
    std::span<const std::uint8_t> bytes) {
  return read_bit_file(bytes).payload;
}

std::vector<std::uint8_t> package_bit_file(std::span<const u32> words,
                                           Family family,
                                           const std::string& design_name,
                                           const std::string& part_name) {
  BitFile file;
  file.design_name = design_name + ".ncd;UserID=0xFFFFFFFF";
  file.part_name = part_name;
  file.date = "2015/05/25";  // fixed metadata keeps outputs reproducible
  file.time = "10:31:07";
  file.payload = to_bytes(std::vector<u32>{words.begin(), words.end()},
                          family);
  return write_bit_file(file);
}

}  // namespace prcost
