#include "htr/defrag.hpp"

#include <algorithm>

#include "htr/relocation.hpp"

namespace prcost {

u64 largest_free_rect(const Floorplanner& floorplanner,
                      const Fabric& fabric) {
  // Brute force over all rectangles; fabrics are at most ~80 x 8 cells.
  u64 best = 0;
  for (u32 col = 0; col < fabric.num_columns(); ++col) {
    for (u32 row = 0; row < fabric.rows(); ++row) {
      for (u32 width = 1; col + width <= fabric.num_columns(); ++width) {
        if (!floorplanner.rect_free(col, width, row, 1)) break;
        u32 height = 1;
        while (row + height + 1 <= fabric.rows() &&
               floorplanner.rect_free(col, width, row + height, 1)) {
          ++height;
        }
        best = std::max(best, u64{width} * height);
      }
    }
  }
  return best;
}

DefragReport compact(Floorplanner& floorplanner, const Fabric& fabric,
                     ConfigMemory* cm) {
  DefragReport report;
  report.largest_free_before = largest_free_rect(floorplanner, fabric);

  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < floorplanner.placements().size(); ++i) {
      const PlacedPrr placed = floorplanner.placements()[i];
      const ColumnDemand composition =
          fabric.window_composition(placed.plan.window);
      // Candidate targets: identical-sequence windows, left-to-right,
      // bottom-up; take the first strictly "earlier" free one.
      bool moved = false;
      for (const ColumnWindow& window :
           fabric.find_all_windows_superset(composition,
                                            placed.plan.window.width)) {
        if (!windows_compatible(fabric, placed.plan.window, window)) continue;
        for (u32 row = 0;
             row + placed.plan.organization.h <= fabric.rows(); ++row) {
          const bool earlier =
              window.first_col < placed.first_col ||
              (window.first_col == placed.first_col &&
               row < placed.first_row);
          if (!earlier) break;  // rows ascend; later windows only get worse
          // Free after discounting the placement itself? The mover checks;
          // pre-filter cheaply for full freeness to skip obvious clashes
          // (self-overlapping slides are rejected by move_placement).
          if (!floorplanner.rect_free(window.first_col, window.width, row,
                                      placed.plan.organization.h)) {
            continue;
          }
          if (cm != nullptr) {
            const RelocationResult moved_frames = relocate_region(
                *cm, placed.plan.window, placed.first_row, window, row,
                placed.plan.organization.h);
            if (!moved_frames.ok) continue;
            report.frames_copied += moved_frames.frames_copied;
          }
          floorplanner.move_placement(i, window, row);
          ++report.moves;
          moved = true;
          progress = true;
          break;
        }
        if (moved) break;
      }
    }
  }
  report.largest_free_after = largest_free_rect(floorplanner, fabric);
  return report;
}

}  // namespace prcost
