#include "htr/defrag.hpp"

#include "htr/relocation.hpp"

namespace prcost {

u64 largest_free_rect(const Floorplanner& floorplanner,
                      const Fabric& fabric) {
  (void)fabric;  // geometry lives in the grid now
  return floorplanner.grid().largest_clear_rect();
}

u64 plan_compaction(Floorplanner& floorplanner, const Fabric& fabric,
                    ConfigMemory* cm,
                    const std::function<void(const SlideMove&)>& sink) {
  u64 moves = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < floorplanner.placements().size(); ++i) {
      const PlacedPrr placed = floorplanner.placements()[i];
      const ColumnDemand composition =
          fabric.window_composition(placed.plan.window);
      // Candidate targets: identical-sequence windows, left-to-right,
      // bottom-up; take the first strictly "earlier" free one.
      bool moved = false;
      for (const ColumnWindow& window :
           fabric.find_all_windows_superset(composition,
                                            placed.plan.window.width)) {
        if (!windows_compatible(fabric, placed.plan.window, window)) continue;
        for (u32 row = 0;
             row + placed.plan.organization.h <= fabric.rows(); ++row) {
          const bool earlier =
              window.first_col < placed.first_col ||
              (window.first_col == placed.first_col &&
               row < placed.first_row);
          if (!earlier) break;  // rows ascend; later windows only get worse
          // Free after discounting the placement itself? The mover checks;
          // pre-filter cheaply for full freeness to skip obvious clashes
          // (self-overlapping slides are rejected by move_placement).
          if (!floorplanner.rect_free(window.first_col, window.width, row,
                                      placed.plan.organization.h)) {
            continue;
          }
          SlideMove slide;
          slide.index = i;
          slide.name = placed.name;
          slide.from = placed.plan.window;
          slide.from_row = placed.first_row;
          slide.to = window;
          slide.to_row = row;
          slide.organization = placed.plan.organization;
          if (cm != nullptr) {
            const RelocationResult moved_frames = relocate_region(
                *cm, placed.plan.window, placed.first_row, window, row,
                placed.plan.organization.h);
            if (!moved_frames.ok) continue;
            slide.frames_copied = moved_frames.frames_copied;
          }
          floorplanner.move_placement(i, window, row);
          ++moves;
          if (sink) sink(slide);
          moved = true;
          progress = true;
          break;
        }
        if (moved) break;
      }
    }
  }
  return moves;
}

DefragReport compact(Floorplanner& floorplanner, const Fabric& fabric,
                     ConfigMemory* cm) {
  DefragReport report;
  report.largest_free_before = largest_free_rect(floorplanner, fabric);
  report.moves = plan_compaction(
      floorplanner, fabric, cm,
      [&](const SlideMove& slide) { report.frames_copied += slide.frames_copied; });
  report.largest_free_after = largest_free_rect(floorplanner, fabric);
  return report;
}

}  // namespace prcost
