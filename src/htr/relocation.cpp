#include "htr/relocation.hpp"

#include "util/error.hpp"

namespace prcost {

bool windows_compatible(const Fabric& fabric, const ColumnWindow& a,
                        const ColumnWindow& b) {
  if (a.width != b.width) return false;
  if (a.first_col + a.width > fabric.num_columns() ||
      b.first_col + b.width > fabric.num_columns()) {
    return false;
  }
  for (u32 i = 0; i < a.width; ++i) {
    if (fabric.column(a.first_col + i) != fabric.column(b.first_col + i)) {
      return false;
    }
  }
  return true;
}

RelocationResult relocate_region(ConfigMemory& cm, const ColumnWindow& src,
                                 u32 src_first_row, const ColumnWindow& dst,
                                 u32 dst_first_row, u32 h) {
  RelocationResult result;
  const Fabric& fabric = cm.fabric();
  if (!windows_compatible(fabric, src, dst)) {
    result.reason = "source and destination windows are not compatible";
    return result;
  }
  if (src_first_row + h > fabric.rows() || dst_first_row + h > fabric.rows()) {
    result.reason = "region exceeds fabric rows";
    return result;
  }
  if (h == 0) {
    result.reason = "empty region";
    return result;
  }

  // Frame counts per row for each block type over the window.
  u64 cfg_frames = 0;
  u64 bram_frames = 0;
  for (u32 c = src.first_col; c < src.first_col + src.width; ++c) {
    cfg_frames += cm.frames_in_column(c, FrameBlock::kInterconnect);
    bram_frames += cm.frames_in_column(c, FrameBlock::kBramContent);
  }

  for (u32 row = 0; row < h; ++row) {
    const auto copy = [&](FrameBlock block, u64 frame_count) {
      if (frame_count == 0) return;
      const FrameAddress from{block, src_first_row + row, src.first_col, 0};
      const FrameAddress to{block, dst_first_row + row, dst.first_col, 0};
      const std::vector<u32> words = cm.read_burst(from, frame_count);
      cm.write_burst(to, words);
      result.frames_copied += frame_count;
      result.words_copied += words.size();
    };
    copy(FrameBlock::kInterconnect, cfg_frames);
    copy(FrameBlock::kBramContent, bram_frames);
  }
  result.ok = true;
  return result;
}

ContextCost context_cost(const PrrOrganization& org, const FamilyTraits& t) {
  if (org.h == 0 || org.width() == 0) {
    throw ContractError{"context_cost: empty organization"};
  }
  // Readback returns the same frame payloads the partial bitstream writes
  // (config frames + BRAM content), plus one pipeline frame per burst and
  // a FAR/FDRO command group per row - mirroring Eqs. (19)/(23) on the
  // read path.
  const u64 cfg_frames = u64{org.columns.clb_cols} * t.cf_clb +
                         u64{org.columns.dsp_cols} * t.cf_dsp +
                         u64{org.columns.bram_cols} * t.cf_bram;
  const u64 cfg_words_row =
      t.far_fdri + (cfg_frames + 1) * u64{t.frame_size};
  const u64 bram_words_row =
      org.columns.bram_cols > 0
          ? t.far_fdri +
                (u64{org.columns.bram_cols} * t.df_bram + 1) * t.frame_size
          : 0;
  ContextCost cost;
  cost.save_bytes =
      (org.h * (cfg_words_row + bram_words_row)) * u64{t.bytes_word};
  // Restore re-writes the same frames plus the GRESTORE/GCAPTURE command
  // packets (folded into the per-row group already).
  cost.restore_bytes = cost.save_bytes;
  return cost;
}

RelocationTime relocation_time(const PrrOrganization& org,
                               const FamilyTraits& t, const IcapModel& icap) {
  const ContextCost cost = context_cost(org, t);
  RelocationTime time;
  // GCAPTURE/GRESTORE are single command packets: a few ICAP words each.
  const double word_s = 1.0 / icap.clock_hz;
  time.capture_s = 8 * word_s;
  time.restore_s = 8 * word_s;
  time.readback_s = icap_write_seconds(icap, cost.save_bytes);
  time.rewrite_s = icap_write_seconds(icap, cost.restore_bytes);
  time.total_s =
      time.capture_s + time.readback_s + time.rewrite_s + time.restore_s;
  return time;
}

}  // namespace prcost
