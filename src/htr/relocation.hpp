// Hardware task relocation (HTR) and on-chip context save/restore.
//
// The authors' prior work, which these cost models originally served:
//  [5] Morales-Villanueva & Gordon-Ross, "On-chip context save and restore
//      of hardware tasks on partially reconfigurable FPGAs", FCCM'13.
//  [6] Morales-Villanueva & Gordon-Ross, "HTR: on-chip hardware task
//      relocation for partially reconfigurable FPGAs", ARC'13.
//
// Relocating a running PRM from one PRR to another means: capture its
// flip-flop state into the configuration memory (GCAPTURE), read the
// source PRR's frames back through the ICAP, retarget the frame addresses
// to the destination PRR, write them, and restore the captured state
// (GRESTORE). Two PRRs are relocation-compatible iff their column windows
// have the same width and the same left-to-right column-type sequence (the
// frames then map one-to-one).
//
// This module provides both the frame-level mechanism (on a ConfigMemory)
// and the time cost model that extends the paper's Eq. (18) accounting to
// the save/readback/restore path.
#pragma once

#include <string>

#include "bitstream/config_memory.hpp"
#include "cost/prr_search.hpp"
#include "reconfig/icap.hpp"

namespace prcost {

/// True iff the two windows have identical column-type sequences (frames
/// map one-to-one under a constant major-column offset).
bool windows_compatible(const Fabric& fabric, const ColumnWindow& a,
                        const ColumnWindow& b);

/// Outcome of a frame-level relocation.
struct RelocationResult {
  bool ok = false;
  std::string reason;        ///< set when !ok
  u64 frames_copied = 0;
  u64 words_copied = 0;
};

/// Copy every configuration (and BRAM-content) frame of the source region
/// to the destination region inside `cm`. Regions are `h` rows tall; their
/// windows must be compatible and both must fit the fabric rows.
RelocationResult relocate_region(ConfigMemory& cm, const ColumnWindow& src,
                                 u32 src_first_row, const ColumnWindow& dst,
                                 u32 dst_first_row, u32 h);

/// Context-size model: bytes that must cross the ICAP to save (read back)
/// or restore (write) one PRR's state. Same frame accounting as the
/// partial-bitstream model, with FAR/FDRO command overhead per row instead
/// of the full sync header.
struct ContextCost {
  u64 save_bytes = 0;      ///< readback traffic
  u64 restore_bytes = 0;   ///< write-back traffic
};
ContextCost context_cost(const PrrOrganization& org, const FamilyTraits& t);

/// Time model for one relocation: capture + readback + retarget (host
/// memory copy) + write + restore, serialized on the ICAP.
struct RelocationTime {
  double capture_s = 0;   ///< GCAPTURE command latency
  double readback_s = 0;  ///< save_bytes over the ICAP read path
  double rewrite_s = 0;   ///< restore_bytes over the ICAP write path
  double restore_s = 0;   ///< GRESTORE command latency
  double total_s = 0;
};
RelocationTime relocation_time(const PrrOrganization& org,
                               const FamilyTraits& t, const IcapModel& icap);

}  // namespace prcost
