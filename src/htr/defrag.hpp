// Fabric defragmentation via hardware task relocation.
//
// An online PR system allocates and frees PRRs as tasks come and go; the
// free space fragments until a large PRM cannot be placed even though the
// total free area would fit it. Because HTR can move a *live* PRR (its
// frames relocate through the ICAP, src/htr/relocation), the pool can be
// compacted at runtime - the systems payoff of the authors' HTR line of
// work, built here on the cost models' floorplanner.
#pragma once

#include "bitstream/config_memory.hpp"
#include "cost/floorplan.hpp"

namespace prcost {

/// Largest fully free rectangle (in fabric cells) - the defragmentation
/// quality metric: it bounds the biggest PRM placeable next.
u64 largest_free_rect(const Floorplanner& floorplanner, const Fabric& fabric);

/// One compaction run's outcome.
struct DefragReport {
  u64 moves = 0;                  ///< placements relocated
  u64 frames_copied = 0;          ///< CM frames moved (0 without a CM)
  u64 largest_free_before = 0;    ///< metric before compaction
  u64 largest_free_after = 0;     ///< metric after compaction
};

/// Compact `floorplanner` by sliding each placement to the left-most,
/// bottom-most compatible free rectangle (column windows must have the
/// identical type sequence so frames relocate one-to-one). Repeats until
/// no placement can move. When `cm` is non-null, the placements' live
/// frames are relocated too.
DefragReport compact(Floorplanner& floorplanner, const Fabric& fabric,
                     ConfigMemory* cm = nullptr);

}  // namespace prcost
