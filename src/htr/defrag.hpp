// Fabric defragmentation via hardware task relocation.
//
// An online PR system allocates and frees PRRs as tasks come and go; the
// free space fragments until a large PRM cannot be placed even though the
// total free area would fit it. Because HTR can move a *live* PRR (its
// frames relocate through the ICAP, src/htr/relocation), the pool can be
// compacted at runtime - the systems payoff of the authors' HTR line of
// work, built here on the cost models' floorplanner.
#pragma once

#include <functional>

#include "bitstream/config_memory.hpp"
#include "cost/floorplan.hpp"

namespace prcost {

/// Largest fully free rectangle (in fabric cells) - the defragmentation
/// quality metric: it bounds the biggest PRM placeable next.
u64 largest_free_rect(const Floorplanner& floorplanner, const Fabric& fabric);

/// One placement slide applied by the compaction planner. Emitted after
/// the floorplanner has already been updated, so `to`/`to_row` describe
/// the placement's current rectangle.
struct SlideMove {
  std::size_t index = 0;          ///< placement index at apply time
  std::string name;               ///< placement name
  ColumnWindow from;              ///< source window
  u32 from_row = 0;
  ColumnWindow to;                ///< destination window
  u32 to_row = 0;
  PrrOrganization organization;   ///< for relocation-time costing
  u64 frames_copied = 0;          ///< CM frames moved (0 without a CM)
};

/// One compaction run's outcome.
struct DefragReport {
  u64 moves = 0;                  ///< placements relocated
  u64 frames_copied = 0;          ///< CM frames moved (0 without a CM)
  u64 largest_free_before = 0;    ///< metric before compaction
  u64 largest_free_after = 0;     ///< metric after compaction
};

/// The compaction planning loop shared by `compact` and the joint
/// optimizer's defrag-compact move: slide each placement to the left-most,
/// bottom-most compatible free rectangle (column windows must have the
/// identical type sequence so frames relocate one-to-one), repeating until
/// no placement can move. Mutates `floorplanner` (and `cm` when non-null)
/// as it goes and reports every applied slide through `sink`. Returns the
/// number of slides applied.
u64 plan_compaction(Floorplanner& floorplanner, const Fabric& fabric,
                    ConfigMemory* cm,
                    const std::function<void(const SlideMove&)>& sink);

/// Compact `floorplanner` by sliding each placement to the left-most,
/// bottom-most compatible free rectangle. When `cm` is non-null, the
/// placements' live frames are relocated too.
DefragReport compact(Floorplanner& floorplanner, const Fabric& fabric,
                     ConfigMemory* cm = nullptr);

}  // namespace prcost
