// Prior-work reconfiguration-time cost models (Related Work, Section II).
//
// These are the *published models*, distinct from the controller
// simulators in controllers.hpp: the ablation bench compares what each
// paper's formula predicts for the same partial bitstream, reproducing the
// Related-Work argument that none of them connected PRR organization to
// bitstream size.
#pragma once

#include <string>

#include "device/family_traits.hpp"
#include "reconfig/faults.hpp"
#include "reconfig/media.hpp"
#include "util/ints.hpp"

namespace prcost {

/// Papadimitriou et al. [7]: reconfiguration time as bitstream size over
/// media-class throughput, with the survey's reported 30-60% error band.
struct PapadimitriouEstimate {
  double nominal_s = 0.0;
  double low_s = 0.0;   ///< nominal * (1 - 0.3)
  double high_s = 0.0;  ///< nominal * (1 + 0.6)
};
PapadimitriouEstimate papadimitriou_model(u64 bytes, StorageMedia media);

/// Claus et al. [1]: ICAP-centric formula T = size / (width * f * (1-busy)).
/// Only valid when the ICAP is the bottleneck - the function also reports
/// whether that precondition holds for the given media.
struct ClausEstimate {
  double seconds = 0.0;
  bool icap_is_bottleneck = false;
};
ClausEstimate claus_model(u64 bytes, Family family, double busy_factor,
                          StorageMedia media);

/// Duhem et al. [2] FaRM read-back-free formula: T = size / throughput with
/// throughput = icap peak * overclock, scaled by compression.
double duhem_model(u64 bytes, Family family, double compression_ratio = 0.75,
                   double overclock = 1.25);

/// Closed-form expectation for a CRC-verified transfer with bounded retry
/// under i.i.d. per-attempt corruption probability p (the fault model
/// FaultInjector samples from): with n = max_retries + 1 attempts of
/// duration `attempt_s` each and the RetryPolicy backoff schedule,
///
///   P(success)        = 1 - p^n
///   E[attempts]       = (1 - p^n) / (1 - p)              (p < 1)
///   E[total time]     = E[attempts] * attempt_s
///                       + sum_{i=0}^{n-2} p^(i+1) * b * m^i
///
/// The ablation bench cross-checks simulated effective reconfiguration
/// time against this expectation.
struct RetryExpectation {
  double success_probability = 1.0;
  double expected_attempts = 1.0;
  double expected_time_s = 0.0;  ///< unconditional expected wall time
};
RetryExpectation expected_retry_cost(double attempt_s, double fault_rate,
                                     const RetryPolicy& policy);

}  // namespace prcost
