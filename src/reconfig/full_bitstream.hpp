// Full-device bitstream size - the non-PR baseline.
//
// Section I motivates PR against full reconfiguration: a full bitstream
// reconfigures every column of every row (including IOB and clock columns)
// and halts the whole device while it loads. This model extends the
// Eq. (18)-(23) accounting to the entire fabric so the multitasking
// ablation can quantify the paper's claim that a badly-sized PR system can
// be worse than the non-PR alternative (and a well-sized one better).
#pragma once

#include "device/fabric.hpp"

namespace prcost {

/// Size in bytes of a full configuration bitstream for `fabric`.
u64 full_bitstream_bytes(const Fabric& fabric);

}  // namespace prcost
