// Fault injection for the reconfiguration pipeline.
//
// The paper's Section III.C-IV models assume every ICAP transfer succeeds.
// Real PR runtimes do not: partial bitstreams arrive corrupted (media bit
// rot, DMA glitches), storage stalls, and transfers time out. This module
// makes those scenarios first-class and *deterministic*: a seedable
// FaultInjector decides, per transfer attempt, whether the delivered
// bitstream is corrupted (and how) and whether the media stalled, so every
// fault run is bit-reproducible from (--fault-seed, --fault-rate) alone.
//
// Two consumers:
//   - verified_transfer() (controllers.hpp): the CRC-verified transfer
//     loop asks next_attempt() for each attempt's fate and pays the
//     retry/backoff schedule in RetryPolicy.
//   - the corruption property test: corrupt()/apply() mutate concrete
//     bitstream word buffers (bit flips, dropped/duplicated words,
//     truncation, spliced garbage) to fuzz parse_bitstream.
#pragma once

#include <limits>
#include <string_view>
#include <vector>

#include "util/ints.hpp"
#include "util/rng.hpp"

namespace prcost {

/// What went wrong with one delivered bitstream (or nothing).
enum class FaultKind {
  kNone,      ///< transfer delivered intact
  kBitFlip,   ///< one configuration word has a flipped bit
  kWordDrop,  ///< one word missing (stream shifts left)
  kWordDup,   ///< one word duplicated (stream shifts right)
  kTruncate,  ///< stream cut short
  kSplice,    ///< a run of garbage words spliced in
};

std::string_view fault_kind_name(FaultKind kind);

/// Fault environment description. All-zero rates (the default) mean the
/// injector never fires and fault-aware paths behave identically to the
/// fault-free ones.
struct FaultProfile {
  double fault_rate = 0.0;  ///< P(an attempt delivers a corrupted stream)
  double stall_rate = 0.0;  ///< P(the media stalls during an attempt)
  double stall_s = 2.0e-3;  ///< added fetch time per stall
  u64 seed = 0x5EED;        ///< deterministic fault sequence seed

  bool active() const { return fault_rate > 0.0 || stall_rate > 0.0; }
};

/// Retry discipline for CRC-verified transfers: bounded retries with
/// exponential backoff and an optional per-attempt timeout.
struct RetryPolicy {
  u32 max_retries = 3;            ///< retries after the first attempt
  double backoff_initial_s = 10e-6;  ///< delay before the first retry
  double backoff_multiplier = 2.0;   ///< exponential backoff growth
  double verify_s = 0.0;          ///< per-attempt CRC verification overhead
  /// Per-attempt wall-clock cap; an attempt that would exceed it is
  /// abandoned at the cap and counts as failed.
  double attempt_timeout_s = std::numeric_limits<double>::infinity();
};

/// Deterministic, seedable fault source. Each next_attempt() call draws
/// the fate of one transfer attempt; the sequence is a pure function of
/// the profile seed and the call order.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultProfile& profile);

  /// Fate of one transfer attempt.
  struct Attempt {
    FaultKind kind = FaultKind::kNone;  ///< corruption kind (kNone = intact)
    double stall_s = 0.0;               ///< media stall added to this attempt
    bool corrupted() const { return kind != FaultKind::kNone; }
  };

  /// Draw the next attempt's fate.
  Attempt next_attempt();

  /// Corrupt a concrete word buffer with a randomly chosen kind; returns
  /// the kind applied (kNone only for an empty buffer).
  FaultKind corrupt(std::vector<u32>& words);

  /// Apply one specific corruption to `words` using `rng` for positions.
  static void apply(std::vector<u32>& words, FaultKind kind, Rng& rng);

  const FaultProfile& profile() const { return profile_; }
  u64 attempts() const { return attempts_; }    ///< next_attempt() calls
  u64 corrupted() const { return corrupted_; }  ///< attempts corrupted
  u64 stalls() const { return stalls_; }        ///< attempts stalled

 private:
  FaultProfile profile_;
  Rng rng_;
  u64 attempts_ = 0;
  u64 corrupted_ = 0;
  u64 stalls_ = 0;
};

}  // namespace prcost
