#include "reconfig/icap.hpp"

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace prcost {

IcapModel default_icap(Family family) {
  switch (family) {
    case Family::kVirtex4: return IcapModel{4, 100.0e6};
    case Family::kVirtex5: return IcapModel{4, 100.0e6};
    case Family::kVirtex6: return IcapModel{4, 100.0e6};
    case Family::kSeries7: return IcapModel{4, 100.0e6};
    case Family::kSpartan6: return IcapModel{2, 100.0e6};  // 16-bit ICAP
  }
  throw ContractError{"default_icap: unknown family"};
}

double icap_write_seconds(const IcapModel& icap, u64 bytes,
                          double busy_factor) {
  if (busy_factor < 0.0 || busy_factor >= 1.0) {
    throw ContractError{"icap_write_seconds: busy factor must be in [0,1)"};
  }
  const double effective = icap.peak_bytes_per_s() * (1.0 - busy_factor);
  PRCOST_COUNT("reconfig.icap_writes");
  PRCOST_COUNT_N("reconfig.icap_bytes", bytes);
  return static_cast<double>(bytes) / effective;
}

}  // namespace prcost
