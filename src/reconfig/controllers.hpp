// Reconfiguration controller models - the Related-Work baselines.
//
// The paper's position is that prior cost models each covered one slice of
// the problem: Liu et al. [4] compared ICAP controller designs (CPU-driven
// vs DMA), Claus et al. [1] modeled ICAP contention via a busy factor, and
// Duhem et al. [2] built FaRM (preloading + burst transfers). Implementing
// all three lets the ablation benches place the paper's bitstream-size
// model inside an end-to-end reconfiguration-time estimate and compare
// controller choices on equal footing.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "reconfig/faults.hpp"
#include "reconfig/icap.hpp"
#include "reconfig/media.hpp"

namespace prcost {

/// One reconfiguration-time estimate with its breakdown.
struct ReconfigEstimate {
  double total_s = 0.0;
  double fetch_s = 0.0;     ///< media -> controller
  double write_s = 0.0;     ///< controller -> ICAP
  double overhead_s = 0.0;  ///< software / descriptor setup
};

/// Abstract controller: time to push `bytes` of partial bitstream from
/// `media` through the ICAP.
class ReconfigController {
 public:
  virtual ~ReconfigController() = default;
  virtual std::string name() const = 0;
  virtual ReconfigEstimate estimate(u64 bytes, StorageMedia media) const = 0;
};

/// CPU-driven ICAP: the processor copies words one at a time; fetch and
/// ICAP write serialize, plus a hefty per-word software overhead
/// (Liu'09's baseline design, the slowest in their comparison).
class CpuIcapController final : public ReconfigController {
 public:
  explicit CpuIcapController(IcapModel icap, double per_word_overhead_s = 2e-8)
      : icap_(icap), per_word_overhead_s_(per_word_overhead_s) {}
  std::string name() const override { return "CPU-ICAP"; }
  ReconfigEstimate estimate(u64 bytes, StorageMedia media) const override;

 private:
  IcapModel icap_;
  double per_word_overhead_s_;
};

/// DMA-driven ICAP (Liu'09): fetch and write overlap; throughput is the
/// slower of media bandwidth and ICAP bandwidth, plus descriptor setup.
class DmaIcapController final : public ReconfigController {
 public:
  explicit DmaIcapController(IcapModel icap, double setup_s = 10e-6)
      : icap_(icap), setup_s_(setup_s) {}
  std::string name() const override { return "DMA-ICAP"; }
  ReconfigEstimate estimate(u64 bytes, StorageMedia media) const override;

 private:
  IcapModel icap_;
  double setup_s_;
};

/// FaRM (Duhem'12): DMA plus an on-chip FIFO preload and optional
/// bitstream compression; the ICAP runs at its overclocked rate during the
/// burst.
class FarmController final : public ReconfigController {
 public:
  FarmController(IcapModel icap, double compression_ratio = 0.75,
                 double overclock = 1.25, double setup_s = 5e-6);
  std::string name() const override { return "FaRM"; }
  ReconfigEstimate estimate(u64 bytes, StorageMedia media) const override;

 private:
  IcapModel icap_;
  double compression_ratio_;  ///< compressed/original size, in (0,1]
  double overclock_;          ///< ICAP clock multiplier during bursts
  double setup_s_;
};

/// Claus'08 busy-factor wrapper: scales another controller's ICAP phase by
/// shared-resource contention.
class BusyFactorController final : public ReconfigController {
 public:
  BusyFactorController(std::shared_ptr<const ReconfigController> inner,
                       double busy_factor);
  std::string name() const override;
  ReconfigEstimate estimate(u64 bytes, StorageMedia media) const override;

 private:
  std::shared_ptr<const ReconfigController> inner_;
  double busy_factor_;
};

/// All standard controllers for `family` (CPU, DMA, FaRM).
std::vector<std::shared_ptr<const ReconfigController>> standard_controllers(
    Family family);

/// Outcome of one CRC-verified transfer (possibly several attempts).
struct TransferOutcome {
  bool success = true;
  u32 attempts = 1;        ///< transfer attempts made (>= 1)
  u64 stalls = 0;          ///< attempts that hit a media stall
  u64 timeouts = 0;        ///< attempts abandoned at the per-attempt cap
  double total_s = 0.0;    ///< wall time: all attempts + verify + backoff
  double backoff_s = 0.0;  ///< time spent backing off between attempts
  double wasted_s = 0.0;   ///< failed attempts + backoff (total - useful)
  ReconfigEstimate last;   ///< estimate of the final attempt's transfer
};

/// CRC-verified transfer: push `bytes` through `controller`, verify the
/// configuration CRC, and retry on corruption or timeout with exponential
/// backoff per `policy`. `faults` decides each attempt's fate; with a null
/// injector (or one whose rates are zero) the transfer succeeds on the
/// first attempt and total_s equals controller.estimate(...).total_s
/// exactly - the fault-free path adds nothing. After max_retries
/// exhausted the outcome reports success=false; callers degrade (drop or
/// reschedule), they do not throw.
TransferOutcome verified_transfer(const ReconfigController& controller,
                                  u64 bytes, StorageMedia media,
                                  FaultInjector* faults = nullptr,
                                  const RetryPolicy& policy = {});

}  // namespace prcost
