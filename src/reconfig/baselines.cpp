#include "reconfig/baselines.hpp"

#include "reconfig/icap.hpp"
#include "util/error.hpp"

namespace prcost {

PapadimitriouEstimate papadimitriou_model(u64 bytes, StorageMedia media) {
  PapadimitriouEstimate e;
  e.nominal_s = fetch_seconds(media, bytes);
  e.low_s = e.nominal_s * 0.7;
  e.high_s = e.nominal_s * 1.6;
  return e;
}

ClausEstimate claus_model(u64 bytes, Family family, double busy_factor,
                          StorageMedia media) {
  const IcapModel icap = default_icap(family);
  ClausEstimate e;
  e.seconds = icap_write_seconds(icap, bytes, busy_factor);
  // Precondition: media must feed the ICAP at least as fast as it drains.
  e.icap_is_bottleneck = media_model(media).bandwidth_bytes_per_s >=
                         icap.peak_bytes_per_s() * (1.0 - busy_factor);
  return e;
}

double duhem_model(u64 bytes, Family family, double compression_ratio,
                   double overclock) {
  if (compression_ratio <= 0.0 || compression_ratio > 1.0) {
    throw ContractError{"duhem_model: compression ratio out of (0,1]"};
  }
  const IcapModel icap = default_icap(family);
  const double throughput = icap.peak_bytes_per_s() * overclock;
  return static_cast<double>(bytes) * compression_ratio / throughput;
}

}  // namespace prcost
