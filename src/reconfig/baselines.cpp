#include "reconfig/baselines.hpp"

#include "reconfig/icap.hpp"
#include "util/error.hpp"

namespace prcost {

PapadimitriouEstimate papadimitriou_model(u64 bytes, StorageMedia media) {
  PapadimitriouEstimate e;
  e.nominal_s = fetch_seconds(media, bytes);
  e.low_s = e.nominal_s * 0.7;
  e.high_s = e.nominal_s * 1.6;
  return e;
}

ClausEstimate claus_model(u64 bytes, Family family, double busy_factor,
                          StorageMedia media) {
  const IcapModel icap = default_icap(family);
  ClausEstimate e;
  e.seconds = icap_write_seconds(icap, bytes, busy_factor);
  // Precondition: media must feed the ICAP at least as fast as it drains.
  e.icap_is_bottleneck = media_model(media).bandwidth_bytes_per_s >=
                         icap.peak_bytes_per_s() * (1.0 - busy_factor);
  return e;
}

double duhem_model(u64 bytes, Family family, double compression_ratio,
                   double overclock) {
  if (compression_ratio <= 0.0 || compression_ratio > 1.0) {
    throw ContractError{"duhem_model: compression ratio out of (0,1]"};
  }
  const IcapModel icap = default_icap(family);
  const double throughput = icap.peak_bytes_per_s() * overclock;
  return static_cast<double>(bytes) * compression_ratio / throughput;
}

RetryExpectation expected_retry_cost(double attempt_s, double fault_rate,
                                     const RetryPolicy& policy) {
  if (fault_rate < 0.0 || fault_rate > 1.0) {
    throw ContractError{"expected_retry_cost: fault rate out of [0,1]"};
  }
  const double p = fault_rate;
  const u32 n = policy.max_retries + 1;
  RetryExpectation e;
  double p_pow_n = 1.0;  // p^n via repeated multiply (n is small)
  for (u32 i = 0; i < n; ++i) p_pow_n *= p;
  e.success_probability = 1.0 - p_pow_n;
  // E[attempts] = sum_{k=0}^{n-1} p^k: attempt k+1 runs iff the first k
  // all failed.
  if (p < 1.0) {
    e.expected_attempts = (1.0 - p_pow_n) / (1.0 - p);
  } else {
    e.expected_attempts = static_cast<double>(n);
  }
  // Backoff i (after attempt i+1 fails) occurs with probability p^(i+1).
  double backoff = policy.backoff_initial_s;
  double p_pow = p;
  double expected_backoff = 0.0;
  for (u32 i = 0; i + 1 < n; ++i) {
    expected_backoff += p_pow * backoff;
    backoff *= policy.backoff_multiplier;
    p_pow *= p;
  }
  e.expected_time_s = e.expected_attempts * attempt_s + expected_backoff;
  return e;
}

}  // namespace prcost
