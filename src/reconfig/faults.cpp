#include "reconfig/faults.hpp"

#include <algorithm>
#include <cstddef>
#include <iterator>

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace prcost {

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kBitFlip: return "bit-flip";
    case FaultKind::kWordDrop: return "word-drop";
    case FaultKind::kWordDup: return "word-dup";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kSplice: return "splice";
  }
  return "?";
}

namespace {

/// Corruption kinds next_attempt()/corrupt() choose among, in draw order.
/// The order is part of the determinism contract: reordering changes every
/// seeded fault sequence.
constexpr FaultKind kCorruptionKinds[] = {
    FaultKind::kBitFlip, FaultKind::kWordDrop, FaultKind::kWordDup,
    FaultKind::kTruncate, FaultKind::kSplice};

}  // namespace

FaultInjector::FaultInjector(const FaultProfile& profile)
    : profile_(profile), rng_(profile.seed) {
  if (profile.fault_rate < 0.0 || profile.fault_rate > 1.0) {
    throw ContractError{"FaultInjector: fault rate out of [0,1]"};
  }
  if (profile.stall_rate < 0.0 || profile.stall_rate > 1.0) {
    throw ContractError{"FaultInjector: stall rate out of [0,1]"};
  }
  if (profile.stall_s < 0.0) {
    throw ContractError{"FaultInjector: negative stall time"};
  }
}

FaultInjector::Attempt FaultInjector::next_attempt() {
  ++attempts_;
  Attempt attempt;
  // Fixed draw order (corruption first, then stall) keeps the sequence a
  // pure function of the seed regardless of which rates are zero.
  if (rng_.chance(profile_.fault_rate)) {
    attempt.kind =
        kCorruptionKinds[rng_.below(std::size(kCorruptionKinds))];
    ++corrupted_;
    PRCOST_COUNT("reconfig.faults.injected");
  }
  if (rng_.chance(profile_.stall_rate)) {
    attempt.stall_s = profile_.stall_s;
    ++stalls_;
    PRCOST_COUNT("reconfig.faults.stalls");
  }
  return attempt;
}

FaultKind FaultInjector::corrupt(std::vector<u32>& words) {
  if (words.empty()) return FaultKind::kNone;
  const FaultKind kind =
      kCorruptionKinds[rng_.below(std::size(kCorruptionKinds))];
  apply(words, kind, rng_);
  return kind;
}

void FaultInjector::apply(std::vector<u32>& words, FaultKind kind, Rng& rng) {
  if (words.empty()) return;
  switch (kind) {
    case FaultKind::kNone:
      break;
    case FaultKind::kBitFlip: {
      const std::size_t pos = rng.below(words.size());
      words[pos] ^= 1u << rng.below(32);
      break;
    }
    case FaultKind::kWordDrop:
      words.erase(words.begin() +
                  static_cast<std::ptrdiff_t>(rng.below(words.size())));
      break;
    case FaultKind::kWordDup: {
      const std::size_t pos = rng.below(words.size());
      words.insert(words.begin() + static_cast<std::ptrdiff_t>(pos),
                   words[pos]);
      break;
    }
    case FaultKind::kTruncate:
      words.resize(rng.below(words.size()));
      break;
    case FaultKind::kSplice: {
      // Overwrite a short run with garbage words (length 1..8, clipped).
      const std::size_t start = rng.below(words.size());
      const std::size_t len =
          std::min<std::size_t>(1 + rng.below(8), words.size() - start);
      for (std::size_t i = 0; i < len; ++i) {
        words[start + i] = static_cast<u32>(rng());
      }
      break;
    }
  }
}

}  // namespace prcost
