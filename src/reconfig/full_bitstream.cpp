#include "reconfig/full_bitstream.hpp"

namespace prcost {

u64 full_bitstream_bytes(const Fabric& fabric) {
  const FamilyTraits& t = fabric.traits();
  // Configuration frames across one full row: every column participates.
  u64 frames_per_row = 0;
  for (u32 c = 0; c < fabric.num_columns(); ++c) {
    frames_per_row =
        checked_add(frames_per_row, config_frames(fabric.column(c), t));
  }
  const u64 config_words_per_row =
      t.far_fdri + checked_mul(frames_per_row + 1, t.frame_size);
  const u64 bram_cols = fabric.column_count(ColumnType::kBram);
  const u64 bram_words_per_row =
      bram_cols > 0
          ? t.far_fdri +
                checked_mul(checked_mul(bram_cols, t.df_bram) + 1,
                            t.frame_size)
          : 0;
  const u64 words =
      checked_add(t.iw, checked_add(checked_mul(fabric.rows(),
                                                config_words_per_row +
                                                    bram_words_per_row),
                                    t.fw));
  return checked_mul(words, t.bytes_word);
}

}  // namespace prcost
