#include "reconfig/controllers.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace prcost {
namespace {

/// Shared tally for every controller's estimate() entry point.
void note_estimate(u64 bytes) {
  PRCOST_COUNT("reconfig.estimates");
  PRCOST_HIST("reconfig.bytes_per_transfer", bytes, 1e3, 1e4, 1e5, 1e6, 1e7);
}

}  // namespace

ReconfigEstimate CpuIcapController::estimate(u64 bytes,
                                             StorageMedia media) const {
  note_estimate(bytes);
  ReconfigEstimate e;
  e.fetch_s = fetch_seconds(media, bytes);
  e.write_s = icap_write_seconds(icap_, bytes);
  e.overhead_s =
      per_word_overhead_s_ * static_cast<double>(bytes / icap_.port_bytes);
  e.total_s = e.fetch_s + e.write_s + e.overhead_s;  // fully serialized
  return e;
}

ReconfigEstimate DmaIcapController::estimate(u64 bytes,
                                             StorageMedia media) const {
  note_estimate(bytes);
  ReconfigEstimate e;
  e.fetch_s = fetch_seconds(media, bytes);
  e.write_s = icap_write_seconds(icap_, bytes);
  e.overhead_s = setup_s_;
  // Streaming DMA overlaps fetch and write: the pipeline drains at the
  // slower stage.
  e.total_s = std::max(e.fetch_s, e.write_s) + e.overhead_s;
  return e;
}

FarmController::FarmController(IcapModel icap, double compression_ratio,
                               double overclock, double setup_s)
    : icap_(icap),
      compression_ratio_(compression_ratio),
      overclock_(overclock),
      setup_s_(setup_s) {
  if (compression_ratio <= 0.0 || compression_ratio > 1.0) {
    throw ContractError{"FarmController: compression ratio out of (0,1]"};
  }
  if (overclock < 1.0) {
    throw ContractError{"FarmController: overclock below 1.0"};
  }
}

ReconfigEstimate FarmController::estimate(u64 bytes,
                                          StorageMedia media) const {
  note_estimate(bytes);
  ReconfigEstimate e;
  const auto compressed =
      static_cast<u64>(static_cast<double>(bytes) * compression_ratio_);
  e.fetch_s = fetch_seconds(media, compressed);
  IcapModel fast = icap_;
  fast.clock_hz *= overclock_;
  e.write_s = icap_write_seconds(fast, bytes);  // decompressed at the port
  e.overhead_s = setup_s_;
  e.total_s = std::max(e.fetch_s, e.write_s) + e.overhead_s;
  return e;
}

BusyFactorController::BusyFactorController(
    std::shared_ptr<const ReconfigController> inner, double busy_factor)
    : inner_(std::move(inner)), busy_factor_(busy_factor) {
  if (!inner_) throw ContractError{"BusyFactorController: null inner"};
  if (busy_factor_ < 0.0 || busy_factor_ >= 1.0) {
    throw ContractError{"BusyFactorController: busy factor out of [0,1)"};
  }
}

std::string BusyFactorController::name() const {
  return inner_->name() + "+busy";
}

ReconfigEstimate BusyFactorController::estimate(u64 bytes,
                                                StorageMedia media) const {
  ReconfigEstimate e = inner_->estimate(bytes, media);
  // Contention stretches the ICAP write phase (Claus'08).
  const double stretched = e.write_s / (1.0 - busy_factor_);
  e.total_s += stretched - e.write_s;
  e.write_s = stretched;
  return e;
}

std::vector<std::shared_ptr<const ReconfigController>> standard_controllers(
    Family family) {
  const IcapModel icap = default_icap(family);
  return {
      std::make_shared<CpuIcapController>(icap),
      std::make_shared<DmaIcapController>(icap),
      std::make_shared<FarmController>(icap),
  };
}

}  // namespace prcost
