#include "reconfig/controllers.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace prcost {
namespace {

/// Shared tally for every controller's estimate() entry point.
void note_estimate(u64 bytes) {
  PRCOST_COUNT("reconfig.estimates");
  PRCOST_HIST("reconfig.bytes_per_transfer", bytes, 1e3, 1e4, 1e5, 1e6, 1e7);
}

}  // namespace

ReconfigEstimate CpuIcapController::estimate(u64 bytes,
                                             StorageMedia media) const {
  note_estimate(bytes);
  ReconfigEstimate e;
  e.fetch_s = fetch_seconds(media, bytes);
  e.write_s = icap_write_seconds(icap_, bytes);
  e.overhead_s =
      per_word_overhead_s_ * static_cast<double>(bytes / icap_.port_bytes);
  e.total_s = e.fetch_s + e.write_s + e.overhead_s;  // fully serialized
  return e;
}

ReconfigEstimate DmaIcapController::estimate(u64 bytes,
                                             StorageMedia media) const {
  note_estimate(bytes);
  ReconfigEstimate e;
  e.fetch_s = fetch_seconds(media, bytes);
  e.write_s = icap_write_seconds(icap_, bytes);
  e.overhead_s = setup_s_;
  // Streaming DMA overlaps fetch and write: the pipeline drains at the
  // slower stage.
  e.total_s = std::max(e.fetch_s, e.write_s) + e.overhead_s;
  return e;
}

FarmController::FarmController(IcapModel icap, double compression_ratio,
                               double overclock, double setup_s)
    : icap_(icap),
      compression_ratio_(compression_ratio),
      overclock_(overclock),
      setup_s_(setup_s) {
  if (compression_ratio <= 0.0 || compression_ratio > 1.0) {
    throw ContractError{"FarmController: compression ratio out of (0,1]"};
  }
  if (overclock < 1.0) {
    throw ContractError{"FarmController: overclock below 1.0"};
  }
}

ReconfigEstimate FarmController::estimate(u64 bytes,
                                          StorageMedia media) const {
  note_estimate(bytes);
  ReconfigEstimate e;
  const auto compressed =
      static_cast<u64>(static_cast<double>(bytes) * compression_ratio_);
  e.fetch_s = fetch_seconds(media, compressed);
  IcapModel fast = icap_;
  fast.clock_hz *= overclock_;
  e.write_s = icap_write_seconds(fast, bytes);  // decompressed at the port
  e.overhead_s = setup_s_;
  e.total_s = std::max(e.fetch_s, e.write_s) + e.overhead_s;
  return e;
}

BusyFactorController::BusyFactorController(
    std::shared_ptr<const ReconfigController> inner, double busy_factor)
    : inner_(std::move(inner)), busy_factor_(busy_factor) {
  if (!inner_) throw ContractError{"BusyFactorController: null inner"};
  if (busy_factor_ < 0.0 || busy_factor_ >= 1.0) {
    throw ContractError{"BusyFactorController: busy factor out of [0,1)"};
  }
}

std::string BusyFactorController::name() const {
  return inner_->name() + "+busy";
}

ReconfigEstimate BusyFactorController::estimate(u64 bytes,
                                                StorageMedia media) const {
  ReconfigEstimate e = inner_->estimate(bytes, media);
  // Contention stretches the ICAP write phase (Claus'08).
  const double stretched = e.write_s / (1.0 - busy_factor_);
  e.total_s += stretched - e.write_s;
  e.write_s = stretched;
  return e;
}

std::vector<std::shared_ptr<const ReconfigController>> standard_controllers(
    Family family) {
  const IcapModel icap = default_icap(family);
  return {
      std::make_shared<CpuIcapController>(icap),
      std::make_shared<DmaIcapController>(icap),
      std::make_shared<FarmController>(icap),
  };
}

TransferOutcome verified_transfer(const ReconfigController& controller,
                                  u64 bytes, StorageMedia media,
                                  FaultInjector* faults,
                                  const RetryPolicy& policy) {
  if (policy.backoff_multiplier < 1.0) {
    throw ContractError{"verified_transfer: backoff multiplier below 1.0"};
  }
  if (policy.backoff_initial_s < 0.0 || policy.verify_s < 0.0 ||
      policy.attempt_timeout_s <= 0.0) {
    throw ContractError{"verified_transfer: negative retry parameter"};
  }

  TransferOutcome outcome;
  outcome.attempts = 0;
  double backoff = policy.backoff_initial_s;
  for (u32 attempt = 0; attempt <= policy.max_retries; ++attempt) {
    ++outcome.attempts;
    outcome.last = controller.estimate(bytes, media);
    const FaultInjector::Attempt fault =
        faults != nullptr ? faults->next_attempt() : FaultInjector::Attempt{};
    if (fault.stall_s > 0.0) ++outcome.stalls;
    double attempt_s = outcome.last.total_s + fault.stall_s + policy.verify_s;
    // An attempt over the cap is abandoned at the cap: the time is spent,
    // the PRR is not configured.
    const bool timed_out = attempt_s > policy.attempt_timeout_s;
    if (timed_out) {
      attempt_s = policy.attempt_timeout_s;
      ++outcome.timeouts;
      PRCOST_COUNT("reconfig.faults.timeouts");
    }
    outcome.total_s += attempt_s;
    PRCOST_COUNT("reconfig.retries.attempts");
    // A retry is any attempt beyond the first; attribute it to the request.
    if (attempt > 0) PRCOST_REQUEST_EVENT(kRetry);
    if (!fault.corrupted() && !timed_out) {
      outcome.success = true;
      if (attempt > 0) PRCOST_COUNT("reconfig.retries.recovered");
      return outcome;
    }
    outcome.wasted_s += attempt_s;
    if (attempt < policy.max_retries) {
      outcome.total_s += backoff;
      outcome.backoff_s += backoff;
      outcome.wasted_s += backoff;
      backoff *= policy.backoff_multiplier;
      PRCOST_COUNT("reconfig.retries.backoffs");
    }
  }
  outcome.success = false;
  PRCOST_COUNT("reconfig.retries.exhausted");
  return outcome;
}

}  // namespace prcost
