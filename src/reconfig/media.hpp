// Bitstream storage media models.
//
// Papadimitriou et al. [7] showed measured PRR reconfiguration time is
// dominated by where the partial bitstream is fetched from. Each media
// model is a simple bandwidth + fixed-latency pair; values follow the
// survey's measured ranges for Virtex-class platforms.
#pragma once

#include <string_view>

#include "util/ints.hpp"

namespace prcost {

/// Where partial bitstreams live before reconfiguration.
enum class StorageMedia {
  kCompactFlash,  ///< SystemACE / CF card
  kFlash,         ///< parallel NOR flash
  kDdrSdram,      ///< external DDR SDRAM
  kBram,          ///< preloaded on-chip BRAM cache
};

inline constexpr StorageMedia kAllMedia[] = {
    StorageMedia::kCompactFlash, StorageMedia::kFlash,
    StorageMedia::kDdrSdram, StorageMedia::kBram};

/// Bandwidth/latency description of one media.
struct MediaModel {
  std::string_view name;
  double bandwidth_bytes_per_s;  ///< sustained fetch bandwidth
  double latency_s;              ///< fixed per-transfer setup latency
};

/// Model for `media`.
const MediaModel& media_model(StorageMedia media);

/// "cf" | "flash" | "ddr" | "bram" (and the long display names) -> media;
/// throws UsageError listing the accepted spellings.
StorageMedia parse_media(std::string_view name);

/// Seconds to fetch `bytes` from `media` (latency + bytes/bandwidth).
double fetch_seconds(StorageMedia media, u64 bytes);

}  // namespace prcost
