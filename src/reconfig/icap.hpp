// Internal configuration access port (ICAP) model.
#pragma once

#include "device/family_traits.hpp"
#include "util/ints.hpp"

namespace prcost {

/// ICAP interface description: port width in bytes and clock frequency.
/// Virtex-4/5/6 ICAPs are 32-bit at up to 100 MHz (UG191): 400 MB/s peak.
struct IcapModel {
  u32 port_bytes = 4;
  double clock_hz = 100.0e6;

  /// Peak throughput in bytes/second.
  double peak_bytes_per_s() const { return port_bytes * clock_hz; }
};

/// Default ICAP for `family`.
IcapModel default_icap(Family family);

/// Seconds the ICAP itself needs to absorb `bytes` at `busy_factor`
/// contention (Claus et al. [1]: the effective throughput is the peak
/// scaled by the fraction of cycles the ICAP wins arbitration).
double icap_write_seconds(const IcapModel& icap, u64 bytes,
                          double busy_factor = 0.0);

}  // namespace prcost
