#include "reconfig/media.hpp"

#include <string>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace prcost {
namespace {

// Bandwidths follow the measured ranges surveyed in Papadimitriou et al.,
// TRETS 4(4): CF cards reach a few hundred KB/s through SystemACE, NOR
// flash a few MB/s, DDR SDRAM and preloaded BRAM saturate the ICAP.
constexpr MediaModel kModels[] = {
    {"CompactFlash", 500.0 * 1024.0, 2.0e-3},
    {"Flash", 20.0 * 1024.0 * 1024.0, 50.0e-6},
    {"DDR SDRAM", 800.0 * 1024.0 * 1024.0, 5.0e-6},
    {"BRAM", 1600.0 * 1024.0 * 1024.0, 1.0e-6},
};

}  // namespace

StorageMedia parse_media(std::string_view name) {
  const std::string lower = to_lower(name);
  if (lower == "cf" || lower == "compactflash") {
    return StorageMedia::kCompactFlash;
  }
  if (lower == "flash") return StorageMedia::kFlash;
  if (lower == "ddr" || lower == "sdram" || lower == "ddr sdram") {
    return StorageMedia::kDdrSdram;
  }
  if (lower == "bram") return StorageMedia::kBram;
  throw UsageError{"unknown storage media '" + std::string{name} +
                   "' (known: cf flash ddr bram)"};
}

const MediaModel& media_model(StorageMedia media) {
  switch (media) {
    case StorageMedia::kCompactFlash: return kModels[0];
    case StorageMedia::kFlash: return kModels[1];
    case StorageMedia::kDdrSdram: return kModels[2];
    case StorageMedia::kBram: return kModels[3];
  }
  throw ContractError{"media_model: unknown media"};
}

double fetch_seconds(StorageMedia media, u64 bytes) {
  const MediaModel& m = media_model(media);
  return m.latency_s + static_cast<double>(bytes) / m.bandwidth_bytes_per_s;
}

}  // namespace prcost
