// opt::Layout - the shared placement/occupancy substrate of the joint
// optimizer.
//
// A Layout is a non-owning view over a Floorplanner and its Fabric that
// adds the queries the optimizer's move generator needs on top of the raw
// placement API: fragmentation metrics over the occupancy BitGrid,
// relocation-target enumeration (HTR-compatible windows only, so every
// relocate move is physically realizable frame-for-frame), and an
// occupancy-consistency invariant used by the property tests. The DSE
// explorer and the HTR defragmenter keep talking to the Floorplanner
// directly; this view is how src/opt sees the same state.
#pragma once

#include <vector>

#include "cost/floorplan.hpp"

namespace prcost::opt {

/// Fragmentation snapshot of a layout.
struct FragmentationStats {
  u64 total_cells = 0;        ///< rows x columns
  u64 free_cells = 0;
  u64 largest_free_rect = 0;  ///< largest fully free rectangle (cells)
  /// 1 - largest_free_rect / free_cells: 0 when all free space is one
  /// rectangle, approaching 1 as the free pool shatters (0 when full).
  double fragmentation = 0.0;
};

/// One candidate rectangle a placement could relocate into.
struct RelocationTarget {
  ColumnWindow window;
  u32 first_row = 0;
};

class Layout {
 public:
  Layout(Floorplanner& floorplanner, const Fabric& fabric)
      : fp_(&floorplanner), fabric_(&fabric) {}

  Floorplanner& floorplanner() const { return *fp_; }
  const Fabric& fabric() const { return *fabric_; }

  FragmentationStats fragmentation() const;

  /// HTR-compatible free rectangles placement `index` could move to
  /// (identical column-type sequence, strictly different rectangle, free
  /// after discounting the placement itself), left-to-right bottom-up,
  /// capped at `max_targets`.
  std::vector<RelocationTarget> relocation_targets(std::size_t index,
                                                   std::size_t max_targets)
      const;

  /// Invariant: no two placements overlap, and every placement's cells
  /// are marked occupied in the grid. The property tests call this after
  /// every emitted move.
  bool consistent() const;

 private:
  Floorplanner* fp_;
  const Fabric* fabric_;
};

}  // namespace prcost::opt
