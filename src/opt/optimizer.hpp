// Joint partition-schedule-floorplan optimizer.
//
// Co-plans the PRR floorplan and the task schedule for a fleet of PRMs on
// one device: PRMs are grouped into shared PRRs (element-wise-max
// requirements, the paper's shared-PRR rule), groups are placed on the
// occupancy BitGrid through the floorplanner, and a simulated annealer
// explores ILP-lite neighborhood moves (swap / relocate / resize /
// defrag-compact, src/opt/moves.hpp). Every candidate layout is costed
// end to end through the existing models - partial bitstream size
// (Eq. 18-23) via the plan's BitstreamEstimate, reconfiguration time via
// the DMA-ICAP controller, and fault-aware effective reconfiguration time
// via expected_retry_cost - never through ad-hoc heuristics.
//
// Determinism: proposals are drawn serially from one seeded Rng (with the
// Metropolis acceptance uniform pre-drawn per proposal), evaluated
// speculatively in parallel on independent layout copies, and accepted by
// scanning proposals in draw order. A fixed proposals_per_round makes the
// result independent of worker count and machine.
#pragma once

#include <array>
#include <vector>

#include "device/device_db.hpp"
#include "multitask/workload.hpp"
#include "opt/moves.hpp"
#include "reconfig/media.hpp"

namespace prcost::opt {

/// One optimization problem: a PRM fleet with a group assignment and a
/// task list on a concrete device, plus static-region rectangles the
/// floorplan must work around.
struct OptInstance {
  const Device* device = nullptr;
  std::vector<PrmInfo> prms;
  std::vector<u32> group_of;   ///< per PRM: group id in [0, group_count)
  u32 group_count = 0;
  std::vector<HwTask> tasks;   ///< task.prm indexes `prms`
  struct Rect {
    u32 first_col = 0, width = 0, first_row = 0, height = 0;
  };
  std::vector<Rect> reserved;  ///< static regions (pre-marked occupied)
};

/// Deterministic synthetic fleet at bench scale: `prm_count` PRMs with
/// jittered requirements (large/small mix as in the defrag ablation),
/// `groups` shared PRRs (0 = auto scale), 2 tasks per PRM, and a few
/// scattered static-region rectangles that force fragmentation.
OptInstance make_prm_fleet(const Device& device, u32 prm_count, u32 groups,
                           u64 seed);

struct OptimizeOptions {
  u64 seed = 1;
  u32 rounds = 48;                 ///< annealing rounds
  u32 proposals_per_round = 8;     ///< fixed: determinism vs worker count
  double initial_temperature = 0;  ///< 0 = auto (5% of the greedy cost)
  double cooling = 0.92;           ///< temperature decay per round
  double fault_rate = 0.0;         ///< per-transfer corruption probability
  u32 max_retries = 3;
  StorageMedia media = StorageMedia::kDdrSdram;
  /// Scalarization weights: cost = reject_weight * rejected_prms
  /// + time_weight * makespan_s + move_weight * relocation_s.
  double reject_weight = 1000.0;
  double time_weight = 1.0;
  double move_weight = 0.1;
  std::size_t workers = 0;         ///< parallel evaluation width (0 = auto)
};

/// Full end-to-end cost of one layout (all terms, plus the scalar).
struct CostBreakdown {
  double cost = 0;            ///< scalarized objective
  u64 placed_groups = 0;
  u64 rejected_prms = 0;      ///< PRMs whose group has no PRR
  u64 rejected_tasks = 0;     ///< tasks of rejected PRMs
  double makespan_s = 0;      ///< max(busiest PRR, serialized ICAP)
  double busy_max_s = 0;
  double icap_s = 0;          ///< total ICAP time across all reconfigs
  double relocation_s = 0;    ///< runtime-move ICAP time spent so far
};

/// One layout plus the runtime-move budget already spent on it.
struct PlanState {
  Floorplanner fp;
  double relocation_spent_s = 0;

  explicit PlanState(const Fabric& fabric) : fp(fabric) {}
};

/// Shared-PRR requirement of group `g` (element-wise max over members).
PrmRequirements group_requirements(const OptInstance& instance, u32 g);

/// The group specs (name + merged requirement) the moves operate on.
std::vector<GroupSpec> group_specs(const OptInstance& instance);

/// Greedy baseline: reserve the static rectangles, then place groups in
/// index order; whatever does not fit is rejected. This is the flow the
/// annealer must beat.
PlanState greedy_plan(const OptInstance& instance,
                      const OptimizeOptions& options);

/// Fresh end-to-end evaluation of `state`: bitstream bytes from each
/// placed plan's Eq. 18-23 estimate, reconfiguration time through the
/// DMA-ICAP controller on `options.media`, effective (fault-aware) time
/// via expected_retry_cost, analytic makespan over per-group busy times
/// and the serialized ICAP. No incremental bookkeeping: accepted-move
/// deltas always match a re-evaluation by construction.
CostBreakdown evaluate(const OptInstance& instance, const PlanState& state,
                       const OptimizeOptions& options);

struct OptimizeResult {
  CostBreakdown greedy;  ///< baseline cost
  CostBreakdown best;    ///< after annealing
  u64 proposals = 0;
  u64 accepted = 0;
  std::array<u64, kMoveKinds> accepted_by_kind{};
  double final_temperature = 0;
  FragmentationStats greedy_frag;
  FragmentationStats best_frag;
  std::vector<PlacedPrr> placements;  ///< the optimized layout
  /// Re-evaluating the final layout from scratch reproduced `best.cost`
  /// exactly (the accepted-move cost-delta acceptance check).
  bool cost_verified = false;

  double greedy_rejection_rate(u64 prm_count) const {
    return prm_count == 0 ? 0.0
                          : static_cast<double>(greedy.rejected_prms) /
                                static_cast<double>(prm_count);
  }
  double best_rejection_rate(u64 prm_count) const {
    return prm_count == 0 ? 0.0
                          : static_cast<double>(best.rejected_prms) /
                                static_cast<double>(prm_count);
  }
};

class JointOptimizer {
 public:
  JointOptimizer(const OptInstance& instance, const OptimizeOptions& options);

  /// Run greedy + annealing and return both costs and the best layout.
  OptimizeResult run();

 private:
  const OptInstance* instance_;
  OptimizeOptions options_;
  std::vector<GroupSpec> groups_;
};

}  // namespace prcost::opt
