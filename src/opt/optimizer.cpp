#include "opt/optimizer.hpp"

#include <algorithm>
#include <cmath>

#include "cost/prr_model.hpp"
#include "obs/obs.hpp"
#include "reconfig/baselines.hpp"
#include "reconfig/controllers.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace prcost::opt {
namespace {

/// Rescue pass: try to place every unplaced group, in index order. Both
/// the greedy baseline and every annealing move end with this, so a move
/// that frees the right rectangle immediately converts a rejection into a
/// placement (which is how the annealer attacks the rejection rate).
void place_unplaced(Floorplanner& fp, std::span<const GroupSpec> groups) {
  for (const GroupSpec& group : groups) {
    if (placement_index_of(fp, group.name) != std::size_t(-1)) continue;
    fp.place(group.name, group.req, group.objective);
  }
}

}  // namespace

PrmRequirements group_requirements(const OptInstance& instance, u32 g) {
  PrmRequirements merged;
  for (std::size_t i = 0; i < instance.prms.size(); ++i) {
    if (instance.group_of[i] != g) continue;
    const PrmRequirements& req = instance.prms[i].req;
    merged.lut_ff_pairs = std::max(merged.lut_ff_pairs, req.lut_ff_pairs);
    merged.luts = std::max(merged.luts, req.luts);
    merged.ffs = std::max(merged.ffs, req.ffs);
    merged.dsps = std::max(merged.dsps, req.dsps);
    merged.brams = std::max(merged.brams, req.brams);
  }
  return merged;
}

std::vector<GroupSpec> group_specs(const OptInstance& instance) {
  std::vector<GroupSpec> groups;
  groups.reserve(instance.group_count);
  for (u32 g = 0; g < instance.group_count; ++g) {
    GroupSpec spec;
    spec.name = "g" + std::to_string(g);
    spec.req = group_requirements(instance, g);
    groups.push_back(std::move(spec));
  }
  return groups;
}

OptInstance make_prm_fleet(const Device& device, u32 prm_count, u32 groups,
                           u64 seed) {
  OptInstance instance;
  instance.device = &device;
  if (groups == 0) {
    groups = std::clamp<u32>(prm_count / 10, 4, 32);
  }
  instance.group_count = groups;
  Rng rng{seed};
  instance.prms.reserve(prm_count);
  instance.group_of.reserve(prm_count);
  // Size PRMs against a per-group LUT-FF budget so the element-wise-max
  // group requirements total ~80% of the fabric regardless of fleet
  // size: placement is then fragmentation-bound, not capacity-bound.
  // A group's requirement is the max over its members, so what matters
  // is the *top* of each jitter range, which we pin to the budget.
  const FamilyTraits& traits = device.fabric.traits();
  PrrOrganization cell;
  cell.h = 1;
  cell.columns.clb_cols = 1;
  const u64 lutff_per_cell = availability(cell, traits).clbs * traits.lut_clb;
  const u64 total_cells =
      u64{device.fabric.rows()} * device.fabric.num_columns();
  const u64 budget =
      std::max<u64>(total_cells * lutff_per_cell * 4 / (5 * groups), 200);
  for (u32 i = 0; i < prm_count; ++i) {
    // Mostly small PRMs with a rare large one (the defrag ablation's
    // jitter family, scaled to budget). DSP/BRAM demand is a per-group
    // trait: a group's requirement is the max over members, so per-PRM
    // probabilities would make *every* group demand the fabric's scarce
    // DSP/BRAM columns and capacity-bind the placement on them.
    const u32 g = static_cast<u32>(rng.below(groups));
    PrmRequirements req;
    const bool large = rng.below(8) == 0;
    req.lut_ff_pairs = large ? budget / 2 + rng.below(budget / 2 + 1)
                             : budget / 10 + rng.below(budget * 2 / 5 + 1);
    req.luts = req.lut_ff_pairs * 3 / 4;
    req.ffs = req.lut_ff_pairs / 2;
    if (g % 8 == 1 && rng.below(4) == 0) req.dsps = 1 + rng.below(2);
    if (g % 4 == 3 && rng.below(4) == 0) req.brams = 1;
    instance.prms.push_back(PrmInfo{"prm" + std::to_string(i), req, 0});
    instance.group_of.push_back(g);
  }
  // Two tasks per PRM with exponential service times.
  instance.tasks.reserve(std::size_t{prm_count} * 2);
  double arrival = 0;
  for (u32 t = 0; t < prm_count * 2; ++t) {
    arrival += rng.exponential(2.0e-3);
    HwTask task;
    task.name = "t" + std::to_string(t);
    task.prm = t % prm_count;
    task.arrival_s = arrival;
    task.exec_s = rng.exponential(5.0e-3);
    instance.tasks.push_back(std::move(task));
  }
  // Scattered single-cell static obstacles: they shatter the free pool so
  // index-order greedy placement strands space that a co-planned layout
  // can still use.
  const u32 rows = device.fabric.rows();
  const u32 cols = device.fabric.num_columns();
  const u32 obstacles = std::min<u32>(6, rows * cols / 64);
  for (u32 i = 0; i < obstacles; ++i) {
    OptInstance::Rect rect;
    rect.first_col = static_cast<u32>(rng.below(cols));
    rect.width = 1;
    rect.first_row = static_cast<u32>(rng.below(rows));
    rect.height = 1;
    instance.reserved.push_back(rect);
  }
  return instance;
}

PlanState greedy_plan(const OptInstance& instance,
                      const OptimizeOptions& options) {
  (void)options;
  PRCOST_TRACE_SPAN("opt.greedy");
  PlanState state{instance.device->fabric};
  for (const OptInstance::Rect& rect : instance.reserved) {
    state.fp.reserve(rect.first_col, rect.width, rect.first_row, rect.height);
  }
  place_unplaced(state.fp, group_specs(instance));
  return state;
}

CostBreakdown evaluate(const OptInstance& instance, const PlanState& state,
                       const OptimizeOptions& options) {
  PRCOST_TRACE_SPAN("opt.evaluate");
  const Fabric& fabric = instance.device->fabric;
  const DmaIcapController controller{default_icap(fabric.family())};
  RetryPolicy policy;
  policy.max_retries = options.max_retries;

  CostBreakdown cost;
  cost.relocation_s = state.relocation_spent_s;

  // Per group: placement (by name), Eq. 18-23 bitstream bytes from the
  // placed plan, and the fault-aware effective reconfiguration time.
  std::vector<double> effective_reconfig_s(instance.group_count, 0);
  std::vector<bool> placed(instance.group_count, false);
  for (u32 g = 0; g < instance.group_count; ++g) {
    const std::size_t index =
        placement_index_of(state.fp, "g" + std::to_string(g));
    if (index == std::size_t(-1)) continue;
    placed[g] = true;
    ++cost.placed_groups;
    const u64 bytes =
        state.fp.placements()[index].plan.bitstream.total_bytes;
    const double attempt_s =
        controller.estimate(bytes, options.media).total_s;
    effective_reconfig_s[g] =
        expected_retry_cost(attempt_s, options.fault_rate, policy)
            .expected_time_s;
  }
  for (std::size_t i = 0; i < instance.prms.size(); ++i) {
    if (!placed[instance.group_of[i]]) ++cost.rejected_prms;
  }

  // Analytic schedule: every accepted task runs in its group's PRR and
  // pays one (fault-aware) reconfiguration; PRRs run in parallel, all
  // reconfigurations serialize on the single ICAP.
  std::vector<double> busy(instance.group_count, 0);
  for (const HwTask& task : instance.tasks) {
    const u32 g = instance.group_of[task.prm];
    if (!placed[g]) {
      ++cost.rejected_tasks;
      continue;
    }
    busy[g] += task.exec_s + effective_reconfig_s[g];
    cost.icap_s += effective_reconfig_s[g];
  }
  for (u32 g = 0; g < instance.group_count; ++g) {
    cost.busy_max_s = std::max(cost.busy_max_s, busy[g]);
  }
  cost.makespan_s = std::max(cost.busy_max_s, cost.icap_s);
  cost.cost = options.reject_weight * static_cast<double>(cost.rejected_prms) +
              options.time_weight * cost.makespan_s +
              options.move_weight * cost.relocation_s;
  return cost;
}

JointOptimizer::JointOptimizer(const OptInstance& instance,
                               const OptimizeOptions& options)
    : instance_(&instance), options_(options), groups_(group_specs(instance)) {
  if (instance.device == nullptr) {
    throw ContractError{"JointOptimizer: instance has no device"};
  }
  if (instance.group_of.size() != instance.prms.size()) {
    throw ContractError{"JointOptimizer: group_of/prms size mismatch"};
  }
  if (options_.proposals_per_round == 0) options_.proposals_per_round = 1;
}

OptimizeResult JointOptimizer::run() {
  PRCOST_TRACE_SPAN("opt.anneal");
  const Fabric& fabric = instance_->device->fabric;
  const IcapModel icap = default_icap(fabric.family());

  OptimizeResult result;
  PlanState state = greedy_plan(*instance_, options_);
  result.greedy = evaluate(*instance_, state, options_);
  {
    Layout layout{state.fp, fabric};
    result.greedy_frag = layout.fragmentation();
  }
  PRCOST_GAUGE_SET("opt.cost.greedy", result.greedy.cost);

  CostBreakdown current = result.greedy;
  double temperature = options_.initial_temperature > 0
                           ? options_.initial_temperature
                           : std::max(0.05 * result.greedy.cost, 1e-9);
  Rng rng{options_.seed};

  struct Proposal {
    Move move;
    double uniform = 1.0;  ///< pre-drawn Metropolis acceptance draw
  };
  for (u32 round = 0; round < options_.rounds; ++round) {
    PRCOST_TRACE_SPAN("opt.round");
    // Draw the whole round serially so the stream of random numbers -
    // and therefore the result - does not depend on evaluation order.
    std::vector<Proposal> proposals;
    {
      PRCOST_TRACE_SPAN("opt.propose");
      Layout layout{state.fp, fabric};
      proposals.reserve(options_.proposals_per_round);
      for (u32 p = 0; p < options_.proposals_per_round; ++p) {
        const std::optional<Move> move = propose_move(layout, groups_, rng);
        if (!move) break;
        proposals.push_back(Proposal{*move, rng.uniform01()});
      }
    }
    if (proposals.empty()) break;
    result.proposals += proposals.size();
    PRCOST_COUNT_N("opt.moves.proposed", proposals.size());

    // Speculative evaluation: each proposal applies to its own copy of
    // the current layout and is costed end to end.
    struct Trial {
      PlanState state;
      MoveOutcome outcome;
      CostBreakdown cost;
    };
    std::vector<Trial> trials(proposals.size(),
                              Trial{state, MoveOutcome{}, CostBreakdown{}});
    {
      PRCOST_TRACE_SPAN("opt.evaluate_round");
      parallel_for(
          trials.size(),
          [&](std::size_t i) {
            Trial& trial = trials[i];
            Layout layout{trial.state.fp, fabric};
            trial.outcome =
                apply_move(layout, groups_, proposals[i].move, icap);
            if (!trial.outcome.applied) return;
            trial.state.relocation_spent_s += trial.outcome.relocation_s;
            place_unplaced(trial.state.fp, groups_);
            trial.cost = evaluate(*instance_, trial.state, options_);
          },
          options_.workers);
    }

    // Sequential acceptance in draw order: the first proposal that passes
    // Metropolis against the round's starting state wins the round.
    {
      PRCOST_TRACE_SPAN("opt.accept");
      for (std::size_t i = 0; i < trials.size(); ++i) {
        if (!trials[i].outcome.applied) continue;
        const double delta = trials[i].cost.cost - current.cost;
        const bool accept =
            delta < 0 ||
            proposals[i].uniform < std::exp(-delta / temperature);
        if (!accept) {
          PRCOST_COUNT("opt.moves.rejected");
          continue;
        }
        state = std::move(trials[i].state);
        current = trials[i].cost;
        ++result.accepted;
        ++result.accepted_by_kind[static_cast<std::size_t>(
            proposals[i].move.kind)];
        PRCOST_COUNT("opt.moves.accepted");
        break;
      }
    }
    temperature *= options_.cooling;
  }
  result.final_temperature = temperature;

  result.best = current;
  {
    Layout layout{state.fp, fabric};
    result.best_frag = layout.fragmentation();
  }
  result.placements = state.fp.placements();
  // The acceptance loop only ever compared freshly evaluated costs, so a
  // final from-scratch evaluation of the surviving layout must reproduce
  // the accepted cost bit for bit.
  result.cost_verified =
      evaluate(*instance_, state, options_).cost == current.cost;
  PRCOST_GAUGE_SET("opt.cost.best", result.best.cost);
  PRCOST_COUNT_N("opt.rejections.greedy", result.greedy.rejected_prms);
  PRCOST_COUNT_N("opt.rejections.best", result.best.rejected_prms);
  return result;
}

}  // namespace prcost::opt
