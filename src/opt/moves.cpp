#include "opt/moves.hpp"

#include <algorithm>

#include "cost/plan_cache.hpp"
#include "htr/defrag.hpp"
#include "htr/relocation.hpp"
#include "obs/obs.hpp"

namespace prcost::opt {
namespace {

/// Group ids that currently have a placement, ascending.
std::vector<u32> placed_groups(const Floorplanner& fp,
                               std::span<const GroupSpec> groups) {
  std::vector<u32> placed;
  for (u32 g = 0; g < groups.size(); ++g) {
    if (placement_index_of(fp, groups[g].name) != std::size_t(-1)) {
      placed.push_back(g);
    }
  }
  return placed;
}

/// Re-place group `g` forcing the candidate organization at rotation
/// `offset` into the objective-sorted candidate list, exact windows only
/// (the rotation is what makes resize explore shapes `place` would not
/// pick first). Falls back to the normal placement search when the forced
/// candidate does not fit anywhere.
bool place_with_candidate(Floorplanner& fp, const Fabric& fabric,
                          const GroupSpec& group, u32 offset) {
  const std::shared_ptr<const std::vector<PrrPlan>> candidates =
      placement_candidates(group.req, fabric, group.objective);
  if (!candidates->empty()) {
    const std::size_t n = candidates->size();
    for (std::size_t i = 0; i < n; ++i) {
      const PrrPlan& candidate = (*candidates)[(offset + i) % n];
      for (const ColumnWindow& window :
           fabric.find_all_windows(candidate.organization.columns)) {
        for (u32 row = 0; row + candidate.organization.h <= fabric.rows();
             ++row) {
          if (!fp.rect_free(window.first_col, window.width, row,
                            candidate.organization.h)) {
            continue;
          }
          PrrPlan plan = candidate;
          plan.window = window;
          plan.first_row = row;
          return fp.place_plan(group.name, plan).has_value();
        }
      }
    }
  }
  return fp.place(group.name, group.req, group.objective).has_value();
}

}  // namespace

std::string_view move_kind_name(MoveKind kind) {
  switch (kind) {
    case MoveKind::kSwap: return "swap";
    case MoveKind::kRelocate: return "relocate";
    case MoveKind::kResize: return "resize";
    case MoveKind::kCompact: return "compact";
  }
  return "?";
}

std::size_t placement_index_of(const Floorplanner& fp,
                               const std::string& name) {
  const std::vector<PlacedPrr>& placements = fp.placements();
  for (std::size_t i = 0; i < placements.size(); ++i) {
    if (placements[i].name == name) return i;
  }
  return std::size_t(-1);
}

std::optional<Move> propose_move(const Layout& layout,
                                 std::span<const GroupSpec> groups, Rng& rng) {
  const Floorplanner& fp = layout.floorplanner();
  const std::vector<u32> placed = placed_groups(fp, groups);
  if (placed.empty() || groups.size() < 2) return std::nullopt;

  Move move;
  move.kind = static_cast<MoveKind>(rng.below(kMoveKinds));
  switch (move.kind) {
    case MoveKind::kSwap: {
      // One side is always placed; biasing the partner toward unplaced
      // groups is what turns swap into a rejection-rescue move.
      move.group_a = placed[rng.below(placed.size())];
      move.group_b = static_cast<u32>(rng.below(groups.size()));
      if (move.group_b == move.group_a) {
        move.group_b = static_cast<u32>((move.group_a + 1) % groups.size());
      }
      return move;
    }
    case MoveKind::kRelocate: {
      move.group_a = placed[rng.below(placed.size())];
      const std::size_t index =
          placement_index_of(fp, groups[move.group_a].name);
      const std::vector<RelocationTarget> targets =
          layout.relocation_targets(index, 16);
      if (targets.empty()) {
        move.kind = MoveKind::kCompact;  // nothing to slide to; defrag
        return move;
      }
      const RelocationTarget& target = targets[rng.below(targets.size())];
      move.target = target.window;
      move.target_row = target.first_row;
      return move;
    }
    case MoveKind::kResize: {
      move.group_a = placed[rng.below(placed.size())];
      move.candidate = static_cast<u32>(rng.below(64));
      return move;
    }
    case MoveKind::kCompact:
      return move;
  }
  return move;
}

MoveOutcome apply_move(const Layout& layout, std::span<const GroupSpec> groups,
                       const Move& move, const IcapModel& icap) {
  Floorplanner& fp = layout.floorplanner();
  const Fabric& fabric = layout.fabric();
  MoveOutcome outcome;
  switch (move.kind) {
    case MoveKind::kSwap: {
      const GroupSpec& a = groups[move.group_a];
      const GroupSpec& b = groups[move.group_b];
      const bool had_a = fp.remove(a.name);
      const bool had_b = fp.remove(b.name);
      if (!had_a && !had_b) return outcome;
      // Swapped placement order: b claims free space first.
      fp.place(b.name, b.req, b.objective);
      fp.place(a.name, a.req, a.objective);
      outcome.applied = true;
      return outcome;
    }
    case MoveKind::kRelocate: {
      const std::size_t index =
          placement_index_of(fp, groups[move.group_a].name);
      if (index == std::size_t(-1)) return outcome;
      const PrrOrganization org = fp.placements()[index].plan.organization;
      if (!fp.try_move_placement(index, move.target, move.target_row)) {
        return outcome;
      }
      outcome.applied = true;
      outcome.slides = 1;
      outcome.relocation_s =
          relocation_time(org, fabric.traits(), icap).total_s;
      return outcome;
    }
    case MoveKind::kResize: {
      const GroupSpec& group = groups[move.group_a];
      if (!fp.remove(group.name)) return outcome;
      place_with_candidate(fp, fabric, group, move.candidate);
      outcome.applied = true;
      return outcome;
    }
    case MoveKind::kCompact: {
      outcome.slides = plan_compaction(
          fp, fabric, nullptr, [&](const SlideMove& slide) {
            outcome.relocation_s +=
                relocation_time(slide.organization, fabric.traits(), icap)
                    .total_s;
          });
      outcome.applied = outcome.slides > 0;
      return outcome;
    }
  }
  return outcome;
}

}  // namespace prcost::opt
