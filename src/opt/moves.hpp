// ILP-lite neighborhood moves for the joint optimizer.
//
// Four move kinds over an opt::Layout, split by when they cost anything:
//
//  planning moves (free - they rewrite the plan before anything is
//  configured):
//   kSwap    remove two groups' PRRs and re-place them in swapped order
//   kResize  re-place one group with a different candidate organization
//            (a different H x W trade-off from the Fig. 1 sweep)
//
//  runtime moves (priced through the HTR relocation-time model, i.e. the
//  ICAP readback + rewrite path of the authors' HTR work):
//   kRelocate  slide one live PRR to an HTR-compatible free rectangle
//   kCompact   run the htr defragmentation planner; every emitted slide
//              is costed individually
//
// Proposals are drawn deterministically from a seeded Rng against the
// current layout; applying a proposal to a *copy* of the layout is what
// the annealer's speculative evaluation does.
#pragma once

#include <optional>
#include <span>
#include <string>

#include "opt/layout.hpp"
#include "reconfig/icap.hpp"
#include "util/rng.hpp"

namespace prcost::opt {

enum class MoveKind { kSwap = 0, kRelocate = 1, kResize = 2, kCompact = 3 };
inline constexpr std::size_t kMoveKinds = 4;

std::string_view move_kind_name(MoveKind kind);

/// One group the optimizer plans a PRR for: the shared-PRR requirement
/// (element-wise max over the group's PRMs, per the paper's shared-PRR
/// rule) plus the placement name used in the floorplanner.
struct GroupSpec {
  std::string name;
  PrmRequirements req;
  SearchObjective objective = SearchObjective::kMinArea;
};

/// A fully parameterized move proposal. All parameters are resolved at
/// proposal time against the proposing layout, so applying the same Move
/// to an identical copy is deterministic.
struct Move {
  MoveKind kind = MoveKind::kCompact;
  u32 group_a = 0;        ///< swap / relocate / resize subject
  u32 group_b = 0;        ///< swap partner
  ColumnWindow target;    ///< relocate destination window
  u32 target_row = 0;     ///< relocate destination row
  u32 candidate = 0;      ///< resize: candidate-list rotation offset
};

/// What applying a move did.
struct MoveOutcome {
  bool applied = false;        ///< layout changed (a no-op proposal is false)
  double relocation_s = 0.0;   ///< ICAP relocation time this move spends
  u64 slides = 0;              ///< placements moved (compact can be > 1)
};

/// Draw one move proposal against `layout`. Returns nullopt only when the
/// layout has no placements at all (then only a fresh placement pass makes
/// sense). `groups` is indexed by group id; placements are matched to
/// groups by name.
std::optional<Move> propose_move(const Layout& layout,
                                 std::span<const GroupSpec> groups, Rng& rng);

/// Apply `move` to `layout`. Planning moves may leave a group unplaced
/// (the caller's rescue pass re-places what it can and the cost model
/// penalizes the rest); runtime moves either succeed atomically or leave
/// the layout untouched. `icap` prices the runtime moves.
MoveOutcome apply_move(const Layout& layout, std::span<const GroupSpec> groups,
                       const Move& move, const IcapModel& icap);

/// Placement index of group `name` in `fp` (placements move around, so
/// this is resolved by name at apply time). Returns npos when unplaced.
std::size_t placement_index_of(const Floorplanner& fp,
                               const std::string& name);

}  // namespace prcost::opt
