#include "opt/layout.hpp"

#include "htr/relocation.hpp"

namespace prcost::opt {

FragmentationStats Layout::fragmentation() const {
  FragmentationStats stats;
  const BitGrid& grid = fp_->grid();
  stats.total_cells = u64{grid.rows()} * grid.cols();
  stats.free_cells = stats.total_cells - grid.count_set();
  stats.largest_free_rect = grid.largest_clear_rect();
  if (stats.free_cells > 0) {
    stats.fragmentation = 1.0 - static_cast<double>(stats.largest_free_rect) /
                                    static_cast<double>(stats.free_cells);
  }
  return stats;
}

std::vector<RelocationTarget> Layout::relocation_targets(
    std::size_t index, std::size_t max_targets) const {
  std::vector<RelocationTarget> targets;
  if (index >= fp_->placements().size()) return targets;
  const PlacedPrr& placed = fp_->placements()[index];
  const ColumnDemand composition =
      fabric_->window_composition(placed.plan.window);
  const u32 h = placed.plan.organization.h;
  for (const ColumnWindow& window : fabric_->find_all_windows_superset(
           composition, placed.plan.window.width)) {
    if (!windows_compatible(*fabric_, placed.plan.window, window)) continue;
    for (u32 row = 0; row + h <= fabric_->rows(); ++row) {
      if (window.first_col == placed.first_col && row == placed.first_row) {
        continue;  // the identity move
      }
      // Cheap full-freeness pre-filter; a self-overlapping slide would be
      // caught by try_move_placement at apply time anyway.
      if (!fp_->rect_free(window.first_col, window.width, row, h)) continue;
      targets.push_back(RelocationTarget{window, row});
      if (targets.size() >= max_targets) return targets;
    }
  }
  return targets;
}

bool Layout::consistent() const {
  const BitGrid& grid = fp_->grid();
  BitGrid rebuilt{grid.rows(), grid.cols()};
  for (const PlacedPrr& placed : fp_->placements()) {
    const u32 width = placed.plan.window.width;
    const u32 h = placed.plan.organization.h;
    if (placed.first_col + width > grid.cols() ||
        placed.first_row + h > grid.rows()) {
      return false;
    }
    // Overlap with an earlier placement?
    if (!rebuilt.rect_free(placed.first_col, width, placed.first_row, h)) {
      return false;
    }
    rebuilt.set_rect(placed.first_col, width, placed.first_row, h, true);
    // Every cell must also be marked in the live grid (reserved rectangles
    // may add more set cells, so subset - not equality - is the invariant).
    for (u32 c = 0; c < width; ++c) {
      for (u32 r = 0; r < h; ++r) {
        if (!grid.test(placed.first_col + c, placed.first_row + r)) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace prcost::opt
