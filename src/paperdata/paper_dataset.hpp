// Recorded inputs and expected outputs from the paper's evaluation
// (Section IV, Tables V-VII).
//
// The text extraction of the paper lost most numeric cells of Table V, but
// Table VI survived with both absolute post-PAR values and the percentage
// deltas against Table V, which lets Table V be reconstructed exactly:
//
//   TableV = TableVI / (1 - delta)           (positive delta = saving)
//
// e.g. Virtex-5 FIR: LUT_FF_req = 1082/(1-0.168) = 1300.5 -> 1300 and
// CLB_req = ceil(1300/8) = 163 = 136/(1-0.166) - both consistency checks
// pass. Each record below carries the reconstructed synthesis-report
// inputs ("req") plus the expected organization/availability/RU from
// Table V, which the tests and the Table V bench verify against our model.
#pragma once

#include <span>
#include <string_view>

#include "cost/prr_model.hpp"
#include "device/family_traits.hpp"

namespace prcost::paperdata {

/// One (PRM, device) evaluation point from the paper's Table V.
struct TableVRecord {
  std::string_view prm;          ///< "FIR" / "MIPS" / "SDRAM"
  std::string_view device;       ///< catalog name, e.g. "xc5vlx110t"
  Family family;

  PrmRequirements req;           ///< reconstructed synthesis-report inputs
  u64 clb_req;                   ///< Eq. (1) result reported in Table V

  // Expected organization (H_CLB = H_DSP = H_BRAM = H for the rectangular
  // PRRs in the paper; 0 columns where the PRM uses none of the resource).
  u32 h;
  u32 w_clb;
  u32 w_dsp;
  u32 w_bram;

  // Expected availability (Eqs. 8-12).
  u64 clb_avail;
  u64 ff_avail;
  u64 lut_avail;
  u64 dsp_avail;
  u64 bram_avail;

  // Expected utilization percentages as printed (integer-rounded).
  int ru_clb;
  int ru_ff;
  int ru_lut;
  int ru_dsp;
  int ru_bram;
};

/// One (PRM, device) post-place-and-route point from the paper's Table VI.
struct TableVIRecord {
  std::string_view prm;
  std::string_view device;
  Family family;

  PrmRequirements req;  ///< post-PAR requirements (absolute Table VI values)
  u64 clb_req;

  // Percentage deltas vs Table V as printed (positive = saving).
  double d_lut_ff;
  double d_lut;
  double d_ff;
  double d_clb;
};

/// All six Table V records (FIR/MIPS/SDRAM x LX110T/LX75T).
std::span<const TableVRecord> table5();

/// All six Table VI records.
std::span<const TableVIRecord> table6();

/// Find a Table V record; throws ContractError if absent.
const TableVRecord& table5_record(std::string_view prm,
                                  std::string_view device);

}  // namespace prcost::paperdata
