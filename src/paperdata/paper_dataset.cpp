#include "paperdata/paper_dataset.hpp"

#include <array>

#include "util/error.hpp"

namespace prcost::paperdata {
namespace {

// Reconstruction notes (see header): requirements follow from the Table VI
// absolute values and deltas; organizations follow from the RU
// percentages via Eqs. (8)-(17). Every record is re-checked by
// tests/paperdata_test.cpp against the model equations.
constexpr std::array<TableVRecord, 6> kTable5{{
    // --- Virtex-5 LX110T --------------------------------------------------
    {"FIR", "xc5vlx110t", Family::kVirtex5,
     PrmRequirements{1300, 1150, 394, 32, 0}, 163,
     /*h=*/5, /*w_clb=*/2, /*w_dsp=*/1, /*w_bram=*/0,
     /*avail*/ 200, 1600, 1600, 40, 0,
     /*ru*/ 82, 25, 72, 80, 0},
    {"MIPS", "xc5vlx110t", Family::kVirtex5,
     PrmRequirements{2618, 1526, 1592, 4, 6}, 328,
     1, 17, 1, 2,
     340, 2720, 2720, 8, 8,
     97, 59, 56, 50, 75},
    {"SDRAM", "xc5vlx110t", Family::kVirtex5,
     PrmRequirements{332, 157, 292, 0, 0}, 42,
     1, 3, 0, 0,
     60, 480, 480, 0, 0,
     70, 61, 33, 0, 0},
    // --- Virtex-6 LX75T ---------------------------------------------------
    {"FIR", "xc6vlx75t", Family::kVirtex6,
     PrmRequirements{1467, 1316, 394, 27, 0}, 184,
     1, 5, 2, 0,
     200, 3200, 1600, 32, 0,
     92, 12, 82, 84, 0},
    {"MIPS", "xc6vlx75t", Family::kVirtex6,
     PrmRequirements{3239, 2095, 1860, 4, 6}, 405,
     1, 11, 1, 1,
     440, 7040, 3520, 16, 8,
     92, 26, 60, 25, 75},
    {"SDRAM", "xc6vlx75t", Family::kVirtex6,
     PrmRequirements{385, 181, 324, 0, 0}, 49,
     1, 2, 0, 0,
     80, 1280, 640, 0, 0,
     61, 25, 28, 0, 0},
}};

// Table VI: post-place-and-route values as printed in the paper, with the
// parenthesized deltas (positive = resource saving vs Table V).
constexpr std::array<TableVIRecord, 6> kTable6{{
    {"FIR", "xc5vlx110t", Family::kVirtex5,
     PrmRequirements{1082, 1015, 410, 32, 0}, 136,
     /*d_lut_ff=*/16.8, /*d_lut=*/11.7, /*d_ff=*/-4.1, /*d_clb=*/16.6},
    {"MIPS", "xc5vlx110t", Family::kVirtex5,
     PrmRequirements{2183, 1528, 1592, 4, 6}, 273,
     16.6, -0.1, 0.0, 16.8},
    {"SDRAM", "xc5vlx110t", Family::kVirtex5,
     PrmRequirements{324, 191, 292, 0, 0}, 41,
     2.4, -21.7, 0.0, 2.4},
    {"FIR", "xc6vlx75t", Family::kVirtex6,
     PrmRequirements{999, 999, 394, 27, 0}, 125,
     31.9, 24.1, 0.0, 32.1},
    {"MIPS", "xc6vlx75t", Family::kVirtex6,
     PrmRequirements{2630, 1932, 1860, 4, 6}, 329,
     18.8, 7.8, 0.0, 18.8},
    {"SDRAM", "xc6vlx75t", Family::kVirtex6,
     PrmRequirements{370, 215, 324, 0, 0}, 47,
     3.9, -18.8, 0.0, 4.1},
}};

}  // namespace

std::span<const TableVRecord> table5() { return kTable5; }

std::span<const TableVIRecord> table6() { return kTable6; }

const TableVRecord& table5_record(std::string_view prm,
                                  std::string_view device) {
  for (const TableVRecord& record : kTable5) {
    if (record.prm == prm && record.device == device) return record;
  }
  throw ContractError{"table5_record: no record for " + std::string{prm} +
                      " on " + std::string{device}};
}

}  // namespace prcost::paperdata
