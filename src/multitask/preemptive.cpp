#include "multitask/preemptive.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace prcost {

std::string_view preempt_mode_name(PreemptMode mode) {
  switch (mode) {
    case PreemptMode::kNoPreemption: return "no-preemption";
    case PreemptMode::kRestart: return "restart";
    case PreemptMode::kSaveRestore: return "save-restore";
  }
  return "?";
}

namespace {

/// A task instance in flight (original index + mutable progress state).
struct Job {
  std::size_t task = 0;
  double remaining_s = 0;
  bool needs_restore = false;  ///< resumed from a saved context
  u32 priority = 0;
};

struct PrrState {
  std::optional<u32> loaded;
  std::optional<Job> running;
  double exec_end = 0;
};

}  // namespace

PreemptiveResult simulate_preemptive(const std::vector<PrmInfo>& prms,
                                     std::vector<HwTask> tasks,
                                     const PreemptiveConfig& config) {
  PRCOST_TRACE_SPAN("preemptive_sim");
  if (config.prr_count == 0) {
    throw ContractError{"simulate_preemptive: zero PRRs"};
  }
  for (const HwTask& task : tasks) {
    if (task.prm >= prms.size()) {
      throw ContractError{"simulate_preemptive: unknown PRM"};
    }
  }
  auto controller =
      config.controller
          ? config.controller
          : std::make_shared<DmaIcapController>(default_icap(Family::kVirtex5));

  sort_by_arrival(tasks);

  PreemptiveResult result;
  result.tasks.resize(tasks.size());
  std::vector<PrrState> prrs(config.prr_count);
  std::vector<Job> ready;
  std::size_t next_arrival = 0;
  std::size_t completed = 0;
  double now = 0;
  double icap_free_at = 0;

  const auto pop_best_ready = [&]() -> Job {
    auto best = ready.begin();
    for (auto it = ready.begin(); it != ready.end(); ++it) {
      if (it->priority > best->priority) best = it;
    }
    const Job job = *best;
    ready.erase(best);
    return job;
  };

  const auto icap_time = [&](double duration) {
    const double start = std::max(now, icap_free_at);
    icap_free_at = start + duration;
    return icap_free_at;
  };

  const auto dispatch = [&](std::size_t prr_index, Job job) {
    PrrState& prr = prrs[prr_index];
    double start = now;
    if (prr.loaded != tasks[job.task].prm) {
      if (config.faults != nullptr) {
        // Fault mode: verified transfer with retry; a permanent failure
        // drops the job here - the PRR stays idle and undefined.
        const TransferOutcome xfer = verified_transfer(
            *controller, prms[tasks[job.task].prm].bitstream_bytes,
            config.media, config.faults, config.retry);
        const double end = icap_time(xfer.total_s);
        TaskOutcome& outcome = result.tasks[job.task];
        outcome.task_index = narrow<u32>(job.task);
        outcome.prr = narrow<u32>(prr_index);
        outcome.reconfig_attempts += xfer.attempts;
        result.retry_attempts += xfer.attempts - 1;
        result.total_retry_backoff_s += xfer.backoff_s;
        result.total_fault_wasted_s += xfer.wasted_s;
        if (!xfer.success) {
          ++result.failed_reconfigs;
          prr.loaded.reset();
          outcome.dropped = true;
          outcome.finish_s = end;
          outcome.wait_s = end - tasks[job.task].arrival_s;
          result.makespan_s = std::max(result.makespan_s, end);
          ++result.dropped_tasks;
          result.total_penalty_s += config.drop_penalty_s;
          ++completed;
          return;
        }
        start = end;
        prr.loaded = tasks[job.task].prm;
        result.total_reconfig_s += xfer.total_s;
        ++result.reconfig_count;
      } else {
        const double reconfig_s =
            controller
                ->estimate(prms[tasks[job.task].prm].bitstream_bytes,
                           config.media)
                .total_s;
        start = icap_time(reconfig_s);
        prr.loaded = tasks[job.task].prm;
        result.total_reconfig_s += reconfig_s;
        ++result.reconfig_count;
      }
    }
    if (job.needs_restore) {
      start = std::max(start, icap_time(config.context_restore_s));
      result.total_save_restore_s += config.context_restore_s;
      job.needs_restore = false;
    }
    prr.exec_end = start + job.remaining_s;
    prr.running = job;
    result.tasks[job.task].prr = narrow<u32>(prr_index);
    if (result.tasks[job.task].start_s == 0) {
      result.tasks[job.task].start_s = start;
    }
  };

  while (completed < tasks.size()) {
    while (next_arrival < tasks.size() &&
           tasks[next_arrival].arrival_s <= now) {
      ready.push_back(Job{next_arrival, tasks[next_arrival].exec_s, false,
                          tasks[next_arrival].priority});
      ++next_arrival;
    }

    // Retire finished jobs.
    for (PrrState& prr : prrs) {
      if (prr.running && prr.exec_end <= now) {
        const Job& job = *prr.running;
        TaskOutcome& outcome = result.tasks[job.task];
        outcome.task_index = narrow<u32>(job.task);
        outcome.finish_s = prr.exec_end;
        outcome.wait_s =
            outcome.finish_s - tasks[job.task].arrival_s - tasks[job.task].exec_s;
        result.makespan_s = std::max(result.makespan_s, outcome.finish_s);
        prr.running.reset();
        ++completed;
      }
    }

    // Dispatch onto idle PRRs.
    bool dispatched = true;
    while (dispatched && !ready.empty()) {
      dispatched = false;
      for (std::size_t p = 0; p < prrs.size() && !ready.empty(); ++p) {
        if (!prrs[p].running) {
          dispatch(p, pop_best_ready());
          dispatched = true;
        }
      }
    }

    // Preemption: the most urgent ready job may evict the lowest-priority
    // running job.
    if (config.mode != PreemptMode::kNoPreemption && !ready.empty()) {
      bool preempted = true;
      while (preempted && !ready.empty()) {
        preempted = false;
        auto best_it = ready.begin();
        for (auto it = ready.begin(); it != ready.end(); ++it) {
          if (it->priority > best_it->priority) best_it = it;
        }
        std::size_t victim_prr = prrs.size();
        for (std::size_t p = 0; p < prrs.size(); ++p) {
          if (!prrs[p].running) continue;
          if (prrs[p].running->priority < best_it->priority &&
              (victim_prr == prrs.size() ||
               prrs[p].running->priority <
                   prrs[victim_prr].running->priority)) {
            victim_prr = p;
          }
        }
        if (victim_prr == prrs.size()) break;

        // Take the urgent job out FIRST: pushing the victim below may
        // reallocate `ready` and would invalidate best_it.
        const Job job = *best_it;
        ready.erase(best_it);

        PrrState& prr = prrs[victim_prr];
        Job victim = *prr.running;
        prr.running.reset();
        ++result.preemptions;
        if (config.mode == PreemptMode::kSaveRestore) {
          icap_time(config.context_save_s);
          result.total_save_restore_s += config.context_save_s;
          victim.remaining_s = std::max(0.0, prr.exec_end - now);
          victim.needs_restore = true;
        } else {
          victim.remaining_s = tasks[victim.task].exec_s;  // lost work
        }
        ready.push_back(victim);
        dispatch(victim_prr, job);
        preempted = true;
      }
    }

    // Advance to the next event.
    double next = std::numeric_limits<double>::infinity();
    if (next_arrival < tasks.size()) {
      next = std::min(next, tasks[next_arrival].arrival_s);
    }
    for (const PrrState& prr : prrs) {
      if (prr.running) next = std::min(next, prr.exec_end);
    }
    if (!std::isfinite(next)) {
      if (completed < tasks.size() && ready.empty()) {
        throw ContractError{"simulate_preemptive: deadlocked schedule"};
      }
      continue;  // ready jobs will dispatch next iteration
    }
    now = std::max(now, next);
  }

  // High-priority wait statistic (top quartile by priority).
  std::vector<u32> priorities;
  priorities.reserve(tasks.size());
  for (const HwTask& task : tasks) priorities.push_back(task.priority);
  std::sort(priorities.begin(), priorities.end());
  const u32 cutoff = priorities.empty()
                         ? 0
                         : priorities[priorities.size() * 3 / 4];
  double wait_sum = 0;
  u64 wait_count = 0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (tasks[i].priority >= cutoff) {
      wait_sum += std::max(0.0, result.tasks[i].wait_s);
      ++wait_count;
    }
  }
  result.mean_high_priority_wait_s =
      wait_count == 0 ? 0.0 : wait_sum / static_cast<double>(wait_count);
  PRCOST_COUNT("sim.preemptive_runs");
  PRCOST_COUNT_N("sim.preemptions", result.preemptions);
  if (config.faults != nullptr) {
    PRCOST_COUNT_N("sim.failed_reconfigs", result.failed_reconfigs);
    PRCOST_COUNT_N("sim.dropped_tasks", result.dropped_tasks);
  }
  return result;
}

}  // namespace prcost
