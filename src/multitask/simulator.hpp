// Event-driven hardware-multitasking simulator.
//
// Models the system the paper's title names: PRMs time-multiplexing a pool
// of PRRs. Each context switch on a PRR loads the incoming PRM's partial
// bitstream through the (single, shared) ICAP; the static region and other
// PRRs keep running meanwhile. The simulator quantifies how PRR
// sizing/organization decisions - via partial bitstream size and hence
// reconfiguration time - turn into schedule-level makespan, which is the
// motivation argument of Section I.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "multitask/workload.hpp"
#include "reconfig/controllers.hpp"

namespace prcost {

/// Task-to-PRR dispatch policy.
enum class SchedPolicy {
  kFcfs,       ///< arrival order
  kSjf,        ///< shortest service first
  kPriority,   ///< highest priority first (FCFS tie-break)
  kReuseAware, ///< prefer tasks whose PRM is already loaded in an idle PRR
};

inline constexpr SchedPolicy kAllPolicies[] = {
    SchedPolicy::kFcfs, SchedPolicy::kSjf, SchedPolicy::kPriority,
    SchedPolicy::kReuseAware};

std::string_view sched_policy_name(SchedPolicy policy);

/// Simulation configuration.
struct SimConfig {
  u32 prr_count = 2;         ///< PRRs in the pool
  SchedPolicy policy = SchedPolicy::kReuseAware;
  StorageMedia media = StorageMedia::kDdrSdram;
  /// Reconfiguration controller; nullptr selects a DMA-ICAP default.
  std::shared_ptr<const ReconfigController> controller;
  /// HTR option: when the incoming PRM is already configured in some other
  /// PRR, copy it on-chip (capture/readback/rewrite, see src/htr) instead
  /// of fetching the bitstream from storage - taken whenever
  /// `relocation_s` beats the storage path. 0 disables relocation.
  bool allow_relocation = false;
  double relocation_s = 0.0;  ///< on-chip copy time per context switch
};

/// Per-task outcome.
struct TaskOutcome {
  u32 task_index = 0;
  u32 prr = 0;
  bool reconfigured = false;  ///< context switch was needed
  double start_s = 0;         ///< execution start (post-reconfig)
  double finish_s = 0;
  double wait_s = 0;          ///< finish - arrival - exec - reconfig
};

/// Aggregate results.
struct SimResult {
  double makespan_s = 0;
  double total_reconfig_s = 0;
  u64 reconfig_count = 0;
  u64 reuse_hits = 0;        ///< dispatches that skipped reconfiguration
  u64 relocation_count = 0;  ///< context switches served by on-chip copy
  double total_relocation_s = 0;
  double mean_wait_s = 0;
  double prr_busy_fraction = 0;  ///< mean execution utilization of PRRs
  std::vector<TaskOutcome> tasks;
};

/// Simulate `tasks` over `prms` with `config`. Tasks may arrive in any
/// order; the simulator sorts by arrival. All PRRs are assumed large
/// enough for every PRM (size the pool with find_shared_prr first).
SimResult simulate(const std::vector<PrmInfo>& prms,
                   std::vector<HwTask> tasks, const SimConfig& config);

/// Non-PR baseline: a single full-device context; every switch between
/// different PRMs reloads the full bitstream and halts execution (no
/// overlap, no parallel PRRs).
SimResult simulate_full_reconfig(const std::vector<PrmInfo>& prms,
                                 std::vector<HwTask> tasks,
                                 u64 full_bitstream_bytes,
                                 StorageMedia media,
                                 std::shared_ptr<const ReconfigController>
                                     controller = nullptr);

}  // namespace prcost
