// Event-driven hardware-multitasking simulator.
//
// Models the system the paper's title names: PRMs time-multiplexing a pool
// of PRRs. Each context switch on a PRR loads the incoming PRM's partial
// bitstream through the (single, shared) ICAP; the static region and other
// PRRs keep running meanwhile. The simulator quantifies how PRR
// sizing/organization decisions - via partial bitstream size and hence
// reconfiguration time - turn into schedule-level makespan, which is the
// motivation argument of Section I.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "multitask/workload.hpp"
#include "reconfig/controllers.hpp"

namespace prcost {

/// Task-to-PRR dispatch policy.
enum class SchedPolicy {
  kFcfs,       ///< arrival order
  kSjf,        ///< shortest service first
  kPriority,   ///< highest priority first (FCFS tie-break)
  kReuseAware, ///< prefer tasks whose PRM is already loaded in an idle PRR
};

inline constexpr SchedPolicy kAllPolicies[] = {
    SchedPolicy::kFcfs, SchedPolicy::kSjf, SchedPolicy::kPriority,
    SchedPolicy::kReuseAware};

std::string_view sched_policy_name(SchedPolicy policy);

/// What to do with a task whose reconfiguration failed permanently (every
/// verified-transfer retry delivered a corrupted bitstream or timed out).
enum class FaultRecovery {
  kDrop,        ///< record the task as dropped with a penalty
  kReschedule,  ///< re-queue the task (bounded by max_reschedules), then drop
};

/// Simulation configuration.
struct SimConfig {
  u32 prr_count = 2;         ///< PRRs in the pool
  SchedPolicy policy = SchedPolicy::kReuseAware;
  StorageMedia media = StorageMedia::kDdrSdram;
  /// Reconfiguration controller; nullptr selects a DMA-ICAP default.
  std::shared_ptr<const ReconfigController> controller;
  /// HTR option: when the incoming PRM is already configured in some other
  /// PRR, copy it on-chip (capture/readback/rewrite, see src/htr) instead
  /// of fetching the bitstream from storage - taken whenever
  /// `relocation_s` beats the storage path. 0 disables relocation.
  bool allow_relocation = false;
  double relocation_s = 0.0;  ///< on-chip copy time per context switch
  /// Fault injection: when set, every storage-path context switch goes
  /// through the CRC-verified transfer loop (retry + backoff per `retry`)
  /// and permanent failures degrade per `recovery` instead of asserting.
  /// Null (default) keeps the fault-free fast path - results are
  /// bit-identical to a build without fault support.
  FaultInjector* faults = nullptr;
  RetryPolicy retry;
  FaultRecovery recovery = FaultRecovery::kDrop;
  u32 max_reschedules = 1;      ///< kReschedule re-queue budget per task
  double drop_penalty_s = 0.0;  ///< recorded penalty per dropped task
};

/// Per-task outcome.
struct TaskOutcome {
  u32 task_index = 0;
  u32 prr = 0;
  bool reconfigured = false;  ///< context switch was needed
  bool dropped = false;       ///< reconfiguration failed permanently
  u32 reconfig_attempts = 0;  ///< verified-transfer attempts (fault runs)
  double start_s = 0;         ///< execution start (post-reconfig)
  double finish_s = 0;        ///< dropped tasks: instant the ICAP gave up
  /// Time not spent executing: finish - arrival - exec, i.e. queueing
  /// delay plus the task's own reconfiguration (and retry) delay. For
  /// dropped tasks: give-up instant - arrival.
  double wait_s = 0;
};

/// Aggregate results.
struct SimResult {
  double makespan_s = 0;
  double total_reconfig_s = 0;
  u64 reconfig_count = 0;
  u64 reuse_hits = 0;        ///< dispatches that skipped reconfiguration
  u64 relocation_count = 0;  ///< context switches served by on-chip copy
  double total_relocation_s = 0;
  double mean_wait_s = 0;
  double prr_busy_fraction = 0;  ///< mean execution utilization of PRRs
  // Fault accounting (all zero when SimConfig::faults is null).
  u64 failed_reconfigs = 0;   ///< transfers that exhausted their retries
  u64 dropped_tasks = 0;      ///< tasks abandoned after permanent failure
  u64 rescheduled_tasks = 0;  ///< re-queue events (kReschedule)
  u64 retry_attempts = 0;     ///< transfer attempts beyond the first
  double total_retry_backoff_s = 0;  ///< time spent backing off
  double total_fault_wasted_s = 0;   ///< ICAP time on failed attempts
  double total_penalty_s = 0;        ///< dropped_tasks * drop_penalty_s
  std::vector<TaskOutcome> tasks;
};

/// Simulate `tasks` over `prms` with `config`. Tasks may arrive in any
/// order; the simulator sorts by (arrival, input order). All PRRs are
/// assumed large enough for every PRM (size the pool with find_shared_prr
/// first).
SimResult simulate(const std::vector<PrmInfo>& prms,
                   std::vector<HwTask> tasks, const SimConfig& config);

/// Non-PR baseline: a single full-device context; every switch between
/// different PRMs reloads the full bitstream and halts execution (no
/// overlap, no parallel PRRs).
SimResult simulate_full_reconfig(const std::vector<PrmInfo>& prms,
                                 std::vector<HwTask> tasks,
                                 u64 full_bitstream_bytes,
                                 StorageMedia media,
                                 std::shared_ptr<const ReconfigController>
                                     controller = nullptr);

}  // namespace prcost
