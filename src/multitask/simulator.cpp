#include "multitask/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace prcost {

std::string_view sched_policy_name(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::kFcfs: return "FCFS";
    case SchedPolicy::kSjf: return "SJF";
    case SchedPolicy::kPriority: return "Priority";
    case SchedPolicy::kReuseAware: return "Reuse-aware";
  }
  return "?";
}

namespace {

struct PrrState {
  std::optional<u32> loaded;  ///< PRM currently configured
  double free_at = 0.0;
  double busy_exec_s = 0.0;   ///< accumulated execution time
};

/// Pick the next ready task index under `policy`, given idle PRR contents.
std::size_t pick_task(const std::vector<HwTask>& tasks,
                      const std::vector<std::size_t>& ready,
                      SchedPolicy policy,
                      const std::vector<PrrState>& prrs, double now) {
  switch (policy) {
    case SchedPolicy::kFcfs:
      return ready.front();  // ready is kept in arrival order
    case SchedPolicy::kSjf: {
      std::size_t best = ready.front();
      for (const std::size_t i : ready) {
        if (tasks[i].exec_s < tasks[best].exec_s) best = i;
      }
      return best;
    }
    case SchedPolicy::kPriority: {
      std::size_t best = ready.front();
      for (const std::size_t i : ready) {
        if (tasks[i].priority > tasks[best].priority) best = i;
      }
      return best;
    }
    case SchedPolicy::kReuseAware: {
      for (const std::size_t i : ready) {
        for (const PrrState& prr : prrs) {
          if (prr.free_at <= now && prr.loaded == tasks[i].prm) return i;
        }
      }
      return ready.front();
    }
  }
  throw ContractError{"pick_task: unknown policy"};
}

std::shared_ptr<const ReconfigController> default_controller() {
  return std::make_shared<DmaIcapController>(default_icap(Family::kVirtex5));
}

}  // namespace

SimResult simulate(const std::vector<PrmInfo>& prms, std::vector<HwTask> tasks,
                   const SimConfig& config) {
  PRCOST_TRACE_SPAN("multitask_sim");
  if (config.prr_count == 0) throw ContractError{"simulate: zero PRRs"};
  for (const HwTask& task : tasks) {
    if (task.prm >= prms.size()) {
      throw ContractError{"simulate: task references unknown PRM"};
    }
  }
  auto controller = config.controller ? config.controller : default_controller();

  sort_by_arrival(tasks);

  SimResult result;
  result.tasks.resize(tasks.size());
  std::vector<PrrState> prrs(config.prr_count);
  double icap_free_at = 0.0;

  std::vector<std::size_t> ready;  // arrival order
  std::size_t next_arrival = 0;
  std::size_t completed = 0;
  double now = 0.0;
  u64 reconfig_bytes = 0;  // tallied locally, counted once after the loop
  // Per-task re-queue budget consumed (FaultRecovery::kReschedule only).
  std::vector<u32> reschedules(config.faults ? tasks.size() : 0, 0);

  while (completed < tasks.size()) {
    // Admit arrivals up to `now`.
    while (next_arrival < tasks.size() &&
           tasks[next_arrival].arrival_s <= now) {
      ready.push_back(next_arrival++);
    }
    // Find an idle PRR.
    std::size_t idle = prrs.size();
    for (std::size_t p = 0; p < prrs.size(); ++p) {
      if (prrs[p].free_at <= now) {
        idle = p;
        break;
      }
    }
    if (ready.empty() || idle == prrs.size()) {
      // Advance time to the next interesting instant.
      double next = std::numeric_limits<double>::infinity();
      if (next_arrival < tasks.size()) {
        next = std::min(next, tasks[next_arrival].arrival_s);
      }
      if (!ready.empty()) {
        for (const PrrState& prr : prrs) next = std::min(next, prr.free_at);
      }
      if (!std::isfinite(next)) {
        throw ContractError{"simulate: deadlocked schedule"};
      }
      now = std::max(now, next);
      continue;
    }

    const std::size_t ti =
        pick_task(tasks, ready, config.policy, prrs, now);
    ready.erase(std::find(ready.begin(), ready.end(), ti));
    const HwTask& task = tasks[ti];

    // Prefer an idle PRR that already holds the PRM.
    std::size_t target = idle;
    for (std::size_t p = 0; p < prrs.size(); ++p) {
      if (prrs[p].free_at <= now && prrs[p].loaded == task.prm) {
        target = p;
        break;
      }
    }
    PrrState& prr = prrs[target];

    TaskOutcome& outcome = result.tasks[ti];
    outcome.task_index = narrow<u32>(ti);
    outcome.prr = narrow<u32>(target);

    double exec_start = now;
    if (prr.loaded != task.prm) {
      // Context switch: serialize on the shared ICAP. With HTR enabled and
      // the PRM live in another PRR, an on-chip copy can replace the
      // storage fetch when it is cheaper.
      const double storage_s =
          controller->estimate(prms[task.prm].bitstream_bytes, config.media)
              .total_s;
      bool relocate = false;
      if (config.allow_relocation && config.relocation_s > 0.0 &&
          config.relocation_s < storage_s) {
        for (std::size_t p = 0; p < prrs.size(); ++p) {
          if (p != target && prrs[p].loaded == task.prm) {
            relocate = true;
            break;
          }
        }
      }
      if (!relocate && config.faults != nullptr) {
        // Fault mode: run the CRC-verified transfer loop. The ICAP time
        // (including failed attempts and backoff) is spent whether or not
        // the transfer ultimately succeeds.
        const TransferOutcome xfer = verified_transfer(
            *controller, prms[task.prm].bitstream_bytes, config.media,
            config.faults, config.retry);
        outcome.reconfig_attempts += xfer.attempts;
        result.retry_attempts += xfer.attempts - 1;
        result.total_retry_backoff_s += xfer.backoff_s;
        result.total_fault_wasted_s += xfer.wasted_s;
        const double switch_start = std::max(now, icap_free_at);
        icap_free_at = switch_start + xfer.total_s;
        if (!xfer.success) {
          // Permanent failure: the PRR's contents are undefined and the
          // task did not run. Degrade gracefully - re-queue if the budget
          // allows, otherwise drop with a recorded penalty.
          ++result.failed_reconfigs;
          prr.loaded.reset();
          if (config.recovery == FaultRecovery::kReschedule &&
              reschedules[ti] < config.max_reschedules) {
            ++reschedules[ti];
            ++result.rescheduled_tasks;
            ready.push_back(ti);
            continue;
          }
          outcome.dropped = true;
          outcome.start_s = icap_free_at;
          outcome.finish_s = icap_free_at;
          outcome.wait_s = icap_free_at - task.arrival_s;
          result.makespan_s = std::max(result.makespan_s, outcome.finish_s);
          ++result.dropped_tasks;
          result.total_penalty_s += config.drop_penalty_s;
          ++completed;
          continue;
        }
        reconfig_bytes += prms[task.prm].bitstream_bytes;
        result.total_reconfig_s += xfer.total_s;
        ++result.reconfig_count;
        exec_start = icap_free_at;
        prr.loaded = task.prm;
        outcome.reconfigured = true;
      } else {
        if (!relocate) reconfig_bytes += prms[task.prm].bitstream_bytes;
        const double switch_s = relocate ? config.relocation_s : storage_s;
        const double switch_start = std::max(now, icap_free_at);
        icap_free_at = switch_start + switch_s;
        exec_start = icap_free_at;
        prr.loaded = task.prm;
        outcome.reconfigured = true;
        if (relocate) {
          result.total_relocation_s += switch_s;
          ++result.relocation_count;
        } else {
          result.total_reconfig_s += switch_s;
          ++result.reconfig_count;
        }
      }
    } else {
      ++result.reuse_hits;
    }
    outcome.start_s = exec_start;
    outcome.finish_s = exec_start + task.exec_s;
    outcome.wait_s = exec_start - task.arrival_s;
    prr.free_at = outcome.finish_s;
    prr.busy_exec_s += task.exec_s;
    result.makespan_s = std::max(result.makespan_s, outcome.finish_s);
    ++completed;
  }

  double wait_sum = 0;
  for (const TaskOutcome& t : result.tasks) wait_sum += t.wait_s;
  result.mean_wait_s =
      tasks.empty() ? 0.0 : wait_sum / static_cast<double>(tasks.size());
  double busy_sum = 0;
  for (const PrrState& prr : prrs) busy_sum += prr.busy_exec_s;
  result.prr_busy_fraction =
      result.makespan_s > 0
          ? busy_sum / (result.makespan_s *
                        static_cast<double>(config.prr_count))
          : 0.0;
  PRCOST_COUNT("sim.runs");
  PRCOST_COUNT_N("sim.tasks_completed", tasks.size());
  PRCOST_COUNT_N("sim.reconfigs", result.reconfig_count);
  PRCOST_COUNT_N("sim.relocations", result.relocation_count);
  PRCOST_COUNT_N("sim.reuse_hits", result.reuse_hits);
  PRCOST_COUNT_N("sim.reconfig_bytes", reconfig_bytes);
  if (config.faults != nullptr) {
    // Gated so fault-free runs register no fault metrics at all.
    PRCOST_COUNT_N("sim.failed_reconfigs", result.failed_reconfigs);
    PRCOST_COUNT_N("sim.dropped_tasks", result.dropped_tasks);
    PRCOST_COUNT_N("sim.rescheduled_tasks", result.rescheduled_tasks);
  }
  return result;
}

SimResult simulate_full_reconfig(
    const std::vector<PrmInfo>& prms, std::vector<HwTask> tasks,
    u64 full_bitstream_bytes_, StorageMedia media,
    std::shared_ptr<const ReconfigController> controller) {
  PRCOST_TRACE_SPAN("multitask_sim_full");
  for (const HwTask& task : tasks) {
    if (task.prm >= prms.size()) {
      throw ContractError{"simulate_full_reconfig: unknown PRM"};
    }
  }
  if (!controller) controller = default_controller();

  sort_by_arrival(tasks);

  SimResult result;
  result.tasks.resize(tasks.size());
  std::optional<u32> loaded;
  double now = 0.0;
  double exec_sum = 0.0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const HwTask& task = tasks[i];
    now = std::max(now, task.arrival_s);
    TaskOutcome& outcome = result.tasks[i];
    outcome.task_index = narrow<u32>(i);
    if (loaded != task.prm) {
      const double reconfig_s =
          controller->estimate(full_bitstream_bytes_, media).total_s;
      now += reconfig_s;
      loaded = task.prm;
      outcome.reconfigured = true;
      result.total_reconfig_s += reconfig_s;
      ++result.reconfig_count;
    } else {
      ++result.reuse_hits;
    }
    outcome.start_s = now;
    outcome.finish_s = now + task.exec_s;
    outcome.wait_s = outcome.start_s - task.arrival_s;
    now = outcome.finish_s;
    exec_sum += task.exec_s;
  }
  result.makespan_s = now;
  double wait_sum = 0;
  for (const TaskOutcome& t : result.tasks) wait_sum += t.wait_s;
  result.mean_wait_s =
      tasks.empty() ? 0.0 : wait_sum / static_cast<double>(tasks.size());
  result.prr_busy_fraction =
      result.makespan_s > 0 ? exec_sum / result.makespan_s : 0.0;
  PRCOST_COUNT("sim.full_reconfig_runs");
  PRCOST_COUNT_N("sim.reconfigs", result.reconfig_count);
  PRCOST_COUNT_N("sim.reconfig_bytes",
                 result.reconfig_count * full_bitstream_bytes_);
  return result;
}

}  // namespace prcost
