#include "multitask/workload.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace prcost {

std::vector<HwTask> make_workload(const WorkloadParams& params) {
  if (params.prm_count == 0) {
    throw ContractError{"make_workload: zero PRMs"};
  }
  Rng rng{params.seed};
  std::vector<HwTask> tasks;
  tasks.reserve(params.count);
  double clock = 0.0;
  for (u32 i = 0; i < params.count; ++i) {
    clock += rng.exponential(params.mean_interarrival_s);
    HwTask task;
    task.name = "task" + std::to_string(i);
    task.prm = narrow<u32>(rng.below(params.prm_count));
    task.arrival_s = clock;
    task.exec_s = rng.exponential(params.mean_exec_s);
    task.priority = narrow<u32>(rng.below(8));
    tasks.push_back(std::move(task));
  }
  return tasks;
}

void sort_by_arrival(std::vector<HwTask>& tasks) {
  // Sort an index permutation, not the tasks: the original position is
  // the tie-break key, and it must be captured before anything moves.
  std::vector<std::size_t> order(tasks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&tasks](std::size_t a, std::size_t b) {
              if (tasks[a].arrival_s != tasks[b].arrival_s) {
                return tasks[a].arrival_s < tasks[b].arrival_s;
              }
              return a < b;
            });
  std::vector<HwTask> sorted;
  sorted.reserve(tasks.size());
  for (const std::size_t i : order) sorted.push_back(std::move(tasks[i]));
  tasks = std::move(sorted);
}

}  // namespace prcost
