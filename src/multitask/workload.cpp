#include "multitask/workload.hpp"

#include "util/error.hpp"
#include "util/rng.hpp"

namespace prcost {

std::vector<HwTask> make_workload(const WorkloadParams& params) {
  if (params.prm_count == 0) {
    throw ContractError{"make_workload: zero PRMs"};
  }
  Rng rng{params.seed};
  std::vector<HwTask> tasks;
  tasks.reserve(params.count);
  double clock = 0.0;
  for (u32 i = 0; i < params.count; ++i) {
    clock += rng.exponential(params.mean_interarrival_s);
    HwTask task;
    task.name = "task" + std::to_string(i);
    task.prm = narrow<u32>(rng.below(params.prm_count));
    task.arrival_s = clock;
    task.exec_s = rng.exponential(params.mean_exec_s);
    task.priority = narrow<u32>(rng.below(8));
    tasks.push_back(std::move(task));
  }
  return tasks;
}

}  // namespace prcost
