// Hardware-task workload model for the multitasking simulator.
#pragma once

#include <string>
#include <vector>

#include "cost/prr_model.hpp"
#include "util/ints.hpp"

namespace prcost {

/// A hardware module that tasks instantiate (one per PRM).
struct PrmInfo {
  std::string name;
  PrmRequirements req;        ///< resource requirements (for PRR sizing)
  u64 bitstream_bytes = 0;    ///< partial bitstream size (for reconfig time)
};

/// One task instance: run PRM `prm` for `exec_s` seconds, arriving at
/// `arrival_s`.
struct HwTask {
  std::string name;
  u32 prm = 0;          ///< index into the PrmInfo table
  double arrival_s = 0;
  double exec_s = 0;
  u32 priority = 0;     ///< larger = more urgent (kPriority policy)
};

/// Deterministic random workload: `count` tasks over `prm_count` PRMs with
/// exponential inter-arrival (mean `mean_interarrival_s`) and exponential
/// service (mean `mean_exec_s`).
struct WorkloadParams {
  u32 count = 64;
  u32 prm_count = 3;
  double mean_interarrival_s = 2.0e-3;
  double mean_exec_s = 5.0e-3;
  u64 seed = 42;
};
std::vector<HwTask> make_workload(const WorkloadParams& params);

/// Canonical dispatch order shared by every simulator and the online
/// scheduler: sort by (arrival_s, original position). The explicit
/// positional tie-break pins equal-arrival ordering to the input order,
/// independent of the standard library's sort implementation, so
/// same-seed runs are reproducible everywhere.
void sort_by_arrival(std::vector<HwTask>& tasks);

}  // namespace prcost
