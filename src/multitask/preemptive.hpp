// Preemptive hardware multitasking with context save/restore.
//
// The authors' FCCM'13 work [5] exists precisely so a running hardware
// task can be *preempted*: its flip-flop/BRAM state is captured and read
// back (context save), the PRR is given to a more urgent task, and the
// victim later resumes from its saved context. Without save/restore, a
// preempted hardware task must restart from scratch, discarding completed
// work. This simulator quantifies the difference:
//
//   kNoPreemption : urgent tasks wait for a free PRR.
//   kRestart      : preemption discards the victim's progress.
//   kSaveRestore  : preemption pays the HTR save cost; the victim resumes
//                   with its remaining execution plus a restore cost.
//
// All configuration traffic (reconfigure, save, restore) serializes on the
// shared ICAP, as in the non-preemptive simulator.
#pragma once

#include <memory>
#include <vector>

#include "multitask/simulator.hpp"

namespace prcost {

/// Preemption discipline.
enum class PreemptMode { kNoPreemption, kRestart, kSaveRestore };

std::string_view preempt_mode_name(PreemptMode mode);

/// Configuration for the preemptive simulator.
struct PreemptiveConfig {
  u32 prr_count = 1;
  PreemptMode mode = PreemptMode::kSaveRestore;
  StorageMedia media = StorageMedia::kDdrSdram;
  std::shared_ptr<const ReconfigController> controller;  ///< null = DMA
  double context_save_s = 0.0;     ///< HTR readback cost per preemption
  double context_restore_s = 0.0;  ///< HTR write-back cost per resume
  /// Fault injection: when set, every reconfiguration runs the verified
  /// transfer loop; a permanent failure drops the job (the preemptive
  /// simulator has no reschedule mode - a failed load leaves no context
  /// worth resuming). Null (default) keeps the fault-free fast path.
  FaultInjector* faults = nullptr;
  RetryPolicy retry;
  double drop_penalty_s = 0.0;  ///< recorded penalty per dropped task
};

/// Results; task outcomes carry final completion times.
struct PreemptiveResult {
  double makespan_s = 0;
  u64 preemptions = 0;
  u64 reconfig_count = 0;
  double total_reconfig_s = 0;
  double total_save_restore_s = 0;
  double mean_high_priority_wait_s = 0;  ///< mean wait of top-quartile tasks
  // Fault accounting (all zero when PreemptiveConfig::faults is null).
  u64 failed_reconfigs = 0;  ///< transfers that exhausted their retries
  u64 dropped_tasks = 0;     ///< jobs abandoned after permanent failure
  u64 retry_attempts = 0;    ///< transfer attempts beyond the first
  double total_retry_backoff_s = 0;  ///< time spent backing off
  double total_fault_wasted_s = 0;   ///< ICAP time on failed attempts
  double total_penalty_s = 0;        ///< dropped_tasks * drop_penalty_s
  std::vector<TaskOutcome> tasks;
};

/// Run `tasks` (priorities matter: larger = more urgent) over `prms`.
PreemptiveResult simulate_preemptive(const std::vector<PrmInfo>& prms,
                                     std::vector<HwTask> tasks,
                                     const PreemptiveConfig& config);

}  // namespace prcost
