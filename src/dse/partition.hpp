// Set-partition enumeration for PR design-space exploration.
//
// A PR partitioning assigns each PRM to a PRR group; PRMs in one group
// time-multiplex one PRR. Section I calls this space "exponentially
// large"; for the handfuls of PRMs evaluated here exact enumeration
// (restricted growth strings, Bell-number many) is tractable and lets the
// explorer be exhaustive rather than heuristic.
#pragma once

#include <vector>

#include "util/ints.hpp"

namespace prcost {

/// One partition: groups[g] lists the item indices in group g.
using Partition = std::vector<std::vector<u32>>;

/// All partitions of {0..n-1} into at most `max_groups` non-empty groups
/// (0 = no limit). n must be <= 12 (Bell(12) ~ 4.2M).
std::vector<Partition> enumerate_partitions(u32 n, u32 max_groups = 0);

/// Number of partitions of an n-element set (Bell number).
u64 bell_number(u32 n);

}  // namespace prcost
