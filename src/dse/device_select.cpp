#include "dse/device_select.hpp"

#include <algorithm>

#include "cost/floorplan.hpp"
#include "device/device_db.hpp"
#include "obs/obs.hpp"
#include "util/parallel.hpp"

namespace prcost {
namespace {

DeviceChoice evaluate_device(const Device& device,
                             const std::vector<PrmInfo>& prms,
                             const std::vector<HwTask>& workload,
                             const DeviceSelectOptions& options) {
  PRCOST_TRACE_SPAN("device_select_eval");
  PRCOST_COUNT("dse.devices_ranked");
  DeviceChoice choice;
  choice.device = device.name;

  Floorplanner floorplanner{device.fabric};
  if (options.reserve_static_row) {
    floorplanner.reserve(0, device.fabric.num_columns(), 0, 1);
  }
  std::vector<PrmInfo> sized = prms;
  bool feasible = true;
  for (std::size_t p = 0; p < prms.size(); ++p) {
    const auto placed = floorplanner.place(prms[p].name, prms[p].req);
    if (!placed) {
      choice.reason = "cannot place " + prms[p].name;
      feasible = false;
      break;
    }
    sized[p].bitstream_bytes = placed->plan.bitstream.total_bytes;
    choice.total_prr_cells += placed->plan.organization.size();
    choice.total_bitstream_bytes += placed->plan.bitstream.total_bytes;
  }
  if (feasible) {
    choice.feasible = true;
    choice.fabric_fraction =
        static_cast<double>(choice.total_prr_cells) /
        static_cast<double>(u64{device.fabric.rows()} *
                            device.fabric.num_columns());
    SimConfig config;
    config.prr_count = narrow<u32>(prms.size());
    config.policy = options.policy;
    config.media = options.media;
    choice.makespan_s = simulate(sized, workload, config).makespan_s;
  } else {
    PRCOST_COUNT("dse.devices_infeasible");
  }
  return choice;
}

}  // namespace

std::vector<DeviceChoice> rank_devices(const std::vector<PrmInfo>& prms,
                                       const std::vector<HwTask>& workload,
                                       const DeviceSelectOptions& options) {
  PRCOST_TRACE_SPAN("device_select");
  const std::vector<Device>& devices = DeviceDb::instance().all();
  // Evaluations are independent; each writes its catalog-index slot, so
  // parallel execution preserves the catalog order the stable sort below
  // uses as its tie-break.
  std::vector<DeviceChoice> choices(devices.size());
  parallel_for(
      devices.size(),
      [&](std::size_t i) {
        choices[i] = evaluate_device(devices[i], prms, workload, options);
      },
      options.workers);

  std::stable_sort(choices.begin(), choices.end(),
                   [](const DeviceChoice& a, const DeviceChoice& b) {
                     if (a.feasible != b.feasible) return a.feasible;
                     if (!a.feasible) return false;  // keep catalog order
                     if (a.fabric_fraction != b.fabric_fraction) {
                       return a.fabric_fraction < b.fabric_fraction;
                     }
                     return a.makespan_s < b.makespan_s;
                   });
  return choices;
}

}  // namespace prcost
