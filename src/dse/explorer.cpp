#include "dse/explorer.hpp"

#include <algorithm>
#include <limits>

#include "obs/obs.hpp"
#include "util/parallel.hpp"

namespace prcost {
namespace {

DesignPoint evaluate_partition(const Partition& partition,
                               const std::vector<PrmInfo>& prms,
                               const Fabric& fabric,
                               const std::vector<HwTask>& workload,
                               const ExploreOptions& options) {
  PRCOST_TRACE_SPAN("dse_partition_eval");
  PRCOST_COUNT("dse.partitions_evaluated");
  DesignPoint point;
  point.partition = partition;

  // Size and floorplan one shared PRR per group.
  Floorplanner floorplanner{fabric};
  for (const auto& group : partition) {
    std::vector<PrmRequirements> reqs;
    reqs.reserve(group.size());
    for (const u32 prm : group) reqs.push_back(prms[prm].req);
    // Shared PRR demand: element-wise max (find_shared_prr semantics), but
    // placed through the occupancy-aware floorplanner.
    PrmRequirements merged;
    for (const PrmRequirements& r : reqs) {
      merged.lut_ff_pairs = std::max(merged.lut_ff_pairs, r.lut_ff_pairs);
      merged.luts = std::max(merged.luts, r.luts);
      merged.ffs = std::max(merged.ffs, r.ffs);
      merged.dsps = std::max(merged.dsps, r.dsps);
      merged.brams = std::max(merged.brams, r.brams);
    }
    const auto placed = floorplanner.place("group", merged);
    if (!placed) {
      point.infeasible_reason = "no room for a PRR group on the fabric";
      PRCOST_COUNT("dse.partitions_infeasible");
      return point;
    }
    point.prr_plans.push_back(placed->plan);
    point.total_prr_area += placed->plan.organization.size();
  }

  // Per-PRM bitstream size = its group's PRR organization through
  // Eqs. (18)-(23) (every PRM of a group reconfigures the whole PRR).
  std::vector<PrmInfo> sized = prms;
  for (std::size_t g = 0; g < partition.size(); ++g) {
    const u64 bytes = point.prr_plans[g].bitstream.total_bytes;
    for (const u32 prm : partition[g]) {
      sized[prm].bitstream_bytes = bytes;
      point.total_bitstream_bytes += bytes;
    }
  }

  // Schedule the workload: each group is a PRR; tasks of a PRM dispatch to
  // their group's PRR. The pool simulator models the pool as symmetric
  // PRRs, which matches when groups are similar; we approximate
  // group-affinity by running the pool with one PRR per group.
  SimConfig sim_config;
  sim_config.prr_count = narrow<u32>(partition.size());
  sim_config.policy = options.policy;
  sim_config.media = options.media;
  sim_config.controller = options.controller;
  const SimResult sim = simulate(sized, workload, sim_config);
  point.makespan_s = sim.makespan_s;
  point.total_reconfig_s = sim.total_reconfig_s;
  point.feasible = true;
  return point;
}

}  // namespace

std::vector<DesignPoint> explore(const std::vector<PrmInfo>& prms,
                                 const Fabric& fabric,
                                 const std::vector<HwTask>& workload,
                                 const ExploreOptions& options) {
  PRCOST_TRACE_SPAN("dse_explore");
  const auto partitions =
      enumerate_partitions(narrow<u32>(prms.size()), options.max_groups);
  std::vector<DesignPoint> points(partitions.size());
  parallel_for(
      partitions.size(),
      [&](std::size_t i) {
        points[i] =
            evaluate_partition(partitions[i], prms, fabric, workload, options);
      },
      options.workers);
  return points;
}

std::vector<DesignPoint> pareto_front(const std::vector<DesignPoint>& points) {
  // O(n log n) sort-and-sweep instead of the all-pairs dominance test.
  // Sorted by (area asc, makespan asc), a point survives iff it has the
  // smallest makespan of its area group AND beats the best makespan of
  // every strictly smaller area. Ties in both coordinates are mutually
  // non-dominating (no strict inequality), so a whole tied group survives
  // together - same semantics as the quadratic scan.
  std::vector<const DesignPoint*> feasible;
  feasible.reserve(points.size());
  for (const DesignPoint& p : points) {
    if (p.feasible) feasible.push_back(&p);
  }
  std::stable_sort(feasible.begin(), feasible.end(),
                   [](const DesignPoint* a, const DesignPoint* b) {
                     if (a->total_prr_area != b->total_prr_area) {
                       return a->total_prr_area < b->total_prr_area;
                     }
                     return a->makespan_s < b->makespan_s;
                   });
  std::vector<DesignPoint> front;
  double best_makespan = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < feasible.size();) {
    const u64 area = feasible[i]->total_prr_area;
    const double group_makespan = feasible[i]->makespan_s;  // group minimum
    for (; i < feasible.size() && feasible[i]->total_prr_area == area; ++i) {
      if (feasible[i]->makespan_s == group_makespan &&
          group_makespan < best_makespan) {
        front.push_back(*feasible[i]);
      }
    }
    best_makespan = std::min(best_makespan, group_makespan);
  }
  return front;
}

}  // namespace prcost
