#include "dse/partition.hpp"

#include <array>

#include "util/error.hpp"

namespace prcost {

std::vector<Partition> enumerate_partitions(u32 n, u32 max_groups) {
  if (n == 0) return {Partition{}};
  if (n > 12) throw ContractError{"enumerate_partitions: n > 12"};
  if (max_groups == 0) max_groups = n;

  // Restricted growth strings: a[i] <= max(a[0..i-1]) + 1.
  std::vector<Partition> out;
  std::vector<u32> a(n, 0);
  while (true) {
    u32 groups = 0;
    for (const u32 g : a) groups = std::max(groups, g + 1);
    if (groups <= max_groups) {
      Partition partition(groups);
      for (u32 i = 0; i < n; ++i) partition[a[i]].push_back(i);
      out.push_back(std::move(partition));
    }
    // Next restricted growth string: increment the right-most digit that
    // may grow (a[i] <= max of its prefix), zeroing everything after it.
    bool advanced = false;
    for (u32 i = n - 1; i >= 1; --i) {
      u32 prefix_max = 0;
      for (u32 j = 0; j < i; ++j) prefix_max = std::max(prefix_max, a[j]);
      if (a[i] <= prefix_max) {
        ++a[i];
        for (u32 j = i + 1; j < n; ++j) a[j] = 0;
        advanced = true;
        break;
      }
    }
    if (!advanced) return out;
  }
}

u64 bell_number(u32 n) {
  if (n > 24) throw ContractError{"bell_number: n too large for u64"};
  // Bell triangle.
  std::vector<u64> row{1};
  for (u32 i = 1; i <= n; ++i) {
    std::vector<u64> next;
    next.reserve(i + 1);
    next.push_back(row.back());
    for (const u64 v : row) {
      next.push_back(checked_add(next.back(), v));
    }
    row = std::move(next);
  }
  return row.front();
}

}  // namespace prcost
