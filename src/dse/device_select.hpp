// Device selection - the earliest of the paper's "early design decisions".
//
// Before PRR sizing even starts, a designer must pick a part. Because the
// cost models evaluate in microseconds, the whole catalog can be ranked in
// one call: for each device, floorplan one PRR per PRM, total the fabric
// cells and bitstream bytes, and simulate the workload; infeasible parts
// report why. The ranking prefers feasible parts with the smallest fabric
// footprint (cheapest adequate device), breaking ties on makespan.
#pragma once

#include <string>
#include <vector>

#include "multitask/simulator.hpp"

namespace prcost {

/// One catalog candidate, evaluated.
struct DeviceChoice {
  std::string device;
  bool feasible = false;
  std::string reason;              ///< set when infeasible
  u64 total_prr_cells = 0;         ///< sum of placed PRR sizes
  double fabric_fraction = 0.0;    ///< PRR cells / fabric cells
  u64 total_bitstream_bytes = 0;   ///< sum over PRMs
  double makespan_s = 0.0;         ///< workload makespan on this part
};

/// Selection options.
struct DeviceSelectOptions {
  SchedPolicy policy = SchedPolicy::kReuseAware;
  StorageMedia media = StorageMedia::kDdrSdram;
  /// Reserve the bottom fabric row for the static region before placing.
  bool reserve_static_row = true;
  /// parallel_for workers for the per-device evaluations (0 = auto).
  std::size_t workers = 0;
};

/// Evaluate every catalog device for `prms` under `workload`. The result
/// is sorted: feasible parts first (ascending fabric_fraction, then
/// makespan), then infeasible parts in catalog order.
std::vector<DeviceChoice> rank_devices(const std::vector<PrmInfo>& prms,
                                       const std::vector<HwTask>& workload,
                                       const DeviceSelectOptions& options = {});

}  // namespace prcost
