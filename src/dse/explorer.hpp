// PR design-space exploration.
//
// Ties every piece of the library together the way the paper's
// introduction says designers should: for each candidate partitioning of
// the PRMs into PRR groups, size each group's shared PRR with the Eq.
// (1)-(7) model, floorplan all PRRs together on the device, predict each
// PRM's partial bitstream with Eqs. (18)-(23), and evaluate the resulting
// hardware-multitasking schedule. The Pareto front over (fabric area,
// makespan) is what a designer would actually pick from - produced in
// seconds instead of one full PR implementation per point.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cost/floorplan.hpp"
#include "dse/partition.hpp"
#include "multitask/simulator.hpp"
#include "multitask/workload.hpp"

namespace prcost {

/// Exploration options.
struct ExploreOptions {
  u32 max_groups = 0;            ///< cap PRR count (0 = #PRMs)
  SchedPolicy policy = SchedPolicy::kReuseAware;
  StorageMedia media = StorageMedia::kDdrSdram;
  std::shared_ptr<const ReconfigController> controller;  ///< null = DMA
  std::size_t workers = 0;       ///< parallel_for workers (0 = auto)
};

/// One evaluated partitioning.
struct DesignPoint {
  Partition partition;               ///< PRM indices per PRR group
  bool feasible = false;
  std::string infeasible_reason;
  std::vector<PrrPlan> prr_plans;    ///< one per group
  u64 total_prr_area = 0;            ///< sum of H*W over groups
  u64 total_bitstream_bytes = 0;     ///< sum of per-PRM bitstream sizes
  double makespan_s = 0;
  double total_reconfig_s = 0;
};

/// Evaluate every partitioning of `prms` on `fabric` under `workload`.
/// Points come back in enumeration order; infeasible ones carry a reason.
std::vector<DesignPoint> explore(const std::vector<PrmInfo>& prms,
                                 const Fabric& fabric,
                                 const std::vector<HwTask>& workload,
                                 const ExploreOptions& options = {});

/// Pareto-minimal feasible points over (total_prr_area, makespan_s).
std::vector<DesignPoint> pareto_front(const std::vector<DesignPoint>& points);

}  // namespace prcost
