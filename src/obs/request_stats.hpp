// Request-scoped telemetry: attribute work to one logical request.
//
// The metrics registry is process-global; a multi-tenant serve loop needs
// to answer "what did THIS request cost?". RequestStats is a RAII
// accumulator installed as the calling thread's task context
// (prcost::set_task_context) so the parallel_for pool propagates it to
// every worker that joins a batch submitted under the scope. While a scope
// is live it collects:
//
//   - wall time (scope construction to summary()),
//   - per-phase span stats (trace.cpp feeds every finished span into the
//     active scope, even when global tracing is off),
//   - plan/bitstream cache hits and misses, reconfiguration retries
//     (PRCOST_REQUEST_EVENT sites in the subsystems),
//   - heap allocation counts (operator new replacement in
//     request_stats.cpp; see PRCOST_NO_ALLOC_HOOKS there).
//
// Cost model, matching metrics.hpp: with no scope live anywhere in the
// process, a PRCOST_REQUEST_EVENT site and the per-allocation hook each
// cost exactly one relaxed atomic load. Scopes nest (the inner scope
// receives events; the outer's context is restored on destruction) and are
// thread-safe: workers on pool threads update the same scope concurrently.
#pragma once

#include <array>
#include <atomic>
#include <optional>
#include <string>
#include <vector>

#include "util/ints.hpp"

namespace prcost::obs {

/// Aggregated span stats for one label within one request.
struct RequestPhase {
  std::string name;
  u64 count = 0;
  u64 total_ns = 0;
  u64 self_ns = 0;  ///< total minus directly nested child spans
  u64 max_ns = 0;
};

/// Plain-value result of a finished (or still-running) request scope.
struct RequestStatsSummary {
  u64 wall_ns = 0;
  u64 plan_cache_hits = 0;
  u64 plan_cache_misses = 0;
  u64 bitstream_cache_hits = 0;
  u64 bitstream_cache_misses = 0;
  u64 retries = 0;       ///< reconfiguration transfer re-attempts
  u64 allocations = 0;   ///< operator new calls attributed to the request
  std::vector<RequestPhase> phases;  ///< sorted by self_ns descending
};

/// Events a subsystem can attribute to the active request.
enum class RequestEvent : u32 {
  kPlanCacheHit,
  kPlanCacheMiss,
  kBitstreamCacheHit,
  kBitstreamCacheMiss,
  kRetry,
  kEventCount_,  // sentinel, keep last
};

/// One request's accumulator. Constructing installs it as the calling
/// thread's task context (nesting: the previous context is restored on
/// destruction); parallel_for propagates the context to pool workers.
class RequestStats {
 public:
  RequestStats();
  ~RequestStats();
  RequestStats(const RequestStats&) = delete;
  RequestStats& operator=(const RequestStats&) = delete;

  /// The scope installed on the calling thread (directly or propagated
  /// through the pool); nullptr when none.
  static RequestStats* current() noexcept;

  void count(RequestEvent event) noexcept;
  /// Fold one finished span into the per-label phase table. Lock-free and
  /// allocation-free: the table is a fixed-size inline open-addressing map
  /// keyed by the (static) span label, so instrumented hot paths stay
  /// zero-alloc while a request scope measures them. Labels beyond the
  /// slot capacity aggregate into a single "(other)" phase.
  void add_phase(const char* name, u64 dur_ns, u64 self_ns) noexcept;
  void add_allocation() noexcept {
    allocations_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Snapshot of everything attributed so far; wall_ns is measured up to
  /// this call. Callable while workers are still contributing, though the
  /// intended use is right before the scope ends.
  RequestStatsSummary summary() const;

 private:
  /// One phase accumulator; name transitions nullptr -> static label once.
  struct PhaseSlot {
    std::atomic<const char*> name{nullptr};
    std::atomic<u64> count{0};
    std::atomic<u64> total_ns{0};
    std::atomic<u64> self_ns{0};
    std::atomic<u64> max_ns{0};
  };
  static constexpr std::size_t kPhaseSlots = 64;  // power of two

  static void fold_into(PhaseSlot& slot, u64 dur_ns, u64 self_ns) noexcept;

  void* prev_context_ = nullptr;
  u64 start_ns_ = 0;
  std::array<std::atomic<u64>,
             static_cast<std::size_t>(RequestEvent::kEventCount_)>
      events_{};
  std::atomic<u64> allocations_{0};
  std::array<PhaseSlot, kPhaseSlots> phases_{};
  PhaseSlot overflow_;  ///< catch-all once the table is full
};

namespace detail {
/// Count of live RequestStats scopes process-wide; the one-load gate for
/// every disabled hook site.
extern std::atomic<u32> g_request_scopes;
void note_request_event_slow(RequestEvent event) noexcept;
}  // namespace detail

/// True while any request scope is live in the process. One relaxed load.
inline bool request_tracking_active() noexcept {
  return detail::g_request_scopes.load(std::memory_order_relaxed) != 0;
}

/// Attribute one event to the request active on the calling thread, if
/// any. Disabled cost: one relaxed atomic load (prefer the macro below so
/// -DPRCOST_NO_OBS builds compile the site out entirely).
inline void note_request_event(RequestEvent event) noexcept {
  if (request_tracking_active()) detail::note_request_event_slow(event);
}

/// Optional request scope as used by api::Engine: constructed enabled or
/// disabled per Options::collect_stats, finished into the response's
/// optional stats block.
class RequestScope {
 public:
  explicit RequestScope(bool enabled) {
    if (enabled) stats_.emplace();
  }
  /// Summary when enabled, nullopt otherwise. The scope stays installed
  /// until destruction, so call this once the request's work is done.
  std::optional<RequestStatsSummary> finish() const {
    if (!stats_) return std::nullopt;
    return stats_->summary();
  }

 private:
  std::optional<RequestStats> stats_;
};

}  // namespace prcost::obs

#if defined(PRCOST_NO_OBS)
#define PRCOST_REQUEST_EVENT(event) ((void)0)
#else
/// Attribute one event (a RequestEvent enumerator name) to the active
/// request. Disabled cost: one relaxed atomic load.
#define PRCOST_REQUEST_EVENT(event) \
  ::prcost::obs::note_request_event(::prcost::obs::RequestEvent::event)
#endif  // PRCOST_NO_OBS
