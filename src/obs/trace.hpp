// Scoped-span tracing with per-thread ring buffers and Chrome trace-event
// export.
//
//   {
//     PRCOST_TRACE_SPAN("prr_search");
//     ...  // work attributed to the span
//   }
//
// Spans nest lexically: each thread keeps a stack of active spans, child
// durations are subtracted from the parent's self time, and finished spans
// land in a fixed-capacity per-thread ring buffer (oldest records are
// overwritten; the drop count is reported). The collected spans export as
// Chrome trace-event JSON — load the file at https://ui.perfetto.dev or
// chrome://tracing — or as a self-time summary table sorted by where the
// time actually went.
//
// Cost model: a disabled span is one relaxed atomic load at construction
// and a branch on a local bool at destruction; recording an enabled span is
// two clock reads plus a store into the thread-local ring. -DPRCOST_NO_OBS
// compiles spans out entirely.
#pragma once

#include <atomic>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/ints.hpp"
#include "util/table.hpp"

namespace prcost::obs {

/// Global tracing switch. Relaxed load; spans started while disabled are
/// never recorded (flipping the switch mid-span records nothing for it).
bool tracing_enabled() noexcept;
void set_tracing(bool on) noexcept;

/// True when spans must run their timing path at all: global tracing is on
/// OR at least one request-stats scope wants per-phase times. One relaxed
/// load of a combined flag, so a fully disabled span site costs the same
/// single load it always did.
bool span_capture_active() noexcept;

/// Internal: RequestStats scopes register (+1) / unregister (-1) their
/// interest in span capture.
void add_request_phase_capture(int delta) noexcept;

/// Reads PRCOST_TRACE; "1"/non-empty-non-"0" enables tracing AND metrics
/// (they are one observability surface for env-driven runs). Returns
/// whether observability ended up enabled.
bool init_from_env();

/// One finished span as stored in a ring buffer.
struct SpanRecord {
  const char* name = nullptr;  ///< static-storage string from the macro
  u64 start_ns = 0;            ///< monotonic_ns() at entry
  u64 dur_ns = 0;              ///< wall duration
  u64 self_ns = 0;             ///< dur minus directly nested child spans
  u32 depth = 0;               ///< nesting depth within its thread
};

/// RAII span. Use via PRCOST_TRACE_SPAN; constructible directly when the
/// name is built at runtime is deliberately NOT supported (records keep the
/// pointer, so names must have static storage duration).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* static_name) noexcept {
    if (span_capture_active()) begin(static_name);
  }
  ~ScopedSpan() {
    if (active_) finish();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void begin(const char* static_name) noexcept;
  void finish() noexcept;

  ScopedSpan* parent_ = nullptr;
  const char* name_ = nullptr;
  u64 start_ns_ = 0;
  u64 child_ns_ = 0;
  u32 depth_ = 0;
  bool active_ = false;
};

/// Aggregated per-name view of the recorded spans.
struct TraceSummaryRow {
  std::string name;
  u64 count = 0;
  u64 total_ns = 0;
  u64 self_ns = 0;
  u64 max_ns = 0;
};

/// Copy of every retained span across all threads, ordered by start time.
std::vector<SpanRecord> trace_spans();

/// Rows aggregated by span name, sorted by self time descending.
std::vector<TraceSummaryRow> trace_summary();

/// trace_summary() rendered with util's TextTable (ms columns).
TextTable trace_summary_table();

/// Chrome trace-event JSON ({"traceEvents":[...]}, complete "X" events,
/// microsecond timestamps). Safe to call while tracing is enabled, but the
/// intended use is export after the traced workload finished.
std::string chrome_trace_json();
void write_chrome_trace(std::ostream& out);

/// Flamegraph-compatible folded stacks: one "root;child;leaf <self_ns>"
/// line per distinct stack, self times in nanoseconds aggregated across
/// all threads, lines sorted lexicographically. Feed to flamegraph.pl,
/// inferno, or speedscope. Ancestor frames evicted by ring wrap-around
/// render as "?".
std::string folded_stacks();
void write_folded_stacks(std::ostream& out);

/// Total spans recorded / overwritten by ring wrap-around since clear.
u64 trace_span_count();
u64 trace_dropped_count();

/// Discard all recorded spans (rings stay registered).
void clear_trace();

}  // namespace prcost::obs

#if defined(PRCOST_NO_OBS)

#define PRCOST_TRACE_SPAN(name)

#else

#define PRCOST_OBS_CONCAT_IMPL(a, b) a##b
#define PRCOST_OBS_CONCAT(a, b) PRCOST_OBS_CONCAT_IMPL(a, b)

/// Open a span covering the rest of the enclosing scope.
#define PRCOST_TRACE_SPAN(name)                    \
  const ::prcost::obs::ScopedSpan PRCOST_OBS_CONCAT( \
      prcost_obs_span_, __LINE__) {                \
    name                                           \
  }

#endif  // PRCOST_NO_OBS
