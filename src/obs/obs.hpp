// Umbrella header for instrumentation sites: metrics macros
// (PRCOST_COUNT / PRCOST_COUNT_N / PRCOST_GAUGE_SET / PRCOST_HIST) and the
// tracing macro (PRCOST_TRACE_SPAN). See metrics.hpp and trace.hpp for the
// cost model and export surfaces.
#pragma once

#include "obs/metrics.hpp"        // IWYU pragma: export
#include "obs/request_stats.hpp"  // IWYU pragma: export
#include "obs/trace.hpp"          // IWYU pragma: export
