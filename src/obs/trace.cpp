#include "obs/trace.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/request_stats.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

namespace prcost::obs {
namespace {

// Combined span-capture flag: bit 0 is the global tracing switch, and each
// live request-stats scope adds 2. ScopedSpan gates on "any bit set", so a
// disabled span site still costs exactly one relaxed atomic load while
// request scopes can collect phase times without global tracing.
constexpr u32 kTracingBit = 1;
std::atomic<u32> g_span_capture{0};

// Capacity per thread; at 40 bytes/record this is ~2.6 MB per traced
// thread, enough for every bench/CLI run while bounding a runaway loop.
constexpr u64 kRingCapacity = 1 << 16;

struct ThreadRing {
  u32 tid = 0;
  /// Total records ever written; readers take min(count, capacity) of the
  /// most recent. Release store pairs with the exporter's acquire load.
  std::atomic<u64> count{0};
  std::vector<SpanRecord> records{kRingCapacity};
};

/// Owns one shared_ptr per ring so span data survives thread exit.
struct Collector {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadRing>> rings;
  u32 next_tid = 1;
};

Collector& collector() {
  static Collector* c = new Collector;  // leaked: usable during exit
  return *c;
}

ThreadRing& local_ring() {
  thread_local const std::shared_ptr<ThreadRing> ring = [] {
    auto r = std::make_shared<ThreadRing>();
    Collector& c = collector();
    const std::scoped_lock lock{c.mutex};
    r->tid = c.next_tid++;
    c.rings.push_back(r);
    return r;
  }();
  return *ring;
}

thread_local ScopedSpan* t_current_span = nullptr;

/// Snapshot every ring under the collector lock.
std::vector<std::shared_ptr<ThreadRing>> ring_snapshot() {
  Collector& c = collector();
  const std::scoped_lock lock{c.mutex};
  return c.rings;
}

}  // namespace

bool tracing_enabled() noexcept {
  return (g_span_capture.load(std::memory_order_relaxed) & kTracingBit) != 0;
}

void set_tracing(bool on) noexcept {
  if (on) {
    g_span_capture.fetch_or(kTracingBit, std::memory_order_relaxed);
  } else {
    g_span_capture.fetch_and(~kTracingBit, std::memory_order_relaxed);
  }
}

bool span_capture_active() noexcept {
  return g_span_capture.load(std::memory_order_relaxed) != 0;
}

void add_request_phase_capture(int delta) noexcept {
  g_span_capture.fetch_add(static_cast<u32>(2 * delta),
                           std::memory_order_relaxed);
}

bool init_from_env() {
  const char* value = std::getenv("PRCOST_TRACE");
  if (value == nullptr || *value == '\0' ||
      std::string_view{value} == "0") {
    return false;
  }
  set_tracing(true);
  set_metrics_enabled(true);
  return true;
}

void ScopedSpan::begin(const char* static_name) noexcept {
  active_ = true;
  name_ = static_name;
  parent_ = t_current_span;
  depth_ = parent_ != nullptr ? parent_->depth_ + 1 : 0;
  t_current_span = this;
  start_ns_ = monotonic_ns();
}

void ScopedSpan::finish() noexcept {
  const u64 dur = monotonic_ns() - start_ns_;
  if (parent_ != nullptr) parent_->child_ns_ += dur;
  t_current_span = parent_;
  const u64 self = dur > child_ns_ ? dur - child_ns_ : 0;
  if (tracing_enabled()) {
    ThreadRing& ring = local_ring();
    const u64 n = ring.count.load(std::memory_order_relaxed);
    ring.records[n % kRingCapacity] =
        SpanRecord{name_, start_ns_, dur, self, depth_};
    ring.count.store(n + 1, std::memory_order_release);
  }
  // Feed the request scope active on this thread (the span may have begun
  // because a scope, not global tracing, raised the capture flag).
  if ((g_span_capture.load(std::memory_order_relaxed) & ~kTracingBit) != 0) {
    if (RequestStats* stats = RequestStats::current()) {
      stats->add_phase(name_, dur, self);
    }
  }
}

std::vector<SpanRecord> trace_spans() {
  std::vector<SpanRecord> out;
  for (const auto& ring : ring_snapshot()) {
    const u64 n = ring->count.load(std::memory_order_acquire);
    const u64 retained = std::min(n, kRingCapacity);
    for (u64 i = 0; i < retained; ++i) {
      // Oldest retained record first: when wrapped, start at count % cap.
      const u64 slot = n > kRingCapacity ? (n + i) % kRingCapacity : i;
      out.push_back(ring->records[slot]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_ns < b.start_ns;
            });
  return out;
}

std::vector<TraceSummaryRow> trace_summary() {
  std::map<std::string_view, TraceSummaryRow> by_name;
  for (const SpanRecord& span : trace_spans()) {
    TraceSummaryRow& row = by_name[span.name];
    if (row.count == 0) row.name = span.name;
    ++row.count;
    row.total_ns += span.dur_ns;
    row.self_ns += span.self_ns;
    row.max_ns = std::max(row.max_ns, span.dur_ns);
  }
  std::vector<TraceSummaryRow> rows;
  rows.reserve(by_name.size());
  for (auto& [name, row] : by_name) rows.push_back(std::move(row));
  std::sort(rows.begin(), rows.end(),
            [](const TraceSummaryRow& a, const TraceSummaryRow& b) {
              return a.self_ns > b.self_ns;
            });
  return rows;
}

TextTable trace_summary_table() {
  TextTable table{{"span", "count", "self (ms)", "total (ms)", "avg (ms)",
                   "max (ms)"}};
  const auto ms = [](u64 ns) {
    return format_fixed(static_cast<double>(ns) / 1e6, 3);
  };
  for (const TraceSummaryRow& row : trace_summary()) {
    table.add_row({row.name, std::to_string(row.count), ms(row.self_ns),
                   ms(row.total_ns),
                   ms(row.count > 0 ? row.total_ns / row.count : 0),
                   ms(row.max_ns)});
  }
  return table;
}

void write_chrome_trace(std::ostream& out) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Thread metadata first so Perfetto labels each track.
  for (const auto& ring : ring_snapshot()) {
    if (ring->count.load(std::memory_order_acquire) == 0) continue;
    if (!first) out << ',';
    first = false;
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << ring->tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"prcost-thread-"
        << ring->tid << "\"}}";
  }
  for (const auto& ring : ring_snapshot()) {
    const u64 n = ring->count.load(std::memory_order_acquire);
    const u64 retained = std::min(n, kRingCapacity);
    for (u64 i = 0; i < retained; ++i) {
      const u64 slot = n > kRingCapacity ? (n + i) % kRingCapacity : i;
      const SpanRecord& span = ring->records[slot];
      if (!first) out << ',';
      first = false;
      // Timestamps/durations in microseconds (Chrome trace convention).
      out << "{\"name\":\"" << span.name
          << "\",\"cat\":\"prcost\",\"ph\":\"X\",\"ts\":"
          << format_fixed(static_cast<double>(span.start_ns) / 1e3, 3)
          << ",\"dur\":"
          << format_fixed(static_cast<double>(span.dur_ns) / 1e3, 3)
          << ",\"pid\":1,\"tid\":" << ring->tid << "}";
    }
  }
  out << "]}";
}

std::string chrome_trace_json() {
  std::ostringstream os;
  write_chrome_trace(os);
  return os.str();
}

void write_folded_stacks(std::ostream& out) {
  // Stacks are reconstructed per thread: records sorted by start time are a
  // pre-order walk of the span tree, so a record at depth d has the current
  // depth-(d-1) record as its parent. Self times then aggregate by path
  // across all threads.
  std::map<std::string, u64> self_by_stack;
  for (const auto& ring : ring_snapshot()) {
    const u64 n = ring->count.load(std::memory_order_acquire);
    const u64 retained = std::min(n, kRingCapacity);
    std::vector<SpanRecord> records;
    records.reserve(retained);
    for (u64 i = 0; i < retained; ++i) {
      const u64 slot = n > kRingCapacity ? (n + i) % kRingCapacity : i;
      records.push_back(ring->records[slot]);
    }
    std::sort(records.begin(), records.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                                : a.depth < b.depth;
              });
    std::vector<const char*> frames;
    for (const SpanRecord& span : records) {
      frames.resize(span.depth);
      // Ancestors evicted by ring wrap-around leave holes; mark them.
      for (const char*& frame : frames) {
        if (frame == nullptr) frame = "?";
      }
      frames.push_back(span.name);
      std::string stack;
      for (std::size_t i = 0; i < frames.size(); ++i) {
        if (i) stack += ';';
        stack += frames[i];
      }
      self_by_stack[stack] += span.self_ns;
    }
  }
  for (const auto& [stack, self_ns] : self_by_stack) {
    out << stack << ' ' << self_ns << '\n';
  }
}

std::string folded_stacks() {
  std::ostringstream os;
  write_folded_stacks(os);
  return os.str();
}

u64 trace_span_count() {
  u64 total = 0;
  for (const auto& ring : ring_snapshot()) {
    total += ring->count.load(std::memory_order_acquire);
  }
  return total;
}

u64 trace_dropped_count() {
  u64 dropped = 0;
  for (const auto& ring : ring_snapshot()) {
    const u64 n = ring->count.load(std::memory_order_acquire);
    if (n > kRingCapacity) dropped += n - kRingCapacity;
  }
  return dropped;
}

void clear_trace() {
  for (const auto& ring : ring_snapshot()) {
    ring->count.store(0, std::memory_order_release);
  }
}

}  // namespace prcost::obs
