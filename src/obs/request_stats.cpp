#include "obs/request_stats.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <new>

#include "obs/trace.hpp"
#include "util/parallel.hpp"
#include "util/stopwatch.hpp"

namespace prcost::obs {

namespace detail {

std::atomic<u32> g_request_scopes{0};

void note_request_event_slow(RequestEvent event) noexcept {
  if (RequestStats* stats = RequestStats::current()) stats->count(event);
}

}  // namespace detail

RequestStats* RequestStats::current() noexcept {
  return static_cast<RequestStats*>(task_context());
}

RequestStats::RequestStats()
    : prev_context_(task_context()), start_ns_(monotonic_ns()) {
  set_task_context(this);
  detail::g_request_scopes.fetch_add(1, std::memory_order_relaxed);
  add_request_phase_capture(+1);
}

RequestStats::~RequestStats() {
  add_request_phase_capture(-1);
  detail::g_request_scopes.fetch_sub(1, std::memory_order_relaxed);
  set_task_context(prev_context_);
}

void RequestStats::count(RequestEvent event) noexcept {
  events_[static_cast<std::size_t>(event)].fetch_add(
      1, std::memory_order_relaxed);
}

void RequestStats::fold_into(PhaseSlot& slot, u64 dur_ns,
                             u64 self_ns) noexcept {
  slot.count.fetch_add(1, std::memory_order_relaxed);
  slot.total_ns.fetch_add(dur_ns, std::memory_order_relaxed);
  slot.self_ns.fetch_add(self_ns, std::memory_order_relaxed);
  u64 prev = slot.max_ns.load(std::memory_order_relaxed);
  while (prev < dur_ns &&
         !slot.max_ns.compare_exchange_weak(prev, dur_ns,
                                            std::memory_order_relaxed)) {
  }
}

void RequestStats::add_phase(const char* name, u64 dur_ns,
                             u64 self_ns) noexcept {
  // FNV-1a over the label text (not the pointer) so identical labels from
  // different translation units share one slot; the probe compares content
  // for the same reason. Labels are static, so storing the pointer is safe.
  u64 hash = 1469598103934665603ull;
  for (const char* c = name; *c != '\0'; ++c) {
    hash = (hash ^ static_cast<unsigned char>(*c)) * 1099511628211ull;
  }
  std::size_t index = hash & (kPhaseSlots - 1);
  for (std::size_t probe = 0; probe < kPhaseSlots; ++probe) {
    PhaseSlot& slot = phases_[index];
    const char* current = slot.name.load(std::memory_order_acquire);
    if (current == nullptr) {
      const char* expected = nullptr;
      if (slot.name.compare_exchange_strong(expected, name,
                                            std::memory_order_acq_rel)) {
        current = name;
      } else {
        current = expected;  // raced with another thread's claim
      }
    }
    if (current == name || std::strcmp(current, name) == 0) {
      fold_into(slot, dur_ns, self_ns);
      return;
    }
    index = (index + 1) & (kPhaseSlots - 1);
  }
  fold_into(overflow_, dur_ns, self_ns);
}

RequestStatsSummary RequestStats::summary() const {
  const auto event = [&](RequestEvent e) {
    return events_[static_cast<std::size_t>(e)].load(
        std::memory_order_relaxed);
  };
  RequestStatsSummary out;
  out.wall_ns = monotonic_ns() - start_ns_;
  out.plan_cache_hits = event(RequestEvent::kPlanCacheHit);
  out.plan_cache_misses = event(RequestEvent::kPlanCacheMiss);
  out.bitstream_cache_hits = event(RequestEvent::kBitstreamCacheHit);
  out.bitstream_cache_misses = event(RequestEvent::kBitstreamCacheMiss);
  out.retries = event(RequestEvent::kRetry);
  out.allocations = allocations_.load(std::memory_order_relaxed);
  const auto read_slot = [](const PhaseSlot& slot, const char* name) {
    RequestPhase phase;
    phase.name = name;
    phase.count = slot.count.load(std::memory_order_relaxed);
    phase.total_ns = slot.total_ns.load(std::memory_order_relaxed);
    phase.self_ns = slot.self_ns.load(std::memory_order_relaxed);
    phase.max_ns = slot.max_ns.load(std::memory_order_relaxed);
    return phase;
  };
  for (const PhaseSlot& slot : phases_) {
    if (const char* name = slot.name.load(std::memory_order_acquire)) {
      out.phases.push_back(read_slot(slot, name));
    }
  }
  if (overflow_.count.load(std::memory_order_relaxed) != 0) {
    out.phases.push_back(read_slot(overflow_, "(other)"));
  }
  std::sort(out.phases.begin(), out.phases.end(),
            [](const RequestPhase& a, const RequestPhase& b) {
              return a.self_ns != b.self_ns ? a.self_ns > b.self_ns
                                            : a.name < b.name;
            });
  return out;
}

}  // namespace prcost::obs

// -------------------------------------------------------------------------
// Allocation attribution: replace the non-aligned global operator new/delete
// forms so each heap allocation made while a request scope is active on the
// calling thread counts toward that request. With no scope live the hook is
// one relaxed atomic load per allocation. Over-aligned forms are left to the
// default implementation (their allocations simply go uncounted), and
// -DPRCOST_NO_ALLOC_HOOKS (or -DPRCOST_NO_OBS) removes the replacement
// entirely for builds that must not override the allocator.
// -------------------------------------------------------------------------
#if !defined(PRCOST_NO_OBS) && !defined(PRCOST_NO_ALLOC_HOOKS)

namespace {

inline void prcost_count_allocation() noexcept {
  using prcost::obs::RequestStats;
  if (prcost::obs::detail::g_request_scopes.load(std::memory_order_relaxed) ==
      0) {
    return;
  }
  if (RequestStats* stats = RequestStats::current()) stats->add_allocation();
}

void* prcost_allocate(std::size_t size) {
  if (size == 0) size = 1;
  prcost_count_allocation();
  for (;;) {
    if (void* p = std::malloc(size)) return p;
    if (std::new_handler handler = std::get_new_handler()) {
      handler();
    } else {
      throw std::bad_alloc{};
    }
  }
}

void* prcost_allocate_nothrow(std::size_t size) noexcept {
  if (size == 0) size = 1;
  prcost_count_allocation();
  return std::malloc(size);
}

}  // namespace

void* operator new(std::size_t size) { return prcost_allocate(size); }
void* operator new[](std::size_t size) { return prcost_allocate(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return prcost_allocate_nothrow(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return prcost_allocate_nothrow(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // !PRCOST_NO_OBS && !PRCOST_NO_ALLOC_HOOKS
