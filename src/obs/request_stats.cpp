#include "obs/request_stats.hpp"

#include <algorithm>
#include <cstdlib>
#include <new>

#include "obs/trace.hpp"
#include "util/parallel.hpp"
#include "util/stopwatch.hpp"

namespace prcost::obs {

namespace detail {

std::atomic<u32> g_request_scopes{0};

void note_request_event_slow(RequestEvent event) noexcept {
  if (RequestStats* stats = RequestStats::current()) stats->count(event);
}

}  // namespace detail

RequestStats* RequestStats::current() noexcept {
  return static_cast<RequestStats*>(task_context());
}

RequestStats::RequestStats()
    : prev_context_(task_context()), start_ns_(monotonic_ns()) {
  set_task_context(this);
  detail::g_request_scopes.fetch_add(1, std::memory_order_relaxed);
  add_request_phase_capture(+1);
}

RequestStats::~RequestStats() {
  add_request_phase_capture(-1);
  detail::g_request_scopes.fetch_sub(1, std::memory_order_relaxed);
  set_task_context(prev_context_);
}

void RequestStats::count(RequestEvent event) noexcept {
  events_[static_cast<std::size_t>(event)].fetch_add(
      1, std::memory_order_relaxed);
}

void RequestStats::add_phase(const char* name, u64 dur_ns, u64 self_ns) {
  const std::scoped_lock lock{phase_mutex_};
  RequestPhase& phase = phases_[std::string_view{name}];
  if (phase.count == 0) phase.name = name;
  ++phase.count;
  phase.total_ns += dur_ns;
  phase.self_ns += self_ns;
  phase.max_ns = std::max(phase.max_ns, dur_ns);
}

RequestStatsSummary RequestStats::summary() const {
  const auto event = [&](RequestEvent e) {
    return events_[static_cast<std::size_t>(e)].load(
        std::memory_order_relaxed);
  };
  RequestStatsSummary out;
  out.wall_ns = monotonic_ns() - start_ns_;
  out.plan_cache_hits = event(RequestEvent::kPlanCacheHit);
  out.plan_cache_misses = event(RequestEvent::kPlanCacheMiss);
  out.bitstream_cache_hits = event(RequestEvent::kBitstreamCacheHit);
  out.bitstream_cache_misses = event(RequestEvent::kBitstreamCacheMiss);
  out.retries = event(RequestEvent::kRetry);
  out.allocations = allocations_.load(std::memory_order_relaxed);
  {
    const std::scoped_lock lock{phase_mutex_};
    out.phases.reserve(phases_.size());
    for (const auto& [name, phase] : phases_) out.phases.push_back(phase);
  }
  std::sort(out.phases.begin(), out.phases.end(),
            [](const RequestPhase& a, const RequestPhase& b) {
              return a.self_ns != b.self_ns ? a.self_ns > b.self_ns
                                            : a.name < b.name;
            });
  return out;
}

}  // namespace prcost::obs

// -------------------------------------------------------------------------
// Allocation attribution: replace the non-aligned global operator new/delete
// forms so each heap allocation made while a request scope is active on the
// calling thread counts toward that request. With no scope live the hook is
// one relaxed atomic load per allocation. Over-aligned forms are left to the
// default implementation (their allocations simply go uncounted), and
// -DPRCOST_NO_ALLOC_HOOKS (or -DPRCOST_NO_OBS) removes the replacement
// entirely for builds that must not override the allocator.
// -------------------------------------------------------------------------
#if !defined(PRCOST_NO_OBS) && !defined(PRCOST_NO_ALLOC_HOOKS)

namespace {

inline void prcost_count_allocation() noexcept {
  using prcost::obs::RequestStats;
  if (prcost::obs::detail::g_request_scopes.load(std::memory_order_relaxed) ==
      0) {
    return;
  }
  if (RequestStats* stats = RequestStats::current()) stats->add_allocation();
}

void* prcost_allocate(std::size_t size) {
  if (size == 0) size = 1;
  prcost_count_allocation();
  for (;;) {
    if (void* p = std::malloc(size)) return p;
    if (std::new_handler handler = std::get_new_handler()) {
      handler();
    } else {
      throw std::bad_alloc{};
    }
  }
}

void* prcost_allocate_nothrow(std::size_t size) noexcept {
  if (size == 0) size = 1;
  prcost_count_allocation();
  return std::malloc(size);
}

}  // namespace

void* operator new(std::size_t size) { return prcost_allocate(size); }
void* operator new[](std::size_t size) { return prcost_allocate(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return prcost_allocate_nothrow(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return prcost_allocate_nothrow(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // !PRCOST_NO_OBS && !PRCOST_NO_ALLOC_HOOKS
