#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "util/error.hpp"

namespace prcost::obs {
namespace {

std::atomic<bool> g_metrics_enabled{false};

/// JSON string escaping for metric names (we only emit names we control,
/// but stay safe on quotes/backslashes/control characters).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

bool metrics_enabled() noexcept {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool on) noexcept {
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}

void Gauge::add(double delta) noexcept {
  if (!metrics_enabled()) return;
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw ContractError{"Histogram: bounds must be strictly ascending"};
  }
}

void Histogram::record_unchecked(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<u64> Histogram::bucket_counts() const {
  std::vector<u64> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) out.push_back(b.load(std::memory_order_relaxed));
  return out;
}

double Histogram::quantile(double q) const {
  return histogram_quantile(bounds_, bucket_counts(), q);
}

double histogram_quantile(const std::vector<double>& bounds,
                          const std::vector<u64>& buckets, double q) {
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  if (buckets.size() != bounds.size() + 1) return kNan;
  u64 total = 0;
  for (const u64 b : buckets) total += b;
  if (total == 0) return kNan;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  u64 cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const u64 before = cum;
    cum += buckets[i];
    if (buckets[i] == 0 || static_cast<double>(cum) < rank) continue;
    if (i >= bounds.size()) {
      // Overflow bucket: no finite upper edge to interpolate toward.
      return bounds.empty() ? kNan : bounds.back();
    }
    const double upper = bounds[i];
    const double lower = i == 0 ? std::min(0.0, upper) : bounds[i - 1];
    return lower + (upper - lower) * (rank - static_cast<double>(before)) /
                       static_cast<double>(buckets[i]);
  }
  return bounds.empty() ? kNan : bounds.back();
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::instance() {
  // Intentionally leaked: exporters may run during static destruction
  // (e.g. the bench PRCOST_TRACE env hook), after a function-local static
  // registry would already be gone.
  static Registry* registry = new Registry;
  return *registry;
}

Counter& Registry::counter(std::string_view name) {
  const std::scoped_lock lock{mutex_};
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string{name}, std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::scoped_lock lock{mutex_};
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string{name}, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  const std::scoped_lock lock{mutex_};
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string{name},
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

std::vector<MetricSnapshot> Registry::snapshot() const {
  const std::scoped_lock lock{mutex_};
  std::vector<MetricSnapshot> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    MetricSnapshot snap;
    snap.name = name;
    snap.kind = MetricKind::kCounter;
    snap.count = counter->value();
    out.push_back(std::move(snap));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSnapshot snap;
    snap.name = name;
    snap.kind = MetricKind::kGauge;
    snap.value = gauge->value();
    out.push_back(std::move(snap));
  }
  for (const auto& [name, hist] : histograms_) {
    MetricSnapshot snap;
    snap.name = name;
    snap.kind = MetricKind::kHistogram;
    snap.count = hist->count();
    snap.value = hist->sum();
    snap.bounds = hist->bounds();
    snap.buckets = hist->bucket_counts();
    out.push_back(std::move(snap));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

std::string Registry::to_text() const {
  const auto snaps = snapshot();
  std::size_t width = 0;
  for (const auto& s : snaps) width = std::max(width, s.name.size());
  std::ostringstream os;
  for (const auto& s : snaps) {
    os << s.name << std::string(width - s.name.size() + 2, ' ');
    switch (s.kind) {
      case MetricKind::kCounter: os << s.count; break;
      case MetricKind::kGauge: os << format_double(s.value); break;
      case MetricKind::kHistogram:
        os << "count=" << s.count << " sum=" << format_double(s.value)
           << " buckets=[";
        for (std::size_t b = 0; b < s.buckets.size(); ++b) {
          if (b) os << ' ';
          if (b < s.bounds.size()) {
            os << "le" << format_double(s.bounds[b]) << ':' << s.buckets[b];
          } else {
            os << "inf:" << s.buckets[b];
          }
        }
        os << ']';
        break;
    }
    os << '\n';
  }
  return os.str();
}

std::string Registry::to_json() const {
  const auto snaps = snapshot();
  std::ostringstream os;
  os << '{';
  const auto emit_kind = [&](MetricKind kind, const char* key) {
    os << '"' << key << "\":{";
    bool first = true;
    for (const auto& s : snaps) {
      if (s.kind != kind) continue;
      if (!first) os << ',';
      first = false;
      os << '"' << json_escape(s.name) << "\":";
      switch (kind) {
        case MetricKind::kCounter: os << s.count; break;
        case MetricKind::kGauge: os << format_double(s.value); break;
        case MetricKind::kHistogram: {
          os << "{\"count\":" << s.count << ",\"sum\":"
             << format_double(s.value) << ",\"bounds\":[";
          for (std::size_t b = 0; b < s.bounds.size(); ++b) {
            if (b) os << ',';
            os << format_double(s.bounds[b]);
          }
          os << "],\"buckets\":[";
          for (std::size_t b = 0; b < s.buckets.size(); ++b) {
            if (b) os << ',';
            os << s.buckets[b];
          }
          os << "]}";
          break;
        }
      }
    }
    os << '}';
  };
  emit_kind(MetricKind::kCounter, "counters");
  os << ',';
  emit_kind(MetricKind::kGauge, "gauges");
  os << ',';
  emit_kind(MetricKind::kHistogram, "histograms");
  os << '}';
  return os.str();
}

std::string Registry::to_openmetrics() const {
  std::ostringstream os;
  for (const MetricSnapshot& s : snapshot()) {
    const std::string name = openmetrics_name(s.name);
    // HELP carries the internal dotted name so an exposition consumer can
    // map series back to instrumentation sites.
    os << "# HELP " << name << " internal metric "
       << openmetrics_escape_label(s.name) << '\n';
    switch (s.kind) {
      case MetricKind::kCounter:
        os << "# TYPE " << name << " counter\n";
        os << name << "_total " << s.count << '\n';
        break;
      case MetricKind::kGauge:
        os << "# TYPE " << name << " gauge\n";
        os << name << ' ' << format_double(s.value) << '\n';
        break;
      case MetricKind::kHistogram: {
        os << "# TYPE " << name << " histogram\n";
        u64 cum = 0;  // exposition buckets are cumulative
        for (std::size_t b = 0; b < s.buckets.size(); ++b) {
          cum += s.buckets[b];
          os << name << "_bucket{le=\"";
          if (b < s.bounds.size()) {
            os << openmetrics_escape_label(format_double(s.bounds[b]));
          } else {
            os << "+Inf";
          }
          os << "\"} " << cum << '\n';
        }
        os << name << "_sum " << format_double(s.value) << '\n';
        os << name << "_count " << s.count << '\n';
        break;
      }
    }
  }
  os << "# EOF\n";
  return os.str();
}

void Registry::reset() {
  const std::scoped_lock lock{mutex_};
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
}

std::string openmetrics_escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string openmetrics_name(std::string_view name) {
  std::string out = "prcost_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += legal ? c : '_';
  }
  return out;
}

Snapshot Snapshot::capture() { return Snapshot{registry().snapshot()}; }

const MetricSnapshot* Snapshot::find(std::string_view name) const noexcept {
  const auto it = std::lower_bound(
      metrics.begin(), metrics.end(), name,
      [](const MetricSnapshot& s, std::string_view n) { return s.name < n; });
  if (it == metrics.end() || it->name != name) return nullptr;
  return &*it;
}

u64 Snapshot::counter(std::string_view name) const noexcept {
  const MetricSnapshot* s = find(name);
  return s != nullptr && s->kind == MetricKind::kCounter ? s->count : 0;
}

Snapshot snapshot_diff(const Snapshot& before, const Snapshot& after) {
  const auto sub = [](u64 a, u64 b) { return a > b ? a - b : 0; };
  Snapshot out;
  out.metrics.reserve(after.metrics.size());
  for (const MetricSnapshot& now : after.metrics) {
    MetricSnapshot d = now;
    const MetricSnapshot* was = before.find(now.name);
    if (was != nullptr && was->kind == now.kind) {
      switch (now.kind) {
        case MetricKind::kCounter:
          d.count = sub(now.count, was->count);
          break;
        case MetricKind::kGauge:
          break;  // gauges are point-in-time: keep the newer value
        case MetricKind::kHistogram:
          if (was->bounds == now.bounds &&
              was->buckets.size() == now.buckets.size()) {
            d.count = sub(now.count, was->count);
            d.value = now.value - was->value;
            for (std::size_t b = 0; b < d.buckets.size(); ++b) {
              d.buckets[b] = sub(now.buckets[b], was->buckets[b]);
            }
          }
          break;
      }
    }
    out.metrics.push_back(std::move(d));
  }
  return out;
}

}  // namespace prcost::obs
