#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace prcost::obs {
namespace {

std::atomic<bool> g_metrics_enabled{false};

/// JSON string escaping for metric names (we only emit names we control,
/// but stay safe on quotes/backslashes/control characters).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

bool metrics_enabled() noexcept {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool on) noexcept {
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}

void Gauge::add(double delta) noexcept {
  if (!metrics_enabled()) return;
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw ContractError{"Histogram: bounds must be strictly ascending"};
  }
}

void Histogram::record_unchecked(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<u64> Histogram::bucket_counts() const {
  std::vector<u64> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) out.push_back(b.load(std::memory_order_relaxed));
  return out;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::instance() {
  // Intentionally leaked: exporters may run during static destruction
  // (e.g. the bench PRCOST_TRACE env hook), after a function-local static
  // registry would already be gone.
  static Registry* registry = new Registry;
  return *registry;
}

Counter& Registry::counter(std::string_view name) {
  const std::scoped_lock lock{mutex_};
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string{name}, std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::scoped_lock lock{mutex_};
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string{name}, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  const std::scoped_lock lock{mutex_};
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string{name},
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

std::vector<MetricSnapshot> Registry::snapshot() const {
  const std::scoped_lock lock{mutex_};
  std::vector<MetricSnapshot> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    MetricSnapshot snap;
    snap.name = name;
    snap.kind = MetricKind::kCounter;
    snap.count = counter->value();
    out.push_back(std::move(snap));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSnapshot snap;
    snap.name = name;
    snap.kind = MetricKind::kGauge;
    snap.value = gauge->value();
    out.push_back(std::move(snap));
  }
  for (const auto& [name, hist] : histograms_) {
    MetricSnapshot snap;
    snap.name = name;
    snap.kind = MetricKind::kHistogram;
    snap.count = hist->count();
    snap.value = hist->sum();
    snap.bounds = hist->bounds();
    snap.buckets = hist->bucket_counts();
    out.push_back(std::move(snap));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

std::string Registry::to_text() const {
  const auto snaps = snapshot();
  std::size_t width = 0;
  for (const auto& s : snaps) width = std::max(width, s.name.size());
  std::ostringstream os;
  for (const auto& s : snaps) {
    os << s.name << std::string(width - s.name.size() + 2, ' ');
    switch (s.kind) {
      case MetricKind::kCounter: os << s.count; break;
      case MetricKind::kGauge: os << format_double(s.value); break;
      case MetricKind::kHistogram:
        os << "count=" << s.count << " sum=" << format_double(s.value)
           << " buckets=[";
        for (std::size_t b = 0; b < s.buckets.size(); ++b) {
          if (b) os << ' ';
          if (b < s.bounds.size()) {
            os << "le" << format_double(s.bounds[b]) << ':' << s.buckets[b];
          } else {
            os << "inf:" << s.buckets[b];
          }
        }
        os << ']';
        break;
    }
    os << '\n';
  }
  return os.str();
}

std::string Registry::to_json() const {
  const auto snaps = snapshot();
  std::ostringstream os;
  os << '{';
  const auto emit_kind = [&](MetricKind kind, const char* key) {
    os << '"' << key << "\":{";
    bool first = true;
    for (const auto& s : snaps) {
      if (s.kind != kind) continue;
      if (!first) os << ',';
      first = false;
      os << '"' << json_escape(s.name) << "\":";
      switch (kind) {
        case MetricKind::kCounter: os << s.count; break;
        case MetricKind::kGauge: os << format_double(s.value); break;
        case MetricKind::kHistogram: {
          os << "{\"count\":" << s.count << ",\"sum\":"
             << format_double(s.value) << ",\"bounds\":[";
          for (std::size_t b = 0; b < s.bounds.size(); ++b) {
            if (b) os << ',';
            os << format_double(s.bounds[b]);
          }
          os << "],\"buckets\":[";
          for (std::size_t b = 0; b < s.buckets.size(); ++b) {
            if (b) os << ',';
            os << s.buckets[b];
          }
          os << "]}";
          break;
        }
      }
    }
    os << '}';
  };
  emit_kind(MetricKind::kCounter, "counters");
  os << ',';
  emit_kind(MetricKind::kGauge, "gauges");
  os << ',';
  emit_kind(MetricKind::kHistogram, "histograms");
  os << '}';
  return os.str();
}

void Registry::reset() {
  const std::scoped_lock lock{mutex_};
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
}

}  // namespace prcost::obs
